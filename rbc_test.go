package rbc

// Integration tests exercising the public façade exactly as a downstream
// user would: full protocol flows across all three search engines.

import (
	"context"
	"net"
	"testing"
)

func demoProfile() PUFProfile {
	return PUFProfile{BaseError: 0.5 / 256.0, FlakyFraction: 0.05, FlakyError: 0.35}
}

func TestPublicAPIProtocolRoundTrip(t *testing.T) {
	dev, err := NewPUFDevice(1, 1024, demoProfile())
	if err != nil {
		t.Fatal(err)
	}
	image, err := EnrollPUF(dev, 31)
	if err != nil {
		t.Fatal(err)
	}
	store, err := NewImageStore([32]byte{1})
	if err != nil {
		t.Fatal(err)
	}
	ca, err := NewCA(store, &CPUBackend{Alg: SHA3}, &AESKeyGenerator{}, NewRA(),
		CAConfig{MaxDistance: 2})
	if err != nil {
		t.Fatal(err)
	}
	if err := ca.Enroll("alice", image); err != nil {
		t.Fatal(err)
	}
	client := &PUFClient{ID: "alice", Device: dev}
	ch, err := ca.BeginHandshake("alice")
	if err != nil {
		t.Fatal(err)
	}
	m1, err := client.Respond(ch)
	if err != nil {
		t.Fatal(err)
	}
	res, err := ca.Authenticate(context.Background(), AuthRequest{Client: "alice", Nonce: ch.Nonce, M1: m1})
	if err != nil {
		t.Fatal(err)
	}
	if !res.Authenticated {
		t.Fatalf("authentication failed: %+v", res.Search)
	}
}

func TestPublicAPIBackendsAgree(t *testing.T) {
	base, client := scenario(21, 2)
	oracle := client
	task := Task{
		Base:        base,
		Target:      HashSeed(SHA3, client),
		MaxDistance: 2,
		Oracle:      &oracle,
	}
	backends := []Backend{
		&CPUBackend{Alg: SHA3},
		&CPUModelBackend{Alg: SHA3},
		NewGPUBackend(GPUConfig{Alg: SHA3, SharedMemoryState: true}),
		NewAPUBackend(APUConfig{Alg: SHA3}),
	}
	for _, b := range backends {
		res, err := b.Search(context.Background(), task)
		if err != nil {
			t.Fatalf("%s: %v", b.Name(), err)
		}
		if !res.Found || !res.Seed.Equal(client) || res.Distance != 2 {
			t.Errorf("%s: found=%v distance=%d", b.Name(), res.Found, res.Distance)
		}
	}
}

func TestPublicAPIKeyGenerators(t *testing.T) {
	seed := [32]byte{42}
	gens := []KeyGenerator{&AESKeyGenerator{}, SaberKeyGenerator{}, DilithiumKeyGenerator{}}
	sizes := []int{32, 672, 1952}
	for i, g := range gens {
		pk := g.PublicKey(seed)
		if len(pk) != sizes[i] {
			t.Errorf("%s: key size %d, want %d", g.Name(), len(pk), sizes[i])
		}
	}
}

func TestPublicAPISalting(t *testing.T) {
	base, _ := scenario(31, 1)
	salted := SaltSeed(base, 113)
	if salted.Equal(base) {
		t.Error("salt is a no-op")
	}
	if HashSeed(SHA3, salted).Equal(HashSeed(SHA3, base)) {
		t.Error("salted digest equals raw digest")
	}
}

func TestPublicAPINetworkedFlow(t *testing.T) {
	dev, err := NewPUFDevice(5, 1024, demoProfile())
	if err != nil {
		t.Fatal(err)
	}
	image, err := EnrollPUF(dev, 31)
	if err != nil {
		t.Fatal(err)
	}
	store, err := NewImageStore([32]byte{9})
	if err != nil {
		t.Fatal(err)
	}
	ca, err := NewCA(store, &CPUBackend{Alg: SHA3}, &AESKeyGenerator{}, NewRA(),
		CAConfig{MaxDistance: 2})
	if err != nil {
		t.Fatal(err)
	}
	if err := ca.Enroll("bob", image); err != nil {
		t.Fatal(err)
	}
	ln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	server := &Server{CA: ca}
	go server.Serve(ln)
	defer server.Close()

	conn, err := net.Dial("tcp", ln.Addr().String())
	if err != nil {
		t.Fatal(err)
	}
	defer conn.Close()
	res, err := Authenticate(conn, &PUFClient{ID: "bob", Device: dev}, Latency{})
	if err != nil {
		t.Fatal(err)
	}
	if !res.Authenticated {
		t.Fatalf("networked authentication failed: %+v", res)
	}
}

func TestPaperLatencyExported(t *testing.T) {
	if PaperLatency.CommSeconds() != 0.90 {
		t.Errorf("PaperLatency = %.2fs", PaperLatency.CommSeconds())
	}
}

func TestShellStatsConsistent(t *testing.T) {
	base, client := scenario(77, 2)
	oracle := client
	task := Task{
		Base:        base,
		Target:      HashSeed(SHA3, client),
		MaxDistance: 3,
		Exhaustive:  true,
		Oracle:      &oracle,
	}
	backends := []Backend{
		&CPUBackend{Alg: SHA3, Workers: 2},
		&CPUModelBackend{Alg: SHA3},
		NewGPUBackend(GPUConfig{Alg: SHA3, SharedMemoryState: true}),
		NewAPUBackend(APUConfig{Alg: SHA3}),
	}
	for _, b := range backends {
		res, err := b.Search(context.Background(), task)
		if err != nil {
			t.Fatalf("%s: %v", b.Name(), err)
		}
		if len(res.Shells) != 3 {
			t.Errorf("%s: %d shell stats, want 3", b.Name(), len(res.Shells))
			continue
		}
		var covered uint64
		var seconds float64
		for i, sh := range res.Shells {
			if sh.Distance != i+1 {
				t.Errorf("%s: shell %d has distance %d", b.Name(), i, sh.Distance)
			}
			covered += sh.SeedsCovered
			seconds += sh.DeviceSeconds
		}
		// Shells plus the distance-0 probe account for all coverage.
		if covered+1 != res.SeedsCovered {
			t.Errorf("%s: shells cover %d, result says %d", b.Name(), covered+1, res.SeedsCovered)
		}
		if seconds > res.DeviceSeconds+1e-9 {
			t.Errorf("%s: shell seconds %.4f exceed total %.4f", b.Name(), seconds, res.DeviceSeconds)
		}
	}
}
