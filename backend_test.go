package rbc_test

// Tests for the unified NewBackend constructor: every kind must
// construct and actually search, the deprecated per-kind constructors
// must keep working, and the option plumbing must reach the underlying
// engines.

import (
	"context"
	"errors"
	"net"
	"strings"
	"testing"
	"time"

	"rbcsalted"
)

// backendTask builds a small searchable task: a client seed one bit off
// the server's image, findable within distance 2.
func backendTask(t *testing.T, alg rbc.HashAlg) (rbc.Task, rbc.Seed) {
	t.Helper()
	var base rbc.Seed
	base = base.FlipBit(3).FlipBit(200)
	client := base.FlipBit(17)
	return rbc.Task{
		Base:        base,
		Target:      rbc.HashSeed(alg, client),
		MaxDistance: 2,
	}, client
}

func TestNewBackendConstructsAllKinds(t *testing.T) {
	task, client := backendTask(t, rbc.SHA3)
	kinds := []rbc.BackendKind{rbc.BackendCPU, rbc.BackendGPU, rbc.BackendAPU, rbc.BackendPlanner}
	for _, kind := range kinds {
		b, err := rbc.NewBackend(rbc.BackendSpec{Kind: kind},
			rbc.WithAlg(rbc.SHA3), rbc.WithCores(2))
		if err != nil {
			t.Fatalf("%v: %v", kind, err)
		}
		res, err := b.Search(context.Background(), task)
		if err != nil {
			t.Fatalf("%v: search: %v", kind, err)
		}
		if !res.Found || !res.Seed.Equal(client) {
			t.Fatalf("%v: wrong result %+v", kind, res)
		}
	}
}

func TestNewBackendCluster(t *testing.T) {
	reg := rbc.NewMetricsRegistry()
	b, err := rbc.NewBackend(rbc.BackendSpec{Kind: rbc.BackendCluster},
		rbc.WithAlg(rbc.SHA3),
		rbc.WithFallback(&rbc.CPUBackend{Alg: rbc.SHA3, Workers: 2}),
		rbc.WithMetrics(reg),
		rbc.WithHeartbeat(50*time.Millisecond, 500*time.Millisecond))
	if err != nil {
		t.Fatal(err)
	}
	coord, ok := b.(*rbc.ClusterCoordinator)
	if !ok {
		t.Fatalf("cluster kind returned %T", b)
	}
	defer coord.Close()

	ln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	go coord.Serve(ln)

	stop := make(chan struct{})
	defer close(stop)
	go rbc.RunClusterWorker(ln.Addr().String(), &rbc.ClusterWorker{Cores: 2}, stop)
	if err := coord.WaitForWorkers(1, 5*time.Second); err != nil {
		t.Fatal(err)
	}

	task, client := backendTask(t, rbc.SHA3)
	res, err := coord.Search(context.Background(), task)
	if err != nil {
		t.Fatal(err)
	}
	if !res.Found || !res.Seed.Equal(client) {
		t.Fatalf("wrong result %+v", res)
	}
	if st := coord.Stats(); st.Workers != 1 {
		t.Fatalf("stats %+v, want 1 worker", st)
	}
}

func TestNewBackendClusterFallbackWithoutFleet(t *testing.T) {
	b, err := rbc.NewBackend(rbc.BackendSpec{Kind: rbc.BackendCluster},
		rbc.WithAlg(rbc.SHA1),
		rbc.WithFallback(&rbc.CPUBackend{Alg: rbc.SHA1, Workers: 2}))
	if err != nil {
		t.Fatal(err)
	}
	coord := b.(*rbc.ClusterCoordinator)
	defer coord.Close()

	task, client := backendTask(t, rbc.SHA1)
	res, err := coord.Search(context.Background(), task)
	if err != nil {
		t.Fatalf("degraded search: %v", err)
	}
	if !res.Found || !res.Seed.Equal(client) {
		t.Fatalf("wrong result %+v", res)
	}
	if !coord.Degraded() {
		t.Fatal("empty fleet should report degraded")
	}
}

func TestNewBackendRejectsBadSpecs(t *testing.T) {
	if _, err := rbc.NewBackend(rbc.BackendSpec{Kind: rbc.BackendKind(42)}); err == nil {
		t.Fatal("unknown kind accepted")
	}
	if _, err := rbc.NewBackend(rbc.BackendSpec{Kind: rbc.BackendCPU}, rbc.WithCores(-1)); err == nil {
		t.Fatal("negative cores accepted")
	}
	if _, err := rbc.NewBackend(rbc.BackendSpec{Kind: rbc.BackendGPU}, rbc.WithDevices(-2)); err == nil {
		t.Fatal("negative devices accepted")
	}
}

func TestParseBackendKind(t *testing.T) {
	for _, tc := range []struct {
		in   string
		want rbc.BackendKind
	}{
		{"cpu", rbc.BackendCPU},
		{"gpu", rbc.BackendGPU},
		{"apu", rbc.BackendAPU},
		{"cluster", rbc.BackendCluster},
		{"planner", rbc.BackendPlanner},
	} {
		got, err := rbc.ParseBackendKind(tc.in)
		if err != nil || got != tc.want {
			t.Fatalf("ParseBackendKind(%q) = %v, %v", tc.in, got, err)
		}
		if got.String() != tc.in {
			t.Fatalf("String() = %q, want %q", got.String(), tc.in)
		}
	}
	if _, err := rbc.ParseBackendKind("tpu"); err == nil ||
		!strings.Contains(err.Error(), "unknown backend kind") {
		t.Fatalf("ParseBackendKind(tpu) = %v", err)
	}
}

// TestDeprecatedConstructorsStillWork pins the compatibility contract:
// the old per-kind constructors must keep compiling and searching.
func TestDeprecatedConstructorsStillWork(t *testing.T) {
	task, client := backendTask(t, rbc.SHA3)
	for name, b := range map[string]rbc.Backend{
		"cpu": &rbc.CPUBackend{Alg: rbc.SHA3, Workers: 2},
		"gpu": rbc.NewGPUBackend(rbc.GPUConfig{Alg: rbc.SHA3}),
		"apu": rbc.NewAPUBackend(rbc.APUConfig{Alg: rbc.SHA3}),
	} {
		res, err := b.Search(context.Background(), task)
		if err != nil {
			t.Fatalf("%s: %v", name, err)
		}
		if !res.Found || !res.Seed.Equal(client) {
			t.Fatalf("%s: wrong result %+v", name, res)
		}
	}
}

func TestClusterErrorsExported(t *testing.T) {
	coord := rbc.NewClusterCoordinator(rbc.ClusterConfig{Alg: rbc.SHA1})
	coord.Close()
	task, _ := backendTask(t, rbc.SHA1)
	_, err := coord.Search(context.Background(), task)
	if !errors.Is(err, rbc.ErrClusterClosed) {
		t.Fatalf("search after close: %v", err)
	}
	if rbc.ErrProtoVersion == nil {
		t.Fatal("ErrProtoVersion not exported")
	}
}
