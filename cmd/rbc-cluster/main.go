// Command rbc-cluster runs the distributed SALTED-CPU search (paper §5
// future work): one coordinator node fans each Hamming shell out over
// connected worker nodes, weighted by their core counts.
//
// Coordinator (also runs the demo search once the fleet is ready):
//
//	rbc-cluster -mode coordinator -listen :7500 -workers 2 -maxd 3
//
// Workers (one per node):
//
//	rbc-cluster -mode worker -connect host:7500
package main

import (
	"context"
	"flag"
	"fmt"
	"log"
	"math/rand/v2"
	"net"
	"runtime"
	"time"

	"rbcsalted/internal/cluster"
	"rbcsalted/internal/core"
	"rbcsalted/internal/iterseq"
	"rbcsalted/internal/puf"
	"rbcsalted/internal/u256"
)

func main() {
	mode := flag.String("mode", "coordinator", "coordinator or worker")
	listen := flag.String("listen", "127.0.0.1:7500", "coordinator listen address")
	connect := flag.String("connect", "127.0.0.1:7500", "coordinator address (worker mode)")
	workers := flag.Int("workers", 1, "workers to wait for before searching")
	maxD := flag.Int("maxd", 3, "maximum Hamming distance")
	distance := flag.Int("distance", 2, "true distance of the demo client seed")
	cores := flag.Int("cores", 0, "advertised cores (worker mode; 0 = GOMAXPROCS)")
	flag.Parse()

	switch *mode {
	case "worker":
		w := &cluster.Worker{Cores: *cores}
		fmt.Printf("rbc-cluster worker (%d cores) connecting to %s\n",
			effectiveCores(*cores), *connect)
		stop := make(chan struct{})
		cluster.RunWorkerUntil(*connect, w, stop)
	case "coordinator":
		coord := &cluster.Coordinator{Alg: core.SHA3}
		ln, err := net.Listen("tcp", *listen)
		if err != nil {
			log.Fatal(err)
		}
		go coord.Serve(ln)
		fmt.Printf("rbc-cluster coordinator on %s, waiting for %d worker(s)\n",
			ln.Addr(), *workers)
		if err := coord.WaitForWorkers(*workers, 5*time.Minute); err != nil {
			log.Fatal(err)
		}
		n, c := coord.Workers()
		fmt.Printf("fleet ready: %d workers, %d cores\n", n, c)

		// Demo search: a random enrolled seed with `distance` flipped bits.
		r := rand.New(rand.NewPCG(uint64(time.Now().UnixNano()), 1))
		base := u256.New(r.Uint64(), r.Uint64(), r.Uint64(), r.Uint64())
		client := puf.InjectNoise(base, base, *distance, r)
		start := time.Now()
		res, err := coord.Search(context.Background(), core.Task{
			Base:        base,
			Target:      core.HashSeed(core.SHA3, client),
			MaxDistance: *maxD,
			Method:      iterseq.GrayCode,
		})
		if err != nil {
			log.Fatal(err)
		}
		fmt.Printf("found=%v distance=%d covered=%d seeds in %.3fs (%.2f Mseed/s)\n",
			res.Found, res.Distance, res.SeedsCovered, time.Since(start).Seconds(),
			float64(res.SeedsCovered)/time.Since(start).Seconds()/1e6)
		coord.Close()
	default:
		log.Fatalf("unknown mode %q", *mode)
	}
}

func effectiveCores(flagged int) int {
	if flagged > 0 {
		return flagged
	}
	return runtime.GOMAXPROCS(0)
}
