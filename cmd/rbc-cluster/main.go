// Command rbc-cluster runs the distributed SALTED-CPU search (paper §5
// future work): one coordinator node fans each Hamming shell out over
// connected worker nodes, weighted by their core counts. The cluster is
// fault-tolerant: workers heartbeat, a dead worker's unfinished ranges
// are re-dispatched to the survivors (or a local fallback), and workers
// rejoin automatically after a disconnect.
//
// Coordinator (also runs the demo search once the fleet is ready):
//
//	rbc-cluster -mode coordinator -listen :7500 -workers 2 -maxd 3
//
// Workers (one per node):
//
//	rbc-cluster -mode worker -connect host:7500
//
// SIGINT/SIGTERM drains in-flight searches before closing. -fallback
// lets the coordinator keep serving from its own cores when the fleet
// is empty; -debug-addr exposes the cluster_* fault-tolerance metrics.
package main

import (
	"context"
	"flag"
	"fmt"
	"log"
	"math/rand/v2"
	"net"
	"os"
	"os/signal"
	"runtime"
	"syscall"
	"time"

	"rbcsalted/internal/cluster"
	"rbcsalted/internal/core"
	"rbcsalted/internal/cpu"
	"rbcsalted/internal/iterseq"
	"rbcsalted/internal/obs"
	"rbcsalted/internal/puf"
	"rbcsalted/internal/u256"
)

func main() {
	mode := flag.String("mode", "coordinator", "coordinator or worker")
	listen := flag.String("listen", "127.0.0.1:7500", "coordinator listen address")
	connect := flag.String("connect", "127.0.0.1:7500", "coordinator address (worker mode)")
	workers := flag.Int("workers", 1, "workers to wait for before searching")
	maxD := flag.Int("maxd", 3, "maximum Hamming distance")
	distance := flag.Int("distance", 2, "true distance of the demo client seed")
	cores := flag.Int("cores", 0, "advertised cores (worker mode; 0 = GOMAXPROCS)")
	name := flag.String("name", "", "worker name, stable across reconnects (worker mode; default hostname)")
	heartbeat := flag.Duration("heartbeat", cluster.DefaultHeartbeatInterval,
		"worker heartbeat interval (coordinator mode)")
	hbTimeout := flag.Duration("heartbeat-timeout", 0,
		"silence window before a worker is declared dead (0 = 4x interval)")
	fallback := flag.Bool("fallback", false,
		"serve searches from local cores when the fleet is empty (coordinator mode)")
	drain := flag.Duration("drain", cluster.DefaultDrainTimeout,
		"max wait for in-flight searches on shutdown (coordinator mode)")
	debugAddr := flag.String("debug-addr", "",
		"serve /metrics and /debug/pprof on this address (coordinator mode)")
	flag.Parse()

	ctx, cancel := signal.NotifyContext(context.Background(), os.Interrupt, syscall.SIGTERM)
	defer cancel()

	switch *mode {
	case "worker":
		runWorker(ctx, *connect, *cores, *name)
	case "coordinator":
		runCoordinator(ctx, coordinatorOpts{
			listen:    *listen,
			workers:   *workers,
			maxD:      *maxD,
			distance:  *distance,
			heartbeat: *heartbeat,
			hbTimeout: *hbTimeout,
			fallback:  *fallback,
			drain:     *drain,
			debugAddr: *debugAddr,
		})
	default:
		log.Fatalf("unknown mode %q", *mode)
	}
}

func runWorker(ctx context.Context, connect string, cores int, name string) {
	if name == "" {
		name, _ = os.Hostname()
	}
	w := &cluster.Worker{Cores: cores, Name: name}
	fmt.Printf("rbc-cluster worker %q (%d cores) connecting to %s\n",
		name, effectiveCores(cores), connect)
	stop := make(chan struct{})
	go func() {
		<-ctx.Done()
		fmt.Println("signal received, stopping worker")
		close(stop)
	}()
	cluster.RunWorkerUntil(connect, w, stop)
}

type coordinatorOpts struct {
	listen    string
	workers   int
	maxD      int
	distance  int
	heartbeat time.Duration
	hbTimeout time.Duration
	fallback  bool
	drain     time.Duration
	debugAddr string
}

func runCoordinator(ctx context.Context, o coordinatorOpts) {
	reg := obs.NewRegistry()
	cfg := cluster.Config{
		Alg:               core.SHA3,
		HeartbeatInterval: o.heartbeat,
		HeartbeatTimeout:  o.hbTimeout,
		DrainTimeout:      o.drain,
		Metrics:           reg,
	}
	if o.fallback {
		cfg.Fallback = &cpu.Backend{Alg: core.SHA3}
	}
	coord := cluster.NewCoordinator(cfg)
	ln, err := net.Listen("tcp", o.listen)
	if err != nil {
		log.Fatal(err)
	}
	// Drain-then-close on SIGINT/SIGTERM: stop admitting workers, let
	// in-flight searches finish (bounded by -drain), then tear down.
	go func() {
		<-ctx.Done()
		fmt.Println("signal received, draining in-flight searches")
		ln.Close()
		coord.Close()
	}()
	defer coord.Close()
	go coord.Serve(ln)

	if o.debugAddr != "" {
		dln, err := obs.Serve(o.debugAddr, reg, nil)
		if err != nil {
			log.Fatal(err)
		}
		defer dln.Close()
		fmt.Printf("debug endpoint on http://%s/metrics\n", dln.Addr())
	}

	fmt.Printf("rbc-cluster coordinator on %s, waiting for %d worker(s)\n",
		ln.Addr(), o.workers)
	if err := coord.WaitForWorkers(o.workers, 5*time.Minute); err != nil {
		if ctx.Err() != nil {
			return
		}
		log.Fatal(err)
	}
	n, c := coord.Workers()
	fmt.Printf("fleet ready: %d workers, %d cores\n", n, c)

	// Demo search: a random enrolled seed with `distance` flipped bits.
	r := rand.New(rand.NewPCG(uint64(time.Now().UnixNano()), 1))
	base := u256.New(r.Uint64(), r.Uint64(), r.Uint64(), r.Uint64())
	client := puf.InjectNoise(base, base, o.distance, r)
	start := time.Now()
	res, err := coord.Search(ctx, core.Task{
		Base:        base,
		Target:      core.HashSeed(core.SHA3, client),
		MaxDistance: o.maxD,
		Method:      iterseq.GrayCode,
	})
	if err != nil {
		if ctx.Err() != nil {
			fmt.Printf("search interrupted: %v\n", err)
			return
		}
		log.Fatal(err)
	}
	st := coord.Stats()
	fmt.Printf("found=%v distance=%d covered=%d seeds in %.3fs (%.2f Mseed/s)\n",
		res.Found, res.Distance, res.SeedsCovered, time.Since(start).Seconds(),
		float64(res.SeedsCovered)/time.Since(start).Seconds()/1e6)
	if st.Deaths > 0 || st.Redispatches > 0 || st.Fallbacks > 0 {
		fmt.Printf("fault tolerance: deaths=%d redispatches=%d rejoins=%d fallbacks=%d\n",
			st.Deaths, st.Redispatches, st.Rejoins, st.Fallbacks)
	}
}

func effectiveCores(flagged int) int {
	if flagged > 0 {
		return flagged
	}
	return runtime.GOMAXPROCS(0)
}
