// Command rbc-client authenticates against an rbc-server using a
// simulated PUF device.
//
// -server accepts one address or a comma-separated bootstrap list; the
// routing-aware client dials the node that owns this client's shard
// (learning it from wrong-shard redirects), and retries transport
// failures against the remaining candidates — so it rides out a rolling
// restart of a replicated CA group.
//
// Usage:
//
//	rbc-client -server 127.0.0.1:7443,127.0.0.1:7444 -id alice -devseed 42 -noise 2
package main

import (
	"context"
	"flag"
	"fmt"
	"log"
	"strings"
	"time"

	"rbcsalted"
	"rbcsalted/internal/core"
	"rbcsalted/internal/puf"
)

func main() {
	server := flag.String("server", "127.0.0.1:7443", "server address, or a comma-separated bootstrap list")
	id := flag.String("id", "alice", "client id")
	devSeed := flag.Uint64("devseed", 42, "PUF device seed (must match the server's enrollment)")
	noise := flag.Int("noise", 0, "deliberately injected noise bits")
	paperComm := flag.Bool("papercomm", false, "inject the paper's 0.90s communication latency")
	baseError := flag.Float64("baseerror", puf.DefaultProfile.BaseError,
		"per-read cell flip probability (must match enrollment)")
	class := flag.String("class", "", "QoS class sent in the hello: interactive|batch|background (empty = interactive)")
	deadline := flag.Duration("deadline", 0, "abandon the request after this long; sent to the server as an absolute deadline (0 = none)")
	flag.Parse()

	qos, err := core.ParseClass(*class)
	if err != nil {
		log.Fatal(err)
	}

	profile := puf.DefaultProfile
	profile.BaseError = *baseError
	dev, err := puf.NewDevice(*devSeed, 1024, profile)
	if err != nil {
		log.Fatal(err)
	}
	// Burn the enrollment reads so the device RNG state matches a
	// deployed device (enrollment happened at the factory).
	if _, err := puf.Enroll(dev, 31); err != nil {
		log.Fatal(err)
	}
	device := &rbc.PUFClient{ID: core.ClientID(*id), Device: dev, NoiseBits: *noise}

	lat := rbc.Latency{}
	if *paperComm {
		lat = rbc.PaperLatency
	}
	client, err := rbc.Dial(rbc.ClientConfig{
		Addrs:   strings.Split(*server, ","),
		Latency: lat,
	})
	if err != nil {
		log.Fatal(err)
	}
	defer client.Close()

	req := rbc.ClientAuthRequest{Device: device, Class: qos}
	ctx := context.Background()
	if *deadline > 0 {
		req.Deadline = time.Now().Add(*deadline)
		var cancel context.CancelFunc
		ctx, cancel = context.WithDeadline(ctx, req.Deadline)
		defer cancel()
	}
	start := time.Now()
	res, err := client.Authenticate(ctx, req)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("authenticated: %v (timed out: %v)\n", res.Authenticated, res.TimedOut)
	fmt.Printf("server search time: %.3fs; end-to-end: %.3fs\n",
		res.SearchSeconds, time.Since(start).Seconds())
	if res.Authenticated {
		fmt.Printf("session public key (%d bytes): %x...\n", len(res.PublicKey), res.PublicKey[:16])
	}
}
