// Command rbc-enroll is the secure-facility side of the protocol: it
// manufactures (simulated) PUF devices, captures their enrollment images
// over repeated reads, and writes them either into an encrypted
// image-store file that rbc-server can load (-store) or directly into a
// durable data directory that rbc-server serves from (-data-dir).
//
// -remove deprovisions clients instead of enrolling them: the image, any
// registered public key/certificate and any open session are deleted (and,
// under -data-dir, journaled so the removal survives a restart).
//
// Usage:
//
//	rbc-enroll -store ca-images.db -key <64-hex-chars> -clients alice,bob -reads 31
//	rbc-enroll -data-dir /var/lib/rbc -key <64-hex-chars> -clients alice,bob
//	rbc-enroll -data-dir /var/lib/rbc -key <64-hex-chars> -remove alice
//	rbc-enroll -store ca-images.db -key <64-hex-chars> -list
package main

import (
	"encoding/hex"
	"flag"
	"fmt"
	"log"
	"os"
	"strings"

	"rbcsalted/internal/core"
	"rbcsalted/internal/durable"
	"rbcsalted/internal/puf"
)

func main() {
	storePath := flag.String("store", "", "encrypted image-store file (default ca-images.db unless -data-dir)")
	dataDir := flag.String("data-dir", "", "enroll into a durable data directory instead of a store file")
	keyHex := flag.String("key", strings.Repeat("00", 32), "64-hex-char master key")
	clients := flag.String("clients", "", "comma-separated client ids to enroll")
	remove := flag.String("remove", "", "comma-separated client ids to deprovision (image, keys and sessions)")
	reads := flag.Int("reads", 31, "enrollment reads per cell")
	cells := flag.Int("cells", 1024, "PUF cells per device")
	seedBase := flag.Uint64("seedbase", 1000, "device seed base (client i gets seedbase+i)")
	baseError := flag.Float64("baseerror", puf.DefaultProfile.BaseError,
		"per-read cell flip probability (default: the paper's ~5 bits per 256)")
	list := flag.Bool("list", false, "report the stored client count and exit")
	flag.Parse()

	key, err := parseKey(*keyHex)
	if err != nil {
		log.Fatal(err)
	}
	if *storePath != "" && *dataDir != "" {
		log.Fatal("rbc-enroll: -store and -data-dir are mutually exclusive")
	}
	if *storePath == "" && *dataDir == "" {
		*storePath = "ca-images.db"
	}

	// The durable path: mutations are journaled through the State and
	// persist on Close; no separate Save step.
	if *dataDir != "" {
		state, err := durable.Open(durable.Options{Dir: *dataDir, MasterKey: key, Sync: durable.SyncAlways})
		if err != nil {
			log.Fatal(err)
		}
		switch {
		case *list:
			fmt.Printf("%s: %d enrolled client(s)\n", *dataDir, state.Images().Len())
		case *remove != "":
			for _, id := range splitIDs(*remove) {
				if err := state.DeleteClient(id); err != nil {
					log.Fatal(err)
				}
				fmt.Printf("removed %q (image, keys and sessions)\n", id)
			}
		case *clients != "":
			enrollAll(state.Images(), splitIDs(*clients), *seedBase, *cells, *reads, *baseError)
		default:
			log.Fatal("rbc-enroll: -clients, -remove or -list required")
		}
		if err := state.Close(); err != nil {
			log.Fatal(err)
		}
		return
	}

	store, err := openOrCreate(key, *storePath)
	if err != nil {
		log.Fatal(err)
	}
	if *list {
		fmt.Printf("%s: %d enrolled client(s)\n", *storePath, store.Len())
		return
	}
	switch {
	case *remove != "":
		for _, id := range splitIDs(*remove) {
			if err := store.Delete(id); err != nil {
				log.Fatal(err)
			}
			fmt.Printf("removed %q\n", id)
		}
	case *clients != "":
		enrollAll(store, splitIDs(*clients), *seedBase, *cells, *reads, *baseError)
	default:
		log.Fatal("rbc-enroll: -clients, -remove or -list required")
	}

	f, err := os.Create(*storePath)
	if err != nil {
		log.Fatal(err)
	}
	defer f.Close()
	if err := store.Save(f); err != nil {
		log.Fatal(err)
	}
	fmt.Printf("wrote %s (%d clients, sealed with AES-256-GCM)\n", *storePath, store.Len())
}

func splitIDs(s string) []core.ClientID {
	var out []core.ClientID
	for _, id := range strings.Split(s, ",") {
		if id = strings.TrimSpace(id); id != "" {
			out = append(out, core.ClientID(id))
		}
	}
	return out
}

func enrollAll(store *core.ImageStore, ids []core.ClientID, seedBase uint64, cells, reads int, baseError float64) {
	for i, id := range ids {
		devSeed := seedBase + uint64(i)
		profile := puf.DefaultProfile
		profile.BaseError = baseError
		dev, err := puf.NewDevice(devSeed, cells, profile)
		if err != nil {
			log.Fatal(err)
		}
		im, err := puf.Enroll(dev, reads)
		if err != nil {
			log.Fatal(err)
		}
		if err := store.Put(id, im); err != nil {
			log.Fatal(err)
		}
		uniq := puf.Uniformity(im)
		fmt.Printf("enrolled %q: device seed %d, %d cells, uniformity %.3f\n",
			id, devSeed, cells, uniq)
	}
}

func parseKey(s string) ([32]byte, error) {
	var key [32]byte
	raw, err := hex.DecodeString(s)
	if err != nil || len(raw) != 32 {
		return key, fmt.Errorf("rbc-enroll: key must be 64 hex chars (32 bytes)")
	}
	copy(key[:], raw)
	return key, nil
}

func openOrCreate(key [32]byte, path string) (*core.ImageStore, error) {
	f, err := os.Open(path)
	if err != nil {
		if os.IsNotExist(err) {
			return core.NewImageStore(key)
		}
		return nil, err
	}
	defer f.Close()
	return core.LoadImageStore(key, f)
}
