// Command rbc-enroll is the secure-facility side of the protocol: it
// manufactures (simulated) PUF devices, captures their enrollment images
// over repeated reads, and writes them into an encrypted image-store file
// that rbc-server can load.
//
// Usage:
//
//	rbc-enroll -store ca-images.db -key <64-hex-chars> -clients alice,bob -reads 31
//	rbc-enroll -store ca-images.db -key <64-hex-chars> -list
package main

import (
	"encoding/hex"
	"flag"
	"fmt"
	"log"
	"os"
	"strings"

	"rbcsalted/internal/core"
	"rbcsalted/internal/puf"
)

func main() {
	storePath := flag.String("store", "ca-images.db", "encrypted image-store file")
	keyHex := flag.String("key", strings.Repeat("00", 32), "64-hex-char master key")
	clients := flag.String("clients", "", "comma-separated client ids to enroll")
	reads := flag.Int("reads", 31, "enrollment reads per cell")
	cells := flag.Int("cells", 1024, "PUF cells per device")
	seedBase := flag.Uint64("seedbase", 1000, "device seed base (client i gets seedbase+i)")
	baseError := flag.Float64("baseerror", puf.DefaultProfile.BaseError,
		"per-read cell flip probability (default: the paper's ~5 bits per 256)")
	list := flag.Bool("list", false, "report the stored client count and exit")
	flag.Parse()

	key, err := parseKey(*keyHex)
	if err != nil {
		log.Fatal(err)
	}

	store, err := openOrCreate(key, *storePath)
	if err != nil {
		log.Fatal(err)
	}
	if *list {
		fmt.Printf("%s: %d enrolled client(s)\n", *storePath, store.Len())
		return
	}
	if *clients == "" {
		log.Fatal("rbc-enroll: -clients required (or -list)")
	}

	for i, id := range strings.Split(*clients, ",") {
		id = strings.TrimSpace(id)
		if id == "" {
			continue
		}
		devSeed := *seedBase + uint64(i)
		profile := puf.DefaultProfile
		profile.BaseError = *baseError
		dev, err := puf.NewDevice(devSeed, *cells, profile)
		if err != nil {
			log.Fatal(err)
		}
		im, err := puf.Enroll(dev, *reads)
		if err != nil {
			log.Fatal(err)
		}
		if err := store.Put(core.ClientID(id), im); err != nil {
			log.Fatal(err)
		}
		uniq := puf.Uniformity(im)
		fmt.Printf("enrolled %q: device seed %d, %d cells, uniformity %.3f\n",
			id, devSeed, *cells, uniq)
	}

	f, err := os.Create(*storePath)
	if err != nil {
		log.Fatal(err)
	}
	defer f.Close()
	if err := store.Save(f); err != nil {
		log.Fatal(err)
	}
	fmt.Printf("wrote %s (%d clients, sealed with AES-256-GCM)\n", *storePath, store.Len())
}

func parseKey(s string) ([32]byte, error) {
	var key [32]byte
	raw, err := hex.DecodeString(s)
	if err != nil || len(raw) != 32 {
		return key, fmt.Errorf("rbc-enroll: key must be 64 hex chars (32 bytes)")
	}
	copy(key[:], raw)
	return key, nil
}

func openOrCreate(key [32]byte, path string) (*core.ImageStore, error) {
	f, err := os.Open(path)
	if err != nil {
		if os.IsNotExist(err) {
			return core.NewImageStore(key)
		}
		return nil, err
	}
	defer f.Close()
	return core.LoadImageStore(key, f)
}
