// Command rbc-bench regenerates the paper's evaluation tables and
// figures.
//
// Usage:
//
//	rbc-bench                      # run every experiment
//	rbc-bench -experiment table5   # one experiment
//	rbc-bench -trials 1200         # paper-scale stochastic sampling
//	rbc-bench -csv                 # machine-readable output
//	rbc-bench -experiment hostthroughput -json BENCH_host.json
//	                               # host perf point + JSON trajectory file
//	rbc-bench -experiment hostthroughput -baseline BENCH_host.json
//	                               # gate: exit 1 if any kernel's speedup
//	                               # ratio regresses >15% vs the baseline
//	rbc-bench -experiment servelatency -json BENCH_serve.json
//	                               # per-class serving latency point
//	rbc-bench -experiment planner -json BENCH_planner.json
//	                               # planner vs fixed backends: latency,
//	                               # joules, SLO, d-crossovers
//	rbc-bench -experiment hostthroughput -cpuprofile cpu.pprof
//	                               # profile the run (go tool pprof)
//
// Run rbc-bench with an unknown -experiment to list the registered
// experiment ids (the list is generated from the registry).
package main

import (
	"flag"
	"fmt"
	"os"
	"runtime"
	"runtime/pprof"

	"rbcsalted/internal/exper"
	"rbcsalted/internal/plan"
)

func main() {
	// All exit paths funnel through run's return code so the profile
	// teardown defers always execute; os.Exit here would drop a partial
	// CPU profile on the floor.
	os.Exit(run())
}

func run() int {
	experiment := flag.String("experiment", "", "experiment id to run (empty = all)")
	trials := flag.Int("trials", 200, "stochastic trials for average-case rows (paper used 1200)")
	csv := flag.Bool("csv", false, "emit CSV instead of aligned text")
	jsonPath := flag.String("json", "", "with -experiment hostthroughput or servelatency: also write the measurement to this file as JSON")
	baseline := flag.String("baseline", "", "with -experiment hostthroughput: committed BENCH_host.json to gate against; exit 1 on regression")
	tolerance := flag.Float64("tolerance", 0.15, "with -baseline: allowed fractional speedup-ratio drop before a point counts as regressed")
	cpuprofile := flag.String("cpuprofile", "", "write a CPU profile of the whole run to this file")
	memprofile := flag.String("memprofile", "", "write an allocation (heap) profile to this file at exit")
	flag.Parse()

	if *cpuprofile != "" {
		f, err := os.Create(*cpuprofile)
		if err != nil {
			fmt.Fprintln(os.Stderr, "rbc-bench: -cpuprofile:", err)
			return 1
		}
		if err := pprof.StartCPUProfile(f); err != nil {
			f.Close()
			fmt.Fprintln(os.Stderr, "rbc-bench: -cpuprofile:", err)
			return 1
		}
		defer func() {
			pprof.StopCPUProfile()
			f.Close()
		}()
	}
	if *memprofile != "" {
		defer func() {
			f, err := os.Create(*memprofile)
			if err != nil {
				fmt.Fprintln(os.Stderr, "rbc-bench: -memprofile:", err)
				return
			}
			defer f.Close()
			runtime.GC() // settle live-heap accounting before the snapshot
			if err := pprof.WriteHeapProfile(f); err != nil {
				fmt.Fprintln(os.Stderr, "rbc-bench: -memprofile:", err)
			}
		}()
	}

	if *jsonPath != "" && *experiment != "hostthroughput" && *experiment != "servelatency" && *experiment != "planner" {
		fmt.Fprintln(os.Stderr, "rbc-bench: -json is only supported with -experiment hostthroughput, servelatency or planner")
		return 2
	}
	if *baseline != "" && *experiment != "hostthroughput" {
		fmt.Fprintln(os.Stderr, "rbc-bench: -baseline is only supported with -experiment hostthroughput")
		return 2
	}
	if *experiment == "servelatency" {
		// Measure once, then render the table and (optionally) the JSON
		// trajectory point from the same run.
		perClass := *trials / 4
		if perClass < 8 {
			perClass = 8
		} else if perClass > 400 {
			perClass = 400
		}
		sb, err := exper.MeasureServeLatency(perClass)
		if err != nil {
			fmt.Fprintln(os.Stderr, err)
			return 1
		}
		if *jsonPath != "" {
			out, err := sb.JSON()
			if err == nil {
				err = os.WriteFile(*jsonPath, out, 0o644)
			}
			if err != nil {
				fmt.Fprintln(os.Stderr, err)
				return 1
			}
		}
		tbl := sb.Table()
		if *csv {
			err = tbl.RenderCSV(os.Stdout)
		} else {
			err = tbl.Render(os.Stdout)
		}
		if err != nil {
			fmt.Fprintln(os.Stderr, err)
			return 1
		}
		return 0
	}
	if *experiment == "planner" {
		// Measure once, then render the table and (optionally) the JSON
		// trajectory point from the same run.
		pb, err := exper.MeasurePlanner(*trials, plan.PolicyBalanced)
		if err != nil {
			fmt.Fprintln(os.Stderr, err)
			return 1
		}
		if *jsonPath != "" {
			out, err := pb.JSON()
			if err == nil {
				err = os.WriteFile(*jsonPath, out, 0o644)
			}
			if err != nil {
				fmt.Fprintln(os.Stderr, err)
				return 1
			}
		}
		tbl := pb.Table()
		if *csv {
			err = tbl.RenderCSV(os.Stdout)
		} else {
			err = tbl.Render(os.Stdout)
		}
		if err != nil {
			fmt.Fprintln(os.Stderr, err)
			return 1
		}
		if violations := exper.PlannerBenchViolations(pb, exper.PlannerBenchTolerance); len(violations) > 0 {
			fmt.Fprintf(os.Stderr, "rbc-bench: planner dominated in %d cell(s):\n", len(violations))
			for _, v := range violations {
				fmt.Fprintln(os.Stderr, "  "+v)
			}
			return 1
		}
		return 0
	}
	if *experiment == "hostthroughput" {
		// Measure once, then render the table and (optionally) the JSON
		// trajectory point from the same run.
		hb := exper.MeasureHostThroughput()
		if *jsonPath != "" {
			out, err := hb.JSON()
			if err == nil {
				err = os.WriteFile(*jsonPath, out, 0o644)
			}
			if err != nil {
				fmt.Fprintln(os.Stderr, err)
				return 1
			}
		}
		tbl := hb.Table()
		var err error
		if *csv {
			err = tbl.RenderCSV(os.Stdout)
		} else {
			err = tbl.Render(os.Stdout)
		}
		if err != nil {
			fmt.Fprintln(os.Stderr, err)
			return 1
		}
		if *baseline != "" {
			data, err := os.ReadFile(*baseline)
			if err != nil {
				fmt.Fprintln(os.Stderr, err)
				return 1
			}
			bl, err := exper.ParseHostBench(data)
			if err != nil {
				fmt.Fprintln(os.Stderr, err)
				return 1
			}
			if violations := exper.HostBenchViolations(hb, bl, *tolerance); len(violations) > 0 {
				fmt.Fprintf(os.Stderr, "rbc-bench: %d regression(s) vs %s:\n", len(violations), *baseline)
				for _, v := range violations {
					fmt.Fprintln(os.Stderr, "  "+v)
				}
				return 1
			}
			fmt.Printf("baseline gate: all %d points hold %s within %.0f%%\n",
				len(bl.Points), *baseline, *tolerance*100)
		}
		return 0
	}

	var tables []*exper.Table
	if *experiment == "" {
		tables = exper.All(*trials)
	} else {
		tbl, err := exper.ByID(*experiment, *trials)
		if err != nil {
			fmt.Fprintln(os.Stderr, err)
			return 2
		}
		tables = []*exper.Table{tbl}
	}

	for _, tbl := range tables {
		var err error
		if *csv {
			err = tbl.RenderCSV(os.Stdout)
		} else {
			err = tbl.Render(os.Stdout)
		}
		if err != nil {
			fmt.Fprintln(os.Stderr, err)
			return 1
		}
	}
	return 0
}
