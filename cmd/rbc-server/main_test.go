package main

import (
	"encoding/json"
	"errors"
	"fmt"
	"io"
	"net"
	"net/http"
	"sync"
	"testing"
	"time"

	"rbcsalted"
	"rbcsalted/internal/core"
	"rbcsalted/internal/netproto"
	"rbcsalted/internal/puf"
	"rbcsalted/internal/sched"
)

// quietProfile keeps PUF reads within a couple of bits of the enrolled
// image, so every authentication in the burst lands inside MaxDistance
// and the expected counter values are deterministic.
var quietProfile = puf.Profile{BaseError: 0.1 / 256.0}

func testStack(t *testing.T) *rbc.ServerNode {
	t.Helper()
	st, err := rbc.NewServer(rbc.ServerConfig{
		Clients:      []string{"c0", "c1", "c2", "c3", "c4", "c5"},
		EnrollSeed:   42,
		MaxDistance:  3,
		TimeLimit:    20 * time.Second,
		Cores:        2,
		SchedWorkers: 2,
		SchedQueue:   16,
		// Every search must flow through the scheduler so the /metrics
		// counters this test pins down are deterministic; the inline fast
		// path would serve these quiet devices at d <= 1 without queuing.
		InlineDepth: core.InlineDisabled,
		TraceDepth:  256,
		PUFProfile:  &quietProfile,
	})
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(st.Pool.Close)
	return st
}

// TestDebugEndpointMatchesSchedulerStats is the acceptance test for the
// observability wiring: run a scripted burst of authentications against
// a full rbc-server stack, then fetch /metrics from the debug listener
// and require its search/queue counters to agree exactly with
// sched.Stats().
func TestDebugEndpointMatchesSchedulerStats(t *testing.T) {
	st := testStack(t)

	ln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	go st.Serve(ln)
	defer st.Proto.Close()

	dln, err := st.DebugListener("127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	defer dln.Close()

	// Scripted burst: 6 genuine sessions (distinct clients — each CA
	// session is single-use per client — wider than the 2 scheduler
	// workers so some searches queue) plus one unknown client that is
	// rejected before any search.
	const good = 6
	var wg sync.WaitGroup
	errs := make(chan error, good)
	for i := 0; i < good; i++ {
		id, devSeed := fmt.Sprintf("c%d", i), 42+uint64(i)
		wg.Add(1)
		go func() {
			defer wg.Done()
			dev, err := puf.NewDevice(devSeed, 1024, quietProfile)
			if err != nil {
				errs <- err
				return
			}
			conn, err := net.Dial("tcp", ln.Addr().String())
			if err != nil {
				errs <- err
				return
			}
			defer conn.Close()
			res, err := netproto.Authenticate(conn, &core.Client{ID: core.ClientID(id), Device: dev}, netproto.Latency{})
			if err != nil {
				errs <- err
				return
			}
			if !res.Authenticated {
				errs <- fmt.Errorf("%s: not authenticated", id)
			}
		}()
	}
	wg.Wait()
	close(errs)
	for err := range errs {
		t.Error(err)
	}

	conn, err := net.Dial("tcp", ln.Addr().String())
	if err != nil {
		t.Fatal(err)
	}
	_, err = netproto.Authenticate(conn, &core.Client{ID: "ghost"}, netproto.Latency{})
	conn.Close()
	var se *netproto.ServerError
	if !errors.As(err, &se) || se.Status != netproto.StatusUnknownClient {
		t.Fatalf("ghost session: %v", err)
	}

	// Let the connection handlers finish tearing down, then snapshot.
	waitFor(t, func() bool {
		snap := st.Metrics.Snapshot()
		stats := st.Pool.Stats()
		return snap["netproto.conns_active"] == int64(0) &&
			stats.InFlight == 0 && stats.Queued == 0
	})

	var metrics struct {
		Sched         sched.Stats `json:"sched"`
		ConnsAccepted uint64      `json:"netproto.conns_accepted"`
		AuthOK        uint64      `json:"netproto.auth_ok"`
		ErrUnknown    uint64      `json:"netproto.errors.unknown-client"`
		QueueWait     struct {
			Count uint64 `json:"count"`
		} `json:"sched.queue_wait_seconds"`
	}
	body := httpGet(t, "http://"+dln.Addr().String()+"/metrics")
	if err := json.Unmarshal(body, &metrics); err != nil {
		t.Fatalf("decode /metrics: %v\n%s", err, body)
	}

	stats := st.Pool.Stats()
	if metrics.Sched != stats {
		t.Errorf("/metrics sched section diverges from Stats():\n  /metrics: %+v\n  Stats():  %+v", metrics.Sched, stats)
	}
	if stats.Submitted != good || stats.Completed != good {
		t.Errorf("scheduler saw %d submitted / %d completed, want %d", stats.Submitted, stats.Completed, good)
	}
	if metrics.ConnsAccepted != good+1 {
		t.Errorf("conns_accepted = %d, want %d", metrics.ConnsAccepted, good+1)
	}
	if metrics.AuthOK != good {
		t.Errorf("auth_ok = %d, want %d", metrics.AuthOK, good)
	}
	if metrics.ErrUnknown != 1 {
		t.Errorf("errors.unknown-client = %d, want 1", metrics.ErrUnknown)
	}
	if metrics.QueueWait.Count != good {
		t.Errorf("queue-wait histogram count = %d, want %d", metrics.QueueWait.Count, good)
	}

	// The flight recorder saw the burst too: every admitted search leaves
	// enqueue/dequeue/done plus backend start/end events.
	events := st.Trace.Snapshot()
	if len(events) == 0 {
		t.Fatal("trace ring is empty after the burst")
	}
	kinds := map[string]int{}
	for _, ev := range events {
		kinds[ev.Kind]++
	}
	for _, k := range []string{"sched.enqueue", "sched.dequeue", "sched.done", "search.start", "search.end"} {
		if kinds[k] != good {
			t.Errorf("trace ring has %d %q events, want %d", kinds[k], k, good)
		}
	}

	// The debug mux also answers /healthz and /trace.
	if got := string(httpGet(t, "http://"+dln.Addr().String()+"/healthz")); got != "ok\n" {
		t.Errorf("/healthz = %q", got)
	}
	var trace struct {
		Total  uint64            `json:"total"`
		Events []json.RawMessage `json:"events"`
	}
	if err := json.Unmarshal(httpGet(t, "http://"+dln.Addr().String()+"/trace"), &trace); err != nil {
		t.Fatalf("decode /trace: %v", err)
	}
	if int(trace.Total) != len(events) || len(trace.Events) != len(events) {
		t.Errorf("/trace reports %d/%d events, ring has %d", trace.Total, len(trace.Events), len(events))
	}
}

// TestNewServerSkipsBlankIDs exercises the constructor's enrollment
// hygiene.
func TestNewServerSkipsBlankIDs(t *testing.T) {
	st, err := rbc.NewServer(rbc.ServerConfig{
		Clients:      []string{" ", "", "carol"},
		EnrollSeed:   7,
		MaxDistance:  1,
		TimeLimit:    time.Second,
		SchedWorkers: 1,
		SchedQueue:   1,
		PUFProfile:   &quietProfile,
	})
	if err != nil {
		t.Fatal(err)
	}
	defer st.Pool.Close()
	if _, err := st.CA.BeginHandshake("carol"); err != nil {
		t.Errorf("carol not enrolled: %v", err)
	}
	if _, err := st.CA.BeginHandshake(""); !errors.Is(err, core.ErrUnknownClient) {
		t.Errorf("blank id enrolled: %v", err)
	}
}

func httpGet(t *testing.T, url string) []byte {
	t.Helper()
	resp, err := http.Get(url)
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	body, err := io.ReadAll(resp.Body)
	if err != nil {
		t.Fatal(err)
	}
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("GET %s: %d\n%s", url, resp.StatusCode, body)
	}
	return body
}

func waitFor(t *testing.T, cond func() bool) {
	t.Helper()
	deadline := time.Now().Add(5 * time.Second)
	for !cond() {
		if time.Now().After(deadline) {
			t.Fatal("condition did not converge")
		}
		time.Sleep(time.Millisecond)
	}
}
