package main

import (
	"bufio"
	"bytes"
	"fmt"
	"io"
	"net"
	"os"
	"os/exec"
	"path/filepath"
	"strings"
	"testing"
	"time"

	"rbcsalted/internal/core"
	"rbcsalted/internal/durable"
	"rbcsalted/internal/netproto"
	"rbcsalted/internal/puf"
)

// e2eServer is one run of the real rbc-server binary.
type e2eServer struct {
	cmd  *exec.Cmd
	addr string
	// boot is everything the server printed before the listening line
	// (enrollment and recovery reports).
	boot []string
}

// startServer launches bin and waits for its listening line.
func startServer(t *testing.T, bin string, args ...string) *e2eServer {
	t.Helper()
	cmd := exec.Command(bin, args...)
	var stderr bytes.Buffer
	cmd.Stderr = &stderr
	stdout, err := cmd.StdoutPipe()
	if err != nil {
		t.Fatal(err)
	}
	if err := cmd.Start(); err != nil {
		t.Fatal(err)
	}
	// If the server never reports listening, kill it so the scan below
	// terminates and the test fails with its output.
	watchdog := time.AfterFunc(30*time.Second, func() { cmd.Process.Kill() })
	defer watchdog.Stop()

	srv := &e2eServer{cmd: cmd}
	sc := bufio.NewScanner(stdout)
	for sc.Scan() {
		line := sc.Text()
		if i := strings.Index(line, "CA listening on "); i >= 0 {
			rest := line[i+len("CA listening on "):]
			if j := strings.Index(rest, " ("); j >= 0 {
				rest = rest[:j]
			}
			srv.addr = rest
			go io.Copy(io.Discard, stdout) // keep the pipe drained
			return srv
		}
		srv.boot = append(srv.boot, line)
	}
	cmd.Process.Kill()
	cmd.Wait()
	t.Fatalf("server exited before listening\nstdout: %v\nstderr: %s", srv.boot, stderr.String())
	return nil
}

// kill SIGKILLs the server: no shutdown snapshot, no final fsync beyond
// what the WAL policy already guaranteed.
func (s *e2eServer) kill() {
	s.cmd.Process.Kill()
	s.cmd.Wait()
}

// authenticate runs one full protocol round as the client device and
// returns the freshly rotated public key the CA registered.
func authenticate(t *testing.T, addr string, devSeed uint64) []byte {
	t.Helper()
	dev, err := puf.NewDevice(devSeed, 1024, quietProfile)
	if err != nil {
		t.Fatal(err)
	}
	conn, err := net.Dial("tcp", addr)
	if err != nil {
		t.Fatal(err)
	}
	defer conn.Close()
	res, err := netproto.Authenticate(conn, &core.Client{ID: "e2e", Device: dev}, netproto.Latency{})
	if err != nil {
		t.Fatal(err)
	}
	if !res.Authenticated {
		t.Fatal("client not authenticated")
	}
	if len(res.PublicKey) == 0 {
		t.Fatal("no rotated public key in result")
	}
	return res.PublicKey
}

// TestKillRestartDurability is the acceptance test for the durable
// subsystem: enroll and authenticate against `rbc-server -data-dir`,
// SIGKILL it, restart, and authenticate again with the rotated key —
// including once more after the WAL's final record is torn.
func TestKillRestartDurability(t *testing.T) {
	if testing.Short() {
		t.Skip("builds and restarts the real binary")
	}
	bin := filepath.Join(t.TempDir(), "rbc-server-e2e")
	if out, err := exec.Command("go", "build", "-o", bin, ".").CombinedOutput(); err != nil {
		t.Fatalf("go build: %v\n%s", err, out)
	}
	dataDir := t.TempDir()
	args := []string{
		"-listen", "127.0.0.1:0",
		"-data-dir", dataDir,
		"-sync", "always",
		"-clients", "e2e",
		"-enrollseed", "4242",
		"-baseerror", fmt.Sprintf("%g", quietProfile.BaseError),
		"-maxd", "3",
	}

	// Run 1: fresh enrollment, one authentication rotates the key.
	srv1 := startServer(t, bin, args...)
	pk1 := authenticate(t, srv1.addr, 4242)
	srv1.kill()

	// Run 2: recovery is pure WAL replay (the kill skipped the shutdown
	// snapshot). The client authenticates against the recovered, rotated
	// state — which re-rotates the key.
	srv2 := startServer(t, bin, args...)
	pk2 := authenticate(t, srv2.addr, 4242)
	if bytes.Equal(pk1, pk2) {
		t.Fatal("public key did not rotate across restart")
	}
	srv2.kill()

	// Tear the WAL's tail: append half a record's worth of garbage to
	// the newest segment, as if the crash had interrupted a write.
	segs, err := filepath.Glob(filepath.Join(dataDir, "wal-*.log"))
	if err != nil || len(segs) == 0 {
		t.Fatalf("no WAL segments in %s (err %v)", dataDir, err)
	}
	last := segs[len(segs)-1]
	f, err := os.OpenFile(last, os.O_WRONLY|os.O_APPEND, 0o600)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := f.Write([]byte{0xDE, 0xAD, 0xBE, 0xEF, 0xDE, 0xAD, 0xBE, 0xEF, 0x00}); err != nil {
		t.Fatal(err)
	}
	f.Close()

	// Run 3: recovery truncates the torn tail and serves the intact
	// prefix; the client still holds the matching key.
	srv3 := startServer(t, bin, args...)
	boot := strings.Join(srv3.boot, "\n")
	if !strings.Contains(boot, "torn tail repaired") {
		t.Errorf("boot output does not report the torn-tail repair:\n%s", boot)
	}
	pk3 := authenticate(t, srv3.addr, 4242)
	srv3.kill()

	// Final word: open the data directory in-process and confirm the RA
	// holds exactly the key from the last successful authentication.
	st, err := durable.Open(durable.Options{Dir: dataDir, Sync: durable.SyncNever})
	if err != nil {
		t.Fatal(err)
	}
	defer st.Close()
	raKey, ok := st.RA().PublicKey("e2e")
	if !ok {
		t.Fatal("RA lost the client across kill/restart")
	}
	if !bytes.Equal(raKey, pk3) {
		t.Fatalf("RA key diverged from the client's:\n RA:     %x\n client: %x", raKey, pk3)
	}
	if !st.Images().Has("e2e") {
		t.Fatal("enrollment image lost")
	}
}
