// Command rbc-server runs an RBC-SALTED certificate authority over TCP.
//
// For demonstration it enrolls a set of simulated PUF clients at startup
// (deterministic from -enrollseed) and prints the device seeds so
// rbc-client instances can be pointed at them.
//
// Searches run through a bounded scheduler (-sched-workers concurrent
// searches, -sched-queue waiting) so a burst of clients degrades into
// fast "overloaded" rejections instead of an unbounded goroutine pile-up.
//
// -backend picks the search engine: the real multicore CPU engine
// (default), a calibrated GPU or APU simulator, or "planner" — a
// cost-based dispatcher that routes every search to whichever engine
// the calibrated curves predict to be cheapest under -plan-policy and
// the optional -joules-budget (see DESIGN.md §14).
//
// With -debug-addr set, a second listener serves operational endpoints:
// /metrics (counters, latency histograms and live scheduler stats as
// JSON), /trace (the most recent search trace events), /healthz, and
// /debug/pprof. Keep it on loopback or a management network — it is
// unauthenticated.
//
// Usage:
//
//	rbc-server -listen :7443 -clients alice,bob -maxd 3 -sched-workers 4 \
//	    -debug-addr 127.0.0.1:7444
package main

import (
	"context"
	"encoding/hex"
	"flag"
	"fmt"
	"log"
	"net"
	"os"
	"os/signal"
	"strings"
	"syscall"
	"time"

	"rbcsalted"
	"rbcsalted/internal/core"
	"rbcsalted/internal/cryptoalg/aeskg"
	"rbcsalted/internal/durable"
	"rbcsalted/internal/netproto"
	"rbcsalted/internal/obs"
	"rbcsalted/internal/puf"
	"rbcsalted/internal/sched"
)

// options collects everything main reads from flags, so tests can build
// the same stack without a command line.
type options struct {
	clients      []string
	enrollSeed   uint64
	maxD         int
	timeLimit    time.Duration
	workers      int
	schedWorkers int
	schedQueue   int
	// backend selects the search engine (the -backend flag); the zero
	// value is BackendCPU. The planner kind multiplexes CPU, GPU and APU
	// engines by predicted cost and honors joulesBudget and planPolicy.
	backend      rbc.BackendKind
	joulesBudget float64
	planPolicy   rbc.PlanPolicy
	// inlineDepth is CAConfig.InlineDepth: shells d <= inlineDepth run
	// inline on the accepting goroutine, bypassing the scheduler (0 =
	// core.DefaultInlineDepth, negative = disabled).
	inlineDepth int
	// hedge enables hedged dispatch for straggling searches; hedgeDelay,
	// when non-zero, fixes the trigger instead of deriving it from the
	// service-time percentile.
	hedge      bool
	hedgeDelay time.Duration
	store        *core.ImageStore // nil = self-enroll demo store
	traceDepth   int
	// dataDir, when set, opens a durable.State there: every enrollment,
	// key rotation and session is journaled and survives a restart.
	// Mutually exclusive with store.
	dataDir string
	// sync is the WAL fsync policy for dataDir.
	sync durable.SyncPolicy
	// masterKey seals images in dataDir (the -key flag).
	masterKey [32]byte
	// profile overrides the PUF noise profile for self-enrolled demo
	// clients; nil means puf.DefaultProfile. Tests use a low-noise
	// profile so authentication outcomes are deterministic.
	profile *puf.Profile
}

// stack is the assembled serving path: scheduler-fronted backend, CA,
// protocol server, and the observability plumbing that spans them.
type stack struct {
	CA     *core.CA
	Pool   *sched.Scheduler
	Server *netproto.Server
	Reg    *obs.Registry
	Ring   *obs.Ring
	// State is non-nil when the stack runs on a durable data directory;
	// Close it last (it takes the shutdown snapshot).
	State *durable.State
}

// buildStack wires the serving path. Every layer shares one registry and
// one trace ring: the scheduler records queue/service histograms and
// emits lifecycle events, backends emit per-shell search events through
// the Task hook, and the protocol server counts connections and
// statuses. Close the returned stack's Pool when done.
func buildStack(opts options) (*stack, error) {
	reg := obs.NewRegistry()
	depth := opts.traceDepth
	if depth <= 0 {
		depth = 1024
	}
	ring := obs.NewRing(depth)

	var (
		state       *durable.State
		ra          *core.RA
		cfgSessions *core.SessionTable
	)
	store := opts.store
	switch {
	case opts.dataDir != "":
		if store != nil {
			return nil, fmt.Errorf("rbc-server: -store and -data-dir are mutually exclusive")
		}
		var err error
		state, err = durable.Open(durable.Options{
			Dir:       opts.dataDir,
			MasterKey: opts.masterKey,
			Sync:      opts.sync,
			Metrics:   reg,
		})
		if err != nil {
			return nil, err
		}
		store, ra, cfgSessions = state.Images(), state.RA(), state.Sessions()
	case store == nil:
		var err error
		store, err = core.NewImageStore([32]byte{0x52, 0x42, 0x43}) // demo master key
		if err != nil {
			return nil, err
		}
	}
	if ra == nil {
		ra = core.NewRA()
	}
	if opts.backend == rbc.BackendCluster {
		return nil, fmt.Errorf("rbc-server: cluster backends need a worker fleet; wire one up through the rbc API instead")
	}
	engine, err := rbc.NewBackend(rbc.BackendSpec{
		Kind:         opts.backend,
		Alg:          core.SHA3,
		Cores:        opts.workers,
		JoulesBudget: opts.joulesBudget,
		PlanPolicy:   opts.planPolicy,
		Metrics:      reg, // the planner kind publishes dispatch stats here
	})
	if err != nil {
		return nil, err
	}
	pool := sched.New(engine, sched.Config{
		Workers:    opts.schedWorkers,
		QueueDepth: opts.schedQueue,
		Hedge:      sched.HedgeConfig{Enabled: opts.hedge, Delay: opts.hedgeDelay},
		Trace:      ring,
		Metrics:    reg,
	})
	ca, err := core.NewCA(store, pool, &aeskg.Generator{}, ra, core.CAConfig{
		Alg:         core.SHA3,
		MaxDistance: opts.maxD,
		TimeLimit:   opts.timeLimit,
		InlineDepth: opts.inlineDepth,
		Trace:       ring,
		Sessions:    cfgSessions,
	})
	if err != nil {
		pool.Close()
		return nil, err
	}

	profile := puf.DefaultProfile
	if opts.profile != nil {
		profile = *opts.profile
	}
	for i, id := range opts.clients {
		id = strings.TrimSpace(id)
		if id == "" {
			continue
		}
		// On a durable data directory, restart must not re-enroll clients
		// the store already holds: that would reset their key-rotation
		// chain and desynchronize live devices.
		if store.Has(core.ClientID(id)) {
			continue
		}
		devSeed := opts.enrollSeed + uint64(i)
		dev, err := puf.NewDevice(devSeed, 1024, profile)
		if err != nil {
			pool.Close()
			return nil, err
		}
		im, err := puf.Enroll(dev, 31)
		if err != nil {
			pool.Close()
			return nil, err
		}
		if err := ca.Enroll(core.ClientID(id), im); err != nil {
			pool.Close()
			return nil, err
		}
	}

	// Live scheduler stats ride along in every /metrics snapshot, so the
	// debug endpoint always agrees with sched.Stats().
	reg.Func("sched", func() any { return pool.Stats() })

	server := &netproto.Server{
		CA:      ca,
		Metrics: netproto.NewMetrics(reg),
	}
	return &stack{CA: ca, Pool: pool, Server: server, Reg: reg, Ring: ring, State: state}, nil
}

// Close tears the stack down in dependency order; the durable state goes
// last so its shutdown snapshot sees every mutation.
func (s *stack) Close() error {
	s.Pool.Close()
	if s.State != nil {
		return s.State.Close()
	}
	return nil
}

// DebugListener starts the stack's debug HTTP listener (the -debug-addr
// surface) and returns it; close it to stop serving.
func (s *stack) DebugListener(addr string) (net.Listener, error) {
	return obs.Serve(addr, s.Reg, s.Ring)
}

func main() {
	listen := flag.String("listen", "127.0.0.1:7443", "listen address")
	debugAddr := flag.String("debug-addr", "", "serve /metrics, /trace and /debug/pprof on this address (empty = off)")
	clients := flag.String("clients", "alice,bob", "comma-separated client ids to enroll")
	enrollSeed := flag.Uint64("enrollseed", 42, "deterministic enrollment seed base")
	maxD := flag.Int("maxd", 3, "maximum Hamming distance searched")
	timeLimit := flag.Duration("timelimit", 20*time.Second, "authentication threshold T")
	workers := flag.Int("workers", 0, "search worker goroutines (0 = GOMAXPROCS)")
	backendFlag := flag.String("backend", "cpu", "search engine: cpu|gpu|apu|planner")
	joulesBudget := flag.Float64("joules-budget", 0, "with -backend planner: total energy budget in joules (0 = unbudgeted)")
	planPolicy := flag.String("plan-policy", "balanced", "with -backend planner: dispatch objective balanced|latency|energy")
	schedWorkers := flag.Int("sched-workers", sched.DefaultWorkers, "concurrent searches admitted by the scheduler")
	schedQueue := flag.Int("sched-queue", sched.DefaultQueueDepth, "scheduler admission-queue depth")
	inlineDepth := flag.Int("inline-depth", core.DefaultInlineDepth, "largest shell served inline without queuing (-1 = always queue)")
	hedge := flag.Bool("hedge", false, "re-issue straggling searches as a second backend flight")
	hedgeDelay := flag.Duration("hedge-delay", 0, "fixed hedge trigger (0 = derive from the service-time p95)")
	traceDepth := flag.Int("trace-depth", 1024, "trace ring capacity (events kept for /trace)")
	storePath := flag.String("store", "", "load an rbc-enroll image store instead of self-enrolling")
	keyHex := flag.String("key", strings.Repeat("00", 32), "master key for -store / -data-dir (64 hex chars)")
	dataDir := flag.String("data-dir", "", "durable data directory (WAL + snapshots); state survives restarts")
	syncMode := flag.String("sync", "interval", "WAL fsync policy for -data-dir: always|interval|never")
	baseError := flag.Float64("baseerror", 0, "PUF per-cell noise for self-enrolled demo clients (0 = default profile)")
	flag.Parse()

	kind, err := rbc.ParseBackendKind(*backendFlag)
	if err != nil {
		log.Fatal(err)
	}
	policy, err := rbc.ParsePlanPolicy(*planPolicy)
	if err != nil {
		log.Fatal(err)
	}
	opts := options{
		clients:      strings.Split(*clients, ","),
		enrollSeed:   *enrollSeed,
		maxD:         *maxD,
		timeLimit:    *timeLimit,
		workers:      *workers,
		schedWorkers: *schedWorkers,
		schedQueue:   *schedQueue,
		backend:      kind,
		joulesBudget: *joulesBudget,
		planPolicy:   policy,
		inlineDepth:  *inlineDepth,
		hedge:        *hedge,
		hedgeDelay:   *hedgeDelay,
		traceDepth:   *traceDepth,
		dataDir:      *dataDir,
	}
	if *baseError > 0 {
		// Override only the typical-cell noise, as rbc-client does:
		// keeping DefaultProfile's flaky cells means enrollment still
		// sees (and TAPKI-masks) the same bad cells the client has.
		p := puf.DefaultProfile
		p.BaseError = *baseError
		opts.profile = &p
	}
	sync, err := durable.ParseSyncPolicy(*syncMode)
	if err != nil {
		log.Fatal(err)
	}
	opts.sync = sync
	key, err := parseKey(*keyHex)
	if err != nil {
		log.Fatal(err)
	}
	opts.masterKey = key
	if *storePath != "" {
		store, err := loadStore(*storePath, key)
		if err != nil {
			log.Fatal(err)
		}
		fmt.Printf("loaded %s: %d enrolled client(s)\n", *storePath, store.Len())
		opts.store = store
		opts.clients = nil // images come from the store
	}

	st, err := buildStack(opts)
	if err != nil {
		log.Fatal(err)
	}
	defer st.Close()
	if st.State != nil {
		rec := st.State.Recovery()
		fmt.Printf("rbc-server: data dir %s (%d enrolled; snapshot seq %d, %d records replayed",
			opts.dataDir, st.State.Images().Len(), rec.SnapshotSeq, rec.Records)
		if rec.Truncated {
			fmt.Printf(", torn tail repaired: %d bytes", rec.TornBytes)
		}
		fmt.Println(")")
	}
	for i, id := range opts.clients {
		id = strings.TrimSpace(id)
		if id == "" {
			continue
		}
		devSeed := opts.enrollSeed + uint64(i)
		fmt.Printf("enrolled %q (device seed %d; run: rbc-client -id %s -devseed %d)\n",
			id, devSeed, id, devSeed)
	}

	if *debugAddr != "" {
		dln, err := st.DebugListener(*debugAddr)
		if err != nil {
			log.Fatal(err)
		}
		defer dln.Close()
		fmt.Printf("rbc-server: debug endpoints on http://%s/metrics\n", dln.Addr())
	}

	ln, err := net.Listen("tcp", *listen)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("rbc-server: CA listening on %s (backend %s, d<=%d, T=%s)\n",
		ln.Addr(), st.Pool.Name(), *maxD, *timeLimit)

	// SIGINT/SIGTERM close the listener; Serve returns, the deferred
	// stack Close snapshots the durable state, and the process exits
	// cleanly. A SIGKILL skips all of that — which is exactly what the
	// WAL is for.
	ctx, stop := signal.NotifyContext(context.Background(), os.Interrupt, syscall.SIGTERM)
	defer stop()
	go func() {
		<-ctx.Done()
		ln.Close()
	}()
	serveErr := st.Server.Serve(ln)
	if ctx.Err() == nil && serveErr != nil {
		log.Fatal(serveErr)
	}
	fmt.Println("rbc-server: shutting down")
}

func parseKey(keyHex string) ([32]byte, error) {
	var key [32]byte
	raw, err := hex.DecodeString(keyHex)
	if err != nil || len(raw) != 32 {
		return key, fmt.Errorf("rbc-server: -key must be 64 hex chars")
	}
	copy(key[:], raw)
	return key, nil
}

func loadStore(path string, key [32]byte) (*core.ImageStore, error) {
	f, err := os.Open(path)
	if err != nil {
		return nil, err
	}
	defer f.Close()
	return core.LoadImageStore(key, f)
}
