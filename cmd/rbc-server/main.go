// Command rbc-server runs an RBC-SALTED certificate authority over TCP.
//
// For demonstration it enrolls a set of simulated PUF clients at startup
// (deterministic from -enrollseed) and prints the device seeds so
// rbc-client instances can be pointed at them.
//
// Searches run through a bounded scheduler (-sched-workers concurrent
// searches, -sched-queue waiting) so a burst of clients degrades into
// fast "overloaded" rejections instead of an unbounded goroutine pile-up.
//
// -backend picks the search engine: the real multicore CPU engine
// (default), a calibrated GPU or APU simulator, or "planner" — a
// cost-based dispatcher that routes every search to whichever engine
// the calibrated curves predict to be cheapest under -plan-policy and
// the optional -joules-budget (see DESIGN.md §14).
//
// # Replicated, sharded serving (DESIGN.md §15)
//
// A group of rbc-servers forms a scaled-out CA. Give every node a
// -node-id, its client-facing -advertise address, and the full topology
// via -peers (id=addr pairs); clients are then routed by consistent
// hashing, and a node that receives a hello for a shard it does not own
// refuses with the owner's address (the rbc.Client API follows such
// redirects transparently).
//
// -repl-listen serves this node's write-ahead log to followers.
// `-role follower -follow addr` makes the node ingest a primary's WAL
// instead of being authoritative; on the primary's death it can be
// restarted with -role primary after a promotion (the fencing epoch in
// the data directory's replica.meta keeps the deposed primary from
// coming back as a split brain). -shards restricts a follower to a
// subset of shards, which is how serving peers cross-replicate exactly
// the shards each owns.
//
// With -debug-addr set, a second listener serves operational endpoints:
// /metrics (counters, latency histograms and live scheduler stats as
// JSON), /trace (the most recent search trace events), /healthz, and
// /debug/pprof. Keep it on loopback or a management network — it is
// unauthenticated.
//
// Usage:
//
//	rbc-server -listen :7443 -clients alice,bob -maxd 3 -sched-workers 4 \
//	    -data-dir /var/lib/rbc -repl-listen :7543 \
//	    -node-id ca1 -advertise 10.0.0.1:7443 -peers ca2=10.0.0.2:7443
package main

import (
	"context"
	"encoding/hex"
	"flag"
	"fmt"
	"log"
	"net"
	"os"
	"os/signal"
	"strconv"
	"strings"
	"syscall"
	"time"

	"rbcsalted"
	"rbcsalted/internal/core"
	"rbcsalted/internal/durable"
	"rbcsalted/internal/puf"
	"rbcsalted/internal/sched"
)

func main() {
	listen := flag.String("listen", "127.0.0.1:7443", "listen address")
	debugAddr := flag.String("debug-addr", "", "serve /metrics, /trace and /debug/pprof on this address (empty = off)")
	clients := flag.String("clients", "alice,bob", "comma-separated client ids to enroll")
	enrollSeed := flag.Uint64("enrollseed", 42, "deterministic enrollment seed base")
	maxD := flag.Int("maxd", 3, "maximum Hamming distance searched")
	timeLimit := flag.Duration("timelimit", 20*time.Second, "authentication threshold T")
	workers := flag.Int("workers", 0, "search worker goroutines (0 = GOMAXPROCS)")
	backendFlag := flag.String("backend", "cpu", "search engine: cpu|gpu|apu|planner")
	joulesBudget := flag.Float64("joules-budget", 0, "with -backend planner: total energy budget in joules (0 = unbudgeted)")
	planPolicy := flag.String("plan-policy", "balanced", "with -backend planner: dispatch objective balanced|latency|energy")
	schedWorkers := flag.Int("sched-workers", sched.DefaultWorkers, "concurrent searches admitted by the scheduler")
	schedQueue := flag.Int("sched-queue", sched.DefaultQueueDepth, "scheduler admission-queue depth")
	inlineDepth := flag.Int("inline-depth", core.DefaultInlineDepth, "largest shell served inline without queuing (-1 = always queue)")
	hedge := flag.Bool("hedge", false, "re-issue straggling searches as a second backend flight")
	hedgeDelay := flag.Duration("hedge-delay", 0, "fixed hedge trigger (0 = derive from the service-time p95)")
	traceDepth := flag.Int("trace-depth", 1024, "trace ring capacity (events kept for /trace)")
	storePath := flag.String("store", "", "load an rbc-enroll image store instead of self-enrolling")
	keyHex := flag.String("key", strings.Repeat("00", 32), "master key for -store / -data-dir (64 hex chars)")
	dataDir := flag.String("data-dir", "", "durable data directory (WAL + snapshots); state survives restarts")
	syncMode := flag.String("sync", "interval", "WAL fsync policy for -data-dir: always|interval|never")
	baseError := flag.Float64("baseerror", 0, "PUF per-cell noise for self-enrolled demo clients (0 = default profile)")

	role := flag.String("role", "primary", "replication role: primary (authoritative) or follower (ingests -follow)")
	nodeID := flag.String("node-id", "", "this node's id in the shard ring (empty = unsharded)")
	advertise := flag.String("advertise", "", "client-facing address announced in the ring (default: -listen)")
	peers := flag.String("peers", "", "other ring nodes as comma-separated id=addr pairs")
	numShards := flag.Int("num-shards", rbc.DefaultNumShards, "shard-space size (must agree across the group)")
	replListen := flag.String("repl-listen", "", "serve WAL replication to followers on this address (needs -data-dir)")
	follow := flag.String("follow", "", "with -role follower: primary replication address to ingest")
	shardsFlag := flag.String("shards", "", "with -follow: comma-separated shard subset to subscribe (empty = all)")
	flag.Parse()

	kind, err := rbc.ParseBackendKind(*backendFlag)
	if err != nil {
		log.Fatal(err)
	}
	policy, err := rbc.ParsePlanPolicy(*planPolicy)
	if err != nil {
		log.Fatal(err)
	}
	sync, err := durable.ParseSyncPolicy(*syncMode)
	if err != nil {
		log.Fatal(err)
	}
	key, err := parseKey(*keyHex)
	if err != nil {
		log.Fatal(err)
	}

	cfg := rbc.ServerConfig{
		Clients:      strings.Split(*clients, ","),
		EnrollSeed:   *enrollSeed,
		MaxDistance:  *maxD,
		TimeLimit:    *timeLimit,
		Cores:        *workers,
		SchedWorkers: *schedWorkers,
		SchedQueue:   *schedQueue,
		Backend:      kind,
		JoulesBudget: *joulesBudget,
		PlanPolicy:   policy,
		InlineDepth:  *inlineDepth,
		Hedge:        *hedge,
		HedgeDelay:   *hedgeDelay,
		TraceDepth:   *traceDepth,
		DataDir:      *dataDir,
		Sync:         sync,
		MasterKey:    key,
		NodeID:       *nodeID,
		OnFenced: func(epoch uint64) {
			log.Printf("rbc-server: fenced by epoch %d — a promotion happened elsewhere; shut this node down", epoch)
		},
	}
	if *baseError > 0 {
		// Override only the typical-cell noise, as rbc-client does:
		// keeping DefaultProfile's flaky cells means enrollment still
		// sees (and TAPKI-masks) the same bad cells the client has.
		p := puf.DefaultProfile
		p.BaseError = *baseError
		cfg.PUFProfile = &p
	}
	if *storePath != "" {
		store, err := loadStore(*storePath, key)
		if err != nil {
			log.Fatal(err)
		}
		fmt.Printf("loaded %s: %d enrolled client(s)\n", *storePath, store.Len())
		cfg.Store = store
		cfg.Clients = nil // images come from the store
	}
	if *nodeID != "" {
		ringMap, err := buildRing(*nodeID, firstNonEmpty(*advertise, *listen), *peers, *numShards)
		if err != nil {
			log.Fatal(err)
		}
		cfg.Ring = ringMap
	}

	node, err := rbc.NewServer(cfg)
	if err != nil {
		log.Fatal(err)
	}
	defer node.Close()
	if node.State != nil {
		rec := node.State.Recovery()
		fmt.Printf("rbc-server: data dir %s (%d enrolled; snapshot seq %d, %d records replayed",
			*dataDir, node.State.Images().Len(), rec.SnapshotSeq, rec.Records)
		if rec.Truncated {
			fmt.Printf(", torn tail repaired: %d bytes", rec.TornBytes)
		}
		fmt.Println(")")
	}
	for i, id := range cfg.Clients {
		id = strings.TrimSpace(id)
		if id == "" {
			continue
		}
		devSeed := *enrollSeed + uint64(i)
		fmt.Printf("enrolled %q (device seed %d; run: rbc-client -id %s -devseed %d)\n",
			id, devSeed, id, devSeed)
	}

	if *debugAddr != "" {
		dln, err := node.DebugListener(*debugAddr)
		if err != nil {
			log.Fatal(err)
		}
		defer dln.Close()
		fmt.Printf("rbc-server: debug endpoints on http://%s/metrics\n", dln.Addr())
	}

	// SIGINT/SIGTERM close the listeners; Serve returns, the deferred
	// node Close snapshots the durable state, and the process exits
	// cleanly. A SIGKILL skips all of that — which is exactly what the
	// WAL is for.
	ctx, stop := signal.NotifyContext(context.Background(), os.Interrupt, syscall.SIGTERM)
	defer stop()

	if *replListen != "" {
		rln, err := net.Listen("tcp", *replListen)
		if err != nil {
			log.Fatal(err)
		}
		fmt.Printf("rbc-server: replication listening on %s\n", rln.Addr())
		go func() {
			if err := node.ServeReplication(rln); err != nil {
				log.Printf("rbc-server: replication stopped: %v", err)
			}
		}()
		defer rln.Close()
	}
	if *follow != "" {
		if *role != "follower" {
			log.Fatal("rbc-server: -follow requires -role follower")
		}
		shards, err := parseShards(*shardsFlag)
		if err != nil {
			log.Fatal(err)
		}
		fmt.Printf("rbc-server: following primary at %s\n", *follow)
		go func() {
			if err := node.Follow(ctx, *follow, shards); err != nil && ctx.Err() == nil {
				log.Printf("rbc-server: follower stopped: %v", err)
			}
		}()
	}

	ln, err := net.Listen("tcp", *listen)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("rbc-server: CA listening on %s (role %s, backend %s, d<=%d, T=%s)\n",
		ln.Addr(), *role, node.Pool.Name(), *maxD, *timeLimit)

	go func() {
		<-ctx.Done()
		ln.Close()
	}()
	serveErr := node.Serve(ln)
	if ctx.Err() == nil && serveErr != nil {
		log.Fatal(serveErr)
	}
	fmt.Println("rbc-server: shutting down")
}

// buildRing assembles the shard ring from this node plus the -peers
// pairs.
func buildRing(selfID, selfAddr, peers string, numShards int) (*rbc.RingMap, error) {
	nodes := []rbc.RingNode{{ID: selfID, Addr: selfAddr}}
	if peers != "" {
		for _, pair := range strings.Split(peers, ",") {
			id, addr, ok := strings.Cut(strings.TrimSpace(pair), "=")
			if !ok || id == "" || addr == "" {
				return nil, fmt.Errorf("rbc-server: -peers entry %q is not id=addr", pair)
			}
			nodes = append(nodes, rbc.RingNode{ID: id, Addr: addr})
		}
	}
	return rbc.NewRingMap(numShards, 0, nodes...)
}

func parseShards(s string) ([]int, error) {
	if s == "" {
		return nil, nil
	}
	var out []int
	for _, part := range strings.Split(s, ",") {
		n, err := strconv.Atoi(strings.TrimSpace(part))
		if err != nil {
			return nil, fmt.Errorf("rbc-server: bad -shards entry %q", part)
		}
		out = append(out, n)
	}
	return out, nil
}

func firstNonEmpty(a, b string) string {
	if a != "" {
		return a
	}
	return b
}

func parseKey(keyHex string) ([32]byte, error) {
	var key [32]byte
	raw, err := hex.DecodeString(keyHex)
	if err != nil || len(raw) != 32 {
		return key, fmt.Errorf("rbc-server: -key must be 64 hex chars")
	}
	copy(key[:], raw)
	return key, nil
}

func loadStore(path string, key [32]byte) (*core.ImageStore, error) {
	f, err := os.Open(path)
	if err != nil {
		return nil, err
	}
	defer f.Close()
	return core.LoadImageStore(key, f)
}
