// Command rbc-server runs an RBC-SALTED certificate authority over TCP.
//
// For demonstration it enrolls a set of simulated PUF clients at startup
// (deterministic from -enrollseed) and prints the device seeds so
// rbc-client instances can be pointed at them.
//
// Searches run through a bounded scheduler (-sched-workers concurrent
// searches, -sched-queue waiting) so a burst of clients degrades into
// fast "overloaded" rejections instead of an unbounded goroutine pile-up.
//
// Usage:
//
//	rbc-server -listen :7443 -clients alice,bob -maxd 3 -sched-workers 4
package main

import (
	"encoding/hex"
	"flag"
	"fmt"
	"log"
	"net"
	"os"
	"strings"
	"time"

	"rbcsalted/internal/core"
	"rbcsalted/internal/cpu"
	"rbcsalted/internal/cryptoalg/aeskg"
	"rbcsalted/internal/netproto"
	"rbcsalted/internal/puf"
	"rbcsalted/internal/sched"
)

func main() {
	listen := flag.String("listen", "127.0.0.1:7443", "listen address")
	clients := flag.String("clients", "alice,bob", "comma-separated client ids to enroll")
	enrollSeed := flag.Uint64("enrollseed", 42, "deterministic enrollment seed base")
	maxD := flag.Int("maxd", 3, "maximum Hamming distance searched")
	timeLimit := flag.Duration("timelimit", 20*time.Second, "authentication threshold T")
	workers := flag.Int("workers", 0, "search worker goroutines (0 = GOMAXPROCS)")
	schedWorkers := flag.Int("sched-workers", sched.DefaultWorkers, "concurrent searches admitted by the scheduler")
	schedQueue := flag.Int("sched-queue", sched.DefaultQueueDepth, "scheduler admission-queue depth")
	storePath := flag.String("store", "", "load an rbc-enroll image store instead of self-enrolling")
	keyHex := flag.String("key", strings.Repeat("00", 32), "master key for -store (64 hex chars)")
	flag.Parse()

	var store *core.ImageStore
	var err error
	if *storePath != "" {
		store, err = loadStore(*storePath, *keyHex)
		if err != nil {
			log.Fatal(err)
		}
		fmt.Printf("loaded %s: %d enrolled client(s)\n", *storePath, store.Len())
		*clients = "" // images come from the store
	} else {
		store, err = core.NewImageStore([32]byte{0x52, 0x42, 0x43}) // demo master key
		if err != nil {
			log.Fatal(err)
		}
	}
	ra := core.NewRA()
	engine := &cpu.Backend{Alg: core.SHA3, Workers: *workers}
	backend := sched.New(engine, sched.Config{Workers: *schedWorkers, QueueDepth: *schedQueue})
	defer backend.Close()
	ca, err := core.NewCA(store, backend, &aeskg.Generator{}, ra, core.CAConfig{
		Alg:         core.SHA3,
		MaxDistance: *maxD,
		TimeLimit:   *timeLimit,
	})
	if err != nil {
		log.Fatal(err)
	}

	for i, id := range strings.Split(*clients, ",") {
		id = strings.TrimSpace(id)
		if id == "" {
			continue
		}
		devSeed := *enrollSeed + uint64(i)
		dev, err := puf.NewDevice(devSeed, 1024, puf.DefaultProfile)
		if err != nil {
			log.Fatal(err)
		}
		im, err := puf.Enroll(dev, 31)
		if err != nil {
			log.Fatal(err)
		}
		if err := ca.Enroll(core.ClientID(id), im); err != nil {
			log.Fatal(err)
		}
		fmt.Printf("enrolled %q (device seed %d; run: rbc-client -id %s -devseed %d)\n",
			id, devSeed, id, devSeed)
	}

	ln, err := net.Listen("tcp", *listen)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("rbc-server: CA listening on %s (backend %s, d<=%d, T=%s)\n",
		ln.Addr(), backend.Name(), *maxD, *timeLimit)
	srv := &netproto.Server{CA: ca}
	if err := srv.Serve(ln); err != nil {
		log.Fatal(err)
	}
}

func loadStore(path, keyHex string) (*core.ImageStore, error) {
	raw, err := hex.DecodeString(keyHex)
	if err != nil || len(raw) != 32 {
		return nil, fmt.Errorf("rbc-server: -key must be 64 hex chars")
	}
	var key [32]byte
	copy(key[:], raw)
	f, err := os.Open(path)
	if err != nil {
		return nil, err
	}
	defer f.Close()
	return core.LoadImageStore(key, f)
}
