package main

import (
	"bytes"
	"context"
	"errors"
	"fmt"
	"net"
	"path/filepath"
	"sync"
	"sync/atomic"
	"testing"
	"time"

	"rbcsalted"
	"rbcsalted/internal/core"
	"rbcsalted/internal/puf"
)

// drillNode is one member of the in-process CA group: a ServerNode plus
// the listener serving it, restartable in place on a fixed address.
type drillNode struct {
	node *rbc.ServerNode
	ln   net.Listener
	addr string
}

func (d *drillNode) stop() {
	d.node.Proto.Close()
	d.node.Close()
}

// TestRollingRestartDrill is the gating smoke drill for the scaled-out
// CA: three routed nodes serve a continuous authentication load while
// each node in turn is stopped and restarted on its address. The
// routing client must ride out every restart — zero failed
// authentications — by failing over to the surviving nodes' redirects
// and redialing the owner once it returns.
func TestRollingRestartDrill(t *testing.T) {
	if testing.Short() {
		t.Skip("multi-node restart drill")
	}

	const (
		numNodes   = 3
		numClients = 9
	)
	clientIDs := make([]string, numClients)
	for i := range clientIDs {
		clientIDs[i] = fmt.Sprintf("c%02d", i)
	}

	// Fixed addresses first, so the ring can be built before any server
	// and restarts land on the same address.
	listeners := make([]net.Listener, numNodes)
	nodes := make([]rbc.RingNode, numNodes)
	for i := range listeners {
		ln, err := net.Listen("tcp", "127.0.0.1:0")
		if err != nil {
			t.Fatal(err)
		}
		listeners[i] = ln
		nodes[i] = rbc.RingNode{ID: fmt.Sprintf("ca%d", i), Addr: ln.Addr().String()}
	}
	ringMap, err := rbc.NewRingMap(0, 0, nodes...)
	if err != nil {
		t.Fatal(err)
	}

	start := func(i int, ln net.Listener) *drillNode {
		node, err := rbc.NewServer(rbc.ServerConfig{
			Clients:      clientIDs,
			EnrollSeed:   42,
			MaxDistance:  3,
			TimeLimit:    20 * time.Second,
			Cores:        2,
			SchedWorkers: 2,
			SchedQueue:   32,
			PUFProfile:   &quietProfile,
			NodeID:       nodes[i].ID,
			Ring:         ringMap,
		})
		if err != nil {
			t.Fatal(err)
		}
		go node.Serve(ln)
		return &drillNode{node: node, ln: ln, addr: ln.Addr().String()}
	}
	group := make([]*drillNode, numNodes)
	for i, ln := range listeners {
		group[i] = start(i, ln)
	}
	defer func() {
		for _, d := range group {
			d.stop()
		}
	}()

	// The load fleet: one routing client per enrolled device, looping
	// authentications until told to stop. Any error is a dropped auth.
	addrs := make([]string, numNodes)
	for i, n := range nodes {
		addrs[i] = n.Addr
	}
	var (
		stop     atomic.Bool
		okCount  atomic.Int64
		wg       sync.WaitGroup
		failures = make(chan error, numClients)
	)
	for i, id := range clientIDs {
		dev, err := puf.NewDevice(42+uint64(i), 1024, quietProfile)
		if err != nil {
			t.Fatal(err)
		}
		device := &rbc.PUFClient{ID: core.ClientID(id), Device: dev}
		client, err := rbc.Dial(rbc.ClientConfig{
			Addrs: addrs,
			Ring:  ringMap,
			// Generous retry budget: a restart window must be shorter
			// than the total backoff the client is willing to spend.
			MaxAttempts:  12,
			RetryBackoff: 10 * time.Millisecond,
		})
		if err != nil {
			t.Fatal(err)
		}
		wg.Add(1)
		go func() {
			defer wg.Done()
			defer client.Close()
			for !stop.Load() {
				ctx, cancel := context.WithTimeout(context.Background(), 30*time.Second)
				res, err := client.Authenticate(ctx, rbc.ClientAuthRequest{Device: device})
				cancel()
				if err != nil {
					failures <- fmt.Errorf("%s: %w", device.ID, err)
					return
				}
				if !res.Authenticated {
					failures <- fmt.Errorf("%s: denied", device.ID)
					return
				}
				okCount.Add(1)
			}
		}()
	}

	// Let the fleet warm up, then roll every node: stop it, hold it down
	// briefly mid-load, restart it on the same address.
	waitAuths := func(target int64) {
		deadline := time.Now().Add(60 * time.Second)
		for okCount.Load() < target && time.Now().Before(deadline) {
			time.Sleep(5 * time.Millisecond)
		}
		if okCount.Load() < target {
			t.Fatalf("load stalled at %d authentications", okCount.Load())
		}
	}
	waitAuths(int64(numClients))
	for i := range group {
		group[i].stop()
		time.Sleep(20 * time.Millisecond) // in-flight requests hit the dead node
		ln, err := net.Listen("tcp", group[i].addr)
		if err != nil {
			t.Fatalf("rebind %s: %v", group[i].addr, err)
		}
		group[i] = start(i, ln)
		// The group must make progress after every restart before the
		// next node goes down, or two nodes could overlap in downtime.
		waitAuths(okCount.Load() + int64(numClients))
	}

	stop.Store(true)
	wg.Wait()
	close(failures)
	for err := range failures {
		t.Errorf("dropped authentication: %v", err)
	}
	t.Logf("rolling drill: %d authentications, 0 dropped, %d restarts", okCount.Load(), numNodes)
}

// TestKillPromoteFailover drives the primary→standby failover end to
// end through the public API: a primary CA serves authentications and
// streams its WAL to a standby; the primary dies; the standby is
// promoted and must (a) hold every acknowledged key rotation, (b) serve
// fresh authentications for the replicated enrollments, and (c) fence
// the deposed primary's epoch.
func TestKillPromoteFailover(t *testing.T) {
	if testing.Short() {
		t.Skip("two-node failover drill")
	}

	clientIDs := []string{"f0", "f1", "f2", "f3", "f4", "f5"}
	primary, err := rbc.NewServer(rbc.ServerConfig{
		Clients:      clientIDs,
		EnrollSeed:   4242,
		MaxDistance:  3,
		TimeLimit:    20 * time.Second,
		SchedWorkers: 2,
		SchedQueue:   16,
		PUFProfile:   &quietProfile,
		DataDir:      t.TempDir(),
	})
	if err != nil {
		t.Fatal(err)
	}
	standbyDir := t.TempDir()
	standby, err := rbc.NewServer(rbc.ServerConfig{
		MaxDistance:  3,
		TimeLimit:    20 * time.Second,
		SchedWorkers: 2,
		SchedQueue:   16,
		DataDir:      standbyDir,
		NodeID:       "standby",
	})
	if err != nil {
		t.Fatal(err)
	}
	defer standby.Close()

	replLn, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	go primary.ServeReplication(replLn)
	followCtx, cancelFollow := context.WithCancel(context.Background())
	defer cancelFollow()
	followDone := make(chan error, 1)
	go func() {
		followDone <- standby.Follow(followCtx, replLn.Addr().String(), nil)
	}()

	protoLn, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	go primary.Serve(protoLn)

	// Load: every client authenticates; each acknowledged success
	// rotates that client's key in the primary's RA.
	acked := make(map[string][]byte)
	for i, id := range clientIDs {
		dev, err := puf.NewDevice(4242+uint64(i), 1024, quietProfile)
		if err != nil {
			t.Fatal(err)
		}
		conn, err := net.Dial("tcp", protoLn.Addr().String())
		if err != nil {
			t.Fatal(err)
		}
		res, err := rbc.Authenticate(conn, &rbc.PUFClient{ID: core.ClientID(id), Device: dev}, rbc.Latency{})
		conn.Close()
		if err != nil || !res.Authenticated {
			t.Fatalf("%s: %+v, %v", id, res, err)
		}
		acked[id] = res.PublicKey
	}

	// Replication is asynchronous: the drill waits for the standby to
	// ack everything the primary journaled, which is the point at which
	// "acknowledged" and "replicated" coincide.
	deadline := time.Now().Add(30 * time.Second)
	for {
		p := primary.Replica()
		if p != nil {
			fs := p.Followers()
			if len(fs) == 1 && fs[0].Acked >= primary.State.LastSeq() {
				break
			}
		}
		if time.Now().After(deadline) {
			t.Fatal("standby never caught up")
		}
		time.Sleep(5 * time.Millisecond)
	}

	// Kill the primary and promote the standby.
	if err := primary.Close(); err != nil {
		t.Fatal(err)
	}
	epoch, err := standby.Promote()
	if err != nil {
		t.Fatal(err)
	}
	if epoch == 0 {
		t.Fatal("promotion did not advance the fencing epoch")
	}
	select {
	case err := <-followDone:
		if err != nil && !errors.Is(err, context.Canceled) && !errors.Is(err, rbc.ErrPromoted) {
			t.Fatalf("follow loop: %v", err)
		}
	case <-time.After(10 * time.Second):
		t.Fatal("follow loop did not exit after promotion")
	}

	// (a) No acknowledged key rotation was lost.
	for id, key := range acked {
		got, ok := standby.State.RA().PublicKey(core.ClientID(id))
		if !ok {
			t.Fatalf("standby lost %s", id)
		}
		if !bytes.Equal(got, key) {
			t.Fatalf("standby key for %s diverged from the acknowledged rotation", id)
		}
	}

	// (b) The promoted node serves the replicated enrollments: a client
	// device authenticates against it and rotates its key again.
	newLn, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	go standby.Serve(newLn)
	defer standby.Proto.Close()
	dev, err := puf.NewDevice(4242, 1024, quietProfile)
	if err != nil {
		t.Fatal(err)
	}
	client, err := rbc.Dial(rbc.ClientConfig{Addrs: []string{newLn.Addr().String()}})
	if err != nil {
		t.Fatal(err)
	}
	defer client.Close()
	ctx, cancel := context.WithTimeout(context.Background(), 30*time.Second)
	defer cancel()
	res, err := client.Authenticate(ctx, rbc.ClientAuthRequest{
		Device: &rbc.PUFClient{ID: "f0", Device: dev},
	})
	if err != nil || !res.Authenticated {
		t.Fatalf("post-failover auth: %+v, %v", res, err)
	}
	if bytes.Equal(res.PublicKey, acked["f0"]) {
		t.Fatal("post-failover authentication did not rotate the key")
	}

	// (c) The promotion's fencing epoch is durable, so a deposed primary
	// coming back can never outrank this node.
	meta, err := rbc.LoadReplicaMeta(filepath.Join(standbyDir, "replica.meta"))
	if err != nil || meta.Epoch != epoch {
		t.Fatalf("promoted meta = %+v, %v; want epoch %d", meta, err, epoch)
	}
}
