// Package rbc is the public API of this repository: a Go implementation
// of RBC-SALTED, the hash-based Response-Based Cryptography protocol of
// "Evaluating Accelerators for a High-Throughput Hash-Based Security
// Protocol" (ICPP-W 2023), together with the search engines it was
// evaluated on.
//
// Response-Based Cryptography authenticates a client whose PUF (Physical
// Unclonable Function) produces a slightly erratic 256-bit seed: the
// server searches the Hamming ball around its enrolled image of the PUF
// until it finds the seed whose digest matches the one the client sent,
// then salts the seed and generates the session's public key from it.
//
// # Quick start
//
//	dev, _ := rbc.NewPUFDevice(1234, 1024, rbc.DefaultPUFProfile)
//	image, _ := rbc.EnrollPUF(dev, 31)
//
//	store, _ := rbc.NewImageStore(masterKey)
//	ca, _ := rbc.NewCA(store, &rbc.CPUBackend{Alg: rbc.SHA3}, &rbc.AESKeyGenerator{}, rbc.NewRA(), rbc.CAConfig{})
//	ca.Enroll("alice", image)
//
//	client := &rbc.PUFClient{ID: "alice", Device: dev}
//	ch, _ := ca.BeginHandshake("alice")
//	m1, _ := client.Respond(ch)
//	result, _ := ca.Authenticate(ctx, rbc.AuthRequest{Client: "alice", Nonce: ch.Nonce, M1: m1})
//
// AuthRequest optionally carries a QoS class (ClassInteractive,
// ClassBatch, ClassBackground) and an absolute deadline; both flow
// through the scheduler's admission control and onto the wire.
//
// # Search engines
//
// Four interchangeable core.Backend implementations are exposed, all
// constructed through the single NewBackend entry point:
//
//   - BackendCPU: real multicore execution on this machine (SALTED-CPU).
//   - BackendGPU: a calibrated NVIDIA A100 simulator (SALTED-GPU),
//     including multi-GPU scaling.
//   - BackendAPU: a calibrated GSI Gemini associative-processor
//     simulator (SALTED-APU) whose compute runs through a real bit-sliced
//     gate-level engine.
//   - BackendCluster: a fault-tolerant distributed coordinator fanning
//     shells out over TCP-connected workers, with heartbeat failure
//     detection and exactly-once shard re-dispatch.
//
// For example:
//
//	engine, _ := rbc.NewBackend(rbc.BackendSpec{Kind: rbc.BackendGPU},
//		rbc.WithAlg(rbc.SHA3), rbc.WithDevices(3))
//
// Every backend implements Search(ctx, task): cancelling ctx stops the
// shell loops cooperatively and returns the partial Result with
// ctx.Err().
//
// # Serving many clients
//
// NewScheduler wraps any Backend in a bounded worker pool with
// class-aware admission queues — the serving-side counterpart of the
// paper's throughput work. The scheduler is itself a Backend, so a CA
// (or a netproto.Server) plugs it in unchanged:
//
//	s := rbc.NewScheduler(&rbc.CPUBackend{Alg: rbc.SHA3},
//		rbc.SchedulerConfig{Workers: 4, QueueDepth: 64})
//	defer s.Close()
//	ca, _ := rbc.NewCA(store, s, &rbc.AESKeyGenerator{}, rbc.NewRA(), rbc.CAConfig{})
//
// Serving is distance-progressive and deadline-aware. The CA runs
// shells d <= CAConfig.InlineDepth (default 1) inline on the calling
// goroutine — the common low-noise case never waits in a queue — and
// escalates only the larger shells to the backend. Interactive
// requests are dequeued before batch before background (with priority
// aging so nothing starves); a request whose deadline cannot be met is
// refused with ErrDeadlineInfeasible instead of burning search time;
// when the queue is full, admission sheds the largest-distance,
// loosest-deadline background work first and otherwise fails fast with
// ErrOverloaded (wire status "overloaded"). Straggling searches can be
// hedged with a second backend flight (SchedulerConfig.Hedge);
// s.Stats() reports per-class queue-wait, service-time, shed and hedge
// counters.
//
// # Observability
//
// The serving path is instrumented end to end with the dependency-free
// obs layer: a MetricsRegistry collects counters, gauges and latency
// histograms from the scheduler and the protocol server, and a
// TraceRing retains the most recent per-search trace events (enqueue,
// dequeue, per-shell progress, outcome) emitted by the scheduler and
// every backend. DebugHandler serves both as JSON alongside
// net/http/pprof:
//
//	reg, ring := rbc.NewMetricsRegistry(), rbc.NewTraceRing(1024)
//	s := rbc.NewScheduler(engine, rbc.SchedulerConfig{Trace: ring, Metrics: reg})
//	srv := &rbc.Server{CA: ca, Metrics: rbc.NewNetMetrics(reg)}
//	http.ListenAndServe("127.0.0.1:7444", rbc.DebugHandler(reg, ring))
//
// rbc-server exposes the same surface with its -debug-addr flag.
//
// # Durability
//
// RBC-SALTED rotates a client's key on every authentication, so the
// registry mutates on the hot path and a crash desynchronizes clients.
// OpenDurable journals every image, key and session mutation to a
// CRC-framed write-ahead log under a data directory, snapshots on clean
// shutdown, and replays WAL-over-snapshot on open (truncating a torn
// tail):
//
//	state, _ := rbc.OpenDurable(rbc.DurableOptions{Dir: "/var/lib/rbc", MasterKey: masterKey})
//	defer state.Close()
//	ca, _ := rbc.NewCA(state.Images(), backend, &rbc.AESKeyGenerator{}, state.RA(),
//		rbc.CAConfig{Sessions: state.Sessions()})
//
// rbc-server exposes this as -data-dir (with -sync choosing the fsync
// policy); rbc-enroll can enroll into and deprovision from the same
// directory.
//
// See DESIGN.md for the modelling and calibration methodology and
// EXPERIMENTS.md for the paper-versus-reproduction numbers.
package rbc

import (
	"rbcsalted/internal/apusim"
	"rbcsalted/internal/cluster"
	"rbcsalted/internal/core"
	"rbcsalted/internal/cpu"
	"rbcsalted/internal/cryptoalg"
	"rbcsalted/internal/cryptoalg/aeskg"
	"rbcsalted/internal/cryptoalg/dilithium"
	"rbcsalted/internal/cryptoalg/saber"
	"rbcsalted/internal/durable"
	"rbcsalted/internal/gpusim"
	"rbcsalted/internal/iterseq"
	"rbcsalted/internal/netproto"
	"rbcsalted/internal/obs"
	"rbcsalted/internal/plan"
	"rbcsalted/internal/puf"
	"rbcsalted/internal/replica"
	"rbcsalted/internal/ring"
	"rbcsalted/internal/sched"
	"rbcsalted/internal/u256"
)

// Core protocol types.
type (
	// Seed is a 256-bit PUF seed.
	Seed = u256.Uint256
	// HashAlg selects the search hash (SHA1 or SHA3).
	HashAlg = core.HashAlg
	// Digest is an algorithm-tagged message digest.
	Digest = core.Digest
	// Task describes one RBC search.
	Task = core.Task
	// Result reports a search outcome and its cost accounting.
	Result = core.Result
	// Backend is a search engine bound to a platform.
	Backend = core.Backend
	// ClientID names an enrolled client.
	ClientID = core.ClientID
	// Challenge is the CA's session challenge.
	Challenge = core.Challenge
	// CA is the certificate authority.
	CA = core.CA
	// CAConfig is the CA's policy knobs.
	CAConfig = core.CAConfig
	// RA is the registration authority (public-key registry).
	RA = core.RA
	// AuthRequest is one authentication attempt: client identity,
	// challenge nonce, response digest, plus optional QoS class and
	// absolute deadline for the serving path.
	AuthRequest = core.AuthRequest
	// QoSClass is a request's scheduling class (interactive, batch,
	// background).
	QoSClass = core.QoSClass
	// AuthResult is an authentication outcome.
	AuthResult = core.AuthResult
	// PUFClient is the PUF-equipped device-side participant (the thing
	// that answers challenges). The networked counterpart that carries
	// a PUFClient's response to a CA over TCP is Client.
	PUFClient = core.Client
	// ImageStore is the CA's encrypted PUF-image database.
	ImageStore = core.ImageStore
	// Certificate is the CA-signed binding of a client to a session key.
	Certificate = core.Certificate
	// Issuer signs certificates on behalf of the CA.
	Issuer = core.Issuer
	// ShellStat is one Hamming shell's contribution to a search.
	ShellStat = core.ShellStat
	// SessionTable holds the CA's open handshake sessions (injectable
	// via CAConfig.Sessions for durability).
	SessionTable = core.SessionTable
	// Journal receives every store mutation before it is applied; the
	// durable State implements it.
	Journal = core.Journal
)

// Hash algorithm constants.
const (
	SHA1 = core.SHA1
	SHA3 = core.SHA3
)

// QoS classes, best first. The zero value is interactive, so requests
// that never think about scheduling get the best treatment.
const (
	ClassInteractive = core.ClassInteractive
	ClassBatch       = core.ClassBatch
	ClassBackground  = core.ClassBackground
)

// Inline fast-path depths for CAConfig.InlineDepth.
const (
	// DefaultInlineDepth (d <= 1) is applied when InlineDepth is zero.
	DefaultInlineDepth = core.DefaultInlineDepth
	// MaxInlineDepth bounds the inline fast path; larger shells always
	// escalate to the backend.
	MaxInlineDepth = core.MaxInlineDepth
	// InlineDisabled routes every shell (d = 0 up) to the backend.
	InlineDisabled = core.InlineDisabled
)

// Sentinel errors, for classification with errors.Is. netproto maps each
// to a distinct wire status code.
var (
	// ErrUnknownClient: no PUF image enrolled for the client ID.
	ErrUnknownClient = core.ErrUnknownClient
	// ErrNoSession: no open handshake for the (client, nonce) pair;
	// challenges are strictly single-use.
	ErrNoSession = core.ErrNoSession
	// ErrAlgMismatch: client digest algorithm differs from CA policy.
	ErrAlgMismatch = core.ErrAlgMismatch
	// ErrBadConfig: CAConfig.Validate rejected the configuration.
	ErrBadConfig = core.ErrBadConfig
	// ErrOverloaded: the scheduler's admission queue was full.
	ErrOverloaded = sched.ErrOverloaded
	// ErrDeadlineInfeasible: the request's deadline could not be met, so
	// it was refused without burning backend time.
	ErrDeadlineInfeasible = sched.ErrDeadlineInfeasible
	// ErrSchedulerClosed: Search after Scheduler.Close.
	ErrSchedulerClosed = sched.ErrClosed
)

// Authentication scheduler: a bounded worker pool over any Backend.
type (
	// Scheduler is the multi-tenant admission-controlled search pool; it
	// implements Backend itself, so it composes with CA and Server.
	Scheduler = sched.Scheduler
	// SchedulerConfig sizes the pool (Workers) and its FIFO admission
	// queue (QueueDepth).
	SchedulerConfig = sched.Config
	// SchedulerStats is a snapshot of the scheduler's queue-wait,
	// service-time and outcome counters.
	SchedulerStats = sched.Stats
	// HedgeConfig tunes hedged dispatch of straggling searches
	// (SchedulerConfig.Hedge).
	HedgeConfig = sched.HedgeConfig
	// SubmitOption customises one Scheduler.Submit call.
	SubmitOption = sched.SubmitOption
)

// Per-submission scheduling options for Scheduler.Submit.
var (
	// WithClass overrides the task's QoS class for one submission.
	WithClass = sched.WithClass
	// WithDeadline overrides the task's absolute deadline.
	WithDeadline = sched.WithDeadline
	// WithHedging opts one submission in or out of hedged dispatch.
	WithHedging = sched.WithHedging
)

// NewScheduler starts a scheduler over backend. Zero config fields take
// the sched package defaults (4 workers, depth 64). Call Close to stop
// the pool.
func NewScheduler(backend Backend, cfg SchedulerConfig) *Scheduler {
	return sched.New(backend, cfg)
}

// Host search matchers: the predicate layer of the real execution
// engine. The default HashMatcher batches candidates MatchWidth at a
// time through the batch kernel the calibration table measured fastest
// for the algorithm (see BatchKernel and core.HashMatcher).
type (
	// Matcher decides whether candidate seeds match the search target;
	// one instance is built per worker goroutine.
	Matcher = core.Matcher
	// BatchMatcher is a Matcher that evaluates up to MatchWidth
	// candidates in one call, returning a MatchMask of matches.
	BatchMatcher = core.BatchMatcher
	// MatcherFactory builds one Matcher per search worker.
	MatcherFactory = core.MatcherFactory
	// HashMatcher is the digest-equality matcher used by every hashing
	// backend: scalar quick-reject plus the calibrated batch kernel
	// (wide bit-sliced compression for SHA-3, multi-buffer interleaved
	// compression for SHA-1).
	HashMatcher = core.HashMatcher
	// MatchMask is the per-batch match bitmask: bit i%64 of word i/64
	// is set iff candidate i matched.
	MatchMask = core.MatchMask
	// BatchKernel identifies a batch-match engine implementation.
	BatchKernel = core.BatchKernel
	// Calibration is the measured kernel-selection table consulted by
	// NewHashMatcher; see DefaultKernel and SetCalibration.
	Calibration = core.Calibration
	// CalibrationPoint is one measured (algorithm, kernel) speedup ratio.
	CalibrationPoint = core.CalibrationPoint
)

// Host search engine constants.
const (
	// MatchWidth is the number of candidates a BatchMatcher evaluates
	// per call - one 256-lane wide bit-sliced compression.
	MatchWidth = core.MatchWidth
	// DefaultCheckInterval is the early-exit poll interval applied when
	// Task.CheckInterval is left at zero.
	DefaultCheckInterval = core.DefaultCheckInterval
)

// Batch kernels a HashMatcher can select (see BatchKernel).
const (
	// KernelScalar is the one-seed-at-a-time quick-reject loop, the
	// baseline and fallback.
	KernelScalar = core.KernelScalar
	// KernelSliced64 is the 64-wide bit-sliced compression.
	KernelSliced64 = core.KernelSliced64
	// KernelSliced256 is the 256-lane wide bit-sliced compression
	// (SHA-3).
	KernelSliced256 = core.KernelSliced256
	// KernelMulti4 is the 4-way interleaved multi-buffer scalar
	// compression (SHA-1).
	KernelMulti4 = core.KernelMulti4
)

// Matcher constructors and kernel calibration.
var (
	// NewHashMatcher builds the digest-equality matcher for one
	// (algorithm, target) pair.
	NewHashMatcher = core.NewHashMatcher
	// HashMatcherFactory returns the default per-worker matcher factory
	// of every hashing backend.
	HashMatcherFactory = core.HashMatcherFactory
	// ScalarMatcher strips a factory's batch capability, forcing the
	// one-seed-at-a-time path (correctness oracle, benchmarks).
	ScalarMatcher = core.ScalarMatcher
	// BatchKernels lists the batch kernels implemented for an algorithm.
	BatchKernels = core.BatchKernels
	// DefaultKernel returns the calibrated batch kernel for an
	// algorithm - KernelScalar when no batch kernel measures faster.
	DefaultKernel = core.DefaultKernel
	// NewCalibration builds a kernel-selection table from measured
	// speedup points.
	NewCalibration = core.NewCalibration
	// SetCalibration installs a kernel-selection table (fresh bench
	// measurements, or pinning kernels in tests) and returns the
	// previous one.
	SetCalibration = core.SetCalibration
)

// IterMethod selects a seed-iteration algorithm (paper §3.2.1).
type IterMethod = iterseq.Method

// Seed-iteration methods.
const (
	// IterGray is the minimal-change revolving-door sequence (the
	// paper's Chase Algorithm 382 slot) - the fastest method.
	IterGray = iterseq.GrayCode
	// IterAlg515 is Buckles-Lybanon lexicographic unranking.
	IterAlg515 = iterseq.Alg515
	// IterGosper is Gosper's hack at 256 bits, as used by prior work.
	IterGosper = iterseq.Gosper
	// IterMifsud is the lexicographic-successor baseline.
	IterMifsud = iterseq.Mifsud154
)

// PUF modelling.
type (
	// PUFDevice is a client-side physical unclonable function.
	PUFDevice = puf.Device
	// PUFImage is the server-side enrollment record.
	PUFImage = puf.Image
	// PUFProfile describes cell error statistics.
	PUFProfile = puf.Profile
)

// DefaultPUFProfile mirrors the paper's nominal 5-bits-in-256 error rate.
var DefaultPUFProfile = puf.DefaultProfile

// NewPUFDevice manufactures a reproducible simulated PUF.
func NewPUFDevice(seed uint64, numCells int, p PUFProfile) (*PUFDevice, error) {
	return puf.NewDevice(seed, numCells, p)
}

// EnrollPUF captures a device's enrollment image over repeated reads.
func EnrollPUF(d *PUFDevice, reads int) (*PUFImage, error) {
	return puf.Enroll(d, reads)
}

// Protocol constructors.
var (
	// NewRA returns an empty registration authority.
	NewRA = core.NewRA
	// NewCA assembles a certificate authority.
	NewCA = core.NewCA
	// NewImageStore opens an encrypted PUF-image store.
	NewImageStore = core.NewImageStore
	// NewSessionTable returns an empty session table.
	NewSessionTable = core.NewSessionTable
	// HashSeed digests a seed with the fixed-padding fast path.
	HashSeed = core.HashSeed
	// SaltSeed applies the shared salt to a recovered seed.
	SaltSeed = core.SaltSeed
	// NewIssuer creates a certificate issuer from a 32-byte seed.
	NewIssuer = core.NewIssuer
	// LoadImageStore reopens a store written by ImageStore.Save.
	LoadImageStore = core.LoadImageStore
)

// DefaultSessionTTL is the CA's default challenge lifetime.
const DefaultSessionTTL = core.DefaultSessionTTL

// Durable state: WAL + snapshots under a data directory, journaling
// every image, key and session mutation (rbc-server's -data-dir).
type (
	// DurableState is the persistence root; its Images/RA/Sessions
	// accessors plug straight into NewCA.
	DurableState = durable.State
	// DurableOptions configures OpenDurable (directory, master key,
	// fsync policy, segment size, metrics).
	DurableOptions = durable.Options
	// RecoveryStats reports what OpenDurable found and repaired.
	RecoveryStats = durable.RecoveryStats
	// WALSyncPolicy selects when the write-ahead log calls fsync.
	WALSyncPolicy = durable.SyncPolicy
)

// WAL fsync policies.
const (
	// SyncInterval (default): background fsync every ~100 ms.
	SyncInterval = durable.SyncInterval
	// SyncAlways: fsync on every append; no acknowledged loss.
	SyncAlways = durable.SyncAlways
	// SyncNever: leave flushing to the OS page cache.
	SyncNever = durable.SyncNever
)

var (
	// OpenDurable opens (or initializes) a durable data directory and
	// replays WAL-over-snapshot into fresh stores.
	OpenDurable = durable.Open
	// ParseWALSyncPolicy parses "always", "interval" or "never".
	ParseWALSyncPolicy = durable.ParseSyncPolicy
)

// Search backends.
type (
	// CPUBackend is the real multicore engine (SALTED-CPU).
	CPUBackend = cpu.Backend
	// CPUModelBackend models the paper's 64-core EPYC platform.
	CPUModelBackend = cpu.ModelBackend
	// GPUConfig configures the A100 simulator.
	GPUConfig = gpusim.Config
	// APUConfig configures the Gemini simulator.
	APUConfig = apusim.Config
)

// NewGPUBackend builds a SALTED-GPU engine (simulated A100s).
//
// Deprecated: use NewBackend with BackendSpec{Kind: BackendGPU}; this
// wrapper remains for existing callers.
func NewGPUBackend(cfg GPUConfig) Backend { return gpusim.NewBackend(cfg) }

// NewAPUBackend builds a SALTED-APU engine (simulated GSI Gemini).
//
// Deprecated: use NewBackend with BackendSpec{Kind: BackendAPU}; this
// wrapper remains for existing callers.
func NewAPUBackend(cfg APUConfig) Backend { return apusim.NewBackend(cfg) }

// Cost-based planner (see DESIGN.md §14): dispatches each search to the
// engine the calibrated cost curves predict to be cheapest under the
// chosen policy, deadline and joules budget, with live EWMA feedback
// correcting the static curves.
type (
	// Planner is the dispatching backend; NewBackend with
	// BackendSpec{Kind: BackendPlanner} builds one over the standard
	// CPU/GPU/APU trio, NewPlanner builds one over custom engines.
	Planner = plan.Planner
	// PlannerConfig configures a custom planner.
	PlannerConfig = plan.Config
	// PlannerStats is a dispatch-accounting snapshot.
	PlannerStats = plan.Stats
	// PlanPolicy selects the planner's objective.
	PlanPolicy = plan.Policy
	// EngineChoice is one ranked candidate from a planning decision.
	EngineChoice = plan.EngineChoice
	// PlanDecision is a full ranked planning decision.
	PlanDecision = plan.Decision
)

// Planner policies.
const (
	// PlanBalanced minimizes predicted joules among deadline-feasible
	// engines, falling back to the fastest when none is feasible.
	PlanBalanced = plan.PolicyBalanced
	// PlanLatency minimizes the load-adjusted ETA unconditionally.
	PlanLatency = plan.PolicyLatency
	// PlanEnergy minimizes predicted joules among feasible engines.
	PlanEnergy = plan.PolicyEnergy
)

// NewPlanner builds a planner over custom engines; each engine must
// implement a cost model (the built-in CPU, GPU and APU backends all
// do).
var NewPlanner = plan.New

// ParsePlanPolicy parses "balanced", "latency" or "energy" — the values
// the command-line tools accept for -plan-policy.
var ParsePlanPolicy = plan.ParsePolicy

// Key generation for the salted seed (and the algorithm-aware baseline).
type (
	// KeyGenerator derives a public key from a 32-byte seed.
	KeyGenerator = cryptoalg.KeyGenerator
	// AESKeyGenerator is the AES-128 response engine of prior RBC work.
	AESKeyGenerator = aeskg.Generator
	// SaberKeyGenerator is from-scratch LightSaber key generation.
	SaberKeyGenerator = saber.Generator
	// DilithiumKeyGenerator is from-scratch Dilithium3 key generation.
	DilithiumKeyGenerator = dilithium.Generator
)

// Distributed search (paper §5 future work): a fault-tolerant
// coordinator implementing Backend plus TCP-connected workers. Workers
// heartbeat over the job stream; a worker that dies mid-shell has its
// unfinished seed ranges re-dispatched to the survivors (or a local
// fallback backend) with exactly-once coverage accounting, and workers
// reconnect and rejoin the fleet automatically.
type (
	// ClusterCoordinator fans shells out over worker nodes.
	ClusterCoordinator = cluster.Coordinator
	// ClusterConfig tunes the coordinator: hash, degraded-mode fallback,
	// failure detector, retry policy, drain timeout and metrics.
	ClusterConfig = cluster.Config
	// ClusterStats is a snapshot of fleet size and fault-tolerance
	// counters (deaths, rejoins, re-dispatches, fallbacks).
	ClusterStats = cluster.Stats
	// ClusterWorker serves shell ranges with this machine's cores.
	ClusterWorker = cluster.Worker
)

// NewClusterCoordinator builds a coordinator from a ClusterConfig. Call
// Serve with a listener, then use it as a Backend; Close drains
// in-flight searches.
func NewClusterCoordinator(cfg ClusterConfig) *ClusterCoordinator {
	return cluster.NewCoordinator(cfg)
}

// RunClusterWorker keeps a worker connected to a coordinator,
// redialling with backoff until stop is closed (a nil stop never
// stops). It gives up only if the coordinator speaks an incompatible
// protocol version.
func RunClusterWorker(addr string, w *ClusterWorker, stop <-chan struct{}) {
	cluster.RunWorkerUntil(addr, w, stop)
}

// Cluster sentinel errors.
var (
	// ErrProtoVersion: the two ends speak different cluster wire
	// protocol versions.
	ErrProtoVersion = cluster.ErrProtoVersion
	// ErrClusterClosed: Search after ClusterCoordinator.Close.
	ErrClusterClosed = cluster.ErrClosed
)

// Networked protocol (Figure 1 over TCP).
type (
	// Server serves the protocol for a CA.
	Server = netproto.Server
	// Latency injects modelled communication costs.
	Latency = netproto.Latency
	// WireResult is the server's verdict as received by the client.
	WireResult = netproto.Result
	// WireStatus classifies server-reported failures on the wire.
	WireStatus = netproto.Status
	// ServerError is the client-side error carrying a WireStatus.
	ServerError = netproto.ServerError
	// AuthOptions carries the client-side serving options — injected
	// latency, QoS class and absolute deadline — for
	// AuthenticateWithOptions.
	AuthOptions = netproto.AuthOptions
	// Client is the routing-aware networked client: it owns connection
	// management, shard routing over a RingMap, redirect following and
	// retry across node restarts. Construct with Dial.
	Client = netproto.Client
	// ClientConfig configures Dial (bootstrap addresses and/or ring).
	ClientConfig = netproto.ClientConfig
	// ClientAuthRequest is one authentication through a Client: the
	// device-side PUFClient plus optional QoS class and deadline.
	ClientAuthRequest = netproto.AuthRequest
	// Router decides, per hello, whether this server owns the client's
	// shard or should redirect (Server.Router; see NewServer).
	Router = netproto.Router
)

// Dial builds a routing-aware Client from bootstrap addresses and/or a
// shard ring. Each Authenticate dials the owning node, follows
// wrong-shard redirects, and retries transport failures against the
// remaining candidates with backoff.
var Dial = netproto.Dial

// Wire status codes (the first byte of an error frame).
const (
	StatusInternal      = netproto.StatusInternal
	StatusBadRequest    = netproto.StatusBadRequest
	StatusUnknownClient = netproto.StatusUnknownClient
	StatusNoSession     = netproto.StatusNoSession
	StatusAlgMismatch   = netproto.StatusAlgMismatch
	StatusOverloaded    = netproto.StatusOverloaded
	StatusCancelled     = netproto.StatusCancelled
	// StatusDeadlineInfeasible: the request's deadline could not be met.
	StatusDeadlineInfeasible = netproto.StatusDeadlineInfeasible
	// StatusWrongShard: this node does not own the client's shard; the
	// message carries the owner's address. Client follows it
	// transparently.
	StatusWrongShard = netproto.StatusWrongShard
)

// PaperLatency reproduces the paper's 0.90 s communication constant.
var PaperLatency = netproto.PaperLatency

// Authenticate runs the full client side of the protocol over a
// caller-owned connection.
//
// Deprecated: use Dial and Client.Authenticate, which own routing,
// redirects and retry. This wrapper remains for single-node callers.
var Authenticate = netproto.Authenticate

// AuthenticateWithOptions is Authenticate with the request's QoS class
// and deadline carried in the hello (the v3 wire layout; a default-QoS
// hello stays v2-compatible).
//
// Deprecated: use Dial and Client.Authenticate.
var AuthenticateWithOptions = netproto.AuthenticateWithOptions

// Consistent-hash sharding (see DESIGN.md §15): client IDs map to a
// fixed shard space, shards map to nodes through a virtual-node ring,
// so topology changes move only the shards that must move.
type (
	// RingMap is an immutable shard-to-node assignment with a fencing
	// epoch; Add/Remove derive new maps.
	RingMap = ring.Map
	// RingNode is one CA node in the ring (ID + client-facing address).
	RingNode = ring.Node
)

// Sharding defaults.
const (
	// DefaultNumShards is the fixed shard-space size client IDs hash
	// into; it is topology-independent, so it must agree across nodes.
	DefaultNumShards = ring.DefaultNumShards
	// DefaultVirtualNodes is the vnode count per node on the ring.
	DefaultVirtualNodes = ring.DefaultVirtualNodes
)

var (
	// NewRingMap builds a ring from nodes (0 counts take the defaults).
	NewRingMap = ring.NewMap
	// ShardOfKey maps a client ID to its shard.
	ShardOfKey = ring.ShardOfKey
)

// Primary→follower WAL replication (see DESIGN.md §15): a follower
// holds a replica of a primary's durable state and can be promoted on
// failure, with epoch fencing against split-brain.
type (
	// ReplicaPrimary streams a durable State's WAL to subscribers.
	ReplicaPrimary = replica.Primary
	// ReplicaFollower subscribes to a primary and ingests its records.
	ReplicaFollower = replica.Follower
	// ReplicaFollowerConfig configures NewReplicaFollower.
	ReplicaFollowerConfig = replica.FollowerConfig
	// ReplicaFollowerStatus is one row of a primary's liveness table.
	ReplicaFollowerStatus = replica.FollowerStatus
	// ReplicaMeta is a node's persisted fencing epoch and replication
	// cursor.
	ReplicaMeta = replica.Meta
)

// PromoteNonceSlack is the challenge-nonce headroom a promotion adds so
// the new primary never reissues a nonce the dead one handed out.
const PromoteNonceSlack = replica.PromoteNonceSlack

var (
	// NewReplicaFollower builds a follower over a durable State.
	NewReplicaFollower = replica.NewFollower
	// LoadReplicaMeta reads a node's replication meta file (missing =
	// zero value).
	LoadReplicaMeta = replica.LoadMeta
	// SaveReplicaMeta atomically persists a replication meta file.
	SaveReplicaMeta = replica.SaveMeta
	// ErrFenced: a higher fencing epoch exists; this primary stood down.
	ErrFenced = replica.ErrFenced
	// ErrStalePrimary: the follower outranks the primary it dialed.
	ErrStalePrimary = replica.ErrStalePrimary
	// ErrPromoted: the follower stopped following because it was
	// promoted.
	ErrPromoted = replica.ErrPromoted
)

// Observability: dependency-free metrics and per-search tracing for the
// serving path (scheduler, backends, protocol server).
type (
	// MetricsRegistry is a named collection of counters, gauges and
	// latency histograms with a JSON snapshot export.
	MetricsRegistry = obs.Registry
	// TraceEvent is one step of a search's lifecycle (sched.enqueue,
	// search.shell, sched.done, ...), correlated by its Search ID.
	TraceEvent = obs.TraceEvent
	// TraceSink receives trace events; set it on SchedulerConfig.Trace,
	// CAConfig.Trace, or directly on a Task.
	TraceSink = obs.TraceSink
	// TraceRing is a fixed-capacity flight recorder keeping the most
	// recent trace events.
	TraceRing = obs.Ring
	// NetMetrics bundles the protocol server's per-connection and
	// per-status counters (Server.Metrics).
	NetMetrics = netproto.Metrics
)

var (
	// NewMetricsRegistry returns an empty registry.
	NewMetricsRegistry = obs.NewRegistry
	// NewTraceRing returns a flight recorder retaining capacity events.
	NewTraceRing = obs.NewRing
	// NewNetMetrics registers the protocol server's counters in a
	// registry under "netproto.*".
	NewNetMetrics = netproto.NewMetrics
	// DebugHandler serves /metrics, /trace, /healthz and /debug/pprof
	// for a registry and an optional trace ring.
	DebugHandler = obs.Handler
	// ServeDebug starts DebugHandler on an address in the background,
	// returning the listener (rbc-server's -debug-addr).
	ServeDebug = obs.Serve
)
