package rbc

// One testing.B benchmark per paper table/figure, plus primitive
// throughput benches. Each benchmark iteration performs one representative
// unit of the experiment; `go test -bench=. -benchmem` therefore exercises
// every code path the evaluation section depends on. cmd/rbc-bench
// produces the full formatted tables.

import (
	"context"
	"fmt"
	"math/rand/v2"
	"runtime"
	"sync/atomic"
	"testing"

	"rbcsalted/internal/combin"
	"rbcsalted/internal/core"
	"rbcsalted/internal/exper"
	"rbcsalted/internal/gpusim"
	"rbcsalted/internal/iterseq"
	"rbcsalted/internal/puf"
	"rbcsalted/internal/u256"
)

func scenario(seed uint64, d int) (base, client Seed) {
	r := rand.New(rand.NewPCG(seed, 17))
	base = u256.New(r.Uint64(), r.Uint64(), r.Uint64(), r.Uint64())
	client = puf.InjectNoise(base, base, d, r)
	return base, client
}

func searchOnce(b *testing.B, backend Backend, alg HashAlg, maxD int, exhaustive bool) {
	b.Helper()
	base, client := scenario(uint64(b.N)%97+1, maxD)
	oracle := client
	res, err := backend.Search(context.Background(), Task{
		Base:        base,
		Target:      HashSeed(alg, client),
		MaxDistance: maxD,
		Exhaustive:  exhaustive,
		Oracle:      &oracle,
	})
	if err != nil {
		b.Fatal(err)
	}
	if !res.Found {
		b.Fatal("search lost the seed")
	}
}

// BenchmarkTable1 regenerates the analytic search-space sizes.
func BenchmarkTable1(b *testing.B) {
	for i := 0; i < b.N; i++ {
		for d := 1; d <= 5; d++ {
			_ = combin.ExhaustiveSeeds(256, d)
			_ = combin.AverageSeeds(256, d)
		}
	}
}

// BenchmarkFigure3 prices one full (n, b) heatmap from the GPU model.
func BenchmarkFigure3(b *testing.B) {
	m := gpusim.NewModel()
	for i := 0; i < b.N; i++ {
		for _, n := range []int{1, 10, 100, 1000, 10000} {
			for _, blk := range []int{32, 128, 512, 1024} {
				_ = m.ExhaustiveD5SecondsAt(SHA3, IterGray,
					gpusim.KernelParams{SeedsPerThread: n, ThreadsPerBlock: blk}, true, 1)
			}
		}
	}
}

// BenchmarkTable4 runs one modelled GPU search per iterator.
func BenchmarkTable4(b *testing.B) {
	for _, method := range []IterMethod{IterGray, IterGosper, IterAlg515} {
		b.Run(method.String(), func(b *testing.B) {
			backend := NewGPUBackend(GPUConfig{Alg: SHA3, SharedMemoryState: true})
			base, client := scenario(3, 5)
			oracle := client
			for i := 0; i < b.N; i++ {
				res, err := backend.Search(context.Background(), Task{
					Base:        base,
					Target:      HashSeed(SHA3, client),
					MaxDistance: 5,
					Method:      method,
					Exhaustive:  true,
					Oracle:      &oracle,
				})
				if err != nil || !res.Found {
					b.Fatal(err)
				}
			}
		})
	}
}

// BenchmarkTable5 runs one end-to-end-scale search per platform and hash.
func BenchmarkTable5(b *testing.B) {
	cases := []struct {
		name    string
		backend Backend
		alg     HashAlg
	}{
		{"GPU-SHA1", NewGPUBackend(GPUConfig{Alg: SHA1, SharedMemoryState: true}), SHA1},
		{"GPU-SHA3", NewGPUBackend(GPUConfig{Alg: SHA3, SharedMemoryState: true}), SHA3},
		{"APU-SHA1", NewAPUBackend(APUConfig{Alg: SHA1}), SHA1},
		{"APU-SHA3", NewAPUBackend(APUConfig{Alg: SHA3}), SHA3},
		{"CPUmodel-SHA1", &CPUModelBackend{Alg: SHA1}, SHA1},
		{"CPUmodel-SHA3", &CPUModelBackend{Alg: SHA3}, SHA3},
	}
	for _, c := range cases {
		b.Run(c.name, func(b *testing.B) {
			for i := 0; i < b.N; i++ {
				searchOnce(b, c.backend, c.alg, 5, false)
			}
		})
	}
}

// BenchmarkTable6 runs the energy-metered exhaustive searches.
func BenchmarkTable6(b *testing.B) {
	for _, alg := range []HashAlg{SHA1, SHA3} {
		b.Run(alg.String(), func(b *testing.B) {
			gpu := NewGPUBackend(GPUConfig{Alg: alg, SharedMemoryState: true})
			apu := NewAPUBackend(APUConfig{Alg: alg})
			for i := 0; i < b.N; i++ {
				searchOnce(b, gpu, alg, 5, true)
				searchOnce(b, apu, alg, 5, true)
			}
		})
	}
}

// BenchmarkFigure4 runs the 3-GPU early-exit search (the figure's most
// overhead-sensitive point).
func BenchmarkFigure4(b *testing.B) {
	backend := NewGPUBackend(GPUConfig{Alg: SHA3, Devices: 3, SharedMemoryState: true})
	for i := 0; i < b.N; i++ {
		searchOnce(b, backend, SHA3, 5, false)
	}
}

// BenchmarkTable7 prices one candidate evaluation for each engine: the
// per-seed operation whose cost ratio is the paper's core argument.
func BenchmarkTable7(b *testing.B) {
	var seed [32]byte
	b.Run("salted-sha3-hash", func(b *testing.B) {
		s := u256.FromUint64(1)
		for i := 0; i < b.N; i++ {
			digestSink = HashSeed(SHA3, s)
		}
	})
	b.Run("aware-aes128-keygen", func(b *testing.B) {
		g := &AESKeyGenerator{}
		for i := 0; i < b.N; i++ {
			seed[0] = byte(i)
			keySink = g.PublicKey(seed)
		}
	})
	b.Run("aware-lightsaber-keygen", func(b *testing.B) {
		var g SaberKeyGenerator
		for i := 0; i < b.N; i++ {
			seed[0] = byte(i)
			keySink = g.PublicKey(seed)
		}
	})
	b.Run("aware-dilithium3-keygen", func(b *testing.B) {
		var g DilithiumKeyGenerator
		for i := 0; i < b.N; i++ {
			seed[0] = byte(i)
			keySink = g.PublicKey(seed)
		}
	})
}

// BenchmarkCPUScaling measures the real CPU backend on this host (the
// §4.3 scenario at a host-feasible radius).
func BenchmarkCPUScaling(b *testing.B) {
	backend := &CPUBackend{Alg: SHA3}
	base, client := scenario(11, 2)
	for i := 0; i < b.N; i++ {
		res, err := backend.Search(context.Background(), Task{
			Base:        base,
			Target:      HashSeed(SHA3, client),
			MaxDistance: 2,
			Exhaustive:  true,
		})
		if err != nil || !res.Found {
			b.Fatal(err)
		}
	}
}

// BenchmarkFlagInterval exercises the §4.4 sweep through the real CPU
// backend (check interval 1 vs 64).
func BenchmarkFlagInterval(b *testing.B) {
	for _, interval := range []int{1, 64} {
		b.Run(map[int]string{1: "every1", 64: "every64"}[interval], func(b *testing.B) {
			backend := &CPUBackend{Alg: SHA1}
			base, client := scenario(13, 2)
			for i := 0; i < b.N; i++ {
				res, err := backend.Search(context.Background(), Task{
					Base:          base,
					Target:        HashSeed(SHA1, client),
					MaxDistance:   2,
					CheckInterval: interval,
					Exhaustive:    true,
				})
				if err != nil || !res.Found {
					b.Fatal(err)
				}
			}
		})
	}
}

// BenchmarkSharedMem prices the §3.2.3 ablation point.
func BenchmarkSharedMem(b *testing.B) {
	m := gpusim.NewModel()
	for i := 0; i < b.N; i++ {
		_ = m.ShellSeconds(8809549056, SHA1, IterGray, gpusim.DefaultParams, true, 1)
		_ = m.ShellSeconds(8809549056, SHA1, IterGray, gpusim.DefaultParams, false, 1)
	}
}

// BenchmarkIterators measures the real per-seed cost of each seed
// iterator (the measured input to Table 4).
func BenchmarkIterators(b *testing.B) {
	for _, method := range []IterMethod{IterGray, IterGosper, IterAlg515, IterMifsud} {
		b.Run(method.String(), func(b *testing.B) {
			it, err := iterseq.New(method, 256, 5, 0, -1)
			if err != nil {
				b.Fatal(err)
			}
			c := make([]int, 5)
			for i := 0; i < b.N; i++ {
				if !it.Next(c) {
					it, _ = iterseq.New(method, 256, 5, 0, -1)
					it.Next(c)
				}
			}
		})
	}
}

// BenchmarkHashes measures the fixed-padding seed hashes, the innermost
// loop of every search.
func BenchmarkHashes(b *testing.B) {
	s := u256.FromUint64(7)
	b.Run("SHA1-seed", func(b *testing.B) {
		b.SetBytes(32)
		for i := 0; i < b.N; i++ {
			digestSink = HashSeed(SHA1, s)
		}
	})
	b.Run("SHA3-seed", func(b *testing.B) {
		b.SetBytes(32)
		for i := 0; i < b.N; i++ {
			digestSink = HashSeed(SHA3, s)
		}
	})
}

// BenchmarkExperimentHarness regenerates the cheapest full table to keep
// the harness itself under benchmark.
func BenchmarkExperimentHarness(b *testing.B) {
	for i := 0; i < b.N; i++ {
		tableSink = exper.Table1()
	}
}

// BenchmarkStoreParallel contends 64 goroutines over the CA's mutable
// stores — the authentication hot path is 1 read + 1 write per request —
// comparing the seed's single-mutex layout (1 shard) against the
// striped-lock layout (16 shards).
func BenchmarkStoreParallel(b *testing.B) {
	const goroutines = 64
	parallelism := max(1, goroutines/runtime.GOMAXPROCS(0))
	ids := make([]ClientID, 256)
	for i := range ids {
		ids[i] = ClientID(fmt.Sprintf("client-%03d", i))
	}
	sealed := make([]byte, 64)

	for _, shards := range []int{1, 16} {
		layout := map[int]string{1: "mutex", 16: "sharded16"}[shards]
		b.Run("ra-"+layout, func(b *testing.B) {
			ra := core.NewRAShards(shards)
			for _, id := range ids {
				if err := ra.Update(id, sealed); err != nil {
					b.Fatal(err)
				}
			}
			var n atomic.Uint64
			b.SetParallelism(parallelism)
			b.RunParallel(func(pb *testing.PB) {
				for pb.Next() {
					i := n.Add(1)
					id := ids[i%uint64(len(ids))]
					if i%2 == 0 {
						if err := ra.Update(id, sealed); err != nil {
							b.Fatal(err)
						}
					} else if _, ok := ra.PublicKey(id); !ok {
						b.Fatal("key lost")
					}
				}
			})
		})
		b.Run("images-"+layout, func(b *testing.B) {
			store, err := core.NewImageStoreShards([32]byte{1}, shards)
			if err != nil {
				b.Fatal(err)
			}
			for _, id := range ids {
				store.PutSealed(id, sealed)
			}
			var n atomic.Uint64
			b.SetParallelism(parallelism)
			b.RunParallel(func(pb *testing.PB) {
				for pb.Next() {
					i := n.Add(1)
					id := ids[i%uint64(len(ids))]
					if i%2 == 0 {
						store.PutSealed(id, sealed)
					} else if !store.Has(id) {
						b.Fatal("image lost")
					}
				}
			})
		})
	}
}

var (
	digestSink Digest
	keySink    []byte
	tableSink  *exper.Table
)
