module rbcsalted

go 1.24
