package rbc

import (
	"context"
	"fmt"
	"net"
	"path/filepath"
	"strings"
	"sync"
	"time"

	"rbcsalted/internal/core"
	"rbcsalted/internal/cryptoalg/aeskg"
	"rbcsalted/internal/durable"
	"rbcsalted/internal/netproto"
	"rbcsalted/internal/obs"
	"rbcsalted/internal/puf"
	"rbcsalted/internal/replica"
	"rbcsalted/internal/ring"
	"rbcsalted/internal/sched"
)

// replicaMetaFile is the node's single replication identity file under
// DataDir: the fencing epoch it last participated at and, while
// following, the cursor into its upstream. Sharing one file between the
// follower and primary roles is what carries a promotion's epoch across
// a restart into `-role primary`.
const replicaMetaFile = "replica.meta"

// ServerConfig assembles a complete CA serving node: search engine,
// scheduler, CA policy, enrollment, durability, and (optionally) shard
// routing and replication. The zero value of every field is a sensible
// default; rbc-server is a flag-parsing shim over this struct.
type ServerConfig struct {
	// Clients are demo client IDs to self-enroll at startup
	// (deterministically from EnrollSeed). IDs already present in the
	// store are left untouched, so restarts do not reset key chains.
	Clients []string
	// EnrollSeed is the device-seed base for self-enrollment.
	EnrollSeed uint64
	// PUFProfile overrides the noise profile for self-enrolled clients
	// (nil = DefaultPUFProfile).
	PUFProfile *PUFProfile

	// MaxDistance is the CA's search bound; TimeLimit its threshold T.
	MaxDistance int
	TimeLimit   time.Duration
	// InlineDepth is CAConfig.InlineDepth (0 = default, negative =
	// always queue).
	InlineDepth int

	// Backend selects the search engine; Cores sizes it (0 =
	// GOMAXPROCS). JoulesBudget and PlanPolicy apply to the planner
	// kind.
	Backend      BackendKind
	Cores        int
	JoulesBudget float64
	PlanPolicy   PlanPolicy

	// SchedWorkers/SchedQueue size the admission pool; Hedge enables
	// hedged dispatch with an optional fixed HedgeDelay.
	SchedWorkers int
	SchedQueue   int
	Hedge        bool
	HedgeDelay   time.Duration

	// TraceDepth is the flight-recorder capacity (0 = 1024).
	TraceDepth int

	// Store serves images from a pre-loaded store (rbc-enroll).
	// Mutually exclusive with DataDir.
	Store *ImageStore
	// DataDir, when set, opens a durable State there; replication
	// (ServeReplication/Follow/Promote) requires it.
	DataDir   string
	Sync      WALSyncPolicy
	MasterKey [32]byte

	// NodeID and Ring, when both set, make the node routing-aware: a
	// hello for a shard this node does not own is refused with
	// StatusWrongShard carrying the owner's address.
	NodeID string
	Ring   *RingMap

	// OnFenced, when set, fires once if a higher-epoch subscriber
	// fences this node's replication primary (a promotion happened
	// elsewhere; the server should stand down).
	OnFenced func(epoch uint64)
}

// ServerNode is an assembled serving node. Every layer shares one
// metrics registry and one trace ring, exactly like rbc-server's
// -debug-addr surface.
type ServerNode struct {
	CA   *CA
	Pool *Scheduler
	// Proto is the wire server; Serve is shorthand for Proto.Serve.
	Proto   *Server
	Metrics *MetricsRegistry
	Trace   *TraceRing
	// State is non-nil when the node runs on a durable data directory.
	State *DurableState

	cfg      ServerConfig
	mu       sync.Mutex
	primary  *replica.Primary
	follower *replica.Follower
}

// ringRouter implements netproto.Router over a RingMap.
type ringRouter struct {
	self string
	m    *ring.Map
}

func (r *ringRouter) Route(clientID string, epoch uint64) (string, bool) {
	owner := r.m.OwnerOf(clientID)
	if owner.ID == r.self {
		return "", true
	}
	return owner.Addr, false
}

// NewServer wires the full serving path. Close the node when done; on a
// durable data directory the close takes the shutdown snapshot.
func NewServer(cfg ServerConfig) (*ServerNode, error) {
	reg := obs.NewRegistry()
	// Point the host hot path's batch-phase histograms (host_batch_fill_ns
	// / host_batch_pack_ns) at this node's registry so the fill-vs-pack
	// split shows up in /metrics. The hooks are process-global
	// (last-writer-wins across embedded nodes, see SetHostBatchMetrics).
	core.SetHostBatchMetrics(core.RegisterHostBatchMetrics(reg))
	depth := cfg.TraceDepth
	if depth <= 0 {
		depth = 1024
	}
	traceRing := obs.NewRing(depth)

	var (
		state       *durable.State
		ra          *core.RA
		cfgSessions *core.SessionTable
	)
	store := cfg.Store
	switch {
	case cfg.DataDir != "":
		if store != nil {
			return nil, fmt.Errorf("rbc: ServerConfig.Store and DataDir are mutually exclusive")
		}
		var err error
		state, err = durable.Open(durable.Options{
			Dir:       cfg.DataDir,
			MasterKey: cfg.MasterKey,
			Sync:      cfg.Sync,
			Metrics:   reg,
		})
		if err != nil {
			return nil, err
		}
		store, ra, cfgSessions = state.Images(), state.RA(), state.Sessions()
	case store == nil:
		var err error
		store, err = core.NewImageStore([32]byte{0x52, 0x42, 0x43}) // demo master key
		if err != nil {
			return nil, err
		}
	}
	if ra == nil {
		ra = core.NewRA()
	}
	if cfg.Backend == BackendCluster {
		return nil, fmt.Errorf("rbc: cluster backends need a worker fleet; wire one up through NewClusterCoordinator instead")
	}
	engine, err := NewBackend(BackendSpec{
		Kind:         cfg.Backend,
		Alg:          core.SHA3,
		Cores:        cfg.Cores,
		JoulesBudget: cfg.JoulesBudget,
		PlanPolicy:   cfg.PlanPolicy,
		Metrics:      reg, // the planner kind publishes dispatch stats here
	})
	if err != nil {
		return nil, err
	}
	pool := sched.New(engine, sched.Config{
		Workers:    cfg.SchedWorkers,
		QueueDepth: cfg.SchedQueue,
		Hedge:      sched.HedgeConfig{Enabled: cfg.Hedge, Delay: cfg.HedgeDelay},
		Trace:      traceRing,
		Metrics:    reg,
	})
	ca, err := core.NewCA(store, pool, &aeskg.Generator{}, ra, core.CAConfig{
		Alg:         core.SHA3,
		MaxDistance: cfg.MaxDistance,
		TimeLimit:   cfg.TimeLimit,
		InlineDepth: cfg.InlineDepth,
		Trace:       traceRing,
		Sessions:    cfgSessions,
	})
	if err != nil {
		pool.Close()
		return nil, err
	}

	profile := puf.DefaultProfile
	if cfg.PUFProfile != nil {
		profile = *cfg.PUFProfile
	}
	for i, id := range cfg.Clients {
		id = strings.TrimSpace(id)
		if id == "" {
			continue
		}
		// On a durable data directory, restart must not re-enroll
		// clients the store already holds: that would reset their
		// key-rotation chain and desynchronize live devices.
		if store.Has(core.ClientID(id)) {
			continue
		}
		devSeed := cfg.EnrollSeed + uint64(i)
		dev, err := puf.NewDevice(devSeed, 1024, profile)
		if err != nil {
			pool.Close()
			return nil, err
		}
		im, err := puf.Enroll(dev, 31)
		if err != nil {
			pool.Close()
			return nil, err
		}
		if err := ca.Enroll(core.ClientID(id), im); err != nil {
			pool.Close()
			return nil, err
		}
	}

	// Live scheduler stats ride along in every /metrics snapshot, so
	// the debug endpoint always agrees with sched.Stats().
	reg.Func("sched", func() any { return pool.Stats() })

	proto := &netproto.Server{
		CA:      ca,
		Metrics: netproto.NewMetrics(reg),
	}
	if cfg.NodeID != "" && cfg.Ring != nil {
		proto.Router = &ringRouter{self: cfg.NodeID, m: cfg.Ring}
	}
	return &ServerNode{
		CA: ca, Pool: pool, Proto: proto,
		Metrics: reg, Trace: traceRing, State: state,
		cfg: cfg,
	}, nil
}

// Serve accepts protocol clients on ln until the listener closes.
func (n *ServerNode) Serve(ln net.Listener) error { return n.Proto.Serve(ln) }

// Close tears the node down in dependency order; the durable state goes
// last so its shutdown snapshot sees every mutation.
func (n *ServerNode) Close() error {
	n.Pool.Close()
	n.mu.Lock()
	p := n.primary
	n.mu.Unlock()
	if p != nil {
		p.Close()
	}
	if n.State != nil {
		return n.State.Close()
	}
	return nil
}

// DebugListener starts the node's debug HTTP listener (the -debug-addr
// surface: /metrics, /trace, /healthz, /debug/pprof); close it to stop.
func (n *ServerNode) DebugListener(addr string) (net.Listener, error) {
	return obs.Serve(addr, n.Metrics, n.Trace)
}

// metaPath is the node's replication identity file (requires DataDir).
func (n *ServerNode) metaPath() string {
	return filepath.Join(n.cfg.DataDir, replicaMetaFile)
}

func (n *ServerNode) numShards() int {
	if n.cfg.Ring != nil {
		return n.cfg.Ring.NumShards()
	}
	return ring.DefaultNumShards
}

// ServeReplication streams this node's WAL to followers on ln, at the
// fencing epoch persisted in the node's replication meta. Requires
// DataDir.
func (n *ServerNode) ServeReplication(ln net.Listener) error {
	if n.State == nil {
		return fmt.Errorf("rbc: replication requires ServerConfig.DataDir")
	}
	meta, err := replica.LoadMeta(n.metaPath())
	if err != nil {
		return err
	}
	p := &replica.Primary{
		State:     n.State,
		Epoch:     meta.Epoch,
		NumShards: n.numShards(),
		OnFenced:  n.cfg.OnFenced,
	}
	n.mu.Lock()
	if n.primary != nil {
		n.mu.Unlock()
		ln.Close()
		return fmt.Errorf("rbc: replication already serving")
	}
	n.primary = p
	n.mu.Unlock()
	return p.Serve(ln)
}

// Replica returns the replication primary, nil before ServeReplication.
func (n *ServerNode) Replica() *ReplicaPrimary {
	n.mu.Lock()
	defer n.mu.Unlock()
	return n.primary
}

// Follow subscribes this node to the primary at addr and ingests its
// WAL until ctx is cancelled or the node is promoted, redialling on
// transient failures. shards selects a subset (nil = everything).
// Requires DataDir.
func (n *ServerNode) Follow(ctx context.Context, addr string, shards []int) error {
	f, err := n.ensureFollower(shards)
	if err != nil {
		return err
	}
	return f.RunUntil(ctx, addr, time.Second)
}

// Promote makes this node the authoritative primary of its replication
// group: it bumps the fencing epoch (so the deposed primary is fenced
// on its next contact) and adds PromoteNonceSlack of challenge-nonce
// headroom. Serve replication afterwards to accept the other followers.
func (n *ServerNode) Promote() (uint64, error) {
	f, err := n.ensureFollower(nil)
	if err != nil {
		return 0, err
	}
	return f.Promote()
}

func (n *ServerNode) ensureFollower(shards []int) (*replica.Follower, error) {
	if n.State == nil {
		return nil, fmt.Errorf("rbc: replication requires ServerConfig.DataDir")
	}
	n.mu.Lock()
	defer n.mu.Unlock()
	if n.follower == nil {
		id := n.cfg.NodeID
		if id == "" {
			id = "follower"
		}
		f, err := replica.NewFollower(replica.FollowerConfig{
			State:     n.State,
			ID:        id,
			MetaPath:  n.metaPath(),
			NumShards: n.numShards(),
			Shards:    shards,
		})
		if err != nil {
			return nil, err
		}
		n.follower = f
	}
	return n.follower, nil
}
