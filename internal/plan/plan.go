// Package plan is the cost-based backend planner: a core.Backend-shaped
// multiplexer that answers the paper's core question — *which
// accelerator, when* — as a live dispatch decision instead of a static
// bench table.
//
// Every engine handed to the planner implements core.CostModel, so the
// planner holds one calibrated (time, energy) curve per engine — the
// same curves behind Table 5 (throughput) and Table 6 (energy), seeded
// from device.MeasureHostCosts, the gpusim/apusim timing models and the
// committed kernel calibration. For each task it predicts every
// engine's cost from the task's shell sizes (Hamming distance d),
// algorithm and iterator, corrects the prediction by live feedback
// (per-engine, per-(alg, d) EWMAs of observed/predicted ratios), scales
// time by the engine's current in-flight load, and picks by policy:
// the cheapest joules among engines whose load-adjusted ETA fits the
// task's deadline/TimeLimit budget (PolicyBalanced), the fastest
// (PolicyLatency), or the thriftiest (PolicyEnergy). A configurable
// joules budget steers dispatch away from engines whose predicted
// draw exceeds what remains.
//
// The planner also implements core.ETAEstimator (so the scheduler's
// deadline admission judges feasibility against the *chosen* engine)
// and core.AlternateSearcher (so hedged dispatch re-issues a straggling
// search on the *second-best* engine rather than duplicating the
// first). See DESIGN.md §14.
package plan

import (
	"context"
	"errors"
	"fmt"
	"math"
	"strings"
	"sync/atomic"
	"time"

	"rbcsalted/internal/core"
	"rbcsalted/internal/obs"
)

// Policy selects the planner's objective.
type Policy int

const (
	// PolicyBalanced minimizes predicted joules among engines whose
	// load-adjusted ETA fits the task's time budget, falling back to the
	// fastest engine when none fits. This reproduces the paper's §4.5
	// reading: the accelerator that wins is the cheapest one that still
	// answers inside the authentication threshold.
	PolicyBalanced Policy = iota
	// PolicyLatency minimizes the load-adjusted ETA unconditionally.
	PolicyLatency
	// PolicyEnergy minimizes predicted joules among time-feasible
	// engines and keeps minimizing joules even when nothing is feasible
	// (an energy-capped deployment prefers a late answer to a costly
	// one).
	PolicyEnergy
)

// String returns the policy's flag spelling.
func (p Policy) String() string {
	switch p {
	case PolicyBalanced:
		return "balanced"
	case PolicyLatency:
		return "latency"
	case PolicyEnergy:
		return "energy"
	default:
		return fmt.Sprintf("Policy(%d)", int(p))
	}
}

// ParsePolicy parses a -plan-policy flag value.
func ParsePolicy(s string) (Policy, error) {
	switch strings.ToLower(strings.TrimSpace(s)) {
	case "", "balanced":
		return PolicyBalanced, nil
	case "latency":
		return PolicyLatency, nil
	case "energy":
		return PolicyEnergy, nil
	default:
		return 0, fmt.Errorf("plan: unknown policy %q (try: balanced, latency, energy)", s)
	}
}

// DefaultFeedbackAlpha is the EWMA smoothing factor applied to
// observed/predicted cost ratios when Config leaves FeedbackAlpha zero.
const DefaultFeedbackAlpha = 0.2

// Config assembles a Planner.
type Config struct {
	// Engines are the candidate backends, each of which must implement
	// core.CostModel. Order is the tie-break: earlier engines win ties.
	Engines []core.Backend
	// Policy selects the objective; zero is PolicyBalanced.
	Policy Policy
	// JoulesBudget, when positive, is the total energy the planner may
	// spend across all searches. Engines whose predicted joules exceed
	// the remaining budget are avoided while any affordable engine
	// remains; the budget steers dispatch rather than refusing service.
	JoulesBudget float64
	// FeedbackAlpha is the EWMA smoothing factor for live correction of
	// the static curves; zero means DefaultFeedbackAlpha, negative
	// disables feedback entirely (pure static planning).
	FeedbackAlpha float64
	// Metrics, when non-nil, receives planner counters and a "planner"
	// stats callback.
	Metrics *obs.Registry
}

// feedback cells are keyed by (algorithm, min(MaxDistance, feedbackMaxD)):
// the correction an engine needs is a function of how deep the search
// runs, and depths beyond the paper's d=5 behave like d=5.
const feedbackMaxD = 5

type engine struct {
	backend core.Backend
	cost    core.CostModel

	inFlight   atomic.Int64
	dispatches atomic.Uint64 // primary dispatches
	alternates atomic.Uint64 // hedge (second-best) dispatches
	joules     atomicFloat64 // observed joules attributed to this engine

	// secRatio and jouleRatio are EWMAs of observed/predicted, indexed
	// [algIndex][min(d, feedbackMaxD)].
	secRatio   [2][feedbackMaxD + 1]obs.EWMA
	jouleRatio [2][feedbackMaxD + 1]obs.EWMA
}

func algIndex(a core.HashAlg) int {
	if a == core.SHA1 {
		return 0
	}
	return 1
}

func dIndex(maxD int) int {
	if maxD < 0 {
		return 0
	}
	if maxD > feedbackMaxD {
		return feedbackMaxD
	}
	return maxD
}

// Planner is the cost-based multiplexer. Construct with New; all
// methods are safe for concurrent use.
type Planner struct {
	cfg     Config
	alpha   float64
	engines []*engine
	name    string

	plans       atomic.Uint64
	joulesSpent atomicFloat64

	mPlans      *obs.Counter
	mInfeasible *obs.Counter
}

// New builds a Planner over the given engines. Every engine must
// implement core.CostModel — the planner has nothing to plan with
// otherwise.
func New(cfg Config) (*Planner, error) {
	if len(cfg.Engines) == 0 {
		return nil, errors.New("plan: no engines")
	}
	p := &Planner{cfg: cfg, alpha: cfg.FeedbackAlpha}
	if p.alpha == 0 {
		p.alpha = DefaultFeedbackAlpha
	}
	names := make([]string, 0, len(cfg.Engines))
	for _, b := range cfg.Engines {
		cm, ok := b.(core.CostModel)
		if !ok {
			return nil, fmt.Errorf("plan: engine %s does not implement core.CostModel", b.Name())
		}
		p.engines = append(p.engines, &engine{backend: b, cost: cm})
		names = append(names, b.Name())
	}
	p.name = fmt.Sprintf("planner[%s](%s)", cfg.Policy, strings.Join(names, " | "))
	if cfg.Metrics != nil {
		p.mPlans = cfg.Metrics.Counter("planner_plans")
		p.mInfeasible = cfg.Metrics.Counter("planner_no_feasible_engine")
		cfg.Metrics.Func("planner", func() any { return p.Stats() })
	}
	return p, nil
}

// Name implements core.Backend.
func (p *Planner) Name() string { return p.name }

// EngineChoice is one engine's standing in a Decision.
type EngineChoice struct {
	// Engine is the backend's name.
	Engine string
	// Cost is the feedback-corrected predicted cost of the task.
	Cost core.Cost
	// ETA is the load-adjusted expected completion time: corrected
	// seconds scaled by (1 + searches already in flight on the engine).
	ETA time.Duration
	// Feasible reports the ETA fits the task's time budget (always true
	// when the task carries no deadline and no TimeLimit).
	Feasible bool
	// OverBudget reports the predicted joules exceed the planner's
	// remaining energy budget.
	OverBudget bool
}

// Decision is one planning outcome: the ranked engines and the chosen
// primary/secondary. Choices is ordered best-first under the policy.
type Decision struct {
	Choices []EngineChoice
	// Primary and Secondary index Choices' underlying engines; Secondary
	// is -1 when only one engine exists.
	Primary   int
	Secondary int
}

// planned pairs a Decision with the engine handles backing it.
type planned struct {
	decision Decision
	ranked   []*engine // parallel to decision.Choices
}

// Plan ranks the engines for the task without dispatching. Exported for
// introspection and tests; Search/SearchAlternate plan internally.
func (p *Planner) Plan(task core.Task) (Decision, error) {
	pl, err := p.plan(task)
	return pl.decision, err
}

func (p *Planner) plan(task core.Task) (planned, error) {
	p.plans.Add(1)
	if p.mPlans != nil {
		p.mPlans.Inc()
	}

	budget := p.timeBudget(task)
	remaining := p.remainingJoules()
	ai, di := algIndex(taskAlg(task)), dIndex(task.MaxDistance)

	type cand struct {
		e      *engine
		choice EngineChoice
	}
	cands := make([]cand, 0, len(p.engines))
	var firstErr error
	for _, e := range p.engines {
		c, err := e.cost.PredictCost(task)
		if err != nil {
			if firstErr == nil {
				firstErr = err
			}
			continue
		}
		if p.alpha > 0 {
			if r, n := e.secRatio[ai][di].Value(); n > 0 {
				c.Seconds *= r
			}
			if r, n := e.jouleRatio[ai][di].Value(); n > 0 {
				c.Joules *= r
			}
		}
		load := 1 + float64(e.inFlight.Load())
		eta := time.Duration(c.Seconds * load * float64(time.Second))
		cands = append(cands, cand{
			e: e,
			choice: EngineChoice{
				Engine:     e.backend.Name(),
				Cost:       c,
				ETA:        eta,
				Feasible:   budget <= 0 || eta <= budget,
				OverBudget: remaining >= 0 && c.Joules > remaining,
			},
		})
	}
	if len(cands) == 0 {
		if firstErr == nil {
			firstErr = errors.New("plan: no engine produced a prediction")
		}
		return planned{}, firstErr
	}

	// Rank best-first. Sorting is by insertion (the engine list is tiny):
	// the comparison prefers the policy objective within the preference
	// tier, and order of Config.Engines breaks exact ties.
	better := func(a, b cand) bool {
		if ta, tb := tier(a.choice), tier(b.choice); ta != tb {
			return ta < tb
		}
		switch p.cfg.Policy {
		case PolicyLatency:
			return a.choice.ETA < b.choice.ETA
		default: // PolicyBalanced, PolicyEnergy
			if a.choice.Feasible && b.choice.Feasible {
				return a.choice.Cost.Joules < b.choice.Cost.Joules
			}
			if p.cfg.Policy == PolicyEnergy {
				return a.choice.Cost.Joules < b.choice.Cost.Joules
			}
			// Balanced fallback when nothing fits: finish soonest.
			return a.choice.ETA < b.choice.ETA
		}
	}
	ordered := make([]cand, 0, len(cands))
	for _, c := range cands {
		i := len(ordered)
		for i > 0 && better(c, ordered[i-1]) {
			i--
		}
		ordered = append(ordered, cand{})
		copy(ordered[i+1:], ordered[i:])
		ordered[i] = c
	}

	pl := planned{decision: Decision{Primary: 0, Secondary: -1}}
	if len(ordered) > 1 {
		pl.decision.Secondary = 1
	}
	if !ordered[0].choice.Feasible && p.mInfeasible != nil {
		p.mInfeasible.Inc()
	}
	for _, c := range ordered {
		pl.decision.Choices = append(pl.decision.Choices, c.choice)
		pl.ranked = append(pl.ranked, c.e)
	}
	return pl, nil
}

// tier groups candidates by preference: affordable-and-feasible first,
// then feasible-but-over-budget, then the rest. The budget demotes
// rather than excludes, so an over-budget fleet still serves.
func tier(c EngineChoice) int {
	switch {
	case c.Feasible && !c.OverBudget:
		return 0
	case c.Feasible:
		return 1
	default:
		return 2
	}
}

// timeBudget returns the tighter of the task's deadline slack and its
// TimeLimit; zero means unbounded.
func (p *Planner) timeBudget(task core.Task) time.Duration {
	budget := task.TimeLimit
	if !task.Deadline.IsZero() {
		slack := time.Until(task.Deadline)
		if slack <= 0 {
			slack = time.Nanosecond // already late: nothing is feasible
		}
		if budget == 0 || slack < budget {
			budget = slack
		}
	}
	return budget
}

// remainingJoules returns the unspent budget, or -1 when unbudgeted.
func (p *Planner) remainingJoules() float64 {
	if p.cfg.JoulesBudget <= 0 {
		return -1
	}
	r := p.cfg.JoulesBudget - p.joulesSpent.Load()
	if r < 0 {
		r = 0
	}
	return r
}

// taskAlg recovers the hash algorithm for feedback keying from the
// target digest's tag (the algorithm is otherwise engine state).
func taskAlg(task core.Task) core.HashAlg {
	return task.Target.Alg
}

// Search implements core.Backend: plan, dispatch the primary engine,
// fold the observation back into the curves.
func (p *Planner) Search(ctx context.Context, task core.Task) (core.Result, error) {
	return p.dispatch(ctx, task, false)
}

// SearchAlternate implements core.AlternateSearcher: dispatch the
// second-best engine (the best one, when only one exists). The
// scheduler's hedge path calls this so a straggling search retries on
// different hardware.
func (p *Planner) SearchAlternate(ctx context.Context, task core.Task) (core.Result, error) {
	return p.dispatch(ctx, task, true)
}

func (p *Planner) dispatch(ctx context.Context, task core.Task, alternate bool) (core.Result, error) {
	pl, err := p.plan(task)
	if err != nil {
		return core.Result{}, err
	}
	idx := pl.decision.Primary
	if alternate && pl.decision.Secondary >= 0 {
		idx = pl.decision.Secondary
	}
	e := pl.ranked[idx]
	predicted := pl.decision.Choices[idx].Cost

	if alternate {
		e.alternates.Add(1)
	} else {
		e.dispatches.Add(1)
	}
	e.inFlight.Add(1)
	res, err := e.backend.Search(ctx, task)
	e.inFlight.Add(-1)
	p.observe(e, task, predicted, res, err)
	return res, err
}

// observe charges the energy ledger and, on clean completions, folds
// the observed/predicted ratios into the engine's correction EWMAs.
func (p *Planner) observe(e *engine, task core.Task, predicted core.Cost, res core.Result, err error) {
	joules := res.EnergyJoules
	if joules == 0 && predicted.Seconds > 0 && res.DeviceSeconds > 0 {
		// Engine reports no power model (e.g. the real host backend):
		// attribute energy by scaling the predicted joules with the
		// observed time so the ledger stays consistent with planning.
		joules = predicted.Joules * res.DeviceSeconds / predicted.Seconds
	}
	if joules > 0 {
		e.joules.Add(joules)
		p.joulesSpent.Add(joules)
	}
	if err != nil || p.alpha <= 0 {
		// A cancelled or failed search still spent energy, but its partial
		// cost says nothing about the curves.
		return
	}
	ai, di := algIndex(taskAlg(task)), dIndex(task.MaxDistance)
	if predicted.Seconds > 0 && res.DeviceSeconds > 0 {
		e.secRatio[ai][di].Observe(p.alpha, res.DeviceSeconds/predicted.Seconds)
	}
	if predicted.Joules > 0 && joules > 0 {
		e.jouleRatio[ai][di].Observe(p.alpha, joules/predicted.Joules)
	}
}

// PredictCost implements core.CostModel: the planner's own predicted
// cost for a task is its chosen engine's corrected prediction, so
// planners nest (a cluster of planners can be planned over).
func (p *Planner) PredictCost(task core.Task) (core.Cost, error) {
	pl, err := p.plan(task)
	if err != nil {
		return core.Cost{}, err
	}
	return pl.decision.Choices[pl.decision.Primary].Cost, nil
}

// EstimateETA implements core.ETAEstimator: the load-adjusted ETA of
// the engine the task would dispatch to. The scheduler's deadline
// admission consults this, so infeasibility is judged against the
// *chosen* engine rather than a backend-blind global average.
func (p *Planner) EstimateETA(task core.Task) (time.Duration, bool) {
	pl, err := p.plan(task)
	if err != nil {
		return 0, false
	}
	return pl.decision.Choices[pl.decision.Primary].ETA, true
}

// EngineStats is one engine's dispatch accounting.
type EngineStats struct {
	Name string
	// Dispatches counts primary dispatches; Alternates counts hedge
	// (second-best) dispatches.
	Dispatches uint64
	Alternates uint64
	// InFlight is the searches running on the engine right now.
	InFlight int64
	// Joules is the observed energy attributed to the engine.
	Joules float64
}

// Stats is a point-in-time snapshot of the planner.
type Stats struct {
	Policy string
	// Plans counts planning passes (Search, SearchAlternate,
	// EstimateETA and Plan all plan).
	Plans uint64
	// JoulesSpent is the observed energy across all engines;
	// JoulesBudget echoes the configured cap (0 = unbudgeted).
	JoulesSpent  float64
	JoulesBudget float64
	Engines      []EngineStats
}

// Stats returns a snapshot. Safe for concurrent use.
func (p *Planner) Stats() Stats {
	st := Stats{
		Policy:       p.cfg.Policy.String(),
		Plans:        p.plans.Load(),
		JoulesSpent:  p.joulesSpent.Load(),
		JoulesBudget: p.cfg.JoulesBudget,
	}
	for _, e := range p.engines {
		st.Engines = append(st.Engines, EngineStats{
			Name:       e.backend.Name(),
			Dispatches: e.dispatches.Load(),
			Alternates: e.alternates.Load(),
			InFlight:   e.inFlight.Load(),
			Joules:     e.joules.Load(),
		})
	}
	return st
}

// atomicFloat64 is a CAS-looped float64 accumulator.
type atomicFloat64 struct {
	bits atomic.Uint64
}

func (a *atomicFloat64) Add(v float64) {
	for {
		old := a.bits.Load()
		if a.bits.CompareAndSwap(old, math.Float64bits(math.Float64frombits(old)+v)) {
			return
		}
	}
}

func (a *atomicFloat64) Load() float64 {
	return math.Float64frombits(a.bits.Load())
}
