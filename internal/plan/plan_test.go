package plan

import (
	"context"
	"fmt"
	"sync"
	"testing"
	"time"

	"rbcsalted/internal/apusim"
	"rbcsalted/internal/core"
	"rbcsalted/internal/cpu"
	"rbcsalted/internal/gpusim"
	"rbcsalted/internal/obs"
	"rbcsalted/internal/u256"
)

// The planner must satisfy every contract it brokers.
var (
	_ core.Backend           = (*Planner)(nil)
	_ core.CostModel         = (*Planner)(nil)
	_ core.ETAEstimator      = (*Planner)(nil)
	_ core.AlternateSearcher = (*Planner)(nil)
)

// paperEngines is the calibrated Table 5/6 trio the planner multiplexes
// in production: the modelled 64-core EPYC, the A100 simulator in its
// best (shared-memory) configuration, and the Gemini simulator.
func paperEngines(alg core.HashAlg) []core.Backend {
	return []core.Backend{
		&cpu.ModelBackend{Alg: alg},
		gpusim.NewBackend(gpusim.Config{Alg: alg, SharedMemoryState: true}),
		apusim.NewBackend(apusim.Config{Alg: alg}),
	}
}

// planTask builds a plan-only task (never dispatched, so the target
// digest's preimage does not matter).
func planTask(alg core.HashAlg, d int, exhaustive bool, limit time.Duration) core.Task {
	return core.Task{
		Base:        u256.New(1, 2, 3, 4),
		Target:      core.HashSeed(alg, u256.New(5, 6, 7, 8)),
		MaxDistance: d,
		Exhaustive:  exhaustive,
		TimeLimit:   limit,
	}
}

// TestPlanNeverPicksDominatedEngine is the static-choice property test:
// across the whole (alg, d, policy, mode, deadline) grid, the engine the
// planner picks is never strictly dominated — strictly slower AND
// strictly more joules — by another engine in the same preference tier.
// Feedback is disabled so the test exercises the calibrated curves
// alone.
func TestPlanNeverPicksDominatedEngine(t *testing.T) {
	limits := []time.Duration{0, 20 * time.Second, time.Second, 10 * time.Millisecond}
	for _, alg := range core.HashAlgs() {
		for _, policy := range []Policy{PolicyBalanced, PolicyLatency, PolicyEnergy} {
			p, err := New(Config{
				Engines:       paperEngines(alg),
				Policy:        policy,
				FeedbackAlpha: -1, // static curves only
			})
			if err != nil {
				t.Fatal(err)
			}
			for d := 0; d <= 6; d++ {
				for _, exhaustive := range []bool{false, true} {
					for _, limit := range limits {
						task := planTask(alg, d, exhaustive, limit)
						dec, err := p.Plan(task)
						if err != nil {
							t.Fatalf("%v %v d=%d: %v", alg, policy, d, err)
						}
						chosen := dec.Choices[dec.Primary]
						for _, other := range dec.Choices {
							if tier(other) != tier(chosen) {
								continue
							}
							if other.Cost.Seconds < chosen.Cost.Seconds &&
								other.Cost.Joules < chosen.Cost.Joules {
								t.Errorf("%v %v d=%d exhaustive=%v limit=%v: chose %s (%.4fs, %.2fJ) but %s (%.4fs, %.2fJ) strictly dominates",
									alg, policy, d, exhaustive, limit,
									chosen.Engine, chosen.Cost.Seconds, chosen.Cost.Joules,
									other.Engine, other.Cost.Seconds, other.Cost.Joules)
							}
						}
					}
				}
			}
		}
	}
}

// fakeEngine is a constant-cost instant backend for planner unit tests.
type fakeEngine struct {
	name   string
	sec    float64
	joules float64
	calls  int32
	mu     sync.Mutex
}

func (f *fakeEngine) Name() string { return f.name }

func (f *fakeEngine) Search(ctx context.Context, task core.Task) (core.Result, error) {
	f.mu.Lock()
	f.calls++
	f.mu.Unlock()
	return core.Result{Found: true, SeedsCovered: 1,
		DeviceSeconds: f.sec, EnergyJoules: f.joules}, nil
}

func (f *fakeEngine) PredictCost(task core.Task) (core.Cost, error) {
	return core.Cost{Seconds: f.sec, Joules: f.joules}, nil
}

// TestJoulesBudgetDemotesButStillServes: under PolicyLatency the fast
// engine wins — until its predicted joules exceed the remaining budget,
// at which point it is demoted below the affordable slow engine. The
// fleet keeps serving either way.
func TestJoulesBudgetDemotesButStillServes(t *testing.T) {
	fast := &fakeEngine{name: "fast", sec: 0.001, joules: 5}
	slow := &fakeEngine{name: "slow", sec: 0.010, joules: 0.5}
	task := planTask(core.SHA3, 2, false, 0)

	unbudgeted, err := New(Config{Engines: []core.Backend{fast, slow}, Policy: PolicyLatency})
	if err != nil {
		t.Fatal(err)
	}
	dec, err := unbudgeted.Plan(task)
	if err != nil {
		t.Fatal(err)
	}
	if got := dec.Choices[dec.Primary].Engine; got != "fast" {
		t.Fatalf("unbudgeted latency policy chose %s, want fast", got)
	}

	budgeted, err := New(Config{Engines: []core.Backend{fast, slow},
		Policy: PolicyLatency, JoulesBudget: 1})
	if err != nil {
		t.Fatal(err)
	}
	dec, err = budgeted.Plan(task)
	if err != nil {
		t.Fatal(err)
	}
	chosen := dec.Choices[dec.Primary]
	if chosen.Engine != "slow" {
		t.Fatalf("budgeted planner chose %s, want the affordable slow engine", chosen.Engine)
	}
	if chosen.OverBudget {
		t.Fatal("the affordable engine is marked over budget")
	}
	if res, err := budgeted.Search(context.Background(), task); err != nil || !res.Found {
		t.Fatalf("budgeted search: %+v, %v", res, err)
	}
}

// TestFeedbackCorrectsLyingCurve: an engine that predicts 1ms but
// delivers 100ms loses its lead to an honest rival once the EWMA has
// seen enough searches.
func TestFeedbackCorrectsLyingCurve(t *testing.T) {
	// The liar's static curve claims 1ms; its Search reports the true
	// 100ms DeviceSeconds back through the feedback loop.
	liar := &lyingEngine{
		fakeEngine: &fakeEngine{name: "liar", sec: 0.100, joules: 1},
		claimSec:   0.001,
	}
	honest := &fakeEngine{name: "honest", sec: 0.005, joules: 1.1}
	task := planTask(core.SHA1, 1, false, 0)
	p, err := New(Config{Engines: []core.Backend{liar, honest}, Policy: PolicyLatency})
	if err != nil {
		t.Fatal(err)
	}
	dec, err := p.Plan(task)
	if err != nil {
		t.Fatal(err)
	}
	if got := dec.Choices[dec.Primary].Engine; got != "liar" {
		t.Fatalf("static plan chose %s, want the (lying) liar", got)
	}
	for i := 0; i < 40; i++ {
		if _, err := p.Search(context.Background(), task); err != nil {
			t.Fatal(err)
		}
	}
	dec, err = p.Plan(task)
	if err != nil {
		t.Fatal(err)
	}
	if got := dec.Choices[dec.Primary].Engine; got != "honest" {
		t.Fatalf("after feedback the planner still chose %s, want honest", got)
	}
}

// lyingEngine reports claimSec from PredictCost but serves (and
// observes) the embedded fake's real cost.
type lyingEngine struct {
	*fakeEngine
	claimSec float64
}

func (l *lyingEngine) PredictCost(task core.Task) (core.Cost, error) {
	return core.Cost{Seconds: l.claimSec, Joules: l.joules}, nil
}

// TestPlannersNest: a planner is itself a CostModel, so a planner of
// planners constructs and serves.
func TestPlannersNest(t *testing.T) {
	inner, err := New(Config{Engines: []core.Backend{
		&fakeEngine{name: "a", sec: 0.001, joules: 1},
		&fakeEngine{name: "b", sec: 0.002, joules: 0.5},
	}})
	if err != nil {
		t.Fatal(err)
	}
	outer, err := New(Config{Engines: []core.Backend{
		inner,
		&fakeEngine{name: "c", sec: 0.010, joules: 10},
	}})
	if err != nil {
		t.Fatal(err)
	}
	res, err := outer.Search(context.Background(), planTask(core.SHA3, 1, false, 0))
	if err != nil || !res.Found {
		t.Fatalf("nested search: %+v, %v", res, err)
	}
}

// TestConcurrentPlanSearchFeedback hammers every concurrent surface at
// once — Search, SearchAlternate, Plan, EstimateETA, Stats — and is the
// test the -race CI target leans on.
func TestConcurrentPlanSearchFeedback(t *testing.T) {
	engines := []core.Backend{
		&fakeEngine{name: "e0", sec: 0.0001, joules: 0.2},
		&fakeEngine{name: "e1", sec: 0.0002, joules: 0.1},
		&fakeEngine{name: "e2", sec: 0.0004, joules: 0.05},
	}
	p, err := New(Config{
		Engines:      engines,
		JoulesBudget: 50,
		Metrics:      obs.NewRegistry(),
	})
	if err != nil {
		t.Fatal(err)
	}
	var wg sync.WaitGroup
	for g := 0; g < 8; g++ {
		wg.Add(1)
		go func(g int) {
			defer wg.Done()
			for i := 0; i < 50; i++ {
				task := planTask(core.HashAlgs()[i%2], 1+(g+i)%5, i%7 == 0, 0)
				switch i % 4 {
				case 0:
					if _, err := p.Search(context.Background(), task); err != nil {
						t.Error(err)
						return
					}
				case 1:
					if _, err := p.SearchAlternate(context.Background(), task); err != nil {
						t.Error(err)
						return
					}
				case 2:
					if _, err := p.Plan(task); err != nil {
						t.Error(err)
						return
					}
					p.EstimateETA(task)
				case 3:
					p.Stats()
				}
			}
		}(g)
	}
	wg.Wait()

	st := p.Stats()
	var dispatched uint64
	for _, e := range st.Engines {
		dispatched += e.Dispatches + e.Alternates
	}
	if dispatched == 0 {
		t.Fatal("no searches dispatched")
	}
	if st.JoulesSpent <= 0 {
		t.Fatalf("joules ledger empty after %d dispatches", dispatched)
	}
}

// TestParsePolicy pins the flag values the command-line tools accept.
func TestParsePolicy(t *testing.T) {
	for _, tc := range []struct {
		in   string
		want Policy
	}{{"balanced", PolicyBalanced}, {"latency", PolicyLatency}, {"energy", PolicyEnergy}} {
		got, err := ParsePolicy(tc.in)
		if err != nil || got != tc.want {
			t.Fatalf("ParsePolicy(%q) = %v, %v", tc.in, got, err)
		}
		if got.String() != tc.in {
			t.Fatalf("String() = %q, want %q", got.String(), tc.in)
		}
	}
	if _, err := ParsePolicy("cheapest"); err == nil {
		t.Fatal("bad policy accepted")
	}
}

// TestNewRejectsEnginesWithoutCostModel pins the constructor contract.
func TestNewRejectsEnginesWithoutCostModel(t *testing.T) {
	if _, err := New(Config{}); err == nil {
		t.Fatal("empty engine list accepted")
	}
	if _, err := New(Config{Engines: []core.Backend{noCost{}}}); err == nil {
		t.Fatal("engine without a cost model accepted")
	}
}

type noCost struct{}

func (noCost) Name() string { return "nocost" }
func (noCost) Search(context.Context, core.Task) (core.Result, error) {
	return core.Result{}, fmt.Errorf("unreachable")
}
