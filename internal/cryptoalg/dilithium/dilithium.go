package dilithium

import "rbcsalted/internal/keccak"

// Dilithium3 parameters.
const (
	K   = 6  // rows of A / length of t
	L   = 5  // columns of A / length of s1
	Eta = 4  // secret coefficient bound
	D   = 13 // dropped bits in Power2Round

	// PublicKeySize = rho (32) + K polys of N 10-bit t1 coefficients.
	PublicKeySize = 32 + K*N*10/8
)

// Generator derives Dilithium3 public keys from seeds. It implements
// cryptoalg.KeyGenerator. The zero value is ready to use.
type Generator struct{}

// Name implements cryptoalg.KeyGenerator.
func (Generator) Name() string { return "Dilithium3" }

// PublicKey implements cryptoalg.KeyGenerator.
//
// KeyGen: (rho, rho') = H(seed); A = ExpandA(rho) in the NTT domain;
// (s1, s2) = ExpandS(rho'); t = A s1 + s2; (t1, t0) = Power2Round(t, d);
// pk = rho || pack_10(t1).
func (Generator) PublicKey(seed [32]byte) []byte {
	h := keccak.NewSHAKE256()
	h.Write(seed[:])
	h.Write([]byte{K, L}) // domain separation per parameter set
	var rho [32]byte
	var rhoPrime [64]byte
	h.Read(rho[:])
	h.Read(rhoPrime[:])

	// A is sampled directly in the NTT domain, as in the specification.
	var a [K][L]Poly
	for i := 0; i < K; i++ {
		for j := 0; j < L; j++ {
			a[i][j] = expandA(rho[:], uint8(i), uint8(j))
		}
	}

	var s1 [L]Poly
	for j := 0; j < L; j++ {
		s1[j] = sampleEta(rhoPrime[:], uint16(j))
	}
	var s2 [K]Poly
	for i := 0; i < K; i++ {
		s2[i] = sampleEta(rhoPrime[:], uint16(L+i))
	}

	// t = A s1 + s2 via the NTT.
	var s1Hat [L]Poly
	for j := 0; j < L; j++ {
		s1Hat[j] = s1[j]
		s1Hat[j].NTT()
	}
	out := make([]byte, 0, PublicKeySize)
	out = append(out, rho[:]...)
	for i := 0; i < K; i++ {
		var acc Poly
		for j := 0; j < L; j++ {
			prod := PointwiseMul(&a[i][j], &s1Hat[j])
			acc = Add(&acc, &prod)
		}
		acc.InvNTT()
		t := Add(&acc, &s2[i])
		// Power2Round: t1 = round(t / 2^d).
		var t1 [N]uint16
		for n := 0; n < N; n++ {
			t1[n] = power2RoundHigh(t[n])
		}
		out = appendPacked10(out, &t1)
	}
	return out
}

// expandA samples one matrix polynomial from SHAKE-128(rho || j || i)
// with rejection sampling of 23-bit candidates below q.
func expandA(rho []byte, i, j uint8) Poly {
	s := keccak.NewSHAKE128()
	s.Write(rho)
	s.Write([]byte{j, i})
	var p Poly
	var buf [3]byte
	for n := 0; n < N; {
		s.Read(buf[:])
		v := uint32(buf[0]) | uint32(buf[1])<<8 | uint32(buf[2])&0x7F<<16
		if v < Q {
			p[n] = v
			n++
		}
	}
	return p
}

// sampleEta samples a secret polynomial with coefficients in [-eta, eta]
// from SHAKE-256(rho' || nonce), rejecting nibbles >= 9 (eta = 4).
func sampleEta(rhoPrime []byte, nonce uint16) Poly {
	s := keccak.NewSHAKE256()
	s.Write(rhoPrime)
	s.Write([]byte{byte(nonce), byte(nonce >> 8)})
	var p Poly
	var buf [1]byte
	n := 0
	for n < N {
		s.Read(buf[:])
		for _, nib := range []byte{buf[0] & 0x0F, buf[0] >> 4} {
			if nib < 9 && n < N {
				// eta - nib in [-4, 4], lifted mod q.
				v := int32(Eta) - int32(nib)
				if v < 0 {
					v += Q
				}
				p[n] = uint32(v)
				n++
			}
		}
	}
	return p
}

// power2RoundHigh returns t1 from Power2Round: the high bits of r with
// the low d bits rounded to the centered remainder.
func power2RoundHigh(r uint32) uint16 {
	const half = 1 << (D - 1)
	return uint16((r + half - 1) >> D)
}

// appendPacked10 packs 256 10-bit values little-endian into 320 bytes.
func appendPacked10(dst []byte, t1 *[N]uint16) []byte {
	var acc uint32
	var bits uint
	for _, c := range t1 {
		acc |= uint32(c&0x3FF) << bits
		bits += 10
		for bits >= 8 {
			dst = append(dst, byte(acc))
			acc >>= 8
			bits -= 8
		}
	}
	if bits > 0 {
		dst = append(dst, byte(acc))
	}
	return dst
}
