// Package dilithium implements CRYSTALS-Dilithium3 key generation
// (Ducas et al.): the lattice signature scheme whose keygen cost anchors
// the paper's slowest Table 7 prior-work baseline (Dilithium-GPU, Wright
// et al.).
//
// Only key generation is implemented - the operation the algorithm-aware
// RBC search performs per candidate seed. It follows the Dilithium3
// parameter set (k=6, l=5, eta=4, q=8380417, d=13) with SHAKE-based
// expansion, NTT arithmetic over Z_q, rejection sampling, Power2Round and
// 1952-byte public keys; deterministic from a 32-byte seed, with no claim
// of byte compatibility with the NIST reference vectors.
package dilithium

// Ring parameters.
const (
	N = 256
	Q = 8380417
	// RootOfUnity is the canonical 512th primitive root of unity mod Q.
	RootOfUnity = 1753
)

// zetas[i] = RootOfUnity^bitrev8(i) mod Q, the twiddle factors of the
// decimation-in-time NTT, computed at init rather than transcribed.
var zetas [N]uint32

// invN = N^{-1} mod Q, for the inverse transform's final scaling.
var invN uint32

func init() {
	for i := 0; i < N; i++ {
		zetas[i] = powMod(RootOfUnity, uint32(bitrev8(uint8(i))))
	}
	invN = powMod(N, Q-2)
}

func bitrev8(v uint8) uint8 {
	v = v>>4 | v<<4
	v = (v&0xCC)>>2 | (v&0x33)<<2
	v = (v&0xAA)>>1 | (v&0x55)<<1
	return v
}

func powMod(base, exp uint32) uint32 {
	result := uint64(1)
	b := uint64(base) % Q
	for e := exp; e > 0; e >>= 1 {
		if e&1 == 1 {
			result = result * b % Q
		}
		b = b * b % Q
	}
	return uint32(result)
}

// Poly is a polynomial in Z_q[x]/(x^256+1), coefficients in [0, Q).
type Poly [N]uint32

func mulMod(a, b uint32) uint32 {
	return uint32(uint64(a) * uint64(b) % Q)
}

func addMod(a, b uint32) uint32 {
	s := a + b
	if s >= Q {
		s -= Q
	}
	return s
}

func subMod(a, b uint32) uint32 {
	if a >= b {
		return a - b
	}
	return a + Q - b
}

// NTT transforms p in place to the number-theoretic domain
// (decimation-in-time, bit-reversed twiddles).
func (p *Poly) NTT() {
	k := 0
	for length := 128; length >= 1; length >>= 1 {
		for start := 0; start < N; start += 2 * length {
			k++
			zeta := zetas[k]
			for j := start; j < start+length; j++ {
				t := mulMod(zeta, p[j+length])
				p[j+length] = subMod(p[j], t)
				p[j] = addMod(p[j], t)
			}
		}
	}
}

// InvNTT transforms p back from the NTT domain, including the 1/N
// scaling.
func (p *Poly) InvNTT() {
	k := N
	for length := 1; length < N; length <<= 1 {
		for start := 0; start < N; start += 2 * length {
			k--
			// Inverse butterflies consume the twiddles in reverse, negated.
			zeta := Q - zetas[k]
			for j := start; j < start+length; j++ {
				t := p[j]
				p[j] = addMod(t, p[j+length])
				p[j+length] = mulMod(zeta, subMod(t, p[j+length]))
			}
		}
	}
	for i := range p {
		p[i] = mulMod(p[i], invN)
	}
}

// PointwiseMul returns the coefficient-wise product (valid in the NTT
// domain).
func PointwiseMul(a, b *Poly) Poly {
	var out Poly
	for i := range out {
		out[i] = mulMod(a[i], b[i])
	}
	return out
}

// Add returns a + b mod q.
func Add(a, b *Poly) Poly {
	var out Poly
	for i := range out {
		out[i] = addMod(a[i], b[i])
	}
	return out
}

// MulSchoolbook is the reference negacyclic product used to validate the
// NTT path in tests.
func MulSchoolbook(a, b *Poly) Poly {
	var out Poly
	for i := 0; i < N; i++ {
		if a[i] == 0 {
			continue
		}
		for j := 0; j < N; j++ {
			k := i + j
			prod := mulMod(a[i], b[j])
			if k < N {
				out[k] = addMod(out[k], prod)
			} else {
				out[k-N] = subMod(out[k-N], prod)
			}
		}
	}
	return out
}
