package dilithium

import (
	"bytes"
	"crypto/sha256"
	"encoding/hex"
	"math/rand"
	"testing"
	"testing/quick"

	"rbcsalted/internal/cryptoalg"
)

var _ cryptoalg.KeyGenerator = Generator{}

func randPoly(r *rand.Rand) Poly {
	var p Poly
	for i := range p {
		p[i] = uint32(r.Intn(Q))
	}
	return p
}

// TestNTTRoundTrip: InvNTT(NTT(p)) == p.
func TestNTTRoundTrip(t *testing.T) {
	r := rand.New(rand.NewSource(1))
	for trial := 0; trial < 50; trial++ {
		p := randPoly(r)
		q := p
		q.NTT()
		q.InvNTT()
		if p != q {
			t.Fatalf("NTT round trip failed at trial %d", trial)
		}
	}
}

// TestNTTMulMatchesSchoolbook is the key validation: the NTT-based
// negacyclic product must equal the O(n^2) reference for random inputs.
func TestNTTMulMatchesSchoolbook(t *testing.T) {
	r := rand.New(rand.NewSource(2))
	for trial := 0; trial < 20; trial++ {
		a := randPoly(r)
		b := randPoly(r)
		want := MulSchoolbook(&a, &b)
		na, nb := a, b
		na.NTT()
		nb.NTT()
		got := PointwiseMul(&na, &nb)
		got.InvNTT()
		if got != want {
			t.Fatalf("NTT product differs from schoolbook at trial %d", trial)
		}
	}
}

func TestNTTLinearity(t *testing.T) {
	r := rand.New(rand.NewSource(3))
	a, b := randPoly(r), randPoly(r)
	sum := Add(&a, &b)
	sum.NTT()
	a.NTT()
	b.NTT()
	want := Add(&a, &b)
	if sum != want {
		t.Error("NTT not linear")
	}
}

func TestZetasAreRootsOfUnity(t *testing.T) {
	// Every twiddle is a power of the 512th root: zeta^512 == 1, and the
	// generator itself has exact order 512.
	for i, z := range zetas {
		if powMod(z, 512) != 1 {
			t.Fatalf("zetas[%d]^512 != 1", i)
		}
	}
	if powMod(RootOfUnity, 256) == 1 {
		t.Error("root of unity has order <= 256")
	}
	if powMod(RootOfUnity, 512) != 1 {
		t.Error("root of unity does not have order 512")
	}
	if mulMod(invN, N) != 1 {
		t.Error("invN wrong")
	}
}

func TestPublicKeySizeAndDeterminism(t *testing.T) {
	var g Generator
	seed := [32]byte{9}
	pk1 := g.PublicKey(seed)
	pk2 := g.PublicKey(seed)
	if len(pk1) != PublicKeySize || PublicKeySize != 1952 {
		t.Fatalf("public key size %d, want 1952", len(pk1))
	}
	if !bytes.Equal(pk1, pk2) {
		t.Error("keygen not deterministic")
	}
}

func TestDistinctSeedsDistinctKeys(t *testing.T) {
	var g Generator
	f := func(a, b [32]byte) bool {
		if a == b {
			return true
		}
		return !bytes.Equal(g.PublicKey(a), g.PublicKey(b))
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 10}); err != nil {
		t.Error(err)
	}
}

func TestSampleEtaRange(t *testing.T) {
	p := sampleEta([]byte("rho prime material for testing!"), 3)
	for i, c := range p {
		v := int64(c)
		if v > Q/2 {
			v -= Q
		}
		if v < -Eta || v > Eta {
			t.Fatalf("coefficient %d = %d outside [-4, 4]", i, v)
		}
	}
	// Distinct nonces give distinct polynomials.
	if sampleEta([]byte("rho prime material for testing!"), 4) == p {
		t.Error("nonce ignored")
	}
}

func TestExpandARange(t *testing.T) {
	p := expandA([]byte("rho material"), 2, 3)
	for i, c := range p {
		if c >= Q {
			t.Fatalf("A coefficient %d = %d >= q", i, c)
		}
	}
	if expandA([]byte("rho material"), 3, 2) == p {
		t.Error("matrix position ignored in expansion")
	}
}

func TestPower2Round(t *testing.T) {
	// t1 must reconstruct r within +/- 2^(d-1).
	r := rand.New(rand.NewSource(5))
	for trial := 0; trial < 1000; trial++ {
		v := uint32(r.Intn(Q))
		t1 := power2RoundHigh(v)
		recon := int64(t1) << D
		diff := recon - int64(v)
		if diff < -(1<<(D-1)) || diff > 1<<(D-1) {
			t.Fatalf("Power2Round residual %d for %d", diff, v)
		}
	}
}

func BenchmarkKeyGen(b *testing.B) {
	var g Generator
	var seed [32]byte
	for i := 0; i < b.N; i++ {
		seed[0] = byte(i)
		sink = g.PublicKey(seed)
	}
}

var sink []byte

// TestGoldenDigest pins the exact keygen output: any refactor that
// changes the derivation (NTT, sampling, Power2Round, packing) must fail
// here rather than silently producing different keys.
func TestGoldenDigest(t *testing.T) {
	var g Generator
	pk := g.PublicKey([32]byte{1, 2, 3, 4})
	got := sha256.Sum256(pk)
	const want = "3ed34223a9e0b9309401c5ce4559ed35d04d1134c2e3e31d397f5896c7ace542"
	if hex.EncodeToString(got[:]) != want {
		t.Errorf("keygen output changed: sha256 = %x, want %s", got, want)
	}
}
