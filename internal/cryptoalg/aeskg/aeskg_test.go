package aeskg

import (
	"bytes"
	"crypto/aes"
	"testing"

	"rbcsalted/internal/cryptoalg"
)

var _ cryptoalg.KeyGenerator = (*Generator)(nil)

func TestDeterministicAndSized(t *testing.T) {
	g := &Generator{}
	seed := [32]byte{1}
	k1 := g.PublicKey(seed)
	k2 := g.PublicKey(seed)
	if len(k1) != 32 {
		t.Fatalf("response size %d, want 32", len(k1))
	}
	if !bytes.Equal(k1, k2) {
		t.Error("not deterministic")
	}
}

func TestMatchesDirectAES(t *testing.T) {
	g := &Generator{Plaintext: [16]byte{0xAA}}
	seed := [32]byte{3, 1, 4, 1, 5, 9, 2, 6}
	got := g.PublicKey(seed)
	block, err := aes.NewCipher(seed[:16])
	if err != nil {
		t.Fatal(err)
	}
	want := make([]byte, 32)
	block.Encrypt(want[:16], g.Plaintext[:])
	second := g.Plaintext
	second[15] ^= 1
	block.Encrypt(want[16:], second[:])
	if !bytes.Equal(got, want) {
		t.Error("response differs from direct AES computation")
	}
}

func TestKeySensitivity(t *testing.T) {
	g := &Generator{}
	a := g.PublicKey([32]byte{1})
	b := g.PublicKey([32]byte{2})
	if bytes.Equal(a, b) {
		t.Error("different seeds gave identical responses")
	}
	// Only the first 16 seed bytes key the cipher.
	c1 := [32]byte{1}
	c2 := [32]byte{1}
	c2[20] = 99
	if !bytes.Equal(g.PublicKey(c1), g.PublicKey(c2)) {
		t.Error("bytes beyond the key length changed the response")
	}
}

func BenchmarkKeyGen(b *testing.B) {
	g := &Generator{}
	var seed [32]byte
	for i := 0; i < b.N; i++ {
		seed[0] = byte(i)
		sink = g.PublicKey(seed)
	}
}

var sink []byte
