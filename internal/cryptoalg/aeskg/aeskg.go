// Package aeskg implements the AES-128 response engine used by prior RBC
// work (Wright et al. [39]): the "public key" for a seed is the AES-128
// encryption of a fixed plaintext under a key derived from the seed. The
// symmetric construction is why the paper notes RBC-SALTED "supplies more
// security" - SHA-3 is one-way, AES with a known plaintext is not - while
// AES remains the fastest baseline in Table 7.
package aeskg

import (
	"crypto/aes"
)

// Generator derives AES-128 response blocks from seeds.
type Generator struct {
	// Plaintext is the fixed block encrypted under each candidate key.
	// The zero value is a valid choice.
	Plaintext [16]byte
}

// Name implements cryptoalg.KeyGenerator.
func (*Generator) Name() string { return "AES-128" }

// PublicKey implements cryptoalg.KeyGenerator: the first 16 bytes of the
// seed key AES-128, and the response is E_k(Plaintext) followed by
// E_k(Plaintext xor 1) to widen the response to 32 bytes, as the RBC
// engines compare 256-bit responses.
func (g *Generator) PublicKey(seed [32]byte) []byte {
	block, err := aes.NewCipher(seed[:16])
	if err != nil {
		// aes.NewCipher only fails on invalid key sizes; 16 is valid.
		panic(err)
	}
	out := make([]byte, 32)
	block.Encrypt(out[:16], g.Plaintext[:])
	second := g.Plaintext
	second[15] ^= 1
	block.Encrypt(out[16:], second[:])
	return out
}
