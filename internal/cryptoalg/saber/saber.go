package saber

import "rbcsalted/internal/keccak"

// Generator derives LightSaber public keys from seeds. It implements
// cryptoalg.KeyGenerator. The zero value is ready to use.
type Generator struct{}

// Name implements cryptoalg.KeyGenerator.
func (Generator) Name() string { return "LightSaber" }

// PublicKey implements cryptoalg.KeyGenerator.
//
// KeyGen: the 32-byte input expands (via SHAKE-256 domain separation)
// into seed_A and seed_s; A = gen(seed_A); s = beta_mu(seed_s);
// b = round_p(A^T s); pk = seed_A || pack_10(b).
func (Generator) PublicKey(seed [32]byte) []byte {
	// Domain-separated sub-seeds.
	exp := keccak.NewSHAKE256()
	exp.Write(seed[:])
	exp.Write([]byte("saber-keygen"))
	var seedA, seedS [32]byte
	exp.Read(seedA[:])
	exp.Read(seedS[:])

	a := genMatrix(seedA[:])
	s := sampleSecret(seedS[:])

	// b = ((A^T s + h) mod q) >> (eps_q - eps_p), h = 2^(eps_q-eps_p-1).
	const h = 1 << (EpsQ - EpsP - 1)
	var b [L]Poly
	for j := 0; j < L; j++ {
		var acc Poly
		for i := 0; i < L; i++ {
			prod := mulNegacyclic(&a[i][j], &s[i])
			acc = acc.add(&prod)
		}
		for k := 0; k < N; k++ {
			b[j][k] = (acc[k] + h) >> (EpsQ - EpsP) & (P - 1)
		}
	}

	out := make([]byte, 0, PublicKeySize)
	out = append(out, seedA[:]...)
	for j := 0; j < L; j++ {
		out = appendPacked10(out, &b[j])
	}
	return out
}

// appendPacked10 packs 256 10-bit coefficients little-endian into 320
// bytes.
func appendPacked10(dst []byte, p *Poly) []byte {
	var acc uint32
	var bits uint
	for _, c := range p {
		acc |= uint32(c) << bits
		bits += EpsP
		for bits >= 8 {
			dst = append(dst, byte(acc))
			acc >>= 8
			bits -= 8
		}
	}
	if bits > 0 {
		dst = append(dst, byte(acc))
	}
	return dst
}
