// Package saber implements LightSaber key generation (D'Anvers et al.,
// AFRICACRYPT 2018): the module-LWR scheme whose keygen cost anchors one
// of the paper's Table 7 prior-work baselines (SABER-GPU, Lee et al.).
//
// Only key generation is implemented - it is the operation the
// algorithm-aware RBC search performs per candidate seed. The
// implementation follows the LightSaber parameter set (l=2, n=256,
// q=2^13, p=2^10, mu=10) and is deterministic from a 32-byte seed. It is
// structurally faithful (SHAKE-based expansion, centered-binomial
// secrets, power-of-two rounding, 672-byte public keys) but makes no
// claim of byte compatibility with the NIST reference vectors.
package saber

import "rbcsalted/internal/keccak"

// LightSaber parameters.
const (
	N    = 256  // polynomial degree
	L    = 2    // module rank
	EpsQ = 13   // log2 q
	EpsP = 10   // log2 p
	Q    = 8192 // 2^13
	P    = 1024 // 2^10
	Mu   = 10   // binomial parameter (two halves of 5 bits)

	// PublicKeySize = seed_A (32) + L polys of N 10-bit coefficients.
	PublicKeySize = 32 + L*N*EpsP/8
)

// Poly is a polynomial in R_q = Z_q[x] / (x^256 + 1), coefficients kept
// in [0, Q).
type Poly [N]uint16

// add returns a + b mod q.
func (a *Poly) add(b *Poly) Poly {
	var out Poly
	for i := range a {
		out[i] = (a[i] + b[i]) & (Q - 1)
	}
	return out
}

// mulNegacyclic returns a * b in R_q by schoolbook multiplication with
// the x^256 = -1 wraparound. 65k multiply-accumulates per call: this is
// precisely the work the original RBC protocol pays per candidate seed.
func mulNegacyclic(a, b *Poly) Poly {
	var acc [N]uint32
	for i := 0; i < N; i++ {
		ai := uint32(a[i])
		if ai == 0 {
			continue
		}
		for j := 0; j < N; j++ {
			k := i + j
			prod := ai * uint32(b[j])
			if k < N {
				acc[k] += prod
			} else {
				// x^256 = -1: subtract, keeping the accumulator in range
				// by adding a multiple of Q.
				acc[k-N] += uint32(Q)*uint32(Q) - prod
			}
		}
	}
	var out Poly
	for i := range out {
		out[i] = uint16(acc[i] & (Q - 1))
	}
	return out
}

// genMatrix expands seed_A into the public matrix A in R_q^{l x l} by
// squeezing 13-bit coefficients from SHAKE-128.
func genMatrix(seedA []byte) [L][L]Poly {
	s := keccak.NewSHAKE128()
	s.Write(seedA)
	br := bitReader{src: s}
	var a [L][L]Poly
	for i := 0; i < L; i++ {
		for j := 0; j < L; j++ {
			for k := 0; k < N; k++ {
				a[i][j][k] = uint16(br.take(EpsQ))
			}
		}
	}
	return a
}

// sampleSecret draws the secret vector s in R_q^l with centered-binomial
// coefficients beta_mu (popcount difference of two 5-bit halves), reduced
// mod q.
func sampleSecret(seedS []byte) [L]Poly {
	s := keccak.NewSHAKE256()
	s.Write(seedS)
	br := bitReader{src: s}
	var out [L]Poly
	for i := 0; i < L; i++ {
		for k := 0; k < N; k++ {
			x := popcount5(br.take(Mu / 2))
			y := popcount5(br.take(Mu / 2))
			out[i][k] = uint16((x - y) & (Q - 1))
		}
	}
	return out
}

func popcount5(v uint32) int {
	c := 0
	for ; v != 0; v >>= 1 {
		c += int(v & 1)
	}
	return c
}

// bitReader pulls fixed-width little-endian bit fields from a SHAKE
// stream.
type bitReader struct {
	src interface{ Read([]byte) (int, error) }
	acc uint64
	n   uint
}

func (r *bitReader) take(bits int) uint32 {
	for r.n < uint(bits) {
		var b [1]byte
		r.src.Read(b[:])
		r.acc |= uint64(b[0]) << r.n
		r.n += 8
	}
	v := uint32(r.acc & ((1 << bits) - 1))
	r.acc >>= uint(bits)
	r.n -= uint(bits)
	return v
}
