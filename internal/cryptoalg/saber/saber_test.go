package saber

import (
	"bytes"
	"crypto/sha256"
	"encoding/hex"
	"testing"
	"testing/quick"

	"rbcsalted/internal/cryptoalg"
)

var _ cryptoalg.KeyGenerator = Generator{}

func TestPublicKeySizeAndDeterminism(t *testing.T) {
	var g Generator
	seed := [32]byte{1, 2, 3}
	pk1 := g.PublicKey(seed)
	pk2 := g.PublicKey(seed)
	if len(pk1) != PublicKeySize || PublicKeySize != 672 {
		t.Fatalf("public key size %d, want 672", len(pk1))
	}
	if !bytes.Equal(pk1, pk2) {
		t.Error("keygen not deterministic")
	}
}

func TestDistinctSeedsDistinctKeys(t *testing.T) {
	var g Generator
	f := func(a, b [32]byte) bool {
		if a == b {
			return true
		}
		return !bytes.Equal(g.PublicKey(a), g.PublicKey(b))
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 25}); err != nil {
		t.Error(err)
	}
}

func TestSeedAvalanche(t *testing.T) {
	// Flipping one seed bit must change the key body, not just a prefix.
	var g Generator
	seed := [32]byte{7}
	pk1 := g.PublicKey(seed)
	seed[31] ^= 0x80
	pk2 := g.PublicKey(seed)
	diff := 0
	for i := range pk1 {
		if pk1[i] != pk2[i] {
			diff++
		}
	}
	if diff < len(pk1)/2 {
		t.Errorf("only %d/%d bytes changed after a 1-bit seed flip", diff, len(pk1))
	}
}

func TestMulNegacyclicProperties(t *testing.T) {
	// x * 1 == x.
	var one Poly
	one[0] = 1
	var x Poly
	for i := range x {
		x[i] = uint16((i * 31) & (Q - 1))
	}
	if got := mulNegacyclic(&x, &one); got != x {
		t.Error("multiplying by 1 changed the polynomial")
	}
	// x * X (shift by one with negacyclic wrap): coefficient i of x*X is
	// x[i-1], and coefficient 0 is -x[255].
	var shiftOne Poly
	shiftOne[1] = 1
	got := mulNegacyclic(&x, &shiftOne)
	if got[0] != (Q-x[N-1])&(Q-1) {
		t.Errorf("negacyclic wrap wrong: got[0]=%d want %d", got[0], (Q-x[N-1])&(Q-1))
	}
	for i := 1; i < N; i++ {
		if got[i] != x[i-1] {
			t.Fatalf("shift wrong at %d", i)
		}
	}
	// Commutativity.
	var y Poly
	for i := range y {
		y[i] = uint16((i*i + 5) & (Q - 1))
	}
	if mulNegacyclic(&x, &y) != mulNegacyclic(&y, &x) {
		t.Error("multiplication not commutative")
	}
}

func TestSampleSecretRange(t *testing.T) {
	s := sampleSecret([]byte("secret seed"))
	for i := range s {
		for k, c := range s[i] {
			// Centered binomial with mu=10: values in [-5, 5] mod q.
			v := int(c)
			if v > Q/2 {
				v -= Q
			}
			if v < -5 || v > 5 {
				t.Fatalf("s[%d][%d] = %d outside [-5,5]", i, k, v)
			}
		}
	}
}

func TestGenMatrixRange(t *testing.T) {
	a := genMatrix([]byte("matrix seed"))
	for i := range a {
		for j := range a[i] {
			for k, c := range a[i][j] {
				if c >= Q {
					t.Fatalf("A[%d][%d][%d] = %d >= q", i, j, k, c)
				}
			}
		}
	}
	// Different seeds, different matrices.
	b := genMatrix([]byte("other seed"))
	if a == b {
		t.Error("distinct seeds produced identical matrices")
	}
}

func TestPack10RoundTrip(t *testing.T) {
	var p Poly
	for i := range p {
		p[i] = uint16((i * 7) & (P - 1))
	}
	packed := appendPacked10(nil, &p)
	if len(packed) != N*EpsP/8 {
		t.Fatalf("packed length %d", len(packed))
	}
	// Unpack and compare.
	var acc uint32
	var bits uint
	idx := 0
	for _, b := range packed {
		acc |= uint32(b) << bits
		bits += 8
		for bits >= EpsP && idx < N {
			if uint16(acc&(P-1)) != p[idx] {
				t.Fatalf("coefficient %d corrupted", idx)
			}
			acc >>= EpsP
			bits -= EpsP
			idx++
		}
	}
	if idx != N {
		t.Fatalf("only %d coefficients unpacked", idx)
	}
}

func BenchmarkKeyGen(b *testing.B) {
	var g Generator
	var seed [32]byte
	for i := 0; i < b.N; i++ {
		seed[0] = byte(i)
		sink = g.PublicKey(seed)
	}
}

var sink []byte

// TestGoldenDigest pins the exact keygen output: any refactor that
// changes the derivation (expansion order, packing, rounding) must fail
// here rather than silently producing different keys.
func TestGoldenDigest(t *testing.T) {
	var g Generator
	pk := g.PublicKey([32]byte{1, 2, 3, 4})
	got := sha256.Sum256(pk)
	const want = "4b1dc16495f0a321a5453e8ee33ed63a6039d2aa0656f45ea2b348c84748d49a"
	if hex.EncodeToString(got[:]) != want {
		t.Errorf("keygen output changed: sha256 = %x, want %s", got, want)
	}
}
