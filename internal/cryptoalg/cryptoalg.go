// Package cryptoalg defines the public-key-generation interface that
// RBC-SALTED applies once to the recovered, salted seed - the step that
// makes the protocol algorithm-agnostic - and that the original,
// algorithm-aware RBC baseline applies to every candidate seed.
//
// Implementations live in subpackages: aeskg (the AES-128 engine of prior
// RBC work), saber (LightSaber key generation) and dilithium (Dilithium3
// key generation), all deterministic functions of the 32-byte seed.
package cryptoalg

// KeyGenerator deterministically derives a public key from a 32-byte seed.
// The private half is never materialized outside the call, matching the
// RBC property that client private keys are never stored.
type KeyGenerator interface {
	// Name identifies the algorithm for reports.
	Name() string
	// PublicKey derives the public key bytes for the seed. The same seed
	// always yields the same key.
	PublicKey(seed [32]byte) []byte
}
