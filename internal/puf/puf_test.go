package puf

import (
	"math/rand/v2"
	"testing"

	"rbcsalted/internal/u256"
)

func mustDevice(t *testing.T, seed uint64, cells int, p Profile) *Device {
	t.Helper()
	d, err := NewDevice(seed, cells, p)
	if err != nil {
		t.Fatal(err)
	}
	return d
}

func TestNewDeviceValidation(t *testing.T) {
	if _, err := NewDevice(1, 100, DefaultProfile); err == nil {
		t.Error("expected error for too few cells")
	}
	bad := []Profile{
		{BaseError: -0.1},
		{BaseError: 0.6},
		{FlakyError: 0.7},
		{FlakyFraction: 1.5},
	}
	for _, p := range bad {
		if _, err := NewDevice(1, 512, p); err == nil {
			t.Errorf("expected error for profile %+v", p)
		}
	}
}

func TestDeviceDeterministic(t *testing.T) {
	a := mustDevice(t, 42, 512, DefaultProfile)
	b := mustDevice(t, 42, 512, DefaultProfile)
	for i := 0; i < a.NumCells(); i++ {
		for r := 0; r < 3; r++ {
			if a.ReadCell(i) != b.ReadCell(i) {
				t.Fatalf("same-seed devices diverge at cell %d read %d", i, r)
			}
		}
	}
}

func TestDevicesAreUnique(t *testing.T) {
	// Different manufacturing seeds must give different fingerprints.
	a := mustDevice(t, 1, 512, Profile{})
	b := mustDevice(t, 2, 512, Profile{})
	same := 0
	for i := 0; i < 512; i++ {
		if a.ReadCell(i) == b.ReadCell(i) {
			same++
		}
	}
	if same > 330 || same < 180 {
		t.Errorf("devices agree on %d/512 noiseless cells; expected ~256", same)
	}
}

func TestEnrollmentMatchesNoiselessDevice(t *testing.T) {
	d := mustDevice(t, 7, 512, Profile{}) // zero error: every read is truth
	im, err := Enroll(d, 9)
	if err != nil {
		t.Fatal(err)
	}
	for i := range im.Values {
		if im.Values[i] != d.ReadCell(i) {
			t.Fatalf("enrolled value differs from device at cell %d", i)
		}
		if im.Instability[i] != 0 {
			t.Fatalf("noiseless cell %d has instability %f", i, im.Instability[i])
		}
	}
	if _, err := Enroll(d, 0); err == nil {
		t.Error("expected error for zero reads")
	}
}

func TestTernaryMaskDropsFlakyCells(t *testing.T) {
	p := Profile{BaseError: 0.01, FlakyFraction: 0.2, FlakyError: 0.4}
	d := mustDevice(t, 11, 1024, p)
	im, err := Enroll(d, 101)
	if err != nil {
		t.Fatal(err)
	}
	stable := im.TernaryMask(0.15)
	if len(stable) < 256 {
		t.Fatalf("only %d stable cells", len(stable))
	}
	// The mask must have dropped roughly the flaky fraction.
	dropped := 1024 - len(stable)
	if dropped < 100 || dropped > 320 {
		t.Errorf("dropped %d cells; expected roughly 20%% of 1024", dropped)
	}
	// Reads over masked cells should be far more reliable than over all.
	for _, idx := range stable {
		if im.Instability[idx] >= 0.15 {
			t.Fatalf("stable cell %d has instability %f", idx, im.Instability[idx])
		}
	}
}

func TestSelectAddressMapAndSeeds(t *testing.T) {
	d := mustDevice(t, 13, 1024, DefaultProfile)
	im, err := Enroll(d, 51)
	if err != nil {
		t.Fatal(err)
	}
	addr, err := im.SelectAddressMap(0.2, 99)
	if err != nil {
		t.Fatal(err)
	}
	if len(addr) != SeedBits {
		t.Fatalf("address map has %d cells", len(addr))
	}
	// Distinct nonces must give distinct maps (one-time addresses).
	addr2, err := im.SelectAddressMap(0.2, 100)
	if err != nil {
		t.Fatal(err)
	}
	diff := 0
	for i := range addr {
		if addr[i] != addr2[i] {
			diff++
		}
	}
	if diff == 0 {
		t.Error("different nonces produced identical address maps")
	}

	serverSeed, err := im.Seed(addr)
	if err != nil {
		t.Fatal(err)
	}
	clientSeed, err := d.ReadSeed(addr)
	if err != nil {
		t.Fatal(err)
	}
	dist := serverSeed.HammingDistance(clientSeed)
	// With masked stable cells at ~2% error the distance should be small.
	if dist > 20 {
		t.Errorf("client/server Hamming distance %d unexpectedly large", dist)
	}
}

func TestSeedErrors(t *testing.T) {
	d := mustDevice(t, 17, 512, DefaultProfile)
	im, _ := Enroll(d, 11)
	if _, err := im.Seed(make([]int, 100)); err == nil {
		t.Error("expected length error")
	}
	bad := make([]int, SeedBits)
	bad[0] = 99999
	if _, err := im.Seed(bad); err == nil {
		t.Error("expected range error")
	}
	if _, err := d.ReadSeed(make([]int, 5)); err == nil {
		t.Error("expected length error")
	}
	if _, err := d.ReadSeed(bad); err == nil {
		t.Error("expected range error")
	}
}

func TestSelectAddressMapInsufficientCells(t *testing.T) {
	p := Profile{BaseError: 0.4, FlakyFraction: 0, FlakyError: 0}
	d := mustDevice(t, 19, 300, p)
	im, _ := Enroll(d, 101)
	if _, err := im.SelectAddressMap(0.05, 1); err == nil {
		t.Error("expected error: nearly every cell is unstable")
	}
}

func TestInjectNoise(t *testing.T) {
	rng := rand.New(rand.NewPCG(5, 6))
	server := u256.FromUint64(0xDEADBEEF)
	client := server // distance 0
	for _, target := range []int{1, 3, 5} {
		got := InjectNoise(client, server, target, rng)
		if d := got.HammingDistance(server); d != target {
			t.Errorf("target %d: distance %d", target, d)
		}
	}
	// Already beyond target: unchanged.
	far := server.Xor(u256.New(0xFF, 0xFF, 0, 0))
	if got := InjectNoise(far, server, 3, rng); !got.Equal(far) {
		t.Error("InjectNoise modified a seed already beyond target")
	}
}

func TestAverageReadDistanceMatchesProfile(t *testing.T) {
	// Statistical check: with BaseError = 5/256 over 256 stable-ish cells,
	// the mean read distance should be near 5.
	d := mustDevice(t, 23, 512, Profile{BaseError: 5.0 / 256.0})
	im, _ := Enroll(d, 101)
	addr, err := im.SelectAddressMap(0.5, 7)
	if err != nil {
		t.Fatal(err)
	}
	server, _ := im.Seed(addr)
	sum := 0
	const trials = 200
	for i := 0; i < trials; i++ {
		client, _ := d.ReadSeed(addr)
		sum += server.HammingDistance(client)
	}
	mean := float64(sum) / trials
	if mean < 3.0 || mean > 7.5 {
		t.Errorf("mean read distance %.2f, expected near 5", mean)
	}
}
