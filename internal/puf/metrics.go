package puf

import (
	"errors"
	"fmt"
)

// Standard PUF quality metrics from the hardware-security literature.
// They quantify exactly the properties the RBC protocol depends on:
// uniqueness makes impostor searches intractable (Equation 2), and
// reliability bounds the Hamming distance the server must cover
// (Equation 1). TAPKI's job is to raise effective reliability by masking
// the worst cells.

// Uniformity returns the fraction of one-bits in an enrollment image;
// ideal is 0.5.
func Uniformity(im *Image) float64 {
	if len(im.Values) == 0 {
		return 0
	}
	ones := 0
	for _, v := range im.Values {
		if v {
			ones++
		}
	}
	return float64(ones) / float64(len(im.Values))
}

// Reliability measures intra-device stability: the mean fraction of bits
// that match the enrollment image over `reads` fresh reads of the cells
// in addressMap. Ideal is 1.0; (1 - reliability) x 256 estimates the
// Hamming distance an RBC search must absorb.
func Reliability(d *Device, im *Image, addressMap []int, reads int) (float64, error) {
	if reads < 1 {
		return 0, errors.New("puf: reliability needs at least one read")
	}
	enrolled, err := im.Seed(addressMap)
	if err != nil {
		return 0, err
	}
	totalMatch := 0
	for r := 0; r < reads; r++ {
		readSeed, err := d.ReadSeed(addressMap)
		if err != nil {
			return 0, err
		}
		totalMatch += SeedBits - enrolled.HammingDistance(readSeed)
	}
	return float64(totalMatch) / float64(reads*SeedBits), nil
}

// Uniqueness measures inter-device distinguishability: the mean pairwise
// fractional Hamming distance between the devices' enrollment values over
// the same cells. Ideal is 0.5 - each pair of PUFs disagrees on half
// their bits, which is what makes Equation 2's opponent search a full
// 2^256 space.
func Uniqueness(images []*Image) (float64, error) {
	if len(images) < 2 {
		return 0, errors.New("puf: uniqueness needs at least two devices")
	}
	cells := len(images[0].Values)
	for i, im := range images {
		if len(im.Values) != cells {
			return 0, fmt.Errorf("puf: image %d has %d cells, want %d", i, len(im.Values), cells)
		}
	}
	sum := 0.0
	pairs := 0
	for i := 0; i < len(images); i++ {
		for j := i + 1; j < len(images); j++ {
			diff := 0
			for k := 0; k < cells; k++ {
				if images[i].Values[k] != images[j].Values[k] {
					diff++
				}
			}
			sum += float64(diff) / float64(cells)
			pairs++
		}
	}
	return sum / float64(pairs), nil
}
