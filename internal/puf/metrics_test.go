package puf

import "testing"

func TestUniformityNearHalf(t *testing.T) {
	d := mustDevice(t, 101, 2048, Profile{})
	im, err := Enroll(d, 3)
	if err != nil {
		t.Fatal(err)
	}
	u := Uniformity(im)
	if u < 0.45 || u > 0.55 {
		t.Errorf("uniformity %.3f, expected near 0.5", u)
	}
	if Uniformity(&Image{}) != 0 {
		t.Error("empty image uniformity should be 0")
	}
}

func TestReliabilityTracksErrorRate(t *testing.T) {
	for _, tc := range []struct {
		rate   float64
		minRel float64
		maxRel float64
	}{
		{0.0, 0.9999, 1.0},
		{5.0 / 256.0, 0.96, 0.995},
		{0.2, 0.75, 0.85},
	} {
		d := mustDevice(t, 103, 512, Profile{BaseError: tc.rate})
		im, err := Enroll(d, 101)
		if err != nil {
			t.Fatal(err)
		}
		addr, err := im.SelectAddressMap(0.6, 1)
		if err != nil {
			t.Fatal(err)
		}
		rel, err := Reliability(d, im, addr, 50)
		if err != nil {
			t.Fatal(err)
		}
		if rel < tc.minRel || rel > tc.maxRel {
			t.Errorf("rate %.3f: reliability %.4f outside [%.3f, %.3f]",
				tc.rate, rel, tc.minRel, tc.maxRel)
		}
	}
}

func TestReliabilityErrors(t *testing.T) {
	d := mustDevice(t, 105, 512, Profile{})
	im, _ := Enroll(d, 3)
	addr, _ := im.SelectAddressMap(0.5, 1)
	if _, err := Reliability(d, im, addr, 0); err == nil {
		t.Error("zero reads accepted")
	}
	if _, err := Reliability(d, im, addr[:10], 1); err == nil {
		t.Error("short address map accepted")
	}
}

func TestTAPKIImprovesReliability(t *testing.T) {
	// The protocol-level point of TAPKI: masking unstable cells raises
	// effective reliability.
	p := Profile{BaseError: 0.01, FlakyFraction: 0.25, FlakyError: 0.4}
	d := mustDevice(t, 107, 2048, p)
	im, err := Enroll(d, 101)
	if err != nil {
		t.Fatal(err)
	}
	masked, err := im.SelectAddressMap(0.1, 3) // TAPKI on
	if err != nil {
		t.Fatal(err)
	}
	unmasked, err := im.SelectAddressMap(0.999, 3) // effectively no mask
	if err != nil {
		t.Fatal(err)
	}
	relMasked, err := Reliability(d, im, masked, 30)
	if err != nil {
		t.Fatal(err)
	}
	relUnmasked, err := Reliability(d, im, unmasked, 30)
	if err != nil {
		t.Fatal(err)
	}
	if relMasked <= relUnmasked {
		t.Errorf("TAPKI did not help: masked %.4f <= unmasked %.4f", relMasked, relUnmasked)
	}
}

func TestUniquenessNearHalf(t *testing.T) {
	images := make([]*Image, 6)
	for i := range images {
		d := mustDevice(t, uint64(200+i), 512, Profile{})
		im, err := Enroll(d, 3)
		if err != nil {
			t.Fatal(err)
		}
		images[i] = im
	}
	u, err := Uniqueness(images)
	if err != nil {
		t.Fatal(err)
	}
	if u < 0.45 || u > 0.55 {
		t.Errorf("uniqueness %.3f, expected near 0.5", u)
	}
}

func TestUniquenessErrors(t *testing.T) {
	if _, err := Uniqueness(nil); err == nil {
		t.Error("no devices accepted")
	}
	d1 := mustDevice(t, 301, 512, Profile{})
	d2 := mustDevice(t, 302, 300, Profile{})
	im1, _ := Enroll(d1, 3)
	im2, _ := Enroll(d2, 3)
	if _, err := Uniqueness([]*Image{im1, im2}); err == nil {
		t.Error("mismatched cell counts accepted")
	}
}
