// Package puf models Physical Unclonable Functions as the RBC protocol
// consumes them: a client-side device whose cells produce slightly erratic
// bits, a server-side enrollment image captured in a secure facility, and
// the TAPKI ternary masking that hides high-error cells so the RBC search
// stays tractable.
//
// The protocol is agnostic to the underlying PUF hardware (paper §2.1);
// what matters is the statistical behaviour - which bits flip and how
// often - so the model is parameterized by a per-cell error-rate profile.
// All randomness is drawn from an explicit seeded generator, making every
// experiment reproducible.
package puf

import (
	"errors"
	"fmt"
	"math/rand/v2"

	"rbcsalted/internal/u256"
)

// SeedBits is the width of the bit stream the protocol hashes.
const SeedBits = 256

// Cell is one PUF cell: a stable underlying value plus the probability
// that a read returns the flipped value.
type Cell struct {
	Value   bool
	ErrRate float64
}

// Profile describes the statistical quality of a PUF's cells.
type Profile struct {
	// BaseError is the per-read flip probability of a typical cell.
	BaseError float64
	// FlakyFraction is the fraction of cells that are unstable.
	FlakyFraction float64
	// FlakyError is the per-read flip probability of an unstable cell.
	FlakyError float64
}

// DefaultProfile mirrors the paper's working assumption: a typical read
// differs from the enrollment image by about 5 bits out of 256
// (BaseError ~ 5/256), with a minority of clearly bad cells that TAPKI
// must mask out.
var DefaultProfile = Profile{
	BaseError:     5.0 / 256.0,
	FlakyFraction: 0.05,
	FlakyError:    0.35,
}

// Device is a client-side PUF: an array of cells read with noise.
type Device struct {
	cells []Cell
	rng   *rand.Rand
}

// NewDevice manufactures a PUF with numCells cells under the given
// profile. The seed determines both the cell values and all subsequent
// read noise, so a device is fully reproducible.
func NewDevice(seed uint64, numCells int, p Profile) (*Device, error) {
	if numCells < SeedBits {
		return nil, fmt.Errorf("puf: device needs at least %d cells, got %d", SeedBits, numCells)
	}
	if p.BaseError < 0 || p.BaseError >= 0.5 || p.FlakyError < 0 || p.FlakyError >= 0.5 ||
		p.FlakyFraction < 0 || p.FlakyFraction > 1 {
		return nil, errors.New("puf: profile rates must be in [0, 0.5) and fraction in [0, 1]")
	}
	rng := rand.New(rand.NewPCG(seed, 0x9E3779B97F4A7C15))
	cells := make([]Cell, numCells)
	for i := range cells {
		cells[i].Value = rng.Uint64()&1 == 1
		if rng.Float64() < p.FlakyFraction {
			cells[i].ErrRate = p.FlakyError
		} else {
			cells[i].ErrRate = p.BaseError
		}
	}
	return &Device{cells: cells, rng: rng}, nil
}

// NumCells returns the number of cells in the device.
func (d *Device) NumCells() int { return len(d.cells) }

// ReadCell returns one noisy read of cell i.
func (d *Device) ReadCell(i int) bool {
	c := d.cells[i]
	if d.rng.Float64() < c.ErrRate {
		return !c.Value
	}
	return c.Value
}

// ReadSeed reads the 256 cells named by addressMap (in order) and packs
// them into a candidate seed, bit j holding cell addressMap[j]. This is
// the client-side operation of Figure 1: read the PUF at the address
// specified by the CA.
func (d *Device) ReadSeed(addressMap []int) (u256.Uint256, error) {
	if len(addressMap) != SeedBits {
		return u256.Zero, fmt.Errorf("puf: address map has %d cells, want %d", len(addressMap), SeedBits)
	}
	seed := u256.Zero
	for j, cell := range addressMap {
		if cell < 0 || cell >= len(d.cells) {
			return u256.Zero, fmt.Errorf("puf: cell index %d out of range", cell)
		}
		if d.ReadCell(cell) {
			seed = seed.SetBit(j, 1)
		}
	}
	return seed, nil
}

// Image is the server-side enrollment record of one device: the majority
// value of each cell and its observed instability, captured over repeated
// reads in the secure enrollment facility.
type Image struct {
	Values      []bool
	Instability []float64 // observed flip fraction per cell
}

// Enroll reads every cell of the device `reads` times and records the
// majority value and flip fraction. RBC enrollment happens once, in a
// secure facility, before the device is deployed.
func Enroll(d *Device, reads int) (*Image, error) {
	if reads < 1 {
		return nil, errors.New("puf: enrollment needs at least one read")
	}
	im := &Image{
		Values:      make([]bool, d.NumCells()),
		Instability: make([]float64, d.NumCells()),
	}
	for i := range d.cells {
		ones := 0
		for r := 0; r < reads; r++ {
			if d.ReadCell(i) {
				ones++
			}
		}
		im.Values[i] = ones*2 >= reads
		minority := ones
		if im.Values[i] {
			minority = reads - ones
		}
		im.Instability[i] = float64(minority) / float64(reads)
	}
	return im, nil
}

// TernaryMask returns the TAPKI address map: the indices of cells whose
// observed instability is below threshold, in ascending order. Cells above
// the threshold are the "ternary" cells masked out of key material.
func (im *Image) TernaryMask(threshold float64) []int {
	var stable []int
	for i, inst := range im.Instability {
		if inst < threshold {
			stable = append(stable, i)
		}
	}
	return stable
}

// SelectAddressMap picks 256 stable cells for a session, pseudo-randomly
// from the TAPKI-stable set using the session nonce, so each handshake can
// use a fresh PUF address (the one-time-key property of §2.1). It fails if
// fewer than 256 stable cells exist.
func (im *Image) SelectAddressMap(threshold float64, nonce uint64) ([]int, error) {
	stable := im.TernaryMask(threshold)
	if len(stable) < SeedBits {
		return nil, fmt.Errorf("puf: only %d stable cells, need %d", len(stable), SeedBits)
	}
	rng := rand.New(rand.NewPCG(nonce, 0xD1B54A32D192ED03))
	rng.Shuffle(len(stable), func(i, j int) { stable[i], stable[j] = stable[j], stable[i] })
	out := stable[:SeedBits]
	return out, nil
}

// Seed packs the enrolled values of the cells in addressMap into the
// server-side S_init used to anchor the RBC search.
func (im *Image) Seed(addressMap []int) (u256.Uint256, error) {
	if len(addressMap) != SeedBits {
		return u256.Zero, fmt.Errorf("puf: address map has %d cells, want %d", len(addressMap), SeedBits)
	}
	seed := u256.Zero
	for j, cell := range addressMap {
		if cell < 0 || cell >= len(im.Values) {
			return u256.Zero, fmt.Errorf("puf: cell index %d out of range", cell)
		}
		if im.Values[cell] {
			seed = seed.SetBit(j, 1)
		}
	}
	return seed, nil
}

// InjectNoise flips additional uniformly chosen bits of clientSeed until
// it sits at exactly target Hamming distance from serverSeed, reproducing
// the paper's §4.1 procedure ("if the error rate is lower, we perform
// noise injection on the client to ensure that we have flipped 5 bits").
// If the distance already exceeds target, the seed is returned unchanged.
func InjectNoise(clientSeed, serverSeed u256.Uint256, target int, rng *rand.Rand) u256.Uint256 {
	for clientSeed.HammingDistance(serverSeed) < target {
		bit := rng.IntN(SeedBits)
		if clientSeed.Bit(bit) == serverSeed.Bit(bit) {
			clientSeed = clientSeed.FlipBit(bit)
		}
	}
	return clientSeed
}
