// Package sched is the multi-tenant authentication scheduler: a bounded
// worker pool over a core.Backend with a FIFO admission queue, per-search
// deadline enforcement and cooperative cancellation.
//
// The paper's engines maximise the throughput of ONE Hamming-ball search;
// a serving CA needs many independent searches in flight without letting
// an unbounded goroutine pile-up destroy the latency of all of them. The
// Scheduler provides the admission control layer: at most Workers
// searches run concurrently, at most QueueDepth wait in FIFO order, and
// anything beyond that is rejected immediately with ErrOverloaded so the
// caller can shed load instead of queueing without bound.
//
// Scheduler itself implements core.Backend, so it composes with
// everything that takes one: a CA can authenticate through a scheduled
// CPU engine, a scheduled cluster coordinator, or even a scheduler over
// another scheduler (e.g. a small high-priority pool in front of a large
// shared one).
package sched

import (
	"context"
	"errors"
	"fmt"
	"sync"
	"sync/atomic"
	"time"

	"rbcsalted/internal/core"
	"rbcsalted/internal/obs"
)

// Sentinel errors. Both are returned unwrapped from Search's admission
// path, so errors.Is works without unwrapping.
var (
	// ErrOverloaded reports that the admission queue was full: the search
	// was rejected without queueing. Callers should shed load or retry
	// with backoff; netproto maps it to StatusOverloaded on the wire.
	ErrOverloaded = errors.New("sched: admission queue full")
	// ErrClosed reports a Search submitted after Close.
	ErrClosed = errors.New("sched: scheduler closed")
)

// Defaults applied by New for zero Config fields.
const (
	// DefaultWorkers is the default concurrent-search limit. Each search
	// fans out internally over the backend's own worker goroutines, so
	// the pool is deliberately small.
	DefaultWorkers = 4
	// DefaultQueueDepth is the default admission-queue capacity.
	DefaultQueueDepth = 64
)

// Config sizes a Scheduler.
type Config struct {
	// Workers is the number of searches run concurrently; 0 means
	// DefaultWorkers.
	Workers int
	// QueueDepth is the admission-queue capacity; 0 means
	// DefaultQueueDepth. Searches arriving with Workers busy and
	// QueueDepth waiting are rejected with ErrOverloaded.
	QueueDepth int
	// DeadlineGrace pads the wall-clock deadline derived from a task's
	// TimeLimit, leaving backends room to report a modelled timeout as a
	// TimedOut Result before the hard context deadline cuts the search
	// off. 0 means DefaultDeadlineGrace; negative disables the derived
	// deadline entirely (the caller's ctx still applies).
	DeadlineGrace time.Duration
	// Trace, when non-nil, receives queue-lifecycle trace events
	// (enqueue, dequeue, reject, discard, done) for every scheduled
	// search, and is stamped onto tasks that arrive without their own
	// sink so backend events share it.
	Trace obs.TraceSink
	// Metrics, when non-nil, publishes queue-wait and service-time
	// latency histograms ("sched.queue_wait_seconds" and
	// "sched.service_seconds") into the registry. The counter snapshot
	// remains available through Stats.
	Metrics *obs.Registry
}

// DefaultDeadlineGrace is the default slack between a task's TimeLimit
// and the enforced wall-clock deadline.
const DefaultDeadlineGrace = 500 * time.Millisecond

// Outcome classifies how a scheduled search ended.
type Outcome int

// String names the outcome for trace events and logs.
func (o Outcome) String() string {
	switch o {
	case OutcomeCompleted:
		return "completed"
	case OutcomeTimedOut:
		return "timed-out"
	case OutcomeCancelled:
		return "cancelled"
	case OutcomeFailed:
		return "failed"
	default:
		return fmt.Sprintf("outcome-%d", int(o))
	}
}

// Outcomes, in Stats order.
const (
	// OutcomeCompleted: the backend returned a Result (found or not).
	OutcomeCompleted Outcome = iota
	// OutcomeTimedOut: the backend returned a Result with TimedOut set.
	OutcomeTimedOut
	// OutcomeCancelled: the search's context was cancelled or its
	// deadline passed, before or during the search.
	OutcomeCancelled
	// OutcomeFailed: the backend returned a non-context error.
	OutcomeFailed
)

// Stats is a point-in-time snapshot of a Scheduler's counters.
type Stats struct {
	// Submitted counts searches admitted to the queue. Rejected counts
	// searches refused with ErrOverloaded (not included in Submitted).
	Submitted uint64
	Rejected  uint64
	// Completed / TimedOut / Cancelled / Failed partition the searches
	// that left the queue, by outcome.
	Completed uint64
	TimedOut  uint64
	Cancelled uint64
	Failed    uint64
	// QueueWaitTotal / QueueWaitMax aggregate the time searches spent
	// queued before a worker picked them up for service. Searches that
	// never reached the backend — cancelled while queued, or failed with
	// ErrClosed at shutdown — count toward Cancelled/Failed but
	// contribute nothing here.
	QueueWaitTotal time.Duration
	QueueWaitMax   time.Duration
	// ServiceTotal / ServiceMax aggregate backend search time.
	ServiceTotal time.Duration
	ServiceMax   time.Duration
	// InFlight and Queued are current gauges.
	InFlight int
	Queued   int
	// Degraded mirrors the backend's core.HealthReporter state (false
	// for backends that don't report health): true while the backend is
	// serving in reduced-capacity mode, e.g. a cluster coordinator with
	// an empty fleet running on its local fallback.
	Degraded bool
}

// Served returns the number of searches that left the queue.
func (s Stats) Served() uint64 {
	return s.Completed + s.TimedOut + s.Cancelled + s.Failed
}

// AvgQueueWait returns the mean queue wait over served searches.
func (s Stats) AvgQueueWait() time.Duration {
	if n := s.Served(); n > 0 {
		return s.QueueWaitTotal / time.Duration(n)
	}
	return 0
}

// AvgService returns the mean backend service time over served searches.
func (s Stats) AvgService() time.Duration {
	if n := s.Served(); n > 0 {
		return s.ServiceTotal / time.Duration(n)
	}
	return 0
}

// job is one queued search and its reply slot.
type job struct {
	ctx      context.Context
	task     core.Task
	enqueued time.Time
	started  atomic.Bool
	res      core.Result
	err      error
	done     chan struct{}
}

// Scheduler is a bounded worker pool over a backend. It implements
// core.Backend. The zero value is not usable; construct with New.
type Scheduler struct {
	backend core.Backend
	cfg     Config
	queue   chan *job
	wg      sync.WaitGroup

	mu     sync.RWMutex // guards closed and the enqueue-vs-Close race
	closed bool

	statsMu  sync.Mutex
	stats    Stats
	inFlight int

	// traceIDs hands out per-search trace correlation IDs.
	traceIDs atomic.Uint64
	// hQueueWait / hService are the optional latency histograms
	// published into cfg.Metrics; nil without a registry.
	hQueueWait *obs.Histogram
	hService   *obs.Histogram
}

// New starts a scheduler over backend with cfg's pool geometry (zero
// fields take the documented defaults). The returned Scheduler is
// serving immediately; call Close to stop it.
func New(backend core.Backend, cfg Config) *Scheduler {
	if backend == nil {
		panic("sched: nil backend")
	}
	if cfg.Workers <= 0 {
		cfg.Workers = DefaultWorkers
	}
	if cfg.QueueDepth <= 0 {
		cfg.QueueDepth = DefaultQueueDepth
	}
	if cfg.DeadlineGrace == 0 {
		cfg.DeadlineGrace = DefaultDeadlineGrace
	}
	s := &Scheduler{
		backend: backend,
		cfg:     cfg,
		queue:   make(chan *job, cfg.QueueDepth),
	}
	if cfg.Metrics != nil {
		s.hQueueWait = cfg.Metrics.Histogram("sched.queue_wait_seconds", obs.DefLatencyBuckets)
		s.hService = cfg.Metrics.Histogram("sched.service_seconds", obs.DefLatencyBuckets)
	}
	s.wg.Add(cfg.Workers)
	for i := 0; i < cfg.Workers; i++ {
		go s.worker()
	}
	return s
}

// Name implements core.Backend.
func (s *Scheduler) Name() string {
	return fmt.Sprintf("sched(%s, workers=%d, depth=%d)",
		s.backend.Name(), s.cfg.Workers, s.cfg.QueueDepth)
}

// Search implements core.Backend: admit the task, wait for a worker to
// serve it, and return the backend's Result.
//
// Admission is non-blocking: with Workers searches running and
// QueueDepth queued, Search returns ErrOverloaded immediately. If ctx is
// cancelled while the task is still queued, Search returns ctx.Err()
// without waiting for a worker (the worker discards the stale job when
// it reaches it).
func (s *Scheduler) Search(ctx context.Context, task core.Task) (core.Result, error) {
	if ctx == nil {
		ctx = context.Background()
	}
	if task.Trace == nil {
		task.Trace = s.cfg.Trace
	}
	if task.TraceID == 0 {
		task.TraceID = s.traceIDs.Add(1)
	}
	j := &job{ctx: ctx, task: task, enqueued: time.Now(), done: make(chan struct{})}

	s.mu.RLock()
	if s.closed {
		s.mu.RUnlock()
		return core.Result{}, ErrClosed
	}
	select {
	case s.queue <- j:
		s.mu.RUnlock()
	default:
		s.mu.RUnlock()
		s.statsMu.Lock()
		s.stats.Rejected++
		s.statsMu.Unlock()
		obs.Emit(task.Trace, obs.TraceEvent{Kind: obs.KindReject, Search: task.TraceID})
		return core.Result{}, ErrOverloaded
	}
	s.statsMu.Lock()
	s.stats.Submitted++
	s.statsMu.Unlock()
	obs.Emit(task.Trace, obs.TraceEvent{Kind: obs.KindEnqueue, Search: task.TraceID})

	select {
	case <-j.done:
		return j.res, j.err
	case <-ctx.Done():
		if j.started.Load() {
			// In flight: cancellation propagates into the backend's shell
			// loops, which stop within one CheckInterval; wait for the
			// partial Result so its telemetry reaches the caller.
			<-j.done
			return j.res, j.err
		}
		// Still queued: the worker discards the stale job when it
		// reaches it; the caller gets out immediately.
		return core.Result{}, ctx.Err()
	}
}

// Stats returns a snapshot of the scheduler's counters.
func (s *Scheduler) Stats() Stats {
	s.statsMu.Lock()
	snap := s.stats
	snap.InFlight = s.inFlight
	s.statsMu.Unlock()
	snap.Queued = len(s.queue)
	if hr, ok := s.backend.(core.HealthReporter); ok {
		snap.Degraded = hr.Degraded()
	}
	return snap
}

// Degraded implements core.HealthReporter by delegating to the wrapped
// backend, so health propagates through stacked schedulers.
func (s *Scheduler) Degraded() bool {
	if hr, ok := s.backend.(core.HealthReporter); ok {
		return hr.Degraded()
	}
	return false
}

// Close stops admission, resolves every still-queued search, and waits
// for in-flight searches to finish. Safe to call more than once.
//
// Every queued job's done channel is guaranteed to be resolved: Close
// itself drains the queue concurrently with the workers, failing each
// job it receives with ErrClosed, while a worker that gets to a job
// first serves it normally. Either way no Search caller can block
// forever behind a shutdown — previously a caller queued behind a
// long-running search waited for it to finish even after Close.
func (s *Scheduler) Close() {
	s.mu.Lock()
	if !s.closed {
		s.closed = true
		close(s.queue)
	}
	s.mu.Unlock()
	// Drain: the closed channel still yields queued jobs; each is
	// received exactly once, by us or by a worker.
	for j := range s.queue {
		s.discard(j, ErrClosed, "closed")
	}
	s.wg.Wait()
}

// discard resolves a job that will never reach the backend. It counts
// once toward the outcome counters — Cancelled for a context cancelled
// in the queue, Failed for an ErrClosed shutdown — and deliberately
// contributes nothing to QueueWaitTotal/Max: the job was never picked
// up for service, and its "wait" includes time after the caller already
// abandoned it, which would skew the served-search latency accounting.
func (s *Scheduler) discard(j *job, err error, reason string) {
	j.err = err
	outcome := OutcomeFailed
	if errors.Is(err, context.Canceled) || errors.Is(err, context.DeadlineExceeded) {
		outcome = OutcomeCancelled
	}
	s.record(outcome, 0, 0)
	obs.Emit(j.task.Trace, obs.TraceEvent{
		Kind:   obs.KindDiscard,
		Search: j.task.TraceID,
		Detail: reason,
		Dur:    time.Since(j.enqueued),
		Err:    err.Error(),
	})
	close(j.done)
}

// worker serves queued jobs until the queue closes.
func (s *Scheduler) worker() {
	defer s.wg.Done()
	for j := range s.queue {
		s.serve(j)
	}
}

// serve runs one job against the backend and records its accounting.
func (s *Scheduler) serve(j *job) {
	wait := time.Since(j.enqueued)

	if j.ctx.Err() != nil {
		// Cancelled while queued: don't touch the backend. started stays
		// false so the submitter returns without waiting on done. The
		// discard counts once as Cancelled and is kept out of the
		// queue-wait aggregates (the stale job's wait measures caller
		// abandonment, not admission latency).
		s.discard(j, j.ctx.Err(), "cancelled-queued")
		return
	}
	j.started.Store(true)
	obs.Emit(j.task.Trace, obs.TraceEvent{
		Kind:   obs.KindDequeue,
		Search: j.task.TraceID,
		Dur:    wait,
	})

	ctx := j.ctx
	if j.task.TimeLimit > 0 && s.cfg.DeadlineGrace >= 0 {
		// Wall-clock backstop for the task's authentication threshold:
		// backends normally report a modelled timeout themselves as a
		// TimedOut Result; the padded context deadline guarantees the
		// worker slot is reclaimed even from a backend that does not.
		var cancel context.CancelFunc
		ctx, cancel = context.WithTimeout(ctx, j.task.TimeLimit+s.cfg.DeadlineGrace)
		defer cancel()
	}

	s.statsMu.Lock()
	s.inFlight++
	s.statsMu.Unlock()
	started := time.Now()
	res, err := s.backend.Search(ctx, j.task)
	service := time.Since(started)
	s.statsMu.Lock()
	s.inFlight--
	s.statsMu.Unlock()

	outcome := OutcomeCompleted
	switch {
	case errors.Is(err, context.Canceled) || errors.Is(err, context.DeadlineExceeded):
		outcome = OutcomeCancelled
	case err != nil:
		outcome = OutcomeFailed
	case res.TimedOut:
		outcome = OutcomeTimedOut
	}
	s.record(outcome, wait, service)
	if s.hQueueWait != nil {
		s.hQueueWait.Observe(wait.Seconds())
		s.hService.Observe(service.Seconds())
	}
	ev := obs.TraceEvent{
		Kind:   obs.KindDone,
		Search: j.task.TraceID,
		Detail: outcome.String(),
		Dur:    service,
	}
	if err != nil {
		ev.Err = err.Error()
	}
	obs.Emit(j.task.Trace, ev)

	j.res, j.err = res, err
	close(j.done)
}

// record folds one served search into the counters.
func (s *Scheduler) record(o Outcome, wait, service time.Duration) {
	s.statsMu.Lock()
	defer s.statsMu.Unlock()
	switch o {
	case OutcomeCompleted:
		s.stats.Completed++
	case OutcomeTimedOut:
		s.stats.TimedOut++
	case OutcomeCancelled:
		s.stats.Cancelled++
	case OutcomeFailed:
		s.stats.Failed++
	}
	s.stats.QueueWaitTotal += wait
	if wait > s.stats.QueueWaitMax {
		s.stats.QueueWaitMax = wait
	}
	s.stats.ServiceTotal += service
	if service > s.stats.ServiceMax {
		s.stats.ServiceMax = service
	}
}
