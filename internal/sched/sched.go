// Package sched is the multi-tenant authentication scheduler: a bounded
// worker pool over a core.Backend with class-aware admission queues,
// per-search deadline enforcement, cooperative cancellation and hedged
// dispatch for stragglers.
//
// The paper's engines maximise the throughput of ONE Hamming-ball search;
// a serving CA needs many independent searches in flight without letting
// an unbounded goroutine pile-up destroy the latency of all of them. The
// Scheduler provides the admission-control layer: at most Workers
// searches run concurrently; waiting searches sit in one FIFO queue per
// QoS class (interactive first, background last), with priority aging
// promoting long-waiting work one level per AgingStep so nothing
// starves. Admission is deadline-aware — a search whose deadline cannot
// be met is refused with ErrDeadlineInfeasible instead of wasting a
// queue slot — and when the queues are full an arriving search may evict
// the worst queued one (lowest class, largest distance bound, loosest
// deadline) so overload sheds the d-large tail first.
//
// Scheduler itself implements core.Backend, so it composes with
// everything that takes one: a CA can authenticate through a scheduled
// CPU engine, a scheduled cluster coordinator, or even a scheduler over
// another scheduler (e.g. a small high-priority pool in front of a large
// shared one).
package sched

import (
	"context"
	"errors"
	"fmt"
	"sort"
	"sync"
	"sync/atomic"
	"time"

	"rbcsalted/internal/core"
	"rbcsalted/internal/obs"
)

// Sentinel errors. All are returned unwrapped from Submit's admission
// path, so errors.Is works without unwrapping.
var (
	// ErrOverloaded reports that the admission queues were full and the
	// search was not strictly better than anything queued: it was
	// rejected (or, for a queued search, evicted) without service.
	// Callers should shed load or retry with backoff; netproto maps it
	// to StatusOverloaded on the wire.
	ErrOverloaded = errors.New("sched: admission queue full")
	// ErrClosed reports a Search submitted after Close.
	ErrClosed = errors.New("sched: scheduler closed")
	// ErrDeadlineInfeasible reports that the search's absolute deadline
	// was already unreachable at admission (past, or closer than the
	// scheduler's service estimate), or passed while the search waited
	// in the queue. The work was refused before burning backend time;
	// netproto maps it to StatusDeadlineInfeasible.
	ErrDeadlineInfeasible = errors.New("sched: deadline infeasible")
)

// Defaults applied by New for zero Config fields.
const (
	// DefaultWorkers is the default concurrent-search limit. Each search
	// fans out internally over the backend's own worker goroutines, so
	// the pool is deliberately small.
	DefaultWorkers = 4
	// DefaultQueueDepth is the default admission-queue capacity (summed
	// across all classes).
	DefaultQueueDepth = 64
	// DefaultAgingStep is the queue wait that promotes a waiting search
	// one QoS level: a background search that has waited two steps
	// competes as interactive, so sustained high-priority load cannot
	// starve it forever.
	DefaultAgingStep = 2 * time.Second
	// DefaultDeadlineGrace is the default slack between a task's
	// TimeLimit and the enforced wall-clock deadline.
	DefaultDeadlineGrace = 500 * time.Millisecond

	// admitWarmup is the number of served searches before the admission
	// controller trusts its service-time estimate enough to refuse
	// not-yet-expired deadlines; until then only already-past deadlines
	// are refused.
	admitWarmup = 8
	// hedgeRingSize is the service-time sample window behind the
	// percentile-derived hedge delay.
	hedgeRingSize = 256
)

// HedgeConfig tunes hedged dispatch: when a search's backend flight
// straggles past a latency-percentile-derived delay, the scheduler
// re-issues it as a second flight and the first completion wins (the
// loser's context is cancelled).
type HedgeConfig struct {
	// Enabled turns hedging on for every submission (individual
	// submissions can opt out with WithHedging(false), and direct
	// Submit callers can opt in per search with WithHedging(true)).
	Enabled bool
	// Delay is a fixed hedge trigger. Zero derives the trigger from the
	// observed service-time distribution (Quantile), which is the
	// production behaviour; a fixed delay makes tests deterministic.
	Delay time.Duration
	// Quantile is the service-time percentile used to derive the
	// trigger when Delay is zero; 0 means 0.95. A search still running
	// past that percentile is a straggler worth hedging.
	Quantile float64
	// MinDelay floors the derived trigger so microsecond-fast backends
	// don't hedge everything; 0 means 10ms.
	MinDelay time.Duration
	// MinSamples is how many served searches must be observed before a
	// derived trigger fires at all; 0 means 16.
	MinSamples int
}

func (h HedgeConfig) quantile() float64 {
	if h.Quantile <= 0 || h.Quantile >= 1 {
		return 0.95
	}
	return h.Quantile
}

func (h HedgeConfig) minDelay() time.Duration {
	if h.MinDelay <= 0 {
		return 10 * time.Millisecond
	}
	return h.MinDelay
}

func (h HedgeConfig) minSamples() int {
	if h.MinSamples <= 0 {
		return 16
	}
	return h.MinSamples
}

// Config sizes a Scheduler.
type Config struct {
	// Workers is the number of searches run concurrently; 0 means
	// DefaultWorkers.
	Workers int
	// QueueDepth is the admission capacity summed over all class queues;
	// 0 means DefaultQueueDepth. A search arriving with Workers busy and
	// QueueDepth waiting is admitted only by evicting a strictly worse
	// queued search; otherwise it is rejected with ErrOverloaded.
	QueueDepth int
	// DeadlineGrace pads the wall-clock deadline derived from a task's
	// TimeLimit, leaving backends room to report a modelled timeout as a
	// TimedOut Result before the hard context deadline cuts the search
	// off. The derived deadline never extends an earlier caller deadline
	// (the task's absolute Deadline or the submission context's): the
	// effective deadline is the minimum. 0 means DefaultDeadlineGrace;
	// negative disables the derived deadline entirely (caller deadlines
	// still apply).
	DeadlineGrace time.Duration
	// AgingStep is the queue wait that promotes a waiting search one QoS
	// level (see DefaultAgingStep); 0 means the default, negative
	// disables aging (strict priority, background may starve).
	AgingStep time.Duration
	// Hedge configures hedged dispatch for straggling searches.
	Hedge HedgeConfig
	// Trace, when non-nil, receives queue-lifecycle trace events
	// (enqueue, dequeue, reject, shed, hedge, discard, done) for every
	// scheduled search, and is stamped onto tasks that arrive without
	// their own sink so backend events share it.
	Trace obs.TraceSink
	// Metrics, when non-nil, publishes the latency histograms — overall
	// ("sched.queue_wait_seconds", "sched.service_seconds"), per class
	// ("sched.queue_wait_seconds.interactive", ...) and per distance
	// bound ("sched.service_seconds.maxd3", ...) — plus the shed, hedge
	// and deadline-infeasible counters into the registry. The counter
	// snapshot remains available through Stats.
	Metrics *obs.Registry
}

// Outcome classifies how a scheduled search ended.
type Outcome int

// String names the outcome for trace events and logs.
func (o Outcome) String() string {
	switch o {
	case OutcomeCompleted:
		return "completed"
	case OutcomeTimedOut:
		return "timed-out"
	case OutcomeCancelled:
		return "cancelled"
	case OutcomeFailed:
		return "failed"
	default:
		return fmt.Sprintf("outcome-%d", int(o))
	}
}

// Outcomes, in Stats order.
const (
	// OutcomeCompleted: the backend returned a Result (found or not).
	OutcomeCompleted Outcome = iota
	// OutcomeTimedOut: the backend returned a Result with TimedOut set.
	OutcomeTimedOut
	// OutcomeCancelled: the search's context was cancelled or its
	// deadline passed, before or during the search.
	OutcomeCancelled
	// OutcomeFailed: the backend returned a non-context error.
	OutcomeFailed
)

// ClassStats is one QoS class's slice of the scheduler counters.
type ClassStats struct {
	// Submitted counts searches of this class admitted to the queue;
	// Rejected counts refusals (overload or infeasible deadline).
	Submitted uint64
	Rejected  uint64
	// Served counts searches of this class that reached the backend.
	Served uint64
	// Shed counts searches of this class evicted from the queue by
	// admission control to make room for strictly better work.
	Shed uint64
}

// Stats is a point-in-time snapshot of a Scheduler's counters.
type Stats struct {
	// Submitted counts searches admitted to the queue. Rejected counts
	// searches refused with ErrOverloaded (not included in Submitted).
	Submitted uint64
	Rejected  uint64
	// Completed / TimedOut / Cancelled / Failed partition the searches
	// that left the queue, by outcome.
	Completed uint64
	TimedOut  uint64
	Cancelled uint64
	Failed    uint64
	// Shed counts admitted searches later evicted from the queue to
	// admit strictly better work (they resolve with ErrOverloaded and
	// are also counted under Failed).
	Shed uint64
	// DeadlineInfeasible counts searches refused — at admission or at
	// dequeue — because their absolute deadline could not be met.
	// Admission refusals are also counted under Rejected; queued
	// expiries also under Cancelled.
	DeadlineInfeasible uint64
	// Hedged counts searches that straggled past the hedge trigger and
	// were re-issued as a second backend flight; HedgeWins counts the
	// hedged searches whose second flight finished first. Each search
	// still resolves to exactly one Result and one outcome.
	Hedged    uint64
	HedgeWins uint64
	// QueueWaitTotal / QueueWaitMax aggregate the time searches spent
	// queued before a worker picked them up for service. Searches that
	// never reached the backend — cancelled while queued, shed, or
	// failed with ErrClosed at shutdown — count toward their outcome but
	// contribute nothing here.
	QueueWaitTotal time.Duration
	QueueWaitMax   time.Duration
	// ServiceTotal / ServiceMax aggregate backend search time.
	ServiceTotal time.Duration
	ServiceMax   time.Duration
	// InFlight and Queued are current gauges.
	InFlight int
	Queued   int
	// ByClass breaks the admission counters down per QoS class, indexed
	// by core.QoSClass.
	ByClass [core.NumClasses]ClassStats
	// Degraded mirrors the backend's core.HealthReporter state (false
	// for backends that don't report health): true while the backend is
	// serving in reduced-capacity mode, e.g. a cluster coordinator with
	// an empty fleet running on its local fallback.
	Degraded bool
}

// Served returns the number of searches that left the queue.
func (s Stats) Served() uint64 {
	return s.Completed + s.TimedOut + s.Cancelled + s.Failed
}

// AvgQueueWait returns the mean queue wait over served searches.
func (s Stats) AvgQueueWait() time.Duration {
	if n := s.Served(); n > 0 {
		return s.QueueWaitTotal / time.Duration(n)
	}
	return 0
}

// AvgService returns the mean backend service time over served searches.
func (s Stats) AvgService() time.Duration {
	if n := s.Served(); n > 0 {
		return s.ServiceTotal / time.Duration(n)
	}
	return 0
}

// job is one queued search and its reply slot.
type job struct {
	ctx      context.Context
	task     core.Task
	class    core.QoSClass
	deadline time.Time // absolute caller deadline; zero = none
	hedge    bool      // hedged dispatch allowed for this search
	enqueued time.Time
	started  atomic.Bool
	res      core.Result
	err      error
	done     chan struct{}
}

// Scheduler is a bounded worker pool over a backend with class-aware
// admission. It implements core.Backend. The zero value is not usable;
// construct with New.
type Scheduler struct {
	backend core.Backend
	cfg     Config
	wg      sync.WaitGroup

	// qmu guards the class queues, the queued count and closed; cond
	// wakes idle workers on enqueue and on Close.
	qmu    sync.Mutex
	cond   *sync.Cond
	queues [core.NumClasses][]*job
	queued int
	closed bool

	statsMu  sync.Mutex
	stats    Stats
	inFlight int

	// estMu guards the service-time estimators feeding deadline
	// admission (EWMA) and the hedge trigger (sample ring).
	estMu      sync.Mutex
	ewmaSvc    float64 // seconds
	servedEst  uint64
	svcSamples [hedgeRingSize]float64
	svcCount   int
	svcNext    int

	// traceIDs hands out per-search trace correlation IDs.
	traceIDs atomic.Uint64
	// Latency histograms published into cfg.Metrics; nil without a
	// registry.
	hQueueWait      *obs.Histogram
	hService        *obs.Histogram
	hQueueWaitClass [core.NumClasses]*obs.Histogram
	hServiceClass   [core.NumClasses]*obs.Histogram
	// Counters published into cfg.Metrics; nil without a registry.
	cShed       *obs.Counter
	cHedge      *obs.Counter
	cHedgeWins  *obs.Counter
	cInfeasible *obs.Counter
}

// New starts a scheduler over backend with cfg's pool geometry (zero
// fields take the documented defaults). The returned Scheduler is
// serving immediately; call Close to stop it.
func New(backend core.Backend, cfg Config) *Scheduler {
	if backend == nil {
		panic("sched: nil backend")
	}
	if cfg.Workers <= 0 {
		cfg.Workers = DefaultWorkers
	}
	if cfg.QueueDepth <= 0 {
		cfg.QueueDepth = DefaultQueueDepth
	}
	if cfg.DeadlineGrace == 0 {
		cfg.DeadlineGrace = DefaultDeadlineGrace
	}
	if cfg.AgingStep == 0 {
		cfg.AgingStep = DefaultAgingStep
	}
	s := &Scheduler{backend: backend, cfg: cfg}
	s.cond = sync.NewCond(&s.qmu)
	if cfg.Metrics != nil {
		s.hQueueWait = cfg.Metrics.Histogram("sched.queue_wait_seconds", obs.DefLatencyBuckets)
		s.hService = cfg.Metrics.Histogram("sched.service_seconds", obs.DefLatencyBuckets)
		for c := 0; c < core.NumClasses; c++ {
			name := core.QoSClass(c).String()
			s.hQueueWaitClass[c] = cfg.Metrics.Histogram("sched.queue_wait_seconds."+name, obs.DefLatencyBuckets)
			s.hServiceClass[c] = cfg.Metrics.Histogram("sched.service_seconds."+name, obs.DefLatencyBuckets)
		}
		s.cShed = cfg.Metrics.Counter("sched.shed_total")
		s.cHedge = cfg.Metrics.Counter("sched.hedge_total")
		s.cHedgeWins = cfg.Metrics.Counter("sched.hedge_wins_total")
		s.cInfeasible = cfg.Metrics.Counter("sched.deadline_infeasible_total")
	}
	s.wg.Add(cfg.Workers)
	for i := 0; i < cfg.Workers; i++ {
		go s.worker()
	}
	return s
}

// Name implements core.Backend.
func (s *Scheduler) Name() string {
	return fmt.Sprintf("sched(%s, workers=%d, depth=%d)",
		s.backend.Name(), s.cfg.Workers, s.cfg.QueueDepth)
}

// Search implements core.Backend: admit the task, wait for a worker to
// serve it, and return the backend's Result. The task's own Class and
// Deadline fields drive admission; Submit's functional options are the
// way to set them without constructing a Task by hand.
//
// Admission is non-blocking: with Workers searches running and
// QueueDepth queued, Search returns ErrOverloaded immediately (unless
// the task is strictly better than the worst queued search, which is
// then shed in its favour). A task whose Deadline is unreachable is
// refused with ErrDeadlineInfeasible. If ctx is cancelled while the task
// is still queued, Search returns ctx.Err() without waiting for a worker
// (the worker discards the stale job when it reaches it).
func (s *Scheduler) Search(ctx context.Context, task core.Task) (core.Result, error) {
	return s.Submit(ctx, task)
}

// Submit admits one search with per-submission QoS options and waits for
// its Result. Without options the task's own Class/Deadline fields and
// the configured hedging policy apply; WithClass, WithDeadline and
// WithHedging override them for this submission only.
func (s *Scheduler) Submit(ctx context.Context, task core.Task, opts ...SubmitOption) (core.Result, error) {
	if ctx == nil {
		ctx = context.Background()
	}
	o := submitOpts{class: task.Class, deadline: task.Deadline, hedge: s.cfg.Hedge.Enabled}
	for _, opt := range opts {
		opt(&o)
	}
	if !o.class.Valid() {
		return core.Result{}, fmt.Errorf("sched: invalid QoS class %d", uint8(o.class))
	}
	task.Class = o.class
	task.Deadline = o.deadline
	if task.Trace == nil {
		task.Trace = s.cfg.Trace
	}
	if task.TraceID == 0 {
		task.TraceID = s.traceIDs.Add(1)
	}
	j := &job{
		ctx:      ctx,
		task:     task,
		class:    o.class,
		deadline: o.deadline,
		hedge:    o.hedge,
		enqueued: time.Now(),
		done:     make(chan struct{}),
	}
	if err := s.admit(j); err != nil {
		return core.Result{}, err
	}

	select {
	case <-j.done:
		return j.res, j.err
	case <-ctx.Done():
		if j.started.Load() {
			// In flight: cancellation propagates into the backend's shell
			// loops, which stop within one CheckInterval; wait for the
			// partial Result so its telemetry reaches the caller.
			<-j.done
			return j.res, j.err
		}
		// Still queued: the worker discards the stale job when it
		// reaches it; the caller gets out immediately.
		return core.Result{}, ctx.Err()
	}
}

// admit runs deadline-based admission control and the class-aware
// enqueue (with shed-the-worst eviction under overload).
func (s *Scheduler) admit(j *job) error {
	now := time.Now()
	if !j.deadline.IsZero() {
		infeasible := !now.Before(j.deadline)
		if !infeasible {
			if eta := s.estimateETA(j.task); eta > 0 && now.Add(eta).After(j.deadline) {
				infeasible = true
			}
		}
		if infeasible {
			s.countRefusal(j, true)
			obs.Emit(j.task.Trace, obs.TraceEvent{
				Kind: obs.KindReject, Search: j.task.TraceID,
				Detail: "deadline-infeasible", Err: ErrDeadlineInfeasible.Error(),
			})
			return ErrDeadlineInfeasible
		}
	}

	s.qmu.Lock()
	if s.closed {
		s.qmu.Unlock()
		return ErrClosed
	}
	if s.queued >= s.cfg.QueueDepth {
		victim := s.worstQueuedLocked()
		if victim == nil || !strictlyWorse(victim, j) {
			s.qmu.Unlock()
			s.countRefusal(j, false)
			obs.Emit(j.task.Trace, obs.TraceEvent{Kind: obs.KindReject, Search: j.task.TraceID})
			return ErrOverloaded
		}
		s.removeLocked(victim)
		s.resolveShed(victim)
	}
	s.queues[j.class] = append(s.queues[j.class], j)
	s.queued++
	s.cond.Signal()
	s.qmu.Unlock()

	s.statsMu.Lock()
	s.stats.Submitted++
	s.stats.ByClass[j.class].Submitted++
	s.statsMu.Unlock()
	obs.Emit(j.task.Trace, obs.TraceEvent{Kind: obs.KindEnqueue, Search: j.task.TraceID})
	return nil
}

// countRefusal folds one admission refusal into the counters.
func (s *Scheduler) countRefusal(j *job, infeasible bool) {
	s.statsMu.Lock()
	s.stats.Rejected++
	s.stats.ByClass[j.class].Rejected++
	if infeasible {
		s.stats.DeadlineInfeasible++
	}
	s.statsMu.Unlock()
	if infeasible && s.cInfeasible != nil {
		s.cInfeasible.Inc()
	}
}

// worstQueuedLocked returns the most sheddable queued job: lowest QoS
// class first, then largest MaxDistance (the d-large tail costs the
// most), then loosest deadline (none counts as loosest), then youngest.
// Called with qmu held.
func (s *Scheduler) worstQueuedLocked() *job {
	var worst *job
	for c := 0; c < core.NumClasses; c++ {
		for _, j := range s.queues[c] {
			if worst == nil || moreSheddable(j, worst) {
				worst = j
			}
		}
	}
	return worst
}

// moreSheddable reports whether a should be shed before b.
func moreSheddable(a, b *job) bool {
	if a.class != b.class {
		return a.class > b.class
	}
	if a.task.MaxDistance != b.task.MaxDistance {
		return a.task.MaxDistance > b.task.MaxDistance
	}
	aLoose, bLoose := a.deadline.IsZero(), b.deadline.IsZero()
	if aLoose != bLoose {
		return aLoose
	}
	if !aLoose && !a.deadline.Equal(b.deadline) {
		return a.deadline.After(b.deadline)
	}
	return a.enqueued.After(b.enqueued)
}

// strictlyWorse reports whether victim is strictly worse than j on the
// shed lattice (class, then distance bound, then deadline looseness).
// Ties are NOT strictly worse: an arrival equal to everything queued is
// rejected rather than displacing queued work, so identical load keeps
// plain FIFO-with-rejection semantics.
func strictlyWorse(victim, j *job) bool {
	if victim.class != j.class {
		return victim.class > j.class
	}
	if victim.task.MaxDistance != j.task.MaxDistance {
		return victim.task.MaxDistance > j.task.MaxDistance
	}
	vLoose, jLoose := victim.deadline.IsZero(), j.deadline.IsZero()
	if vLoose != jLoose {
		return vLoose
	}
	if !vLoose && !victim.deadline.Equal(j.deadline) {
		return victim.deadline.After(j.deadline)
	}
	return false
}

// removeLocked deletes j from its class queue. Called with qmu held.
func (s *Scheduler) removeLocked(victim *job) {
	q := s.queues[victim.class]
	for i, j := range q {
		if j == victim {
			copy(q[i:], q[i+1:])
			q[len(q)-1] = nil
			s.queues[victim.class] = q[:len(q)-1]
			s.queued--
			return
		}
	}
}

// resolveShed fails an evicted job with ErrOverloaded. Counts once as
// Shed + Failed; contributes nothing to the wait aggregates (it never
// reached service).
func (s *Scheduler) resolveShed(victim *job) {
	victim.err = ErrOverloaded
	s.statsMu.Lock()
	s.stats.Failed++
	s.stats.Shed++
	s.stats.ByClass[victim.class].Shed++
	s.statsMu.Unlock()
	if s.cShed != nil {
		s.cShed.Inc()
	}
	obs.Emit(victim.task.Trace, obs.TraceEvent{
		Kind:   obs.KindShed,
		Search: victim.task.TraceID,
		Detail: "shed-for-better",
		Dur:    time.Since(victim.enqueued),
		Err:    ErrOverloaded.Error(),
	})
	close(victim.done)
}

// estimateETA returns the admission controller's estimate of how long a
// newly admitted search will take to finish (queue wait plus service),
// or 0 while no estimate is available.
//
// A backend that knows the task — a core.ETAEstimator, such as the
// planner, which prices the task's actual shell sizes on the engine it
// would choose — supersedes the task-blind global service-time EWMA:
// the EWMA wrongly refuses small searches and wrongly admits deep ones
// whenever the mix is heterogeneous.
func (s *Scheduler) estimateETA(task core.Task) time.Duration {
	s.qmu.Lock()
	queued := s.queued
	s.qmu.Unlock()
	// Everything queued ahead must be served first, Workers at a time.
	slots := 1 + queued/s.cfg.Workers

	if est, ok := s.backend.(core.ETAEstimator); ok {
		if eta, ok := est.EstimateETA(task); ok && eta > 0 {
			// The estimator already accounts for its own in-flight load;
			// add the wait imposed by this scheduler's queue.
			s.estMu.Lock()
			svc := s.ewmaSvc
			s.estMu.Unlock()
			queueWait := time.Duration(svc * float64(slots-1) * float64(time.Second))
			return eta + queueWait
		}
	}

	s.estMu.Lock()
	served := s.servedEst
	svc := s.ewmaSvc
	s.estMu.Unlock()
	if served < admitWarmup || svc <= 0 {
		return 0
	}
	return time.Duration(svc * float64(slots) * float64(time.Second))
}

// Stats returns a snapshot of the scheduler's counters.
func (s *Scheduler) Stats() Stats {
	s.statsMu.Lock()
	snap := s.stats
	snap.InFlight = s.inFlight
	s.statsMu.Unlock()
	s.qmu.Lock()
	snap.Queued = s.queued
	s.qmu.Unlock()
	if hr, ok := s.backend.(core.HealthReporter); ok {
		snap.Degraded = hr.Degraded()
	}
	return snap
}

// Degraded implements core.HealthReporter by delegating to the wrapped
// backend, so health propagates through stacked schedulers.
func (s *Scheduler) Degraded() bool {
	if hr, ok := s.backend.(core.HealthReporter); ok {
		return hr.Degraded()
	}
	return false
}

// Close stops admission, resolves every still-queued search with
// ErrClosed, and waits for in-flight searches (hedge flights included)
// to finish. Safe to call more than once. No Search caller can block
// forever behind a shutdown: queued jobs are failed immediately instead
// of waiting for the busy workers.
func (s *Scheduler) Close() {
	s.qmu.Lock()
	s.closed = true
	var orphans []*job
	for c := range s.queues {
		orphans = append(orphans, s.queues[c]...)
		s.queues[c] = nil
	}
	s.queued = 0
	s.cond.Broadcast()
	s.qmu.Unlock()
	for _, j := range orphans {
		s.discard(j, ErrClosed, "closed")
	}
	s.wg.Wait()
}

// discard resolves a job that will never reach the backend. It counts
// once toward the outcome counters — Cancelled for a context cancelled
// or a deadline expired in the queue, Failed for an ErrClosed shutdown —
// and deliberately contributes nothing to QueueWaitTotal/Max: the job
// was never picked up for service, and its "wait" includes time after
// the caller already abandoned it, which would skew the served-search
// latency accounting.
func (s *Scheduler) discard(j *job, err error, reason string) {
	j.err = err
	outcome := OutcomeFailed
	if errors.Is(err, context.Canceled) || errors.Is(err, context.DeadlineExceeded) ||
		errors.Is(err, ErrDeadlineInfeasible) {
		outcome = OutcomeCancelled
	}
	s.record(j.class, outcome, 0, 0)
	if errors.Is(err, ErrDeadlineInfeasible) {
		s.statsMu.Lock()
		s.stats.DeadlineInfeasible++
		s.statsMu.Unlock()
		if s.cInfeasible != nil {
			s.cInfeasible.Inc()
		}
	}
	obs.Emit(j.task.Trace, obs.TraceEvent{
		Kind:   obs.KindDiscard,
		Search: j.task.TraceID,
		Detail: reason,
		Dur:    time.Since(j.enqueued),
		Err:    err.Error(),
	})
	close(j.done)
}

// worker serves queued jobs until the scheduler closes.
func (s *Scheduler) worker() {
	defer s.wg.Done()
	for {
		j := s.next()
		if j == nil {
			return
		}
		s.serve(j)
	}
}

// next blocks until a job is available (returning the highest-priority
// one under aging) or the scheduler closes (returning nil).
func (s *Scheduler) next() *job {
	s.qmu.Lock()
	defer s.qmu.Unlock()
	for {
		if j := s.popLocked(time.Now()); j != nil {
			return j
		}
		if s.closed {
			return nil
		}
		s.cond.Wait()
	}
}

// popLocked dequeues the job with the best effective priority: each
// class queue's head (its oldest entry) competes at its class level
// minus one level per AgingStep waited, and ties go to the earliest
// enqueue. Called with qmu held.
func (s *Scheduler) popLocked(now time.Time) *job {
	best := -1
	bestEff := int(core.NumClasses)
	var bestAt time.Time
	for c := 0; c < core.NumClasses; c++ {
		q := s.queues[c]
		if len(q) == 0 {
			continue
		}
		head := q[0]
		eff := c
		if s.cfg.AgingStep > 0 {
			eff -= int(now.Sub(head.enqueued) / s.cfg.AgingStep)
			if eff < 0 {
				eff = 0
			}
		}
		if eff < bestEff || (eff == bestEff && head.enqueued.Before(bestAt)) {
			best, bestEff, bestAt = c, eff, head.enqueued
		}
	}
	if best < 0 {
		return nil
	}
	q := s.queues[best]
	j := q[0]
	q[0] = nil
	s.queues[best] = q[1:]
	s.queued--
	return j
}

// serve runs one job against the backend and records its accounting.
func (s *Scheduler) serve(j *job) {
	wait := time.Since(j.enqueued)

	if j.ctx.Err() != nil {
		// Cancelled while queued: don't touch the backend. started stays
		// false so the submitter returns without waiting on done. The
		// discard counts once as Cancelled and is kept out of the
		// queue-wait aggregates (the stale job's wait measures caller
		// abandonment, not admission latency).
		s.discard(j, j.ctx.Err(), "cancelled-queued")
		return
	}
	if !j.deadline.IsZero() && !time.Now().Before(j.deadline) {
		// The deadline passed while the job waited: serving it now would
		// burn backend time on a verdict the caller can no longer use.
		s.discard(j, ErrDeadlineInfeasible, "deadline-queued")
		return
	}
	j.started.Store(true)
	obs.Emit(j.task.Trace, obs.TraceEvent{
		Kind:   obs.KindDequeue,
		Search: j.task.TraceID,
		Dur:    wait,
	})

	ctx := j.ctx
	deadline := time.Time{}
	if j.task.TimeLimit > 0 && s.cfg.DeadlineGrace >= 0 {
		// Wall-clock backstop for the task's authentication threshold:
		// backends normally report a modelled timeout themselves as a
		// TimedOut Result; the padded context deadline guarantees the
		// worker slot is reclaimed even from a backend that does not.
		deadline = time.Now().Add(j.task.TimeLimit + s.cfg.DeadlineGrace)
	}
	// The derived deadline must never extend an earlier caller deadline:
	// take the min with the task's absolute deadline here, and let
	// context.WithDeadline take the min with the submission context's.
	if !j.deadline.IsZero() && (deadline.IsZero() || j.deadline.Before(deadline)) {
		deadline = j.deadline
	}
	if !deadline.IsZero() {
		var cancel context.CancelFunc
		ctx, cancel = context.WithDeadline(ctx, deadline)
		defer cancel()
	}

	s.statsMu.Lock()
	s.inFlight++
	s.statsMu.Unlock()
	started := time.Now()
	res, err, hedgeWon := s.execute(ctx, j)
	service := time.Since(started)
	s.statsMu.Lock()
	s.inFlight--
	s.statsMu.Unlock()

	outcome := OutcomeCompleted
	switch {
	case errors.Is(err, context.Canceled) || errors.Is(err, context.DeadlineExceeded):
		outcome = OutcomeCancelled
	case err != nil:
		outcome = OutcomeFailed
	case res.TimedOut:
		outcome = OutcomeTimedOut
	}
	s.record(j.class, outcome, wait, service)
	if hedgeWon {
		s.statsMu.Lock()
		s.stats.HedgeWins++
		s.statsMu.Unlock()
		if s.cHedgeWins != nil {
			s.cHedgeWins.Inc()
		}
	}
	s.observeService(service, outcome == OutcomeCompleted)
	if s.hQueueWait != nil {
		s.hQueueWait.Observe(wait.Seconds())
		s.hService.Observe(service.Seconds())
		s.hQueueWaitClass[j.class].Observe(wait.Seconds())
		s.hServiceClass[j.class].Observe(service.Seconds())
		if d := j.task.MaxDistance; d >= 0 && d <= 10 {
			s.cfg.Metrics.Histogram(fmt.Sprintf("sched.service_seconds.maxd%d", d),
				obs.DefLatencyBuckets).Observe(service.Seconds())
		}
	}
	ev := obs.TraceEvent{
		Kind:   obs.KindDone,
		Search: j.task.TraceID,
		Detail: outcome.String(),
		Dur:    service,
	}
	if hedgeWon {
		ev.Detail += " (hedge won)"
	}
	if err != nil {
		ev.Err = err.Error()
	}
	obs.Emit(j.task.Trace, ev)

	j.res, j.err = res, err
	close(j.done)
}

// execute runs one search against the backend, hedging it with a second
// flight if it straggles past the hedge trigger. Exactly one flight's
// outcome is returned (first completion wins; the loser's context is
// cancelled and drained before returning, so no flight outlives the
// call). hedgeWon reports that the second flight's result was used.
func (s *Scheduler) execute(ctx context.Context, j *job) (res core.Result, err error, hedgeWon bool) {
	var delay time.Duration
	if j.hedge {
		delay = s.hedgeDelay()
	}
	if delay <= 0 {
		res, err = s.backend.Search(ctx, j.task)
		return res, err, false
	}

	hctx, cancel := context.WithCancel(ctx)
	defer cancel()
	type flight struct {
		res   core.Result
		err   error
		hedge bool
	}
	results := make(chan flight, 2)
	launch := func(hedge bool) {
		go func() {
			search := s.backend.Search
			if hedge {
				// Hedge onto different hardware when the backend can: a
				// straggle caused by the chosen engine itself (not
				// transient load) is only fixed by a different choice.
				if alt, ok := s.backend.(core.AlternateSearcher); ok {
					search = alt.SearchAlternate
				}
			}
			r, e := search(hctx, j.task)
			results <- flight{res: r, err: e, hedge: hedge}
		}()
	}
	launch(false)
	timer := time.NewTimer(delay)
	defer timer.Stop()

	var first flight
	select {
	case first = <-results:
		// The primary beat the hedge trigger: nothing was hedged.
		return first.res, first.err, false
	case <-timer.C:
	}

	// Straggler: issue the second flight and take the first completion.
	s.statsMu.Lock()
	s.stats.Hedged++
	s.statsMu.Unlock()
	if s.cHedge != nil {
		s.cHedge.Inc()
	}
	obs.Emit(j.task.Trace, obs.TraceEvent{
		Kind:   obs.KindHedge,
		Search: j.task.TraceID,
		Dur:    delay,
	})
	launch(true)

	first = <-results
	if first.err != nil && !errors.Is(first.err, context.Canceled) && !errors.Is(first.err, context.DeadlineExceeded) {
		// The first completion is a backend fault, not an answer; give
		// the surviving flight the chance to produce one.
		second := <-results
		if second.err == nil {
			return second.res, nil, second.hedge
		}
		return first.res, first.err, first.hedge
	}
	// First completion wins: cancel and drain the loser so its partial
	// result is never double-counted anywhere.
	cancel()
	<-results
	return first.res, first.err, first.hedge
}

// hedgeDelay returns the current hedge trigger: the configured fixed
// delay, or the configured percentile of the observed service times
// (floored at MinDelay), or 0 — meaning "do not hedge" — while too few
// samples have been observed.
func (s *Scheduler) hedgeDelay() time.Duration {
	if s.cfg.Hedge.Delay > 0 {
		return s.cfg.Hedge.Delay
	}
	s.estMu.Lock()
	n := s.svcCount
	if n < s.cfg.Hedge.minSamples() {
		s.estMu.Unlock()
		return 0
	}
	samples := make([]float64, n)
	copy(samples, s.svcSamples[:n])
	s.estMu.Unlock()

	sort.Float64s(samples)
	idx := int(s.cfg.Hedge.quantile() * float64(n))
	if idx >= n {
		idx = n - 1
	}
	d := time.Duration(samples[idx] * float64(time.Second))
	if min := s.cfg.Hedge.minDelay(); d < min {
		d = min
	}
	return d
}

// observeService feeds one served search into the estimators. Only
// completed searches update the deadline-admission EWMA (a cancelled
// search's duration says nothing about how long service takes), but all
// go into the hedge ring: stragglers are exactly what the hedge
// percentile must see.
func (s *Scheduler) observeService(service time.Duration, completed bool) {
	sec := service.Seconds()
	s.estMu.Lock()
	if completed {
		if s.servedEst == 0 {
			s.ewmaSvc = sec
		} else {
			s.ewmaSvc = 0.8*s.ewmaSvc + 0.2*sec
		}
		s.servedEst++
	}
	if s.svcCount < hedgeRingSize {
		s.svcSamples[s.svcCount] = sec
		s.svcCount++
	} else {
		s.svcSamples[s.svcNext] = sec
		s.svcNext = (s.svcNext + 1) % hedgeRingSize
	}
	s.estMu.Unlock()
}

// record folds one served search into the counters.
func (s *Scheduler) record(class core.QoSClass, o Outcome, wait, service time.Duration) {
	s.statsMu.Lock()
	defer s.statsMu.Unlock()
	switch o {
	case OutcomeCompleted:
		s.stats.Completed++
	case OutcomeTimedOut:
		s.stats.TimedOut++
	case OutcomeCancelled:
		s.stats.Cancelled++
	case OutcomeFailed:
		s.stats.Failed++
	}
	s.stats.ByClass[class].Served++
	s.stats.QueueWaitTotal += wait
	if wait > s.stats.QueueWaitMax {
		s.stats.QueueWaitMax = wait
	}
	s.stats.ServiceTotal += service
	if service > s.stats.ServiceMax {
		s.stats.ServiceMax = service
	}
}
