package sched

import (
	"context"
	"errors"
	"fmt"
	"sync"
	"sync/atomic"
	"testing"
	"time"

	"rbcsalted/internal/core"
	"rbcsalted/internal/cpu"
	"rbcsalted/internal/cryptoalg/aeskg"
	"rbcsalted/internal/obs"
	"rbcsalted/internal/puf"
)

// TestInlineFastPathBypassesScheduler is the acceptance test for the
// distance-progressive serving split: a low-noise device authenticates
// at d <= 1, which the CA must complete inline on the host without the
// search ever entering the scheduler queue.
func TestInlineFastPathBypassesScheduler(t *testing.T) {
	store, err := core.NewImageStore([32]byte{0x5C})
	if err != nil {
		t.Fatal(err)
	}
	s := New(&cpu.Backend{Alg: core.SHA3, Workers: 2}, Config{Workers: 2, QueueDepth: 8})
	defer s.Close()
	// Default CAConfig: InlineDepth 0 means DefaultInlineDepth, so
	// shells d <= 1 run inline and only d >= 2 escalates to the backend.
	ca, err := core.NewCA(store, s, &aeskg.Generator{}, core.NewRA(), core.CAConfig{
		Alg:         core.SHA3,
		MaxDistance: 3,
	})
	if err != nil {
		t.Fatal(err)
	}

	// A noiseless device reads back the enrolled image exactly: the
	// match is at d = 0, inside the inline window.
	dev, err := puf.NewDevice(9001, 1024, puf.Profile{BaseError: 0})
	if err != nil {
		t.Fatal(err)
	}
	im, err := puf.Enroll(dev, 31)
	if err != nil {
		t.Fatal(err)
	}
	if err := ca.Enroll("inline-client", im); err != nil {
		t.Fatal(err)
	}

	client := &core.Client{ID: "inline-client", Device: dev}
	ch, err := ca.BeginHandshake("inline-client")
	if err != nil {
		t.Fatal(err)
	}
	m1, err := client.Respond(ch)
	if err != nil {
		t.Fatal(err)
	}
	res, err := ca.Authenticate(context.Background(),
		core.AuthRequest{Client: "inline-client", Nonce: ch.Nonce, M1: m1})
	if err != nil {
		t.Fatal(err)
	}
	if !res.Authenticated {
		t.Fatal("noiseless device not authenticated")
	}
	if res.Search.Distance > core.DefaultInlineDepth {
		t.Fatalf("match at d=%d, expected inside the inline window (<= %d)",
			res.Search.Distance, core.DefaultInlineDepth)
	}

	st := s.Stats()
	if st.Submitted != 0 || st.Queued != 0 || st.Served() != 0 {
		t.Errorf("inline auth leaked into the scheduler: %+v", st)
	}

	// Same client, one noisy read pushed past the inline window: the
	// CA must escalate to the scheduler.
	ch2, err := ca.BeginHandshake("inline-client")
	if err != nil {
		t.Fatal(err)
	}
	noisy := &core.Client{ID: "inline-client", Device: dev, NoiseBits: core.DefaultInlineDepth + 1}
	m1, err = noisy.Respond(ch2)
	if err != nil {
		t.Fatal(err)
	}
	res, err = ca.Authenticate(context.Background(),
		core.AuthRequest{Client: "inline-client", Nonce: ch2.Nonce, M1: m1})
	if err != nil {
		t.Fatal(err)
	}
	if !res.Authenticated {
		t.Fatal("noisy device not authenticated")
	}
	if got := s.Stats().Submitted; got != 1 {
		t.Errorf("escalated auth: Submitted = %d, want 1", got)
	}
}

// TestDeadlineGraceNeverExtendsCallerDeadline is the regression test
// for the DeadlineGrace fix: the wall-clock deadline derived from
// TimeLimit+grace must never extend an earlier caller deadline — the
// effective deadline is the minimum of the two.
func TestDeadlineGraceNeverExtendsCallerDeadline(t *testing.T) {
	bk := &blockingBackend{release: make(chan struct{})} // blocks until ctx fires
	s := New(bk, Config{Workers: 1, QueueDepth: 1, DeadlineGrace: time.Second})
	defer s.Close()

	// TimeLimit + grace would allow 11s; the task's own deadline is
	// 50ms away and must win.
	start := time.Now()
	_, err := s.Submit(context.Background(),
		core.Task{TimeLimit: 10 * time.Second},
		WithDeadline(time.Now().Add(50*time.Millisecond)))
	elapsed := time.Since(start)
	if !errors.Is(err, context.DeadlineExceeded) {
		t.Fatalf("expected DeadlineExceeded, got %v", err)
	}
	if elapsed > 5*time.Second {
		t.Errorf("caller deadline enforced after %v; the derived TimeLimit deadline extended it", elapsed)
	}

	// Same guarantee for a deadline carried by the submission context.
	ctx, cancel := context.WithTimeout(context.Background(), 50*time.Millisecond)
	defer cancel()
	start = time.Now()
	_, err = s.Submit(ctx, core.Task{TimeLimit: 10 * time.Second})
	elapsed = time.Since(start)
	if !errors.Is(err, context.DeadlineExceeded) {
		t.Fatalf("expected DeadlineExceeded, got %v", err)
	}
	if elapsed > 5*time.Second {
		t.Errorf("context deadline enforced after %v", elapsed)
	}
}

// orderBackend records the QoS class of each search in arrival order.
// Searches return immediately, so with one worker the recorded order is
// exactly the scheduler's dequeue order.
type orderBackend struct {
	mu    sync.Mutex
	order []core.QoSClass
}

func (b *orderBackend) Name() string { return "order" }

func (b *orderBackend) Search(ctx context.Context, task core.Task) (core.Result, error) {
	b.mu.Lock()
	b.order = append(b.order, task.Class)
	b.mu.Unlock()
	return core.Result{Found: true, SeedsCovered: 1}, nil
}

// TestInteractiveNeverWaitsBehindBackground pins the multi-class
// property: an interactive search submitted behind K queued background
// searches is dequeued before all of them (strict priority, aging
// disabled for determinism).
func TestInteractiveNeverWaitsBehindBackground(t *testing.T) {
	gate := &blockingBackend{
		entered: make(chan struct{}, 1),
		release: make(chan struct{}),
	}
	ord := &orderBackend{}
	// gatedBackend: first search blocks on gate (holding the single
	// worker), the rest record their dequeue order.
	first := &atomic.Bool{}
	bk := backendFunc(func(ctx context.Context, task core.Task) (core.Result, error) {
		if first.CompareAndSwap(false, true) {
			return gate.Search(ctx, task)
		}
		return ord.Search(ctx, task)
	})
	s := New(bk, Config{Workers: 1, QueueDepth: 16, AgingStep: -1})
	defer s.Close()

	var wg sync.WaitGroup
	submit := func(class core.QoSClass) {
		defer wg.Done()
		if _, err := s.Submit(context.Background(), core.Task{}, WithClass(class)); err != nil {
			t.Errorf("submit class %v: %v", class, err)
		}
	}
	wg.Add(1)
	go submit(core.ClassBackground) // occupies the worker
	<-gate.entered

	const background = 8
	for i := 0; i < background; i++ {
		wg.Add(1)
		go submit(core.ClassBackground)
	}
	waitFor(t, func() bool { return s.Stats().Queued == background })
	wg.Add(1)
	go submit(core.ClassInteractive)
	waitFor(t, func() bool { return s.Stats().Queued == background+1 })

	close(gate.release)
	wg.Wait()

	ord.mu.Lock()
	order := append([]core.QoSClass(nil), ord.order...)
	ord.mu.Unlock()
	if len(order) != background+1 {
		t.Fatalf("recorded %d dequeues, want %d", len(order), background+1)
	}
	if order[0] != core.ClassInteractive {
		t.Errorf("dequeue order %v: interactive waited behind background work", order)
	}
}

// TestAgingPromotesBackground pins the starvation bound: a background
// search that has waited AgingStep queue time per class level competes
// as interactive, so it is dequeued ahead of a freshly-arrived
// interactive search (ties go to the earliest enqueue).
func TestAgingPromotesBackground(t *testing.T) {
	gate := &blockingBackend{
		entered: make(chan struct{}, 1),
		release: make(chan struct{}),
	}
	ord := &orderBackend{}
	first := &atomic.Bool{}
	bk := backendFunc(func(ctx context.Context, task core.Task) (core.Result, error) {
		if first.CompareAndSwap(false, true) {
			return gate.Search(ctx, task)
		}
		return ord.Search(ctx, task)
	})
	const step = 20 * time.Millisecond
	s := New(bk, Config{Workers: 1, QueueDepth: 16, AgingStep: step})
	defer s.Close()

	var wg sync.WaitGroup
	submit := func(class core.QoSClass) {
		defer wg.Done()
		if _, err := s.Submit(context.Background(), core.Task{}, WithClass(class)); err != nil {
			t.Errorf("submit class %v: %v", class, err)
		}
	}
	wg.Add(1)
	go submit(core.ClassInteractive) // occupies the worker
	<-gate.entered

	wg.Add(1)
	go submit(core.ClassBackground)
	waitFor(t, func() bool { return s.Stats().Queued == 1 })
	// Age the background search past two full steps: its effective
	// level is now 0, level with any interactive arrival.
	time.Sleep(3 * step)
	wg.Add(1)
	go submit(core.ClassInteractive)
	waitFor(t, func() bool { return s.Stats().Queued == 2 })

	close(gate.release)
	wg.Wait()

	ord.mu.Lock()
	order := append([]core.QoSClass(nil), ord.order...)
	ord.mu.Unlock()
	if len(order) != 2 || order[0] != core.ClassBackground {
		t.Errorf("dequeue order %v: aged background search was starved by a fresh interactive one", order)
	}
}

// backendFunc adapts a function to core.Backend for test doubles.
type backendFunc func(context.Context, core.Task) (core.Result, error)

func (f backendFunc) Name() string { return "func" }
func (f backendFunc) Search(ctx context.Context, task core.Task) (core.Result, error) {
	return f(ctx, task)
}

// TestOverloadShedsLargestDistanceTail pins the shed property: with the
// queue full, an arriving search evicts only a strictly worse queued
// one — lowest class first, then largest MaxDistance — and the shed set
// under a synthetic interactive burst is exactly the d-large background
// tail. Interactive searches are never shed.
func TestOverloadShedsLargestDistanceTail(t *testing.T) {
	gate := &blockingBackend{
		entered: make(chan struct{}, 16),
		release: make(chan struct{}),
	}
	s := New(gate, Config{Workers: 1, QueueDepth: 4, AgingStep: -1})
	defer s.Close()

	var wg sync.WaitGroup
	errs := make(map[string]chan error)
	submit := func(name string, class core.QoSClass, maxD int) {
		ch := make(chan error, 1)
		errs[name] = ch
		wg.Add(1)
		go func() {
			defer wg.Done()
			_, err := s.Submit(context.Background(),
				core.Task{MaxDistance: maxD}, WithClass(class))
			ch <- err
		}()
	}

	submit("blocker", core.ClassInteractive, 1) // occupies the worker
	<-gate.entered

	// Fill the queue: one interactive, one batch, two background at
	// different distance bounds. The background d=6 search is the worst.
	submit("i1", core.ClassInteractive, 1)
	waitFor(t, func() bool { return s.Stats().Queued == 1 })
	submit("b2", core.ClassBatch, 2)
	waitFor(t, func() bool { return s.Stats().Queued == 2 })
	submit("g3", core.ClassBackground, 3)
	waitFor(t, func() bool { return s.Stats().Queued == 3 })
	submit("g6", core.ClassBackground, 6)
	waitFor(t, func() bool { return s.Stats().Queued == 4 })

	// Interactive burst into the full queue: each arrival must evict
	// the worst remaining background search, largest distance first.
	submit("i2", core.ClassInteractive, 1)
	if err := <-errs["g6"]; !errors.Is(err, ErrOverloaded) {
		t.Fatalf("g6 (worst) not shed first: %v", err)
	}
	waitFor(t, func() bool { return s.Stats().Queued == 4 })
	submit("i3", core.ClassInteractive, 1)
	if err := <-errs["g3"]; !errors.Is(err, ErrOverloaded) {
		t.Fatalf("g3 not shed second: %v", err)
	}
	waitFor(t, func() bool { return s.Stats().Queued == 4 })

	// An arrival that is not strictly better than anything queued is
	// rejected itself — ties never displace queued work.
	_, err := s.Submit(context.Background(), core.Task{MaxDistance: 2}, WithClass(core.ClassBatch))
	if !errors.Is(err, ErrOverloaded) {
		t.Fatalf("tie arrival: expected ErrOverloaded, got %v", err)
	}

	close(gate.release)
	wg.Wait()

	// Everything interactive completed; the shed set is exactly the
	// background tail, largest distance first.
	for _, name := range []string{"blocker", "i1", "i2", "i3", "b2"} {
		if err := <-errs[name]; err != nil {
			t.Errorf("%s failed: %v", name, err)
		}
	}
	st := s.Stats()
	if st.Shed != 2 {
		t.Errorf("Shed = %d, want 2", st.Shed)
	}
	if st.ByClass[core.ClassBackground].Shed != 2 {
		t.Errorf("background Shed = %d, want 2", st.ByClass[core.ClassBackground].Shed)
	}
	if st.ByClass[core.ClassInteractive].Shed != 0 || st.ByClass[core.ClassBatch].Shed != 0 {
		t.Errorf("interactive/batch work was shed: %+v", st.ByClass)
	}
	if st.Rejected != 1 {
		t.Errorf("Rejected = %d, want 1 (the tie arrival)", st.Rejected)
	}
}

// TestHedgedDispatchNeverDoubleCounts pins the hedging property: a
// hedged search runs two backend flights but resolves to exactly one
// Result and one outcome — Served() stays equal to admitted work, and
// the loser's partial result is drained, never folded into Stats.
func TestHedgedDispatchNeverDoubleCounts(t *testing.T) {
	var calls atomic.Int32
	bk := backendFunc(func(ctx context.Context, task core.Task) (core.Result, error) {
		if calls.Add(1) == 1 {
			// Primary flight straggles until the hedge's win cancels it.
			<-ctx.Done()
			return core.Result{SeedsCovered: 7}, ctx.Err()
		}
		return core.Result{Found: true, SeedsCovered: 42}, nil
	})
	s := New(bk, Config{Workers: 1, QueueDepth: 4,
		Hedge: HedgeConfig{Enabled: true, Delay: 20 * time.Millisecond}})
	defer s.Close()

	res, err := s.Search(context.Background(), core.Task{})
	if err != nil {
		t.Fatalf("hedged search failed: %v", err)
	}
	if !res.Found || res.SeedsCovered != 42 {
		t.Fatalf("result %+v, want the hedge flight's (42 seeds)", res)
	}
	if got := calls.Load(); got != 2 {
		t.Fatalf("backend saw %d flights, want 2", got)
	}

	st := s.Stats()
	if st.Submitted != 1 || st.Completed != 1 || st.Served() != 1 {
		t.Errorf("double-counted hedge: %+v", st)
	}
	if st.Hedged != 1 || st.HedgeWins != 1 {
		t.Errorf("Hedged/HedgeWins = %d/%d, want 1/1", st.Hedged, st.HedgeWins)
	}
	if st.InFlight != 0 {
		t.Errorf("InFlight = %d after hedged search resolved", st.InFlight)
	}
}

// TestHedgeNotTriggeredForFastSearch: a search that beats the hedge
// trigger runs exactly one flight.
func TestHedgeNotTriggeredForFastSearch(t *testing.T) {
	var calls atomic.Int32
	bk := backendFunc(func(ctx context.Context, task core.Task) (core.Result, error) {
		calls.Add(1)
		return core.Result{Found: true}, nil
	})
	s := New(bk, Config{Workers: 1, QueueDepth: 4,
		Hedge: HedgeConfig{Enabled: true, Delay: time.Second}})
	defer s.Close()

	if _, err := s.Search(context.Background(), core.Task{}); err != nil {
		t.Fatal(err)
	}
	if got := calls.Load(); got != 1 {
		t.Errorf("fast search ran %d flights, want 1", got)
	}
	if st := s.Stats(); st.Hedged != 0 || st.HedgeWins != 0 {
		t.Errorf("fast search hedged: %+v", st)
	}
}

// TestDeadlineInfeasibleRefusedAtAdmission: a search whose deadline is
// already past is refused with ErrDeadlineInfeasible without queueing.
func TestDeadlineInfeasibleRefusedAtAdmission(t *testing.T) {
	ring := obs.NewRing(16)
	bk := backendFunc(func(ctx context.Context, task core.Task) (core.Result, error) {
		return core.Result{Found: true}, nil
	})
	s := New(bk, Config{Workers: 1, QueueDepth: 4, Trace: ring})
	defer s.Close()

	_, err := s.Submit(context.Background(), core.Task{},
		WithDeadline(time.Now().Add(-time.Second)))
	if !errors.Is(err, ErrDeadlineInfeasible) {
		t.Fatalf("expected ErrDeadlineInfeasible, got %v", err)
	}
	st := s.Stats()
	if st.Rejected != 1 || st.DeadlineInfeasible != 1 {
		t.Errorf("Rejected/DeadlineInfeasible = %d/%d, want 1/1", st.Rejected, st.DeadlineInfeasible)
	}
	if st.Submitted != 0 {
		t.Errorf("infeasible search was admitted: %+v", st)
	}
	events := ring.Snapshot()
	if len(events) != 1 || events[0].Kind != obs.KindReject || events[0].Detail != "deadline-infeasible" {
		t.Errorf("trace events = %+v, want one deadline-infeasible reject", events)
	}
}

// TestDeadlineExpiredInQueueDiscarded: a search admitted with a
// feasible deadline that expires while queued is discarded at dequeue —
// the backend never sees it.
func TestDeadlineExpiredInQueueDiscarded(t *testing.T) {
	gate := &blockingBackend{
		entered: make(chan struct{}, 1),
		release: make(chan struct{}),
	}
	var served atomic.Int32
	bk := backendFunc(func(ctx context.Context, task core.Task) (core.Result, error) {
		served.Add(1)
		return gate.Search(ctx, task)
	})
	s := New(bk, Config{Workers: 1, QueueDepth: 4})
	defer s.Close()

	var wg sync.WaitGroup
	wg.Add(1)
	go func() {
		defer wg.Done()
		_, _ = s.Search(context.Background(), core.Task{})
	}()
	<-gate.entered // worker busy

	wg.Add(1)
	queuedErr := make(chan error, 1)
	go func() {
		defer wg.Done()
		_, err := s.Submit(context.Background(), core.Task{},
			WithDeadline(time.Now().Add(30*time.Millisecond)))
		queuedErr <- err
	}()
	waitFor(t, func() bool { return s.Stats().Queued == 1 })
	time.Sleep(60 * time.Millisecond) // deadline passes in the queue
	close(gate.release)
	wg.Wait()

	if err := <-queuedErr; !errors.Is(err, ErrDeadlineInfeasible) {
		t.Fatalf("expected ErrDeadlineInfeasible for queued expiry, got %v", err)
	}
	if got := served.Load(); got != 1 {
		t.Errorf("backend served %d searches, want 1 (expired job must not reach it)", got)
	}
	st := s.Stats()
	if st.Cancelled != 1 || st.DeadlineInfeasible != 1 {
		t.Errorf("Cancelled/DeadlineInfeasible = %d/%d, want 1/1", st.Cancelled, st.DeadlineInfeasible)
	}
}

// TestSubmitRejectsInvalidClass: an out-of-range class never reaches
// the queue.
func TestSubmitRejectsInvalidClass(t *testing.T) {
	bk := backendFunc(func(ctx context.Context, task core.Task) (core.Result, error) {
		return core.Result{}, nil
	})
	s := New(bk, Config{Workers: 1, QueueDepth: 1})
	defer s.Close()
	_, err := s.Submit(context.Background(), core.Task{}, WithClass(core.QoSClass(200)))
	if err == nil {
		t.Fatal("invalid class admitted")
	}
	if st := s.Stats(); st.Submitted != 0 {
		t.Errorf("invalid class counted as submitted: %+v", st)
	}
}

// TestPerClassMetricsPublished checks that a registry wired into the
// scheduler grows per-class and per-distance histograms.
func TestPerClassMetricsPublished(t *testing.T) {
	reg := obs.NewRegistry()
	bk := backendFunc(func(ctx context.Context, task core.Task) (core.Result, error) {
		return core.Result{Found: true}, nil
	})
	s := New(bk, Config{Workers: 1, QueueDepth: 4, Metrics: reg})
	defer s.Close()

	if _, err := s.Submit(context.Background(), core.Task{MaxDistance: 3}, WithClass(core.ClassBatch)); err != nil {
		t.Fatal(err)
	}
	snap := reg.Snapshot()
	for _, name := range []string{
		"sched.queue_wait_seconds.batch",
		"sched.service_seconds.batch",
		"sched.service_seconds.maxd3",
	} {
		h, ok := snap[name].(obs.HistogramSnapshot)
		if !ok || h.Count != 1 {
			t.Errorf("%s = %#v, want one observation", name, snap[name])
		}
	}
	if h, ok := snap["sched.queue_wait_seconds.interactive"].(obs.HistogramSnapshot); !ok || h.Count != 0 {
		t.Errorf("interactive histogram = %#v, want zero observations", snap["sched.queue_wait_seconds.interactive"])
	}
}

// TestStatsByClassPartition: ByClass admission counters partition the
// totals.
func TestStatsByClassPartition(t *testing.T) {
	bk := backendFunc(func(ctx context.Context, task core.Task) (core.Result, error) {
		return core.Result{Found: true}, nil
	})
	s := New(bk, Config{Workers: 2, QueueDepth: 8})
	defer s.Close()

	for i := 0; i < 3; i++ {
		if _, err := s.Submit(context.Background(), core.Task{}, WithClass(core.ClassInteractive)); err != nil {
			t.Fatal(err)
		}
	}
	for i := 0; i < 2; i++ {
		if _, err := s.Submit(context.Background(), core.Task{}, WithClass(core.ClassBackground)); err != nil {
			t.Fatal(err)
		}
	}
	st := s.Stats()
	var sub uint64
	for c := range st.ByClass {
		sub += st.ByClass[c].Submitted
	}
	if sub != st.Submitted || st.Submitted != 5 {
		t.Errorf("ByClass Submitted sums to %d, total %d, want 5", sub, st.Submitted)
	}
	if st.ByClass[core.ClassInteractive].Submitted != 3 || st.ByClass[core.ClassBackground].Submitted != 2 {
		t.Errorf("per-class split = %+v", st.ByClass)
	}
	_ = fmt.Sprintf("%v", st) // Stats must remain printable for /metrics
}
