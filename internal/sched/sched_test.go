package sched

import (
	"context"
	"errors"
	"fmt"
	"sync"
	"testing"
	"time"

	"rbcsalted/internal/combin"
	"rbcsalted/internal/core"
	"rbcsalted/internal/cpu"
	"rbcsalted/internal/cryptoalg/aeskg"
	"rbcsalted/internal/iterseq"
	"rbcsalted/internal/puf"
	"rbcsalted/internal/u256"
)

// Scheduler must itself satisfy the Backend contract it schedules.
var _ core.Backend = (*Scheduler)(nil)

// blockingBackend parks every Search until released (or ctx cancels),
// so tests can hold worker slots and fill the queue deterministically.
type blockingBackend struct {
	entered chan struct{} // one tick per Search that starts
	release chan struct{} // closed to let all searches finish
}

func (b *blockingBackend) Name() string { return "blocking" }

func (b *blockingBackend) Search(ctx context.Context, task core.Task) (core.Result, error) {
	if b.entered != nil {
		b.entered <- struct{}{}
	}
	select {
	case <-b.release:
		return core.Result{Found: true, SeedsCovered: 1}, nil
	case <-ctx.Done():
		return core.Result{}, ctx.Err()
	}
}

// TestConcurrentAuthenticationsThroughScheduler drives 32 goroutines,
// each a distinct enrolled client, through one CA whose backend is a
// 4-worker scheduler over the real CPU engine. Run with -race.
func TestConcurrentAuthenticationsThroughScheduler(t *testing.T) {
	store, err := core.NewImageStore([32]byte{0x5C})
	if err != nil {
		t.Fatal(err)
	}
	ra := core.NewRA()
	s := New(&cpu.Backend{Alg: core.SHA3, Workers: 2}, Config{Workers: 4, QueueDepth: 64})
	defer s.Close()
	ca, err := core.NewCA(store, s, &aeskg.Generator{}, ra, core.CAConfig{
		Alg:         core.SHA3,
		MaxDistance: 3,
	})
	if err != nil {
		t.Fatal(err)
	}

	const clients = 32
	devices := make([]*puf.Device, clients)
	// Low-noise devices: reads stay within a couple of bits of the
	// enrolled image, so every search succeeds inside MaxDistance.
	profile := puf.Profile{BaseError: 0.1 / 256.0}
	for i := range devices {
		dev, err := puf.NewDevice(uint64(7000+i), 1024, profile)
		if err != nil {
			t.Fatal(err)
		}
		im, err := puf.Enroll(dev, 31)
		if err != nil {
			t.Fatal(err)
		}
		if err := ca.Enroll(core.ClientID(fmt.Sprintf("client-%d", i)), im); err != nil {
			t.Fatal(err)
		}
		devices[i] = dev
	}

	var wg sync.WaitGroup
	errs := make(chan error, clients)
	for i := 0; i < clients; i++ {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			id := core.ClientID(fmt.Sprintf("client-%d", i))
			client := &core.Client{ID: id, Device: devices[i]}
			ch, err := ca.BeginHandshake(id)
			if err != nil {
				errs <- fmt.Errorf("%s handshake: %w", id, err)
				return
			}
			m1, err := client.Respond(ch)
			if err != nil {
				errs <- fmt.Errorf("%s respond: %w", id, err)
				return
			}
			res, err := ca.Authenticate(context.Background(), id, ch.Nonce, m1)
			if err != nil {
				errs <- fmt.Errorf("%s authenticate: %w", id, err)
				return
			}
			if !res.Authenticated {
				errs <- fmt.Errorf("%s not authenticated", id)
			}
		}(i)
	}
	wg.Wait()
	close(errs)
	for err := range errs {
		t.Error(err)
	}

	st := s.Stats()
	if st.Submitted != clients {
		t.Errorf("Submitted = %d, want %d", st.Submitted, clients)
	}
	if st.Completed != clients {
		t.Errorf("Completed = %d, want %d (stats: %+v)", st.Completed, clients, st)
	}
	if st.Served() != clients {
		t.Errorf("Served = %d, want %d", st.Served(), clients)
	}
	if st.ServiceTotal <= 0 {
		t.Errorf("ServiceTotal = %v, want > 0", st.ServiceTotal)
	}
	// 32 searches over 4 workers: at least 28 had to queue.
	if st.QueueWaitTotal <= 0 {
		t.Errorf("QueueWaitTotal = %v, want > 0", st.QueueWaitTotal)
	}
	if st.InFlight != 0 || st.Queued != 0 {
		t.Errorf("gauges not drained: inflight=%d queued=%d", st.InFlight, st.Queued)
	}
}

// TestQueueFullRejectsWithErrOverloaded fills all worker slots and the
// whole queue, then expects the next submission to be rejected
// immediately.
func TestQueueFullRejectsWithErrOverloaded(t *testing.T) {
	bk := &blockingBackend{
		entered: make(chan struct{}, 8),
		release: make(chan struct{}),
	}
	s := New(bk, Config{Workers: 2, QueueDepth: 2})
	defer s.Close()

	var wg sync.WaitGroup
	results := make(chan error, 4)
	submit := func() {
		defer wg.Done()
		_, err := s.Search(context.Background(), core.Task{})
		results <- err
	}
	// Two searches occupy the workers...
	wg.Add(2)
	go submit()
	go submit()
	<-bk.entered
	<-bk.entered
	// ...two more fill the queue...
	wg.Add(2)
	go submit()
	go submit()
	waitFor(t, func() bool { return s.Stats().Queued == 2 })

	// ...and the fifth must bounce without blocking.
	start := time.Now()
	_, err := s.Search(context.Background(), core.Task{})
	if !errors.Is(err, ErrOverloaded) {
		t.Fatalf("expected ErrOverloaded, got %v", err)
	}
	if d := time.Since(start); d > time.Second {
		t.Errorf("rejection took %v, want immediate", d)
	}
	if got := s.Stats().Rejected; got != 1 {
		t.Errorf("Rejected = %d, want 1", got)
	}

	close(bk.release)
	wg.Wait()
	close(results)
	for err := range results {
		if err != nil {
			t.Errorf("admitted search failed: %v", err)
		}
	}
	st := s.Stats()
	if st.Completed != 4 {
		t.Errorf("Completed = %d, want 4", st.Completed)
	}
}

// TestCancelStopsExhaustiveCPUSearch proves a context cancel terminates
// a long exhaustive search on the real CPU engine promptly: the partial
// Result must cover strictly fewer seeds than the exhaustive total.
func TestCancelStopsExhaustiveCPUSearch(t *testing.T) {
	s := New(&cpu.Backend{Alg: core.SHA3, Workers: 2}, Config{Workers: 1, QueueDepth: 1})
	defer s.Close()

	// A target no candidate matches, so the search would cover the whole
	// d<=3 ball (~2.8M seeds) if left alone.
	base := u256.New(1, 2, 3, 4)
	task := core.Task{
		Base:          base,
		Target:        core.HashSeed(core.SHA3, u256.New(5, 6, 7, 8).FlipBit(0).FlipBit(9).FlipBit(200)),
		MaxDistance:   3,
		Method:        iterseq.GrayCode,
		Exhaustive:    true,
		CheckInterval: 64,
	}
	total := uint64(1)
	for d := 1; d <= 3; d++ {
		n, _ := combin.Binomial64(256, d)
		total += n
	}

	ctx, cancel := context.WithCancel(context.Background())
	go func() {
		time.Sleep(30 * time.Millisecond)
		cancel()
	}()
	start := time.Now()
	res, err := s.Search(ctx, task)
	elapsed := time.Since(start)

	if !errors.Is(err, context.Canceled) {
		t.Fatalf("expected context.Canceled, got %v", err)
	}
	if res.SeedsCovered == 0 {
		t.Error("cancelled search reported no coverage at all")
	}
	if res.SeedsCovered >= total {
		t.Errorf("SeedsCovered = %d, want strictly below exhaustive total %d", res.SeedsCovered, total)
	}
	// Cancellation latency is one CheckInterval per worker, not the full
	// multi-second exhaustive search.
	if elapsed > 5*time.Second {
		t.Errorf("cancel took %v, want prompt stop", elapsed)
	}
	if got := s.Stats().Cancelled; got != 1 {
		t.Errorf("Cancelled = %d, want 1", got)
	}
}

// TestCancelWhileQueuedReturnsImmediately cancels a search that never
// reached a worker.
func TestCancelWhileQueuedReturnsImmediately(t *testing.T) {
	bk := &blockingBackend{
		entered: make(chan struct{}, 2),
		release: make(chan struct{}),
	}
	s := New(bk, Config{Workers: 1, QueueDepth: 2})
	defer s.Close()

	var wg sync.WaitGroup
	wg.Add(1)
	go func() {
		defer wg.Done()
		_, _ = s.Search(context.Background(), core.Task{})
	}()
	<-bk.entered // worker busy

	ctx, cancel := context.WithCancel(context.Background())
	wg.Add(1)
	queuedErr := make(chan error, 1)
	go func() {
		defer wg.Done()
		_, err := s.Search(ctx, core.Task{})
		queuedErr <- err
	}()
	waitFor(t, func() bool { return s.Stats().Queued == 1 })
	cancel()

	select {
	case err := <-queuedErr:
		if !errors.Is(err, context.Canceled) {
			t.Errorf("expected context.Canceled, got %v", err)
		}
	case <-time.After(2 * time.Second):
		t.Fatal("queued search did not return after cancel")
	}
	close(bk.release)
	wg.Wait()
}

// TestSchedulerClosedRejects verifies submissions after Close fail fast
// and already-queued work still completes.
func TestSchedulerClosedRejects(t *testing.T) {
	bk := &blockingBackend{release: make(chan struct{})}
	close(bk.release) // never block
	s := New(bk, Config{Workers: 1, QueueDepth: 1})
	if _, err := s.Search(context.Background(), core.Task{}); err != nil {
		t.Fatalf("search before close: %v", err)
	}
	s.Close()
	if _, err := s.Search(context.Background(), core.Task{}); !errors.Is(err, ErrClosed) {
		t.Fatalf("expected ErrClosed, got %v", err)
	}
	// Close is idempotent.
	s.Close()
}

// TestDerivedDeadlineReclaimsWorker verifies the TimeLimit-derived
// context deadline frees the worker slot even when the backend ignores
// its TimeLimit.
func TestDerivedDeadlineReclaimsWorker(t *testing.T) {
	bk := &blockingBackend{release: make(chan struct{})} // blocks forever unless ctx fires
	s := New(bk, Config{Workers: 1, QueueDepth: 1, DeadlineGrace: time.Millisecond})
	defer s.Close()

	start := time.Now()
	_, err := s.Search(context.Background(), core.Task{TimeLimit: 20 * time.Millisecond})
	if !errors.Is(err, context.DeadlineExceeded) {
		t.Fatalf("expected DeadlineExceeded, got %v", err)
	}
	if d := time.Since(start); d > 5*time.Second {
		t.Errorf("deadline enforcement took %v", d)
	}
	if got := s.Stats().Cancelled; got != 1 {
		t.Errorf("Cancelled = %d, want 1", got)
	}
}

// waitFor polls cond until true or a generous deadline.
func waitFor(t *testing.T, cond func() bool) {
	t.Helper()
	deadline := time.Now().Add(5 * time.Second)
	for !cond() {
		if time.Now().After(deadline) {
			t.Fatal("condition not reached in time")
		}
		time.Sleep(time.Millisecond)
	}
}
