package sched

import (
	"context"
	"errors"
	"fmt"
	"sync"
	"testing"
	"time"

	"rbcsalted/internal/combin"
	"rbcsalted/internal/core"
	"rbcsalted/internal/cpu"
	"rbcsalted/internal/cryptoalg/aeskg"
	"rbcsalted/internal/iterseq"
	"rbcsalted/internal/obs"
	"rbcsalted/internal/puf"
	"rbcsalted/internal/u256"
)

// Scheduler must itself satisfy the Backend contract it schedules.
var _ core.Backend = (*Scheduler)(nil)

// blockingBackend parks every Search until released (or ctx cancels),
// so tests can hold worker slots and fill the queue deterministically.
type blockingBackend struct {
	entered chan struct{} // one tick per Search that starts
	release chan struct{} // closed to let all searches finish
}

func (b *blockingBackend) Name() string { return "blocking" }

func (b *blockingBackend) Search(ctx context.Context, task core.Task) (core.Result, error) {
	if b.entered != nil {
		b.entered <- struct{}{}
	}
	select {
	case <-b.release:
		return core.Result{Found: true, SeedsCovered: 1}, nil
	case <-ctx.Done():
		return core.Result{}, ctx.Err()
	}
}

// TestConcurrentAuthenticationsThroughScheduler drives 32 goroutines,
// each a distinct enrolled client, through one CA whose backend is a
// 4-worker scheduler over the real CPU engine. Run with -race.
func TestConcurrentAuthenticationsThroughScheduler(t *testing.T) {
	store, err := core.NewImageStore([32]byte{0x5C})
	if err != nil {
		t.Fatal(err)
	}
	ra := core.NewRA()
	s := New(&cpu.Backend{Alg: core.SHA3, Workers: 2}, Config{Workers: 4, QueueDepth: 64})
	defer s.Close()
	ca, err := core.NewCA(store, s, &aeskg.Generator{}, ra, core.CAConfig{
		Alg:         core.SHA3,
		MaxDistance: 3,
		// Route every shell through the scheduler: this test counts all
		// 32 authentications in the pool's stats, and the inline fast
		// path would otherwise complete these low-noise devices at d <= 1
		// without ever submitting.
		InlineDepth: core.InlineDisabled,
	})
	if err != nil {
		t.Fatal(err)
	}

	const clients = 32
	devices := make([]*puf.Device, clients)
	// Low-noise devices: reads stay within a couple of bits of the
	// enrolled image, so every search succeeds inside MaxDistance.
	profile := puf.Profile{BaseError: 0.1 / 256.0}
	for i := range devices {
		dev, err := puf.NewDevice(uint64(7000+i), 1024, profile)
		if err != nil {
			t.Fatal(err)
		}
		im, err := puf.Enroll(dev, 31)
		if err != nil {
			t.Fatal(err)
		}
		if err := ca.Enroll(core.ClientID(fmt.Sprintf("client-%d", i)), im); err != nil {
			t.Fatal(err)
		}
		devices[i] = dev
	}

	var wg sync.WaitGroup
	errs := make(chan error, clients)
	for i := 0; i < clients; i++ {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			id := core.ClientID(fmt.Sprintf("client-%d", i))
			client := &core.Client{ID: id, Device: devices[i]}
			ch, err := ca.BeginHandshake(id)
			if err != nil {
				errs <- fmt.Errorf("%s handshake: %w", id, err)
				return
			}
			m1, err := client.Respond(ch)
			if err != nil {
				errs <- fmt.Errorf("%s respond: %w", id, err)
				return
			}
			res, err := ca.Authenticate(context.Background(), core.AuthRequest{Client: id, Nonce: ch.Nonce, M1: m1})
			if err != nil {
				errs <- fmt.Errorf("%s authenticate: %w", id, err)
				return
			}
			if !res.Authenticated {
				errs <- fmt.Errorf("%s not authenticated", id)
			}
		}(i)
	}
	wg.Wait()
	close(errs)
	for err := range errs {
		t.Error(err)
	}

	st := s.Stats()
	if st.Submitted != clients {
		t.Errorf("Submitted = %d, want %d", st.Submitted, clients)
	}
	if st.Completed != clients {
		t.Errorf("Completed = %d, want %d (stats: %+v)", st.Completed, clients, st)
	}
	if st.Served() != clients {
		t.Errorf("Served = %d, want %d", st.Served(), clients)
	}
	if st.ServiceTotal <= 0 {
		t.Errorf("ServiceTotal = %v, want > 0", st.ServiceTotal)
	}
	// 32 searches over 4 workers: at least 28 had to queue.
	if st.QueueWaitTotal <= 0 {
		t.Errorf("QueueWaitTotal = %v, want > 0", st.QueueWaitTotal)
	}
	if st.InFlight != 0 || st.Queued != 0 {
		t.Errorf("gauges not drained: inflight=%d queued=%d", st.InFlight, st.Queued)
	}
}

// TestQueueFullRejectsWithErrOverloaded fills all worker slots and the
// whole queue, then expects the next submission to be rejected
// immediately.
func TestQueueFullRejectsWithErrOverloaded(t *testing.T) {
	bk := &blockingBackend{
		entered: make(chan struct{}, 8),
		release: make(chan struct{}),
	}
	s := New(bk, Config{Workers: 2, QueueDepth: 2})
	defer s.Close()

	var wg sync.WaitGroup
	results := make(chan error, 4)
	submit := func() {
		defer wg.Done()
		_, err := s.Search(context.Background(), core.Task{})
		results <- err
	}
	// Two searches occupy the workers...
	wg.Add(2)
	go submit()
	go submit()
	<-bk.entered
	<-bk.entered
	// ...two more fill the queue...
	wg.Add(2)
	go submit()
	go submit()
	waitFor(t, func() bool { return s.Stats().Queued == 2 })

	// ...and the fifth must bounce without blocking.
	start := time.Now()
	_, err := s.Search(context.Background(), core.Task{})
	if !errors.Is(err, ErrOverloaded) {
		t.Fatalf("expected ErrOverloaded, got %v", err)
	}
	if d := time.Since(start); d > time.Second {
		t.Errorf("rejection took %v, want immediate", d)
	}
	if got := s.Stats().Rejected; got != 1 {
		t.Errorf("Rejected = %d, want 1", got)
	}

	close(bk.release)
	wg.Wait()
	close(results)
	for err := range results {
		if err != nil {
			t.Errorf("admitted search failed: %v", err)
		}
	}
	st := s.Stats()
	if st.Completed != 4 {
		t.Errorf("Completed = %d, want 4", st.Completed)
	}
}

// TestCancelStopsExhaustiveCPUSearch proves a context cancel terminates
// a long exhaustive search on the real CPU engine promptly: the partial
// Result must cover strictly fewer seeds than the exhaustive total.
func TestCancelStopsExhaustiveCPUSearch(t *testing.T) {
	s := New(&cpu.Backend{Alg: core.SHA3, Workers: 2}, Config{Workers: 1, QueueDepth: 1})
	defer s.Close()

	// A target no candidate matches, so the search would cover the whole
	// d<=3 ball (~2.8M seeds) if left alone.
	base := u256.New(1, 2, 3, 4)
	task := core.Task{
		Base:          base,
		Target:        core.HashSeed(core.SHA3, u256.New(5, 6, 7, 8).FlipBit(0).FlipBit(9).FlipBit(200)),
		MaxDistance:   3,
		Method:        iterseq.GrayCode,
		Exhaustive:    true,
		CheckInterval: 64,
	}
	total := uint64(1)
	for d := 1; d <= 3; d++ {
		n, _ := combin.Binomial64(256, d)
		total += n
	}

	ctx, cancel := context.WithCancel(context.Background())
	go func() {
		time.Sleep(30 * time.Millisecond)
		cancel()
	}()
	start := time.Now()
	res, err := s.Search(ctx, task)
	elapsed := time.Since(start)

	if !errors.Is(err, context.Canceled) {
		t.Fatalf("expected context.Canceled, got %v", err)
	}
	if res.SeedsCovered == 0 {
		t.Error("cancelled search reported no coverage at all")
	}
	if res.SeedsCovered >= total {
		t.Errorf("SeedsCovered = %d, want strictly below exhaustive total %d", res.SeedsCovered, total)
	}
	// Cancellation latency is one CheckInterval per worker, not the full
	// multi-second exhaustive search.
	if elapsed > 5*time.Second {
		t.Errorf("cancel took %v, want prompt stop", elapsed)
	}
	if got := s.Stats().Cancelled; got != 1 {
		t.Errorf("Cancelled = %d, want 1", got)
	}
}

// TestCancelWhileQueuedReturnsImmediately cancels a search that never
// reached a worker.
func TestCancelWhileQueuedReturnsImmediately(t *testing.T) {
	bk := &blockingBackend{
		entered: make(chan struct{}, 2),
		release: make(chan struct{}),
	}
	s := New(bk, Config{Workers: 1, QueueDepth: 2})
	defer s.Close()

	var wg sync.WaitGroup
	wg.Add(1)
	go func() {
		defer wg.Done()
		_, _ = s.Search(context.Background(), core.Task{})
	}()
	<-bk.entered // worker busy

	ctx, cancel := context.WithCancel(context.Background())
	wg.Add(1)
	queuedErr := make(chan error, 1)
	go func() {
		defer wg.Done()
		_, err := s.Search(ctx, core.Task{})
		queuedErr <- err
	}()
	waitFor(t, func() bool { return s.Stats().Queued == 1 })
	cancel()

	select {
	case err := <-queuedErr:
		if !errors.Is(err, context.Canceled) {
			t.Errorf("expected context.Canceled, got %v", err)
		}
	case <-time.After(2 * time.Second):
		t.Fatal("queued search did not return after cancel")
	}
	close(bk.release)
	wg.Wait()
}

// TestSchedulerClosedRejects verifies submissions after Close fail fast
// and already-queued work still completes.
func TestSchedulerClosedRejects(t *testing.T) {
	bk := &blockingBackend{release: make(chan struct{})}
	close(bk.release) // never block
	s := New(bk, Config{Workers: 1, QueueDepth: 1})
	if _, err := s.Search(context.Background(), core.Task{}); err != nil {
		t.Fatalf("search before close: %v", err)
	}
	s.Close()
	if _, err := s.Search(context.Background(), core.Task{}); !errors.Is(err, ErrClosed) {
		t.Fatalf("expected ErrClosed, got %v", err)
	}
	// Close is idempotent.
	s.Close()
}

// TestDerivedDeadlineReclaimsWorker verifies the TimeLimit-derived
// context deadline frees the worker slot even when the backend ignores
// its TimeLimit.
func TestDerivedDeadlineReclaimsWorker(t *testing.T) {
	bk := &blockingBackend{release: make(chan struct{})} // blocks forever unless ctx fires
	s := New(bk, Config{Workers: 1, QueueDepth: 1, DeadlineGrace: time.Millisecond})
	defer s.Close()

	start := time.Now()
	_, err := s.Search(context.Background(), core.Task{TimeLimit: 20 * time.Millisecond})
	if !errors.Is(err, context.DeadlineExceeded) {
		t.Fatalf("expected DeadlineExceeded, got %v", err)
	}
	if d := time.Since(start); d > 5*time.Second {
		t.Errorf("deadline enforcement took %v", d)
	}
	if got := s.Stats().Cancelled; got != 1 {
		t.Errorf("Cancelled = %d, want 1", got)
	}
}

// TestCancelledWhileQueuedCountsOnceWithoutWaitSkew locks in the stale-
// job discard accounting: a search cancelled while queued must count
// exactly once as Cancelled and must not contribute its (abandonment-
// inflated) queue time to QueueWaitTotal/Max.
func TestCancelledWhileQueuedCountsOnceWithoutWaitSkew(t *testing.T) {
	bk := &blockingBackend{
		entered: make(chan struct{}, 2),
		release: make(chan struct{}),
	}
	s := New(bk, Config{Workers: 1, QueueDepth: 2})
	defer s.Close()

	var wg sync.WaitGroup
	wg.Add(1)
	go func() {
		defer wg.Done()
		_, _ = s.Search(context.Background(), core.Task{})
	}()
	<-bk.entered // worker busy

	ctx, cancel := context.WithCancel(context.Background())
	wg.Add(1)
	go func() {
		defer wg.Done()
		_, _ = s.Search(ctx, core.Task{})
	}()
	waitFor(t, func() bool { return s.Stats().Queued == 1 })
	cancel()
	// Let the stale job age in the queue well past its cancellation: the
	// buggy accounting would fold this whole wait into the aggregates.
	time.Sleep(100 * time.Millisecond)
	close(bk.release)
	wg.Wait()
	waitFor(t, func() bool { return s.Stats().Served() == 2 })

	st := s.Stats()
	if st.Cancelled != 1 {
		t.Errorf("Cancelled = %d, want exactly 1", st.Cancelled)
	}
	if st.Completed != 1 {
		t.Errorf("Completed = %d, want 1", st.Completed)
	}
	// The served search never queued behind anything for long; the
	// discarded one must not have contributed its ~100 ms.
	if st.QueueWaitMax >= 100*time.Millisecond {
		t.Errorf("QueueWaitMax = %v, want < 100ms (stale job's wait leaked into stats)", st.QueueWaitMax)
	}
	if st.QueueWaitTotal >= 100*time.Millisecond {
		t.Errorf("QueueWaitTotal = %v, want < 100ms", st.QueueWaitTotal)
	}
}

// TestCloseFailsQueuedJobsWithErrClosed locks in the Close contract:
// searches still queued behind a long-running one must be resolved with
// ErrClosed promptly instead of blocking on the busy worker. Run with
// -race.
func TestCloseFailsQueuedJobsWithErrClosed(t *testing.T) {
	bk := &blockingBackend{
		entered: make(chan struct{}, 2),
		release: make(chan struct{}),
	}
	s := New(bk, Config{Workers: 1, QueueDepth: 4})

	first := make(chan error, 1)
	go func() {
		_, err := s.Search(context.Background(), core.Task{})
		first <- err
	}()
	<-bk.entered // worker busy, will block until release

	const queued = 3
	queuedErrs := make(chan error, queued)
	for i := 0; i < queued; i++ {
		go func() {
			_, err := s.Search(context.Background(), core.Task{})
			queuedErrs <- err
		}()
	}
	waitFor(t, func() bool { return s.Stats().Queued == queued })
	// Age the queued jobs so a wait-accounting leak would be visible in
	// the final QueueWait assertions.
	time.Sleep(100 * time.Millisecond)

	closed := make(chan struct{})
	go func() {
		s.Close()
		close(closed)
	}()

	// The queued callers must get out with ErrClosed while the worker is
	// still occupied — no waiting behind the in-flight search.
	for i := 0; i < queued; i++ {
		select {
		case err := <-queuedErrs:
			if !errors.Is(err, ErrClosed) {
				t.Errorf("queued search returned %v, want ErrClosed", err)
			}
		case <-time.After(5 * time.Second):
			t.Fatal("queued search still blocked after Close")
		}
	}

	close(bk.release)
	if err := <-first; err != nil {
		t.Errorf("in-flight search failed: %v", err)
	}
	select {
	case <-closed:
	case <-time.After(5 * time.Second):
		t.Fatal("Close did not return")
	}

	st := s.Stats()
	if st.Completed != 1 {
		t.Errorf("Completed = %d, want 1", st.Completed)
	}
	if st.Failed != queued {
		t.Errorf("Failed = %d, want %d (ErrClosed discards)", st.Failed, queued)
	}
	// Only the served search's (instant) pickup may contribute: the three
	// discarded jobs aged >= 100 ms each and must be excluded.
	if st.QueueWaitTotal >= 100*time.Millisecond {
		t.Errorf("QueueWaitTotal = %v, want < 100ms (discards must not skew waits)", st.QueueWaitTotal)
	}
}

// TestTraceEventsAndHistograms checks the observability wiring: one
// authentication-sized search through a scheduler over the real CPU
// engine must leave the canonical event trail and one observation in
// each latency histogram.
func TestTraceEventsAndHistograms(t *testing.T) {
	ring := obs.NewRing(64)
	reg := obs.NewRegistry()
	s := New(&cpu.Backend{Alg: core.SHA3, Workers: 2},
		Config{Workers: 1, QueueDepth: 4, Trace: ring, Metrics: reg})
	defer s.Close()

	base := u256.New(11, 22, 33, 44)
	seed := base.FlipBit(7) // match at distance 1
	res, err := s.Search(context.Background(), core.Task{
		Base:        base,
		Target:      core.HashSeed(core.SHA3, seed),
		MaxDistance: 2,
		Method:      iterseq.GrayCode,
	})
	if err != nil || !res.Found || res.Distance != 1 {
		t.Fatalf("search: res=%+v err=%v", res, err)
	}

	events := ring.Snapshot()
	var kinds []string
	var searchID uint64
	for _, ev := range events {
		kinds = append(kinds, ev.Kind)
		if ev.Search == 0 {
			t.Errorf("event %s missing search ID", ev.Kind)
		} else if searchID == 0 {
			searchID = ev.Search
		} else if ev.Search != searchID {
			t.Errorf("event %s has search ID %d, want %d", ev.Kind, ev.Search, searchID)
		}
	}
	want := []string{
		obs.KindEnqueue, obs.KindDequeue, obs.KindSearchStart,
		obs.KindShell, obs.KindSearchEnd, obs.KindDone,
	}
	if fmt.Sprint(kinds) != fmt.Sprint(want) {
		t.Errorf("trace kinds = %v, want %v", kinds, want)
	}
	for _, ev := range events {
		switch ev.Kind {
		case obs.KindSearchEnd:
			if ev.Detail != "found" || ev.Depth != 1 || ev.N == 0 {
				t.Errorf("search.end = %+v, want found at depth 1 with hashes", ev)
			}
		case obs.KindShell:
			if ev.Depth != 1 || ev.N == 0 {
				t.Errorf("search.shell = %+v, want depth 1 with coverage", ev)
			}
		case obs.KindDone:
			if ev.Detail != "completed" {
				t.Errorf("sched.done detail = %q, want completed", ev.Detail)
			}
		}
	}

	snap := reg.Snapshot()
	qw, ok := snap["sched.queue_wait_seconds"].(obs.HistogramSnapshot)
	if !ok || qw.Count != 1 {
		t.Errorf("queue-wait histogram = %#v, want one observation", snap["sched.queue_wait_seconds"])
	}
	sv, ok := snap["sched.service_seconds"].(obs.HistogramSnapshot)
	if !ok || sv.Count != 1 {
		t.Errorf("service histogram = %#v, want one observation", snap["sched.service_seconds"])
	}
}

// waitFor polls cond until true or a generous deadline.
func waitFor(t *testing.T, cond func() bool) {
	t.Helper()
	deadline := time.Now().Add(5 * time.Second)
	for !cond() {
		if time.Now().After(deadline) {
			t.Fatal("condition not reached in time")
		}
		time.Sleep(time.Millisecond)
	}
}

// alternateBackend straggles forever on the primary flight and answers
// instantly on the alternate one, so a hedge must reach SearchAlternate
// to finish.
type alternateBackend struct {
	altCalls chan struct{}
}

func (b *alternateBackend) Name() string { return "alternate" }

func (b *alternateBackend) Search(ctx context.Context, task core.Task) (core.Result, error) {
	<-ctx.Done()
	return core.Result{}, ctx.Err()
}

func (b *alternateBackend) SearchAlternate(ctx context.Context, task core.Task) (core.Result, error) {
	b.altCalls <- struct{}{}
	return core.Result{Found: true, SeedsCovered: 1}, nil
}

// TestHedgeReachesAlternateSearcher pins the planner integration: when
// the backend offers a second-best engine (core.AlternateSearcher), the
// hedge flight must run there instead of re-rolling the same engine.
func TestHedgeReachesAlternateSearcher(t *testing.T) {
	b := &alternateBackend{altCalls: make(chan struct{}, 1)}
	s := New(b, Config{
		Workers:    1,
		QueueDepth: 4,
		Hedge:      HedgeConfig{Enabled: true, Delay: 5 * time.Millisecond},
	})
	defer s.Close()

	res, err := s.Search(context.Background(), core.Task{MaxDistance: 1})
	if err != nil {
		t.Fatal(err)
	}
	if !res.Found {
		t.Fatalf("hedged search result %+v, want Found", res)
	}
	select {
	case <-b.altCalls:
	default:
		t.Fatal("SearchAlternate was never invoked")
	}
	st := s.Stats()
	if st.Hedged != 1 || st.HedgeWins != 1 {
		t.Fatalf("stats Hedged=%d HedgeWins=%d, want 1/1", st.Hedged, st.HedgeWins)
	}
}

// etaBackend answers instantly but claims a fixed per-task ETA, like
// the planner's core.ETAEstimator implementation.
type etaBackend struct {
	eta time.Duration
}

func (b *etaBackend) Name() string { return "eta" }

func (b *etaBackend) Search(ctx context.Context, task core.Task) (core.Result, error) {
	return core.Result{Found: true, SeedsCovered: 1}, nil
}

func (b *etaBackend) EstimateETA(task core.Task) (time.Duration, bool) {
	return b.eta, true
}

// TestDeadlineAdmissionUsesBackendETA: a backend-supplied ETA must drive
// deadline admission — even before the scheduler's own service-time EWMA
// has warmed up — refusing deadlines the chosen engine cannot make and
// admitting ones it can.
func TestDeadlineAdmissionUsesBackendETA(t *testing.T) {
	b := &etaBackend{eta: time.Hour}
	s := New(b, Config{Workers: 1, QueueDepth: 4})
	defer s.Close()

	task := core.Task{MaxDistance: 1, Deadline: time.Now().Add(time.Second)}
	if _, err := s.Search(context.Background(), task); !errors.Is(err, ErrDeadlineInfeasible) {
		t.Fatalf("hour-long ETA admitted against a 1s deadline: %v", err)
	}

	b.eta = time.Millisecond
	res, err := s.Search(context.Background(), core.Task{
		MaxDistance: 1, Deadline: time.Now().Add(time.Second),
	})
	if err != nil || !res.Found {
		t.Fatalf("feasible deadline refused: %+v, %v", res, err)
	}
}

// healthBackend is a Backend that also reports degraded health, like
// the cluster coordinator.
type healthBackend struct {
	blockingBackend
	degraded bool
}

func (h *healthBackend) Degraded() bool { return h.degraded }

// TestStatsSurfacesBackendHealth pins the core.HealthReporter plumbing:
// a degraded backend shows up in Stats and via Scheduler.Degraded, and
// a backend without health reporting defaults to healthy.
func TestStatsSurfacesBackendHealth(t *testing.T) {
	hb := &healthBackend{}
	s := New(hb, Config{Workers: 1, QueueDepth: 1})
	defer s.Close()

	if s.Stats().Degraded || s.Degraded() {
		t.Fatal("healthy backend reported degraded")
	}
	hb.degraded = true
	if !s.Stats().Degraded || !s.Degraded() {
		t.Fatal("degraded backend not surfaced")
	}

	// A backend that is not a HealthReporter is never degraded.
	plain := New(&blockingBackend{}, Config{Workers: 1, QueueDepth: 1})
	defer plain.Close()
	if plain.Stats().Degraded || plain.Degraded() {
		t.Fatal("plain backend reported degraded")
	}

	// Health propagates through stacked schedulers.
	outer := New(s, Config{Workers: 1, QueueDepth: 1})
	defer outer.Close()
	if !outer.Degraded() {
		t.Fatal("degraded state did not propagate through stacked schedulers")
	}
}
