package sched

import (
	"time"

	"rbcsalted/internal/core"
)

// submitOpts is the resolved per-submission policy. Defaults come from
// the task itself (Class, Deadline) and the scheduler's hedge config.
type submitOpts struct {
	class    core.QoSClass
	deadline time.Time
	hedge    bool
}

// SubmitOption customises one Submit call.
type SubmitOption func(*submitOpts)

// WithClass sets the submission's QoS class, overriding the task's Class
// field. Interactive beats batch beats background at the queue head
// (subject to aging).
func WithClass(c core.QoSClass) SubmitOption {
	return func(o *submitOpts) { o.class = c }
}

// WithDeadline sets the submission's absolute deadline, overriding the
// task's Deadline field. Admission refuses the search with
// ErrDeadlineInfeasible if the deadline cannot be met; a zero time means
// no deadline.
func WithDeadline(t time.Time) SubmitOption {
	return func(o *submitOpts) { o.deadline = t }
}

// WithHedging enables or disables hedged dispatch for this submission,
// overriding the scheduler-wide HedgeConfig.Enabled default. Hedging
// still requires a trigger delay: the fixed configured one, or enough
// observed service samples to derive a percentile.
func WithHedging(on bool) SubmitOption {
	return func(o *submitOpts) { o.hedge = on }
}
