package cpu

import (
	"bytes"
	"context"
	"fmt"
	"time"

	"rbcsalted/internal/core"
	"rbcsalted/internal/cryptoalg"
	"rbcsalted/internal/iterseq"
	"rbcsalted/internal/u256"
)

// AwareBackend implements the ORIGINAL, algorithm-aware RBC search the
// paper improves on (§3): every candidate seed is run through public-key
// generation and the resulting key compared to the client's. It exists as
// the Table 7 baseline - key generation per seed is why the prior-work
// engines are dramatically slower than RBC-SALTED for PQC algorithms.
type AwareBackend struct {
	// Keygen generates the per-candidate public keys.
	Keygen cryptoalg.KeyGenerator
	// Workers is the thread count; 0 means GOMAXPROCS.
	Workers int
}

// AwareTask describes one algorithm-aware RBC search.
type AwareTask struct {
	// Base is S_init from the server's PUF image.
	Base u256.Uint256
	// TargetKey is the public key received from the client.
	TargetKey []byte
	// MaxDistance, Method, Exhaustive, CheckInterval and TimeLimit have
	// the same meaning as in core.Task.
	MaxDistance   int
	Method        iterseq.Method
	Exhaustive    bool
	CheckInterval int
	TimeLimit     time.Duration
}

// Name identifies the engine.
func (b *AwareBackend) Name() string {
	return fmt.Sprintf("RBC-%s(p=%d)", b.Keygen.Name(), b.workers())
}

func (b *AwareBackend) workers() int {
	w := (&Backend{Workers: b.Workers}).workers()
	return w
}

// Search runs the algorithm-aware search, generating a key per candidate.
// Result.HashesExecuted counts key generations. It follows the same
// cancellation contract as core.Backend.Search.
func (b *AwareBackend) Search(ctx context.Context, task AwareTask) (core.Result, error) {
	if task.MaxDistance < 0 || task.MaxDistance > 10 {
		return core.Result{}, fmt.Errorf("cpu: MaxDistance %d outside supported range", task.MaxDistance)
	}
	if len(task.TargetKey) == 0 {
		return core.Result{}, fmt.Errorf("cpu: aware search needs a target key")
	}
	if ctx == nil {
		ctx = context.Background()
	}
	start := time.Now()
	var res core.Result

	match := func(candidate u256.Uint256) bool {
		key := b.Keygen.PublicKey(candidate.Bytes())
		return bytes.Equal(key, task.TargetKey)
	}

	res.HashesExecuted++
	res.SeedsCovered++
	if match(task.Base) {
		res.Found = true
		res.Seed = task.Base
		res.Distance = 0
		if !task.Exhaustive {
			res.WallSeconds = time.Since(start).Seconds()
			res.DeviceSeconds = res.WallSeconds
			return res, nil
		}
	}

	deadline := time.Time{}
	if task.TimeLimit > 0 {
		deadline = start.Add(task.TimeLimit)
	}
	// Key generators are concurrency-safe, so every worker shares the
	// same scalar predicate; there is no batch form for keygen. An unset
	// CheckInterval is normalized by the engine (DefaultCheckInterval).
	newMatcher := core.MatchFuncFactory(match)
	for d := 1; d <= task.MaxDistance; d++ {
		found, seed, covered, timedOut, err := core.SearchShellHost(
			ctx, task.Base, d, task.Method, b.workers(), task.CheckInterval,
			task.Exhaustive, deadline, newMatcher)
		res.SeedsCovered += covered
		res.HashesExecuted += covered
		if found && !res.Found {
			res.Found = true
			res.Seed = seed
			res.Distance = d
		}
		if err != nil {
			res.WallSeconds = time.Since(start).Seconds()
			res.DeviceSeconds = res.WallSeconds
			return res, err
		}
		if timedOut {
			res.TimedOut = true
			break
		}
		if res.Found && !task.Exhaustive {
			break
		}
	}
	res.WallSeconds = time.Since(start).Seconds()
	res.DeviceSeconds = res.WallSeconds
	return res, nil
}
