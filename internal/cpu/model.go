package cpu

import (
	"context"
	"fmt"
	"time"

	"rbcsalted/internal/combin"
	"rbcsalted/internal/core"
	"rbcsalted/internal/device"
	"rbcsalted/internal/iterseq"
)

// ModelBackend is SALTED-CPU on the paper's PlatformA (2x AMD EPYC 7542,
// 64 cores), reproduced as an event-driven model: the match position is
// located analytically (core.PlanShells), per-seed cost ratios between
// hash algorithms and seed iterators are measured on the host, and the
// absolute scale is pinned to the paper's Table 5 anchors. Matches are
// verified by hashing.
type ModelBackend struct {
	// Alg is the hash algorithm searched with.
	Alg core.HashAlg
	// Workers is the modelled thread count; 0 means the paper's 64.
	Workers int
}

// Name implements core.Backend.
func (m *ModelBackend) Name() string {
	return fmt.Sprintf("SALTED-CPU-model(%s, p=%d, %s)", m.Alg, m.workers(), device.PlatformACPU.Name)
}

func (m *ModelBackend) workers() int {
	if m.Workers > 0 {
		return m.Workers
	}
	return device.PlatformACPU.Lanes
}

// anchorSeconds returns the paper's exhaustive d=5 search-only time for
// the algorithm on 64 cores.
func anchorSeconds(alg core.HashAlg) float64 {
	if alg == core.SHA1 {
		return device.AnchorCPUSHA1Seconds
	}
	return device.AnchorCPUSHA3Seconds
}

// Speedup returns the modelled parallel speedup of SALTED-CPU on p EPYC
// cores. The serial fraction is calibrated to §4.3: 59x (SHA-1) and 63x
// (SHA-3) on 64 cores, attributed to early-exit coordination and memory
// contention.
func Speedup(alg core.HashAlg, p int) float64 {
	alpha := (64.0/63.0 - 1.0) / 63.0
	if alg == core.SHA1 {
		alpha = (64.0/59.0 - 1.0) / 63.0
	}
	pf := float64(p)
	return pf / (1 + alpha*(pf-1))
}

// perSeedSeconds returns the modelled per-seed, per-worker cost for the
// given method at the modelled worker count.
//
// The anchor fixes the cost of the best iterator (the Gray / Chase-class
// minimal-change method) on 64 cores; other iterators scale by the
// host-measured ratio of (hash + iterate) work, and other worker counts
// scale by the calibrated Speedup curve.
func (m *ModelBackend) perSeedSeconds(method iterseq.Method) float64 {
	costs := device.MeasureHostCosts()
	hashNs := costs.SHA3Ns
	if m.Alg == core.SHA1 {
		hashNs = costs.SHA1Ns
	}
	factor := (hashNs + costs.IterNs[method]) / (hashNs + costs.IterNs[iterseq.GrayCode])

	// Single-core per-seed time from the 64-core anchor:
	// T(64) = u(5) x s / Speedup(64)  =>  s = anchor x Speedup(64) / u(5).
	s := anchorSeconds(m.Alg) * Speedup(m.Alg, 64) / device.ExhaustiveSeedsD5
	// Per-worker per-seed time at p workers: shell time is
	// (N/p) x perSeed = N x s / Speedup(p), so perSeed = s x p / Speedup(p).
	p := m.workers()
	return s * factor * float64(p) / Speedup(m.Alg, p)
}

// PredictCost implements core.CostModel: the expected modelled time and
// energy of the task on the paper's 64-core EPYC, without touching the
// oracle. Workers take equal shares of each shell, so an early-exit
// search prices the final shell at half a worker's share (the
// uniform-match expectation); every other shell is priced in full.
// Energy uses device.PowerCPUEst — an estimate, since Table 6 reports
// no CPU rows.
func (m *ModelBackend) PredictCost(task core.Task) (core.Cost, error) {
	if task.MaxDistance < 0 || task.MaxDistance > 10 {
		return core.Cost{}, fmt.Errorf("cpu: MaxDistance %d outside supported range", task.MaxDistance)
	}
	perSeed := m.perSeedSeconds(task.Method)
	workers := uint64(m.workers())
	seconds := 0.0
	if task.IncludeBase() {
		seconds += perSeed
	}
	for d := task.StartShell(); d <= task.MaxDistance; d++ {
		size, ok := combin.Binomial64(256, d)
		if !ok {
			return core.Cost{}, fmt.Errorf("cpu: C(256,%d) overflows uint64", d)
		}
		perWorker := (size + workers - 1) / workers
		seconds += float64(core.ExpectedShellCoverage(task, d, perWorker)) * perSeed
	}
	return core.Cost{
		Seconds: seconds,
		Joules:  device.PowerCPUEst.Energy(seconds),
	}, nil
}

// Search implements core.Backend with the event-driven model. The model
// spends no meaningful host time per shell, so cancellation is checked
// between shells — the finest granularity the model distinguishes.
func (m *ModelBackend) Search(ctx context.Context, task core.Task) (core.Result, error) {
	core.TraceSearchStart(task, m.Name())
	res, err := m.search(ctx, task)
	core.TraceSearchEnd(task, m.Name(), res, err)
	return res, err
}

func (m *ModelBackend) search(ctx context.Context, task core.Task) (core.Result, error) {
	workers := m.workers()
	plans, err := core.PlanShells(task, workers)
	if err != nil {
		return core.Result{}, err
	}
	perSeed := m.perSeedSeconds(task.Method)

	var res core.Result
	start := time.Now()

	// Distance 0.
	res.HashesExecuted++
	res.SeedsCovered++
	deviceSeconds := perSeed
	if core.HashSeed(m.Alg, task.Base).Equal(task.Target) {
		res.Found = true
		res.Seed = task.Base
		res.Distance = 0
	}

	if !(res.Found && !task.Exhaustive) {
		for _, p := range plans {
			if ctx != nil && ctx.Err() != nil {
				res.DeviceSeconds = deviceSeconds
				res.WallSeconds = time.Since(start).Seconds()
				return res, ctx.Err()
			}
			var shellSeconds float64
			var shellCovered uint64
			if p.HasMatch && !task.Exhaustive {
				shellSeconds = float64(p.MatchLocal) * perSeed
				shellCovered = p.CoveredAtExit(workers, task.CheckInterval)
			} else {
				shellSeconds = float64(p.PerWorkerMax) * perSeed
				shellCovered = p.Size
			}
			deviceSeconds += shellSeconds
			res.SeedsCovered += shellCovered
			st := core.ShellStat{
				Distance:      p.Distance,
				SeedsCovered:  shellCovered,
				DeviceSeconds: shellSeconds,
			}
			res.Shells = append(res.Shells, st)
			core.TraceShell(task, m.Name(), st)
			if p.HasMatch && !res.Found {
				// Verify the oracle's claim by hashing the candidate.
				res.HashesExecuted++
				if core.HashSeed(m.Alg, *task.Oracle).Equal(task.Target) {
					res.Found = true
					res.Seed = *task.Oracle
					res.Distance = p.Distance
				}
			}
			if res.Found && !task.Exhaustive {
				break
			}
		}
	}

	res.DeviceSeconds = deviceSeconds
	if task.TimeLimit > 0 && deviceSeconds > task.TimeLimit.Seconds() {
		res.TimedOut = true
	}
	// Estimated accounting (device.PowerCPUEst): Table 6 has no CPU rows,
	// so these numbers support the planner's energy policy rather than any
	// paper-table reproduction.
	res.EnergyJoules = device.PowerCPUEst.Energy(deviceSeconds)
	res.PeakWatts = device.PeakCPUEst
	res.WallSeconds = time.Since(start).Seconds()
	return res, nil
}
