package cpu

import (
	"context"
	"math/rand/v2"
	"testing"
	"time"

	"rbcsalted/internal/combin"
	"rbcsalted/internal/core"
	"rbcsalted/internal/iterseq"
	"rbcsalted/internal/puf"
	"rbcsalted/internal/u256"
)

func randSeed(r *rand.Rand) u256.Uint256 {
	return u256.New(r.Uint64(), r.Uint64(), r.Uint64(), r.Uint64())
}

func taskFor(alg core.HashAlg, base, client u256.Uint256, maxD int, method iterseq.Method) core.Task {
	oracle := client
	return core.Task{
		Base:        base,
		Target:      core.HashSeed(alg, client),
		MaxDistance: maxD,
		Method:      method,
		Oracle:      &oracle,
	}
}

func TestSearchFindsSeedAtEachDistance(t *testing.T) {
	r := rand.New(rand.NewPCG(1, 2))
	for _, alg := range core.HashAlgs() {
		for d := 0; d <= 2; d++ {
			base := randSeed(r)
			client := base
			client = puf.InjectNoise(client, base, d, r)
			b := &Backend{Alg: alg, Workers: 4}
			res, err := b.Search(context.Background(), taskFor(alg, base, client, 2, iterseq.GrayCode))
			if err != nil {
				t.Fatal(err)
			}
			if !res.Found || !res.Seed.Equal(client) || res.Distance != d {
				t.Errorf("%s d=%d: found=%v seed ok=%v distance=%d",
					alg, d, res.Found, res.Seed.Equal(client), res.Distance)
			}
			if res.HashesExecuted != res.SeedsCovered {
				t.Errorf("real backend must hash everything it covers: %d != %d",
					res.HashesExecuted, res.SeedsCovered)
			}
		}
	}
}

func TestSearchAllMethodsAgree(t *testing.T) {
	r := rand.New(rand.NewPCG(3, 4))
	base := randSeed(r)
	client := puf.InjectNoise(base, base, 2, r)
	for _, method := range iterseq.Methods() {
		b := &Backend{Alg: core.SHA3, Workers: 3}
		res, err := b.Search(context.Background(), taskFor(core.SHA3, base, client, 3, method))
		if err != nil {
			t.Fatalf("%v: %v", method, err)
		}
		if !res.Found || !res.Seed.Equal(client) || res.Distance != 2 {
			t.Errorf("%v: wrong result %+v", method, res)
		}
	}
}

func TestSearchNotFoundBeyondRadius(t *testing.T) {
	r := rand.New(rand.NewPCG(5, 6))
	base := randSeed(r)
	client := puf.InjectNoise(base, base, 3, r)
	b := &Backend{Alg: core.SHA3, Workers: 4}
	res, err := b.Search(context.Background(), taskFor(core.SHA3, base, client, 2, iterseq.GrayCode))
	if err != nil {
		t.Fatal(err)
	}
	if res.Found {
		t.Error("found a seed that lies outside the search radius")
	}
	want := combin.ExhaustiveSeeds(256, 2).Uint64()
	if res.SeedsCovered != want {
		t.Errorf("covered %d seeds, want u(2)=%d", res.SeedsCovered, want)
	}
}

func TestExhaustiveCoversEverythingAndStillFinds(t *testing.T) {
	r := rand.New(rand.NewPCG(7, 8))
	base := randSeed(r)
	client := puf.InjectNoise(base, base, 1, r)
	task := taskFor(core.SHA3, base, client, 2, iterseq.GrayCode)
	task.Exhaustive = true
	b := &Backend{Alg: core.SHA3, Workers: 4}
	res, err := b.Search(context.Background(), task)
	if err != nil {
		t.Fatal(err)
	}
	if !res.Found || res.Distance != 1 {
		t.Errorf("exhaustive search lost the match: %+v", res)
	}
	want := combin.ExhaustiveSeeds(256, 2).Uint64()
	if res.SeedsCovered != want {
		t.Errorf("exhaustive covered %d, want %d", res.SeedsCovered, want)
	}
}

func TestEarlyExitSavesWork(t *testing.T) {
	r := rand.New(rand.NewPCG(9, 10))
	base := randSeed(r)
	client := puf.InjectNoise(base, base, 2, r)
	b := &Backend{Alg: core.SHA1, Workers: 4}

	early, err := b.Search(context.Background(), taskFor(core.SHA1, base, client, 2, iterseq.GrayCode))
	if err != nil {
		t.Fatal(err)
	}
	task := taskFor(core.SHA1, base, client, 2, iterseq.GrayCode)
	task.Exhaustive = true
	exhaustive, err := b.Search(context.Background(), task)
	if err != nil {
		t.Fatal(err)
	}
	if early.SeedsCovered >= exhaustive.SeedsCovered {
		t.Errorf("early exit covered %d >= exhaustive %d",
			early.SeedsCovered, exhaustive.SeedsCovered)
	}
}

func TestCheckIntervalDoesNotChangeResult(t *testing.T) {
	r := rand.New(rand.NewPCG(11, 12))
	base := randSeed(r)
	client := puf.InjectNoise(base, base, 2, r)
	for _, interval := range []int{0, 1, 7, 64} {
		task := taskFor(core.SHA3, base, client, 2, iterseq.Alg515)
		task.CheckInterval = interval
		b := &Backend{Alg: core.SHA3, Workers: 5}
		res, err := b.Search(context.Background(), task)
		if err != nil {
			t.Fatal(err)
		}
		if !res.Found || !res.Seed.Equal(client) {
			t.Errorf("interval %d: lost match", interval)
		}
	}
}

func TestTimeout(t *testing.T) {
	r := rand.New(rand.NewPCG(13, 14))
	base := randSeed(r)
	// No match anywhere: search d=3 (2.8M seeds) with a tiny time limit.
	task := core.Task{
		Base:        base,
		Target:      core.HashSeed(core.SHA3, randSeed(r)),
		MaxDistance: 3,
		Method:      iterseq.GrayCode,
		TimeLimit:   time.Millisecond,
	}
	b := &Backend{Alg: core.SHA3, Workers: 2}
	res, err := b.Search(context.Background(), task)
	if err != nil {
		t.Fatal(err)
	}
	if !res.TimedOut || res.Found {
		t.Errorf("expected timeout without match, got %+v", res)
	}
}

func TestWorkerCountsEquivalent(t *testing.T) {
	r := rand.New(rand.NewPCG(15, 16))
	base := randSeed(r)
	client := puf.InjectNoise(base, base, 2, r)
	for _, workers := range []int{1, 2, 16, 100} {
		b := &Backend{Alg: core.SHA3, Workers: workers}
		res, err := b.Search(context.Background(), taskFor(core.SHA3, base, client, 2, iterseq.GrayCode))
		if err != nil {
			t.Fatal(err)
		}
		if !res.Found || !res.Seed.Equal(client) {
			t.Errorf("workers=%d: lost match", workers)
		}
	}
}

func TestInvalidMaxDistance(t *testing.T) {
	b := &Backend{Alg: core.SHA3}
	if _, err := b.Search(context.Background(), core.Task{MaxDistance: 11}); err == nil {
		t.Error("expected error for MaxDistance 11")
	}
	if _, err := b.Search(context.Background(), core.Task{MaxDistance: -1}); err == nil {
		t.Error("expected error for negative MaxDistance")
	}
}

func TestName(t *testing.T) {
	b := &Backend{Alg: core.SHA1, Workers: 8}
	if b.Name() == "" {
		t.Error("empty name")
	}
	m := &ModelBackend{Alg: core.SHA3}
	if m.Name() == "" {
		t.Error("empty model name")
	}
}

// --- ModelBackend ---

func TestModelMatchesAnchorExhaustive(t *testing.T) {
	r := rand.New(rand.NewPCG(17, 18))
	base := randSeed(r)
	client := puf.InjectNoise(base, base, 5, r)
	for _, alg := range core.HashAlgs() {
		task := taskFor(alg, base, client, 5, iterseq.GrayCode)
		task.Exhaustive = true
		m := &ModelBackend{Alg: alg}
		res, err := m.Search(context.Background(), task)
		if err != nil {
			t.Fatal(err)
		}
		if !res.Found || res.Distance != 5 {
			t.Fatalf("%s: model lost the match: %+v", alg, res)
		}
		want := anchorSeconds(alg)
		if rel(res.DeviceSeconds, want) > 0.02 {
			t.Errorf("%s: modelled %0.2fs, anchor %0.2fs", alg, res.DeviceSeconds, want)
		}
	}
}

func TestModelEarlyExitFasterThanExhaustive(t *testing.T) {
	r := rand.New(rand.NewPCG(19, 20))
	base := randSeed(r)
	client := puf.InjectNoise(base, base, 5, r)
	m := &ModelBackend{Alg: core.SHA3}
	early, err := m.Search(context.Background(), taskFor(core.SHA3, base, client, 5, iterseq.GrayCode))
	if err != nil {
		t.Fatal(err)
	}
	task := taskFor(core.SHA3, base, client, 5, iterseq.GrayCode)
	task.Exhaustive = true
	exh, err := m.Search(context.Background(), task)
	if err != nil {
		t.Fatal(err)
	}
	if !(early.DeviceSeconds < exh.DeviceSeconds) {
		t.Errorf("early %0.2fs not faster than exhaustive %0.2fs",
			early.DeviceSeconds, exh.DeviceSeconds)
	}
	if early.HashesExecuted >= 1000 {
		t.Errorf("model hashed %d seeds; it should only verify", early.HashesExecuted)
	}
}

func TestModelAgreesWithRealBackendAtSmallScale(t *testing.T) {
	// The model and the real engine must find the same seed at the same
	// distance (times differ: one is modelled EPYC, one is this host).
	r := rand.New(rand.NewPCG(21, 22))
	base := randSeed(r)
	client := puf.InjectNoise(base, base, 2, r)
	task := taskFor(core.SHA3, base, client, 3, iterseq.Gosper)
	real := &Backend{Alg: core.SHA3, Workers: 4}
	model := &ModelBackend{Alg: core.SHA3}
	rr, err := real.Search(context.Background(), task)
	if err != nil {
		t.Fatal(err)
	}
	mr, err := model.Search(context.Background(), task)
	if err != nil {
		t.Fatal(err)
	}
	if rr.Found != mr.Found || !rr.Seed.Equal(mr.Seed) || rr.Distance != mr.Distance {
		t.Errorf("real %+v vs model %+v disagree", rr, mr)
	}
}

func TestModelRejectsWrongOracle(t *testing.T) {
	// An oracle whose digest does not match must not be reported found.
	r := rand.New(rand.NewPCG(23, 24))
	base := randSeed(r)
	liar := puf.InjectNoise(base, base, 3, r)
	task := core.Task{
		Base:        base,
		Target:      core.HashSeed(core.SHA3, randSeed(r)), // unrelated digest
		MaxDistance: 5,
		Method:      iterseq.GrayCode,
		Oracle:      &liar,
	}
	m := &ModelBackend{Alg: core.SHA3}
	res, err := m.Search(context.Background(), task)
	if err != nil {
		t.Fatal(err)
	}
	if res.Found {
		t.Error("model trusted an unverified oracle")
	}
}

func TestModelTimeLimit(t *testing.T) {
	r := rand.New(rand.NewPCG(25, 26))
	base := randSeed(r)
	client := puf.InjectNoise(base, base, 5, r)
	task := taskFor(core.SHA3, base, client, 5, iterseq.GrayCode)
	task.Exhaustive = true
	task.TimeLimit = 20 * time.Second
	m := &ModelBackend{Alg: core.SHA3}
	res, err := m.Search(context.Background(), task)
	if err != nil {
		t.Fatal(err)
	}
	// Paper: SALTED-CPU with SHA-3 does not authenticate within T=20s.
	if !res.TimedOut {
		t.Errorf("expected timeout: modelled %0.2fs vs T=20s", res.DeviceSeconds)
	}
}

func TestSpeedupCalibration(t *testing.T) {
	if s := Speedup(core.SHA1, 64); rel(s, 59) > 0.01 {
		t.Errorf("SHA-1 speedup(64) = %0.2f, want 59", s)
	}
	if s := Speedup(core.SHA3, 64); rel(s, 63) > 0.01 {
		t.Errorf("SHA-3 speedup(64) = %0.2f, want 63", s)
	}
	if s := Speedup(core.SHA3, 1); rel(s, 1) > 1e-9 {
		t.Errorf("speedup(1) = %f, want 1", s)
	}
	// Monotone in p.
	prev := 0.0
	for p := 1; p <= 64; p *= 2 {
		s := Speedup(core.SHA1, p)
		if s <= prev {
			t.Errorf("speedup not monotone at p=%d", p)
		}
		prev = s
	}
}

func rel(got, want float64) float64 {
	d := got - want
	if d < 0 {
		d = -d
	}
	return d / want
}
