// Package cpu implements SALTED-CPU (paper §3.4): the genuinely executing
// multicore search engine. Workers are goroutines pinned one-to-one onto
// disjoint subranges of each Hamming shell, with an atomic early-exit flag
// in shared memory - the direct Go translation of the paper's OpenMP
// design, including the §3.2.2 fixed-padding hash fast path and the
// §3.2.1 seed iterators.
//
// This backend hashes every seed it covers, so it is exact at any scale
// you are willing to wait for; the experiment harness uses it directly for
// d <= 3 and uses ModelBackend (calibrated to the paper's 64-core EPYC)
// for the d = 5 table reproductions.
package cpu

import (
	"context"
	"fmt"
	"runtime"
	"sync"
	"time"

	"rbcsalted/internal/combin"
	"rbcsalted/internal/core"
	"rbcsalted/internal/device"
)

// Backend is the real multicore search engine.
type Backend struct {
	// Alg is the hash algorithm the engine searches with.
	Alg core.HashAlg
	// Workers is the thread count p; 0 means GOMAXPROCS.
	Workers int
	// ScalarMatch disables the 64-wide bit-sliced batch matcher, forcing
	// the one-seed-at-a-time hash path. It exists as the correctness
	// oracle of the equivalence tests and the baseline of the throughput
	// benchmarks; leave it false in production.
	ScalarMatch bool

	// matchers recycles HashMatchers across this backend's searches: each
	// carries ~180KB of kernel staging buffers plus the delta kernel's
	// resident sliced candidate state, and a serving CA builds one per
	// worker per search. Pool draws are Reset to the task's (alg, target)
	// — which invalidates any resident state from the previous task — so
	// reuse never leaks state across task switches. The zero value works;
	// a Backend must not be copied after first use.
	matchers sync.Pool
}

// Name implements core.Backend.
func (b *Backend) Name() string {
	return fmt.Sprintf("SALTED-CPU(%s, p=%d)", b.Alg, b.workers())
}

func (b *Backend) workers() int {
	if b.Workers > 0 {
		return b.Workers
	}
	return runtime.GOMAXPROCS(0)
}

// PredictCost implements core.CostModel: the expected wall time and
// energy of running the search on *this* host, priced from the measured
// host cost table (device.MeasureHostCosts) at the throughput of the
// calibrated default batch kernel, divided across the worker count. An
// early-exit search prices the final shell at half a worker's share
// (the uniform-match expectation). Energy uses the device.PowerCPUEst
// host estimate.
func (b *Backend) PredictCost(task core.Task) (core.Cost, error) {
	if task.MaxDistance < 0 || task.MaxDistance > 10 {
		return core.Cost{}, fmt.Errorf("cpu: MaxDistance %d outside supported range", task.MaxDistance)
	}
	costs := device.MeasureHostCosts()
	hashNs := costs.SHA3Ns
	if b.Alg == core.SHA1 {
		hashNs = costs.SHA1Ns
	}
	speedup := core.DefaultKernelSpeedup(b.Alg)
	if b.ScalarMatch {
		speedup = 1
	}
	perSeed := (hashNs/speedup + costs.IterNs[task.Method]) / 1e9
	workers := uint64(b.workers())
	seconds := 0.0
	if task.IncludeBase() {
		seconds += perSeed
	}
	for d := task.StartShell(); d <= task.MaxDistance; d++ {
		size, ok := combin.Binomial64(256, d)
		if !ok {
			return core.Cost{}, fmt.Errorf("cpu: C(256,%d) overflows uint64", d)
		}
		perWorker := (size + workers - 1) / workers
		seconds += float64(core.ExpectedShellCoverage(task, d, perWorker)) * perSeed
	}
	return core.Cost{
		Seconds: seconds,
		Joules:  device.PowerCPUEst.Energy(seconds),
	}, nil
}

// Search implements core.Backend by actually hashing every covered seed.
// Cancellation is polled in the shell loops every CheckInterval seeds;
// on cancellation the partial Result is returned with ctx.Err().
func (b *Backend) Search(ctx context.Context, task core.Task) (core.Result, error) {
	core.TraceSearchStart(task, b.Name())
	res, err := b.search(ctx, task)
	core.TraceSearchEnd(task, b.Name(), res, err)
	return res, err
}

func (b *Backend) search(ctx context.Context, task core.Task) (core.Result, error) {
	if task.MaxDistance < 0 || task.MaxDistance > 10 {
		return core.Result{}, fmt.Errorf("cpu: MaxDistance %d outside supported range", task.MaxDistance)
	}
	if ctx == nil {
		ctx = context.Background()
	}
	start := time.Now()
	var res core.Result

	// Distance 0: thread 0 checks S_init itself (Algorithm 1 lines 4-8).
	// Skipped when MinDistance says the caller already covered it.
	if task.IncludeBase() {
		res.HashesExecuted++
		res.SeedsCovered++
		if core.HashSeed(b.Alg, task.Base).Equal(task.Target) {
			res.Found = true
			res.Seed = task.Base
			res.Distance = 0
			if !task.Exhaustive {
				res.DeviceSeconds = time.Since(start).Seconds()
				res.WallSeconds = res.DeviceSeconds
				return res, nil
			}
		}
	}

	deadline := time.Time{}
	if task.TimeLimit > 0 {
		deadline = start.Add(task.TimeLimit)
	}

	newMatcher := core.PooledHashMatcherFactory(&b.matchers, b.Alg, task.Target)
	if b.ScalarMatch {
		newMatcher = core.ScalarMatcher(newMatcher)
	}
	for d := task.StartShell(); d <= task.MaxDistance; d++ {
		shellStart := time.Now()
		found, seed, covered, timedOut, err := core.SearchShellHost(
			ctx, task.Base, d, task.Method, b.workers(), task.EffectiveCheckInterval(),
			task.Exhaustive, deadline, newMatcher)
		st := core.ShellStat{
			Distance:      d,
			SeedsCovered:  covered,
			DeviceSeconds: time.Since(shellStart).Seconds(),
		}
		res.Shells = append(res.Shells, st)
		core.TraceShell(task, b.Name(), st)
		res.SeedsCovered += covered
		res.HashesExecuted += covered
		if found && !res.Found {
			res.Found = true
			res.Seed = seed
			res.Distance = d
		}
		if err != nil {
			res.WallSeconds = time.Since(start).Seconds()
			res.DeviceSeconds = res.WallSeconds
			return res, err
		}
		if timedOut {
			res.TimedOut = true
			break
		}
		if res.Found && !task.Exhaustive {
			break
		}
	}
	res.WallSeconds = time.Since(start).Seconds()
	res.DeviceSeconds = res.WallSeconds
	return res, nil
}
