// Package gpusim implements SALTED-GPU (paper §3.2) as a simulated NVIDIA
// A100: a SIMT execution model with kernel-per-Hamming-distance launches,
// an (n seeds per thread) x (b threads per block) tuning surface, a
// unified-memory early-exit flag, Chase-class iterator state in shared
// memory, and 1-3 device scaling.
//
// The simulator is hybrid (DESIGN.md §2/§5): for shells small enough to
// afford, the kernel's real Go code (fixed-padding hashes + seed
// iterators) executes on host goroutines and the simulator's answer IS the
// executed answer; for the paper-scale shells (billions of seeds) the
// match position is located analytically from the task oracle, verified
// by hashing, and the time charged by the structural cost model below.
//
// Calibration (DESIGN.md §5): per-hash absolute scale comes from the
// paper's exhaustive d=5 anchors (4.67 s SHA-3, 1.56 s SHA-1); the
// translation of host-measured per-seed iterator costs into device cycles
// is pinned by Table 4's Algorithm 515 row, after which the Gosper row,
// the (n, b) surface, the shared-memory ablation, the early-exit
// behaviour and all multi-GPU curves are model outputs.
package gpusim

import (
	"math"

	"rbcsalted/internal/core"
	"rbcsalted/internal/device"
	"rbcsalted/internal/iterseq"
)

// A100 structural parameters (architecture-public numbers).
const (
	numSMs          = 108
	maxThreadsPerSM = 2048
	maxBlocksPerSM  = 32
	// latencyHidingFactor is the resident-threads-per-core multiple the
	// model wants before memory latency is hidden; it is also the stall
	// multiplier a lone thread pays.
	latencyHidingFactor = 8
)

// Model is the A100 cost model. Construct with NewModel.
type Model struct {
	spec  device.Spec
	costs device.HostCosts

	// cyclesPerSeed[alg] is the calibrated effective core-cycles to
	// iterate (minimal-change) and hash one seed, per hash algorithm.
	cyclesSHA1 float64
	cyclesSHA3 float64

	// iterCyclesPerNs converts host-measured per-seed iterator overhead
	// (relative to the minimal-change iterator) into device cycles;
	// calibrated from Table 4's Algorithm 515 row.
	iterCyclesPerNs float64

	// threadSetupCycles is the one-time per-thread cost: seeking the seed
	// iterator to the thread's start rank plus state install.
	threadSetupCycles float64

	// kernelLaunchSeconds is the host-side cost of one kernel launch.
	kernelLaunchSeconds float64

	// perDeviceKernelSyncSeconds is the extra host serialization per
	// device-kernel in multi-GPU runs; calibrated to Figure 4's
	// exhaustive speedup.
	perDeviceKernelSyncSeconds float64

	// exitPropagationSeconds is the early-exit drain across devices;
	// calibrated to Figure 4's early-exit speedup.
	exitPropagationSeconds float64

	// globalStateExtraCycles is the per-seed penalty for keeping
	// sequential-iterator state in global instead of shared memory
	// (paper §3.2.3).
	globalStateExtraCycles float64

	// exitCheckCycles is the per-poll cost of reading the cached
	// unified-memory exit flag (paper §4.4 finds it negligible).
	exitCheckCycles float64
}

// NewModel builds the calibrated A100 model. Host costs are measured on
// first use and cached process-wide.
func NewModel() *Model {
	return NewModelWithCosts(device.MeasureHostCosts())
}

// NewModelWithCosts builds the A100 model from an explicit host cost
// table instead of the live measurement. The model consumes only ratios
// of these costs, so a caller that wants reproducible pricing (tests,
// offline what-if analysis) can pin a representative table: the live
// measurement legitimately shifts with the execution environment — a
// loaded host, or the race detector's instrumentation, can compress or
// even invert the gap between two iterators' host costs.
func NewModelWithCosts(costs device.HostCosts) *Model {
	m := &Model{
		spec:  device.A100,
		costs: costs,
	}
	m.kernelLaunchSeconds = 5e-6
	// Figure 4 calibration: exhaustive SHA-3 speedup 2.87x on 3 GPUs
	// implies ~4.6 ms of per-device-kernel serialization; the extra gap
	// to the 2.66x early-exit speedup implies ~30 ms of exit drain.
	m.perDeviceKernelSyncSeconds = 4.6e-3
	m.exitPropagationSeconds = 30e-3
	m.exitCheckCycles = 2

	// First-order scale from raw throughput, then renormalized so the
	// full exhaustive d=5 search at the default (n, b) reproduces each
	// anchor exactly (launch, setup and tail terms are percent-level).
	m.cyclesSHA3 = float64(m.spec.Lanes) * m.spec.ClockHz * device.AnchorGPUSHA3Seconds / device.ExhaustiveSeedsD5
	m.cyclesSHA1 = float64(m.spec.Lanes) * m.spec.ClockHz * device.AnchorGPUSHA1Seconds / device.ExhaustiveSeedsD5
	m.threadSetupCycles = 2 * m.cyclesSHA3 // seek ~ two seeds' worth of work
	for i := 0; i < 3; i++ {
		m.cyclesSHA3 *= device.AnchorGPUSHA3Seconds /
			m.exhaustiveD5Seconds(core.SHA3, iterseq.GrayCode)
		m.cyclesSHA1 *= device.AnchorGPUSHA1Seconds /
			m.exhaustiveD5Seconds(core.SHA1, iterseq.GrayCode)
	}

	// Iterator-cost translation from Table 4's Algorithm 515 row: the
	// extra device cycles per seed, divided by the extra host nanoseconds
	// per seed.
	extraSeconds := device.AnchorGPUAlg515Seconds - device.AnchorGPUSHA3Seconds
	extraCycles := extraSeconds * float64(m.spec.Lanes) * m.spec.ClockHz / device.ExhaustiveSeedsD5
	extraNs := m.costs.IterNs[iterseq.Alg515] - m.costs.IterNs[iterseq.GrayCode]
	if extraNs <= 0 {
		extraNs = 1 // degenerate host measurement; keep the model finite
	}
	m.iterCyclesPerNs = extraCycles / extraNs

	// §3.2.3: global-memory iterator state slows SHA-1 by 1.20x; the
	// same absolute per-seed latency applies to every hash.
	m.globalStateExtraCycles = 0.20 * m.cyclesSHA1
	return m
}

// exhaustiveD5Seconds prices a full exhaustive d=0..5 search on one
// device at the default kernel parameters (the anchor scenario).
func (m *Model) exhaustiveD5Seconds(alg core.HashAlg, method iterseq.Method) float64 {
	shellSizes := []uint64{256, 32640, 2763520, 174792640, 8809549056}
	total := m.kernelLaunchSeconds // d=0 check
	for _, s := range shellSizes {
		total += m.shellSeconds(s, alg, method, DefaultParams, true, 1)
	}
	return total
}

// cyclesPerSeed returns iterate+hash cycles for one candidate.
func (m *Model) cyclesPerSeed(alg core.HashAlg, method iterseq.Method) float64 {
	base := m.cyclesSHA3
	if alg == core.SHA1 {
		base = m.cyclesSHA1
	}
	extraNs := m.costs.IterNs[method] - m.costs.IterNs[iterseq.GrayCode]
	if extraNs < 0 {
		extraNs = 0
	}
	return base + m.iterCyclesPerNs*extraNs
}

// KernelParams is one (n, b) configuration point.
type KernelParams struct {
	SeedsPerThread  int // n
	ThreadsPerBlock int // b
}

// DefaultParams is the paper's best configuration (Figure 3).
var DefaultParams = KernelParams{SeedsPerThread: 100, ThreadsPerBlock: 128}

// schedEfficiency models block-scheduling losses as a function of block
// size: very large blocks drain raggedly at kernel end, very small blocks
// pay per-block dispatch. The curve peaks near the paper's b=128.
func schedEfficiency(threadsPerBlock int) float64 {
	b := float64(threadsPerBlock)
	return 1.0 / (1.0 + 0.10*(b/maxThreadsPerSM) + 0.02*(64.0/b))
}

// shellSeconds prices one kernel over `seeds` candidates on one device.
//
// The model: threads = ceil(seeds/n) are resident up to the per-SM block
// and thread caps; each resident thread retires one seed-cycle per
// latencyHidingFactor clocks, capped at one per core per clock. The
// kernel additionally pays a launch, per-thread setup, a wave-quantized
// tail when oversubscribed, and a drain of one thread's serial runtime at
// the end.
func (m *Model) shellSeconds(seeds uint64, alg core.HashAlg, method iterseq.Method, p KernelParams, sharedState bool, checkInterval int) float64 {
	if seeds == 0 {
		return m.kernelLaunchSeconds
	}
	n := uint64(p.SeedsPerThread)
	if n == 0 {
		n = uint64(DefaultParams.SeedsPerThread)
	}
	b := p.ThreadsPerBlock
	if b == 0 {
		b = DefaultParams.ThreadsPerBlock
	}
	threads := (seeds + n - 1) / n

	perSeed := m.cyclesPerSeed(alg, method)
	if !sharedState && sequential(method) {
		perSeed += m.globalStateExtraCycles
	}
	if checkInterval < 1 {
		checkInterval = 1
	}
	perSeed += m.exitCheckCycles / float64(checkInterval)

	blocksPerSM := math.Min(maxBlocksPerSM, math.Floor(maxThreadsPerSM/float64(b)))
	if blocksPerSM < 1 {
		blocksPerSM = 1
	}
	capacity := numSMs * blocksPerSM * float64(b)
	resident := math.Min(float64(threads), capacity)
	// Seed-cycles retired per second.
	rate := math.Min(float64(m.spec.Lanes), resident/latencyHidingFactor) *
		m.spec.ClockHz * schedEfficiency(b)

	totalCycles := float64(seeds)*perSeed + float64(threads)*m.threadSetupCycles

	// Wave-quantization tail for oversubscribed kernels.
	tail := 1.0
	blocks := math.Ceil(float64(threads) / float64(b))
	blocksPerWave := float64(numSMs) * blocksPerSM
	if blocks > blocksPerWave {
		waves := math.Ceil(blocks / blocksPerWave)
		tail = waves * blocksPerWave / blocks
	}

	// End-of-kernel drain: the last thread's serial runtime.
	perThread := math.Min(float64(n), float64(seeds))
	drain := perThread * perSeed * latencyHidingFactor / m.spec.ClockHz

	return m.kernelLaunchSeconds + totalCycles*tail/rate + drain
}

// sequential reports whether the method carries per-thread state that the
// shared-memory optimization (paper §3.2.3) applies to.
func sequential(method iterseq.Method) bool {
	return method == iterseq.GrayCode || method == iterseq.Gosper || method == iterseq.Mifsud154
}

// ShellSeconds exposes the kernel cost model for parameter-sweep
// experiments (Figure 3's heatmap, the §4.4 flag-interval sweep, the
// §3.2.3 shared-memory ablation).
func (m *Model) ShellSeconds(seeds uint64, alg core.HashAlg, method iterseq.Method, p KernelParams, sharedState bool, checkInterval int) float64 {
	return m.shellSeconds(seeds, alg, method, p, sharedState, checkInterval)
}

// ExhaustiveD5SecondsAt prices the full exhaustive d=0..5 anchor scenario
// at an arbitrary kernel configuration.
func (m *Model) ExhaustiveD5SecondsAt(alg core.HashAlg, method iterseq.Method, p KernelParams, sharedState bool, checkInterval int) float64 {
	shellSizes := []uint64{256, 32640, 2763520, 174792640, 8809549056}
	total := m.kernelLaunchSeconds
	for _, s := range shellSizes {
		total += m.shellSeconds(s, alg, method, p, sharedState, checkInterval)
	}
	return total
}
