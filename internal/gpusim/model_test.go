package gpusim

import (
	"testing"

	"rbcsalted/internal/core"
	"rbcsalted/internal/iterseq"
)

func TestCyclesPerSeedOrdering(t *testing.T) {
	m := NewModel()
	// SHA-3 costs more than SHA-1, and every iterator costs at least the
	// minimal-change baseline.
	if !(m.cyclesPerSeed(core.SHA1, iterseq.GrayCode) < m.cyclesPerSeed(core.SHA3, iterseq.GrayCode)) {
		t.Error("SHA-1 not cheaper than SHA-3")
	}
	base := m.cyclesPerSeed(core.SHA3, iterseq.GrayCode)
	for _, method := range iterseq.Methods() {
		if c := m.cyclesPerSeed(core.SHA3, method); c < base {
			t.Errorf("%v cheaper than the minimal-change baseline", method)
		}
	}
}

func TestShellSecondsMonotoneInSeeds(t *testing.T) {
	// Below lane saturation, time is flat at one thread's serial runtime
	// (all threads run concurrently); past saturation it grows with the
	// workload. Non-decreasing overall.
	m := NewModel()
	prev := 0.0
	for _, seeds := range []uint64{1, 1000, 1e6, 1e8, 8809549056} {
		v := m.shellSeconds(seeds, core.SHA3, iterseq.GrayCode, DefaultParams, true, 1)
		if v < prev {
			t.Errorf("shell time decreased at %d seeds: %g < %g", seeds, v, prev)
		}
		prev = v
	}
	// The saturated region must grow strictly.
	a := m.shellSeconds(1e8, core.SHA3, iterseq.GrayCode, DefaultParams, true, 1)
	b := m.shellSeconds(1e9, core.SHA3, iterseq.GrayCode, DefaultParams, true, 1)
	if b <= a {
		t.Errorf("saturated shell time not increasing: %g <= %g", b, a)
	}
	// Zero seeds still costs a launch.
	if v := m.shellSeconds(0, core.SHA3, iterseq.GrayCode, DefaultParams, true, 1); v != m.kernelLaunchSeconds {
		t.Errorf("empty shell = %g, want launch cost", v)
	}
}

func TestTinyKernelsAreNegligibleVsAnchor(t *testing.T) {
	// With the fixed (n=100, b=128) configuration a tiny shell costs one
	// thread's serial runtime (~3 ms) - real but negligible against the
	// 4.67 s d=5 shell.
	m := NewModel()
	for _, seeds := range []uint64{256, 32640} {
		v := m.shellSeconds(seeds, core.SHA3, iterseq.GrayCode, DefaultParams, true, 1)
		if v > 10e-3 {
			t.Errorf("%d-seed kernel priced at %g s", seeds, v)
		}
	}
}

func TestSchedEfficiencyPeaksNear128(t *testing.T) {
	best := schedEfficiency(128)
	for _, b := range []int{32, 64, 256, 512, 1024} {
		if schedEfficiency(b) > best {
			t.Errorf("b=%d more efficient than b=128", b)
		}
	}
	// The basin is flat: 64..256 within 1%.
	for _, b := range []int{64, 256} {
		if best-schedEfficiency(b) > 0.01 {
			t.Errorf("b=%d too far below the optimum", b)
		}
	}
}

func TestDefaultParamsAreTheModelOptimum(t *testing.T) {
	m := NewModel()
	best := m.ExhaustiveD5SecondsAt(core.SHA3, iterseq.GrayCode, DefaultParams, true, 1)
	for _, n := range []int{1, 10, 1000, 10000, 100000} {
		for _, b := range []int{32, 64, 256, 512, 1024} {
			v := m.ExhaustiveD5SecondsAt(core.SHA3, iterseq.GrayCode,
				KernelParams{SeedsPerThread: n, ThreadsPerBlock: b}, true, 1)
			if v < best {
				t.Errorf("(n=%d, b=%d) = %.3fs beats the paper's optimum %.3fs", n, b, v, best)
			}
		}
	}
}

func TestAnchorCalibrationConverged(t *testing.T) {
	m := NewModel()
	got := m.exhaustiveD5Seconds(core.SHA3, iterseq.GrayCode)
	if rel(got, 4.67) > 0.001 {
		t.Errorf("SHA-3 anchor calibration residual: %.4fs vs 4.67s", got)
	}
	got = m.exhaustiveD5Seconds(core.SHA1, iterseq.GrayCode)
	if rel(got, 1.56) > 0.001 {
		t.Errorf("SHA-1 anchor calibration residual: %.4fs vs 1.56s", got)
	}
}
