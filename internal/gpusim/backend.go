package gpusim

import (
	"context"
	"errors"
	"fmt"
	"runtime"
	"time"

	"rbcsalted/internal/combin"
	"rbcsalted/internal/core"
	"rbcsalted/internal/device"
	"rbcsalted/internal/iterseq"
	"rbcsalted/internal/u256"
)

// Config assembles a SALTED-GPU backend.
type Config struct {
	// Alg is the search hash.
	Alg core.HashAlg
	// Devices is the number of A100s (1-3 in the paper); 0 means 1.
	Devices int
	// Params is the (n, b) kernel configuration; zero value means the
	// paper's best (n=100, b=128).
	Params KernelParams
	// SharedMemoryState keeps sequential-iterator state in shared memory
	// (paper §3.2.3). NewBackend enables it; clear it to measure the
	// ablation.
	SharedMemoryState bool
	// CheckInterval is seeds hashed between exit-flag polls (paper §4.4).
	// Zero means core.DefaultCheckInterval; the §4.4 sweep shows the
	// interval has no measurable model impact.
	CheckInterval int
	// ExecBudget is the largest shell (in seeds) the simulator fully
	// executes on the host instead of planning analytically; 0 means
	// DefaultExecBudget.
	ExecBudget uint64
	// HostWorkers sets goroutines for real execution; 0 means GOMAXPROCS.
	HostWorkers int
}

// DefaultExecBudget fully executes shells up to 64Ki seeds (d <= 2);
// larger shells run a validation sample and are planned analytically.
// Raise it (e.g. to 4<<20 for d <= 3) when wall-clock time permits.
const DefaultExecBudget = 1 << 16

// Backend is the simulated SALTED-GPU engine.
type Backend struct {
	cfg   Config
	model *Model
}

// NewBackend builds a backend with the paper's default configuration
// applied to unset fields.
func NewBackend(cfg Config) *Backend {
	if cfg.Devices == 0 {
		cfg.Devices = 1
	}
	if cfg.Params.SeedsPerThread == 0 {
		cfg.Params.SeedsPerThread = DefaultParams.SeedsPerThread
	}
	if cfg.Params.ThreadsPerBlock == 0 {
		cfg.Params.ThreadsPerBlock = DefaultParams.ThreadsPerBlock
	}
	if cfg.ExecBudget == 0 {
		cfg.ExecBudget = DefaultExecBudget
	}
	if cfg.CheckInterval == 0 {
		cfg.CheckInterval = core.DefaultCheckInterval
	}
	return &Backend{cfg: cfg, model: NewModel()}
}

// Name implements core.Backend.
func (b *Backend) Name() string {
	return fmt.Sprintf("SALTED-GPU(%s, %dxA100, n=%d, b=%d)",
		b.cfg.Alg, b.cfg.Devices, b.cfg.Params.SeedsPerThread, b.cfg.Params.ThreadsPerBlock)
}

// powerModel returns the calibrated power draw for the configured hash.
func (b *Backend) powerModel() (device.PowerModel, float64) {
	if b.cfg.Alg == core.SHA1 {
		return device.PowerGPUSHA1, device.PeakGPUSHA1
	}
	return device.PowerGPUSHA3, device.PeakGPUSHA3
}

// PredictCost implements core.CostModel: the expected device time and
// energy of the task priced by the same calibrated kernel model that
// charges real searches, without touching the oracle. An early-exit
// search is priced at half the final shell (the uniform-match
// expectation); every other shell is priced in full.
func (b *Backend) PredictCost(task core.Task) (core.Cost, error) {
	if task.MaxDistance < 0 || task.MaxDistance > 10 {
		return core.Cost{}, fmt.Errorf("gpusim: MaxDistance %d outside supported range", task.MaxDistance)
	}
	if task.CheckInterval == 0 {
		task.CheckInterval = b.cfg.CheckInterval
	}
	seconds := 0.0
	if task.IncludeBase() {
		seconds += b.model.kernelLaunchSeconds
	}
	g := uint64(b.cfg.Devices)
	for d := task.StartShell(); d <= task.MaxDistance; d++ {
		size, ok := combin.Binomial64(256, d)
		if !ok {
			return core.Cost{}, fmt.Errorf("gpusim: C(256,%d) overflows uint64", d)
		}
		perDevice := (size + g - 1) / g
		full := b.model.shellSeconds(perDevice, b.cfg.Alg, task.Method, b.cfg.Params,
			b.cfg.SharedMemoryState, task.CheckInterval)
		expect := core.ExpectedShellCoverage(task, d, size)
		seconds += full * float64(expect) / float64(size)
		if b.cfg.Devices > 1 {
			seconds += b.model.perDeviceKernelSyncSeconds * float64(b.cfg.Devices)
		}
	}
	if !task.Exhaustive && b.cfg.Devices > 1 {
		seconds += b.model.exitPropagationSeconds
	}
	power, _ := b.powerModel()
	return core.Cost{
		Seconds: seconds,
		Joules:  power.Energy(seconds) * float64(b.cfg.Devices),
	}, nil
}

// Search implements core.Backend. Within-budget shells run real host
// execution and poll ctx every CheckInterval seeds; analytically planned
// shells check ctx at shell boundaries (the modelled kernel launches).
func (b *Backend) Search(ctx context.Context, task core.Task) (core.Result, error) {
	core.TraceSearchStart(task, b.Name())
	res, err := b.search(ctx, task)
	core.TraceSearchEnd(task, b.Name(), res, err)
	return res, err
}

func (b *Backend) search(ctx context.Context, task core.Task) (core.Result, error) {
	if task.MaxDistance < 0 || task.MaxDistance > 10 {
		return core.Result{}, fmt.Errorf("gpusim: MaxDistance %d outside supported range", task.MaxDistance)
	}
	if ctx == nil {
		ctx = context.Background()
	}
	if task.CheckInterval == 0 {
		task.CheckInterval = b.cfg.CheckInterval
	}
	start := time.Now()
	var res core.Result
	var clock device.VirtualClock

	// Distance 0: a single-seed host check; device cost is one kernel.
	// Skipped when MinDistance says the caller already covered it.
	if task.IncludeBase() {
		res.HashesExecuted++
		res.SeedsCovered++
		clock.AdvanceSeconds(b.model.kernelLaunchSeconds)
		if core.HashSeed(b.cfg.Alg, task.Base).Equal(task.Target) {
			res.Found = true
			res.Seed = task.Base
			res.Distance = 0
		}
	}

	if !(res.Found && !task.Exhaustive) {
		for d := task.StartShell(); d <= task.MaxDistance; d++ {
			if ctx.Err() != nil {
				res.DeviceSeconds = clock.Seconds()
				res.WallSeconds = time.Since(start).Seconds()
				return res, ctx.Err()
			}
			before := clock.Seconds()
			coveredBefore := res.SeedsCovered
			done, err := b.searchShell(ctx, task, d, &res, &clock)
			if err != nil {
				if errors.Is(err, context.Canceled) || errors.Is(err, context.DeadlineExceeded) {
					res.DeviceSeconds = clock.Seconds()
					res.WallSeconds = time.Since(start).Seconds()
					return res, err
				}
				return core.Result{}, err
			}
			st := core.ShellStat{
				Distance:      d,
				SeedsCovered:  res.SeedsCovered - coveredBefore,
				DeviceSeconds: clock.Seconds() - before,
			}
			res.Shells = append(res.Shells, st)
			core.TraceShell(task, b.Name(), st)
			if done {
				break
			}
			if task.TimeLimit > 0 && clock.Seconds() > task.TimeLimit.Seconds() {
				res.TimedOut = true
				break
			}
		}
	}

	res.DeviceSeconds = clock.Seconds()
	if task.TimeLimit > 0 && res.DeviceSeconds > task.TimeLimit.Seconds() {
		res.TimedOut = true
	}
	power, peak := b.powerModel()
	res.EnergyJoules = power.Energy(res.DeviceSeconds) * float64(b.cfg.Devices)
	res.PeakWatts = peak * float64(b.cfg.Devices)
	res.WallSeconds = time.Since(start).Seconds()
	return res, nil
}

// searchShell covers one Hamming shell, returning done=true if the search
// should stop (match found in early-exit mode).
func (b *Backend) searchShell(ctx context.Context, task core.Task, d int, res *core.Result, clock *device.VirtualClock) (bool, error) {
	size, ok := combin.Binomial64(256, d)
	if !ok {
		return false, fmt.Errorf("gpusim: C(256,%d) overflows uint64", d)
	}

	if size <= b.cfg.ExecBudget {
		// Real execution: the kernel's actual Go code runs on the host.
		found, seed, covered, _, err := core.SearchShellHost(
			ctx, task.Base, d, task.Method, hostWorkers(b.cfg.HostWorkers),
			task.CheckInterval, task.Exhaustive, time.Time{},
			core.HashMatcherFactory(b.cfg.Alg, task.Target))
		res.HashesExecuted += covered
		if err != nil {
			// Cancelled mid-kernel: account the partial coverage without a
			// modelled charge (the kernel was aborted, not completed).
			res.SeedsCovered += covered
			return false, err
		}
		// Charge modelled time by the match's analytic position (GPU
		// blocks stream in rank order), not by the host goroutines'
		// incidental progress.
		modelCovered := size
		if found && !task.Exhaustive {
			rank, errRank := core.MatchRank(task.Method, task.Base, seed)
			if errRank != nil {
				return false, errRank
			}
			modelCovered = rank + 1
		}
		b.chargeShell(task, size, found, modelCovered, res, clock)
		if found && !res.Found {
			res.Found = true
			res.Seed = seed
			res.Distance = d
		}
		return res.Found && !task.Exhaustive, nil
	}

	// Analytic planning for paper-scale shells: locate the match from the
	// oracle, verify it by hashing, charge modelled time.
	var matched bool
	var seed u256.Uint256
	if task.Oracle != nil && core.MatchShell(task.Base, *task.Oracle) == d {
		res.HashesExecuted++
		if core.HashSeed(b.cfg.Alg, *task.Oracle).Equal(task.Target) {
			matched = true
			seed = *task.Oracle
		}
	}
	// Execute a validation sample of real kernel work so the modelled
	// shell is backed by executed code on every search.
	const sampleSeeds = 512
	sampled := uint64(0)
	it, err := iterseq.New(task.Method, 256, d, 0, sampleSeeds)
	if err != nil {
		return false, err
	}
	c := make([]int, d)
	for it.Next(c) {
		candidate := iterseq.ApplySeed(task.Base, c)
		if core.HashSeed(b.cfg.Alg, candidate).Equal(task.Target) && !matched {
			matched = true
			seed = candidate
		}
		sampled++
	}
	res.HashesExecuted += sampled

	covered := size
	if matched && !task.Exhaustive {
		rank, errRank := core.MatchRank(task.Method, task.Base, seed)
		if errRank != nil {
			return false, errRank
		}
		covered = rank + 1
	}
	b.chargeShell(task, size, matched, covered, res, clock)
	if matched && !res.Found {
		res.Found = true
		res.Seed = seed
		res.Distance = d
	}
	return res.Found && !task.Exhaustive, nil
}

// chargeShell advances the virtual clock for one shell. Each device takes
// an equal contiguous slice of the shell; blocks stream through the SMs in
// rank order, so an early exit at global fraction f costs ~f of the full
// per-device kernel plus the exit drain.
func (b *Backend) chargeShell(task core.Task, size uint64, found bool, covered uint64, res *core.Result, clock *device.VirtualClock) {
	g := uint64(b.cfg.Devices)
	perDevice := (size + g - 1) / g
	full := b.model.shellSeconds(perDevice, b.cfg.Alg, task.Method, b.cfg.Params,
		b.cfg.SharedMemoryState, task.CheckInterval)
	// Host-side serialization per device-kernel (multi-GPU only).
	sync := 0.0
	if b.cfg.Devices > 1 {
		sync = b.model.perDeviceKernelSyncSeconds * float64(b.cfg.Devices)
	}

	if found && !task.Exhaustive {
		frac := float64(covered) / float64(size)
		if frac > 1 {
			frac = 1
		}
		clock.AdvanceSeconds(full*frac + sync)
		if b.cfg.Devices > 1 {
			clock.AdvanceSeconds(b.model.exitPropagationSeconds)
		}
		res.SeedsCovered += covered
		return
	}
	clock.AdvanceSeconds(full + sync)
	res.SeedsCovered += size
}

func hostWorkers(configured int) int {
	if configured > 0 {
		return configured
	}
	return runtime.GOMAXPROCS(0)
}
