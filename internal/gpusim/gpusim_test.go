package gpusim

import (
	"context"
	"math/rand/v2"
	"testing"

	"rbcsalted/internal/core"
	"rbcsalted/internal/device"
	"rbcsalted/internal/iterseq"
	"rbcsalted/internal/puf"
	"rbcsalted/internal/u256"
)

func randSeed(r *rand.Rand) u256.Uint256 {
	return u256.New(r.Uint64(), r.Uint64(), r.Uint64(), r.Uint64())
}

func taskFor(alg core.HashAlg, base, client u256.Uint256, maxD int, method iterseq.Method) core.Task {
	oracle := client
	return core.Task{
		Base:        base,
		Target:      core.HashSeed(alg, client),
		MaxDistance: maxD,
		Method:      method,
		Oracle:      &oracle,
	}
}

func rel(got, want float64) float64 {
	d := got - want
	if d < 0 {
		d = -d
	}
	return d / want
}

func TestSearchFindsSeedRealExecution(t *testing.T) {
	// d <= 2 shells are far below ExecBudget: the kernel really runs.
	r := rand.New(rand.NewPCG(1, 1))
	for _, alg := range core.HashAlgs() {
		base := randSeed(r)
		client := puf.InjectNoise(base, base, 2, r)
		b := NewBackend(Config{Alg: alg, SharedMemoryState: true})
		task := taskFor(alg, base, client, 2, iterseq.GrayCode)
		task.Oracle = nil // real execution must not need the oracle
		res, err := b.Search(context.Background(), task)
		if err != nil {
			t.Fatal(err)
		}
		if !res.Found || !res.Seed.Equal(client) || res.Distance != 2 {
			t.Errorf("%s: %+v", alg, res)
		}
		if res.HashesExecuted < 1000 {
			t.Errorf("%s: expected real execution, hashed only %d", alg, res.HashesExecuted)
		}
	}
}

func TestSearchFindsSeedPlannedD5(t *testing.T) {
	// d=5 exceeds the exec budget: the oracle locates, hashing verifies.
	r := rand.New(rand.NewPCG(2, 2))
	base := randSeed(r)
	client := puf.InjectNoise(base, base, 5, r)
	b := NewBackend(Config{Alg: core.SHA3, SharedMemoryState: true})
	res, err := b.Search(context.Background(), taskFor(core.SHA3, base, client, 5, iterseq.GrayCode))
	if err != nil {
		t.Fatal(err)
	}
	if !res.Found || !res.Seed.Equal(client) || res.Distance != 5 {
		t.Fatalf("planned search failed: %+v", res)
	}
	if res.WallSeconds > 30 {
		t.Errorf("planned d=5 search took %.1fs wall; planning is broken", res.WallSeconds)
	}
}

func TestAnchorExhaustiveD5(t *testing.T) {
	// The calibrated model must land near the paper's Table 5 GPU rows.
	r := rand.New(rand.NewPCG(3, 3))
	base := randSeed(r)
	client := puf.InjectNoise(base, base, 5, r)
	cases := []struct {
		alg  core.HashAlg
		want float64
	}{
		{core.SHA3, 4.67},
		{core.SHA1, 1.56},
	}
	for _, c := range cases {
		b := NewBackend(Config{Alg: c.alg, SharedMemoryState: true})
		task := taskFor(c.alg, base, client, 5, iterseq.GrayCode)
		task.Exhaustive = true
		res, err := b.Search(context.Background(), task)
		if err != nil {
			t.Fatal(err)
		}
		if rel(res.DeviceSeconds, c.want) > 0.05 {
			t.Errorf("%s exhaustive d=5: modelled %.2fs, paper %.2fs",
				c.alg, res.DeviceSeconds, c.want)
		}
		t.Logf("%s exhaustive d=5: modelled %.2fs (paper %.2fs), energy %.0f J",
			c.alg, res.DeviceSeconds, c.want, res.EnergyJoules)
	}
}

func TestTable4IteratorOrdering(t *testing.T) {
	// Chase-class < Gosper < Alg515 for SHA-3 exhaustive d=5 (Table 4).
	//
	// The ordering claim is about the model's host→device cost
	// translation, so it is priced on a pinned representative host cost
	// table (one reference measurement of this repo's iterators,
	// unloaded host). The live measurement cannot carry a strict
	// ordering assertion: the race detector's instrumentation taxes the
	// Gray iterator's int-array walk more than Gosper's limb
	// arithmetic, compressing — on a race build, inverting — the host
	// gap the model translates.
	costs := device.HostCosts{
		SHA1Ns: 178, SHA3Ns: 3490,
		IterNs: map[iterseq.Method]float64{
			iterseq.GrayCode:  79,
			iterseq.Gosper:    173,
			iterseq.Alg515:    309,
			iterseq.Mifsud154: 72,
		},
	}
	m := NewModelWithCosts(costs)
	times := map[iterseq.Method]float64{}
	for _, method := range []iterseq.Method{iterseq.GrayCode, iterseq.Gosper, iterseq.Alg515} {
		times[method] = m.ExhaustiveD5SecondsAt(
			core.SHA3, method, DefaultParams, sequential(method), core.DefaultCheckInterval)
	}
	t.Logf("iterator times: gray=%.2f gosper=%.2f alg515=%.2f (paper: 4.67 / 6.04 / 7.53)",
		times[iterseq.GrayCode], times[iterseq.Gosper], times[iterseq.Alg515])
	if !(times[iterseq.GrayCode] < times[iterseq.Gosper] &&
		times[iterseq.Gosper] < times[iterseq.Alg515]) {
		t.Errorf("iterator ordering broken: %v", times)
	}
	// The Gosper row is a prediction, not an anchor: it must land near
	// the paper's 6.04 s, between the two anchored rows.
	if rel(times[iterseq.Gosper], 6.04) > 0.10 {
		t.Errorf("gosper prediction %.2fs, paper 6.04s", times[iterseq.Gosper])
	}
}

func TestFigure3BowlShape(t *testing.T) {
	// The (n, b) tuning surface must be a bowl: the paper's optimum
	// (n=100, b=128) beats extreme corners.
	m := NewModel()
	const shell = uint64(8809549056) // C(256,5)
	at := func(n, b int) float64 {
		return m.shellSeconds(shell, core.SHA3, iterseq.GrayCode,
			KernelParams{SeedsPerThread: n, ThreadsPerBlock: b}, true, 1)
	}
	best := at(100, 128)
	corners := map[string]float64{
		"n=1,b=128":    at(1, 128),
		"n=1e6,b=128":  at(1000000, 128),
		"n=100,b=1024": at(100, 1024),
	}
	for name, v := range corners {
		if v <= best {
			t.Errorf("corner %s (%.2fs) not worse than optimum (%.2fs)", name, v, best)
		}
	}
	t.Logf("optimum %.2fs; corners: %v", best, corners)
}

func TestFlagCheckIntervalNoImpact(t *testing.T) {
	// Paper §4.4: polling the exit flag every seed vs every 64 seeds makes
	// no measurable difference.
	m := NewModel()
	const shell = uint64(8809549056)
	t1 := m.shellSeconds(shell, core.SHA3, iterseq.GrayCode, DefaultParams, true, 1)
	t64 := m.shellSeconds(shell, core.SHA3, iterseq.GrayCode, DefaultParams, true, 64)
	if rel(t1, t64) > 0.01 {
		t.Errorf("check interval changed time by %.1f%%", 100*rel(t1, t64))
	}
}

func TestSharedMemoryStateSpeedup(t *testing.T) {
	// Paper §3.2.3: shared-memory state gives 1.20x for SHA-1 and ~1.01x
	// for SHA-3.
	m := NewModel()
	const shell = uint64(8809549056)
	ratio := func(alg core.HashAlg) float64 {
		with := m.shellSeconds(shell, alg, iterseq.GrayCode, DefaultParams, true, 1)
		without := m.shellSeconds(shell, alg, iterseq.GrayCode, DefaultParams, false, 1)
		return without / with
	}
	r1, r3 := ratio(core.SHA1), ratio(core.SHA3)
	t.Logf("shared-memory speedup: SHA-1 %.2fx (paper 1.20), SHA-3 %.2fx (paper 1.01)", r1, r3)
	if rel(r1, 1.20) > 0.02 {
		t.Errorf("SHA-1 shared-memory speedup %.3f, want ~1.20", r1)
	}
	if r3 < 1.0 || r3 > 1.15 {
		t.Errorf("SHA-3 shared-memory speedup %.3f, want small (~1.01)", r3)
	}
	// Random-access iterators carry no state: toggling must be a no-op.
	w := m.shellSeconds(shell, core.SHA3, iterseq.Alg515, DefaultParams, true, 1)
	wo := m.shellSeconds(shell, core.SHA3, iterseq.Alg515, DefaultParams, false, 1)
	if w != wo {
		t.Error("shared-memory toggle affected a stateless iterator")
	}
}

func TestMultiGPUScaling(t *testing.T) {
	// Figure 4: exhaustive SHA-3 speedup ~2.87x on 3 GPUs, early-exit
	// lower (~2.66x), SHA-1 lower than SHA-3 for the same search type.
	r := rand.New(rand.NewPCG(5, 5))
	base := randSeed(r)
	client := puf.InjectNoise(base, base, 5, r)

	speedup := func(alg core.HashAlg, exhaustive bool, devices int) float64 {
		run := func(g int) float64 {
			b := NewBackend(Config{Alg: alg, Devices: g, SharedMemoryState: true})
			task := taskFor(alg, base, client, 5, iterseq.GrayCode)
			task.Exhaustive = exhaustive
			res, err := b.Search(context.Background(), task)
			if err != nil {
				t.Fatal(err)
			}
			return res.DeviceSeconds
		}
		return run(1) / run(devices)
	}

	exh3 := speedup(core.SHA3, true, 3)
	ee3 := speedup(core.SHA3, false, 3)
	exh1 := speedup(core.SHA1, true, 3)
	ee1 := speedup(core.SHA1, false, 3)
	t.Logf("3xA100 speedups: SHA3 exh %.2f (paper 2.87), SHA3 ee %.2f (paper 2.66), SHA1 exh %.2f, SHA1 ee %.2f",
		exh3, ee3, exh1, ee1)
	if rel(exh3, 2.87) > 0.03 {
		t.Errorf("SHA-3 exhaustive 3-GPU speedup %.2f, paper 2.87", exh3)
	}
	if !(ee3 < exh3) {
		t.Error("early-exit speedup should trail exhaustive")
	}
	if !(exh1 < exh3) || !(ee1 < ee3) {
		t.Error("SHA-1 should scale worse than SHA-3")
	}
	if ee3 < 2.2 || ee3 > 2.9 {
		t.Errorf("SHA-3 early-exit speedup %.2f far from paper's 2.66", ee3)
	}
	// 2-GPU points must sit between 1x and the 3-GPU speedup.
	two := speedup(core.SHA3, true, 2)
	if two <= 1 || two >= exh3 {
		t.Errorf("2-GPU speedup %.2f not between 1 and %.2f", two, exh3)
	}
}

func TestEnergyAccounting(t *testing.T) {
	r := rand.New(rand.NewPCG(6, 6))
	base := randSeed(r)
	client := puf.InjectNoise(base, base, 5, r)
	b := NewBackend(Config{Alg: core.SHA3, SharedMemoryState: true})
	task := taskFor(core.SHA3, base, client, 5, iterseq.GrayCode)
	task.Exhaustive = true
	res, err := b.Search(context.Background(), task)
	if err != nil {
		t.Fatal(err)
	}
	// Table 6: 946.55 J for the SHA-3 exhaustive search.
	if rel(res.EnergyJoules, 946.55) > 0.06 {
		t.Errorf("energy %.1f J, paper 946.55 J", res.EnergyJoules)
	}
	if res.PeakWatts != 258.29 {
		t.Errorf("peak %.2f W, paper 258.29 W", res.PeakWatts)
	}
}

func TestNotFoundBeyondRadius(t *testing.T) {
	r := rand.New(rand.NewPCG(7, 7))
	base := randSeed(r)
	client := puf.InjectNoise(base, base, 4, r)
	b := NewBackend(Config{Alg: core.SHA3, SharedMemoryState: true})
	res, err := b.Search(context.Background(), taskFor(core.SHA3, base, client, 3, iterseq.GrayCode))
	if err != nil {
		t.Fatal(err)
	}
	if res.Found {
		t.Error("found a match outside the radius")
	}
}

func TestOracleIsVerifiedNotTrusted(t *testing.T) {
	r := rand.New(rand.NewPCG(8, 8))
	base := randSeed(r)
	liar := puf.InjectNoise(base, base, 5, r)
	task := core.Task{
		Base:        base,
		Target:      core.HashSeed(core.SHA3, randSeed(r)),
		MaxDistance: 5,
		Method:      iterseq.GrayCode,
		Oracle:      &liar,
	}
	b := NewBackend(Config{Alg: core.SHA3, SharedMemoryState: true})
	res, err := b.Search(context.Background(), task)
	if err != nil {
		t.Fatal(err)
	}
	if res.Found {
		t.Error("backend trusted a lying oracle")
	}
}

func TestDefaultsAndName(t *testing.T) {
	b := NewBackend(Config{Alg: core.SHA3})
	if b.cfg.Devices != 1 || b.cfg.Params != DefaultParams || b.cfg.ExecBudget != DefaultExecBudget {
		t.Errorf("defaults not applied: %+v", b.cfg)
	}
	if b.Name() == "" {
		t.Error("empty name")
	}
	if _, err := b.Search(context.Background(), core.Task{MaxDistance: 99}); err == nil {
		t.Error("expected distance error")
	}
}

func TestTimeLimit(t *testing.T) {
	r := rand.New(rand.NewPCG(9, 9))
	base := randSeed(r)
	// Unfindable target with a limit below the d=5 exhaustive time.
	task := core.Task{
		Base:        base,
		Target:      core.HashSeed(core.SHA3, randSeed(r)),
		MaxDistance: 5,
		Method:      iterseq.GrayCode,
		TimeLimit:   2 * 1e9, // 2s in time.Duration units
	}
	b := NewBackend(Config{Alg: core.SHA3, SharedMemoryState: true})
	res, err := b.Search(context.Background(), task)
	if err != nil {
		t.Fatal(err)
	}
	if !res.TimedOut {
		t.Errorf("expected timeout at 2s with modelled %.2fs", res.DeviceSeconds)
	}
}

func TestMultiGPUWithAlternativeIterator(t *testing.T) {
	// Devices x non-default iterator must still find the seed and charge
	// more time than the minimal-change method.
	r := rand.New(rand.NewPCG(31, 31))
	base := randSeed(r)
	client := puf.InjectNoise(base, base, 5, r)
	run := func(m iterseq.Method) float64 {
		b := NewBackend(Config{Alg: core.SHA3, Devices: 2, SharedMemoryState: true})
		task := taskFor(core.SHA3, base, client, 5, m)
		task.Exhaustive = true
		res, err := b.Search(context.Background(), task)
		if err != nil {
			t.Fatal(err)
		}
		if !res.Found || !res.Seed.Equal(client) {
			t.Fatalf("%v on 2 GPUs lost the match", m)
		}
		return res.DeviceSeconds
	}
	if gray, alg := run(iterseq.GrayCode), run(iterseq.Alg515); alg <= gray {
		t.Errorf("Alg515 (%.2fs) not slower than minimal-change (%.2fs) on 2 GPUs", alg, gray)
	}
}

func TestExecBudgetBoundary(t *testing.T) {
	// A shell exactly at the budget runs for real; one above is planned.
	r := rand.New(rand.NewPCG(32, 32))
	base := randSeed(r)
	client := puf.InjectNoise(base, base, 2, r)
	// d=2 shell is 32640 seeds. Budget below that forces planning, which
	// without an oracle must fall back to the validation sample only.
	b := NewBackend(Config{Alg: core.SHA1, ExecBudget: 1000, SharedMemoryState: true})
	task := taskFor(core.SHA1, base, client, 2, iterseq.GrayCode)
	task.Oracle = nil
	res, err := b.Search(context.Background(), task)
	if err != nil {
		t.Fatal(err)
	}
	// Without the oracle and with the match outside the sample prefix,
	// the planned path may legitimately miss it - but it must never
	// report a false positive or hash the whole shell.
	if res.Found && !res.Seed.Equal(client) {
		t.Error("false positive")
	}
	if res.HashesExecuted > 5000 {
		t.Errorf("planned path hashed %d seeds", res.HashesExecuted)
	}
	// With the oracle it must always find it.
	task.Oracle = &client
	res, err = b.Search(context.Background(), task)
	if err != nil || !res.Found || !res.Seed.Equal(client) {
		t.Fatalf("oracle-backed planned search failed: %+v (%v)", res, err)
	}
}
