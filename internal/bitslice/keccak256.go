package bitslice

import "rbcsalted/internal/keccak"

// The 256-wide Keccak kernel. Same gate decomposition as KeccakF -
// theta, rho+pi as wiring, chi, iota - but evaluated in a fused round
// that minimizes passes over the 50KB state (which no longer fits L1):
//
//	parity:  C[x] = xor of column x              (read state once)
//	mix:     D[x] = C[x-1] ^ ROTL(C[x+1], 1)     (small)
//	apply:   state[x,y] ^= D[x]                  (read+write state)
//	fused:   out[pi(x,y)] = chi over ROTL(in[x,y], rho(x,y))
//
// The fused step gathers each chi input directly from its pre-rho
// source position and ping-pongs between two states, so the permuted
// intermediate state never materializes.
//
// The flat Slice256 layout makes one bit column exactly one 256-bit
// vector register, so on amd64 with AVX2 each round runs in assembly
// with one VPXOR/VPANDN per four instances where the 64-wide kernel
// spends one scalar op per instance word. Everywhere else the same
// round runs as portable Go over the flat words.
//
// Gate counts are recorded in the same word-level unit as the 64-wide
// kernel (one count per machine-word operation) and charge the
// canonical decomposition, not the fused evaluation order - the fused
// form performs exactly the canonical number of word operations anyway,
// it just orders them to touch memory less. Gates per seed therefore
// come out identical to the 64-wide kernel and the APU cycle model is
// unaffected.

// invRhoPi[dst] names the state lane whose left-rotation by rot lands in
// lane dst of the permuted state: the gather form of rhoPi.
var invRhoPi = func() (m [25]struct{ src, rot int }) {
	for _, mv := range rhoPi {
		m[mv.dst] = struct{ src, rot int }{mv.src, mv.rot}
	}
	return
}()

// KeccakState256 is a wide bit-sliced Keccak-f[1600] state: 25 lanes,
// each held as a Slice256 of Width256 independent instances.
type KeccakState256 [25]Slice256

// KeccakF256 applies Keccak-f[1600] to all Width256 instances. Counts
// are word-level operations: 4 per gate, as each gate is applied to four
// words here.
func (e *Engine) KeccakF256(s *KeccakState256) {
	c, d := &e.wideC, &e.wideD
	cur, nxt := s, &e.wideTmp
	if haveAVX512 {
		// The AVX-512 round carries the theta parities across rounds
		// (each round's chi stores leave the next round's parities in c);
		// prime them once for round 0.
		keccakParity256AVX512(c, cur)
	}
	for round := 0; round < keccak.Rounds; round++ {
		if haveAVX512 {
			keccakRound256AVX512(nxt, cur, c, d)
		} else if haveAVX2 {
			keccakRound256AVX2(nxt, cur, c, d)
		} else {
			keccakRound256Go(nxt, cur, c, d)
		}
		e.counts.Xor += 4 * (5*64*4 + 5*64 + 25*64)
		e.counts.Not += 4 * 25 * 64
		e.counts.And += 4 * 25 * 64
		e.counts.Xor += 4 * 25 * 64

		// iota: flip the bits of lane 0 where the round constant is set.
		// Under the parity-carrying contract the same flips must land in
		// the lane's column parity, or round N+1 would see stale theta.
		rc := keccak.RoundConstant(round)
		l := &nxt[0]
		if haveAVX512 {
			c0 := &c[0]
			for z := 0; z < 64; z++ {
				if rc>>uint(z)&1 == 1 {
					l[z*4] = ^l[z*4]
					l[z*4+1] = ^l[z*4+1]
					l[z*4+2] = ^l[z*4+2]
					l[z*4+3] = ^l[z*4+3]
					c0[z*4] = ^c0[z*4]
					c0[z*4+1] = ^c0[z*4+1]
					c0[z*4+2] = ^c0[z*4+2]
					c0[z*4+3] = ^c0[z*4+3]
					e.counts.Not += 4
				}
			}
		} else {
			for z := 0; z < 64; z++ {
				if rc>>uint(z)&1 == 1 {
					l[z*4] = ^l[z*4]
					l[z*4+1] = ^l[z*4+1]
					l[z*4+2] = ^l[z*4+2]
					l[z*4+3] = ^l[z*4+3]
					e.counts.Not += 4
				}
			}
		}

		cur, nxt = nxt, cur
	}
	// keccak.Rounds is even, so the final swap leaves the result in s.
	if cur != s {
		*s = *cur
	}
}

// keccakRound256Go is the portable round: theta (leaving the D-mixed
// state in cur), then the fused rho+pi+chi gather into nxt. cur is
// scratch afterwards; nxt is fully written. The assembly round has the
// identical contract.
func keccakRound256Go(nxt, cur *KeccakState256, c, d *[5]Slice256) {
	// theta: column parities, the mix word D, then D into every lane.
	for x := 0; x < 5; x++ {
		a0, a1, a2, a3, a4 := &cur[x], &cur[x+5], &cur[x+10], &cur[x+15], &cur[x+20]
		cx := &c[x]
		for i := 0; i < 4*64; i++ {
			cx[i] = a0[i] ^ a1[i] ^ a2[i] ^ a3[i] ^ a4[i]
		}
	}
	for x := 0; x < 5; x++ {
		cm := &c[(x+4)%5]
		cp := &c[(x+1)%5]
		dx := &d[x]
		// D = C[x-1] ^ ROTL(C[x+1], 1): bit z of the rotated lane is
		// bit z-1, i.e. 4 flat words back, wrapping from the top row.
		dx[0] = cm[0] ^ cp[4*63]
		dx[1] = cm[1] ^ cp[4*63+1]
		dx[2] = cm[2] ^ cp[4*63+2]
		dx[3] = cm[3] ^ cp[4*63+3]
		for i := 4; i < 4*64; i++ {
			dx[i] = cm[i] ^ cp[i-4]
		}
	}
	for l := 0; l < 25; l++ {
		al := &cur[l]
		dl := &d[l%5]
		for i := 0; i < 4*64; i++ {
			al[i] ^= dl[i]
		}
	}

	// Fused rho + pi + chi, one output plane per pass: each chi input
	// t_x is gathered from its pre-rotation source column, so the
	// permuted state never materializes and each source lane is read
	// exactly once.
	for y := 0; y < 25; y += 5 {
		m0, m1, m2, m3, m4 := &invRhoPi[y], &invRhoPi[y+1], &invRhoPi[y+2], &invRhoPi[y+3], &invRhoPi[y+4]
		s0, s1, s2, s3, s4 := &cur[m0.src], &cur[m1.src], &cur[m2.src], &cur[m3.src], &cur[m4.src]
		o0, o1, o2, o3, o4 := &nxt[y], &nxt[y+1], &nxt[y+2], &nxt[y+3], &nxt[y+4]
		for z := 0; z < 64; z++ {
			z0 := ((z - m0.rot) & 63) * 4
			z1 := ((z - m1.rot) & 63) * 4
			z2 := ((z - m2.rot) & 63) * 4
			z3 := ((z - m3.rot) & 63) * 4
			z4 := ((z - m4.rot) & 63) * 4
			zo := z * 4
			for g := 0; g < 4; g++ {
				t0 := s0[z0+g]
				t1 := s1[z1+g]
				t2 := s2[z2+g]
				t3 := s3[z3+g]
				t4 := s4[z4+g]
				o0[zo+g] = t0 ^ (^t1 & t2)
				o1[zo+g] = t1 ^ (^t2 & t3)
				o2[zo+g] = t2 ^ (^t3 & t4)
				o3[zo+g] = t3 ^ (^t4 & t0)
				o4[zo+g] = t4 ^ (^t0 & t1)
			}
		}
	}
}

// SHA3Seeds256Wide hashes Width256 32-byte seeds with SHA3-256 in one
// wide bit-sliced permutation, using the same fixed padding as
// keccak.Sum256Seed (see SHA3Seeds256).
func (e *Engine) SHA3Seeds256Wide(seeds *[Width256][32]byte) [Width256][32]byte {
	lanes := e.SHA3Seeds256WideSliced(seeds)
	var out [Width256][32]byte
	for lane := range lanes {
		vals := Unpack256(&lanes[lane])
		for i := 0; i < Width256; i++ {
			putLEUint64(out[i][lane*8:], vals[i])
		}
	}
	return out
}

// SHA3Seeds256WideSliced is SHA3Seeds256Wide without the final unpack:
// the four rate lanes that form the 256-bit digest are returned still in
// wide bit-sliced form. The batched host matcher compares in this
// domain, skipping the unpack entirely.
func (e *Engine) SHA3Seeds256WideSliced(seeds *[Width256][32]byte) [4]Slice256 {
	var vals [4][Width256]uint64
	for lane := 0; lane < 4; lane++ {
		for i := 0; i < Width256; i++ {
			vals[lane][i] = leUint64(seeds[i][lane*8:])
		}
	}
	return e.SHA3Seeds256WideSlicedVals(&vals)
}

// SHA3Seeds256WideSlicedVals is SHA3Seeds256WideSliced taking the four
// 64-bit message lanes of each seed already extracted (lane l of seed i
// in vals[l][i], little-endian as hashed). Callers that hold seeds as
// native integers feed them here directly, skipping a byte-serialization
// round trip per candidate.
func (e *Engine) SHA3Seeds256WideSlicedVals(vals *[4][Width256]uint64) [4]Slice256 {
	var msg [4]Slice256
	PackSeedVals256(&msg, vals)
	return e.SHA3Msg256WideSliced(&msg)
}

// The constant (non-message) lanes of the wide seed-hashing state: the
// SHA-3 domain/padding byte in lane 4 and the final padding bit closing
// the rate in lane 16, splatted across all Width256 instances. Package
// constants because they are identical for every compression — read-only
// after init, safe to share across engines.
var (
	splatDomain256 = Splat256(uint64(keccak.DomainSHA3))
	splatPad256    = Splat256(0x80 << 56)
)

// SHA3Msg256WideSliced runs the wide fixed-padding SHA3-256 compression
// over message lanes already resident in sliced form, leaving msg
// intact: this is the compression entry of the delta-advance path
// (DESIGN.md §16), where msg persists across batches and is stepped by
// DeltaFill instead of re-packed. The permutation state is engine
// scratch (KeccakF256 destroys its input, so the resident lanes are
// copied in and the constant lanes re-splatted each call — ~50KB of
// writes, the same state build the pack-per-batch path paid, minus the
// transposes).
func (e *Engine) SHA3Msg256WideSliced(msg *[4]Slice256) [4]Slice256 {
	s := &e.wideMsg
	s[0], s[1], s[2], s[3] = msg[0], msg[1], msg[2], msg[3]
	s[4] = splatDomain256
	clear(s[5:16])
	s[16] = splatPad256
	clear(s[17:25])

	e.KeccakF256(s)

	return [4]Slice256{s[0], s[1], s[2], s[3]}
}
