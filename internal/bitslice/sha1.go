package bitslice

// Bit-sliced SHA-1. Unlike Keccak, SHA-1 is built on modular 32-bit
// addition, which has no free bit-parallel form: each add becomes a
// ripple-carry adder chain of XOR/AND/OR gates. This is exactly why the
// paper observes SHA-1 needing fewer bit processors per PE than SHA-3 on
// the APU (less state) while still costing real cycles per hash.

const (
	sha1K0 = 0x5A827999
	sha1K1 = 0x6ED9EBA1
	sha1K2 = 0x8F1BBCDC
	sha1K3 = 0xCA62C1D6
)

// splat32 returns a Slice32 with the same 32-bit constant in every instance.
func splat32(v uint32) Slice32 {
	var out Slice32
	for z := 0; z < 32; z++ {
		if v>>uint(z)&1 == 1 {
			out[z] = ^uint64(0)
		}
	}
	return out
}

// add32 returns a + b per instance via a ripple-carry adder:
// 2 XOR + 2 AND + 1 OR per bit (carry-out of the top bit is discarded).
func (e *Engine) add32(a, b *Slice32) Slice32 {
	var out Slice32
	var carry uint64
	for z := 0; z < 32; z++ {
		axb := a[z] ^ b[z]
		out[z] = axb ^ carry
		carry = (a[z] & b[z]) | (carry & axb)
	}
	e.counts.Xor += 2 * 32
	e.counts.And += 2 * 32
	e.counts.Or += 32
	return out
}

// xor32 returns a ^ b per instance.
func (e *Engine) xor32(a, b *Slice32) Slice32 {
	var out Slice32
	for z := 0; z < 32; z++ {
		out[z] = a[z] ^ b[z]
	}
	e.counts.Xor += 32
	return out
}

// rotl32 rotates every instance left by n bits. Pure wiring: no gates.
func rotl32(a *Slice32, n int) Slice32 {
	var out Slice32
	for z := 0; z < 32; z++ {
		out[z] = a[(z-n+32)%32]
	}
	return out
}

// ch returns (b AND c) OR (NOT b AND d), computed as d ^ (b & (c ^ d)):
// 2 XOR + 1 AND per bit.
func (e *Engine) ch(b, c, d *Slice32) Slice32 {
	var out Slice32
	for z := 0; z < 32; z++ {
		out[z] = d[z] ^ (b[z] & (c[z] ^ d[z]))
	}
	e.counts.Xor += 2 * 32
	e.counts.And += 32
	return out
}

// maj returns the bitwise majority of b, c, d, computed as
// b ^ ((b ^ c) & (b ^ d)): 3 XOR + 1 AND per bit.
func (e *Engine) maj(b, c, d *Slice32) Slice32 {
	var out Slice32
	for z := 0; z < 32; z++ {
		out[z] = b[z] ^ ((b[z] ^ c[z]) & (b[z] ^ d[z]))
	}
	e.counts.Xor += 3 * 32
	e.counts.And += 32
	return out
}

// parity returns b ^ c ^ d: 2 XOR per bit.
func (e *Engine) parity(b, c, d *Slice32) Slice32 {
	var out Slice32
	for z := 0; z < 32; z++ {
		out[z] = b[z] ^ c[z] ^ d[z]
	}
	e.counts.Xor += 2 * 32
	return out
}

// SHA1Seeds hashes Width 32-byte seeds with SHA-1 in one bit-sliced
// compression, using the fixed single-block padding for 256-bit messages.
func (e *Engine) SHA1Seeds(seeds *[Width][32]byte) [Width][20]byte {
	// Message schedule: 8 seed words (big-endian), then the fixed pad.
	var w [80]Slice32
	var vals [Width]uint32
	for word := 0; word < 8; word++ {
		for i := 0; i < Width; i++ {
			b := seeds[i][word*4:]
			vals[i] = uint32(b[0])<<24 | uint32(b[1])<<16 | uint32(b[2])<<8 | uint32(b[3])
		}
		w[word] = Pack32(&vals)
	}
	w[8] = splat32(0x80000000)
	// w[9..14] stay zero.
	w[15] = splat32(256) // message length in bits
	for i := 16; i < 80; i++ {
		t := e.xor32(&w[i-3], &w[i-8])
		t = e.xor32(&t, &w[i-14])
		t = e.xor32(&t, &w[i-16])
		w[i] = rotl32(&t, 1)
	}

	a := splat32(0x67452301)
	b := splat32(0xEFCDAB89)
	c := splat32(0x98BADCFE)
	d := splat32(0x10325476)
	ee := splat32(0xC3D2E1F0)

	for i := 0; i < 80; i++ {
		var f Slice32
		var k uint32
		switch {
		case i < 20:
			f = e.ch(&b, &c, &d)
			k = sha1K0
		case i < 40:
			f = e.parity(&b, &c, &d)
			k = sha1K1
		case i < 60:
			f = e.maj(&b, &c, &d)
			k = sha1K2
		default:
			f = e.parity(&b, &c, &d)
			k = sha1K3
		}
		rot := rotl32(&a, 5)
		t := e.add32(&rot, &f)
		t = e.add32(&t, &ee)
		t = e.add32(&t, &w[i])
		kc := splat32(k)
		t = e.add32(&t, &kc)
		ee, d, c, b, a = d, c, rotl32(&b, 30), a, t
	}

	h0 := splat32(0x67452301)
	h1 := splat32(0xEFCDAB89)
	h2 := splat32(0x98BADCFE)
	h3 := splat32(0x10325476)
	h4 := splat32(0xC3D2E1F0)
	h0 = e.add32(&h0, &a)
	h1 = e.add32(&h1, &b)
	h2 = e.add32(&h2, &c)
	h3 = e.add32(&h3, &d)
	h4 = e.add32(&h4, &ee)

	var out [Width][20]byte
	for word, h := range []*Slice32{&h0, &h1, &h2, &h3, &h4} {
		vals = Unpack32(h)
		for i := 0; i < Width; i++ {
			out[i][word*4] = byte(vals[i] >> 24)
			out[i][word*4+1] = byte(vals[i] >> 16)
			out[i][word*4+2] = byte(vals[i] >> 8)
			out[i][word*4+3] = byte(vals[i])
		}
	}
	return out
}
