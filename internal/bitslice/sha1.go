package bitslice

// Bit-sliced SHA-1. Unlike Keccak, SHA-1 is built on modular 32-bit
// addition, which has no free bit-parallel form: each add becomes a
// ripple-carry adder chain of XOR/AND/OR gates. This is exactly why the
// paper observes SHA-1 needing fewer bit processors per PE than SHA-3 on
// the APU (less state) while still costing real cycles per hash.
//
// The gate decomposition (and the counts recorded for the APU cycle
// model) is the canonical ripple-carry one; the evaluation is arranged
// for the host: adds run in place with the operands held in locals so
// the destination may alias a source, rotations are two block copies,
// the round constants are splatted once at package init, and the five
// working variables live in a fixed ring of buffers so the per-round
// role rotation moves pointers instead of 256-byte values.

const (
	sha1K0 = 0x5A827999
	sha1K1 = 0x6ED9EBA1
	sha1K2 = 0x8F1BBCDC
	sha1K3 = 0xCA62C1D6
)

// splat32 returns a Slice32 with the same 32-bit constant in every instance.
func splat32(v uint32) Slice32 {
	var out Slice32
	for z := 0; z < 32; z++ {
		if v>>uint(z)&1 == 1 {
			out[z] = ^uint64(0)
		}
	}
	return out
}

// sha1KS holds the four round constants pre-splatted across all lanes.
var sha1KS = [4]Slice32{
	splat32(sha1K0), splat32(sha1K1), splat32(sha1K2), splat32(sha1K3),
}

// sha1Init holds the initial hash value pre-splatted across all lanes.
var sha1Init = [5]Slice32{
	splat32(0x67452301), splat32(0xEFCDAB89), splat32(0x98BADCFE),
	splat32(0x10325476), splat32(0xC3D2E1F0),
}

// addInto stores a + b per instance into dst via a ripple-carry adder:
// 2 XOR + 2 AND + 1 OR per bit (carry-out of the top bit is discarded).
// dst may alias a or b.
func (e *Engine) addInto(dst, a, b *Slice32) {
	var carry uint64
	for z := 0; z < 32; z++ {
		az, bz := a[z], b[z]
		axb := az ^ bz
		dst[z] = axb ^ carry
		carry = (az & bz) | (carry & axb)
	}
	e.counts.Xor += 2 * 32
	e.counts.And += 2 * 32
	e.counts.Or += 32
}

// rotlInto stores a rotated left by n bits (per instance) into dst.
// Pure wiring: no gates. dst must not alias a.
func rotlInto(dst, a *Slice32, n int) {
	copy(dst[n:], a[:32-n])
	copy(dst[:n], a[32-n:])
}

// The three round bodies below compute t = ROTL5(a) + f(b,c,d) + e +
// w + k into e's buffer in a single pass over the bit columns: the
// ROTL5 is a masked index on the read, f is evaluated inline, and the
// four ripple-carry adds chain their full adders bit-serially with the
// carries held in registers. The executed gates per bit are exactly
// those of f plus four full adders (2 XOR + 2 AND + 1 OR each) - the
// same decomposition addInto performs for a standalone add, and the
// same one the gate counts charge.

// roundCh is the fused round for f = Ch(b,c,d) = d ^ (b & (c ^ d)).
func (e *Engine) roundCh(a, b, c, d, ee, w, k *Slice32) {
	var c1, c2, c3, c4 uint64
	for z := 0; z < 32; z++ {
		a5 := a[(z+27)&31]
		fz := d[z] ^ (b[z] & (c[z] ^ d[z]))
		x1 := a5 ^ fz
		s1 := x1 ^ c1
		c1 = (a5 & fz) | (c1 & x1)
		ez := ee[z]
		x2 := s1 ^ ez
		s2 := x2 ^ c2
		c2 = (s1 & ez) | (c2 & x2)
		wz := w[z]
		x3 := s2 ^ wz
		s3 := x3 ^ c3
		c3 = (s2 & wz) | (c3 & x3)
		kz := k[z]
		x4 := s3 ^ kz
		ee[z] = x4 ^ c4
		c4 = (s3 & kz) | (c4 & x4)
	}
	e.counts.Xor += (2 + 4*2) * 32
	e.counts.And += (1 + 4*2) * 32
	e.counts.Or += 4 * 32
}

// roundParity is the fused round for f = b ^ c ^ d.
func (e *Engine) roundParity(a, b, c, d, ee, w, k *Slice32) {
	var c1, c2, c3, c4 uint64
	for z := 0; z < 32; z++ {
		a5 := a[(z+27)&31]
		fz := b[z] ^ c[z] ^ d[z]
		x1 := a5 ^ fz
		s1 := x1 ^ c1
		c1 = (a5 & fz) | (c1 & x1)
		ez := ee[z]
		x2 := s1 ^ ez
		s2 := x2 ^ c2
		c2 = (s1 & ez) | (c2 & x2)
		wz := w[z]
		x3 := s2 ^ wz
		s3 := x3 ^ c3
		c3 = (s2 & wz) | (c3 & x3)
		kz := k[z]
		x4 := s3 ^ kz
		ee[z] = x4 ^ c4
		c4 = (s3 & kz) | (c4 & x4)
	}
	e.counts.Xor += (2 + 4*2) * 32
	e.counts.And += 4 * 2 * 32
	e.counts.Or += 4 * 32
}

// roundMaj is the fused round for f = Maj(b,c,d) = b ^ ((b^c) & (b^d)).
func (e *Engine) roundMaj(a, b, c, d, ee, w, k *Slice32) {
	var c1, c2, c3, c4 uint64
	for z := 0; z < 32; z++ {
		a5 := a[(z+27)&31]
		bz := b[z]
		fz := bz ^ ((bz ^ c[z]) & (bz ^ d[z]))
		x1 := a5 ^ fz
		s1 := x1 ^ c1
		c1 = (a5 & fz) | (c1 & x1)
		ez := ee[z]
		x2 := s1 ^ ez
		s2 := x2 ^ c2
		c2 = (s1 & ez) | (c2 & x2)
		wz := w[z]
		x3 := s2 ^ wz
		s3 := x3 ^ c3
		c3 = (s2 & wz) | (c3 & x3)
		kz := k[z]
		x4 := s3 ^ kz
		ee[z] = x4 ^ c4
		c4 = (s3 & kz) | (c4 & x4)
	}
	e.counts.Xor += (3 + 4*2) * 32
	e.counts.And += (1 + 4*2) * 32
	e.counts.Or += 4 * 32
}

// SHA1Seeds hashes Width 32-byte seeds with SHA-1 in one bit-sliced
// compression, using the fixed single-block padding for 256-bit messages.
func (e *Engine) SHA1Seeds(seeds *[Width][32]byte) [Width][20]byte {
	hs := e.SHA1SeedsSliced(seeds)
	var out [Width][20]byte
	var vals [Width]uint32
	for word := range hs {
		vals = Unpack32(&hs[word])
		for i := 0; i < Width; i++ {
			out[i][word*4] = byte(vals[i] >> 24)
			out[i][word*4+1] = byte(vals[i] >> 16)
			out[i][word*4+2] = byte(vals[i] >> 8)
			out[i][word*4+3] = byte(vals[i])
		}
	}
	return out
}

// SHA1SeedsSliced is SHA1Seeds without the final unpack: the digest is
// returned as its five 32-bit words (h0..h4) still in bit-sliced form.
// The batched host matcher compares in this domain directly - the
// software transpose of the APU's associative compare - so the unpack
// cost is only ever paid when byte-form digests are actually needed.
func (e *Engine) SHA1SeedsSliced(seeds *[Width][32]byte) [5]Slice32 {
	// Message schedule: 8 seed words (big-endian), then the fixed pad.
	var w [80]Slice32
	var vals [Width]uint32
	for word := 0; word < 8; word++ {
		for i := 0; i < Width; i++ {
			b := seeds[i][word*4:]
			vals[i] = uint32(b[0])<<24 | uint32(b[1])<<16 | uint32(b[2])<<8 | uint32(b[3])
		}
		w[word] = Pack32(&vals)
	}
	w[8] = splat32(0x80000000)
	// w[9..14] stay zero.
	w[15] = splat32(256) // message length in bits
	for i := 16; i < 80; i++ {
		// w[i] = ROTL1(w[i-3] ^ w[i-8] ^ w[i-14] ^ w[i-16]), the three
		// XORs fused with the rotation (out bit z is in bit z-1).
		w3, w8, w14, w16, wi := &w[i-3], &w[i-8], &w[i-14], &w[i-16], &w[i]
		wi[0] = w3[31] ^ w8[31] ^ w14[31] ^ w16[31]
		for z := 1; z < 32; z++ {
			wi[z] = w3[z-1] ^ w8[z-1] ^ w14[z-1] ^ w16[z-1]
		}
		e.counts.Xor += 3 * 32
	}

	// The five working variables live in a ring of buffers: at round i
	// role r (0=a .. 4=e) occupies v[(r-i) mod 5], so the per-round
	// rotation a,b,c,d,e = t,a,ROTL30(b),c,d is a pointer shift plus the
	// one in-place rotation b actually needs.
	var v [5]Slice32
	for r := range v {
		v[r] = sha1Init[r]
	}
	var tmp Slice32
	for i := 0; i < 80; i++ {
		j := 5 - i%5
		a := &v[j%5]
		b := &v[(j+1)%5]
		c := &v[(j+2)%5]
		d := &v[(j+3)%5]
		ee := &v[(j+4)%5]

		switch {
		case i < 20:
			e.roundCh(a, b, c, d, ee, &w[i], &sha1KS[0])
		case i < 40:
			e.roundParity(a, b, c, d, ee, &w[i], &sha1KS[1])
		case i < 60:
			e.roundMaj(a, b, c, d, ee, &w[i], &sha1KS[2])
		default:
			e.roundParity(a, b, c, d, ee, &w[i], &sha1KS[3])
		}

		// b = ROTL30(b) in place via tmp.
		tmp = *b
		rotlInto(b, &tmp, 30)
	}

	// Final feed-forward: h = init + v, reading the roles at their
	// post-loop ring positions (round index 80).
	var hs [5]Slice32
	for r := range hs {
		hs[r] = sha1Init[r]
		e.addInto(&hs[r], &hs[r], &v[(5-80%5+r)%5])
	}
	return hs
}
