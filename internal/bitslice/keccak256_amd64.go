//go:build amd64

package bitslice

// haveAVX2 and haveAVX512 gate the vector forms of the wide Keccak
// round. Detected once at startup: the instruction set (CPUID leaf 7)
// and the OS having enabled the matching register state saving
// (OSXSAVE + XCR0), so the kernel never faults on a machine or OS that
// lacks either.
var (
	haveAVX2   = cpuSupportsAVX2()
	haveAVX512 = cpuSupportsAVX512()
)

// keccakRound256AVX2 is one fused Keccak round over the wide state:
// theta parity and D, then the rho+pi+chi gather into nxt with D xored
// into each gathered source on the fly (the separate theta-apply pass
// over the 50KB state is folded away). Same external contract as
// keccakRound256Go - nxt is fully written, cur is scratch afterwards -
// with each 4-word bit column processed as one YMM register.
// Implemented in keccak256_amd64.s; the rho/pi source offsets are baked
// into the code (the permutation is a compile-time constant).
//
//go:noescape
func keccakRound256AVX2(nxt, cur *KeccakState256, c, d *[5]Slice256)

// keccakRound256AVX512 is the same round with VPTERNLOGQ (AVX-512F+VL,
// still on 256-bit registers for the gather) doing each 3-input step in
// one ALU op, and a parity-carrying contract: c must hold the column
// parities of cur on entry (prime with keccakParity256AVX512) and holds
// the parities of nxt on return - the next round's theta parity pass is
// folded into this round's chi stores. See keccak256_avx512_amd64.s.
//
//go:noescape
func keccakRound256AVX512(nxt, cur *KeccakState256, c, d *[5]Slice256)

// keccakParity256AVX512 computes the column parities of cur into c,
// priming the parity-carrying round above for its first round.
//
//go:noescape
func keccakParity256AVX512(c *[5]Slice256, cur *KeccakState256)

// cpuSupportsAVX2 reports AVX2 plus OS YMM support, via raw CPUID and
// XGETBV (implemented in keccak256_amd64.s): the standard library does
// not export its feature flags and this package takes no dependencies.
func cpuSupportsAVX2() bool

// cpuSupportsAVX512 reports AVX512F+VL plus OS ZMM/opmask state support
// (implemented in keccak256_avx512_amd64.s).
func cpuSupportsAVX512() bool
