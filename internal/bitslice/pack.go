package bitslice

// Slice64 is a bit-sliced group of Width 64-bit values: Slice64[z] holds
// bit z of every instance, with instance i at bit i.
type Slice64 [64]uint64

// Pack converts Width 64-bit values into bit-sliced form, establishing the
// invariant sliced[z] bit i == values[i] bit z - exactly the bit transpose
// Transpose64 computes.
func Pack(values *[Width]uint64) Slice64 {
	tmp := *values
	Transpose64(&tmp)
	return tmp
}

// Unpack is the inverse of Pack.
func Unpack(s *Slice64) [Width]uint64 {
	tmp := [64]uint64(*s)
	Transpose64(&tmp)
	return tmp
}

// Slice32 is a bit-sliced group of Width 32-bit values.
type Slice32 [32]uint64

// Pack32 converts Width 32-bit values into bit-sliced form.
func Pack32(values *[Width]uint32) Slice32 {
	var wide [Width]uint64
	for i, v := range values {
		wide[i] = uint64(v)
	}
	s := Pack(&wide)
	var out Slice32
	copy(out[:], s[:32])
	return out
}

// Unpack32 is the inverse of Pack32.
func Unpack32(s *Slice32) [Width]uint32 {
	var wide Slice64
	copy(wide[:32], s[:])
	vals := Unpack(&wide)
	var out [Width]uint32
	for i, v := range vals {
		out[i] = uint32(v)
	}
	return out
}

// Splat returns a slice whose every instance holds the same 64-bit value:
// bit z is all-ones iff v has bit z set. Constants cost no gates; on the
// APU they are written once into associative memory.
func Splat(v uint64) Slice64 {
	var out Slice64
	for z := 0; z < 64; z++ {
		if v>>uint(z)&1 == 1 {
			out[z] = ^uint64(0)
		}
	}
	return out
}
