package bitslice

import (
	"math/rand"
	"testing"

	"rbcsalted/internal/keccak"
)

// TestPack256RoundTrip is the roundtrip property test over random
// values: Unpack256(Pack256(x)) == x, and the wide slicing invariant
// sliced[z*4+i/64] bit i%64 == values[i] bit z holds lane-exactly.
func TestPack256RoundTrip(t *testing.T) {
	r := rand.New(rand.NewSource(11))
	for trial := 0; trial < 8; trial++ {
		var vals [Width256]uint64
		for i := range vals {
			vals[i] = r.Uint64()
		}
		s := Pack256(&vals)
		for z := 0; z < 64; z++ {
			for i := 0; i < Width256; i++ {
				want := vals[i] >> uint(z) & 1
				got := s[z*4+i>>6] >> uint(i&63) & 1
				if got != want {
					t.Fatalf("trial %d: slice[%d] lane %d = %d, want %d", trial, z, i, got, want)
				}
			}
		}
		if back := Unpack256(&s); back != vals {
			t.Fatalf("trial %d: Unpack256(Pack256(x)) != x", trial)
		}
	}
}

func TestSplat256(t *testing.T) {
	s := Splat256(0x8000000000000106)
	vals := Unpack256(&s)
	for i, v := range vals {
		if v != 0x8000000000000106 {
			t.Fatalf("instance %d = %#x", i, v)
		}
	}
}

// TestKeccakF256MatchesScalar drives the wide permutation with Width256
// independent random states and checks every lane against the scalar
// reference permutation.
func TestKeccakF256MatchesScalar(t *testing.T) {
	r := rand.New(rand.NewSource(12))
	var scalar [Width256][25]uint64
	for i := range scalar {
		for l := range scalar[i] {
			scalar[i][l] = r.Uint64()
		}
	}
	var sliced KeccakState256
	var vals [Width256]uint64
	for l := 0; l < 25; l++ {
		for i := 0; i < Width256; i++ {
			vals[i] = scalar[i][l]
		}
		sliced[l] = Pack256(&vals)
	}

	var e Engine
	e.KeccakF256(&sliced)
	for i := range scalar {
		keccak.Permute(&scalar[i])
	}

	for l := 0; l < 25; l++ {
		got := Unpack256(&sliced[l])
		for i := 0; i < Width256; i++ {
			if got[i] != scalar[i][l] {
				t.Fatalf("instance %d lane %d: got %#x want %#x", i, l, got[i], scalar[i][l])
			}
		}
	}
	if e.Counts().Total() == 0 {
		t.Error("no gates counted")
	}
}

func TestSHA3Seeds256WideMatchesScalar(t *testing.T) {
	r := rand.New(rand.NewSource(13))
	var seeds [Width256][32]byte
	for i := range seeds {
		r.Read(seeds[i][:])
	}
	var e Engine
	got := e.SHA3Seeds256Wide(&seeds)
	for i := range seeds {
		want := keccak.Sum256Seed(&seeds[i])
		if got[i] != want {
			t.Fatalf("seed %d: got %x want %x", i, got[i], want)
		}
	}
}

// TestWideGateCountsPerSeed pins the wide kernel's accounting to the
// 64-wide kernel's: gates are counted in the same word-level unit, so
// one Width256 batch must record exactly four times the gates of one
// Width batch - identical gates per seed. The APU cycle model depends on
// this equivalence.
func TestWideGateCountsPerSeed(t *testing.T) {
	var narrow [Width][32]byte
	var wide [Width256][32]byte
	var e Engine
	e.SHA3Seeds256(&narrow)
	n := e.Counts()
	e.ResetCounts()
	e.SHA3Seeds256Wide(&wide)
	w := e.Counts()
	if w.Xor != 4*n.Xor || w.And != 4*n.And || w.Or != 4*n.Or || w.Not != 4*n.Not {
		t.Errorf("wide counts %+v are not 4x narrow counts %+v", w, n)
	}
}

// TestMatchSliced256 plants duplicate digests across all four mask words
// and checks the wide associative compare reports exactly them.
func TestMatchSliced256(t *testing.T) {
	r := rand.New(rand.NewSource(14))
	var seeds [Width256][32]byte
	for i := range seeds {
		r.Read(seeds[i][:])
	}
	// Plant copies of instance 17 in each mask word's range.
	for _, i := range []int{3, 91, 150, 255} {
		seeds[i] = seeds[17]
	}
	var want [4]uint64
	for _, i := range []int{3, 17, 91, 150, 255} {
		want[i>>6] |= 1 << uint(i&63)
	}

	var e Engine
	lanes := e.SHA3Seeds256WideSliced(&seeds)
	digest := keccak.Sum256Seed(&seeds[17])
	var target [4]uint64
	for l := range target {
		target[l] = leUint64(digest[l*8:])
	}
	if got := MatchSliced256(lanes[:], target[:]); got != want {
		t.Fatalf("match mask %#x, want %#x", got, want)
	}
	target[0] ^= 1 // no instance matches now
	if got := MatchSliced256(lanes[:], target[:]); got != [4]uint64{} {
		t.Fatalf("perturbed target matched %#x, want zero", got)
	}
}

// FuzzSHA3Wide differentially fuzzes the wide Keccak kernel against the
// scalar internal/keccak reference: seeds derived from the fuzz input
// must hash identically on every one of the 256 lanes.
func FuzzSHA3Wide(f *testing.F) {
	f.Add([]byte("wide keccak"), uint64(1))
	f.Add([]byte{}, uint64(0xffffffffffffffff))
	f.Fuzz(func(t *testing.T, data []byte, salt uint64) {
		var seeds [Width256][32]byte
		for i := range seeds {
			for j := range seeds[i] {
				v := salt + uint64(i)*31 + uint64(j)*7
				if len(data) > 0 {
					v += uint64(data[(i+j)%len(data)])
				}
				seeds[i][j] = byte(v)
			}
		}
		var e Engine
		got := e.SHA3Seeds256Wide(&seeds)
		// Check a spread of lanes (all 256 would make the fuzzer spend
		// its whole budget in the scalar reference).
		for _, i := range []int{0, 1, 63, 64, 127, 128, 200, 255} {
			if want := keccak.Sum256Seed(&seeds[i]); got[i] != want {
				t.Fatalf("lane %d: wide %x, scalar %x", i, got[i], want)
			}
		}
	})
}

// BenchmarkSHA3Seeds256Wide isolates the wide kernel cost: one 256-lane
// compression, against which the per-seed cost of the 64-wide kernel
// (BenchmarkSHA3Seeds256) is compared.
func BenchmarkSHA3Seeds256Wide(b *testing.B) {
	var seeds [Width256][32]byte
	var e Engine
	b.SetBytes(Width256 * 32)
	for i := 0; i < b.N; i++ {
		seeds[0][0] = byte(i)
		sinkWide = e.SHA3Seeds256Wide(&seeds)
	}
}

// BenchmarkWideKernels extends the sliced-kernel comparison to the
// 256-lane form: one wide compression vs four 64-wide compressions vs
// 256 scalar hashes.
func BenchmarkWideKernels(b *testing.B) {
	var wide [Width256][32]byte
	var narrow [Width][32]byte
	for i := range wide {
		wide[i][0] = byte(i)
		wide[i][31] = byte(i * 7)
	}
	copy(narrow[:], wide[:Width])
	var e Engine
	b.Run("sha3-wide256", func(b *testing.B) {
		for i := 0; i < b.N; i++ {
			e.SHA3Seeds256WideSliced(&wide)
		}
	})
	b.Run("sha3-sliced64-x4", func(b *testing.B) {
		for i := 0; i < b.N; i++ {
			for g := 0; g < 4; g++ {
				e.SHA3Seeds256Sliced(&narrow)
			}
		}
	})
	b.Run("sha3-scalar-x256", func(b *testing.B) {
		for i := 0; i < b.N; i++ {
			for j := range wide {
				keccak.Sum256Seed(&wide[j])
			}
		}
	})
}

var sinkWide [Width256][32]byte
