// Package bitslice implements 64-way bit-sliced hashing: SHA-1 and
// Keccak-f[1600] decomposed into boolean gates, evaluated 64 independent
// instances at a time with one uint64 word per bit position.
//
// This is the execution engine of the APU simulator. The GSI Gemini
// computes bit-serially: each bit processor applies one boolean operation
// per cycle to one bit of state, and throughput comes from the ~2 million
// bit processors operating associatively. Bit-slicing is the exact software
// transpose of that model - the same gate-level decomposition, with the
// 64 "processors" packed in a machine word - so the *gate counts* the APU
// cycle model needs are measured from executed code rather than estimated.
//
// The Engine tracks how many word-level gate operations (XOR, AND, OR, NOT)
// each primitive performs. Rotations and permutations of bit indices are
// free, exactly as wiring is free in hardware.
package bitslice

// Width is the number of independent hash instances evaluated per batch.
const Width = 64

// GateCounts records boolean operations executed, by kind. One count unit
// is a single gate applied across all Width instances.
type GateCounts struct {
	Xor uint64
	And uint64
	Or  uint64
	Not uint64
}

// Total returns the total number of gate operations.
func (g GateCounts) Total() uint64 { return g.Xor + g.And + g.Or + g.Not }

// Add accumulates other into g.
func (g *GateCounts) Add(other GateCounts) {
	g.Xor += other.Xor
	g.And += other.And
	g.Or += other.Or
	g.Not += other.Not
}

// Engine evaluates bit-sliced primitives and accumulates gate counts.
// The zero value is ready to use. An Engine is not safe for concurrent
// use; each simulated APU bank owns one.
type Engine struct {
	counts GateCounts

	// Scratch for the wide Keccak round: the ping-pong state plus the
	// theta parity/mix lanes, ~71KB total. Kept on the Engine because Go
	// cannot prove the assembly round overwrites them, so as locals they
	// would be zeroed on every KeccakF256 call. wideMsg is the
	// permutation state of SHA3Msg256WideSliced, engine-resident for the
	// same reason.
	wideTmp KeccakState256
	wideC   [5]Slice256
	wideD   [5]Slice256
	wideMsg KeccakState256
}

// Counts returns the gate operations executed since construction or the
// last ResetCounts.
func (e *Engine) Counts() GateCounts { return e.counts }

// ResetCounts zeroes the gate counters.
func (e *Engine) ResetCounts() { e.counts = GateCounts{} }

// Transpose64 transposes a 64x64 bit matrix in place: bit j of word i
// becomes bit i of word j. It is the standard recursive block-swap
// (Hacker's Delight 7-3) and is used to move between 64 scalar values and
// their bit-sliced representation. Data marshalling is not a gate
// operation on the APU (the associative memory is accessed in place), so
// it is not counted.
func Transpose64(a *[64]uint64) {
	m := uint64(0x00000000FFFFFFFF)
	for j := 32; j != 0; j >>= 1 {
		for k := 0; k < 64; k = (k + j + 1) &^ j {
			t := ((a[k] >> uint(j)) ^ a[k+j]) & m
			a[k] ^= t << uint(j)
			a[k+j] ^= t
		}
		m ^= m << uint(j>>1)
	}
}
