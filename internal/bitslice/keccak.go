package bitslice

import "rbcsalted/internal/keccak"

// KeccakState is a bit-sliced Keccak-f[1600] state: 25 lanes, each held as
// a Slice64 of Width independent instances.
type KeccakState [25]Slice64

// KeccakF applies Keccak-f[1600] to all Width instances, gate by gate.
// Rotations (rho) and lane permutation (pi) re-index bits and cost
// nothing; theta, chi and iota are counted as XOR/AND/NOT gates.
func (e *Engine) KeccakF(s *KeccakState) {
	for round := 0; round < keccak.Rounds; round++ {
		// theta: column parities, then mix into every lane.
		var c [5]Slice64
		for x := 0; x < 5; x++ {
			for z := 0; z < 64; z++ {
				c[x][z] = s[x][z] ^ s[x+5][z] ^ s[x+10][z] ^ s[x+15][z] ^ s[x+20][z]
			}
		}
		e.counts.Xor += 5 * 64 * 4
		var d [5]Slice64
		for x := 0; x < 5; x++ {
			for z := 0; z < 64; z++ {
				// ROTL(C, 1): bit z of the rotated lane is bit z-1.
				d[x][z] = c[(x+4)%5][z] ^ c[(x+1)%5][(z+63)%64]
			}
		}
		e.counts.Xor += 5 * 64
		for i := 0; i < 25; i++ {
			x := i % 5
			for z := 0; z < 64; z++ {
				s[i][z] ^= d[x][z]
			}
		}
		e.counts.Xor += 25 * 64

		// rho + pi: pure wiring.
		var b KeccakState
		for x := 0; x < 5; x++ {
			for y := 0; y < 5; y++ {
				src := x + 5*y
				dst := y + 5*((2*x+3*y)%5)
				r := int(keccak.RotationOffset(x, y))
				for z := 0; z < 64; z++ {
					b[dst][z] = s[src][(z-r+64)%64]
				}
			}
		}

		// chi: a = b ^ (^b1 & b2).
		for y := 0; y < 25; y += 5 {
			for x := 0; x < 5; x++ {
				for z := 0; z < 64; z++ {
					s[x+y][z] = b[x+y][z] ^ (^b[(x+1)%5+y][z] & b[(x+2)%5+y][z])
				}
			}
		}
		e.counts.Not += 25 * 64
		e.counts.And += 25 * 64
		e.counts.Xor += 25 * 64

		// iota: flip the bits of lane 0 where the round constant is set.
		rc := keccak.RoundConstant(round)
		for z := 0; z < 64; z++ {
			if rc>>uint(z)&1 == 1 {
				s[0][z] = ^s[0][z]
				e.counts.Not++
			}
		}
	}
}

// SHA3Seeds256 hashes Width 32-byte seeds with SHA3-256 in one bit-sliced
// permutation, using the same fixed padding as keccak.Sum256Seed: the seed
// fills lanes 0-3, lane 4 carries the 0x06 domain suffix, and lane 16's
// top bit is the closing pad bit.
func (e *Engine) SHA3Seeds256(seeds *[Width][32]byte) [Width][32]byte {
	var s KeccakState
	var vals [Width]uint64
	for lane := 0; lane < 4; lane++ {
		for i := 0; i < Width; i++ {
			vals[i] = leUint64(seeds[i][lane*8:])
		}
		s[lane] = Pack(&vals)
	}
	s[4] = Splat(uint64(keccak.DomainSHA3))
	s[16] = Splat(0x80 << 56)

	e.KeccakF(&s)

	var out [Width][32]byte
	for lane := 0; lane < 4; lane++ {
		vals = Unpack(&s[lane])
		for i := 0; i < Width; i++ {
			putLEUint64(out[i][lane*8:], vals[i])
		}
	}
	return out
}

func leUint64(b []byte) uint64 {
	return uint64(b[0]) | uint64(b[1])<<8 | uint64(b[2])<<16 | uint64(b[3])<<24 |
		uint64(b[4])<<32 | uint64(b[5])<<40 | uint64(b[6])<<48 | uint64(b[7])<<56
}

func putLEUint64(b []byte, v uint64) {
	for i := 0; i < 8; i++ {
		b[i] = byte(v >> (8 * uint(i)))
	}
}
