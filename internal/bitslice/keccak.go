package bitslice

import "rbcsalted/internal/keccak"

// KeccakState is a bit-sliced Keccak-f[1600] state: 25 lanes, each held as
// a Slice64 of Width independent instances.
type KeccakState [25]Slice64

// rhoPi[i] describes one lane's rho+pi move: state lane src rotated left
// by rot lands in lane dst of the permuted state. Precomputed so the hot
// loop is two memmoves per lane instead of per-bit modular indexing.
var rhoPi = func() (m [25]struct{ src, dst, rot int }) {
	i := 0
	for x := 0; x < 5; x++ {
		for y := 0; y < 5; y++ {
			m[i].src = x + 5*y
			m[i].dst = y + 5*((2*x+3*y)%5)
			m[i].rot = int(keccak.RotationOffset(x, y))
			i++
		}
	}
	return
}()

// KeccakF applies Keccak-f[1600] to all Width instances, gate by gate.
// Rotations (rho) and lane permutation (pi) re-index bits and cost
// nothing; theta, chi and iota are counted as XOR/AND/NOT gates.
//
// The decomposition is the canonical one the APU cycle model charges for
// (and the gate counts record exactly that), but the evaluation order is
// arranged for the host: loop-invariant lane pointers, rotations as two
// block copies, and the chi row unrolled so all five lanes of a plane are
// combined in one pass.
func (e *Engine) KeccakF(s *KeccakState) {
	for round := 0; round < keccak.Rounds; round++ {
		// theta: column parities, then mix into every lane.
		var c [5]Slice64
		for x := 0; x < 5; x++ {
			a0, a1, a2, a3, a4 := &s[x], &s[x+5], &s[x+10], &s[x+15], &s[x+20]
			cx := &c[x]
			for z := 0; z < 64; z++ {
				cx[z] = a0[z] ^ a1[z] ^ a2[z] ^ a3[z] ^ a4[z]
			}
		}
		var d Slice64
		for x := 0; x < 5; x++ {
			cm := &c[(x+4)%5]
			cp := &c[(x+1)%5]
			// D = C[x-1] ^ ROTL(C[x+1], 1): bit z of the rotated lane is
			// bit z-1.
			d[0] = cm[0] ^ cp[63]
			for z := 1; z < 64; z++ {
				d[z] = cm[z] ^ cp[z-1]
			}
			l0, l1, l2, l3, l4 := &s[x], &s[x+5], &s[x+10], &s[x+15], &s[x+20]
			for z := 0; z < 64; z++ {
				dz := d[z]
				l0[z] ^= dz
				l1[z] ^= dz
				l2[z] ^= dz
				l3[z] ^= dz
				l4[z] ^= dz
			}
		}
		e.counts.Xor += 5*64*4 + 5*64 + 25*64

		// rho + pi: pure wiring. A left-rotation by r maps bit z to bit
		// z+r, i.e. dst[r:] = src[:64-r] and dst[:r] = src[64-r:].
		var b KeccakState
		for _, mv := range rhoPi {
			src, dst := &s[mv.src], &b[mv.dst]
			copy(dst[mv.rot:], src[:64-mv.rot])
			copy(dst[:mv.rot], src[64-mv.rot:])
		}

		// chi: a = b ^ (^b1 & b2), one plane (five lanes) per pass.
		for y := 0; y < 25; y += 5 {
			b0, b1, b2, b3, b4 := &b[y], &b[y+1], &b[y+2], &b[y+3], &b[y+4]
			s0, s1, s2, s3, s4 := &s[y], &s[y+1], &s[y+2], &s[y+3], &s[y+4]
			for z := 0; z < 64; z++ {
				t0, t1, t2, t3, t4 := b0[z], b1[z], b2[z], b3[z], b4[z]
				s0[z] = t0 ^ (^t1 & t2)
				s1[z] = t1 ^ (^t2 & t3)
				s2[z] = t2 ^ (^t3 & t4)
				s3[z] = t3 ^ (^t4 & t0)
				s4[z] = t4 ^ (^t0 & t1)
			}
		}
		e.counts.Not += 25 * 64
		e.counts.And += 25 * 64
		e.counts.Xor += 25 * 64

		// iota: flip the bits of lane 0 where the round constant is set.
		rc := keccak.RoundConstant(round)
		l := &s[0]
		for z := 0; z < 64; z++ {
			if rc>>uint(z)&1 == 1 {
				l[z] = ^l[z]
				e.counts.Not++
			}
		}
	}
}

// SHA3Seeds256 hashes Width 32-byte seeds with SHA3-256 in one bit-sliced
// permutation, using the same fixed padding as keccak.Sum256Seed: the seed
// fills lanes 0-3, lane 4 carries the 0x06 domain suffix, and lane 16's
// top bit is the closing pad bit.
func (e *Engine) SHA3Seeds256(seeds *[Width][32]byte) [Width][32]byte {
	lanes := e.SHA3Seeds256Sliced(seeds)
	var out [Width][32]byte
	var vals [Width]uint64
	for lane := range lanes {
		vals = Unpack(&lanes[lane])
		for i := 0; i < Width; i++ {
			putLEUint64(out[i][lane*8:], vals[i])
		}
	}
	return out
}

// SHA3Seeds256Sliced is SHA3Seeds256 without the final unpack: the four
// rate lanes that form the 256-bit digest are returned still bit-sliced
// (lane words in Keccak's little-endian convention). The batched host
// matcher compares in this domain, skipping the unpack entirely.
func (e *Engine) SHA3Seeds256Sliced(seeds *[Width][32]byte) [4]Slice64 {
	var s KeccakState
	var vals [Width]uint64
	for lane := 0; lane < 4; lane++ {
		for i := 0; i < Width; i++ {
			vals[i] = leUint64(seeds[i][lane*8:])
		}
		s[lane] = Pack(&vals)
	}
	s[4] = Splat(uint64(keccak.DomainSHA3))
	s[16] = Splat(0x80 << 56)

	e.KeccakF(&s)

	return [4]Slice64{s[0], s[1], s[2], s[3]}
}

func leUint64(b []byte) uint64 {
	return uint64(b[0]) | uint64(b[1])<<8 | uint64(b[2])<<16 | uint64(b[3])<<24 |
		uint64(b[4])<<32 | uint64(b[5])<<40 | uint64(b[6])<<48 | uint64(b[7])<<56
}

func putLEUint64(b []byte, v uint64) {
	for i := 0; i < 8; i++ {
		b[i] = byte(v >> (8 * uint(i)))
	}
}
