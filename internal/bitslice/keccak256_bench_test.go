package bitslice

import "testing"

// BenchmarkWideSHA3Stages splits the 256-wide SHA-3 batch cost into its
// stages: the 24-round permutation alone, the limb->bit-sliced packing
// alone, and the full seeds-in digest-lanes-out path. The stage split is
// what directs kernel work - it shows whether the next microsecond
// should come out of the permutation or the marshalling.
func BenchmarkWideSHA3Stages(b *testing.B) {
	var seeds [Width256][32]byte
	for i := range seeds {
		seeds[i][0] = byte(i)
	}
	var e Engine
	b.Run("keccakf-only", func(b *testing.B) {
		var s KeccakState256
		for i := 0; i < b.N; i++ {
			e.KeccakF256(&s)
		}
	})
	b.Run("pack-only", func(b *testing.B) {
		var vals [Width256]uint64
		var s KeccakState256
		for i := 0; i < b.N; i++ {
			for lane := 0; lane < 4; lane++ {
				for j := 0; j < Width256; j++ {
					vals[j] = leUint64(seeds[j][lane*8:])
				}
				s[lane] = Pack256(&vals)
			}
		}
	})
	b.Run("full", func(b *testing.B) {
		for i := 0; i < b.N; i++ {
			e.SHA3Seeds256WideSliced(&seeds)
		}
	})
}
