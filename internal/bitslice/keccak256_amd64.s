// AVX2 form of the fused wide Keccak round. Layout facts the code
// depends on (see pack256.go / keccak256.go):
//
//   - A Slice256 lane is 256 uint64 = 2048 bytes; bit column z is the
//     32-byte block at offset z*32, exactly one YMM register.
//   - KeccakState256 is 25 contiguous lanes: lane l at offset l*2048.
//   - A rotation by r in z is an index shift: column z reads from
//     column (z-r)&63, i.e. byte offset ((z*32 - r*32) & 2047).
//
// The rho+pi gather offsets below are generated from the same rhoPi
// table the Go kernels use: for output lane dst, srcdisp = src*2048 and
// initoff = ((64-rot)&63)*32, the byte offset of the source column that
// lands in output column 0.

#include "textflag.h"

// func keccakRound256AVX2(nxt, cur *KeccakState256, c, d *[5]Slice256)
TEXT ·keccakRound256AVX2(SB), NOSPLIT, $0-32
	MOVQ nxt+0(FP), DI
	MOVQ cur+8(FP), SI
	MOVQ c+16(FP), R8
	MOVQ d+24(FP), R9

	// ---- theta parity: c[x] = cur[x]^cur[x+5]^cur[x+10]^cur[x+15]^cur[x+20].
	// One flat loop: as the cursor walks the 5*64 columns of lanes 0-4,
	// the +5 lanes sit at fixed +10240-byte displacements.
	MOVQ SI, R10
	MOVQ R8, R11
	MOVQ $320, CX

parity:
	VMOVDQU (R10), Y0
	VPXOR   10240(R10), Y0, Y0
	VPXOR   20480(R10), Y0, Y0
	VPXOR   30720(R10), Y0, Y0
	VPXOR   40960(R10), Y0, Y0
	VMOVDQU Y0, (R11)
	ADDQ $32, R10
	ADDQ $32, R11
	DECQ CX
	JNE  parity

	// ---- theta D: d[x] = c[(x+4)%5] ^ ROTL(c[(x+1)%5], 1). Column 0
	// wraps to the rotated lane's column 63 (offset 2016); columns 1-63
	// read linearly one column behind. Unrolled over x.

	// x = 0: cm = c[4] (+8192), cp = c[1] (+2048), dx = d[0] (+0)
	VMOVDQU 8192(R8), Y0
	VPXOR   4064(R8), Y0, Y0
	VMOVDQU Y0, (R9)
	LEAQ 8224(R8), R10
	LEAQ 2048(R8), R11
	LEAQ 32(R9), R12
	MOVQ $63, CX

dx0:
	VMOVDQU (R10), Y0
	VPXOR   (R11), Y0, Y0
	VMOVDQU Y0, (R12)
	ADDQ $32, R10
	ADDQ $32, R11
	ADDQ $32, R12
	DECQ CX
	JNE  dx0

	// x = 1: cm = c[0] (+0), cp = c[2] (+4096), dx = d[1] (+2048)
	VMOVDQU (R8), Y0
	VPXOR   6112(R8), Y0, Y0
	VMOVDQU Y0, 2048(R9)
	LEAQ 32(R8), R10
	LEAQ 4096(R8), R11
	LEAQ 2080(R9), R12
	MOVQ $63, CX

dx1:
	VMOVDQU (R10), Y0
	VPXOR   (R11), Y0, Y0
	VMOVDQU Y0, (R12)
	ADDQ $32, R10
	ADDQ $32, R11
	ADDQ $32, R12
	DECQ CX
	JNE  dx1

	// x = 2: cm = c[1] (+2048), cp = c[3] (+6144), dx = d[2] (+4096)
	VMOVDQU 2048(R8), Y0
	VPXOR   8160(R8), Y0, Y0
	VMOVDQU Y0, 4096(R9)
	LEAQ 2080(R8), R10
	LEAQ 6144(R8), R11
	LEAQ 4128(R9), R12
	MOVQ $63, CX

dx2:
	VMOVDQU (R10), Y0
	VPXOR   (R11), Y0, Y0
	VMOVDQU Y0, (R12)
	ADDQ $32, R10
	ADDQ $32, R11
	ADDQ $32, R12
	DECQ CX
	JNE  dx2

	// x = 3: cm = c[2] (+4096), cp = c[4] (+8192), dx = d[3] (+6144)
	VMOVDQU 4096(R8), Y0
	VPXOR   10208(R8), Y0, Y0
	VMOVDQU Y0, 6144(R9)
	LEAQ 4128(R8), R10
	LEAQ 8192(R8), R11
	LEAQ 6176(R9), R12
	MOVQ $63, CX

dx3:
	VMOVDQU (R10), Y0
	VPXOR   (R11), Y0, Y0
	VMOVDQU Y0, (R12)
	ADDQ $32, R10
	ADDQ $32, R11
	ADDQ $32, R12
	DECQ CX
	JNE  dx3

	// x = 4: cm = c[3] (+6144), cp = c[0] (+0), dx = d[4] (+8192)
	VMOVDQU 6144(R8), Y0
	VPXOR   2016(R8), Y0, Y0
	VMOVDQU Y0, 8192(R9)
	LEAQ 6176(R8), R10
	MOVQ R8, R11
	LEAQ 8224(R9), R12
	MOVQ $63, CX

dx4:
	VMOVDQU (R10), Y0
	VPXOR   (R11), Y0, Y0
	VMOVDQU Y0, (R12)
	ADDQ $32, R10
	ADDQ $32, R11
	ADDQ $32, R12
	DECQ CX
	JNE  dx4

	// ---- fused rho+pi+chi, one output plane per block. Per column:
	// five gathered source loads (rotation = per-lane running offset,
	// wrapped at 2048), chi = VPANDN+VPXOR, five stores. Offset
	// constants generated from rhoPi; see file header.

	// plane 0: out lanes 0-4, srcs 0,6,12,18,24
	MOVQ $0, R10
	MOVQ $640, R11
	MOVQ $672, R12
	MOVQ $1376, R13
	MOVQ $1600, R14
	XORQ BX, BX
	MOVQ $64, CX

chi0:
	VMOVDQU (SI)(R10*1), Y0
	VPXOR   (R9)(R10*1), Y0, Y0
	VMOVDQU 12288(SI)(R11*1), Y1
	VPXOR   2048(R9)(R11*1), Y1, Y1
	VMOVDQU 24576(SI)(R12*1), Y2
	VPXOR   4096(R9)(R12*1), Y2, Y2
	VMOVDQU 36864(SI)(R13*1), Y3
	VPXOR   6144(R9)(R13*1), Y3, Y3
	VMOVDQU 49152(SI)(R14*1), Y4
	VPXOR   8192(R9)(R14*1), Y4, Y4
	VPANDN  Y2, Y1, Y5
	VPXOR   Y5, Y0, Y5
	VMOVDQU Y5, (DI)(BX*1)
	VPANDN  Y3, Y2, Y6
	VPXOR   Y6, Y1, Y6
	VMOVDQU Y6, 2048(DI)(BX*1)
	VPANDN  Y4, Y3, Y7
	VPXOR   Y7, Y2, Y7
	VMOVDQU Y7, 4096(DI)(BX*1)
	VPANDN  Y0, Y4, Y8
	VPXOR   Y8, Y3, Y8
	VMOVDQU Y8, 6144(DI)(BX*1)
	VPANDN  Y1, Y0, Y9
	VPXOR   Y9, Y4, Y9
	VMOVDQU Y9, 8192(DI)(BX*1)
	ADDQ $32, R10
	ANDQ $2047, R10
	ADDQ $32, R11
	ANDQ $2047, R11
	ADDQ $32, R12
	ANDQ $2047, R12
	ADDQ $32, R13
	ANDQ $2047, R13
	ADDQ $32, R14
	ANDQ $2047, R14
	ADDQ $32, BX
	DECQ CX
	JNE  chi0

	// plane 1: out lanes 5-9, srcs 3,9,10,16,22
	MOVQ $1152, R10
	MOVQ $1408, R11
	MOVQ $1952, R12
	MOVQ $608, R13
	MOVQ $96, R14
	XORQ BX, BX
	MOVQ $64, CX

chi1:
	VMOVDQU 6144(SI)(R10*1), Y0
	VPXOR   6144(R9)(R10*1), Y0, Y0
	VMOVDQU 18432(SI)(R11*1), Y1
	VPXOR   8192(R9)(R11*1), Y1, Y1
	VMOVDQU 20480(SI)(R12*1), Y2
	VPXOR   (R9)(R12*1), Y2, Y2
	VMOVDQU 32768(SI)(R13*1), Y3
	VPXOR   2048(R9)(R13*1), Y3, Y3
	VMOVDQU 45056(SI)(R14*1), Y4
	VPXOR   4096(R9)(R14*1), Y4, Y4
	VPANDN  Y2, Y1, Y5
	VPXOR   Y5, Y0, Y5
	VMOVDQU Y5, 10240(DI)(BX*1)
	VPANDN  Y3, Y2, Y6
	VPXOR   Y6, Y1, Y6
	VMOVDQU Y6, 12288(DI)(BX*1)
	VPANDN  Y4, Y3, Y7
	VPXOR   Y7, Y2, Y7
	VMOVDQU Y7, 14336(DI)(BX*1)
	VPANDN  Y0, Y4, Y8
	VPXOR   Y8, Y3, Y8
	VMOVDQU Y8, 16384(DI)(BX*1)
	VPANDN  Y1, Y0, Y9
	VPXOR   Y9, Y4, Y9
	VMOVDQU Y9, 18432(DI)(BX*1)
	ADDQ $32, R10
	ANDQ $2047, R10
	ADDQ $32, R11
	ANDQ $2047, R11
	ADDQ $32, R12
	ANDQ $2047, R12
	ADDQ $32, R13
	ANDQ $2047, R13
	ADDQ $32, R14
	ANDQ $2047, R14
	ADDQ $32, BX
	DECQ CX
	JNE  chi1

	// plane 2: out lanes 10-14, srcs 1,7,13,19,20
	MOVQ $2016, R10
	MOVQ $1856, R11
	MOVQ $1248, R12
	MOVQ $1792, R13
	MOVQ $1472, R14
	XORQ BX, BX
	MOVQ $64, CX

chi2:
	VMOVDQU 2048(SI)(R10*1), Y0
	VPXOR   2048(R9)(R10*1), Y0, Y0
	VMOVDQU 14336(SI)(R11*1), Y1
	VPXOR   4096(R9)(R11*1), Y1, Y1
	VMOVDQU 26624(SI)(R12*1), Y2
	VPXOR   6144(R9)(R12*1), Y2, Y2
	VMOVDQU 38912(SI)(R13*1), Y3
	VPXOR   8192(R9)(R13*1), Y3, Y3
	VMOVDQU 40960(SI)(R14*1), Y4
	VPXOR   (R9)(R14*1), Y4, Y4
	VPANDN  Y2, Y1, Y5
	VPXOR   Y5, Y0, Y5
	VMOVDQU Y5, 20480(DI)(BX*1)
	VPANDN  Y3, Y2, Y6
	VPXOR   Y6, Y1, Y6
	VMOVDQU Y6, 22528(DI)(BX*1)
	VPANDN  Y4, Y3, Y7
	VPXOR   Y7, Y2, Y7
	VMOVDQU Y7, 24576(DI)(BX*1)
	VPANDN  Y0, Y4, Y8
	VPXOR   Y8, Y3, Y8
	VMOVDQU Y8, 26624(DI)(BX*1)
	VPANDN  Y1, Y0, Y9
	VPXOR   Y9, Y4, Y9
	VMOVDQU Y9, 28672(DI)(BX*1)
	ADDQ $32, R10
	ANDQ $2047, R10
	ADDQ $32, R11
	ANDQ $2047, R11
	ADDQ $32, R12
	ANDQ $2047, R12
	ADDQ $32, R13
	ANDQ $2047, R13
	ADDQ $32, R14
	ANDQ $2047, R14
	ADDQ $32, BX
	DECQ CX
	JNE  chi2

	// plane 3: out lanes 15-19, srcs 4,5,11,17,23
	MOVQ $1184, R10
	MOVQ $896, R11
	MOVQ $1728, R12
	MOVQ $1568, R13
	MOVQ $256, R14
	XORQ BX, BX
	MOVQ $64, CX

chi3:
	VMOVDQU 8192(SI)(R10*1), Y0
	VPXOR   8192(R9)(R10*1), Y0, Y0
	VMOVDQU 10240(SI)(R11*1), Y1
	VPXOR   (R9)(R11*1), Y1, Y1
	VMOVDQU 22528(SI)(R12*1), Y2
	VPXOR   2048(R9)(R12*1), Y2, Y2
	VMOVDQU 34816(SI)(R13*1), Y3
	VPXOR   4096(R9)(R13*1), Y3, Y3
	VMOVDQU 47104(SI)(R14*1), Y4
	VPXOR   6144(R9)(R14*1), Y4, Y4
	VPANDN  Y2, Y1, Y5
	VPXOR   Y5, Y0, Y5
	VMOVDQU Y5, 30720(DI)(BX*1)
	VPANDN  Y3, Y2, Y6
	VPXOR   Y6, Y1, Y6
	VMOVDQU Y6, 32768(DI)(BX*1)
	VPANDN  Y4, Y3, Y7
	VPXOR   Y7, Y2, Y7
	VMOVDQU Y7, 34816(DI)(BX*1)
	VPANDN  Y0, Y4, Y8
	VPXOR   Y8, Y3, Y8
	VMOVDQU Y8, 36864(DI)(BX*1)
	VPANDN  Y1, Y0, Y9
	VPXOR   Y9, Y4, Y9
	VMOVDQU Y9, 38912(DI)(BX*1)
	ADDQ $32, R10
	ANDQ $2047, R10
	ADDQ $32, R11
	ANDQ $2047, R11
	ADDQ $32, R12
	ANDQ $2047, R12
	ADDQ $32, R13
	ANDQ $2047, R13
	ADDQ $32, R14
	ANDQ $2047, R14
	ADDQ $32, BX
	DECQ CX
	JNE  chi3

	// plane 4: out lanes 20-24, srcs 2,8,14,15,21
	MOVQ $64, R10
	MOVQ $288, R11
	MOVQ $800, R12
	MOVQ $736, R13
	MOVQ $1984, R14
	XORQ BX, BX
	MOVQ $64, CX

chi4:
	VMOVDQU 4096(SI)(R10*1), Y0
	VPXOR   4096(R9)(R10*1), Y0, Y0
	VMOVDQU 16384(SI)(R11*1), Y1
	VPXOR   6144(R9)(R11*1), Y1, Y1
	VMOVDQU 28672(SI)(R12*1), Y2
	VPXOR   8192(R9)(R12*1), Y2, Y2
	VMOVDQU 30720(SI)(R13*1), Y3
	VPXOR   (R9)(R13*1), Y3, Y3
	VMOVDQU 43008(SI)(R14*1), Y4
	VPXOR   2048(R9)(R14*1), Y4, Y4
	VPANDN  Y2, Y1, Y5
	VPXOR   Y5, Y0, Y5
	VMOVDQU Y5, 40960(DI)(BX*1)
	VPANDN  Y3, Y2, Y6
	VPXOR   Y6, Y1, Y6
	VMOVDQU Y6, 43008(DI)(BX*1)
	VPANDN  Y4, Y3, Y7
	VPXOR   Y7, Y2, Y7
	VMOVDQU Y7, 45056(DI)(BX*1)
	VPANDN  Y0, Y4, Y8
	VPXOR   Y8, Y3, Y8
	VMOVDQU Y8, 47104(DI)(BX*1)
	VPANDN  Y1, Y0, Y9
	VPXOR   Y9, Y4, Y9
	VMOVDQU Y9, 49152(DI)(BX*1)
	ADDQ $32, R10
	ANDQ $2047, R10
	ADDQ $32, R11
	ANDQ $2047, R11
	ADDQ $32, R12
	ANDQ $2047, R12
	ADDQ $32, R13
	ANDQ $2047, R13
	ADDQ $32, R14
	ANDQ $2047, R14
	ADDQ $32, BX
	DECQ CX
	JNE  chi4

	VZEROUPPER
	RET

// func cpuSupportsAVX2() bool
TEXT ·cpuSupportsAVX2(SB), NOSPLIT, $0-1
	// OSXSAVE (bit 27) and AVX (bit 28) in CPUID.1:ECX
	MOVL $1, AX
	CPUID
	MOVL CX, AX
	ANDL $(1<<27 | 1<<28), AX
	CMPL AX, $(1<<27 | 1<<28)
	JNE  notsup

	// OS enabled XMM+YMM state saving: XCR0 bits 1-2
	XORL CX, CX
	XGETBV
	ANDL $6, AX
	CMPL AX, $6
	JNE  notsup

	// AVX2: CPUID.(7,0):EBX bit 5
	MOVL $7, AX
	XORL CX, CX
	CPUID
	ANDL $(1<<5), BX
	JZ   notsup

	MOVB $1, ret+0(FP)
	RET

notsup:
	MOVB $0, ret+0(FP)
	RET
