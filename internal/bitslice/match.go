package bitslice

// Associative matching over bit-sliced digests. On the GSI Gemini a
// search-and-mark compares one bit column of every record against a key
// bit and ANDs the result into a marker register (paper §3.3); these
// functions are the exact software transpose, with the Width instances
// packed in a machine word instead of spread across bit processors.
//
// The AND-reduction short-circuits: after z compared bit columns the
// accumulator has an expected Width/2^z surviving instances, so a batch
// with no match dies after ~log2(Width) columns and the compare cost is
// negligible next to the hash. They are host-side matcher primitives,
// not modelled APU compute, so no gates are counted.

// MatchSliced32 compares Width bit-sliced 32-bit words against target
// words, returning a mask with bit i set iff instance i equals every
// target word. len(words) must equal len(target).
func MatchSliced32(words []Slice32, target []uint32) uint64 {
	acc := ^uint64(0)
	for w := range words {
		tw := target[w]
		for z := 0; z < 32; z++ {
			col := words[w][z]
			if tw>>uint(z)&1 == 1 {
				acc &= col
			} else {
				acc &^= col
			}
			if acc == 0 {
				return 0
			}
		}
	}
	return acc
}

// MatchSliced64 compares Width bit-sliced 64-bit lanes against target
// lanes, returning a mask with bit i set iff instance i equals every
// target lane. len(lanes) must equal len(target).
func MatchSliced64(lanes []Slice64, target []uint64) uint64 {
	acc := ^uint64(0)
	for l := range lanes {
		tl := target[l]
		for z := 0; z < 64; z++ {
			col := lanes[l][z]
			if tl>>uint(z)&1 == 1 {
				acc &= col
			} else {
				acc &^= col
			}
			if acc == 0 {
				return 0
			}
		}
	}
	return acc
}

// MatchSliced256 compares Width256 wide bit-sliced 64-bit lanes against
// target lanes, returning four mask words with bit i%64 of word i/64 set
// iff instance i equals every target lane. len(lanes) must equal
// len(target). Same short-circuit as the 64-wide reductions: the
// accumulator empties after ~log2(Width256) compared columns when
// nothing matches.
func MatchSliced256(lanes []Slice256, target []uint64) [4]uint64 {
	acc := [4]uint64{^uint64(0), ^uint64(0), ^uint64(0), ^uint64(0)}
	for l := range lanes {
		tl := target[l]
		for z := 0; z < 64; z++ {
			col := lanes[l][z*4 : z*4+4]
			if tl>>uint(z)&1 == 1 {
				acc[0] &= col[0]
				acc[1] &= col[1]
				acc[2] &= col[2]
				acc[3] &= col[3]
			} else {
				acc[0] &^= col[0]
				acc[1] &^= col[1]
				acc[2] &^= col[2]
				acc[3] &^= col[3]
			}
			if acc[0]|acc[1]|acc[2]|acc[3] == 0 {
				return acc
			}
		}
	}
	return acc
}
