//go:build !amd64

package bitslice

// The feature flags are constant-false off amd64, so the portable
// round is statically selected and the assembly stubs below are dead
// code.
const (
	haveAVX2   = false
	haveAVX512 = false
)

func keccakRound256AVX2(nxt, cur *KeccakState256, c, d *[5]Slice256) {
	panic("bitslice: vector Keccak round is amd64-only")
}

func keccakRound256AVX512(nxt, cur *KeccakState256, c, d *[5]Slice256) {
	panic("bitslice: vector Keccak round is amd64-only")
}

func keccakParity256AVX512(c *[5]Slice256, cur *KeccakState256) {
	panic("bitslice: vector Keccak round is amd64-only")
}

