package bitslice

import (
	"math/rand"
	"testing"

	"rbcsalted/internal/keccak"
	"rbcsalted/internal/sha1"
)

func TestTransposeInvolution(t *testing.T) {
	r := rand.New(rand.NewSource(1))
	var a, orig [64]uint64
	for i := range a {
		a[i] = r.Uint64()
	}
	orig = a
	Transpose64(&a)
	Transpose64(&a)
	if a != orig {
		t.Error("Transpose64 is not an involution")
	}
}

func TestPackUnpackInvariant(t *testing.T) {
	r := rand.New(rand.NewSource(2))
	var vals [Width]uint64
	for i := range vals {
		vals[i] = r.Uint64()
	}
	s := Pack(&vals)
	// Invariant: sliced[z] bit i == values[i] bit z.
	for z := 0; z < 64; z++ {
		for i := 0; i < Width; i++ {
			want := vals[i] >> uint(z) & 1
			got := s[z] >> uint(i) & 1
			if got != want {
				t.Fatalf("slice[%d] bit %d = %d, want %d", z, i, got, want)
			}
		}
	}
	back := Unpack(&s)
	if back != vals {
		t.Error("Unpack(Pack(x)) != x")
	}
}

func TestPack32RoundTrip(t *testing.T) {
	r := rand.New(rand.NewSource(3))
	var vals [Width]uint32
	for i := range vals {
		vals[i] = r.Uint32()
	}
	s := Pack32(&vals)
	if back := Unpack32(&s); back != vals {
		t.Error("Unpack32(Pack32(x)) != x")
	}
}

func TestSplat(t *testing.T) {
	s := Splat(0x8000000000000106)
	vals := Unpack(&s)
	for i, v := range vals {
		if v != 0x8000000000000106 {
			t.Fatalf("instance %d = %#x", i, v)
		}
	}
}

func TestKeccakFMatchesScalar(t *testing.T) {
	r := rand.New(rand.NewSource(4))
	// Width independent random states, evaluated scalar and sliced.
	var scalar [Width][25]uint64
	for i := range scalar {
		for l := range scalar[i] {
			scalar[i][l] = r.Uint64()
		}
	}
	var sliced KeccakState
	var vals [Width]uint64
	for l := 0; l < 25; l++ {
		for i := 0; i < Width; i++ {
			vals[i] = scalar[i][l]
		}
		sliced[l] = Pack(&vals)
	}

	var e Engine
	e.KeccakF(&sliced)
	for i := range scalar {
		keccak.Permute(&scalar[i])
	}

	for l := 0; l < 25; l++ {
		got := Unpack(&sliced[l])
		for i := 0; i < Width; i++ {
			if got[i] != scalar[i][l] {
				t.Fatalf("instance %d lane %d: got %#x want %#x", i, l, got[i], scalar[i][l])
			}
		}
	}
	if e.Counts().Total() == 0 {
		t.Error("no gates counted")
	}
}

func TestSHA3Seeds256MatchesScalar(t *testing.T) {
	r := rand.New(rand.NewSource(5))
	var seeds [Width][32]byte
	for i := range seeds {
		r.Read(seeds[i][:])
	}
	var e Engine
	got := e.SHA3Seeds256(&seeds)
	for i := range seeds {
		want := keccak.Sum256Seed(&seeds[i])
		if got[i] != want {
			t.Fatalf("seed %d: got %x want %x", i, got[i], want)
		}
	}
}

func TestSHA1SeedsMatchesScalar(t *testing.T) {
	r := rand.New(rand.NewSource(6))
	var seeds [Width][32]byte
	for i := range seeds {
		r.Read(seeds[i][:])
	}
	var e Engine
	got := e.SHA1Seeds(&seeds)
	for i := range seeds {
		want := sha1.SumSeed(&seeds[i])
		if got[i] != want {
			t.Fatalf("seed %d: got %x want %x", i, got[i], want)
		}
	}
}

// TestGateCountsStable pins the per-batch gate counts. These feed the APU
// cycle model, so a silent change in the decomposition must fail loudly.
func TestGateCountsStable(t *testing.T) {
	var seeds [Width][32]byte
	var e Engine
	e.SHA3Seeds256(&seeds)
	sha3 := e.Counts()
	e.ResetCounts()
	e.SHA1Seeds(&seeds)
	sha1c := e.Counts()

	// Keccak-f[1600] per round: theta 3200 XOR (1280 parity + 320 mix +
	// 1600 apply), chi 1600 XOR + 1600 AND + 1600 NOT, iota popcount(RC)
	// NOT; 24 rounds.
	if sha3.Xor != 24*(3200+1600) {
		t.Errorf("SHA3 XOR gates = %d, want %d", sha3.Xor, 24*(3200+1600))
	}
	if sha3.And != 24*1600 {
		t.Errorf("SHA3 AND gates = %d, want %d", sha3.And, 24*1600)
	}
	// SHA-1: 4 ripple-carry adds per round plus 5 in the final feed-forward,
	// each contributing 32 OR gates.
	if sha1c.Or != 32*(4*80+5) {
		t.Errorf("SHA1 OR gates = %d, want %d (4 adds/round + 5 final)", sha1c.Or, 32*(4*80+5))
	}
	t.Logf("gates per 64-seed batch: SHA3=%d SHA1=%d (per seed: %d vs %d)",
		sha3.Total(), sha1c.Total(), sha3.Total()/Width, sha1c.Total()/Width)
}

func TestGateCountAccumulation(t *testing.T) {
	var seeds [Width][32]byte
	var e Engine
	e.SHA3Seeds256(&seeds)
	one := e.Counts().Total()
	e.SHA3Seeds256(&seeds)
	if e.Counts().Total() != 2*one {
		t.Error("gate counts do not accumulate across batches")
	}
	e.ResetCounts()
	if e.Counts().Total() != 0 {
		t.Error("ResetCounts did not zero counters")
	}
	var g GateCounts
	g.Add(GateCounts{Xor: 1, And: 2, Or: 3, Not: 4})
	g.Add(GateCounts{Xor: 1})
	if g.Total() != 11 || g.Xor != 2 {
		t.Errorf("GateCounts.Add wrong: %+v", g)
	}
}

func BenchmarkSHA3Seeds256(b *testing.B) {
	var seeds [Width][32]byte
	var e Engine
	b.SetBytes(Width * 32)
	for i := 0; i < b.N; i++ {
		seeds[0][0] = byte(i)
		sink = e.SHA3Seeds256(&seeds)
	}
}

func BenchmarkSHA1Seeds(b *testing.B) {
	var seeds [Width][32]byte
	var e Engine
	b.SetBytes(Width * 32)
	for i := 0; i < b.N; i++ {
		seeds[0][0] = byte(i)
		sink1 = e.SHA1Seeds(&seeds)
	}
}

var (
	sink  [Width][32]byte
	sink1 [Width][20]byte
)
