package bitslice

import (
	"math/rand"
	"testing"

	"rbcsalted/internal/keccak"
	"rbcsalted/internal/sha1"
)

func TestTransposeInvolution(t *testing.T) {
	r := rand.New(rand.NewSource(1))
	var a, orig [64]uint64
	for i := range a {
		a[i] = r.Uint64()
	}
	orig = a
	Transpose64(&a)
	Transpose64(&a)
	if a != orig {
		t.Error("Transpose64 is not an involution")
	}
}

func TestPackUnpackInvariant(t *testing.T) {
	r := rand.New(rand.NewSource(2))
	var vals [Width]uint64
	for i := range vals {
		vals[i] = r.Uint64()
	}
	s := Pack(&vals)
	// Invariant: sliced[z] bit i == values[i] bit z.
	for z := 0; z < 64; z++ {
		for i := 0; i < Width; i++ {
			want := vals[i] >> uint(z) & 1
			got := s[z] >> uint(i) & 1
			if got != want {
				t.Fatalf("slice[%d] bit %d = %d, want %d", z, i, got, want)
			}
		}
	}
	back := Unpack(&s)
	if back != vals {
		t.Error("Unpack(Pack(x)) != x")
	}
}

func TestPack32RoundTrip(t *testing.T) {
	r := rand.New(rand.NewSource(3))
	var vals [Width]uint32
	for i := range vals {
		vals[i] = r.Uint32()
	}
	s := Pack32(&vals)
	if back := Unpack32(&s); back != vals {
		t.Error("Unpack32(Pack32(x)) != x")
	}
}

func TestSplat(t *testing.T) {
	s := Splat(0x8000000000000106)
	vals := Unpack(&s)
	for i, v := range vals {
		if v != 0x8000000000000106 {
			t.Fatalf("instance %d = %#x", i, v)
		}
	}
}

func TestKeccakFMatchesScalar(t *testing.T) {
	r := rand.New(rand.NewSource(4))
	// Width independent random states, evaluated scalar and sliced.
	var scalar [Width][25]uint64
	for i := range scalar {
		for l := range scalar[i] {
			scalar[i][l] = r.Uint64()
		}
	}
	var sliced KeccakState
	var vals [Width]uint64
	for l := 0; l < 25; l++ {
		for i := 0; i < Width; i++ {
			vals[i] = scalar[i][l]
		}
		sliced[l] = Pack(&vals)
	}

	var e Engine
	e.KeccakF(&sliced)
	for i := range scalar {
		keccak.Permute(&scalar[i])
	}

	for l := 0; l < 25; l++ {
		got := Unpack(&sliced[l])
		for i := 0; i < Width; i++ {
			if got[i] != scalar[i][l] {
				t.Fatalf("instance %d lane %d: got %#x want %#x", i, l, got[i], scalar[i][l])
			}
		}
	}
	if e.Counts().Total() == 0 {
		t.Error("no gates counted")
	}
}

func TestSHA3Seeds256MatchesScalar(t *testing.T) {
	r := rand.New(rand.NewSource(5))
	var seeds [Width][32]byte
	for i := range seeds {
		r.Read(seeds[i][:])
	}
	var e Engine
	got := e.SHA3Seeds256(&seeds)
	for i := range seeds {
		want := keccak.Sum256Seed(&seeds[i])
		if got[i] != want {
			t.Fatalf("seed %d: got %x want %x", i, got[i], want)
		}
	}
}

func TestSHA1SeedsMatchesScalar(t *testing.T) {
	r := rand.New(rand.NewSource(6))
	var seeds [Width][32]byte
	for i := range seeds {
		r.Read(seeds[i][:])
	}
	var e Engine
	got := e.SHA1Seeds(&seeds)
	for i := range seeds {
		want := sha1.SumSeed(&seeds[i])
		if got[i] != want {
			t.Fatalf("seed %d: got %x want %x", i, got[i], want)
		}
	}
}

// TestGateCountsStable pins the per-batch gate counts. These feed the APU
// cycle model, so a silent change in the decomposition must fail loudly.
func TestGateCountsStable(t *testing.T) {
	var seeds [Width][32]byte
	var e Engine
	e.SHA3Seeds256(&seeds)
	sha3 := e.Counts()
	e.ResetCounts()
	e.SHA1Seeds(&seeds)
	sha1c := e.Counts()

	// Keccak-f[1600] per round: theta 3200 XOR (1280 parity + 320 mix +
	// 1600 apply), chi 1600 XOR + 1600 AND + 1600 NOT, iota popcount(RC)
	// NOT; 24 rounds.
	if sha3.Xor != 24*(3200+1600) {
		t.Errorf("SHA3 XOR gates = %d, want %d", sha3.Xor, 24*(3200+1600))
	}
	if sha3.And != 24*1600 {
		t.Errorf("SHA3 AND gates = %d, want %d", sha3.And, 24*1600)
	}
	// SHA-1: 4 ripple-carry adds per round plus 5 in the final feed-forward,
	// each contributing 32 OR gates.
	if sha1c.Or != 32*(4*80+5) {
		t.Errorf("SHA1 OR gates = %d, want %d (4 adds/round + 5 final)", sha1c.Or, 32*(4*80+5))
	}
	t.Logf("gates per 64-seed batch: SHA3=%d SHA1=%d (per seed: %d vs %d)",
		sha3.Total(), sha1c.Total(), sha3.Total()/Width, sha1c.Total()/Width)
}

func TestGateCountAccumulation(t *testing.T) {
	var seeds [Width][32]byte
	var e Engine
	e.SHA3Seeds256(&seeds)
	one := e.Counts().Total()
	e.SHA3Seeds256(&seeds)
	if e.Counts().Total() != 2*one {
		t.Error("gate counts do not accumulate across batches")
	}
	e.ResetCounts()
	if e.Counts().Total() != 0 {
		t.Error("ResetCounts did not zero counters")
	}
	var g GateCounts
	g.Add(GateCounts{Xor: 1, And: 2, Or: 3, Not: 4})
	g.Add(GateCounts{Xor: 1})
	if g.Total() != 11 || g.Xor != 2 {
		t.Errorf("GateCounts.Add wrong: %+v", g)
	}
}

func BenchmarkSHA3Seeds256(b *testing.B) {
	var seeds [Width][32]byte
	var e Engine
	b.SetBytes(Width * 32)
	for i := 0; i < b.N; i++ {
		seeds[0][0] = byte(i)
		sink = e.SHA3Seeds256(&seeds)
	}
}

func BenchmarkSHA1Seeds(b *testing.B) {
	var seeds [Width][32]byte
	var e Engine
	b.SetBytes(Width * 32)
	for i := 0; i < b.N; i++ {
		seeds[0][0] = byte(i)
		sink1 = e.SHA1Seeds(&seeds)
	}
}

var (
	sink  [Width][32]byte
	sink1 [Width][20]byte
)

// TestMatchSliced verifies the associative compare: for a batch with
// planted duplicates of a target digest, the match mask has exactly the
// planted instances' bits set, for both hash shapes; a target matching
// nothing reduces to zero.
func TestMatchSliced(t *testing.T) {
	r := rand.New(rand.NewSource(7))
	var seeds [Width][32]byte
	for i := range seeds {
		r.Read(seeds[i][:])
	}
	// Plant instances 3 and 41 as copies of instance 17.
	seeds[3], seeds[41] = seeds[17], seeds[17]
	wantMask := uint64(1)<<3 | uint64(1)<<17 | uint64(1)<<41

	t.Run("sha3", func(t *testing.T) {
		var e Engine
		lanes := e.SHA3Seeds256Sliced(&seeds)
		digest := keccak.Sum256Seed(&seeds[17])
		var target [4]uint64
		for l := range target {
			target[l] = leUint64(digest[l*8:])
		}
		if got := MatchSliced64(lanes[:], target[:]); got != wantMask {
			t.Fatalf("match mask %#x, want %#x", got, wantMask)
		}
		target[0] ^= 1 // no instance matches now
		if got := MatchSliced64(lanes[:], target[:]); got != 0 {
			t.Fatalf("perturbed target matched %#x, want 0", got)
		}
	})

	t.Run("sha1", func(t *testing.T) {
		var e Engine
		words := e.SHA1SeedsSliced(&seeds)
		digest := sha1.SumSeed(&seeds[17])
		var target [5]uint32
		for w := range target {
			target[w] = uint32(digest[w*4])<<24 | uint32(digest[w*4+1])<<16 |
				uint32(digest[w*4+2])<<8 | uint32(digest[w*4+3])
		}
		if got := MatchSliced32(words[:], target[:]); got != wantMask {
			t.Fatalf("match mask %#x, want %#x", got, wantMask)
		}
		target[4] ^= 1
		if got := MatchSliced32(words[:], target[:]); got != 0 {
			t.Fatalf("perturbed target matched %#x, want 0", got)
		}
	})
}

// TestSlicedDigestsMatchUnsliced pins the sliced variants to the
// byte-form entry points they were factored out of.
func TestSlicedDigestsMatchUnsliced(t *testing.T) {
	r := rand.New(rand.NewSource(8))
	var seeds [Width][32]byte
	for i := range seeds {
		r.Read(seeds[i][:])
	}
	var e Engine
	lanes := e.SHA3Seeds256Sliced(&seeds)
	sha3 := e.SHA3Seeds256(&seeds)
	for i := range seeds {
		for l := 0; l < 4; l++ {
			vals := Unpack(&lanes[l])
			if vals[i] != leUint64(sha3[i][l*8:]) {
				t.Fatalf("sha3 instance %d lane %d mismatch", i, l)
			}
		}
	}
	words := e.SHA1SeedsSliced(&seeds)
	sha1d := e.SHA1Seeds(&seeds)
	for i := range seeds {
		for w := 0; w < 5; w++ {
			vals := Unpack32(&words[w])
			want := uint32(sha1d[i][w*4])<<24 | uint32(sha1d[i][w*4+1])<<16 |
				uint32(sha1d[i][w*4+2])<<8 | uint32(sha1d[i][w*4+3])
			if vals[i] != want {
				t.Fatalf("sha1 instance %d word %d mismatch", i, w)
			}
		}
	}
}

// BenchmarkSlicedKernels isolates the raw kernel cost of one 64-wide
// bit-sliced compression against 64 scalar fixed-padding hashes - the
// fundamental comparison behind the batched host matcher.
func BenchmarkSlicedKernels(b *testing.B) {
	var seeds [Width][32]byte
	for i := range seeds {
		seeds[i][0] = byte(i)
		seeds[i][31] = byte(i * 7)
	}
	var e Engine
	b.Run("sha1-sliced", func(b *testing.B) {
		for i := 0; i < b.N; i++ {
			e.SHA1SeedsSliced(&seeds)
		}
	})
	b.Run("sha1-scalar-x64", func(b *testing.B) {
		for i := 0; i < b.N; i++ {
			for j := range seeds {
				sha1.SumSeed(&seeds[j])
			}
		}
	})
	b.Run("sha3-sliced", func(b *testing.B) {
		for i := 0; i < b.N; i++ {
			e.SHA3Seeds256Sliced(&seeds)
		}
	})
	b.Run("sha3-scalar-x64", func(b *testing.B) {
		for i := 0; i < b.N; i++ {
			for j := range seeds {
				keccak.Sum256Seed(&seeds[j])
			}
		}
	})
}
