package bitslice

// Width256 is the lane count of the wide kernels: four 64-bit words per
// bit position, 256 independent hash instances per compression. The wide
// form exists purely for host throughput - its longer flat inner loops
// amortize loop and per-plane setup overhead that dominates the one-word
// Slice64 kernel, and the four words per bit column are independent
// XOR/AND/NOT streams for the out-of-order core to overlap. The APU
// cycle model keeps using the 64-wide kernels; gate counts per seed are
// identical either way.
const Width256 = 256

// Slice256 is a bit-sliced group of Width256 64-bit values, stored flat:
// the word at index z*4 + g holds bit z of instances g*64 .. g*64+63,
// with instance i at bit i%64 of word z*4 + i/64.
//
// The layout is deliberately one flat array rather than [64][4]uint64:
// Go cannot keep multi-element array values in registers (they are not
// SSA-able), so a [4]uint64 column type would force every intermediate
// through the stack. Flat scalar indexing keeps the kernels' inner loops
// identical in shape to the 64-wide ones - plain uint64 loads, ALU ops,
// stores - just four times longer. A rotation by r in the z dimension is
// a contiguous move by 4*r words.
type Slice256 [4 * 64]uint64

// Pack256 converts Width256 64-bit values into wide bit-sliced form,
// establishing the invariant sliced[z*4+i/64] bit i%64 == values[i] bit z.
func Pack256(values *[Width256]uint64) Slice256 {
	var out Slice256
	var grp [Width]uint64
	for g := 0; g < 4; g++ {
		copy(grp[:], values[g*Width:(g+1)*Width])
		s := Pack(&grp)
		for z := 0; z < 64; z++ {
			out[z*4+g] = s[z]
		}
	}
	return out
}

// Unpack256 is the inverse of Pack256.
func Unpack256(s *Slice256) [Width256]uint64 {
	var out [Width256]uint64
	var grp Slice64
	for g := 0; g < 4; g++ {
		for z := 0; z < 64; z++ {
			grp[z] = s[z*4+g]
		}
		vals := Unpack(&grp)
		copy(out[g*Width:(g+1)*Width], vals[:])
	}
	return out
}

// Splat256 returns a wide slice whose every instance holds the same
// 64-bit value, the Width256 analogue of Splat.
func Splat256(v uint64) Slice256 {
	var out Slice256
	for z := 0; z < 64; z++ {
		if v>>uint(z)&1 == 1 {
			out[z*4] = ^uint64(0)
			out[z*4+1] = ^uint64(0)
			out[z*4+2] = ^uint64(0)
			out[z*4+3] = ^uint64(0)
		}
	}
	return out
}
