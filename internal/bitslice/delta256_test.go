package bitslice

import (
	"encoding/binary"
	"math/bits"
	"math/rand"
	"testing"

	"rbcsalted/internal/keccak"
)

// TestFlipBit checks FlipBit toggles exactly the invariant bit: bit z of
// instance i is bit i%64 of word z*4+i/64, and a double flip restores
// the slice.
func TestFlipBit(t *testing.T) {
	r := rand.New(rand.NewSource(21))
	var vals [Width256]uint64
	for i := range vals {
		vals[i] = r.Uint64()
	}
	s := Pack256(&vals)
	orig := s
	for _, c := range [][2]int{{0, 0}, {63, 5}, {64, 63}, {255, 17}, {130, 40}} {
		i, z := c[0], c[1]
		s.FlipBit(i, z)
		back := Unpack256(&s)
		want := vals[i] ^ 1<<uint(z)
		if back[i] != want {
			t.Fatalf("FlipBit(%d,%d): instance %d = %#x, want %#x", i, z, i, back[i], want)
		}
		for j := range back {
			if j != i && back[j] != vals[j] {
				t.Fatalf("FlipBit(%d,%d) disturbed instance %d", i, z, j)
			}
		}
		s.FlipBit(i, z)
	}
	if s != orig {
		t.Fatal("double FlipBit did not restore the slice")
	}
}

// TestDeltaFillMatchesRepack is the delta engine's core property: XORing
// a seed-domain delta into a resident sliced batch with DeltaFill lands
// bit-identically where packing the XORed values from scratch would.
// Deltas range from single bits (the Gray-code step) to dense random
// limbs (a chain re-prime would be cheaper, but correctness must hold).
func TestDeltaFillMatchesRepack(t *testing.T) {
	r := rand.New(rand.NewSource(22))
	var vals [4][Width256]uint64 // message lanes per candidate
	for l := range vals {
		for i := range vals[l] {
			vals[l][i] = r.Uint64()
		}
	}
	var msg [4]Slice256
	PackSeedVals256(&msg, &vals)

	sparse := func() uint64 { return 1 << uint(r.Intn(64)) }
	deltas := [][5]uint64{
		// {lane index, d0..d3} in seed-limb domain (limb 0 least
		// significant, as u256.Limb numbers them).
		{0, sparse(), 0, 0, 0},
		{17, 0, sparse() | sparse(), 0, 0},
		{63, 0, 0, 0, sparse()},
		{64, sparse(), sparse(), sparse(), sparse()},
		{255, r.Uint64(), r.Uint64(), r.Uint64(), r.Uint64()},
		{130, 0, 0, r.Uint64(), 0},
	}
	for _, d := range deltas {
		i := int(d[0])
		DeltaFill(&msg, i, d[1], d[2], d[3], d[4])
		// Seed limb j occupies message lane 3-j byte-swapped, so the
		// expected lane update is the byte-swapped delta limb.
		for limb := 0; limb < 4; limb++ {
			vals[3-limb][i] ^= bits.ReverseBytes64(d[1+limb])
		}
	}

	var want [4]Slice256
	PackSeedVals256(&want, &vals)
	if msg != want {
		t.Fatal("DeltaFill diverged from a fresh pack of the XORed values")
	}
}

// TestSHA3Msg256WideSliced checks the resident-message compression (a)
// produces the same digest columns as the pack-per-call entry point, (b)
// leaves the caller's message lanes intact for the next delta advance,
// and (c) agrees with the scalar reference on a spread of lanes.
func TestSHA3Msg256WideSliced(t *testing.T) {
	r := rand.New(rand.NewSource(23))
	var vals [4][Width256]uint64
	var seeds [Width256][32]byte
	for i := 0; i < Width256; i++ {
		r.Read(seeds[i][:])
		for l := 0; l < 4; l++ {
			vals[l][i] = binary.LittleEndian.Uint64(seeds[i][l*8:])
		}
	}
	var e Engine
	want := e.SHA3Seeds256WideSlicedVals(&vals)

	var msg [4]Slice256
	PackSeedVals256(&msg, &vals)
	resident := msg
	got := e.SHA3Msg256WideSliced(&msg)
	if got != want {
		t.Fatal("SHA3Msg256WideSliced digest columns differ from SHA3Seeds256WideSlicedVals")
	}
	if msg != resident {
		t.Fatal("SHA3Msg256WideSliced mutated the resident message lanes")
	}
	// Second call from the untouched resident state must reproduce the
	// digests (the delta loop compresses the same state after a no-op
	// advance, e.g. repeated pad lanes).
	if again := e.SHA3Msg256WideSliced(&msg); again != want {
		t.Fatal("second compression of the resident state diverged")
	}

	for _, i := range []int{0, 1, 63, 64, 127, 255} {
		ref := keccak.Sum256Seed(&seeds[i])
		for l := 0; l < 4; l++ {
			wantLane := binary.LittleEndian.Uint64(ref[l*8:])
			gotLane := Unpack256(&got[l])[i]
			if gotLane != wantLane {
				t.Fatalf("lane %d digest word %d: got %#x want %#x", i, l, gotLane, wantLane)
			}
		}
	}
}
