// AVX-512VL form of the fused wide Keccak round: identical structure
// and gather constants to the AVX2 form in keccak256_amd64.s, with
// VPTERNLOGQ doing the 3-input work in one ALU op - chi's ANDN+XOR pair
// becomes a single instruction (truth table 0xD2 = a ^ (~b & c)) and the
// 5-way parity xor chain becomes two 3-way xors (0x96). The theta D pass
// walks contiguous memory, so it runs at full 512-bit width (two bit
// columns per ZMM); the chi gather keeps 256-bit registers because its
// rotated source offsets wrap at single-column granularity. The theta
// parity pass runs once as a primer (keccakParity256AVX512); every round
// after that inherits its input parities from the previous round's chi
// store loop, cutting one full read of the 50KB state per round.
//
// The round keeps the five-plane loop structure of the AVX2 form rather
// than fusing all 25 output lanes into one loop: a fused loop walks ~60
// memory streams at once, which defeats the L2 prefetcher and measures
// ~1.8x slower than the ~15 streams of the per-plane loops.

#include "textflag.h"

// func keccakRound256AVX512(nxt, cur *KeccakState256, c, d *[5]Slice256)
//
// Parity-carrying contract: on entry c must hold the column parities of
// cur (keccakParity256AVX512 primes it for round 0); on return c holds
// the column parities of nxt. The next round's theta parity pass - a
// full 50KB read of the state - is folded into this round's chi store
// loop: the five chi outputs of one column are exactly one lane of each
// of the five column parities, so plane 0 initializes c and planes 1-4
// xor-accumulate into it. c is 10KB and stays L1-resident, so the extra
// accumulation traffic is cheap; the 50KB parity pass it replaced read
// from L2. Callers that flip state bits between rounds (iota) must
// apply the same flips to the parities.
TEXT ·keccakRound256AVX512(SB), NOSPLIT, $0-32
	MOVQ nxt+0(FP), DI
	MOVQ cur+8(FP), SI
	MOVQ c+16(FP), R8
	MOVQ d+24(FP), R9

	// ---- theta D: d[x] = c[(x+4)%5] ^ ROTL(c[(x+1)%5], 1). Column 0
	// wraps to the rotated lane's column 63 (offset 2016); columns 1-63
	// read linearly one column behind. Unrolled over x.

	// x = 0: cm = c[4] (+8192), cp = c[1] (+2048), dx = d[0] (+0)
	VMOVDQU 8192(R8), Y0
	VPXOR   4064(R8), Y0, Y0
	VMOVDQU Y0, (R9)
	LEAQ 8224(R8), R10
	LEAQ 2048(R8), R11
	LEAQ 32(R9), R12
	MOVQ $31, CX

dx0512:
	VMOVDQU64 (R10), Z0
	VPXORQ    (R11), Z0, Z0
	VMOVDQU64 Z0, (R12)
	ADDQ $64, R10
	ADDQ $64, R11
	ADDQ $64, R12
	DECQ CX
	JNE  dx0512
	VMOVDQU (R10), Y0
	VPXOR   (R11), Y0, Y0
	VMOVDQU Y0, (R12)

	// x = 1: cm = c[0] (+0), cp = c[2] (+4096), dx = d[1] (+2048)
	VMOVDQU (R8), Y0
	VPXOR   6112(R8), Y0, Y0
	VMOVDQU Y0, 2048(R9)
	LEAQ 32(R8), R10
	LEAQ 4096(R8), R11
	LEAQ 2080(R9), R12
	MOVQ $31, CX

dx1512:
	VMOVDQU64 (R10), Z0
	VPXORQ    (R11), Z0, Z0
	VMOVDQU64 Z0, (R12)
	ADDQ $64, R10
	ADDQ $64, R11
	ADDQ $64, R12
	DECQ CX
	JNE  dx1512
	VMOVDQU (R10), Y0
	VPXOR   (R11), Y0, Y0
	VMOVDQU Y0, (R12)

	// x = 2: cm = c[1] (+2048), cp = c[3] (+6144), dx = d[2] (+4096)
	VMOVDQU 2048(R8), Y0
	VPXOR   8160(R8), Y0, Y0
	VMOVDQU Y0, 4096(R9)
	LEAQ 2080(R8), R10
	LEAQ 6144(R8), R11
	LEAQ 4128(R9), R12
	MOVQ $31, CX

dx2512:
	VMOVDQU64 (R10), Z0
	VPXORQ    (R11), Z0, Z0
	VMOVDQU64 Z0, (R12)
	ADDQ $64, R10
	ADDQ $64, R11
	ADDQ $64, R12
	DECQ CX
	JNE  dx2512
	VMOVDQU (R10), Y0
	VPXOR   (R11), Y0, Y0
	VMOVDQU Y0, (R12)

	// x = 3: cm = c[2] (+4096), cp = c[4] (+8192), dx = d[3] (+6144)
	VMOVDQU 4096(R8), Y0
	VPXOR   10208(R8), Y0, Y0
	VMOVDQU Y0, 6144(R9)
	LEAQ 4128(R8), R10
	LEAQ 8192(R8), R11
	LEAQ 6176(R9), R12
	MOVQ $31, CX

dx3512:
	VMOVDQU64 (R10), Z0
	VPXORQ    (R11), Z0, Z0
	VMOVDQU64 Z0, (R12)
	ADDQ $64, R10
	ADDQ $64, R11
	ADDQ $64, R12
	DECQ CX
	JNE  dx3512
	VMOVDQU (R10), Y0
	VPXOR   (R11), Y0, Y0
	VMOVDQU Y0, (R12)

	// x = 4: cm = c[3] (+6144), cp = c[0] (+0), dx = d[4] (+8192)
	VMOVDQU 6144(R8), Y0
	VPXOR   2016(R8), Y0, Y0
	VMOVDQU Y0, 8192(R9)
	LEAQ 6176(R8), R10
	MOVQ R8, R11
	LEAQ 8224(R9), R12
	MOVQ $31, CX

dx4512:
	VMOVDQU64 (R10), Z0
	VPXORQ    (R11), Z0, Z0
	VMOVDQU64 Z0, (R12)
	ADDQ $64, R10
	ADDQ $64, R11
	ADDQ $64, R12
	DECQ CX
	JNE  dx4512
	VMOVDQU (R10), Y0
	VPXOR   (R11), Y0, Y0
	VMOVDQU Y0, (R12)

	// ---- fused rho+pi+chi, one output plane per block. Per column:
	// five gathered source loads (rotation = per-lane running offset,
	// wrapped at 2048), chi = VPANDN+VPXOR, five stores. Offset
	// constants generated from rhoPi; see file header.

	// plane 0: out lanes 0-4, srcs 0,6,12,18,24
	MOVQ $0, R10
	MOVQ $640, R11
	MOVQ $672, R12
	MOVQ $1376, R13
	MOVQ $1600, R14
	MOVQ DI, R15
	MOVQ R8, BX
	MOVQ $64, CX

chi0512:
	VMOVDQU (SI)(R10*1), Y0
	VPXOR   (R9)(R10*1), Y0, Y0
	VMOVDQU 12288(SI)(R11*1), Y1
	VPXOR   2048(R9)(R11*1), Y1, Y1
	VMOVDQU 24576(SI)(R12*1), Y2
	VPXOR   4096(R9)(R12*1), Y2, Y2
	VMOVDQU 36864(SI)(R13*1), Y3
	VPXOR   6144(R9)(R13*1), Y3, Y3
	VMOVDQU 49152(SI)(R14*1), Y4
	VPXOR   8192(R9)(R14*1), Y4, Y4
	VMOVDQA    Y0, Y5
	VPTERNLOGQ $0xD2, Y2, Y1, Y5
	VMOVDQU    Y5, (R15)
	VMOVDQA    Y1, Y6
	VPTERNLOGQ $0xD2, Y3, Y2, Y6
	VMOVDQU    Y6, 2048(R15)
	VPTERNLOGQ $0xD2, Y4, Y3, Y2
	VMOVDQU    Y2, 4096(R15)
	VPTERNLOGQ $0xD2, Y0, Y4, Y3
	VMOVDQU    Y3, 6144(R15)
	VPTERNLOGQ $0xD2, Y1, Y0, Y4
	VMOVDQU    Y4, 8192(R15)
	VMOVDQU    Y5, (BX)
	VMOVDQU    Y6, 2048(BX)
	VMOVDQU    Y2, 4096(BX)
	VMOVDQU    Y3, 6144(BX)
	VMOVDQU    Y4, 8192(BX)
	ADDQ $32, R10
	ANDQ $2047, R10
	ADDQ $32, R11
	ANDQ $2047, R11
	ADDQ $32, R12
	ANDQ $2047, R12
	ADDQ $32, R13
	ANDQ $2047, R13
	ADDQ $32, R14
	ANDQ $2047, R14
	ADDQ $32, R15
	ADDQ $32, BX
	DECQ CX
	JNE  chi0512

	// plane 1: out lanes 5-9, srcs 3,9,10,16,22
	MOVQ $1152, R10
	MOVQ $1408, R11
	MOVQ $1952, R12
	MOVQ $608, R13
	MOVQ $96, R14
	LEAQ 10240(DI), R15
	MOVQ R8, BX
	MOVQ $64, CX

chi1512:
	VMOVDQU 6144(SI)(R10*1), Y0
	VPXOR   6144(R9)(R10*1), Y0, Y0
	VMOVDQU 18432(SI)(R11*1), Y1
	VPXOR   8192(R9)(R11*1), Y1, Y1
	VMOVDQU 20480(SI)(R12*1), Y2
	VPXOR   (R9)(R12*1), Y2, Y2
	VMOVDQU 32768(SI)(R13*1), Y3
	VPXOR   2048(R9)(R13*1), Y3, Y3
	VMOVDQU 45056(SI)(R14*1), Y4
	VPXOR   4096(R9)(R14*1), Y4, Y4
	VMOVDQA    Y0, Y5
	VPTERNLOGQ $0xD2, Y2, Y1, Y5
	VMOVDQU    Y5, (R15)
	VMOVDQA    Y1, Y6
	VPTERNLOGQ $0xD2, Y3, Y2, Y6
	VMOVDQU    Y6, 2048(R15)
	VPTERNLOGQ $0xD2, Y4, Y3, Y2
	VMOVDQU    Y2, 4096(R15)
	VPTERNLOGQ $0xD2, Y0, Y4, Y3
	VMOVDQU    Y3, 6144(R15)
	VPTERNLOGQ $0xD2, Y1, Y0, Y4
	VMOVDQU    Y4, 8192(R15)
	VPXOR      (BX), Y5, Y5
	VMOVDQU    Y5, (BX)
	VPXOR      2048(BX), Y6, Y6
	VMOVDQU    Y6, 2048(BX)
	VPXOR      4096(BX), Y2, Y2
	VMOVDQU    Y2, 4096(BX)
	VPXOR      6144(BX), Y3, Y3
	VMOVDQU    Y3, 6144(BX)
	VPXOR      8192(BX), Y4, Y4
	VMOVDQU    Y4, 8192(BX)
	ADDQ $32, R10
	ANDQ $2047, R10
	ADDQ $32, R11
	ANDQ $2047, R11
	ADDQ $32, R12
	ANDQ $2047, R12
	ADDQ $32, R13
	ANDQ $2047, R13
	ADDQ $32, R14
	ANDQ $2047, R14
	ADDQ $32, R15
	ADDQ $32, BX
	DECQ CX
	JNE  chi1512

	// plane 2: out lanes 10-14, srcs 1,7,13,19,20
	MOVQ $2016, R10
	MOVQ $1856, R11
	MOVQ $1248, R12
	MOVQ $1792, R13
	MOVQ $1472, R14
	LEAQ 20480(DI), R15
	MOVQ R8, BX
	MOVQ $64, CX

chi2512:
	VMOVDQU 2048(SI)(R10*1), Y0
	VPXOR   2048(R9)(R10*1), Y0, Y0
	VMOVDQU 14336(SI)(R11*1), Y1
	VPXOR   4096(R9)(R11*1), Y1, Y1
	VMOVDQU 26624(SI)(R12*1), Y2
	VPXOR   6144(R9)(R12*1), Y2, Y2
	VMOVDQU 38912(SI)(R13*1), Y3
	VPXOR   8192(R9)(R13*1), Y3, Y3
	VMOVDQU 40960(SI)(R14*1), Y4
	VPXOR   (R9)(R14*1), Y4, Y4
	VMOVDQA    Y0, Y5
	VPTERNLOGQ $0xD2, Y2, Y1, Y5
	VMOVDQU    Y5, (R15)
	VMOVDQA    Y1, Y6
	VPTERNLOGQ $0xD2, Y3, Y2, Y6
	VMOVDQU    Y6, 2048(R15)
	VPTERNLOGQ $0xD2, Y4, Y3, Y2
	VMOVDQU    Y2, 4096(R15)
	VPTERNLOGQ $0xD2, Y0, Y4, Y3
	VMOVDQU    Y3, 6144(R15)
	VPTERNLOGQ $0xD2, Y1, Y0, Y4
	VMOVDQU    Y4, 8192(R15)
	VPXOR      (BX), Y5, Y5
	VMOVDQU    Y5, (BX)
	VPXOR      2048(BX), Y6, Y6
	VMOVDQU    Y6, 2048(BX)
	VPXOR      4096(BX), Y2, Y2
	VMOVDQU    Y2, 4096(BX)
	VPXOR      6144(BX), Y3, Y3
	VMOVDQU    Y3, 6144(BX)
	VPXOR      8192(BX), Y4, Y4
	VMOVDQU    Y4, 8192(BX)
	ADDQ $32, R10
	ANDQ $2047, R10
	ADDQ $32, R11
	ANDQ $2047, R11
	ADDQ $32, R12
	ANDQ $2047, R12
	ADDQ $32, R13
	ANDQ $2047, R13
	ADDQ $32, R14
	ANDQ $2047, R14
	ADDQ $32, R15
	ADDQ $32, BX
	DECQ CX
	JNE  chi2512

	// plane 3: out lanes 15-19, srcs 4,5,11,17,23
	MOVQ $1184, R10
	MOVQ $896, R11
	MOVQ $1728, R12
	MOVQ $1568, R13
	MOVQ $256, R14
	LEAQ 30720(DI), R15
	MOVQ R8, BX
	MOVQ $64, CX

chi3512:
	VMOVDQU 8192(SI)(R10*1), Y0
	VPXOR   8192(R9)(R10*1), Y0, Y0
	VMOVDQU 10240(SI)(R11*1), Y1
	VPXOR   (R9)(R11*1), Y1, Y1
	VMOVDQU 22528(SI)(R12*1), Y2
	VPXOR   2048(R9)(R12*1), Y2, Y2
	VMOVDQU 34816(SI)(R13*1), Y3
	VPXOR   4096(R9)(R13*1), Y3, Y3
	VMOVDQU 47104(SI)(R14*1), Y4
	VPXOR   6144(R9)(R14*1), Y4, Y4
	VMOVDQA    Y0, Y5
	VPTERNLOGQ $0xD2, Y2, Y1, Y5
	VMOVDQU    Y5, (R15)
	VMOVDQA    Y1, Y6
	VPTERNLOGQ $0xD2, Y3, Y2, Y6
	VMOVDQU    Y6, 2048(R15)
	VPTERNLOGQ $0xD2, Y4, Y3, Y2
	VMOVDQU    Y2, 4096(R15)
	VPTERNLOGQ $0xD2, Y0, Y4, Y3
	VMOVDQU    Y3, 6144(R15)
	VPTERNLOGQ $0xD2, Y1, Y0, Y4
	VMOVDQU    Y4, 8192(R15)
	VPXOR      (BX), Y5, Y5
	VMOVDQU    Y5, (BX)
	VPXOR      2048(BX), Y6, Y6
	VMOVDQU    Y6, 2048(BX)
	VPXOR      4096(BX), Y2, Y2
	VMOVDQU    Y2, 4096(BX)
	VPXOR      6144(BX), Y3, Y3
	VMOVDQU    Y3, 6144(BX)
	VPXOR      8192(BX), Y4, Y4
	VMOVDQU    Y4, 8192(BX)
	ADDQ $32, R10
	ANDQ $2047, R10
	ADDQ $32, R11
	ANDQ $2047, R11
	ADDQ $32, R12
	ANDQ $2047, R12
	ADDQ $32, R13
	ANDQ $2047, R13
	ADDQ $32, R14
	ANDQ $2047, R14
	ADDQ $32, R15
	ADDQ $32, BX
	DECQ CX
	JNE  chi3512

	// plane 4: out lanes 20-24, srcs 2,8,14,15,21
	MOVQ $64, R10
	MOVQ $288, R11
	MOVQ $800, R12
	MOVQ $736, R13
	MOVQ $1984, R14
	LEAQ 40960(DI), R15
	MOVQ R8, BX
	MOVQ $64, CX

chi4512:
	VMOVDQU 4096(SI)(R10*1), Y0
	VPXOR   4096(R9)(R10*1), Y0, Y0
	VMOVDQU 16384(SI)(R11*1), Y1
	VPXOR   6144(R9)(R11*1), Y1, Y1
	VMOVDQU 28672(SI)(R12*1), Y2
	VPXOR   8192(R9)(R12*1), Y2, Y2
	VMOVDQU 30720(SI)(R13*1), Y3
	VPXOR   (R9)(R13*1), Y3, Y3
	VMOVDQU 43008(SI)(R14*1), Y4
	VPXOR   2048(R9)(R14*1), Y4, Y4
	VMOVDQA    Y0, Y5
	VPTERNLOGQ $0xD2, Y2, Y1, Y5
	VMOVDQU    Y5, (R15)
	VMOVDQA    Y1, Y6
	VPTERNLOGQ $0xD2, Y3, Y2, Y6
	VMOVDQU    Y6, 2048(R15)
	VPTERNLOGQ $0xD2, Y4, Y3, Y2
	VMOVDQU    Y2, 4096(R15)
	VPTERNLOGQ $0xD2, Y0, Y4, Y3
	VMOVDQU    Y3, 6144(R15)
	VPTERNLOGQ $0xD2, Y1, Y0, Y4
	VMOVDQU    Y4, 8192(R15)
	VPXOR      (BX), Y5, Y5
	VMOVDQU    Y5, (BX)
	VPXOR      2048(BX), Y6, Y6
	VMOVDQU    Y6, 2048(BX)
	VPXOR      4096(BX), Y2, Y2
	VMOVDQU    Y2, 4096(BX)
	VPXOR      6144(BX), Y3, Y3
	VMOVDQU    Y3, 6144(BX)
	VPXOR      8192(BX), Y4, Y4
	VMOVDQU    Y4, 8192(BX)
	ADDQ $32, R10
	ANDQ $2047, R10
	ADDQ $32, R11
	ANDQ $2047, R11
	ADDQ $32, R12
	ANDQ $2047, R12
	ADDQ $32, R13
	ANDQ $2047, R13
	ADDQ $32, R14
	ANDQ $2047, R14
	ADDQ $32, R15
	ADDQ $32, BX
	DECQ CX
	JNE  chi4512

	VZEROUPPER
	RET

// func keccakParity256AVX512(c *[5]Slice256, cur *KeccakState256)
// Column parities of cur into c: c[x] = cur[x]^cur[x+5]^cur[x+10]^
// cur[x+15]^cur[x+20]. Runs once to prime the parity-carrying round
// below; after that each round leaves the next round's parities behind
// as a side effect of its chi stores.
TEXT ·keccakParity256AVX512(SB), NOSPLIT, $0-16
	MOVQ c+0(FP), R8
	MOVQ cur+8(FP), SI

	// One flat loop: as the cursor walks the 5*64 columns of lanes 0-4,
	// the +5 lanes sit at fixed +10240-byte displacements.
	MOVQ SI, R10
	MOVQ R8, R11
	MOVQ $160, CX

parity512:
	VMOVDQU64  (R10), Z0
	VMOVDQU64  10240(R10), Z1
	VPTERNLOGQ $0x96, 20480(R10), Z1, Z0
	VMOVDQU64  30720(R10), Z2
	VPTERNLOGQ $0x96, 40960(R10), Z2, Z0
	VMOVDQU64  Z0, (R11)
	ADDQ $64, R10
	ADDQ $64, R11
	DECQ CX
	JNE  parity512

	VZEROUPPER
	RET

// func cpuSupportsAVX512(SB) bool
TEXT ·cpuSupportsAVX512(SB), NOSPLIT, $0-1
	// OSXSAVE (bit 27) in CPUID.1:ECX
	MOVL $1, AX
	CPUID
	MOVL CX, AX
	ANDL $(1<<27), AX
	JZ   notsup512

	// OS enabled SSE+AVX and the AVX-512 state triple:
	// XCR0 bits 1,2 (XMM,YMM) and 5,6,7 (opmask, ZMM lo/hi) = 0xE6
	XORL CX, CX
	XGETBV
	ANDL $0xE6, AX
	CMPL AX, $0xE6
	JNE  notsup512

	// AVX512F (bit 16) and AVX512VL (bit 31) in CPUID.(7,0):EBX
	MOVL $7, AX
	XORL CX, CX
	CPUID
	MOVL BX, AX
	SHRL $16, AX
	MOVL BX, DX
	SHRL $31, DX
	ANDL DX, AX
	ANDL $1, AX
	MOVB AX, ret+0(FP)
	RET

notsup512:
	MOVB $0, ret+0(FP)
	RET
