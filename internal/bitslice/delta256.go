package bitslice

import "math/bits"

// Sliced-domain delta iteration (DESIGN.md §16). The batched host path
// used to re-marshal every batch: fill 256 candidate seeds as u256
// limbs, then Pack256 them through four 64×64 butterfly transposes
// before a single Keccak round ran. But in the flat Slice256 layout a
// single seed bit of a single lane is one bit of one word at a
// computable offset — so once a batch is resident in sliced form,
// advancing lane i from one candidate to the next is just XORing the
// (sparse) difference of their flip masks into those words, bit by bit.
// The transpose is paid once per search and amortized to near zero.
//
// The coordinate math: candidate seeds enter the wide SHA-3 kernel as
// four 64-bit message lanes, little-endian over the 32-byte big-endian
// seed (lane l = bytes 8l..8l+7). Seed bit p in u256 numbering (bit 0 =
// least significant of limb 0) lives in limb j = p/64, so in message
// lane l = 3 - j; within the lane the byte order reverses, so bit
// b = p%64 (byte B = b/8, bit-in-byte r = b%8) lands at
// z = (7-B)*8 + r. In a Slice256, bit z of lane instance i is bit i%64
// of word z*4 + i/64 — the single word one FlipBit touches.

// FlipBit flips bit z of instance i: one XOR into word z*4 + i/64. It
// is the primitive the delta-advance path is built from.
func (s *Slice256) FlipBit(i, z int) {
	s[z<<2|i>>6] ^= 1 << (uint(i) & 63)
}

// seedBitZ maps bit b of a message-lane value (b = seed bit % 64) to
// its bit index within the lane as hashed: the lane is the byte-reversed
// limb, so the byte index flips while the bit-in-byte survives.
func seedBitZ(b uint) uint {
	return (7-b>>3)<<3 | b&7
}

// DeltaFill XORs a sparse 256-bit seed-domain delta into instance i of
// the resident message lanes: for every set bit p of the delta (limb j
// carries seed bits 64j..64j+63, little-endian — u256 limb order), the
// single word holding bit p's column of instance i is flipped. Cost is
// one trailing-zeros scan plus one XOR per set delta bit, independent of
// batch width — for candidates k bit-flips from a common base the delta
// between any two has at most 2k set bits, so advancing a whole
// 256-lane batch costs O(k) word ops per lane where Pack256 pays four
// full 64×64 transposes regardless of k.
func DeltaFill(msg *[4]Slice256, i int, d0, d1, d2, d3 uint64) {
	w := i >> 6
	bit := uint64(1) << (uint(i) & 63)
	for limb, dv := range [4]uint64{d0, d1, d2, d3} {
		lane := &msg[3-limb]
		for dv != 0 {
			b := uint(bits.TrailingZeros64(dv))
			dv &= dv - 1
			lane[seedBitZ(b)<<2|uint(w)] ^= bit
		}
	}
}

// PackSeedVals256 marshals the four 64-bit message lanes of Width256
// candidates (vals[l][i] = lane l of candidate i, little-endian as
// hashed) into resident sliced form — the pack-once step that primes a
// delta chain. It is exactly the marshalling SHA3Seeds256WideSlicedVals
// performs internally, exposed so callers can keep the packed lanes and
// advance them with DeltaFill instead of re-packing every batch.
func PackSeedVals256(msg *[4]Slice256, vals *[4][Width256]uint64) {
	for lane := 0; lane < 4; lane++ {
		msg[lane] = Pack256(&vals[lane])
	}
}
