//go:build race

package device

// RaceEnabled reports whether the binary was built with the race
// detector. The detector instruments every memory access, which taxes
// pointer-chasing code far more than register arithmetic — so the
// *ratios* MeasureHostCosts exists to capture are distorted on race
// builds (the Gray iterator's int-array walk can measure costlier than
// Gosper's limb arithmetic, inverting the unloaded-host ordering).
// Tests that assert cross-operation cost relationships consult this to
// skip assertions a race build cannot meaningfully check.
const RaceEnabled = true
