package device

import (
	"sync"
	"time"

	"rbcsalted/internal/iterseq"
	"rbcsalted/internal/keccak"
	"rbcsalted/internal/sha1"
	"rbcsalted/internal/u256"
)

// HostCosts holds per-operation costs measured on the host running this
// process. The simulators consume only *ratios* of these numbers (SHA-1
// vs SHA-3, Chase-class vs Gosper vs Algorithm 515); the absolute scale of
// each modelled device comes from the paper anchors below.
type HostCosts struct {
	// SHA1Ns and SHA3Ns are nanoseconds per fixed-padding 32-byte seed hash.
	SHA1Ns float64
	SHA3Ns float64
	// IterNs is nanoseconds per seed iteration (combination generation +
	// seed application) at d=5, indexed by iterseq.Method.
	IterNs map[iterseq.Method]float64
}

var (
	calibOnce sync.Once
	calib     HostCosts
)

// MeasureHostCosts measures and caches the host cost table. The first call
// takes on the order of a hundred milliseconds; subsequent calls are free.
//
// Robustness: the simulators consume these numbers as *ratios*, so the
// measurement must survive a loaded host (e.g. `go test ./...` running
// several test binaries on few cores). All operations are measured in
// interleaved rounds - one short window per op per round, minimum across
// rounds - so a contention epoch inflates every operation together
// instead of poisoning whichever op it happened to land on.
func MeasureHostCosts() HostCosts {
	calibOnce.Do(func() {
		type probe struct {
			op  func(n int)
			n   int
			ns  float64
			set func(v float64)
		}
		calib.IterNs = map[iterseq.Method]float64{}

		probes := []*probe{
			{
				op: func(n int) {
					var seed [32]byte
					for i := 0; i < n; i++ {
						seed[0] = byte(i)
						hashSink1 = sha1.SumSeed(&seed)
					}
				},
				set: func(v float64) { calib.SHA1Ns = v },
			},
			{
				op: func(n int) {
					var seed [32]byte
					for i := 0; i < n; i++ {
						seed[0] = byte(i)
						hashSink3 = keccak.Sum256Seed(&seed)
					}
				},
				set: func(v float64) { calib.SHA3Ns = v },
			},
		}
		base := u256.FromUint64(0x1234)
		for _, m := range iterseq.Methods() {
			method := m
			it, err := iterseq.New(method, 256, 5, 0, -1)
			if err != nil {
				panic(err)
			}
			c := make([]int, 5)
			probes = append(probes, &probe{
				op: func(n int) {
					for i := 0; i < n; i++ {
						if !it.Next(c) {
							it, _ = iterseq.New(method, 256, 5, 0, -1)
							it.Next(c)
						}
						seedSink = iterseq.ApplySeed(base, c)
					}
				},
				set: func(v float64) { calib.IterNs[method] = v },
			})
		}

		// Size each probe's batch to a ~2 ms window.
		for _, p := range probes {
			p.n = 1024
			p.ns = float64(1<<63 - 1)
			for {
				start := time.Now()
				p.op(p.n)
				if time.Since(start) >= 2*time.Millisecond {
					break
				}
				p.n *= 4
			}
		}
		// Interleaved rounds, minimum per probe.
		for round := 0; round < 7; round++ {
			for _, p := range probes {
				start := time.Now()
				p.op(p.n)
				if v := float64(time.Since(start).Nanoseconds()) / float64(p.n); v < p.ns {
					p.ns = v
				}
			}
		}
		for _, p := range probes {
			p.set(p.ns)
		}
	})
	return calib
}

var (
	hashSink1 [20]byte
	hashSink3 [32]byte
	seedSink  u256.Uint256
)

// Paper anchors: measured throughputs and power draws from the paper's
// evaluation, used to pin the absolute scale of each modelled device.
// Search-only times are Table 5 exhaustive rows over u(5) = 8,987,138,113
// seeds; power draws are Table 6.
const (
	// ExhaustiveSeedsD5 is u(5), the seed count behind every d=5
	// exhaustive anchor.
	ExhaustiveSeedsD5 = 8987138113.0

	// AnchorGPUSHA3Seconds and AnchorGPUSHA1Seconds are the A100
	// exhaustive d=5 search times with the best iterator (Tables 4/5),
	// pinning the GPU model's absolute scale per hash. Two anchors are
	// needed because the host's SHA-3:SHA-1 cost ratio (portable Go on
	// this machine) does not transfer to CUDA on an A100.
	AnchorGPUSHA3Seconds = 4.67
	AnchorGPUSHA1Seconds = 1.56

	// AnchorGPUAlg515Seconds is Table 4's Algorithm 515 row (SHA-3,
	// exhaustive d=5): it calibrates how host-measured per-seed iterator
	// costs translate to A100 cycles. The Gosper row (6.04 s) is then a
	// *prediction* of the model, not an input.
	AnchorGPUAlg515Seconds = 7.53

	// AnchorAPUSHA1Seconds and AnchorAPUSHA3Seconds pin the APU scale per
	// hash. Two constants are needed because SHA-3's working set exceeds
	// the per-PE state memory and pays row-spill cycles that SHA-1 does
	// not; the gate-count model captures the compute ratio and these
	// anchors absorb the memory-system difference.
	AnchorAPUSHA1Seconds = 1.62
	AnchorAPUSHA3Seconds = 13.95

	// AnchorCPUSHA1Seconds and AnchorCPUSHA3Seconds pin the 64-core EPYC
	// scale per hash (the authors' AVX C code has a different SHA-1:SHA-3
	// ratio than portable Go).
	AnchorCPUSHA1Seconds = 12.09
	AnchorCPUSHA3Seconds = 60.68
)

// Power models calibrated from Table 6 (average active watts = joules /
// search seconds; idle and peak watts as reported).
var (
	PowerGPUSHA1 = PowerModel{IdleWatts: 31.53, ActiveWatts: 317.20 / 1.56}
	PowerGPUSHA3 = PowerModel{IdleWatts: 31.53, ActiveWatts: 946.55 / 4.67}
	PowerAPUSHA1 = PowerModel{IdleWatts: 22.10, ActiveWatts: 124.43 / 1.62}
	PowerAPUSHA3 = PowerModel{IdleWatts: 22.10, ActiveWatts: 974.06 / 13.95}

	// PeakGPUSHA1 etc. are the maximum draws from Table 6, reported
	// alongside energy.
	PeakGPUSHA1 = 253.43
	PeakGPUSHA3 = 258.29
	PeakAPUSHA1 = 83.81
	PeakAPUSHA3 = 83.63

	// PowerCPUEst is an engineering *estimate* for PlatformA (2x AMD EPYC
	// 7542): Table 6 reports no CPU rows, so the active draw is taken as
	// the two sockets' combined 225 W TDP (an all-core hash search is a
	// TDP-bound workload) and idle as a typical dual-socket server floor.
	// It exists so the planner can weigh SALTED-CPU's energy against the
	// measured GPU/APU draws; it is never used to reproduce a paper table.
	PowerCPUEst = PowerModel{IdleWatts: 90, ActiveWatts: 450}

	// PeakCPUEst mirrors the Table 6 peak columns for the estimated CPU
	// model: TDP-bound, so peak ~= active.
	PeakCPUEst = 450.0
)
