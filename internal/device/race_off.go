//go:build !race

package device

// RaceEnabled reports whether the binary was built with the race
// detector; see race_on.go for why measured cost ratios cannot be
// trusted when it is true.
const RaceEnabled = false
