package device

import (
	"testing"

	"rbcsalted/internal/iterseq"
)

func TestVirtualClock(t *testing.T) {
	var c VirtualClock
	c.AdvanceCycles(1e9, 1e9)
	c.AdvanceSeconds(0.5)
	if got := c.Seconds(); got != 1.5 {
		t.Errorf("Seconds = %v, want 1.5", got)
	}
	c.Reset()
	if c.Seconds() != 0 {
		t.Error("Reset failed")
	}
}

func TestVirtualClockPanics(t *testing.T) {
	var c VirtualClock
	for _, fn := range []func(){
		func() { c.AdvanceCycles(1, 0) },
		func() { c.AdvanceSeconds(-1) },
	} {
		func() {
			defer func() {
				if recover() == nil {
					t.Error("expected panic")
				}
			}()
			fn()
		}()
	}
}

func TestEnergyMeter(t *testing.T) {
	m := EnergyMeter{Power: PowerModel{IdleWatts: 20, ActiveWatts: 100}}
	m.AddBusy(2.0)
	m.AddBusy(1.0)
	if m.Joules() != 300 {
		t.Errorf("Joules = %v, want 300", m.Joules())
	}
	if m.PeakWatts() != 100 {
		t.Errorf("PeakWatts = %v", m.PeakWatts())
	}
	if m.String() == "" {
		t.Error("empty String")
	}
}

func TestSpecs(t *testing.T) {
	if A100.Lanes != 6912 || GeminiAPU.Lanes != 131072 || PlatformACPU.Lanes != 64 {
		t.Error("platform lane counts wrong")
	}
	if APUCores*APUBanksPerCore*APUBPsPerBank*16 != 2097152 {
		t.Error("APU organization does not give ~2M bit processors")
	}
	// PE counts from paper §3.3: 65k for SHA-1, 26k for SHA-3.
	sha1PEs := APUCores * APUBanksPerCore * (APUBPsPerBank / APUBPsPerPESHA1)
	sha3PEs := APUCores * APUBanksPerCore * (APUBPsPerBank / APUBPsPerPESHA3)
	if sha1PEs != 65536 {
		t.Errorf("SHA-1 PEs = %d, want 65536", sha1PEs)
	}
	if sha3PEs != 26176 {
		t.Errorf("SHA-3 PEs = %d, want 26176", sha3PEs)
	}
}

func TestMeasureHostCosts(t *testing.T) {
	c := MeasureHostCosts()
	if c.SHA1Ns <= 0 || c.SHA3Ns <= 0 {
		t.Fatalf("non-positive hash costs: %+v", c)
	}
	if c.SHA3Ns < c.SHA1Ns {
		t.Errorf("SHA-3 (%f ns) measured cheaper than SHA-1 (%f ns)", c.SHA3Ns, c.SHA1Ns)
	}
	for _, m := range iterseq.Methods() {
		if c.IterNs[m] <= 0 {
			t.Errorf("method %v has non-positive cost", m)
		}
	}
	// The relationships the paper's Table 4 rests on. Race builds cannot
	// check these: the detector's per-access instrumentation taxes the
	// Gray iterator's int-array walk more than Gosper's limb arithmetic
	// and inverts the unloaded-host ordering (see RaceEnabled).
	if !RaceEnabled {
		if !(c.IterNs[iterseq.GrayCode] < c.IterNs[iterseq.Gosper]) {
			t.Errorf("Gray (%f) not cheaper than Gosper (%f)",
				c.IterNs[iterseq.GrayCode], c.IterNs[iterseq.Gosper])
		}
		if !(c.IterNs[iterseq.Gosper] < c.IterNs[iterseq.Alg515]*1.10) {
			t.Errorf("Gosper (%f) not cheaper than Alg515 (%f)",
				c.IterNs[iterseq.Gosper], c.IterNs[iterseq.Alg515])
		}
	}
	// Caching: second call must return identical values.
	if c2 := MeasureHostCosts(); c2.SHA1Ns != c.SHA1Ns {
		t.Error("MeasureHostCosts not cached")
	}
}

func TestPowerAnchorsMatchTable6(t *testing.T) {
	// Energy = ActiveWatts x anchor search time must reproduce Table 6.
	cases := []struct {
		p       PowerModel
		seconds float64
		joules  float64
	}{
		{PowerGPUSHA1, 1.56, 317.20},
		{PowerGPUSHA3, 4.67, 946.55},
		{PowerAPUSHA1, 1.62, 124.43},
		{PowerAPUSHA3, 13.95, 974.06},
	}
	for i, c := range cases {
		if got := c.p.Energy(c.seconds); !close(got, c.joules, 1e-6) {
			t.Errorf("case %d: energy %f, want %f", i, got, c.joules)
		}
	}
}

func close(a, b, tol float64) bool {
	d := a - b
	if d < 0 {
		d = -d
	}
	return d <= tol*b
}
