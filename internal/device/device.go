// Package device provides the shared modelling layer for the simulated
// accelerators: hardware platform specifications, virtual time and energy
// accounting, host-measured cost calibration, and the paper-derived
// absolute throughput anchors.
//
// The philosophy (DESIGN.md §5): performance *shape* - which algorithm or
// platform wins, by what factor, where crossovers fall - must come from
// executed code and structural models; only the absolute time scale of
// hardware we do not have (A100, Gemini APU, 64-core EPYC) is pinned to
// the paper's measured throughputs, exactly as one calibration run on the
// authors' testbed would.
package device

import "fmt"

// Spec describes a modelled hardware platform.
type Spec struct {
	Name    string
	ClockHz float64
	// Lanes is the number of hardware parallel units: CUDA cores for the
	// GPU, physical cores for the CPU, bit processors for the APU.
	Lanes int
}

// Platform specifications from paper Table 3.
var (
	// PlatformACPU is the dual AMD EPYC 7542 host (64 physical cores).
	PlatformACPU = Spec{Name: "2xAMD EPYC 7542", ClockHz: 2.9e9, Lanes: 64}
	// A100 is one NVIDIA A100 accelerator.
	A100 = Spec{Name: "NVIDIA A100", ClockHz: 1.41e9, Lanes: 6912}
	// GeminiAPU is the GSI Gemini associative processing unit:
	// 4 cores x 16 banks x 2048 x 16-bit processors.
	GeminiAPU = Spec{Name: "GSI Gemini APU", ClockHz: 575e6, Lanes: 131072}
)

// APU organization constants (paper §3.3 and Figure 2).
const (
	APUCores        = 4
	APUBanksPerCore = 16
	APUBPsPerBank   = 2048
	// APUBPsPerPESHA1 and APUBPsPerPESHA3 are the bit processors ganged
	// into one software-defined processing element: SHA-3's state
	// footprint needs 5 BPs where SHA-1 needs 2, so 2.5x fewer PEs run
	// concurrently (65k vs 26k).
	APUBPsPerPESHA1 = 2
	APUBPsPerPESHA3 = 5
)

// PowerModel turns busy time into energy. ActiveWatts is the average
// package draw during the search including idle draw, matching the
// paper's measurement methodology ("in all presented energy measurements,
// we include this idle energy").
type PowerModel struct {
	IdleWatts   float64
	ActiveWatts float64
}

// Energy returns the joules drawn over busySeconds of search.
func (p PowerModel) Energy(busySeconds float64) float64 {
	return p.ActiveWatts * busySeconds
}

// VirtualClock accumulates modelled device time, decoupled from host
// wall-clock time.
type VirtualClock struct {
	seconds float64
}

// AdvanceCycles adds cycles of work at the given clock rate.
func (c *VirtualClock) AdvanceCycles(cycles, hz float64) {
	if hz <= 0 {
		panic("device: non-positive clock rate")
	}
	c.seconds += cycles / hz
}

// AdvanceSeconds adds raw model time (launch overheads, transfers).
func (c *VirtualClock) AdvanceSeconds(s float64) {
	if s < 0 {
		panic("device: negative time advance")
	}
	c.seconds += s
}

// Seconds returns the accumulated virtual time.
func (c *VirtualClock) Seconds() float64 { return c.seconds }

// Reset zeroes the clock.
func (c *VirtualClock) Reset() { c.seconds = 0 }

// EnergyMeter integrates a power model over virtual time.
type EnergyMeter struct {
	Power  PowerModel
	joules float64
	peakW  float64
}

// AddBusy records busySeconds of active search.
func (m *EnergyMeter) AddBusy(busySeconds float64) {
	m.joules += m.Power.Energy(busySeconds)
	if m.Power.ActiveWatts > m.peakW {
		m.peakW = m.Power.ActiveWatts
	}
}

// Joules returns the total energy recorded.
func (m *EnergyMeter) Joules() float64 { return m.joules }

// PeakWatts returns the maximum draw observed.
func (m *EnergyMeter) PeakWatts() float64 { return m.peakW }

// String formats the meter for reports.
func (m *EnergyMeter) String() string {
	return fmt.Sprintf("%.2f J (peak %.2f W, idle %.2f W)",
		m.joules, m.peakW, m.Power.IdleWatts)
}
