package obs

import (
	"math"
	"sync/atomic"
)

// EWMA is a thread-safe exponentially weighted moving average. The
// planner keeps one per (engine, algorithm, shell-depth) cell to track
// the ratio of observed to predicted cost, so the calibrated static
// curves are corrected by live feedback without a lock on the dispatch
// path.
//
// The zero value is usable and reports no observations; Observe with
// the configured alpha folds each sample in as
// v_new = alpha*sample + (1-alpha)*v_old.
type EWMA struct {
	bits atomic.Uint64 // float64 bits of the current average
	n    atomic.Uint64 // observations folded in
}

// Observe folds one sample into the average with the given smoothing
// factor alpha in (0, 1]. The first observation seeds the average
// directly. Non-finite samples and alphas outside (0, 1] are ignored —
// a poisoned measurement must not wedge the average at NaN forever.
func (e *EWMA) Observe(alpha, sample float64) {
	if math.IsNaN(sample) || math.IsInf(sample, 0) || !(alpha > 0 && alpha <= 1) {
		return
	}
	for {
		old := e.bits.Load()
		var next float64
		if e.n.Load() == 0 {
			next = sample
		} else {
			next = alpha*sample + (1-alpha)*math.Float64frombits(old)
		}
		if e.bits.CompareAndSwap(old, math.Float64bits(next)) {
			e.n.Add(1)
			return
		}
	}
}

// Value returns the current average and the number of observations; the
// average is meaningless when n is zero.
func (e *EWMA) Value() (v float64, n uint64) {
	return math.Float64frombits(e.bits.Load()), e.n.Load()
}
