package obs

import (
	"sync"
	"time"
)

// Trace event kinds. The scheduler emits the sched.* lifecycle of a
// search's queue slot; backends emit the search.* execution events.
const (
	// KindEnqueue: the search was admitted to the scheduler queue.
	KindEnqueue = "sched.enqueue"
	// KindReject: the admission queue was full; the search was shed.
	KindReject = "sched.reject"
	// KindDequeue: a worker picked the search up (Dur = queue wait).
	KindDequeue = "sched.dequeue"
	// KindDiscard: the search left the queue unserved — cancelled while
	// queued, or failed with ErrClosed at shutdown (see Detail).
	KindDiscard = "sched.discard"
	// KindDone: the worker finished the search (Detail = outcome,
	// Dur = backend service time).
	KindDone = "sched.done"
	// KindSearchStart: a backend began executing the search.
	KindSearchStart = "search.start"
	// KindShell: a backend finished one Hamming shell (Depth = distance,
	// N = seeds covered, Dur = modelled/measured shell time).
	KindShell = "search.shell"
	// KindSearchEnd: a backend returned (Detail = found/not-found/
	// timed-out, Depth = early-exit distance, N = hashes executed).
	KindSearchEnd = "search.end"
	// KindInline: the request resolved on the inline host fast path
	// without ever entering a scheduler queue (Depth = inline budget,
	// N = seeds covered).
	KindInline = "search.inline"
	// KindShed: admission control evicted this queued search to make
	// room for a strictly better one (Detail names the shed rule).
	KindShed = "sched.shed"
	// KindHedge: the scheduler re-issued a straggling search to a second
	// backend flight (Dur = hedge delay); Detail on the corresponding
	// done event says which flight won.
	KindHedge = "sched.hedge"
)

// TraceEvent is one step in a search's life. Fields beyond Time and Kind
// are kind-specific; unused ones are zero and omitted from JSON.
type TraceEvent struct {
	// Time is when the event happened; Emit stamps it when zero.
	Time time.Time `json:"time"`
	// Kind is one of the Kind* constants.
	Kind string `json:"kind"`
	// Search correlates the events of one scheduled search (the
	// scheduler stamps Task.TraceID).
	Search uint64 `json:"search,omitempty"`
	// Backend names the engine executing the search.
	Backend string `json:"backend,omitempty"`
	// Detail carries a kind-specific label (outcome, discard reason).
	Detail string `json:"detail,omitempty"`
	// N is a kind-specific count: hashes attempted, seeds covered.
	N uint64 `json:"n,omitempty"`
	// Depth is a Hamming distance: shell being searched, or the
	// early-exit depth at which the match was found.
	Depth int `json:"depth,omitempty"`
	// Dur is a kind-specific duration: queue wait, shell time, service.
	Dur time.Duration `json:"dur_ns,omitempty"`
	// Err is the error text when the step failed.
	Err string `json:"err,omitempty"`
}

// TraceSink receives trace events. Implementations must be safe for
// concurrent use; Emit is called on scheduler and backend hot paths, so
// it should be cheap and must not block.
type TraceSink interface {
	Emit(TraceEvent)
}

// Emit sends ev to sink if it is non-nil, stamping ev.Time when unset.
// The nil check lives here so instrumentation sites stay one line.
func Emit(sink TraceSink, ev TraceEvent) {
	if sink == nil {
		return
	}
	if ev.Time.IsZero() {
		ev.Time = time.Now()
	}
	sink.Emit(ev)
}

// Ring is a fixed-capacity TraceSink keeping the most recent events —
// the flight recorder behind the debug listener's /trace endpoint.
type Ring struct {
	mu    sync.Mutex
	buf   []TraceEvent
	next  int
	count uint64
}

// NewRing returns a ring holding the last capacity events (minimum 1).
func NewRing(capacity int) *Ring {
	if capacity < 1 {
		capacity = 1
	}
	return &Ring{buf: make([]TraceEvent, 0, capacity)}
}

// Emit implements TraceSink.
func (r *Ring) Emit(ev TraceEvent) {
	r.mu.Lock()
	if len(r.buf) < cap(r.buf) {
		r.buf = append(r.buf, ev)
	} else {
		r.buf[r.next] = ev
		r.next = (r.next + 1) % len(r.buf)
	}
	r.count++
	r.mu.Unlock()
}

// Total returns the number of events ever emitted (including evicted).
func (r *Ring) Total() uint64 {
	r.mu.Lock()
	defer r.mu.Unlock()
	return r.count
}

// Snapshot returns the retained events, oldest first.
func (r *Ring) Snapshot() []TraceEvent {
	r.mu.Lock()
	defer r.mu.Unlock()
	out := make([]TraceEvent, 0, len(r.buf))
	out = append(out, r.buf[r.next:]...)
	out = append(out, r.buf[:r.next]...)
	return out
}

// MultiSink fans each event out to every sink in order.
type MultiSink []TraceSink

// Emit implements TraceSink.
func (m MultiSink) Emit(ev TraceEvent) {
	for _, s := range m {
		if s != nil {
			s.Emit(ev)
		}
	}
}
