// Package obs is the serving stack's observability layer: dependency-free
// atomic counters, gauges and fixed-bucket histograms with JSON snapshot
// export, plus per-search trace events (trace.go) and a debug HTTP
// handler (debug.go) exposing /metrics and net/http/pprof.
//
// The paper's contribution is measured throughput and latency (Tables
// 2-5); this package makes the same numbers visible from a live server:
// queue waits, search service times, shed load and per-status protocol
// errors, without any third-party dependency. Everything is safe for
// concurrent use and cheap enough to leave enabled in production — a
// counter increment is one atomic add, a histogram observation is two
// atomic adds plus a branch-free bucket lookup.
package obs

import (
	"encoding/json"
	"fmt"
	"io"
	"math"
	"sort"
	"sync"
	"sync/atomic"
)

// Counter is a monotonically increasing atomic counter.
type Counter struct {
	v atomic.Uint64
}

// Inc adds one.
func (c *Counter) Inc() { c.v.Add(1) }

// Add adds n.
func (c *Counter) Add(n uint64) { c.v.Add(n) }

// Value returns the current count.
func (c *Counter) Value() uint64 { return c.v.Load() }

// Gauge is an atomic instantaneous value (e.g. connections open,
// searches in flight).
type Gauge struct {
	v atomic.Int64
}

// Set replaces the value.
func (g *Gauge) Set(v int64) { g.v.Store(v) }

// Add moves the value by d (negative to decrease).
func (g *Gauge) Add(d int64) { g.v.Add(d) }

// Inc adds one.
func (g *Gauge) Inc() { g.v.Add(1) }

// Dec subtracts one.
func (g *Gauge) Dec() { g.v.Add(-1) }

// Value returns the current value.
func (g *Gauge) Value() int64 { return g.v.Load() }

// DefLatencyBuckets is the default histogram geometry for latencies in
// seconds: roughly exponential from 100 µs to 100 s, wide enough for
// both queue waits and paper-scale (~20 s threshold) search times.
var DefLatencyBuckets = []float64{
	0.0001, 0.00025, 0.0005, 0.001, 0.0025, 0.005, 0.01, 0.025, 0.05,
	0.1, 0.25, 0.5, 1, 2.5, 5, 10, 25, 50, 100,
}

// DefBatchNsBuckets is the histogram geometry for per-batch hot-path
// phase timings in nanoseconds: roughly exponential from 250 ns to
// 10 ms. A 256-candidate fill or pack phase runs single-digit
// microseconds on the reference host; the wide range keeps the buckets
// meaningful from one-cacheline delta advances up to contended
// full-repack batches.
var DefBatchNsBuckets = []float64{
	250, 500, 1_000, 2_500, 5_000, 10_000, 25_000, 50_000,
	100_000, 250_000, 500_000, 1_000_000, 2_500_000, 10_000_000,
}

// Histogram is a fixed-bucket histogram of float64 observations. Bounds
// are inclusive upper bucket edges in ascending order; observations
// above the last bound land in an overflow bucket. All methods are safe
// for concurrent use.
type Histogram struct {
	bounds []float64
	counts []atomic.Uint64 // len(bounds)+1; last is overflow
	count  atomic.Uint64
	sum    atomic.Uint64 // float64 bits, CAS-updated
	min    atomic.Uint64 // float64 bits
	max    atomic.Uint64 // float64 bits
}

// NewHistogram builds a histogram with the given ascending bucket
// bounds. It panics on an empty or unsorted bound list (a programming
// error, not an operational condition).
func NewHistogram(bounds []float64) *Histogram {
	if len(bounds) == 0 {
		panic("obs: histogram needs at least one bucket bound")
	}
	if !sort.Float64sAreSorted(bounds) {
		panic("obs: histogram bounds must be ascending")
	}
	h := &Histogram{
		bounds: append([]float64(nil), bounds...),
		counts: make([]atomic.Uint64, len(bounds)+1),
	}
	h.min.Store(math.Float64bits(math.MaxFloat64))
	h.max.Store(math.Float64bits(-math.MaxFloat64))
	return h
}

// Observe records one value.
func (h *Histogram) Observe(v float64) {
	i := sort.SearchFloat64s(h.bounds, v) // first bound >= v
	h.counts[i].Add(1)
	h.count.Add(1)
	for {
		old := h.sum.Load()
		if h.sum.CompareAndSwap(old, math.Float64bits(math.Float64frombits(old)+v)) {
			break
		}
	}
	for {
		old := h.min.Load()
		if v >= math.Float64frombits(old) || h.min.CompareAndSwap(old, math.Float64bits(v)) {
			break
		}
	}
	for {
		old := h.max.Load()
		if v <= math.Float64frombits(old) || h.max.CompareAndSwap(old, math.Float64bits(v)) {
			break
		}
	}
}

// HistogramSnapshot is a point-in-time copy of a Histogram, shaped for
// JSON export (no ±Inf values).
type HistogramSnapshot struct {
	// Count and Sum aggregate all observations; Min/Max are zero when
	// Count is zero.
	Count uint64  `json:"count"`
	Sum   float64 `json:"sum"`
	Min   float64 `json:"min"`
	Max   float64 `json:"max"`
	// Bounds are the inclusive upper bucket edges; Counts[i] is the
	// number of observations in (Bounds[i-1], Bounds[i]]. Overflow
	// counts observations above the last bound.
	Bounds   []float64 `json:"bounds"`
	Counts   []uint64  `json:"counts"`
	Overflow uint64    `json:"overflow"`
}

// Snapshot copies the histogram's current state. Concurrent Observe
// calls may be torn across Count/Sum/bucket totals by at most the
// in-flight observations; each individual field is internally
// consistent.
func (h *Histogram) Snapshot() HistogramSnapshot {
	s := HistogramSnapshot{
		Count:  h.count.Load(),
		Sum:    math.Float64frombits(h.sum.Load()),
		Bounds: append([]float64(nil), h.bounds...),
		Counts: make([]uint64, len(h.bounds)),
	}
	if s.Count > 0 {
		s.Min = math.Float64frombits(h.min.Load())
		s.Max = math.Float64frombits(h.max.Load())
	}
	for i := range s.Counts {
		s.Counts[i] = h.counts[i].Load()
	}
	s.Overflow = h.counts[len(h.bounds)].Load()
	return s
}

// Mean returns the snapshot's average observation, 0 when empty.
func (s HistogramSnapshot) Mean() float64 {
	if s.Count == 0 {
		return 0
	}
	return s.Sum / float64(s.Count)
}

// Quantile estimates the q-quantile (q in [0,1]) by linear
// interpolation inside the containing bucket; overflow-bucket hits
// return Max. It returns 0 when the histogram is empty.
func (s HistogramSnapshot) Quantile(q float64) float64 {
	if s.Count == 0 {
		return 0
	}
	if q < 0 {
		q = 0
	}
	if q > 1 {
		q = 1
	}
	rank := q * float64(s.Count)
	cum := uint64(0)
	for i, c := range s.Counts {
		cum += c
		if float64(cum) >= rank && c > 0 {
			lo := 0.0
			if i > 0 {
				lo = s.Bounds[i-1]
			}
			hi := s.Bounds[i]
			within := rank - float64(cum-c)
			return lo + (hi-lo)*within/float64(c)
		}
	}
	return s.Max
}

// Registry is a named collection of metrics. Metric constructors are
// get-or-create: asking twice for the same name returns the same metric,
// so independently wired components can share counters. Names must not
// collide across metric kinds.
type Registry struct {
	mu       sync.RWMutex
	counters map[string]*Counter
	gauges   map[string]*Gauge
	hists    map[string]*Histogram
	funcs    map[string]func() any
}

// NewRegistry returns an empty registry.
func NewRegistry() *Registry {
	return &Registry{
		counters: make(map[string]*Counter),
		gauges:   make(map[string]*Gauge),
		hists:    make(map[string]*Histogram),
		funcs:    make(map[string]func() any),
	}
}

func (r *Registry) taken(name string) bool {
	_, c := r.counters[name]
	_, g := r.gauges[name]
	_, h := r.hists[name]
	_, f := r.funcs[name]
	return c || g || h || f
}

// Counter returns the named counter, creating it on first use.
func (r *Registry) Counter(name string) *Counter {
	r.mu.Lock()
	defer r.mu.Unlock()
	if c, ok := r.counters[name]; ok {
		return c
	}
	if r.taken(name) {
		panic(fmt.Sprintf("obs: metric %q already registered with another kind", name))
	}
	c := &Counter{}
	r.counters[name] = c
	return c
}

// Gauge returns the named gauge, creating it on first use.
func (r *Registry) Gauge(name string) *Gauge {
	r.mu.Lock()
	defer r.mu.Unlock()
	if g, ok := r.gauges[name]; ok {
		return g
	}
	if r.taken(name) {
		panic(fmt.Sprintf("obs: metric %q already registered with another kind", name))
	}
	g := &Gauge{}
	r.gauges[name] = g
	return g
}

// Histogram returns the named histogram, creating it with bounds on
// first use (later calls ignore bounds).
func (r *Registry) Histogram(name string, bounds []float64) *Histogram {
	r.mu.Lock()
	defer r.mu.Unlock()
	if h, ok := r.hists[name]; ok {
		return h
	}
	if r.taken(name) {
		panic(fmt.Sprintf("obs: metric %q already registered with another kind", name))
	}
	h := NewHistogram(bounds)
	r.hists[name] = h
	return h
}

// Func registers a callback evaluated at snapshot time — the expvar.Func
// idiom, used to re-export external state (e.g. scheduler Stats) through
// /metrics without copying it on every update. The callback must return
// a JSON-marshalable value and be safe for concurrent use.
func (r *Registry) Func(name string, f func() any) {
	r.mu.Lock()
	defer r.mu.Unlock()
	if r.taken(name) {
		panic(fmt.Sprintf("obs: metric %q already registered", name))
	}
	r.funcs[name] = f
}

// Snapshot evaluates every metric: counters as uint64, gauges as int64,
// histograms as HistogramSnapshot, funcs as their return value.
func (r *Registry) Snapshot() map[string]any {
	r.mu.RLock()
	counters := make(map[string]*Counter, len(r.counters))
	for n, c := range r.counters {
		counters[n] = c
	}
	gauges := make(map[string]*Gauge, len(r.gauges))
	for n, g := range r.gauges {
		gauges[n] = g
	}
	hists := make(map[string]*Histogram, len(r.hists))
	for n, h := range r.hists {
		hists[n] = h
	}
	funcs := make(map[string]func() any, len(r.funcs))
	for n, f := range r.funcs {
		funcs[n] = f
	}
	r.mu.RUnlock()

	// Evaluate outside the lock: Func callbacks may take their own locks
	// (e.g. scheduler stats) and must not nest under the registry's.
	out := make(map[string]any, len(counters)+len(gauges)+len(hists)+len(funcs))
	for n, c := range counters {
		out[n] = c.Value()
	}
	for n, g := range gauges {
		out[n] = g.Value()
	}
	for n, h := range hists {
		out[n] = h.Snapshot()
	}
	for n, f := range funcs {
		out[n] = f()
	}
	return out
}

// WriteJSON writes the snapshot as indented JSON with sorted keys (the
// /metrics wire format).
func (r *Registry) WriteJSON(w io.Writer) error {
	enc := json.NewEncoder(w)
	enc.SetIndent("", "  ")
	return enc.Encode(r.Snapshot())
}
