package obs

import (
	"encoding/json"
	"fmt"
	"math"
	"net/http"
	"net/http/httptest"
	"sync"
	"testing"
	"time"
)

func TestCounterGaugeConcurrent(t *testing.T) {
	var c Counter
	var g Gauge
	var wg sync.WaitGroup
	for i := 0; i < 8; i++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for j := 0; j < 1000; j++ {
				c.Inc()
				g.Inc()
				g.Dec()
			}
		}()
	}
	wg.Wait()
	if c.Value() != 8000 {
		t.Errorf("counter = %d, want 8000", c.Value())
	}
	if g.Value() != 0 {
		t.Errorf("gauge = %d, want 0", g.Value())
	}
	c.Add(2)
	if c.Value() != 8002 {
		t.Errorf("counter = %d, want 8002", c.Value())
	}
	g.Set(-5)
	g.Add(3)
	if g.Value() != -2 {
		t.Errorf("gauge = %d, want -2", g.Value())
	}
}

func TestHistogramBucketsAndStats(t *testing.T) {
	h := NewHistogram([]float64{1, 10, 100})
	for _, v := range []float64{0.5, 1, 5, 50, 500} {
		h.Observe(v)
	}
	s := h.Snapshot()
	if s.Count != 5 {
		t.Fatalf("count = %d, want 5", s.Count)
	}
	if s.Sum != 556.5 {
		t.Errorf("sum = %v, want 556.5", s.Sum)
	}
	if s.Min != 0.5 || s.Max != 500 {
		t.Errorf("min/max = %v/%v, want 0.5/500", s.Min, s.Max)
	}
	// Bounds are inclusive upper edges: 0.5 and 1 land in <=1; 5 in
	// (1,10]; 50 in (10,100]; 500 overflows.
	want := []uint64{2, 1, 1}
	for i, w := range want {
		if s.Counts[i] != w {
			t.Errorf("bucket %d = %d, want %d", i, s.Counts[i], w)
		}
	}
	if s.Overflow != 1 {
		t.Errorf("overflow = %d, want 1", s.Overflow)
	}
	if m := s.Mean(); math.Abs(m-111.3) > 1e-9 {
		t.Errorf("mean = %v, want 111.3", m)
	}
}

func TestHistogramQuantile(t *testing.T) {
	h := NewHistogram([]float64{1, 2, 4, 8})
	for i := 0; i < 100; i++ {
		h.Observe(1.5) // all in the (1,2] bucket
	}
	s := h.Snapshot()
	q := s.Quantile(0.5)
	if q < 1 || q > 2 {
		t.Errorf("p50 = %v, want inside (1,2]", q)
	}
	if got := s.Quantile(0); got < 1 || got > 2 {
		t.Errorf("p0 = %v, want inside containing bucket", got)
	}
	empty := NewHistogram([]float64{1}).Snapshot()
	if empty.Quantile(0.99) != 0 {
		t.Errorf("empty quantile = %v, want 0", empty.Quantile(0.99))
	}
}

func TestHistogramSnapshotEmpty(t *testing.T) {
	s := NewHistogram(DefLatencyBuckets).Snapshot()
	if s.Count != 0 || s.Min != 0 || s.Max != 0 || s.Sum != 0 {
		t.Errorf("empty snapshot not zero: %+v", s)
	}
	// An empty snapshot must be JSON-encodable (no ±Inf leftovers).
	if _, err := json.Marshal(s); err != nil {
		t.Fatalf("marshal empty snapshot: %v", err)
	}
}

func TestRegistryGetOrCreateAndSnapshot(t *testing.T) {
	r := NewRegistry()
	c1 := r.Counter("reqs")
	c2 := r.Counter("reqs")
	if c1 != c2 {
		t.Fatal("Counter not get-or-create")
	}
	c1.Add(3)
	r.Gauge("open").Set(7)
	r.Histogram("lat", []float64{1}).Observe(0.5)
	r.Func("stats", func() any { return map[string]int{"x": 1} })

	snap := r.Snapshot()
	if snap["reqs"] != uint64(3) {
		t.Errorf("reqs = %v, want 3", snap["reqs"])
	}
	if snap["open"] != int64(7) {
		t.Errorf("open = %v, want 7", snap["open"])
	}
	if hs, ok := snap["lat"].(HistogramSnapshot); !ok || hs.Count != 1 {
		t.Errorf("lat = %#v, want histogram with one observation", snap["lat"])
	}
	if snap["stats"] == nil {
		t.Error("func metric missing from snapshot")
	}
}

func TestRegistryKindCollisionPanics(t *testing.T) {
	r := NewRegistry()
	r.Counter("x")
	defer func() {
		if recover() == nil {
			t.Error("expected panic on kind collision")
		}
	}()
	r.Gauge("x")
}

func TestRingKeepsMostRecent(t *testing.T) {
	ring := NewRing(4)
	for i := 0; i < 10; i++ {
		Emit(ring, TraceEvent{Kind: KindShell, Depth: i})
	}
	got := ring.Snapshot()
	if len(got) != 4 {
		t.Fatalf("retained %d events, want 4", len(got))
	}
	for i, ev := range got {
		if ev.Depth != 6+i {
			t.Errorf("event %d depth = %d, want %d", i, ev.Depth, 6+i)
		}
		if ev.Time.IsZero() {
			t.Error("Emit did not stamp Time")
		}
	}
	if ring.Total() != 10 {
		t.Errorf("total = %d, want 10", ring.Total())
	}
}

func TestEmitNilSinkIsNoop(t *testing.T) {
	Emit(nil, TraceEvent{Kind: KindDone}) // must not panic
	var m MultiSink
	m.Emit(TraceEvent{})
	MultiSink{nil, NewRing(1)}.Emit(TraceEvent{Kind: KindDone})
}

func TestHandlerMetricsTraceHealthz(t *testing.T) {
	reg := NewRegistry()
	reg.Counter("hits").Add(2)
	reg.Func("now", func() any { return "fixed" })
	ring := NewRing(8)
	Emit(ring, TraceEvent{Kind: KindEnqueue, Search: 1})
	srv := httptest.NewServer(Handler(reg, ring))
	defer srv.Close()

	var metrics map[string]any
	getJSON(t, srv.URL+"/metrics", &metrics)
	if metrics["hits"] != float64(2) {
		t.Errorf("/metrics hits = %v, want 2", metrics["hits"])
	}
	if metrics["now"] != "fixed" {
		t.Errorf("/metrics now = %v, want fixed", metrics["now"])
	}

	var trace struct {
		Total  uint64       `json:"total"`
		Events []TraceEvent `json:"events"`
	}
	getJSON(t, srv.URL+"/trace", &trace)
	if trace.Total != 1 || len(trace.Events) != 1 || trace.Events[0].Kind != KindEnqueue {
		t.Errorf("/trace = %+v, want the one enqueue event", trace)
	}

	resp, err := http.Get(srv.URL + "/healthz")
	if err != nil || resp.StatusCode != http.StatusOK {
		t.Fatalf("/healthz: %v %v", resp, err)
	}
	resp.Body.Close()

	resp, err = http.Get(srv.URL + "/debug/pprof/cmdline")
	if err != nil || resp.StatusCode != http.StatusOK {
		t.Fatalf("/debug/pprof/cmdline: %v %v", resp, err)
	}
	resp.Body.Close()
}

func TestHandlerTraceWithoutRing404s(t *testing.T) {
	srv := httptest.NewServer(Handler(NewRegistry(), nil))
	defer srv.Close()
	resp, err := http.Get(srv.URL + "/trace")
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusNotFound {
		t.Errorf("/trace without ring = %d, want 404", resp.StatusCode)
	}
}

func TestServeListensAndStops(t *testing.T) {
	reg := NewRegistry()
	ln, err := Serve("127.0.0.1:0", reg, nil)
	if err != nil {
		t.Fatal(err)
	}
	defer ln.Close()
	var snap map[string]any
	getJSON(t, fmt.Sprintf("http://%s/metrics", ln.Addr()), &snap)
}

func getJSON(t *testing.T, url string, into any) {
	t.Helper()
	client := &http.Client{Timeout: 5 * time.Second}
	resp, err := client.Get(url)
	if err != nil {
		t.Fatalf("GET %s: %v", url, err)
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("GET %s: status %d", url, resp.StatusCode)
	}
	if err := json.NewDecoder(resp.Body).Decode(into); err != nil {
		t.Fatalf("decode %s: %v", url, err)
	}
}
