package obs

import (
	"encoding/json"
	"net"
	"net/http"
	"net/http/pprof"
)

// Handler serves the debug surface for a registry:
//
//	/metrics        JSON snapshot of every registered metric
//	/trace          the trace ring's retained events (404 when ring is nil)
//	/healthz        liveness probe ("ok")
//	/debug/pprof/   the standard net/http/pprof profiles
//
// The handler is read-only and unauthenticated; bind it to a loopback or
// operator-only address, never the client-facing one.
func Handler(reg *Registry, ring *Ring) http.Handler {
	mux := http.NewServeMux()
	mux.HandleFunc("/metrics", func(w http.ResponseWriter, _ *http.Request) {
		w.Header().Set("Content-Type", "application/json")
		if err := reg.WriteJSON(w); err != nil {
			http.Error(w, err.Error(), http.StatusInternalServerError)
		}
	})
	mux.HandleFunc("/trace", func(w http.ResponseWriter, _ *http.Request) {
		if ring == nil {
			http.NotFound(w, nil)
			return
		}
		w.Header().Set("Content-Type", "application/json")
		enc := json.NewEncoder(w)
		enc.SetIndent("", "  ")
		_ = enc.Encode(struct {
			Total  uint64       `json:"total"`
			Events []TraceEvent `json:"events"`
		}{ring.Total(), ring.Snapshot()})
	})
	mux.HandleFunc("/healthz", func(w http.ResponseWriter, _ *http.Request) {
		_, _ = w.Write([]byte("ok\n"))
	})
	mux.HandleFunc("/debug/pprof/", pprof.Index)
	mux.HandleFunc("/debug/pprof/cmdline", pprof.Cmdline)
	mux.HandleFunc("/debug/pprof/profile", pprof.Profile)
	mux.HandleFunc("/debug/pprof/symbol", pprof.Symbol)
	mux.HandleFunc("/debug/pprof/trace", pprof.Trace)
	return mux
}

// Serve starts Handler on addr in a background goroutine and returns
// the listener (close it to stop). It is the one-call debug listener
// behind rbc-server's -debug-addr flag.
func Serve(addr string, reg *Registry, ring *Ring) (net.Listener, error) {
	ln, err := net.Listen("tcp", addr)
	if err != nil {
		return nil, err
	}
	go func() {
		_ = http.Serve(ln, Handler(reg, ring))
	}()
	return ln, nil
}
