package durable

import (
	"errors"
	"fmt"
	"os"
	"sync"
	"time"

	"rbcsalted/internal/core"
	"rbcsalted/internal/obs"
)

// Options configures a durable State.
type Options struct {
	// Dir is the data directory (created if missing). It holds WAL
	// segments (wal-*.log) and snapshots (snap-*.db).
	Dir string
	// MasterKey seals the image store (AES-256-GCM). It must match the
	// key the directory was written under; a mismatch surfaces on the
	// first image Get, exactly like ImageStore.
	MasterKey [32]byte
	// Sync selects the WAL fsync policy (default SyncInterval).
	Sync SyncPolicy
	// SyncInterval paces the background fsync under SyncInterval
	// (default 100 ms).
	SyncInterval time.Duration
	// SegmentBytes caps a WAL segment before rotation (default 8 MiB).
	SegmentBytes int64
	// Shards is the lock-stripe count of the in-memory stores (default
	// core.DefaultShards).
	Shards int
	// Metrics, when non-nil, receives the subsystem's counters and
	// histograms under "durable.*".
	Metrics *obs.Registry
}

// RecoveryStats reports what Open found and repaired.
type RecoveryStats struct {
	// SnapshotSeq is the sequence cut of the snapshot recovery started
	// from (0 = no snapshot).
	SnapshotSeq uint64 `json:"snapshot_seq"`
	// BadSnapshots counts snapshot files that failed to decode and were
	// skipped in favour of an older one.
	BadSnapshots int `json:"bad_snapshots"`
	// Records is the number of WAL records replayed over the snapshot.
	Records int `json:"records"`
	// Skipped counts records at or below the snapshot cut (present in
	// not-yet-compacted segments).
	Skipped int `json:"skipped"`
	// Segments is the number of WAL segment files scanned.
	Segments int `json:"segments"`
	// TornBytes is the number of bytes truncated off a torn tail.
	TornBytes int64 `json:"torn_bytes"`
	// Truncated reports whether a torn tail was repaired.
	Truncated bool `json:"truncated"`
}

// nonceSlack is added to the recovered nonce high-water mark on every
// Open. A torn tail can lose the SessionOpen records of the last
// in-flight handshakes; reissuing one of those nonces would reproduce
// the same address map and make a sniffed digest replayable. Skipping a
// window guarantees post-recovery nonces are fresh even then.
const nonceSlack = 1 << 12

// State is the durable root of the CA's mutable state: an image store,
// a registration authority and a session table whose every mutation is
// journaled to a write-ahead log before it is applied, and which are
// rebuilt by replaying WAL-over-snapshot on Open.
//
// State implements core.Journal; Open attaches it to the three stores,
// so using them through their normal APIs (ImageStore.Put, RA.Update,
// SessionTable.Open, ...) is what makes them durable. Wire them into a
// core.CA via core.NewCA(state.Images(), ..., state.RA(),
// core.CAConfig{Sessions: state.Sessions()}).
type State struct {
	opts   Options
	wal    *wal
	images *core.ImageStore
	ra     *core.RA
	sess   *core.SessionTable
	rec    RecoveryStats

	snapMu sync.Mutex // one snapshot at a time

	m struct {
		snapshots    *obs.Counter
		snapshotSecs *obs.Histogram
		snapshotSize *obs.Gauge
		compacted    *obs.Counter
	}
}

// Open opens (or initializes) the data directory and rebuilds the
// stores: newest decodable snapshot first, then every WAL record past
// the snapshot's sequence cut, truncating a torn tail if the last write
// was interrupted. The returned State is ready to serve; call Close for
// a final snapshot and a clean shutdown.
func Open(opts Options) (*State, error) {
	if opts.Dir == "" {
		return nil, errors.New("durable: Options.Dir required")
	}
	if err := os.MkdirAll(opts.Dir, 0o700); err != nil {
		return nil, fmt.Errorf("durable: %w", err)
	}
	shards := opts.Shards
	if shards <= 0 {
		shards = core.DefaultShards
	}
	images, err := core.NewImageStoreShards(opts.MasterKey, shards)
	if err != nil {
		return nil, err
	}
	s := &State{
		opts:   opts,
		images: images,
		ra:     core.NewRAShards(shards),
		sess:   core.NewSessionTableShards(shards),
	}

	snap, badSnaps, err := loadSnapshot(opts.Dir)
	if err != nil {
		return nil, err
	}
	s.rec.BadSnapshots = badSnaps
	var from uint64
	if snap != nil {
		from = snap.Seq
		s.rec.SnapshotSeq = snap.Seq
		for id, blob := range snap.Images {
			s.images.PutSealed(id, blob)
		}
		for id, key := range snap.RAKeys {
			s.ra.SetKey(id, key)
		}
		for id, cert := range snap.RACerts {
			s.ra.SetCertificate(id, cert)
		}
		for id, ch := range snap.Sessions {
			s.sess.Restore(id, ch)
		}
		s.sess.BumpNonce(snap.Nonce)
	}

	w, walRec, err := openWAL(opts.Dir, walConfig{
		policy:   opts.Sync,
		interval: opts.SyncInterval,
		segBytes: opts.SegmentBytes,
	}, from, s.applyPayload)
	if err != nil {
		return nil, err
	}
	s.wal = w
	s.rec.Records = walRec.records
	s.rec.Skipped = walRec.skipped
	s.rec.Segments = walRec.segments
	s.rec.TornBytes = walRec.tornBytes
	s.rec.Truncated = walRec.truncated

	// Never reissue a nonce that may have been handed out before the
	// crash (see nonceSlack).
	s.sess.BumpNonce(s.sess.Nonce() + nonceSlack)

	// Replay is done: journal from here on.
	s.images.SetJournal(s)
	s.ra.SetJournal(s)
	s.sess.SetJournal(s)

	s.register(opts.Metrics)
	return s, nil
}

// register wires the subsystem's observability into reg (nil = off).
func (s *State) register(reg *obs.Registry) {
	if reg == nil {
		return
	}
	appends := reg.Counter("durable.wal_appends")
	appendBytes := reg.Counter("durable.wal_append_bytes")
	fsyncSecs := reg.Histogram("durable.fsync_seconds", obs.DefLatencyBuckets)
	rotations := reg.Counter("durable.wal_rotations")
	s.wal.metrics = &walMetrics{
		appends:     appends.Inc,
		appendBytes: func(n int) { appendBytes.Add(uint64(n)) },
		fsyncSecs:   fsyncSecs.Observe,
		rotations:   rotations.Inc,
	}
	s.m.snapshots = reg.Counter("durable.snapshots")
	s.m.snapshotSecs = reg.Histogram("durable.snapshot_seconds", obs.DefLatencyBuckets)
	s.m.snapshotSize = reg.Gauge("durable.snapshot_bytes")
	s.m.compacted = reg.Counter("durable.wal_segments_compacted")
	reg.Func("durable.recovery", func() any { return s.rec })
}

// Images returns the durable image store.
func (s *State) Images() *core.ImageStore { return s.images }

// RA returns the durable registration authority.
func (s *State) RA() *core.RA { return s.ra }

// Sessions returns the durable session table.
func (s *State) Sessions() *core.SessionTable { return s.sess }

// Recovery reports what Open found and repaired.
func (s *State) Recovery() RecoveryStats { return s.rec }

// applyPayload is the replay path: decode one WAL record and apply it to
// the in-memory stores through their non-journaling methods.
func (s *State) applyPayload(seq uint64, payload []byte) error {
	rec, err := DecodeRecord(payload)
	if err != nil {
		return err
	}
	s.applyRecord(rec)
	return nil
}

// applyRecord applies one decoded record through the stores'
// non-journaling methods (shared by recovery replay and Ingest).
func (s *State) applyRecord(rec *Record) {
	switch rec.Op {
	case OpImagePut:
		s.images.PutSealed(rec.ID, rec.Blob)
	case OpImageDelete:
		s.images.Drop(rec.ID)
	case OpRAKey:
		s.ra.SetKey(rec.ID, rec.Blob)
	case OpRACert:
		s.ra.SetCertificate(rec.ID, rec.Cert)
	case OpRADelete:
		s.ra.Forget(rec.ID)
	case OpSessionOpen:
		s.sess.Restore(rec.ID, *rec.Challenge)
	case OpSessionClose:
		s.sess.Forget(rec.ID)
	}
}

// LastSeq returns the sequence number of the last journaled record.
func (s *State) LastSeq() uint64 { return s.wal.LastSeq() }

// TailFrom opens a read-only iterator over the journal yielding every
// record with sequence number > after (blocking for records not yet
// appended). It fails with ErrTruncated when record after+1 has been
// compacted away — the subscriber must catch up from a full-state
// transfer instead. Replication streams records through this; it is
// also handy for debugging a live data directory.
func (s *State) TailFrom(after uint64) (*Tail, error) {
	return s.wal.TailFrom(after)
}

// Ingest journals one replicated record payload into this State's own
// WAL and applies it to the in-memory stores, returning the local
// sequence number. The payload is validated before anything is written.
// Followers re-sequence the primary's records through this: every op is
// an idempotent overwrite/delete, so re-delivery after a reconnect
// converges instead of corrupting.
func (s *State) Ingest(payload []byte) (uint64, error) {
	rec, err := DecodeRecord(payload)
	if err != nil {
		return 0, err
	}
	seq, err := s.wal.Append(payload)
	if err != nil {
		return 0, err
	}
	s.applyRecord(rec)
	return seq, nil
}

// append encodes and journals one record.
func (s *State) append(rec *Record) error {
	payload, err := rec.Encode()
	if err != nil {
		return err
	}
	_, err = s.wal.Append(payload)
	return err
}

// The core.Journal implementation: one WAL record per mutation. These
// are invoked by the stores while the owning shard lock is held, so a
// client's records appear in the log in its mutation order.

func (s *State) ImagePut(id core.ClientID, sealed []byte) error {
	return s.append(&Record{Op: OpImagePut, ID: id, Blob: sealed})
}

func (s *State) ImageDelete(id core.ClientID) error {
	return s.append(&Record{Op: OpImageDelete, ID: id})
}

func (s *State) RAKeyUpdate(id core.ClientID, publicKey []byte) error {
	return s.append(&Record{Op: OpRAKey, ID: id, Blob: publicKey})
}

func (s *State) RACertUpdate(id core.ClientID, cert *core.Certificate) error {
	return s.append(&Record{Op: OpRACert, ID: id, Cert: cert})
}

func (s *State) RADelete(id core.ClientID) error {
	return s.append(&Record{Op: OpRADelete, ID: id})
}

func (s *State) SessionOpen(id core.ClientID, ch core.Challenge) error {
	return s.append(&Record{Op: OpSessionOpen, ID: id, Challenge: &ch})
}

func (s *State) SessionClose(id core.ClientID) error {
	return s.append(&Record{Op: OpSessionClose, ID: id})
}

// DeleteClient deprovisions a client at the state level (no CA needed):
// open session dropped, RA entry deleted, image deleted — all journaled.
func (s *State) DeleteClient(id core.ClientID) error {
	if err := s.sess.Drop(id); err != nil {
		return err
	}
	if err := s.ra.Delete(id); err != nil {
		return err
	}
	return s.images.Delete(id)
}

// Snapshot writes a point-in-time snapshot and compacts the WAL
// segments it covers. Concurrent mutations continue during the copy:
// the sequence cut is taken first, and since every journaled op is an
// idempotent overwrite/delete, a mutation that lands in both the
// snapshot and the replayed suffix converges to the same state.
func (s *State) Snapshot() error {
	s.snapMu.Lock()
	defer s.snapMu.Unlock()
	start := time.Now()

	// The cut must be taken before the copies: any record <= cut is
	// fully applied (journal and apply share the shard lock), so the
	// copies below can only be ahead of the cut, never behind it.
	cut := s.wal.LastSeq()
	data := &snapshotData{
		Seq:      cut,
		Nonce:    s.sess.Nonce(),
		Images:   s.images.SealedSnapshot(),
		RAKeys:   s.ra.SnapshotKeys(),
		RACerts:  s.ra.SnapshotCertificates(),
		Sessions: s.sess.Snapshot(),
	}
	size, err := writeSnapshot(s.opts.Dir, data)
	if err != nil {
		return err
	}
	if err := s.wal.Rotate(); err != nil {
		return err
	}
	removed, err := s.wal.CompactBefore(cut)
	if err != nil {
		return err
	}
	if s.m.snapshots != nil {
		s.m.snapshots.Inc()
		s.m.snapshotSecs.Observe(time.Since(start).Seconds())
		s.m.snapshotSize.Set(size)
		s.m.compacted.Add(uint64(removed))
	}
	return nil
}

// Close takes a final snapshot and closes the WAL. The State must not
// be used afterwards.
func (s *State) Close() error {
	snapErr := s.Snapshot()
	if err := s.wal.Close(); err != nil {
		return err
	}
	return snapErr
}
