package durable

import (
	"bufio"
	"encoding/gob"
	"fmt"
	"os"
	"path/filepath"
	"sort"
	"strconv"
	"strings"

	"rbcsalted/internal/core"
)

// snapshotData is the gob-encoded point-in-time state. Image blobs are
// stored exactly as sealed in memory (AES-256-GCM under the master key),
// so a snapshot file contains no plaintext PUF images.
type snapshotData struct {
	// Seq is the WAL sequence cut: recovery replays records with
	// sequence > Seq over this state. Because every journaled op is an
	// idempotent overwrite or delete, a record that is both reflected
	// here and replayed converges to the same state.
	Seq uint64
	// Nonce is the challenge-nonce high-water mark at the cut.
	Nonce    uint64
	Images   map[core.ClientID][]byte
	RAKeys   map[core.ClientID][]byte
	RACerts  map[core.ClientID]*core.Certificate
	Sessions map[core.ClientID]core.Challenge
}

const (
	snapPrefix = "snap-"
	snapSuffix = ".db"
)

func snapName(seq uint64) string {
	return fmt.Sprintf("%s%020d%s", snapPrefix, seq, snapSuffix)
}

func snapSeqFromName(name string) (uint64, bool) {
	if !strings.HasPrefix(name, snapPrefix) || !strings.HasSuffix(name, snapSuffix) {
		return 0, false
	}
	n, err := strconv.ParseUint(name[len(snapPrefix):len(name)-len(snapSuffix)], 10, 64)
	if err != nil {
		return 0, false
	}
	return n, true
}

// writeSnapshot persists data atomically: gob into a temp file, fsync,
// rename into place, fsync the directory, then remove superseded
// snapshot files. Returns the snapshot's size in bytes.
func writeSnapshot(dir string, data *snapshotData) (int64, error) {
	tmp, err := os.CreateTemp(dir, snapPrefix+"*.tmp")
	if err != nil {
		return 0, fmt.Errorf("durable: snapshot temp: %w", err)
	}
	defer os.Remove(tmp.Name()) // no-op after successful rename
	bw := bufio.NewWriter(tmp)
	if err := gob.NewEncoder(bw).Encode(data); err != nil {
		tmp.Close()
		return 0, fmt.Errorf("durable: encode snapshot: %w", err)
	}
	if err := bw.Flush(); err != nil {
		tmp.Close()
		return 0, err
	}
	if err := tmp.Sync(); err != nil {
		tmp.Close()
		return 0, fmt.Errorf("durable: sync snapshot: %w", err)
	}
	st, err := tmp.Stat()
	if err != nil {
		tmp.Close()
		return 0, err
	}
	if err := tmp.Close(); err != nil {
		return 0, err
	}
	final := filepath.Join(dir, snapName(data.Seq))
	if err := os.Rename(tmp.Name(), final); err != nil {
		return 0, fmt.Errorf("durable: publish snapshot: %w", err)
	}
	if err := syncDir(dir); err != nil {
		return 0, err
	}
	// Superseded snapshots are garbage once the new one is durable.
	seqs, _ := listSnapshots(dir)
	for _, s := range seqs {
		if s < data.Seq {
			_ = os.Remove(filepath.Join(dir, snapName(s)))
		}
	}
	return st.Size(), nil
}

func listSnapshots(dir string) ([]uint64, error) {
	entries, err := os.ReadDir(dir)
	if err != nil {
		return nil, err
	}
	var seqs []uint64
	for _, e := range entries {
		if s, ok := snapSeqFromName(e.Name()); ok {
			seqs = append(seqs, s)
		}
	}
	sort.Slice(seqs, func(i, j int) bool { return seqs[i] < seqs[j] })
	return seqs, nil
}

// loadSnapshot returns the newest decodable snapshot, or nil when the
// directory has none. A snapshot that fails to decode is skipped in
// favour of the next older one (the WAL still holds everything after the
// older cut, so no state is lost — recovery just replays more).
func loadSnapshot(dir string) (*snapshotData, int, error) {
	seqs, err := listSnapshots(dir)
	if err != nil {
		return nil, 0, err
	}
	bad := 0
	for i := len(seqs) - 1; i >= 0; i-- {
		f, err := os.Open(filepath.Join(dir, snapName(seqs[i])))
		if err != nil {
			bad++
			continue
		}
		var data snapshotData
		err = gob.NewDecoder(bufio.NewReader(f)).Decode(&data)
		f.Close()
		if err != nil || data.Seq != seqs[i] {
			bad++
			continue
		}
		return &data, bad, nil
	}
	return nil, bad, nil
}
