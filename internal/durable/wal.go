package durable

import (
	"encoding/binary"
	"errors"
	"fmt"
	"hash/crc32"
	"io"
	"os"
	"path/filepath"
	"sort"
	"strconv"
	"strings"
	"sync"
	"sync/atomic"
	"time"
)

// SyncPolicy selects when the WAL calls fsync.
type SyncPolicy int

const (
	// SyncInterval (the default) fsyncs on a background ticker
	// (Options.SyncInterval, default 100 ms): bounded data loss at a
	// small fraction of SyncAlways's cost.
	SyncInterval SyncPolicy = iota
	// SyncAlways fsyncs after every append: no acknowledged mutation is
	// ever lost, at the price of one fsync per mutation.
	SyncAlways
	// SyncNever leaves flushing to the OS page cache: fastest, loses up
	// to the OS writeback window on power failure (a clean process kill
	// loses nothing — the data is already in the page cache).
	SyncNever
)

// String names the policy (and is the -sync flag vocabulary).
func (p SyncPolicy) String() string {
	switch p {
	case SyncAlways:
		return "always"
	case SyncInterval:
		return "interval"
	case SyncNever:
		return "never"
	default:
		return fmt.Sprintf("policy-%d", int(p))
	}
}

// ParseSyncPolicy parses the -sync flag vocabulary.
func ParseSyncPolicy(s string) (SyncPolicy, error) {
	switch strings.ToLower(s) {
	case "always":
		return SyncAlways, nil
	case "interval", "":
		return SyncInterval, nil
	case "never":
		return SyncNever, nil
	default:
		return 0, fmt.Errorf("durable: unknown sync policy %q (always|interval|never)", s)
	}
}

// Record framing inside a segment:
//
//	offset size
//	0      8    sequence number (big endian)
//	8      4    payload length
//	12     4    CRC-32C (Castagnoli) over bytes 0..12 and the payload
//	16     n    payload (one encoded Record)
//
// The CRC covers the header, so a bit flip in seq or length is detected
// as reliably as one in the payload.
const recordHeader = 16

// maxRecordLen bounds a frame's payload: larger is corruption.
const maxRecordLen = 1 << 25

var castagnoli = crc32.MakeTable(crc32.Castagnoli)

// ErrCorrupt reports unrecoverable WAL damage: a torn or corrupt record
// that is NOT at the tail of the log. Tail damage is expected after a
// crash and is repaired by truncation; damage with intact records after
// it means the storage lied and recovery refuses to guess.
var ErrCorrupt = errors.New("durable: WAL corrupt before tail")

const (
	segPrefix = "wal-"
	segSuffix = ".log"
)

func segName(start uint64) string {
	return fmt.Sprintf("%s%020d%s", segPrefix, start, segSuffix)
}

// segStart parses a segment filename into its starting sequence number.
func segStartFromName(name string) (uint64, bool) {
	if !strings.HasPrefix(name, segPrefix) || !strings.HasSuffix(name, segSuffix) {
		return 0, false
	}
	n, err := strconv.ParseUint(name[len(segPrefix):len(name)-len(segSuffix)], 10, 64)
	if err != nil {
		return 0, false
	}
	return n, true
}

// walConfig sizes and paces a WAL.
type walConfig struct {
	policy   SyncPolicy
	interval time.Duration
	segBytes int64
}

// wal is a segmented write-ahead log. Appends are serialized by mu;
// LastSeq is lock-free so snapshots can take a sequence cut without
// stalling writers.
type wal struct {
	dir string
	cfg walConfig

	seq atomic.Uint64 // last assigned sequence number

	mu       sync.Mutex
	f        *os.File
	size     int64
	segStart uint64
	dirty    bool
	closed   bool
	notify   chan struct{} // closed and renewed on every append; see appendWait

	stop chan struct{}
	done chan struct{}

	metrics *walMetrics
}

// walMetrics is filled in by State when an obs registry is attached;
// nil fields are simply not recorded.
type walMetrics struct {
	appends     func()
	appendBytes func(n int)
	fsyncSecs   func(s float64)
	rotations   func()
}

func (m *walMetrics) incAppends(n int) {
	if m == nil {
		return
	}
	if m.appends != nil {
		m.appends()
	}
	if m.appendBytes != nil {
		m.appendBytes(n)
	}
}

func (m *walMetrics) observeFsync(s float64) {
	if m != nil && m.fsyncSecs != nil {
		m.fsyncSecs(s)
	}
}

func (m *walMetrics) incRotations() {
	if m != nil && m.rotations != nil {
		m.rotations()
	}
}

// walRecovery reports what opening a WAL found and repaired.
type walRecovery struct {
	records   int   // records replayed (seq > from)
	skipped   int   // records at or below the snapshot cut
	segments  int   // segment files scanned
	tornBytes int64 // bytes truncated off the tail
	truncated bool
}

// openWAL scans dir's segments in order, replays every record with
// seq > from through apply, repairs a torn tail by truncation, and
// returns the WAL positioned for appending.
func openWAL(dir string, cfg walConfig, from uint64, apply func(seq uint64, payload []byte) error) (*wal, walRecovery, error) {
	var rec walRecovery
	if cfg.segBytes <= 0 {
		cfg.segBytes = 8 << 20
	}
	if cfg.interval <= 0 {
		cfg.interval = 100 * time.Millisecond
	}
	starts, err := listSegments(dir)
	if err != nil {
		return nil, rec, err
	}
	rec.segments = len(starts)

	w := &wal{dir: dir, cfg: cfg}
	// Records are numbered sequentially across segments; a segment's
	// filename is its first record's sequence number. Continuity is
	// checked in file order; a gap between segments is tolerated only
	// when every missing record is covered by the snapshot cut (from) —
	// that shape is left behind when a torn tail ate records a snapshot
	// had already captured and a fresh segment was started past the cut.
	var fileSeq uint64
	if len(starts) > 0 {
		fileSeq = starts[0] - 1
	}
	for i, start := range starts {
		if start <= fileSeq || (start != fileSeq+1 && start > from+1) {
			return nil, rec, fmt.Errorf("%w: segment %s does not continue record %d",
				ErrCorrupt, segName(start), fileSeq)
		}
		last := i == len(starts)-1
		path := filepath.Join(dir, segName(start))
		seq, err := w.replaySegment(path, last, start-1, from, apply, &rec)
		if err != nil {
			return nil, rec, err
		}
		if seq > fileSeq {
			fileSeq = seq
		}
	}
	lastSeq := fileSeq
	if from > lastSeq {
		// The snapshot is ahead of the surviving log (e.g. the tail was
		// torn away after the snapshot): never reissue sequence numbers.
		lastSeq = from
	}
	w.seq.Store(lastSeq)

	// Append into the newest segment — unless the snapshot is ahead of
	// it, in which case continuing it would punch a sequence gap into
	// the middle of a segment; start a fresh one past the cut instead.
	start := lastSeq + 1
	if len(starts) > 0 && from <= fileSeq {
		start = starts[len(starts)-1]
	}
	f, err := os.OpenFile(filepath.Join(dir, segName(start)), os.O_CREATE|os.O_WRONLY|os.O_APPEND, 0o600)
	if err != nil {
		return nil, rec, fmt.Errorf("durable: open segment: %w", err)
	}
	st, err := f.Stat()
	if err != nil {
		f.Close()
		return nil, rec, err
	}
	w.f, w.size, w.segStart = f, st.Size(), start

	if cfg.policy == SyncInterval {
		w.stop = make(chan struct{})
		w.done = make(chan struct{})
		go w.syncLoop()
	}
	return w, rec, nil
}

func listSegments(dir string) ([]uint64, error) {
	entries, err := os.ReadDir(dir)
	if err != nil {
		return nil, fmt.Errorf("durable: list WAL dir: %w", err)
	}
	var starts []uint64
	for _, e := range entries {
		if start, ok := segStartFromName(e.Name()); ok {
			starts = append(starts, start)
		}
	}
	sort.Slice(starts, func(i, j int) bool { return starts[i] < starts[j] })
	return starts, nil
}

// replaySegment reads one segment. In the last segment a torn or corrupt
// tail is truncated away; anywhere else it is ErrCorrupt. prevSeq is the
// last sequence number seen so far — records must be strictly
// increasing.
func (w *wal) replaySegment(path string, last bool, prevSeq, from uint64, apply func(uint64, []byte) error, rec *walRecovery) (uint64, error) {
	f, err := os.Open(path)
	if err != nil {
		return 0, err
	}
	defer f.Close()

	var (
		hdr    [recordHeader]byte
		offset int64
		seq    = prevSeq
	)
	truncateAt := func(off int64, why string) (uint64, error) {
		if !last {
			return 0, fmt.Errorf("%w: %s at %s offset %d", ErrCorrupt, why, filepath.Base(path), off)
		}
		st, err := f.Stat()
		if err != nil {
			return 0, err
		}
		rec.tornBytes = st.Size() - off
		rec.truncated = true
		if err := os.Truncate(path, off); err != nil {
			return 0, fmt.Errorf("durable: truncate torn tail: %w", err)
		}
		return seq, nil
	}

	for {
		n, err := io.ReadFull(f, hdr[:])
		if err == io.EOF {
			return seq, nil // clean segment end
		}
		if err == io.ErrUnexpectedEOF {
			return truncateAt(offset, fmt.Sprintf("torn header (%d bytes)", n))
		}
		if err != nil {
			return 0, err
		}
		rseq := binary.BigEndian.Uint64(hdr[0:8])
		plen := binary.BigEndian.Uint32(hdr[8:12])
		crc := binary.BigEndian.Uint32(hdr[12:16])
		if plen == 0 || plen > maxRecordLen || rseq != seq+1 {
			return truncateAt(offset, "invalid record header")
		}
		payload := make([]byte, plen)
		if _, err := io.ReadFull(f, payload); err != nil {
			// ReadFull reports io.EOF when the file ends exactly at the
			// header boundary and ErrUnexpectedEOF mid-payload; both are
			// the same torn write.
			if err == io.EOF || err == io.ErrUnexpectedEOF {
				return truncateAt(offset, "torn payload")
			}
			return 0, err
		}
		sum := crc32.Update(crc32.Checksum(hdr[:12], castagnoli), castagnoli, payload)
		if sum != crc {
			return truncateAt(offset, "checksum mismatch")
		}
		if rseq > from {
			if err := apply(rseq, payload); err != nil {
				return 0, fmt.Errorf("durable: replay record %d: %w", rseq, err)
			}
			rec.records++
		} else {
			rec.skipped++
		}
		seq = rseq
		offset += recordHeader + int64(plen)
	}
}

// Append journals one payload and returns its sequence number. The
// write (and, under SyncAlways, the fsync) completes before Append
// returns, so a nil error means the record will survive recovery.
func (w *wal) Append(payload []byte) (uint64, error) {
	if len(payload) == 0 || len(payload) > maxRecordLen {
		return 0, fmt.Errorf("durable: record payload %d bytes", len(payload))
	}
	w.mu.Lock()
	defer w.mu.Unlock()
	if w.closed {
		return 0, errors.New("durable: WAL closed")
	}
	seq := w.seq.Load() + 1

	frame := make([]byte, recordHeader+len(payload))
	binary.BigEndian.PutUint64(frame[0:8], seq)
	binary.BigEndian.PutUint32(frame[8:12], uint32(len(payload)))
	copy(frame[recordHeader:], payload)
	sum := crc32.Update(crc32.Checksum(frame[:12], castagnoli), castagnoli, payload)
	binary.BigEndian.PutUint32(frame[12:16], sum)

	if _, err := w.f.Write(frame); err != nil {
		return 0, fmt.Errorf("durable: append: %w", err)
	}
	w.size += int64(len(frame))
	w.dirty = true
	w.seq.Store(seq)
	w.wakeTailersLocked()
	w.metrics.incAppends(len(frame))

	if w.cfg.policy == SyncAlways {
		if err := w.fsyncLocked(); err != nil {
			return 0, err
		}
	}
	if w.size >= w.cfg.segBytes {
		if err := w.rotateLocked(); err != nil {
			return 0, err
		}
	}
	return seq, nil
}

// LastSeq returns the last assigned sequence number (0 before any
// append). Lock-free: snapshots use it to take their sequence cut.
func (w *wal) LastSeq() uint64 { return w.seq.Load() }

// appendWait returns a channel that is closed by the next append (or by
// Close). A tailer must re-check LastSeq after obtaining the channel:
// an append that raced the call has already closed an earlier channel.
func (w *wal) appendWait() <-chan struct{} {
	w.mu.Lock()
	defer w.mu.Unlock()
	if w.closed {
		ch := make(chan struct{})
		close(ch)
		return ch
	}
	if w.notify == nil {
		w.notify = make(chan struct{})
	}
	return w.notify
}

// wakeTailersLocked releases every appendWait channel; mu must be held.
func (w *wal) wakeTailersLocked() {
	if w.notify != nil {
		close(w.notify)
		w.notify = nil
	}
}

// isClosed reports whether Close has run.
func (w *wal) isClosed() bool {
	w.mu.Lock()
	defer w.mu.Unlock()
	return w.closed
}

func (w *wal) fsyncLocked() error {
	if !w.dirty {
		return nil
	}
	start := time.Now()
	if err := w.f.Sync(); err != nil {
		return fmt.Errorf("durable: fsync: %w", err)
	}
	w.metrics.observeFsync(time.Since(start).Seconds())
	w.dirty = false
	return nil
}

// Sync forces an fsync of the current segment.
func (w *wal) Sync() error {
	w.mu.Lock()
	defer w.mu.Unlock()
	if w.closed {
		return nil
	}
	return w.fsyncLocked()
}

func (w *wal) syncLoop() {
	defer close(w.done)
	t := time.NewTicker(w.cfg.interval)
	defer t.Stop()
	for {
		select {
		case <-w.stop:
			return
		case <-t.C:
			_ = w.Sync()
		}
	}
}

// rotateLocked seals the current segment and starts the next one.
func (w *wal) rotateLocked() error {
	if err := w.fsyncLocked(); err != nil {
		return err
	}
	if err := w.f.Close(); err != nil {
		return err
	}
	start := w.seq.Load() + 1
	f, err := os.OpenFile(filepath.Join(w.dir, segName(start)), os.O_CREATE|os.O_WRONLY|os.O_APPEND, 0o600)
	if err != nil {
		return fmt.Errorf("durable: rotate: %w", err)
	}
	w.f, w.size, w.segStart, w.dirty = f, 0, start, false
	w.metrics.incRotations()
	return syncDir(w.dir)
}

// Rotate seals the current segment if it holds any records, so a
// subsequent CompactBefore can remove it once a snapshot covers it.
func (w *wal) Rotate() error {
	w.mu.Lock()
	defer w.mu.Unlock()
	if w.closed || w.size == 0 {
		return nil
	}
	return w.rotateLocked()
}

// CompactBefore deletes sealed segments whose records are all covered by
// a snapshot at seq (i.e. every record in them has sequence <= seq).
// The active segment is never removed.
func (w *wal) CompactBefore(seq uint64) (removed int, err error) {
	w.mu.Lock()
	defer w.mu.Unlock()
	starts, err := listSegments(w.dir)
	if err != nil {
		return 0, err
	}
	for i, start := range starts {
		if start == w.segStart {
			break // the active segment and anything after it stays
		}
		// The records of segment i end where segment i+1 begins.
		var lastRec uint64
		if i+1 < len(starts) {
			lastRec = starts[i+1] - 1
		} else {
			lastRec = w.seq.Load()
		}
		if lastRec > seq {
			break
		}
		if err := os.Remove(filepath.Join(w.dir, segName(start))); err != nil {
			return removed, fmt.Errorf("durable: compact: %w", err)
		}
		removed++
	}
	if removed > 0 {
		err = syncDir(w.dir)
	}
	return removed, err
}

// Close fsyncs and closes the active segment and stops the sync loop.
func (w *wal) Close() error {
	w.mu.Lock()
	if w.closed {
		w.mu.Unlock()
		return nil
	}
	w.closed = true
	w.wakeTailersLocked()
	err := w.fsyncLocked()
	if cerr := w.f.Close(); err == nil {
		err = cerr
	}
	stop, done := w.stop, w.done
	w.mu.Unlock()
	if stop != nil {
		close(stop)
		<-done
	}
	return err
}

// syncDir fsyncs a directory so renames and removals inside it are
// durable. Best effort on platforms where directories cannot be synced.
func syncDir(dir string) error {
	d, err := os.Open(dir)
	if err != nil {
		return nil
	}
	defer d.Close()
	_ = d.Sync()
	return nil
}
