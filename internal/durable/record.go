// Package durable is the CA's persistence subsystem: a segmented,
// CRC32C-framed write-ahead log (wal.go) with a configurable fsync
// policy, point-in-time snapshots with log compaction (snapshot.go), and
// a State (state.go) that journals every mutation of the image store,
// the registration authority and the session table, and replays
// WAL-over-snapshot on open.
//
// The motivating property is the paper's: RBC-SALTED re-keys on every
// authentication, so the RA's registry changes on the hot path — a crash
// that loses a key update desynchronizes the client it belongs to. Every
// mutation therefore reaches the log before it reaches memory. PUF
// images enter the log already sealed under the ImageStore's AES-256-GCM
// master key, so neither the WAL nor any snapshot ever contains a
// plaintext image.
package durable

import (
	"encoding/binary"
	"errors"
	"fmt"
	"time"

	"rbcsalted/internal/core"
)

// Op tags a WAL record with the mutation it journals.
type Op uint8

// WAL record operations. Values are part of the on-disk format; never
// renumber.
const (
	OpImagePut Op = iota + 1
	OpImageDelete
	OpRAKey
	OpRACert
	OpRADelete
	OpSessionOpen
	OpSessionClose
)

// String names the op for logs and errors.
func (op Op) String() string {
	switch op {
	case OpImagePut:
		return "image-put"
	case OpImageDelete:
		return "image-delete"
	case OpRAKey:
		return "ra-key"
	case OpRACert:
		return "ra-cert"
	case OpRADelete:
		return "ra-delete"
	case OpSessionOpen:
		return "session-open"
	case OpSessionClose:
		return "session-close"
	default:
		return fmt.Sprintf("op-%d", uint8(op))
	}
}

// Record is one journaled mutation. Which fields are meaningful depends
// on Op: Blob carries the sealed image (OpImagePut) or the public key
// (OpRAKey), Cert the certificate (OpRACert), Challenge the session
// challenge (OpSessionOpen); the delete/close ops carry only ID.
type Record struct {
	Op        Op
	ID        core.ClientID
	Blob      []byte
	Cert      *core.Certificate
	Challenge *core.Challenge
}

// Decode limits: a record larger than these is corruption (or hostile
// input), not state. The widest legitimate field is a sealed PUF image —
// a few KiB for the simulated devices; 16 MiB leaves room for far larger
// real enrollments.
const (
	maxIDLen      = 1 << 10
	maxBlobLen    = 1 << 24
	maxAddressMap = 1 << 16
)

// ErrBadRecord reports a WAL record payload that does not decode.
var ErrBadRecord = errors.New("durable: malformed WAL record")

// appendField writes a u32 length prefix followed by the bytes.
func appendField(out []byte, b []byte) []byte {
	out = binary.BigEndian.AppendUint32(out, uint32(len(b)))
	return append(out, b...)
}

// Encode serializes the record payload (the framing — seq, length, CRC —
// is the WAL's job).
func (r *Record) Encode() ([]byte, error) {
	if len(r.ID) == 0 || len(r.ID) > maxIDLen {
		return nil, fmt.Errorf("%w: client id length %d", ErrBadRecord, len(r.ID))
	}
	out := make([]byte, 0, 64+len(r.Blob))
	out = append(out, byte(r.Op))
	out = appendField(out, []byte(r.ID))
	switch r.Op {
	case OpImagePut, OpRAKey:
		if len(r.Blob) == 0 || len(r.Blob) > maxBlobLen {
			return nil, fmt.Errorf("%w: %s blob length %d", ErrBadRecord, r.Op, len(r.Blob))
		}
		out = appendField(out, r.Blob)
	case OpImageDelete, OpRADelete, OpSessionClose:
		// ID only.
	case OpRACert:
		c := r.Cert
		if c == nil {
			return nil, fmt.Errorf("%w: %s without certificate", ErrBadRecord, r.Op)
		}
		out = appendField(out, []byte(c.KeyAlgorithm))
		out = appendField(out, c.PublicKey)
		out = binary.BigEndian.AppendUint64(out, uint64(c.IssuedAt.Unix()))
		out = binary.BigEndian.AppendUint64(out, uint64(c.ExpiresAt.Unix()))
		out = appendField(out, c.Signature)
	case OpSessionOpen:
		ch := r.Challenge
		if ch == nil {
			return nil, fmt.Errorf("%w: %s without challenge", ErrBadRecord, r.Op)
		}
		if len(ch.AddressMap) == 0 || len(ch.AddressMap) > maxAddressMap {
			return nil, fmt.Errorf("%w: address map length %d", ErrBadRecord, len(ch.AddressMap))
		}
		out = binary.BigEndian.AppendUint64(out, ch.Nonce)
		out = append(out, byte(ch.Alg))
		out = binary.BigEndian.AppendUint64(out, uint64(ch.IssuedAt.UnixNano()))
		out = binary.BigEndian.AppendUint32(out, uint32(len(ch.AddressMap)))
		for _, cell := range ch.AddressMap {
			if cell < 0 || uint64(cell) > 0xFFFFFFFF {
				return nil, fmt.Errorf("%w: cell index %d", ErrBadRecord, cell)
			}
			out = binary.BigEndian.AppendUint32(out, uint32(cell))
		}
	default:
		return nil, fmt.Errorf("%w: unknown op %d", ErrBadRecord, r.Op)
	}
	return out, nil
}

// reader is a bounds-checked cursor over a record payload.
type reader struct {
	p   []byte
	off int
}

func (r *reader) bytes(n int) ([]byte, error) {
	if n < 0 || r.off+n > len(r.p) {
		return nil, ErrBadRecord
	}
	b := r.p[r.off : r.off+n]
	r.off += n
	return b, nil
}

func (r *reader) u32() (uint32, error) {
	b, err := r.bytes(4)
	if err != nil {
		return 0, err
	}
	return binary.BigEndian.Uint32(b), nil
}

func (r *reader) u64() (uint64, error) {
	b, err := r.bytes(8)
	if err != nil {
		return 0, err
	}
	return binary.BigEndian.Uint64(b), nil
}

func (r *reader) field(max int) ([]byte, error) {
	n, err := r.u32()
	if err != nil {
		return nil, err
	}
	if int(n) > max {
		return nil, ErrBadRecord
	}
	b, err := r.bytes(int(n))
	if err != nil {
		return nil, err
	}
	return append([]byte(nil), b...), nil
}

// DecodeRecord parses a record payload written by Encode. It never
// panics on hostile input (see FuzzWALDecode) and rejects trailing
// bytes, oversized fields and unknown ops with ErrBadRecord.
func DecodeRecord(p []byte) (*Record, error) {
	r := &reader{p: p}
	opb, err := r.bytes(1)
	if err != nil {
		return nil, err
	}
	rec := &Record{Op: Op(opb[0])}
	id, err := r.field(maxIDLen)
	if err != nil {
		return nil, err
	}
	if len(id) == 0 {
		return nil, ErrBadRecord
	}
	rec.ID = core.ClientID(id)
	switch rec.Op {
	case OpImagePut, OpRAKey:
		if rec.Blob, err = r.field(maxBlobLen); err != nil {
			return nil, err
		}
		if len(rec.Blob) == 0 {
			return nil, ErrBadRecord
		}
	case OpImageDelete, OpRADelete, OpSessionClose:
		// ID only.
	case OpRACert:
		c := &core.Certificate{ClientID: rec.ID}
		alg, err := r.field(maxIDLen)
		if err != nil {
			return nil, err
		}
		c.KeyAlgorithm = string(alg)
		if c.PublicKey, err = r.field(maxBlobLen); err != nil {
			return nil, err
		}
		issued, err := r.u64()
		if err != nil {
			return nil, err
		}
		expires, err := r.u64()
		if err != nil {
			return nil, err
		}
		c.IssuedAt = time.Unix(int64(issued), 0)
		c.ExpiresAt = time.Unix(int64(expires), 0)
		if c.Signature, err = r.field(maxBlobLen); err != nil {
			return nil, err
		}
		rec.Cert = c
	case OpSessionOpen:
		ch := &core.Challenge{}
		if ch.Nonce, err = r.u64(); err != nil {
			return nil, err
		}
		algb, err := r.bytes(1)
		if err != nil {
			return nil, err
		}
		ch.Alg = core.HashAlg(algb[0])
		issued, err := r.u64()
		if err != nil {
			return nil, err
		}
		ch.IssuedAt = time.Unix(0, int64(issued))
		n, err := r.u32()
		if err != nil {
			return nil, err
		}
		if n == 0 || n > maxAddressMap {
			return nil, ErrBadRecord
		}
		ch.AddressMap = make([]int, n)
		for i := range ch.AddressMap {
			cell, err := r.u32()
			if err != nil {
				return nil, err
			}
			ch.AddressMap[i] = int(cell)
		}
		rec.Challenge = ch
	default:
		return nil, fmt.Errorf("%w: unknown op %d", ErrBadRecord, uint8(rec.Op))
	}
	if r.off != len(p) {
		return nil, fmt.Errorf("%w: %d trailing bytes", ErrBadRecord, len(p)-r.off)
	}
	return rec, nil
}
