package durable

import (
	"bytes"
	"errors"
	"fmt"
	"os"
	"path/filepath"
	"testing"
)

// collectWAL opens dir's WAL and gathers every replayed payload.
func collectWAL(t *testing.T, dir string, cfg walConfig, from uint64) (*wal, walRecovery, [][]byte) {
	t.Helper()
	var payloads [][]byte
	w, rec, err := openWAL(dir, cfg, from, func(seq uint64, p []byte) error {
		payloads = append(payloads, append([]byte(nil), p...))
		return nil
	})
	if err != nil {
		t.Fatalf("openWAL: %v", err)
	}
	return w, rec, payloads
}

func TestWALRoundTrip(t *testing.T) {
	dir := t.TempDir()
	w, _, _ := collectWAL(t, dir, walConfig{}, 0)
	var want [][]byte
	for i := 0; i < 50; i++ {
		p := []byte(fmt.Sprintf("record-%03d", i))
		seq, err := w.Append(p)
		if err != nil {
			t.Fatal(err)
		}
		if seq != uint64(i+1) {
			t.Fatalf("seq = %d, want %d", seq, i+1)
		}
		want = append(want, p)
	}
	if w.LastSeq() != 50 {
		t.Fatalf("LastSeq = %d", w.LastSeq())
	}
	if err := w.Close(); err != nil {
		t.Fatal(err)
	}

	w2, rec, got := collectWAL(t, dir, walConfig{}, 0)
	defer w2.Close()
	if rec.records != 50 || rec.truncated || rec.skipped != 0 {
		t.Fatalf("recovery = %+v", rec)
	}
	if len(got) != len(want) {
		t.Fatalf("replayed %d records, want %d", len(got), len(want))
	}
	for i := range want {
		if !bytes.Equal(got[i], want[i]) {
			t.Fatalf("record %d = %q, want %q", i, got[i], want[i])
		}
	}
	// Appends after recovery continue the sequence.
	if seq, err := w2.Append([]byte("more")); err != nil || seq != 51 {
		t.Fatalf("post-recovery append seq=%d err=%v", seq, err)
	}
}

func TestWALRotationAndCompaction(t *testing.T) {
	dir := t.TempDir()
	// Tiny segments force rotation every couple of records.
	w, _, _ := collectWAL(t, dir, walConfig{segBytes: 64}, 0)
	for i := 0; i < 20; i++ {
		if _, err := w.Append([]byte(fmt.Sprintf("payload-%03d", i))); err != nil {
			t.Fatal(err)
		}
	}
	starts, err := listSegments(dir)
	if err != nil {
		t.Fatal(err)
	}
	if len(starts) < 3 {
		t.Fatalf("expected rotation to create segments, got %d", len(starts))
	}
	if err := w.Close(); err != nil {
		t.Fatal(err)
	}

	w2, rec, got := collectWAL(t, dir, walConfig{segBytes: 64}, 0)
	if rec.records != 20 || rec.segments != len(starts) {
		t.Fatalf("recovery = %+v", rec)
	}
	if len(got) != 20 {
		t.Fatalf("replayed %d records", len(got))
	}

	// Compact everything a snapshot at the current cut would cover.
	cut := w2.LastSeq()
	if err := w2.Rotate(); err != nil {
		t.Fatal(err)
	}
	removed, err := w2.CompactBefore(cut)
	if err != nil {
		t.Fatal(err)
	}
	if removed == 0 {
		t.Fatal("compaction removed nothing")
	}
	if _, err := w2.Append([]byte("after-compact")); err != nil {
		t.Fatal(err)
	}
	if err := w2.Close(); err != nil {
		t.Fatal(err)
	}

	// Recovery with the snapshot cut sees only the post-compaction tail.
	w3, rec3, got3 := collectWAL(t, dir, walConfig{segBytes: 64}, cut)
	defer w3.Close()
	if rec3.records != 1 || !bytes.Equal(got3[0], []byte("after-compact")) {
		t.Fatalf("post-compaction recovery = %+v, payloads %q", rec3, got3)
	}
}

// TestWALTornTailEveryOffset truncates the log at every possible byte
// offset and verifies recovery keeps exactly the records whose frames
// survived whole, repairs the tail, and accepts new appends.
func TestWALTornTailEveryOffset(t *testing.T) {
	master := t.TempDir()
	w, _, _ := collectWAL(t, master, walConfig{}, 0)
	var want [][]byte
	frameLens := make([]int64, 0, 8)
	for i := 0; i < 8; i++ {
		p := []byte(fmt.Sprintf("torn-test-record-%d", i))
		if _, err := w.Append(p); err != nil {
			t.Fatal(err)
		}
		want = append(want, p)
		frameLens = append(frameLens, recordHeader+int64(len(p)))
	}
	if err := w.Close(); err != nil {
		t.Fatal(err)
	}
	seg := filepath.Join(master, segName(1))
	full, err := os.ReadFile(seg)
	if err != nil {
		t.Fatal(err)
	}

	for off := int64(0); off <= int64(len(full)); off++ {
		dir := t.TempDir()
		if err := os.WriteFile(filepath.Join(dir, segName(1)), full[:off], 0o600); err != nil {
			t.Fatal(err)
		}
		// How many whole frames fit below off?
		complete, end := 0, int64(0)
		for _, fl := range frameLens {
			if end+fl > off {
				break
			}
			end += fl
			complete++
		}
		w2, rec, got := collectWAL(t, dir, walConfig{}, 0)
		if rec.records != complete {
			t.Fatalf("offset %d: recovered %d records, want %d", off, rec.records, complete)
		}
		if wantTorn := off - end; rec.tornBytes != wantTorn || rec.truncated != (wantTorn > 0) {
			t.Fatalf("offset %d: tornBytes=%d truncated=%v, want %d bytes", off, rec.tornBytes, rec.truncated, wantTorn)
		}
		for i := 0; i < complete; i++ {
			if !bytes.Equal(got[i], want[i]) {
				t.Fatalf("offset %d: record %d mismatch", off, i)
			}
		}
		// The repaired log accepts a new record at the right sequence.
		if seq, err := w2.Append([]byte("fresh")); err != nil || seq != uint64(complete+1) {
			t.Fatalf("offset %d: append seq=%d err=%v, want %d", off, seq, err, complete+1)
		}
		if err := w2.Close(); err != nil {
			t.Fatal(err)
		}
		// And a second recovery is clean.
		w3, rec3, _ := collectWAL(t, dir, walConfig{}, 0)
		if rec3.truncated || rec3.records != complete+1 {
			t.Fatalf("offset %d: second recovery = %+v", off, rec3)
		}
		w3.Close()
	}
}

func TestWALBitFlipTruncatesTail(t *testing.T) {
	dir := t.TempDir()
	w, _, _ := collectWAL(t, dir, walConfig{}, 0)
	for i := 0; i < 4; i++ {
		if _, err := w.Append([]byte(fmt.Sprintf("bits-%d", i))); err != nil {
			t.Fatal(err)
		}
	}
	w.Close()
	seg := filepath.Join(dir, segName(1))
	data, _ := os.ReadFile(seg)
	// Corrupt a byte inside the LAST record's payload.
	data[len(data)-1] ^= 0x40
	os.WriteFile(seg, data, 0o600)

	w2, rec, _ := collectWAL(t, dir, walConfig{}, 0)
	defer w2.Close()
	if rec.records != 3 || !rec.truncated {
		t.Fatalf("recovery after bit flip = %+v", rec)
	}
}

func TestWALMidLogCorruptionRefusesToOpen(t *testing.T) {
	dir := t.TempDir()
	// Two segments: corrupting the first must be fatal, not repairable.
	w, _, _ := collectWAL(t, dir, walConfig{segBytes: 48}, 0)
	for i := 0; i < 10; i++ {
		if _, err := w.Append([]byte(fmt.Sprintf("seg-%d", i))); err != nil {
			t.Fatal(err)
		}
	}
	w.Close()
	starts, _ := listSegments(dir)
	if len(starts) < 2 {
		t.Fatalf("need >=2 segments, got %d", len(starts))
	}
	seg := filepath.Join(dir, segName(starts[0]))
	data, _ := os.ReadFile(seg)
	data[recordHeader] ^= 0xFF // first record's payload
	os.WriteFile(seg, data, 0o600)

	_, _, err := openWAL(dir, walConfig{}, 0, func(uint64, []byte) error { return nil })
	if !errors.Is(err, ErrCorrupt) {
		t.Fatalf("err = %v, want ErrCorrupt", err)
	}
}

func TestWALSegmentGapRefusedUnlessCovered(t *testing.T) {
	dir := t.TempDir()
	w, _, _ := collectWAL(t, dir, walConfig{segBytes: 48}, 0)
	for i := 0; i < 10; i++ {
		if _, err := w.Append([]byte(fmt.Sprintf("gap-%d", i))); err != nil {
			t.Fatal(err)
		}
	}
	w.Close()
	starts, _ := listSegments(dir)
	if len(starts) < 3 {
		t.Fatalf("need >=3 segments, got %d", len(starts))
	}
	// Remove a middle segment: records are simply gone.
	os.Remove(filepath.Join(dir, segName(starts[1])))

	if _, _, err := openWAL(dir, walConfig{}, 0, func(uint64, []byte) error { return nil }); !errors.Is(err, ErrCorrupt) {
		t.Fatalf("gap err = %v, want ErrCorrupt", err)
	}
	// But the same gap is fine when a snapshot covers past it.
	from := starts[2] - 1
	w2, rec, _ := collectWAL(t, dir, walConfig{}, from)
	defer w2.Close()
	if rec.records == 0 {
		t.Fatalf("covered-gap recovery replayed nothing: %+v", rec)
	}
}

func TestParseSyncPolicy(t *testing.T) {
	cases := map[string]SyncPolicy{"always": SyncAlways, "interval": SyncInterval, "never": SyncNever, "": SyncInterval, "ALWAYS": SyncAlways}
	for in, want := range cases {
		got, err := ParseSyncPolicy(in)
		if err != nil || got != want {
			t.Errorf("ParseSyncPolicy(%q) = %v, %v", in, got, err)
		}
	}
	if _, err := ParseSyncPolicy("bogus"); err == nil {
		t.Error("bogus policy accepted")
	}
	if SyncAlways.String() != "always" || SyncInterval.String() != "interval" || SyncNever.String() != "never" {
		t.Error("SyncPolicy.String mismatch")
	}
}
