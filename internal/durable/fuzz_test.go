package durable

import (
	"bytes"
	"testing"
	"time"

	"rbcsalted/internal/core"
)

// FuzzWALDecode feeds arbitrary bytes to the record decoder. The
// invariants: DecodeRecord never panics, and anything it accepts
// re-encodes to the exact same bytes (the format is canonical).
func FuzzWALDecode(f *testing.F) {
	seeds := []*Record{
		{Op: OpImagePut, ID: "alice", Blob: []byte("sealed-image-bytes")},
		{Op: OpImageDelete, ID: "alice"},
		{Op: OpRAKey, ID: "bob", Blob: []byte{1, 2, 3, 4}},
		{Op: OpRADelete, ID: "bob"},
		{Op: OpRACert, ID: "carol", Cert: &core.Certificate{
			ClientID: "carol", KeyAlgorithm: "AES-128", PublicKey: []byte("pk"),
			IssuedAt: time.Unix(1000, 0), ExpiresAt: time.Unix(2000, 0), Signature: []byte("sig"),
		}},
		{Op: OpSessionOpen, ID: "dave", Challenge: &core.Challenge{
			Nonce: 42, AddressMap: []int{0, 511, 17}, Alg: core.SHA3, IssuedAt: time.Unix(0, 12345),
		}},
		{Op: OpSessionClose, ID: "dave"},
	}
	for _, r := range seeds {
		p, err := r.Encode()
		if err != nil {
			f.Fatal(err)
		}
		f.Add(p)
	}
	f.Add([]byte{})
	f.Add([]byte{0xFF, 0, 0, 0, 1, 'x'})

	f.Fuzz(func(t *testing.T, p []byte) {
		rec, err := DecodeRecord(p)
		if err != nil {
			return
		}
		out, err := rec.Encode()
		if err != nil {
			t.Fatalf("decoded record does not re-encode: %v", err)
		}
		if !bytes.Equal(out, p) {
			t.Fatalf("roundtrip not canonical:\n in  %x\n out %x", p, out)
		}
	})
}
