package durable

import (
	"bytes"
	"fmt"
	"math/rand"
	"os"
	"path/filepath"
	"testing"
	"time"

	"rbcsalted/internal/core"
	"rbcsalted/internal/obs"
	"rbcsalted/internal/puf"
)

var testKey = [32]byte{7, 7, 7}

func openState(t *testing.T, dir string, opts Options) *State {
	t.Helper()
	opts.Dir = dir
	if opts.MasterKey == ([32]byte{}) {
		opts.MasterKey = testKey
	}
	st, err := Open(opts)
	if err != nil {
		t.Fatalf("Open(%s): %v", dir, err)
	}
	return st
}

func enrollImage(t *testing.T) *puf.Image {
	t.Helper()
	dev, err := puf.NewDevice(31, 512, puf.DefaultProfile)
	if err != nil {
		t.Fatal(err)
	}
	im, err := puf.Enroll(dev, 11)
	if err != nil {
		t.Fatal(err)
	}
	return im
}

func TestStateReopenPersistsEverything(t *testing.T) {
	dir := t.TempDir()
	st := openState(t, dir, Options{Sync: SyncNever})
	im := enrollImage(t)
	if err := st.Images().Put("alice", im); err != nil {
		t.Fatal(err)
	}
	if err := st.RA().Update("alice", []byte("pk-alice-1")); err != nil {
		t.Fatal(err)
	}
	cert := &core.Certificate{
		ClientID: "alice", KeyAlgorithm: "AES-128", PublicKey: []byte("pk-alice-1"),
		IssuedAt: time.Unix(1000, 0), ExpiresAt: time.Unix(2000, 0), Signature: []byte("sig"),
	}
	if err := st.RA().UpdateCertificate("alice", cert); err != nil {
		t.Fatal(err)
	}
	nonce := st.Sessions().NextNonce()
	ch := core.Challenge{Nonce: nonce, AddressMap: []int{1, 2, 3}, Alg: core.SHA3, IssuedAt: time.Unix(1500, 0)}
	if err := st.Sessions().Open("alice", ch); err != nil {
		t.Fatal(err)
	}
	if err := st.Close(); err != nil {
		t.Fatal(err)
	}

	st2 := openState(t, dir, Options{Sync: SyncNever})
	defer st2.Close()
	got, err := st2.Images().Get("alice")
	if err != nil {
		t.Fatalf("image lost across restart: %v", err)
	}
	for i := range im.Values {
		if got.Values[i] != im.Values[i] {
			t.Fatalf("image corrupted at cell %d", i)
		}
	}
	if pk, ok := st2.RA().PublicKey("alice"); !ok || !bytes.Equal(pk, []byte("pk-alice-1")) {
		t.Fatalf("RA key lost: %q %v", pk, ok)
	}
	c2, ok := st2.RA().Certificate("alice")
	if !ok || !bytes.Equal(c2.PublicKey, cert.PublicKey) || !c2.IssuedAt.Equal(cert.IssuedAt) ||
		!c2.ExpiresAt.Equal(cert.ExpiresAt) || c2.KeyAlgorithm != cert.KeyAlgorithm ||
		!bytes.Equal(c2.Signature, cert.Signature) {
		t.Fatalf("certificate lost or mangled: %+v", c2)
	}
	sess := st2.Sessions().Snapshot()
	if got, ok := sess["alice"]; !ok || got.Nonce != nonce || !got.IssuedAt.Equal(ch.IssuedAt) {
		t.Fatalf("session lost: %+v", sess)
	}
	// The nonce high-water mark survived (plus recovery slack), so no
	// challenge nonce is ever reissued.
	if st2.Sessions().Nonce() < nonce+nonceSlack {
		t.Fatalf("nonce high-water = %d, want >= %d", st2.Sessions().Nonce(), nonce+nonceSlack)
	}
	// Close wrote a snapshot; recovery came from it, not a long replay.
	if st2.Recovery().SnapshotSeq == 0 {
		t.Fatalf("recovery = %+v, expected a snapshot", st2.Recovery())
	}
}

func TestStateDeleteClient(t *testing.T) {
	dir := t.TempDir()
	st := openState(t, dir, Options{Sync: SyncNever})
	st.Images().Put("bob", enrollImage(t))
	st.RA().Update("bob", []byte("pk-bob"))
	st.Sessions().Open("bob", core.Challenge{Nonce: st.Sessions().NextNonce(), AddressMap: []int{1}})
	if err := st.DeleteClient("bob"); err != nil {
		t.Fatal(err)
	}
	if err := st.Close(); err != nil {
		t.Fatal(err)
	}
	st2 := openState(t, dir, Options{Sync: SyncNever})
	defer st2.Close()
	if st2.Images().Has("bob") {
		t.Error("image survived deprovisioning")
	}
	if _, ok := st2.RA().PublicKey("bob"); ok {
		t.Error("RA entry survived deprovisioning")
	}
	if st2.Sessions().Len() != 0 {
		t.Error("session survived deprovisioning")
	}
}

func TestStateSnapshotCompactsLog(t *testing.T) {
	dir := t.TempDir()
	reg := obs.NewRegistry()
	st := openState(t, dir, Options{Sync: SyncNever, SegmentBytes: 256, Metrics: reg})
	for i := 0; i < 40; i++ {
		id := core.ClientID(fmt.Sprintf("c%02d", i))
		if err := st.RA().Update(id, []byte("pk-of-"+id)); err != nil {
			t.Fatal(err)
		}
	}
	before, _ := listSegments(dir)
	if len(before) < 2 {
		t.Fatalf("expected several segments, got %d", len(before))
	}
	if err := st.Snapshot(); err != nil {
		t.Fatal(err)
	}
	after, _ := listSegments(dir)
	if len(after) >= len(before) {
		t.Fatalf("snapshot did not compact: %d -> %d segments", len(before), len(after))
	}
	snaps, _ := listSnapshots(dir)
	if len(snaps) != 1 {
		t.Fatalf("snapshots on disk = %d", len(snaps))
	}
	m := reg.Snapshot()
	if m["durable.snapshots"].(uint64) != 1 {
		t.Errorf("durable.snapshots = %v", m["durable.snapshots"])
	}
	if m["durable.wal_appends"].(uint64) != 40 {
		t.Errorf("durable.wal_appends = %v", m["durable.wal_appends"])
	}
	if err := st.Close(); err != nil {
		t.Fatal(err)
	}

	st2 := openState(t, dir, Options{Sync: SyncNever, SegmentBytes: 256})
	defer st2.Close()
	if st2.RA().Len() != 40 {
		t.Fatalf("RA.Len = %d after compacted recovery", st2.RA().Len())
	}
	if pk, ok := st2.RA().PublicKey("c07"); !ok || !bytes.Equal(pk, []byte("pk-of-c07")) {
		t.Fatalf("key lost across compaction: %q %v", pk, ok)
	}
}

func TestStateCorruptSnapshotFallsBack(t *testing.T) {
	dir := t.TempDir()
	st := openState(t, dir, Options{Sync: SyncNever})
	st.RA().Update("alice", []byte("pk1"))
	if err := st.Snapshot(); err != nil {
		t.Fatal(err)
	}
	st.RA().Update("alice", []byte("pk2"))
	if err := st.wal.Close(); err != nil { // crash: no final snapshot
		t.Fatal(err)
	}
	// Corrupt the snapshot; recovery must fall back to pure WAL replay.
	snaps, _ := listSnapshots(dir)
	if len(snaps) != 1 {
		t.Fatalf("snapshots = %v", snaps)
	}
	path := filepath.Join(dir, snapName(snaps[0]))
	if err := os.WriteFile(path, []byte("garbage"), 0o600); err != nil {
		t.Fatal(err)
	}
	st2 := openState(t, dir, Options{Sync: SyncNever})
	defer st2.Close()
	if st2.Recovery().BadSnapshots != 1 {
		t.Fatalf("recovery = %+v", st2.Recovery())
	}
	if pk, ok := st2.RA().PublicKey("alice"); !ok || !bytes.Equal(pk, []byte("pk2")) {
		t.Fatalf("fallback recovery lost the key: %q %v", pk, ok)
	}
}

// refModel mirrors the durable state at one-record granularity: every
// generated op journals exactly one WAL record, so "reference after M
// ops" is comparable with "state recovered from M records".
type refModel struct {
	images   map[core.ClientID]bool
	keys     map[core.ClientID][]byte
	certs    map[core.ClientID][]byte // PublicKey of the stored cert
	sessions map[core.ClientID]uint64 // challenge nonce
}

func newRefModel() *refModel {
	return &refModel{
		images:   map[core.ClientID]bool{},
		keys:     map[core.ClientID][]byte{},
		certs:    map[core.ClientID][]byte{},
		sessions: map[core.ClientID]uint64{},
	}
}

// TestStateCrashRecoveryProperty drives K random mutations against a
// durable State and a reference model, truncates the WAL at arbitrary
// byte offsets (simulating a crash mid-write), reopens, and asserts the
// recovered state equals the reference after exactly the records that
// survived.
func TestStateCrashRecoveryProperty(t *testing.T) {
	const K = 160
	rng := rand.New(rand.NewSource(0xD15EA5E))
	ids := make([]core.ClientID, 8)
	for i := range ids {
		ids[i] = core.ClientID(fmt.Sprintf("client-%d", i))
	}
	im := enrollImage(t)

	master := t.TempDir()
	st := openState(t, master, Options{Sync: SyncNever})
	ref := newRefModel()
	// Each op mutates the live state now and can later replay itself
	// into a fresh reference model.
	var replay []func(*refModel)
	apply := func(f func(*refModel)) { f(ref); replay = append(replay, f) }

	for len(replay) < K {
		id := ids[rng.Intn(len(ids))]
		switch rng.Intn(6) {
		case 0: // image put
			if err := st.Images().Put(id, im); err != nil {
				t.Fatal(err)
			}
			apply(func(m *refModel) { m.images[id] = true })
		case 1: // image delete (guarded: absent delete journals nothing)
			if !ref.images[id] {
				continue
			}
			if err := st.Images().Delete(id); err != nil {
				t.Fatal(err)
			}
			apply(func(m *refModel) { delete(m.images, id) })
		case 2: // RA key update
			key := make([]byte, 16)
			rng.Read(key)
			if err := st.RA().Update(id, key); err != nil {
				t.Fatal(err)
			}
			apply(func(m *refModel) { m.keys[id] = key })
		case 3: // RA certificate update
			pk := make([]byte, 8)
			rng.Read(pk)
			cert := &core.Certificate{
				ClientID: id, KeyAlgorithm: "AES-128", PublicKey: pk,
				IssuedAt: time.Unix(10, 0), ExpiresAt: time.Unix(20, 0), Signature: []byte("s"),
			}
			if err := st.RA().UpdateCertificate(id, cert); err != nil {
				t.Fatal(err)
			}
			apply(func(m *refModel) { m.certs[id] = pk })
		case 4: // session open
			nonce := st.Sessions().NextNonce()
			ch := core.Challenge{Nonce: nonce, AddressMap: []int{int(nonce % 512), 7}, Alg: core.SHA3, IssuedAt: time.Unix(30, 0)}
			if err := st.Sessions().Open(id, ch); err != nil {
				t.Fatal(err)
			}
			apply(func(m *refModel) { m.sessions[id] = nonce })
		case 5: // session drop (guarded: absent drop journals nothing)
			if _, open := ref.sessions[id]; !open {
				continue
			}
			if err := st.Sessions().Drop(id); err != nil {
				t.Fatal(err)
			}
			apply(func(m *refModel) { delete(m.sessions, id) })
		}
	}
	// Crash without a snapshot: close the WAL directly.
	if err := st.wal.Close(); err != nil {
		t.Fatal(err)
	}
	segs, err := listSegments(master)
	if err != nil || len(segs) != 1 {
		t.Fatalf("segments = %v (err %v), expected exactly one", segs, err)
	}
	full, err := os.ReadFile(filepath.Join(master, segName(segs[0])))
	if err != nil {
		t.Fatal(err)
	}

	offsets := []int64{0, 1, int64(len(full))}
	for i := 0; i < 17; i++ {
		offsets = append(offsets, rng.Int63n(int64(len(full))+1))
	}
	for _, off := range offsets {
		dir := t.TempDir()
		if err := os.WriteFile(filepath.Join(dir, segName(1)), full[:off], 0o600); err != nil {
			t.Fatal(err)
		}
		rec := openState(t, dir, Options{Sync: SyncNever})
		m := rec.Recovery().Records
		if m > K {
			t.Fatalf("offset %d: replayed %d records, only %d written", off, m, K)
		}
		want := newRefModel()
		for _, f := range replay[:m] {
			f(want)
		}
		for _, id := range ids {
			if got := rec.Images().Has(id); got != want.images[id] {
				t.Fatalf("offset %d (M=%d): image presence for %s = %v, want %v", off, m, id, got, want.images[id])
			}
			if want.images[id] {
				if _, err := rec.Images().Get(id); err != nil {
					t.Fatalf("offset %d: recovered image for %s unreadable: %v", off, id, err)
				}
			}
			pk, ok := rec.RA().PublicKey(id)
			wpk, wok := want.keys[id]
			if ok != wok || !bytes.Equal(pk, wpk) {
				t.Fatalf("offset %d (M=%d): RA key for %s = %q/%v, want %q/%v", off, m, id, pk, ok, wpk, wok)
			}
			cert, ok := rec.RA().Certificate(id)
			wc, wok := want.certs[id]
			if ok != wok || (ok && !bytes.Equal(cert.PublicKey, wc)) {
				t.Fatalf("offset %d (M=%d): certificate for %s mismatch", off, m, id)
			}
		}
		sess := rec.Sessions().Snapshot()
		if len(sess) != len(want.sessions) {
			t.Fatalf("offset %d (M=%d): %d open sessions, want %d", off, m, len(sess), len(want.sessions))
		}
		var hw uint64
		for id, nonce := range want.sessions {
			if got, ok := sess[id]; !ok || got.Nonce != nonce {
				t.Fatalf("offset %d (M=%d): session for %s = %+v, want nonce %d", off, m, id, got, nonce)
			}
			if nonce > hw {
				hw = nonce
			}
		}
		// Recovered nonces never collide with pre-crash ones.
		if rec.Sessions().Nonce() < hw+nonceSlack {
			t.Fatalf("offset %d: nonce high-water %d below %d", off, rec.Sessions().Nonce(), hw+nonceSlack)
		}
		if err := rec.Close(); err != nil {
			t.Fatal(err)
		}
	}
}
