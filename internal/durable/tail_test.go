package durable

import (
	"bytes"
	"context"
	"errors"
	"fmt"
	"testing"
	"time"

	"rbcsalted/internal/core"
)

// TestTailSeesLiveAppends is the satellite's contract: a tail started
// before records exist sees records appended after it started, in
// order, without going through the apply callback.
func TestTailSeesLiveAppends(t *testing.T) {
	dir := t.TempDir()
	w, _, _ := collectWAL(t, dir, walConfig{}, 0)
	defer w.Close()

	tail, err := w.TailFrom(0)
	if err != nil {
		t.Fatal(err)
	}
	defer tail.Close()

	type result struct {
		seq     uint64
		payload []byte
	}
	got := make(chan result, 16)
	errs := make(chan error, 1)
	go func() {
		ctx, cancel := context.WithTimeout(context.Background(), 10*time.Second)
		defer cancel()
		for i := 0; i < 10; i++ {
			seq, p, err := tail.Next(ctx)
			if err != nil {
				errs <- err
				return
			}
			got <- result{seq, p}
		}
		close(got)
	}()

	var want [][]byte
	for i := 0; i < 10; i++ {
		p := []byte(fmt.Sprintf("live-%03d", i))
		if _, err := w.Append(p); err != nil {
			t.Fatal(err)
		}
		want = append(want, p)
	}
	i := 0
	for {
		select {
		case err := <-errs:
			t.Fatal(err)
		case r, ok := <-got:
			if !ok {
				if i != 10 {
					t.Fatalf("tailed %d records, want 10", i)
				}
				return
			}
			if r.seq != uint64(i+1) || !bytes.Equal(r.payload, want[i]) {
				t.Fatalf("record %d = (%d, %q), want (%d, %q)", i, r.seq, r.payload, i+1, want[i])
			}
			i++
		case <-time.After(10 * time.Second):
			t.Fatal("tail stalled")
		}
	}
}

// TestTailAcrossRotation: a tail follows the writer across segment
// boundaries, including records appended before the tail started.
func TestTailAcrossRotation(t *testing.T) {
	dir := t.TempDir()
	// Tiny segments force rotation every couple of records.
	w, _, _ := collectWAL(t, dir, walConfig{segBytes: 64}, 0)
	defer w.Close()

	var want [][]byte
	for i := 0; i < 20; i++ {
		p := []byte(fmt.Sprintf("seg-%03d", i))
		if _, err := w.Append(p); err != nil {
			t.Fatal(err)
		}
		want = append(want, p)
	}

	tail, err := w.TailFrom(5)
	if err != nil {
		t.Fatal(err)
	}
	defer tail.Close()
	ctx, cancel := context.WithTimeout(context.Background(), 10*time.Second)
	defer cancel()
	for i := 5; i < 20; i++ {
		seq, p, err := tail.Next(ctx)
		if err != nil {
			t.Fatal(err)
		}
		if seq != uint64(i+1) || !bytes.Equal(p, want[i]) {
			t.Fatalf("record = (%d, %q), want (%d, %q)", seq, p, i+1, want[i])
		}
	}
}

// TestTailFromCompactedFailsTruncated: asking for records a snapshot
// compacted away must fail loudly, not silently skip.
func TestTailFromCompactedFailsTruncated(t *testing.T) {
	dir := t.TempDir()
	w, _, _ := collectWAL(t, dir, walConfig{segBytes: 64}, 0)
	defer w.Close()
	for i := 0; i < 20; i++ {
		if _, err := w.Append([]byte(fmt.Sprintf("c-%03d", i))); err != nil {
			t.Fatal(err)
		}
	}
	if err := w.Rotate(); err != nil {
		t.Fatal(err)
	}
	if removed, err := w.CompactBefore(10); err != nil || removed == 0 {
		t.Fatalf("CompactBefore removed %d segments, err=%v", removed, err)
	}
	if _, err := w.TailFrom(0); !errors.Is(err, ErrTruncated) {
		t.Fatalf("TailFrom(0) after compaction = %v, want ErrTruncated", err)
	}
	// Tailing the live edge still works.
	tail, err := w.TailFrom(w.LastSeq())
	if err != nil {
		t.Fatal(err)
	}
	tail.Close()
}

// TestTailNextCancel: a blocked Next honours context cancellation.
func TestTailNextCancel(t *testing.T) {
	dir := t.TempDir()
	w, _, _ := collectWAL(t, dir, walConfig{}, 0)
	defer w.Close()
	tail, err := w.TailFrom(0)
	if err != nil {
		t.Fatal(err)
	}
	defer tail.Close()
	ctx, cancel := context.WithCancel(context.Background())
	go func() {
		time.Sleep(20 * time.Millisecond)
		cancel()
	}()
	if _, _, err := tail.Next(ctx); !errors.Is(err, context.Canceled) {
		t.Fatalf("Next on empty WAL = %v, want context.Canceled", err)
	}
}

// TestTailWALClose: closing the WAL releases a blocked Next with
// ErrWALClosed instead of hanging it.
func TestTailWALClose(t *testing.T) {
	dir := t.TempDir()
	w, _, _ := collectWAL(t, dir, walConfig{}, 0)
	tail, err := w.TailFrom(0)
	if err != nil {
		t.Fatal(err)
	}
	defer tail.Close()
	errs := make(chan error, 1)
	go func() {
		_, _, err := tail.Next(context.Background())
		errs <- err
	}()
	time.Sleep(20 * time.Millisecond)
	if err := w.Close(); err != nil {
		t.Fatal(err)
	}
	select {
	case err := <-errs:
		if !errors.Is(err, ErrWALClosed) {
			t.Fatalf("Next across Close = %v, want ErrWALClosed", err)
		}
	case <-time.After(5 * time.Second):
		t.Fatal("Next not released by Close")
	}
}

// TestStateIngestReplaysIntoStores: Ingest journals a foreign payload
// under a local sequence number and applies it, and the result survives
// reopening — the follower half of replication in miniature.
func TestStateIngestReplaysIntoStores(t *testing.T) {
	var key [32]byte
	key[0] = 7

	// A "primary" state produces journaled records.
	primaryDir := t.TempDir()
	p, err := Open(Options{Dir: primaryDir, MasterKey: key})
	if err != nil {
		t.Fatal(err)
	}
	im := enrollImage(t)
	if err := p.Images().Put("alice", im); err != nil {
		t.Fatal(err)
	}
	if err := p.RA().Update("alice", []byte("alice-key")); err != nil {
		t.Fatal(err)
	}
	tail, err := p.TailFrom(0)
	if err != nil {
		t.Fatal(err)
	}
	defer tail.Close()

	// A "follower" ingests them.
	followerDir := t.TempDir()
	f, err := Open(Options{Dir: followerDir, MasterKey: key})
	if err != nil {
		t.Fatal(err)
	}
	ctx, cancel := context.WithTimeout(context.Background(), 10*time.Second)
	defer cancel()
	for f.LastSeq() < p.LastSeq() {
		_, payload, err := tail.Next(ctx)
		if err != nil {
			t.Fatal(err)
		}
		if _, err := f.Ingest(payload); err != nil {
			t.Fatal(err)
		}
	}
	if err := p.Close(); err != nil {
		t.Fatal(err)
	}
	if err := f.Close(); err != nil {
		t.Fatal(err)
	}

	// The ingested state survives recovery like native state.
	f2, err := Open(Options{Dir: followerDir, MasterKey: key})
	if err != nil {
		t.Fatal(err)
	}
	defer f2.Close()
	img, err := f2.Images().Get("alice")
	if err != nil || img == nil || len(img.Values) != len(im.Values) {
		t.Fatalf("follower image mismatch, err=%v", err)
	}
	for i := range im.Values {
		if img.Values[i] != im.Values[i] {
			t.Fatalf("follower image cell %d differs", i)
		}
	}
	if pk, ok := f2.RA().PublicKey("alice"); !ok || !bytes.Equal(pk, []byte("alice-key")) {
		t.Fatalf("follower RA key = %q, ok=%v", pk, ok)
	}
}

// TestStateIngestRejectsGarbage: a corrupt payload is rejected before
// anything reaches the WAL or the stores.
func TestStateIngestRejectsGarbage(t *testing.T) {
	s, err := Open(Options{Dir: t.TempDir()})
	if err != nil {
		t.Fatal(err)
	}
	defer s.Close()
	before := s.LastSeq()
	if _, err := s.Ingest([]byte{0xff, 0xfe}); err == nil {
		t.Fatal("garbage payload ingested")
	}
	if s.LastSeq() != before {
		t.Fatal("garbage payload advanced the WAL")
	}
	if _, err := s.Ingest(nil); err == nil {
		t.Fatal("empty payload ingested")
	}
}

// TestStateIngestIsIdempotent: re-delivering the same payload (a
// reconnect replaying an unacked suffix) converges to the same state.
func TestStateIngestIsIdempotent(t *testing.T) {
	s, err := Open(Options{Dir: t.TempDir()})
	if err != nil {
		t.Fatal(err)
	}
	defer s.Close()
	rec := &Record{Op: OpRAKey, ID: core.ClientID("bob"), Blob: []byte("bob-key")}
	payload, err := rec.Encode()
	if err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 3; i++ {
		if _, err := s.Ingest(payload); err != nil {
			t.Fatal(err)
		}
	}
	if pk, ok := s.RA().PublicKey("bob"); !ok || !bytes.Equal(pk, []byte("bob-key")) {
		t.Fatalf("RA key after re-delivery = %q, ok=%v", pk, ok)
	}
	if s.RA().Len() != 1 {
		t.Fatalf("RA len = %d, want 1", s.RA().Len())
	}
}
