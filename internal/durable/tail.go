package durable

import (
	"context"
	"encoding/binary"
	"errors"
	"fmt"
	"hash/crc32"
	"io"
	"os"
	"path/filepath"
	"sort"
)

// ErrTruncated reports that a tail's position has been compacted away:
// the records it wants no longer exist in any segment. The subscriber
// must fall back to a full-state transfer (replication does) or restart
// from a newer sequence number.
var ErrTruncated = errors.New("durable: tail position compacted")

// ErrWALClosed reports that the WAL was closed while a tail was waiting
// for the next record.
var ErrWALClosed = errors.New("durable: WAL closed")

// Tail is a read-only iterator over journaled records, independent of
// the recovery/apply path. It reads the segment files directly and
// never returns a record the writer has not fully written: Append
// publishes the sequence number only after the whole frame is in the
// file, and Next reads nothing past LastSeq. A Tail is not safe for
// concurrent use; run one per subscriber.
type Tail struct {
	w    *wal
	next uint64 // sequence number the next call to Next returns
	f    *os.File
}

// TailFrom opens a read-only tail over the WAL yielding every record
// with sequence number > after, blocking in Next for records that have
// not been appended yet. It fails with ErrTruncated when record after+1
// has already been compacted away. Close the tail when done.
func (w *wal) TailFrom(after uint64) (*Tail, error) {
	starts, err := listSegments(w.dir)
	if err != nil {
		return nil, err
	}
	// after == LastSeq is always valid (pure live tailing), even when
	// the segment holding after+1 does not exist yet.
	if after < w.LastSeq() {
		if len(starts) == 0 || after+1 < starts[0] {
			return nil, fmt.Errorf("%w: want %d, oldest segment starts at %d",
				ErrTruncated, after+1, firstOr(starts, 0))
		}
	}
	return &Tail{w: w, next: after + 1}, nil
}

func firstOr(s []uint64, def uint64) uint64 {
	if len(s) == 0 {
		return def
	}
	return s[0]
}

// Next blocks until record t.next exists and returns its sequence
// number and payload. The payload is freshly allocated and owned by the
// caller. It fails with ErrTruncated if compaction outran the tail,
// ErrWALClosed if the WAL closed while waiting, or ctx.Err.
func (t *Tail) Next(ctx context.Context) (uint64, []byte, error) {
	for {
		if err := ctx.Err(); err != nil {
			return 0, nil, err
		}
		if t.next > t.w.LastSeq() {
			// Subscribe first, then re-check: an append racing this call
			// closed an earlier channel, and waiting on the fresh one
			// without re-checking would miss it.
			ch := t.w.appendWait()
			if t.next <= t.w.LastSeq() {
				continue
			}
			if t.w.isClosed() {
				return 0, nil, ErrWALClosed
			}
			select {
			case <-ctx.Done():
				return 0, nil, ctx.Err()
			case <-ch:
			}
			continue
		}
		if t.f == nil {
			if err := t.open(); err != nil {
				return 0, nil, err
			}
		}
		seq, payload, err := t.readFrame()
		if err == io.EOF {
			// This segment is exhausted but t.next <= LastSeq, so the
			// record lives in a later segment (the writer rotated).
			t.f.Close()
			t.f = nil
			continue
		}
		if err != nil {
			return 0, nil, err
		}
		t.next = seq + 1
		return seq, payload, nil
	}
}

// open positions the tail at record t.next: the segment with the
// greatest start <= t.next, skipped forward record by record.
func (t *Tail) open() error {
	starts, err := listSegments(t.w.dir)
	if err != nil {
		return err
	}
	i := sort.Search(len(starts), func(i int) bool { return starts[i] > t.next }) - 1
	if i < 0 {
		return fmt.Errorf("%w: want %d, oldest segment starts at %d",
			ErrTruncated, t.next, firstOr(starts, 0))
	}
	f, err := os.Open(filepath.Join(t.w.dir, segName(starts[i])))
	if err != nil {
		if os.IsNotExist(err) {
			// Compacted between the listing and the open.
			return fmt.Errorf("%w: want %d", ErrTruncated, t.next)
		}
		return err
	}
	t.f = f
	for seq := starts[i]; seq < t.next; seq++ {
		hdr, err := t.readHeader(seq)
		if err == io.EOF {
			// The segment ends before t.next although the next segment
			// starts after it: the records in between never existed (a
			// snapshot covered them across a torn tail). For a tail that
			// is the same situation as compaction.
			t.f.Close()
			t.f = nil
			return fmt.Errorf("%w: want %d, gap after %d", ErrTruncated, t.next, seq-1)
		}
		if err != nil {
			t.f.Close()
			t.f = nil
			return err
		}
		if _, err := f.Seek(int64(binary.BigEndian.Uint32(hdr[8:12])), io.SeekCurrent); err != nil {
			t.f.Close()
			t.f = nil
			return err
		}
	}
	return nil
}

// readHeader reads and validates one record header that must carry seq.
func (t *Tail) readHeader(seq uint64) ([recordHeader]byte, error) {
	var hdr [recordHeader]byte
	if _, err := io.ReadFull(t.f, hdr[:]); err != nil {
		if err == io.ErrUnexpectedEOF {
			err = io.EOF
		}
		return hdr, err
	}
	rseq := binary.BigEndian.Uint64(hdr[0:8])
	plen := binary.BigEndian.Uint32(hdr[8:12])
	if plen == 0 || plen > maxRecordLen || rseq != seq {
		return hdr, fmt.Errorf("%w: tail read record %d, want %d", ErrCorrupt, rseq, seq)
	}
	return hdr, nil
}

// readFrame reads the frame for record t.next at the current position.
func (t *Tail) readFrame() (uint64, []byte, error) {
	hdr, err := t.readHeader(t.next)
	if err != nil {
		return 0, nil, err
	}
	plen := binary.BigEndian.Uint32(hdr[8:12])
	crc := binary.BigEndian.Uint32(hdr[12:16])
	payload := make([]byte, plen)
	if _, err := io.ReadFull(t.f, payload); err != nil {
		// t.next <= LastSeq, so the frame is fully written: a short
		// payload is damage, not a torn tail.
		return 0, nil, fmt.Errorf("%w: tail short payload at %d", ErrCorrupt, t.next)
	}
	if crc32.Update(crc32.Checksum(hdr[:12], castagnoli), castagnoli, payload) != crc {
		return 0, nil, fmt.Errorf("%w: tail checksum mismatch at %d", ErrCorrupt, t.next)
	}
	return t.next, payload, nil
}

// Close releases the tail's file handle. The WAL itself is unaffected.
func (t *Tail) Close() error {
	if t.f != nil {
		err := t.f.Close()
		t.f = nil
		return err
	}
	return nil
}
