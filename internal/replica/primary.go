package replica

import (
	"context"
	"errors"
	"fmt"
	"net"
	"sort"
	"sync"
	"time"

	"rbcsalted/internal/durable"
	"rbcsalted/internal/ring"
)

// FollowerStatus is one subscriber in the primary's liveness table.
type FollowerStatus struct {
	ID      string
	Addr    string
	Acked   uint64    // cursor the follower has acked
	LastAck time.Time // when the last ack (or the subscribe) arrived
	Shards  []int     // nil = all
}

// Primary serves this node's WAL to subscribing followers.
type Primary struct {
	// State is the durable state whose journal is streamed.
	State *durable.State
	// Epoch is the fencing epoch this primary serves at (from its meta
	// file). Subscribers carrying a higher epoch fence it.
	Epoch uint64
	// NumShards is the shard count records are classified with
	// (default ring.DefaultNumShards). Subscribers must agree.
	NumShards int
	// Heartbeat paces watermark messages on an idle stream (default
	// 1 s; tests shorten it).
	Heartbeat time.Duration
	// ReapAfter bounds follower silence: a subscriber that has not
	// acked for this long is disconnected and must resubscribe
	// (default 5× Heartbeat) — the cluster coordinator's reap idiom.
	ReapAfter time.Duration
	// OnFenced, when set, fires once when a subscriber fences this
	// primary (the server uses it to stand down).
	OnFenced func(epoch uint64)

	mu       sync.Mutex
	ln       net.Listener
	fenced   bool
	fencedBy uint64
	subs     map[*subscriber]struct{}
	closed   bool
	wg       sync.WaitGroup
}

type subscriber struct {
	id     string
	addr   string
	shards map[int]bool // nil = all
	conn   net.Conn

	mu      sync.Mutex
	acked   uint64
	lastAck time.Time
}

func (s *subscriber) wants(shard int) bool {
	return s.shards == nil || s.shards[shard]
}

func (s *subscriber) noteAck(cursor uint64) {
	s.mu.Lock()
	if cursor > s.acked {
		s.acked = cursor
	}
	s.lastAck = time.Now()
	s.mu.Unlock()
}

func (p *Primary) heartbeat() time.Duration {
	if p.Heartbeat > 0 {
		return p.Heartbeat
	}
	return time.Second
}

func (p *Primary) reapAfter() time.Duration {
	if p.ReapAfter > 0 {
		return p.ReapAfter
	}
	return 5 * p.heartbeat()
}

func (p *Primary) numShards() int {
	if p.NumShards > 0 {
		return p.NumShards
	}
	return ring.DefaultNumShards
}

// Serve accepts subscribers until the listener closes.
func (p *Primary) Serve(ln net.Listener) error {
	p.mu.Lock()
	if p.subs == nil {
		p.subs = make(map[*subscriber]struct{})
	}
	p.ln = ln
	p.mu.Unlock()
	for {
		conn, err := ln.Accept()
		if err != nil {
			if errors.Is(err, net.ErrClosed) {
				return nil
			}
			return err
		}
		p.wg.Add(1)
		go func() {
			defer p.wg.Done()
			p.handle(conn)
		}()
	}
}

// Close stops the listener and every subscriber stream.
func (p *Primary) Close() error {
	p.mu.Lock()
	p.closed = true
	ln := p.ln
	for s := range p.subs {
		s.conn.Close()
	}
	p.mu.Unlock()
	var err error
	if ln != nil {
		err = ln.Close()
	}
	p.wg.Wait()
	return err
}

// Fenced reports whether a higher-epoch subscriber has fenced this
// primary, and by which epoch.
func (p *Primary) Fenced() (bool, uint64) {
	p.mu.Lock()
	defer p.mu.Unlock()
	return p.fenced, p.fencedBy
}

// Followers snapshots the liveness table, sorted by follower ID.
func (p *Primary) Followers() []FollowerStatus {
	p.mu.Lock()
	defer p.mu.Unlock()
	out := make([]FollowerStatus, 0, len(p.subs))
	for s := range p.subs {
		s.mu.Lock()
		st := FollowerStatus{ID: s.id, Addr: s.addr, Acked: s.acked, LastAck: s.lastAck}
		s.mu.Unlock()
		if s.shards != nil {
			for sh := range s.shards {
				st.Shards = append(st.Shards, sh)
			}
			sort.Ints(st.Shards)
		}
		out = append(out, st)
	}
	sort.Slice(out, func(i, j int) bool { return out[i].ID < out[j].ID })
	return out
}

// fence marks the primary superseded and fires OnFenced once.
func (p *Primary) fence(epoch uint64) {
	p.mu.Lock()
	first := !p.fenced
	p.fenced = true
	if epoch > p.fencedBy {
		p.fencedBy = epoch
	}
	hook := p.OnFenced
	p.mu.Unlock()
	if first && hook != nil {
		hook(epoch)
	}
}

// handle runs one subscriber stream.
func (p *Primary) handle(conn net.Conn) {
	defer conn.Close()

	refuse := func(msg string) {
		_ = writeMsg(conn, kindAccept, &acceptMsg{Epoch: p.Epoch, Err: msg})
	}

	conn.SetReadDeadline(time.Now().Add(p.reapAfter()))
	kind, raw, err := readMsg(conn)
	if err != nil || kind != kindSubscribe {
		refuse("expected subscribe")
		return
	}
	sub := raw.(*subscribeMsg)
	if sub.NumShards != 0 && sub.NumShards != p.numShards() {
		refuse(fmt.Sprintf("shard count mismatch: primary %d, follower %d", p.numShards(), sub.NumShards))
		return
	}
	if sub.Epoch > p.Epoch {
		// A promotion happened elsewhere: this primary is history.
		p.fence(sub.Epoch)
		refuse(fmt.Sprintf("fenced: follower at epoch %d, primary at %d", sub.Epoch, p.Epoch))
		return
	}
	if fenced, by := p.Fenced(); fenced {
		refuse(fmt.Sprintf("fenced by epoch %d", by))
		return
	}

	s := &subscriber{id: sub.FollowerID, addr: conn.RemoteAddr().String(), conn: conn, lastAck: time.Now()}
	if sub.Shards != nil {
		s.shards = make(map[int]bool, len(sub.Shards))
		for _, sh := range sub.Shards {
			s.shards[sh] = true
		}
	}
	p.mu.Lock()
	if p.closed {
		p.mu.Unlock()
		refuse("primary closing")
		return
	}
	p.subs[s] = struct{}{}
	p.mu.Unlock()
	defer func() {
		p.mu.Lock()
		delete(p.subs, s)
		p.mu.Unlock()
	}()

	// Acks arrive on their own goroutine; any read error tears the
	// stream down. The stream context dies with it.
	ctx, cancel := context.WithCancel(context.Background())
	defer cancel()
	go func() {
		defer cancel()
		for {
			conn.SetReadDeadline(time.Now().Add(p.reapAfter()))
			kind, raw, err := readMsg(conn)
			if err != nil || kind != kindAck {
				return
			}
			s.noteAck(raw.(*ackMsg).Cursor)
		}
	}()
	conn.SetWriteDeadline(time.Time{})

	_ = p.stream(ctx, conn, s, sub.Cursor)
}

// stream ships records from cursor onward, switching to a synthesized
// full-state transfer whenever compaction has outrun the cursor.
func (p *Primary) stream(ctx context.Context, conn net.Conn, s *subscriber, cursor uint64) error {
	accepted := false
	for {
		tail, err := p.State.TailFrom(cursor)
		if errors.Is(err, durable.ErrTruncated) {
			if !accepted {
				if err := writeMsg(conn, kindAccept, &acceptMsg{Epoch: p.Epoch, Snapshot: true}); err != nil {
					return err
				}
				accepted = true
			}
			cursor, err = p.sendSnapshot(conn, s)
			if err != nil {
				return err
			}
			continue
		}
		if err != nil {
			if !accepted {
				_ = writeMsg(conn, kindAccept, &acceptMsg{Epoch: p.Epoch, Err: err.Error()})
			}
			return err
		}
		if !accepted {
			if err := writeMsg(conn, kindAccept, &acceptMsg{Epoch: p.Epoch}); err != nil {
				tail.Close()
				return err
			}
			accepted = true
		}
		err = p.tailLoop(ctx, conn, s, tail, cursor)
		tail.Close()
		if !errors.Is(err, durable.ErrTruncated) {
			return err
		}
		// Compaction outran the tail mid-stream (slow follower): fall
		// back to a fresh snapshot transfer and resume from its cut.
		cursor, err = p.sendSnapshot(conn, s)
		if err != nil {
			return err
		}
	}
}

// tailLoop is live streaming: records the subscriber's shards want,
// watermarks for everything else and for idle heartbeats.
func (p *Primary) tailLoop(ctx context.Context, conn net.Conn, s *subscriber, tail *durable.Tail, cursor uint64) error {
	numShards := p.numShards()
	watermark := cursor // highest seq covered but not sent as a record
	for {
		if since := time.Since(s.lastAckTime()); since > p.reapAfter() {
			return fmt.Errorf("replica: follower %s silent for %s, reaping", s.id, since.Round(time.Millisecond))
		}
		stepCtx, cancel := context.WithTimeout(ctx, p.heartbeat())
		seq, payload, err := tail.Next(stepCtx)
		cancel()
		if err != nil {
			if errors.Is(err, context.DeadlineExceeded) && ctx.Err() == nil {
				// Idle: heartbeat the current position.
				if err := writeMsg(conn, kindWatermark, &watermarkMsg{Seq: watermark}); err != nil {
					return err
				}
				continue
			}
			return err
		}
		rec, err := durable.DecodeRecord(payload)
		if err != nil {
			return fmt.Errorf("replica: undecodable record %d: %w", seq, err)
		}
		if s.wants(ring.ShardOfKey(string(rec.ID), numShards)) {
			if err := writeMsg(conn, kindRecord, &recordMsg{Seq: seq, Payload: payload}); err != nil {
				return err
			}
		}
		watermark = seq
	}
}

func (s *subscriber) lastAckTime() time.Time {
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.lastAck
}

// sendSnapshot ships the stores' current state as synthesized records
// and returns the sequence cut live tailing resumes from. The cut is
// taken before the store copies, so the copies can only be ahead of it
// — a mutation present in both the transfer and the replayed suffix
// converges because every op is an idempotent overwrite (the same
// argument durable.Snapshot makes).
func (p *Primary) sendSnapshot(conn net.Conn, s *subscriber) (uint64, error) {
	cut := p.State.LastSeq()
	nonce := p.State.Sessions().Nonce()
	numShards := p.numShards()

	send := func(rec *durable.Record) error {
		if !s.wants(ring.ShardOfKey(string(rec.ID), numShards)) {
			return nil
		}
		payload, err := rec.Encode()
		if err != nil {
			return err
		}
		return writeMsg(conn, kindRecord, &recordMsg{Payload: payload})
	}
	for id, sealed := range p.State.Images().SealedSnapshot() {
		if err := send(&durable.Record{Op: durable.OpImagePut, ID: id, Blob: sealed}); err != nil {
			return 0, err
		}
	}
	for id, key := range p.State.RA().SnapshotKeys() {
		if err := send(&durable.Record{Op: durable.OpRAKey, ID: id, Blob: key}); err != nil {
			return 0, err
		}
	}
	for id, cert := range p.State.RA().SnapshotCertificates() {
		if err := send(&durable.Record{Op: durable.OpRACert, ID: id, Cert: cert}); err != nil {
			return 0, err
		}
	}
	for id, ch := range p.State.Sessions().Snapshot() {
		ch := ch
		if err := send(&durable.Record{Op: durable.OpSessionOpen, ID: id, Challenge: &ch}); err != nil {
			return 0, err
		}
	}
	if err := writeMsg(conn, kindCatchupDone, &catchupDoneMsg{Cut: cut, Nonce: nonce}); err != nil {
		return 0, err
	}
	return cut, nil
}
