package replica

import (
	"context"
	"errors"
	"fmt"
	"net"
	"sync"
	"time"

	"rbcsalted/internal/core"
	"rbcsalted/internal/durable"
	"rbcsalted/internal/ring"
)

// FollowerConfig configures a Follower.
type FollowerConfig struct {
	// State is the local durable state replicated records are ingested
	// into.
	State *durable.State
	// ID names this follower in the primary's liveness table.
	ID string
	// MetaPath is where the fencing epoch and cursor persist (one file
	// per followed primary).
	MetaPath string
	// NumShards is the shard count (default ring.DefaultNumShards);
	// it must match the primary's.
	NumShards int
	// Shards selects which shards to subscribe to (nil = all). A
	// serving node cross-replicating a peer passes exactly the shards
	// that peer owns.
	Shards []int
	// AckInterval paces cursor acks (and meta persistence) back to the
	// primary (default 500 ms; tests shorten it).
	AckInterval time.Duration
	// DialTimeout bounds each connection attempt (default 5 s).
	DialTimeout time.Duration
	// ReadTimeout bounds silence from the primary before the follower
	// declares it dead and redials (default 10 s — several primary
	// heartbeats).
	ReadTimeout time.Duration
}

// Follower subscribes to a primary's WAL stream and ingests it into
// the local durable state. Safe for use from one Run loop plus
// concurrent Cursor/Epoch/Promote calls.
type Follower struct {
	cfg FollowerConfig

	mu       sync.Mutex
	epoch    uint64
	cursor   uint64
	promoted bool
	conn     net.Conn
}

// NewFollower builds a Follower, loading its persisted meta.
func NewFollower(cfg FollowerConfig) (*Follower, error) {
	if cfg.State == nil {
		return nil, errors.New("replica: FollowerConfig.State required")
	}
	if cfg.MetaPath == "" {
		return nil, errors.New("replica: FollowerConfig.MetaPath required")
	}
	if cfg.NumShards <= 0 {
		cfg.NumShards = ring.DefaultNumShards
	}
	if cfg.AckInterval <= 0 {
		cfg.AckInterval = 500 * time.Millisecond
	}
	if cfg.DialTimeout <= 0 {
		cfg.DialTimeout = 5 * time.Second
	}
	if cfg.ReadTimeout <= 0 {
		cfg.ReadTimeout = 10 * time.Second
	}
	meta, err := LoadMeta(cfg.MetaPath)
	if err != nil {
		return nil, err
	}
	return &Follower{cfg: cfg, epoch: meta.Epoch, cursor: meta.Cursor}, nil
}

// Cursor returns the primary sequence number applied through.
func (f *Follower) Cursor() uint64 {
	f.mu.Lock()
	defer f.mu.Unlock()
	return f.cursor
}

// Epoch returns the follower's fencing epoch.
func (f *Follower) Epoch() uint64 {
	f.mu.Lock()
	defer f.mu.Unlock()
	return f.epoch
}

// Promote turns this follower into the replication group's new
// authority: the fencing epoch advances (persisted before returning)
// and the challenge-nonce high-water mark jumps by PromoteNonceSlack so
// nonces the dead primary issued but never replicated cannot be
// reissued. Any active Run loop stops with ErrPromoted. The caller
// owns what happens next — typically re-serving the follower's State
// as a Primary at the returned epoch.
func (f *Follower) Promote() (uint64, error) {
	f.mu.Lock()
	if f.promoted {
		epoch := f.epoch
		f.mu.Unlock()
		return epoch, nil
	}
	f.promoted = true
	f.epoch++
	epoch := f.epoch
	cursor := f.cursor
	conn := f.conn
	f.mu.Unlock()

	if conn != nil {
		conn.Close()
	}
	sess := f.cfg.State.Sessions()
	sess.BumpNonce(sess.Nonce() + PromoteNonceSlack)
	if err := SaveMeta(f.cfg.MetaPath, Meta{Epoch: epoch, Cursor: cursor}); err != nil {
		return epoch, err
	}
	return epoch, nil
}

// Promoted reports whether Promote has run.
func (f *Follower) Promoted() bool {
	f.mu.Lock()
	defer f.mu.Unlock()
	return f.promoted
}

// RunUntil follows the primary at addr, redialing with a fixed delay
// after connection loss — the cluster worker's rejoin idiom — until ctx
// is cancelled, the follower is promoted, or the primary turns out to
// be fenced or stale (those are permanent for this topology, so the
// loop reports instead of hammering).
func (f *Follower) RunUntil(ctx context.Context, addr string, delay time.Duration) error {
	if delay <= 0 {
		delay = time.Second
	}
	for {
		err := f.Run(ctx, addr)
		switch {
		case errors.Is(err, ErrPromoted), errors.Is(err, ErrStalePrimary), errors.Is(err, ErrFenced):
			return err
		case ctx.Err() != nil:
			return ctx.Err()
		}
		select {
		case <-ctx.Done():
			return ctx.Err()
		case <-time.After(delay):
		}
	}
}

// Run follows the primary at addr over one connection: subscribe,
// catch up, tail live records until the connection drops, ctx is
// cancelled, or the follower is promoted.
func (f *Follower) Run(ctx context.Context, addr string) error {
	f.mu.Lock()
	if f.promoted {
		f.mu.Unlock()
		return ErrPromoted
	}
	epoch, cursor := f.epoch, f.cursor
	f.mu.Unlock()

	d := net.Dialer{Timeout: f.cfg.DialTimeout}
	conn, err := d.DialContext(ctx, "tcp", addr)
	if err != nil {
		return err
	}
	defer conn.Close()

	f.mu.Lock()
	if f.promoted {
		f.mu.Unlock()
		return ErrPromoted
	}
	f.conn = conn
	f.mu.Unlock()
	defer func() {
		f.mu.Lock()
		f.conn = nil
		f.mu.Unlock()
	}()

	// Tear the connection down when ctx dies so blocking reads fail.
	done := make(chan struct{})
	defer close(done)
	go func() {
		select {
		case <-ctx.Done():
			conn.Close()
		case <-done:
		}
	}()

	if err := writeMsg(conn, kindSubscribe, &subscribeMsg{
		FollowerID: f.cfg.ID,
		Epoch:      epoch,
		Cursor:     cursor,
		NumShards:  f.cfg.NumShards,
		Shards:     f.cfg.Shards,
	}); err != nil {
		return err
	}
	conn.SetReadDeadline(time.Now().Add(f.cfg.ReadTimeout))
	kind, raw, err := readMsg(conn)
	if err != nil || kind != kindAccept {
		return fmt.Errorf("replica: expected accept, got %v / %w", kind, err)
	}
	acc := raw.(*acceptMsg)
	if acc.Err != "" {
		if acc.Epoch < epoch {
			return fmt.Errorf("%w: refused: %s", ErrFenced, acc.Err)
		}
		return fmt.Errorf("replica: primary refused: %s", acc.Err)
	}
	if acc.Epoch < epoch {
		// The primary predates our promotion history: refusing its
		// stream is what prevents a deposed primary from rewriting a
		// promoted follower.
		return fmt.Errorf("%w: primary epoch %d, follower epoch %d", ErrStalePrimary, acc.Epoch, epoch)
	}
	if acc.Epoch > epoch {
		// The group moved on while we were away; adopt its epoch.
		f.mu.Lock()
		f.epoch = acc.Epoch
		epoch = acc.Epoch
		cursor = f.cursor
		f.mu.Unlock()
		if err := SaveMeta(f.cfg.MetaPath, Meta{Epoch: epoch, Cursor: cursor}); err != nil {
			return err
		}
	}

	// Ack loop: heartbeat the applied cursor back and persist it.
	ackErr := make(chan error, 1)
	go func() {
		t := time.NewTicker(f.cfg.AckInterval)
		defer t.Stop()
		for {
			select {
			case <-done:
				return
			case <-ctx.Done():
				return
			case <-t.C:
			}
			f.mu.Lock()
			cur, ep := f.cursor, f.epoch
			f.mu.Unlock()
			if err := SaveMeta(f.cfg.MetaPath, Meta{Epoch: ep, Cursor: cur}); err != nil {
				ackErr <- err
				return
			}
			if err := writeMsg(conn, kindAck, &ackMsg{Cursor: cur}); err != nil {
				return // reader will surface the connection error
			}
		}
	}()

	err = f.consume(conn)
	select {
	case aerr := <-ackErr:
		err = aerr
	default:
	}
	// Persist the final position; re-delivery from an older cursor is
	// harmless, so a failed save only costs replay.
	f.mu.Lock()
	cur, ep, promoted := f.cursor, f.epoch, f.promoted
	f.mu.Unlock()
	_ = SaveMeta(f.cfg.MetaPath, Meta{Epoch: ep, Cursor: cur})
	if promoted {
		return ErrPromoted
	}
	if ctx.Err() != nil {
		return ctx.Err()
	}
	return err
}

// consume applies the primary's stream: catch-up records (Seq 0) are
// collected for reconciliation, live records advance the cursor.
func (f *Follower) consume(conn net.Conn) error {
	var catchup *catchupSet
	for {
		conn.SetReadDeadline(time.Now().Add(f.cfg.ReadTimeout))
		kind, raw, err := readMsg(conn)
		if err != nil {
			return err
		}
		switch kind {
		case kindRecord:
			m := raw.(*recordMsg)
			rec, err := durable.DecodeRecord(m.Payload)
			if err != nil {
				return fmt.Errorf("replica: bad record from primary: %w", err)
			}
			if m.Seq == 0 {
				if catchup == nil {
					catchup = newCatchupSet()
				}
				catchup.note(rec)
			}
			if _, err := f.cfg.State.Ingest(m.Payload); err != nil {
				return fmt.Errorf("replica: ingest: %w", err)
			}
			if m.Seq > 0 {
				f.advance(m.Seq)
			}
		case kindWatermark:
			f.advance(raw.(*watermarkMsg).Seq)
		case kindCatchupDone:
			m := raw.(*catchupDoneMsg)
			if catchup == nil {
				catchup = newCatchupSet()
			}
			if err := f.reconcile(catchup); err != nil {
				return err
			}
			catchup = nil
			f.cfg.State.Sessions().BumpNonce(m.Nonce)
			f.advance(m.Cut)
		default:
			return fmt.Errorf("replica: unexpected message kind %d mid-stream", kind)
		}
	}
}

// advance moves the cursor forward (never backward: watermarks and
// records can interleave across a snapshot fallback).
func (f *Follower) advance(seq uint64) {
	f.mu.Lock()
	if seq > f.cursor {
		f.cursor = seq
	}
	f.mu.Unlock()
}

// catchupSet tracks which entries a full-state transfer mentioned, so
// reconciliation can delete everything else — entries the primary
// deleted in the compacted gap the follower never saw.
type catchupSet struct {
	images   map[core.ClientID]bool
	raKeys   map[core.ClientID]bool
	raCerts  map[core.ClientID]bool
	sessions map[core.ClientID]bool
}

func newCatchupSet() *catchupSet {
	return &catchupSet{
		images:   make(map[core.ClientID]bool),
		raKeys:   make(map[core.ClientID]bool),
		raCerts:  make(map[core.ClientID]bool),
		sessions: make(map[core.ClientID]bool),
	}
}

func (c *catchupSet) note(rec *durable.Record) {
	switch rec.Op {
	case durable.OpImagePut:
		c.images[rec.ID] = true
	case durable.OpRAKey:
		c.raKeys[rec.ID] = true
	case durable.OpRACert:
		c.raCerts[rec.ID] = true
	case durable.OpSessionOpen:
		c.sessions[rec.ID] = true
	}
}

// inShards reports whether id belongs to a shard this follower
// subscribes to — reconciliation must never touch shards the transfer
// was filtered on, or a shard-subset snapshot would wipe the rest.
func (f *Follower) inShards(id core.ClientID) bool {
	if f.cfg.Shards == nil {
		return true
	}
	shard := ring.ShardOfKey(string(id), f.cfg.NumShards)
	for _, s := range f.cfg.Shards {
		if s == shard {
			return true
		}
	}
	return false
}

// reconcile deletes local entries (in subscribed shards) that the
// full-state transfer did not mention. Deletions go through the
// journaling store APIs, so they land in the follower's own WAL and
// survive its restarts. RA entries are kept while either their key or
// certificate was mentioned; a stale certificate under a live key is
// left for the next re-key to overwrite (certificates carry their own
// expiry).
func (f *Follower) reconcile(c *catchupSet) error {
	st := f.cfg.State
	for id := range st.Images().SealedSnapshot() {
		if f.inShards(id) && !c.images[id] {
			if err := st.Images().Delete(id); err != nil {
				return fmt.Errorf("replica: reconcile image %q: %w", id, err)
			}
		}
	}
	stale := make(map[core.ClientID]bool)
	for id := range st.RA().SnapshotKeys() {
		if f.inShards(id) && !c.raKeys[id] && !c.raCerts[id] {
			stale[id] = true
		}
	}
	for id := range st.RA().SnapshotCertificates() {
		if f.inShards(id) && !c.raKeys[id] && !c.raCerts[id] {
			stale[id] = true
		}
	}
	for id := range stale {
		if err := st.RA().Delete(id); err != nil {
			return fmt.Errorf("replica: reconcile RA %q: %w", id, err)
		}
	}
	for id := range st.Sessions().Snapshot() {
		if f.inShards(id) && !c.sessions[id] {
			if err := st.Sessions().Drop(id); err != nil {
				return fmt.Errorf("replica: reconcile session %q: %w", id, err)
			}
		}
	}
	return nil
}
