package replica

import (
	"context"
	"errors"
	"fmt"
	"net"
	"path/filepath"
	"sync/atomic"
	"testing"
	"time"

	"rbcsalted/internal/core"
	"rbcsalted/internal/durable"
	"rbcsalted/internal/ring"
)

func openState(t *testing.T, dir string) *durable.State {
	t.Helper()
	st, err := durable.Open(durable.Options{
		Dir:          dir,
		MasterKey:    [32]byte{9},
		SegmentBytes: 512, // rotate often so compaction has teeth
	})
	if err != nil {
		t.Fatal(err)
	}
	return st
}

// startPrimary serves st's WAL on a loopback listener.
func startPrimary(t *testing.T, st *durable.State, epoch uint64) (*Primary, string) {
	t.Helper()
	p := &Primary{
		State:     st,
		Epoch:     epoch,
		Heartbeat: 20 * time.Millisecond,
		ReapAfter: 2 * time.Second,
	}
	ln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	go p.Serve(ln)
	return p, ln.Addr().String()
}

func newFollower(t *testing.T, st *durable.State, dir, id string, shards []int) *Follower {
	t.Helper()
	f, err := NewFollower(FollowerConfig{
		State:       st,
		ID:          id,
		MetaPath:    filepath.Join(dir, "replica-primary.meta"),
		Shards:      shards,
		AckInterval: 10 * time.Millisecond,
		ReadTimeout: 2 * time.Second,
	})
	if err != nil {
		t.Fatal(err)
	}
	return f
}

func waitFor(t *testing.T, what string, cond func() bool) {
	t.Helper()
	deadline := time.Now().Add(10 * time.Second)
	for time.Now().Before(deadline) {
		if cond() {
			return
		}
		time.Sleep(5 * time.Millisecond)
	}
	t.Fatalf("timed out waiting for %s", what)
}

func openSession(t *testing.T, st *durable.State, id core.ClientID) core.Challenge {
	t.Helper()
	ch := core.Challenge{
		Nonce:      st.Sessions().NextNonce(),
		AddressMap: make([]int, 256),
		Alg:        core.SHA3,
		IssuedAt:   time.Now(),
	}
	if err := st.Sessions().Open(id, ch); err != nil {
		t.Fatal(err)
	}
	return ch
}

// TestLiveReplication: records journaled on the primary appear on the
// follower, and the liveness table sees the follower acking.
func TestLiveReplication(t *testing.T) {
	pst := openState(t, t.TempDir())
	defer pst.Close()
	fdir := t.TempDir()
	fst := openState(t, fdir)
	defer fst.Close()

	p, addr := startPrimary(t, pst, 1)
	defer p.Close()
	f := newFollower(t, fst, fdir, "f1", nil)
	ctx, cancel := context.WithCancel(context.Background())
	defer cancel()
	go f.RunUntil(ctx, addr, 20*time.Millisecond)

	for i := 0; i < 30; i++ {
		id := core.ClientID(fmt.Sprintf("client-%02d", i))
		if err := pst.RA().Update(id, []byte(fmt.Sprintf("key-%02d", i))); err != nil {
			t.Fatal(err)
		}
	}
	openSession(t, pst, "client-00")

	waitFor(t, "follower caught up", func() bool { return f.Cursor() >= pst.LastSeq() })
	for i := 0; i < 30; i++ {
		id := core.ClientID(fmt.Sprintf("client-%02d", i))
		key, ok := fst.RA().PublicKey(id)
		if !ok || string(key) != fmt.Sprintf("key-%02d", i) {
			t.Fatalf("follower missing %s (key %q ok=%v)", id, key, ok)
		}
	}
	if fst.Sessions().Len() != 1 {
		t.Fatalf("follower sessions = %d, want 1", fst.Sessions().Len())
	}

	waitFor(t, "follower acked", func() bool {
		fs := p.Followers()
		return len(fs) == 1 && fs[0].ID == "f1" && fs[0].Acked >= pst.LastSeq()
	})
}

// TestSnapshotCatchup: a follower whose cursor was compacted away gets
// the synthesized full-state transfer, including reconciliation of
// entries the primary deleted while the follower was gone.
func TestSnapshotCatchup(t *testing.T) {
	pst := openState(t, t.TempDir())
	defer pst.Close()
	fdir := t.TempDir()
	fst := openState(t, fdir)
	defer fst.Close()

	// The follower holds a stale entry the primary deleted long ago.
	if err := fst.RA().Update("ghost", []byte("stale")); err != nil {
		t.Fatal(err)
	}

	for i := 0; i < 40; i++ {
		id := core.ClientID(fmt.Sprintf("snap-%02d", i))
		if err := pst.RA().Update(id, []byte(fmt.Sprintf("key-%02d", i))); err != nil {
			t.Fatal(err)
		}
	}
	// Snapshot + compaction: the WAL prefix is gone, TailFrom(0) is
	// impossible, so the primary must synthesize state.
	if err := pst.Snapshot(); err != nil {
		t.Fatal(err)
	}
	if _, err := pst.TailFrom(0); !errors.Is(err, durable.ErrTruncated) {
		t.Fatalf("expected compacted prefix, got %v", err)
	}

	p, addr := startPrimary(t, pst, 1)
	defer p.Close()
	f := newFollower(t, fst, fdir, "f1", nil)
	ctx, cancel := context.WithCancel(context.Background())
	defer cancel()
	go f.RunUntil(ctx, addr, 20*time.Millisecond)

	waitFor(t, "catch-up", func() bool { return f.Cursor() >= pst.LastSeq() })
	for i := 0; i < 40; i++ {
		id := core.ClientID(fmt.Sprintf("snap-%02d", i))
		if _, ok := fst.RA().PublicKey(id); !ok {
			t.Fatalf("follower missing %s after snapshot catch-up", id)
		}
	}
	if _, ok := fst.RA().PublicKey("ghost"); ok {
		t.Fatal("reconciliation kept an entry the transfer never mentioned")
	}

	// Live tailing continues after the transfer.
	if err := pst.RA().Update("after", []byte("after-key")); err != nil {
		t.Fatal(err)
	}
	waitFor(t, "live record after catch-up", func() bool {
		_, ok := fst.RA().PublicKey("after")
		return ok
	})
}

// TestShardFiltering: a subscriber asking for a shard subset receives
// only those records, while watermarks still advance its cursor past
// the filtered ones.
func TestShardFiltering(t *testing.T) {
	pst := openState(t, t.TempDir())
	defer pst.Close()
	fdir := t.TempDir()
	fst := openState(t, fdir)
	defer fst.Close()

	// Find two client IDs in different shards.
	inID := core.ClientID("shard-a")
	inShard := ring.ShardOfKey(string(inID), ring.DefaultNumShards)
	var outID core.ClientID
	for i := 0; ; i++ {
		id := core.ClientID(fmt.Sprintf("other-%d", i))
		if ring.ShardOfKey(string(id), ring.DefaultNumShards) != inShard {
			outID = id
			break
		}
	}

	p, addr := startPrimary(t, pst, 1)
	defer p.Close()
	f := newFollower(t, fst, fdir, "f1", []int{inShard})
	ctx, cancel := context.WithCancel(context.Background())
	defer cancel()
	go f.RunUntil(ctx, addr, 20*time.Millisecond)

	if err := pst.RA().Update(inID, []byte("in")); err != nil {
		t.Fatal(err)
	}
	if err := pst.RA().Update(outID, []byte("out")); err != nil {
		t.Fatal(err)
	}
	waitFor(t, "cursor past filtered record", func() bool { return f.Cursor() >= pst.LastSeq() })
	if _, ok := fst.RA().PublicKey(inID); !ok {
		t.Fatal("subscribed-shard record not replicated")
	}
	if _, ok := fst.RA().PublicKey(outID); ok {
		t.Fatal("foreign-shard record replicated despite filter")
	}
}

// TestFencing: a higher-epoch subscriber fences the primary (OnFenced
// fires, later subscribers are refused); a lower-epoch follower adopts
// the primary's epoch.
func TestFencing(t *testing.T) {
	pst := openState(t, t.TempDir())
	defer pst.Close()

	var fencedAt atomic.Uint64
	p := &Primary{
		State:     pst,
		Epoch:     5,
		Heartbeat: 20 * time.Millisecond,
		OnFenced:  func(e uint64) { fencedAt.Store(e) },
	}
	ln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	go p.Serve(ln)
	defer p.Close()
	addr := ln.Addr().String()

	// A lower-epoch follower adopts epoch 5.
	f3dir := t.TempDir()
	f3st := openState(t, f3dir)
	defer f3st.Close()
	f3 := newFollower(t, f3st, f3dir, "old", nil)
	if err := SaveMeta(f3.cfg.MetaPath, Meta{Epoch: 3}); err != nil {
		t.Fatal(err)
	}
	f3, _ = NewFollower(f3.cfg) // reload with epoch 3
	ctx, cancel := context.WithTimeout(context.Background(), 5*time.Second)
	go f3.RunUntil(ctx, addr, 20*time.Millisecond)
	waitFor(t, "epoch adoption", func() bool { return f3.Epoch() == 5 })
	cancel()

	// A higher-epoch follower fences the primary.
	f7dir := t.TempDir()
	f7st := openState(t, f7dir)
	defer f7st.Close()
	f7 := newFollower(t, f7st, f7dir, "new", nil)
	if err := SaveMeta(f7.cfg.MetaPath, Meta{Epoch: 7}); err != nil {
		t.Fatal(err)
	}
	f7, _ = NewFollower(f7.cfg)
	err = f7.Run(context.Background(), addr)
	if !errors.Is(err, ErrFenced) {
		t.Fatalf("higher-epoch follower got %v, want ErrFenced", err)
	}
	if fenced, by := p.Fenced(); !fenced || by != 7 {
		t.Fatalf("primary fenced=%v by=%d, want true/7", fenced, by)
	}
	if fencedAt.Load() != 7 {
		t.Fatalf("OnFenced saw %d, want 7", fencedAt.Load())
	}

	// Once fenced, even same-epoch subscribers are refused.
	f5dir := t.TempDir()
	f5st := openState(t, f5dir)
	defer f5st.Close()
	f5 := newFollower(t, f5st, f5dir, "same", nil)
	if err := SaveMeta(f5.cfg.MetaPath, Meta{Epoch: 5}); err != nil {
		t.Fatal(err)
	}
	f5, _ = NewFollower(f5.cfg)
	if err := f5.Run(context.Background(), addr); err == nil {
		t.Fatal("fenced primary accepted a subscriber")
	}
}

// TestFollowerRejoinsAfterPrimaryRestart: the cluster rejoin idiom — a
// primary restart (same address) does not strand the follower.
func TestFollowerRejoinsAfterPrimaryRestart(t *testing.T) {
	pst := openState(t, t.TempDir())
	defer pst.Close()
	fdir := t.TempDir()
	fst := openState(t, fdir)
	defer fst.Close()

	p1, addr := startPrimary(t, pst, 1)
	f := newFollower(t, fst, fdir, "f1", nil)
	ctx, cancel := context.WithCancel(context.Background())
	defer cancel()
	go f.RunUntil(ctx, addr, 10*time.Millisecond)

	if err := pst.RA().Update("before", []byte("k")); err != nil {
		t.Fatal(err)
	}
	waitFor(t, "first sync", func() bool { return f.Cursor() >= pst.LastSeq() })

	p1.Close()
	// Restart on the same address with the same state.
	ln, err := net.Listen("tcp", addr)
	if err != nil {
		t.Fatal(err)
	}
	p2 := &Primary{State: pst, Epoch: 1, Heartbeat: 20 * time.Millisecond}
	go p2.Serve(ln)
	defer p2.Close()

	if err := pst.RA().Update("after", []byte("k2")); err != nil {
		t.Fatal(err)
	}
	waitFor(t, "resync after restart", func() bool {
		_, ok := fst.RA().PublicKey("after")
		return ok
	})
}

// TestFailoverProperty is the satellite's property test: kill the
// primary mid-load, promote the follower, and assert (a) every write
// the follower acknowledged survives the promotion and a restart, and
// (b) challenge-nonce single-use holds across the failover — the new
// authority never reissues a nonce the dead primary handed out.
func TestFailoverProperty(t *testing.T) {
	pst := openState(t, t.TempDir())
	fdir := t.TempDir()
	fst := openState(t, fdir)

	p, addr := startPrimary(t, pst, 1)
	f := newFollower(t, fst, fdir, "f1", nil)
	ctx, cancel := context.WithCancel(context.Background())
	defer cancel()
	runDone := make(chan error, 1)
	go func() { runDone <- f.RunUntil(ctx, addr, 10*time.Millisecond) }()

	// Load: interleaved re-keys and session opens (each open consumes a
	// nonce, the single-use resource failover must respect).
	const load = 120
	for i := 0; i < load; i++ {
		id := core.ClientID(fmt.Sprintf("user-%03d", i))
		if err := pst.RA().Update(id, []byte(fmt.Sprintf("key-%03d", i))); err != nil {
			t.Fatal(err)
		}
		if i%3 == 0 {
			openSession(t, pst, id)
		}
	}

	// Kill the primary mid-load: no drain, no handshake — the follower
	// keeps whatever it has applied.
	waitFor(t, "some replication progress", func() bool { return f.Cursor() > 0 })
	primaryNonce := pst.Sessions().Nonce()
	primaryLast := pst.LastSeq()
	p.Close()
	if err := pst.Close(); err != nil {
		t.Fatal(err)
	}

	waitFor(t, "follower run loop to notice", func() bool { return f.Cursor() > 0 }) // cursor settled
	ackedCursor := f.Cursor()

	epoch, err := f.Promote()
	if err != nil {
		t.Fatal(err)
	}
	// The follower adopted the primary's epoch (1) on subscribe, so
	// promotion must out-rank it.
	if epoch != 2 {
		t.Fatalf("promotion epoch = %d, want 2", epoch)
	}
	select {
	case err := <-runDone:
		if !errors.Is(err, ErrPromoted) && err != nil && ctx.Err() == nil {
			t.Fatalf("run loop exit = %v", err)
		}
	case <-time.After(5 * time.Second):
		t.Fatal("run loop did not stop on promotion")
	}

	// (a) Everything the follower applied (cursor) must be present: the
	// cursor only advances after Ingest journals the record locally.
	// Re-open the follower state to prove it survives a restart too.
	if err := fst.Close(); err != nil {
		t.Fatal(err)
	}
	fst2 := openState(t, fdir)
	defer fst2.Close()
	missing := 0
	for i := 0; i < load; i++ {
		id := core.ClientID(fmt.Sprintf("user-%03d", i))
		if _, ok := fst2.RA().PublicKey(id); !ok {
			missing++
		}
	}
	// The cursor tells how many primary records were applied; with
	// load*4/3 total records, a fully-acked follower misses nothing.
	if ackedCursor >= primaryLast && missing > 0 {
		t.Fatalf("follower acked cursor %d >= primary last %d but misses %d clients",
			ackedCursor, primaryLast, missing)
	}

	// (b) Nonce single-use: the promoted authority's next nonce must
	// clear every nonce the dead primary ever issued (even ones it
	// never replicated) — that is what PromoteNonceSlack buys.
	nextNonce := fst2.Sessions().NextNonce()
	if nextNonce <= primaryNonce {
		t.Fatalf("promoted nonce %d does not clear primary nonce %d", nextNonce, primaryNonce)
	}

	// The promoted follower's meta carries the new epoch, so a deposed
	// primary coming back cannot out-rank it.
	meta, err := LoadMeta(filepath.Join(fdir, "replica-primary.meta"))
	if err != nil || meta.Epoch != epoch {
		t.Fatalf("persisted meta = %+v, %v; want epoch %d", meta, err, epoch)
	}
}

// TestPromoteIsIdempotent: double promotion neither double-bumps the
// epoch nor errors.
func TestPromoteIsIdempotent(t *testing.T) {
	fdir := t.TempDir()
	fst := openState(t, fdir)
	defer fst.Close()
	f := newFollower(t, fst, fdir, "f1", nil)
	e1, err := f.Promote()
	if err != nil {
		t.Fatal(err)
	}
	e2, err := f.Promote()
	if err != nil || e1 != e2 {
		t.Fatalf("second Promote = (%d, %v), want (%d, nil)", e2, err, e1)
	}
	if !f.Promoted() {
		t.Fatal("Promoted() false after Promote")
	}
}

// TestMetaRoundTrip pins the meta file format and the missing-file
// default.
func TestMetaRoundTrip(t *testing.T) {
	path := filepath.Join(t.TempDir(), "m.meta")
	m, err := LoadMeta(path)
	if err != nil || m != (Meta{}) {
		t.Fatalf("missing meta = %+v, %v", m, err)
	}
	want := Meta{Epoch: 3, Cursor: 99}
	if err := SaveMeta(path, want); err != nil {
		t.Fatal(err)
	}
	got, err := LoadMeta(path)
	if err != nil || got != want {
		t.Fatalf("meta round trip = %+v, %v", got, err)
	}
}
