// Package replica streams the durable WAL from a primary CA node to
// followers, so a follower holds a byte-for-byte equivalent copy of the
// primary's client state and can be promoted when the primary dies.
//
// The unit of shipping is the WAL record payload (internal/durable):
// every journaled op is an idempotent overwrite or delete, so a
// follower can re-sequence records into its OWN log (durable.Ingest)
// and re-delivery after a reconnect converges instead of corrupting.
// The follower tracks its position in the primary's sequence space as a
// persisted cursor; the primary's watermark messages advance the cursor
// past records that were filtered out by sharding and double as
// heartbeats.
//
// Catch-up is two-phase. A follower whose cursor still lies inside the
// primary's log gets the suffix via durable.TailFrom. A follower whose
// cursor was compacted away (durable.ErrTruncated) gets a synthesized
// full-state transfer instead: the primary encodes its store snapshots
// as ordinary WAL records (sealed images, RA keys, certificates, open
// sessions) and the follower reconciles — applying every record and
// deleting local entries the transfer did not mention — then resumes
// live tailing from the snapshot's sequence cut.
//
// Failover safety is epoch fencing. Every replication group has a
// fencing epoch, persisted in each node's meta file; Promote advances
// it. A subscribe carrying a higher epoch than the primary's proves a
// promotion happened elsewhere, so the primary fences itself (stops
// accepting subscribers, fires OnFenced) rather than split-brain; a
// follower offered a stream by a lower-epoch primary refuses it for the
// same reason. Promotion also bumps the challenge-nonce high-water mark
// by PromoteNonceSlack, so nonces issued by the new primary can never
// collide with ones the dead primary issued but had not replicated —
// the same argument durable recovery makes after a torn tail.
//
// The wire protocol is gob over length-prefixed frames, the same idiom
// internal/cluster uses; liveness is heartbeat-by-traffic exactly like
// the cluster coordinator reaps silent workers.
package replica

import (
	"bytes"
	"encoding/binary"
	"encoding/gob"
	"encoding/json"
	"errors"
	"fmt"
	"io"
	"os"
)

// PromoteNonceSlack is added to the nonce high-water mark on every
// promotion. The dead primary may have issued nonces (SessionOpen
// records) that never reached the follower; reissuing one would
// reproduce its address map and make a sniffed digest replayable.
// Mirrors the slack durable recovery applies after a crash.
const PromoteNonceSlack = 1 << 12

// ErrFenced reports that the primary refused a subscriber because a
// higher fencing epoch exists — this primary has been superseded.
var ErrFenced = errors.New("replica: primary fenced by a higher epoch")

// ErrStalePrimary reports that a follower refused a stream because the
// primary's epoch is older than the follower's own.
var ErrStalePrimary = errors.New("replica: primary epoch older than follower's")

// ErrPromoted reports that the follower stopped because Promote was
// called on it.
var ErrPromoted = errors.New("replica: follower promoted")

// Message kinds on the replication stream.
const (
	kindSubscribe byte = iota + 1
	kindAccept
	kindRecord
	kindCatchupDone
	kindWatermark
	kindAck
)

// subscribeMsg is the follower's opening message.
type subscribeMsg struct {
	// FollowerID identifies the subscriber in the primary's liveness
	// table.
	FollowerID string
	// Epoch is the follower's fencing epoch. Higher than the primary's
	// fences the primary.
	Epoch uint64
	// Cursor is the last primary sequence number the follower has
	// applied or been watermarked past (0 = from the beginning).
	Cursor uint64
	// NumShards is the shard count the follower routes with; it must
	// match the primary's (0 accepts the primary's).
	NumShards int
	// Shards selects which shards to stream (nil = all). Cross-
	// replicating serving nodes subscribe to exactly the shards the
	// primary owns, which is what keeps records from echoing around
	// the mesh: an ingested foreign-shard record is never re-streamed,
	// because no subscriber asks this node for that shard.
	Shards []int
}

// acceptMsg is the primary's reply to a subscribe.
type acceptMsg struct {
	// Epoch is the primary's fencing epoch. A follower with a higher
	// one refuses the stream; a follower with a lower one adopts it.
	Epoch uint64
	// Snapshot announces a synthesized full-state transfer before live
	// tailing (the follower's cursor was compacted away).
	Snapshot bool
	// Err, when non-empty, refuses the subscription.
	Err string
}

// recordMsg carries one WAL record payload. Seq is the primary's
// sequence number, or 0 for a synthesized catch-up record (those carry
// state, not log position; the position arrives in catchupDone).
type recordMsg struct {
	Seq     uint64
	Payload []byte
}

// catchupDoneMsg ends a synthesized full-state transfer.
type catchupDoneMsg struct {
	// Cut is the primary sequence number the snapshot covers; live
	// tailing resumes from it.
	Cut uint64
	// Nonce is the primary's challenge-nonce high-water mark at the
	// cut.
	Nonce uint64
}

// watermarkMsg advances the follower's cursor without carrying a
// record (sharding filtered the records out) and doubles as the
// primary→follower heartbeat.
type watermarkMsg struct {
	Seq uint64
}

// ackMsg is the follower→primary heartbeat: the cursor it has applied
// and persisted through.
type ackMsg struct {
	Cursor uint64
}

// maxReplicaFrame bounds one message: the largest legitimate payload is
// a sealed PUF image record (durable caps blobs at 1<<24).
const maxReplicaFrame = 1 << 25

// writeMsg frames and sends one gob-encoded message.
func writeMsg(w io.Writer, kind byte, v any) error {
	var body bytes.Buffer
	if err := gob.NewEncoder(&body).Encode(v); err != nil {
		return fmt.Errorf("replica: encode: %w", err)
	}
	if body.Len()+1 > maxReplicaFrame {
		return fmt.Errorf("replica: frame too large (%d bytes)", body.Len())
	}
	var hdr [5]byte
	binary.BigEndian.PutUint32(hdr[:4], uint32(body.Len()+1))
	hdr[4] = kind
	if _, err := w.Write(hdr[:]); err != nil {
		return err
	}
	_, err := w.Write(body.Bytes())
	return err
}

// readMsg receives one framed message and decodes it into the value
// selected by its kind.
func readMsg(r io.Reader) (byte, any, error) {
	var hdr [4]byte
	if _, err := io.ReadFull(r, hdr[:]); err != nil {
		return 0, nil, err
	}
	n := binary.BigEndian.Uint32(hdr[:])
	if n == 0 || n > maxReplicaFrame {
		return 0, nil, fmt.Errorf("replica: invalid frame length %d", n)
	}
	buf := make([]byte, n)
	if _, err := io.ReadFull(r, buf); err != nil {
		return 0, nil, err
	}
	dec := gob.NewDecoder(bytes.NewReader(buf[1:]))
	switch buf[0] {
	case kindSubscribe:
		var m subscribeMsg
		return buf[0], &m, dec.Decode(&m)
	case kindAccept:
		var m acceptMsg
		return buf[0], &m, dec.Decode(&m)
	case kindRecord:
		var m recordMsg
		return buf[0], &m, dec.Decode(&m)
	case kindCatchupDone:
		var m catchupDoneMsg
		return buf[0], &m, dec.Decode(&m)
	case kindWatermark:
		var m watermarkMsg
		return buf[0], &m, dec.Decode(&m)
	case kindAck:
		var m ackMsg
		return buf[0], &m, dec.Decode(&m)
	default:
		return 0, nil, fmt.Errorf("replica: unknown message kind %d", buf[0])
	}
}

// Meta is a node's persisted replication identity: the fencing epoch it
// last participated at and, for a follower, the cursor into the
// primary's sequence space it has applied through. One file per
// followed primary.
type Meta struct {
	Epoch  uint64 `json:"epoch"`
	Cursor uint64 `json:"cursor"`
}

// LoadMeta reads a meta file; a missing file is a zero Meta (fresh
// follower), not an error.
func LoadMeta(path string) (Meta, error) {
	var m Meta
	data, err := os.ReadFile(path)
	if errors.Is(err, os.ErrNotExist) {
		return m, nil
	}
	if err != nil {
		return m, fmt.Errorf("replica: read meta: %w", err)
	}
	if err := json.Unmarshal(data, &m); err != nil {
		return m, fmt.Errorf("replica: decode meta %s: %w", path, err)
	}
	return m, nil
}

// SaveMeta persists a meta file atomically (tmp + rename), so a crash
// mid-save leaves the previous cursor — re-delivery from an old cursor
// is safe, a cursor ahead of applied state is not.
func SaveMeta(path string, m Meta) error {
	data, err := json.Marshal(m)
	if err != nil {
		return err
	}
	tmp := path + ".tmp"
	if err := os.WriteFile(tmp, data, 0o600); err != nil {
		return fmt.Errorf("replica: write meta: %w", err)
	}
	if err := os.Rename(tmp, path); err != nil {
		return fmt.Errorf("replica: rename meta: %w", err)
	}
	return nil
}
