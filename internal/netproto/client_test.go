package netproto

import (
	"context"
	"errors"
	"net"
	"sync/atomic"
	"testing"
	"time"

	"rbcsalted/internal/ring"
)

// routeAll is a Router serving or redirecting every client the same way.
type routeAll struct {
	addr  string
	local bool
	seen  atomic.Int64 // routed hellos
	epoch atomic.Uint64
}

func (r *routeAll) Route(clientID string, epoch uint64) (string, bool) {
	r.seen.Add(1)
	r.epoch.Store(epoch)
	return r.addr, r.local
}

func TestHelloV4RoundTrip(t *testing.T) {
	h := Hello{ClientID: "alice", RingEpoch: 7}
	enc := EncodeHello(h)
	if enc[0] != helloV3Marker || enc[1] != helloV4Version {
		t.Fatalf("hello with ring epoch not encoded as v4: % x", enc[:2])
	}
	dec, err := DecodeHello(enc)
	if err != nil || dec != h {
		t.Fatalf("v4 round trip: %+v, %v", dec, err)
	}
	// No ring epoch keeps the old layouts.
	if enc := EncodeHello(Hello{ClientID: "alice"}); enc[0] == helloV3Marker {
		t.Fatal("default hello no longer v2")
	}
	if enc := EncodeHello(Hello{ClientID: "alice", Deadline: time.Unix(1, 0)}); enc[1] != helloV3Version {
		t.Fatal("deadline-only hello no longer v3")
	}
	// Truncated v4 rejected.
	if _, err := DecodeHello(enc[:3]); err == nil {
		t.Fatal("truncated extended hello accepted")
	}
}

// TestServerRedirectsWrongShard: a server whose router disowns the
// client refuses with StatusWrongShard carrying the owner address, and
// the raw (deprecated) client surfaces it as a ServerError.
func TestServerRedirectsWrongShard(t *testing.T) {
	server, device, _ := newServer(t)
	router := &routeAll{addr: "10.9.9.9:999", local: false}
	server.Router = router
	ln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	go server.Serve(ln)
	defer server.Close()

	conn, err := net.Dial("tcp", ln.Addr().String())
	if err != nil {
		t.Fatal(err)
	}
	defer conn.Close()
	_, err = AuthenticateWithOptions(conn, device, AuthOptions{RingEpoch: 42})
	var se *ServerError
	if !errors.As(err, &se) || se.Status != StatusWrongShard || se.Msg != "10.9.9.9:999" {
		t.Fatalf("wrong-shard refusal = %v", err)
	}
	if router.epoch.Load() != 42 {
		t.Fatalf("router saw epoch %d, want 42 (v4 hello lost)", router.epoch.Load())
	}
}

// TestClientFollowsRedirect: the routing Client lands on a node that
// disowns the shard and transparently follows the redirect to the
// owner, and the next request goes straight to the learned address.
func TestClientFollowsRedirect(t *testing.T) {
	owner, device, _ := newServer(t)
	ownerLn, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	go owner.Serve(ownerLn)
	defer owner.Close()

	bouncer, _, _ := newServer(t)
	bounceRouter := &routeAll{addr: ownerLn.Addr().String(), local: false}
	bouncer.Router = bounceRouter
	bounceLn, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	go bouncer.Serve(bounceLn)
	defer bouncer.Close()

	c, err := Dial(ClientConfig{Addrs: []string{bounceLn.Addr().String()}})
	if err != nil {
		t.Fatal(err)
	}
	defer c.Close()
	ctx, cancel := context.WithTimeout(context.Background(), 10*time.Second)
	defer cancel()
	res, err := c.Authenticate(ctx, AuthRequest{Device: device})
	if err != nil || !res.Authenticated {
		t.Fatalf("redirected auth: %+v, %v", res, err)
	}
	bounced := bounceRouter.seen.Load()
	if bounced == 0 {
		t.Fatal("request never hit the bouncing node")
	}
	// Second request: learned address, no new bounce.
	if res, err := c.Authenticate(ctx, AuthRequest{Device: device}); err != nil || !res.Authenticated {
		t.Fatalf("second auth: %+v, %v", res, err)
	}
	if bounceRouter.seen.Load() != bounced {
		t.Fatal("client did not learn the redirect target")
	}
}

// TestClientRingRouting: with a topology, the client dials the shard
// owner directly and stamps the ring epoch into a v4 hello.
func TestClientRingRouting(t *testing.T) {
	server, device, _ := newServer(t)
	router := &routeAll{local: true}
	server.Router = router
	ln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	go server.Serve(ln)
	defer server.Close()

	m, err := ring.NewMap(0, 0, ring.Node{ID: "n0", Addr: ln.Addr().String()})
	if err != nil {
		t.Fatal(err)
	}
	m = m.WithEpoch(9)
	c, err := Dial(ClientConfig{Ring: m})
	if err != nil {
		t.Fatal(err)
	}
	defer c.Close()
	ctx, cancel := context.WithTimeout(context.Background(), 10*time.Second)
	defer cancel()
	res, err := c.Authenticate(ctx, AuthRequest{Device: device})
	if err != nil || !res.Authenticated {
		t.Fatalf("ring-routed auth: %+v, %v", res, err)
	}
	if router.epoch.Load() != 9 {
		t.Fatalf("server saw epoch %d, want 9", router.epoch.Load())
	}
}

// TestClientRetriesAcrossRestart: the first dial lands on a dead
// address; the client backs off and fails over to the live one — the
// rolling-restart behaviour in miniature.
func TestClientRetriesAcrossRestart(t *testing.T) {
	server, device, _ := newServer(t)
	ln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	go server.Serve(ln)
	defer server.Close()

	// A dead address: listen and immediately close, so dialing fails fast.
	dead, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	deadAddr := dead.Addr().String()
	dead.Close()

	c, err := Dial(ClientConfig{
		Addrs:        []string{deadAddr, ln.Addr().String()},
		RetryBackoff: time.Millisecond,
	})
	if err != nil {
		t.Fatal(err)
	}
	defer c.Close()
	ctx, cancel := context.WithTimeout(context.Background(), 10*time.Second)
	defer cancel()
	res, err := c.Authenticate(ctx, AuthRequest{Device: device})
	if err != nil || !res.Authenticated {
		t.Fatalf("failover auth: %+v, %v", res, err)
	}
}

// TestClientAuthoritativeErrorsAreFinal: a non-redirect server verdict
// is returned immediately, not retried against other nodes.
func TestClientAuthoritativeErrorsAreFinal(t *testing.T) {
	server, _, _ := newServer(t)
	ln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	go server.Serve(ln)
	defer server.Close()

	_, ghost, _ := newServer(t) // enrolled on its own CA, unknown here
	ghost.ID = "ghost"
	c, err := Dial(ClientConfig{Addrs: []string{ln.Addr().String()}})
	if err != nil {
		t.Fatal(err)
	}
	defer c.Close()
	ctx, cancel := context.WithTimeout(context.Background(), 10*time.Second)
	defer cancel()
	start := time.Now()
	_, err = c.Authenticate(ctx, AuthRequest{Device: ghost})
	var se *ServerError
	if !errors.As(err, &se) || se.Status != StatusUnknownClient {
		t.Fatalf("unknown client = %v, want StatusUnknownClient", err)
	}
	if time.Since(start) > 2*time.Second {
		t.Fatal("authoritative error was retried")
	}
}

// TestClientUpdateRing: stale topologies are ignored, fresh ones adopted.
func TestClientUpdateRing(t *testing.T) {
	m1, _ := ring.NewMap(0, 0, ring.Node{ID: "a", Addr: "1:1"})
	m1 = m1.WithEpoch(5)
	m2, _ := ring.NewMap(0, 0, ring.Node{ID: "b", Addr: "2:2"})
	c, err := Dial(ClientConfig{Ring: m1})
	if err != nil {
		t.Fatal(err)
	}
	defer c.Close()
	c.UpdateRing(m2.WithEpoch(3)) // stale
	if c.Ring().Epoch() != 5 {
		t.Fatal("stale ring adopted")
	}
	c.UpdateRing(m2.WithEpoch(8))
	if c.Ring().Epoch() != 8 || !c.Ring().Has("b") {
		t.Fatal("fresh ring rejected")
	}
}

// TestDialValidation pins the constructor's error paths and defaults.
func TestDialValidation(t *testing.T) {
	if _, err := Dial(ClientConfig{}); err == nil {
		t.Fatal("empty config accepted")
	}
	c, err := Dial(ClientConfig{Addrs: []string{"x:1"}})
	if err != nil {
		t.Fatal(err)
	}
	defer c.Close()
	if _, err := c.Authenticate(context.Background(), AuthRequest{}); err == nil {
		t.Fatal("nil device accepted")
	}
}
