package netproto

import (
	"bytes"
	"errors"
	"net"
	"strings"
	"testing"
	"time"

	"rbcsalted/internal/core"
	"rbcsalted/internal/obs"
)

// TestReadFrameEdgeCases tables the hostile-input contract of the frame
// reader: every malformed input is an error, every minimal valid frame
// parses, and nothing panics.
func TestReadFrameEdgeCases(t *testing.T) {
	cases := []struct {
		name    string
		input   []byte
		wantErr bool
		wantTyp byte
		wantLen int
	}{
		{name: "empty input", input: nil, wantErr: true},
		{name: "truncated header", input: []byte{0, 0}, wantErr: true},
		{name: "zero-length frame", input: []byte{0, 0, 0, 0}, wantErr: true},
		{name: "oversized length", input: []byte{0xFF, 0xFF, 0xFF, 0xFF, 1, 2}, wantErr: true},
		{name: "length just over max", input: append([]byte{0, 1, 0, 1}, make([]byte, maxFrame+1)...), wantErr: true},
		{name: "truncated payload", input: []byte{0, 0, 0, 5, MsgHello, 'a', 'b'}, wantErr: true},
		{name: "header only, no body", input: []byte{0, 0, 0, 3}, wantErr: true},
		{name: "minimal frame (type only)", input: []byte{0, 0, 0, 1, MsgResult}, wantTyp: MsgResult, wantLen: 0},
		{name: "type plus payload", input: []byte{0, 0, 0, 3, MsgHello, 'h', 'i'}, wantTyp: MsgHello, wantLen: 2},
		{name: "length exactly max", input: append([]byte{0, 1, 0, 0, MsgDigest}, make([]byte, maxFrame-1)...), wantTyp: MsgDigest, wantLen: maxFrame - 1},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			typ, payload, err := ReadFrame(bytes.NewReader(tc.input))
			if tc.wantErr {
				if err == nil {
					t.Fatalf("parsed as type %d with %d payload bytes, want error", typ, len(payload))
				}
				return
			}
			if err != nil {
				t.Fatalf("unexpected error: %v", err)
			}
			if typ != tc.wantTyp || len(payload) != tc.wantLen {
				t.Errorf("got type %d len %d, want type %d len %d", typ, len(payload), tc.wantTyp, tc.wantLen)
			}
		})
	}
}

// TestEncodeErrorTruncatesOversizedMessage is the regression test for
// the error-frame bug: a server error message larger than one frame
// used to make WriteFrame fail, so the client never saw the status byte
// and hung until EOF. EncodeError must truncate so the frame always
// ships.
func TestEncodeErrorTruncatesOversizedMessage(t *testing.T) {
	huge := strings.Repeat("x", maxFrame+1000)
	payload := EncodeError(StatusOverloaded, huge)

	var buf bytes.Buffer
	if err := WriteFrame(&buf, MsgError, payload); err != nil {
		t.Fatalf("error frame with oversized message failed to write: %v", err)
	}
	typ, got, err := ReadFrame(&buf)
	if err != nil || typ != MsgError {
		t.Fatalf("read back: type %d, err %v", typ, err)
	}
	status, msg := DecodeError(got)
	if status != StatusOverloaded {
		t.Errorf("status = %v, want overloaded", status)
	}
	if len(msg) != MaxErrorMsg {
		t.Errorf("message length = %d, want truncated to %d", len(msg), MaxErrorMsg)
	}
	if !strings.HasPrefix(huge, msg) {
		t.Error("truncated message is not a prefix of the original")
	}

	// Short messages are untouched.
	status, msg = DecodeError(EncodeError(StatusNoSession, "gone"))
	if status != StatusNoSession || msg != "gone" {
		t.Errorf("short message mangled: %v %q", status, msg)
	}
}

// TestClientReceivesStatusForOversizedServerError drives the client
// codepath end to end: a server that reports a failure with a message
// bigger than a frame must still deliver the status byte; the client
// returns a *ServerError instead of hanging on a dead connection.
func TestClientReceivesStatusForOversizedServerError(t *testing.T) {
	ln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	defer ln.Close()
	go func() {
		conn, err := ln.Accept()
		if err != nil {
			return
		}
		defer conn.Close()
		if _, _, err := ReadFrame(conn); err != nil { // hello
			return
		}
		_ = WriteFrame(conn, MsgError,
			EncodeError(StatusUnknownClient, strings.Repeat("m", maxFrame*2)))
	}()

	conn, err := net.Dial("tcp", ln.Addr().String())
	if err != nil {
		t.Fatal(err)
	}
	defer conn.Close()
	conn.SetDeadline(time.Now().Add(5 * time.Second))

	// The server rejects at hello, so the client never reads its PUF —
	// no device needed.
	_, err = Authenticate(conn, &core.Client{ID: "alice"}, Latency{})
	var se *ServerError
	if !errors.As(err, &se) {
		t.Fatalf("expected *ServerError, got %v", err)
	}
	if se.Status != StatusUnknownClient {
		t.Errorf("status = %v, want unknown-client", se.Status)
	}
}

// TestServerMetricsCounters runs one successful and one failed session
// against an instrumented server and checks the netproto.* counters.
func TestServerMetricsCounters(t *testing.T) {
	server, client, _ := newServer(t)
	reg := obs.NewRegistry()
	server.Metrics = NewMetrics(reg)

	ln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	go server.Serve(ln)
	defer server.Close()

	dial := func() net.Conn {
		t.Helper()
		conn, err := net.Dial("tcp", ln.Addr().String())
		if err != nil {
			t.Fatal(err)
		}
		return conn
	}

	conn := dial()
	res, err := Authenticate(conn, client, Latency{})
	conn.Close()
	if err != nil || !res.Authenticated {
		t.Fatalf("good session: %+v %v", res, err)
	}

	conn = dial()
	_, err = Authenticate(conn, &core.Client{ID: "ghost", Device: client.Device}, Latency{})
	conn.Close()
	var se *ServerError
	if !errors.As(err, &se) || se.Status != StatusUnknownClient {
		t.Fatalf("ghost session: %v", err)
	}

	waitForCounters(t, func() bool {
		snap := reg.Snapshot()
		return snap["netproto.conns_accepted"] == uint64(2) &&
			snap["netproto.conns_active"] == int64(0)
	})
	snap := reg.Snapshot()
	checks := map[string]any{
		"netproto.conns_accepted":        uint64(2),
		"netproto.conns_active":          int64(0),
		"netproto.auth_ok":               uint64(1),
		"netproto.auth_denied":           uint64(0),
		"netproto.errors.unknown-client": uint64(1),
		"netproto.errors.internal":       uint64(0),
	}
	for name, want := range checks {
		if snap[name] != want {
			t.Errorf("%s = %v, want %v", name, snap[name], want)
		}
	}
}

// waitForCounters polls for asynchronous handler teardown (connClosed
// runs after the client sees its response).
func waitForCounters(t *testing.T, cond func() bool) {
	t.Helper()
	deadline := time.Now().Add(5 * time.Second)
	for !cond() {
		if time.Now().After(deadline) {
			t.Fatal("counters did not converge")
		}
		time.Sleep(time.Millisecond)
	}
}
