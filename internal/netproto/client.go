package netproto

import (
	"context"
	"errors"
	"fmt"
	"net"
	"sync"
	"time"

	"rbcsalted/internal/core"
	"rbcsalted/internal/ring"
)

// AuthRequest describes one authentication through a Client: which PUF
// device answers the challenge and the request's QoS envelope.
type AuthRequest struct {
	// Device is the enrolled PUF participant (holds the client ID and
	// answers the challenge).
	Device *core.Client
	// Class is the request's QoS class (zero = interactive).
	Class core.QoSClass
	// Deadline is the absolute deadline sent to the server; zero means
	// none. The context passed to Authenticate bounds the client side
	// independently.
	Deadline time.Time
}

// ClientConfig configures a routing Client.
type ClientConfig struct {
	// Addrs are the bootstrap server addresses (at least one). Without
	// a Ring the first address is tried first and the rest serve as
	// failover candidates.
	Addrs []string
	// Ring, when set, routes each request straight to the node owning
	// the client's shard and stamps the topology epoch into the hello.
	// The bootstrap Addrs stay as failover candidates.
	Ring *ring.Map
	// Latency injects the modelled communication constants (zero =
	// measure the real transport).
	Latency Latency
	// DialTimeout bounds each connection attempt (default 5 s).
	DialTimeout time.Duration
	// MaxAttempts bounds connection attempts per authentication across
	// redirects and failover (default 6).
	MaxAttempts int
	// RetryBackoff is the initial pause before redialing after a
	// transport failure, doubled per attempt (default 25 ms). Redirects
	// are followed immediately.
	RetryBackoff time.Duration
	// DialContext replaces the dialer (tests, TLS wrappers). Nil uses
	// net.Dialer.
	DialContext func(ctx context.Context, addr string) (net.Conn, error)
}

// Client is the routing-aware client side of the protocol. It owns
// address selection (consistent-hash routing when a Ring is configured,
// learned redirects otherwise), reconnection — the server serves one
// authentication per connection, so every request dials — and retries
// across failover. A Client is safe for concurrent use.
//
// Retrying an interrupted handshake is safe by construction: a
// challenge is single-use and acquiring a new one supersedes the old
// session, so the worst case of a retry is an abandoned session entry
// that the TTL sweep collects.
type Client struct {
	cfg ClientConfig

	mu      sync.Mutex
	ring    *ring.Map
	learned map[string]string // client ID → last address that served it
	closed  bool
}

// Dial builds a Client. No connection is made until Authenticate — the
// name mirrors the conventional constructor shape and reserves the
// right to probe eagerly later.
func Dial(cfg ClientConfig) (*Client, error) {
	if len(cfg.Addrs) == 0 && cfg.Ring == nil {
		return nil, errors.New("netproto: ClientConfig needs Addrs or a Ring")
	}
	if cfg.DialTimeout <= 0 {
		cfg.DialTimeout = 5 * time.Second
	}
	if cfg.MaxAttempts <= 0 {
		cfg.MaxAttempts = 6
	}
	if cfg.RetryBackoff <= 0 {
		cfg.RetryBackoff = 25 * time.Millisecond
	}
	return &Client{
		cfg:     cfg,
		ring:    cfg.Ring,
		learned: make(map[string]string),
	}, nil
}

// UpdateRing swaps the routing topology. Updates with an epoch at or
// below the current ring's are ignored (stale gossip); learned
// redirects are dropped because the new topology supersedes them.
func (c *Client) UpdateRing(m *ring.Map) {
	if m == nil {
		return
	}
	c.mu.Lock()
	defer c.mu.Unlock()
	if c.ring != nil && m.Epoch() <= c.ring.Epoch() {
		return
	}
	c.ring = m
	c.learned = make(map[string]string)
}

// Ring returns the current routing topology (nil when unrouted).
func (c *Client) Ring() *ring.Map {
	c.mu.Lock()
	defer c.mu.Unlock()
	return c.ring
}

// Close marks the client closed. It exists so callers can treat Client
// like any other connection-owning handle; there are no pooled
// connections to tear down today.
func (c *Client) Close() error {
	c.mu.Lock()
	defer c.mu.Unlock()
	c.closed = true
	return nil
}

// candidates builds the ordered address list for one request: the
// learned address (a redirect we followed before), the ring owner, then
// the bootstrap addresses as failover, deduplicated in that order.
func (c *Client) candidates(clientID string) ([]string, uint64) {
	c.mu.Lock()
	defer c.mu.Unlock()
	var (
		out   []string
		seen  = make(map[string]bool)
		epoch uint64
	)
	add := func(addr string) {
		if addr != "" && !seen[addr] {
			seen[addr] = true
			out = append(out, addr)
		}
	}
	add(c.learned[clientID])
	if c.ring != nil {
		add(c.ring.OwnerOf(clientID).Addr)
		epoch = c.ring.Epoch()
	}
	for _, a := range c.cfg.Addrs {
		add(a)
	}
	return out, epoch
}

// remember records the address that actually served a client so the
// next request skips the redirect hop.
func (c *Client) remember(clientID, addr string) {
	c.mu.Lock()
	defer c.mu.Unlock()
	c.learned[clientID] = addr
}

func (c *Client) dial(ctx context.Context, addr string) (net.Conn, error) {
	dctx, cancel := context.WithTimeout(ctx, c.cfg.DialTimeout)
	defer cancel()
	if c.cfg.DialContext != nil {
		return c.cfg.DialContext(dctx, addr)
	}
	var d net.Dialer
	return d.DialContext(dctx, "tcp", addr)
}

// Authenticate runs one full authentication, routing to the owning
// node, following StatusWrongShard redirects, and retrying across
// transport failures (a node restarting under it). Server verdicts
// other than a redirect are final and returned as *ServerError.
func (c *Client) Authenticate(ctx context.Context, req AuthRequest) (Result, error) {
	if req.Device == nil {
		return Result{}, errors.New("netproto: AuthRequest.Device required")
	}
	c.mu.Lock()
	if c.closed {
		c.mu.Unlock()
		return Result{}, errors.New("netproto: client closed")
	}
	c.mu.Unlock()

	id := string(req.Device.ID)
	cands, epoch := c.candidates(id)
	if len(cands) == 0 {
		return Result{}, errors.New("netproto: no server addresses")
	}
	opts := AuthOptions{
		Latency:   c.cfg.Latency,
		Class:     req.Class,
		Deadline:  req.Deadline,
		RingEpoch: epoch,
	}

	var (
		lastErr error
		next    = 0 // index into cands for the next transport-level failover
		addr    string
	)
	backoff := c.cfg.RetryBackoff
	for attempt := 0; attempt < c.cfg.MaxAttempts; attempt++ {
		if err := ctx.Err(); err != nil {
			return Result{}, err
		}
		if addr == "" {
			addr = cands[next%len(cands)]
			next++
		}
		res, err := c.tryOnce(ctx, addr, req.Device, opts)
		if err == nil {
			c.remember(id, addr)
			return res, nil
		}
		var se *ServerError
		if errors.As(err, &se) {
			if se.Status == StatusWrongShard && se.Msg != "" && se.Msg != addr {
				// Redirect: the refusal happened before any session
				// state, so follow it immediately.
				addr = se.Msg
				lastErr = err
				continue
			}
			// Any other server verdict is authoritative.
			return Result{}, err
		}
		// Transport failure: the node is down or restarting. Back off
		// and move to the next candidate (or re-dial the only one).
		lastErr = err
		addr = ""
		select {
		case <-ctx.Done():
			return Result{}, ctx.Err()
		case <-time.After(backoff):
		}
		backoff *= 2
	}
	return Result{}, fmt.Errorf("netproto: authentication failed after %d attempts: %w",
		c.cfg.MaxAttempts, lastErr)
}

// tryOnce runs the protocol once against one address.
func (c *Client) tryOnce(ctx context.Context, addr string, device *core.Client, opts AuthOptions) (Result, error) {
	conn, err := c.dial(ctx, addr)
	if err != nil {
		return Result{}, err
	}
	defer conn.Close()
	if deadline, ok := ctx.Deadline(); ok {
		_ = conn.SetDeadline(deadline)
	}
	// Cancel the in-flight exchange when ctx dies: closing the
	// connection fails the pending read.
	done := make(chan struct{})
	defer close(done)
	go func() {
		select {
		case <-ctx.Done():
			conn.Close()
		case <-done:
		}
	}()
	return AuthenticateWithOptions(conn, device, opts)
}
