package netproto

import (
	"bytes"
	"net"
	"strings"
	"testing"
	"time"

	"rbcsalted/internal/core"
	"rbcsalted/internal/cpu"
	"rbcsalted/internal/cryptoalg/aeskg"
	"rbcsalted/internal/puf"
)

func TestFrameRoundTrip(t *testing.T) {
	var buf bytes.Buffer
	payload := []byte("hello world")
	if err := WriteFrame(&buf, MsgHello, payload); err != nil {
		t.Fatal(err)
	}
	msgType, got, err := ReadFrame(&buf)
	if err != nil || msgType != MsgHello || !bytes.Equal(got, payload) {
		t.Fatalf("round trip failed: %v %d %q", err, msgType, got)
	}
}

func TestFrameLimits(t *testing.T) {
	var buf bytes.Buffer
	if err := WriteFrame(&buf, MsgHello, make([]byte, maxFrame)); err == nil {
		t.Error("oversized frame accepted")
	}
	// Corrupt length header.
	bad := bytes.NewReader([]byte{0xFF, 0xFF, 0xFF, 0xFF, 1})
	if _, _, err := ReadFrame(bad); err == nil {
		t.Error("oversized incoming frame accepted")
	}
	zero := bytes.NewReader([]byte{0, 0, 0, 0})
	if _, _, err := ReadFrame(zero); err == nil {
		t.Error("zero-length frame accepted")
	}
	// Truncated payload.
	trunc := bytes.NewReader([]byte{0, 0, 0, 5, 1, 2})
	if _, _, err := ReadFrame(trunc); err == nil {
		t.Error("truncated frame accepted")
	}
}

func TestChallengeCodec(t *testing.T) {
	addr := make([]int, 256)
	for i := range addr {
		addr[i] = i * 3
	}
	enc, err := EncodeChallenge(Challenge{Nonce: 42, Alg: 1, AddressMap: addr})
	if err != nil {
		t.Fatal(err)
	}
	dec, err := DecodeChallenge(enc)
	if err != nil || dec.Nonce != 42 || dec.Alg != 1 {
		t.Fatalf("decode failed: %+v, %v", dec, err)
	}
	for i := range addr {
		if dec.AddressMap[i] != addr[i] {
			t.Fatalf("address %d corrupted", i)
		}
	}
	if _, err := EncodeChallenge(Challenge{AddressMap: make([]int, 10)}); err == nil {
		t.Error("short address map accepted")
	}
	addr[0] = 1 << 20
	if _, err := EncodeChallenge(Challenge{AddressMap: addr}); err == nil {
		t.Error("oversized cell index accepted")
	}
	if _, err := DecodeChallenge(make([]byte, 5)); err == nil {
		t.Error("short challenge accepted")
	}
}

func TestDigestAndResultCodecs(t *testing.T) {
	d := DigestMsg{Nonce: 7, Digest: bytes.Repeat([]byte{0xAB}, 32)}
	got, err := DecodeDigest(EncodeDigest(d))
	if err != nil || got.Nonce != 7 || !bytes.Equal(got.Digest, d.Digest) {
		t.Fatalf("digest codec: %+v %v", got, err)
	}
	if _, err := DecodeDigest(make([]byte, 10)); err == nil {
		t.Error("short digest accepted")
	}

	r := Result{Authenticated: true, TimedOut: false, SearchSeconds: 1.25, PublicKey: []byte{1, 2, 3}}
	rd, err := DecodeResult(EncodeResult(r))
	if err != nil || !rd.Authenticated || rd.TimedOut || rd.SearchSeconds != 1.25 ||
		!bytes.Equal(rd.PublicKey, r.PublicKey) {
		t.Fatalf("result codec: %+v %v", rd, err)
	}
	if _, err := DecodeResult(make([]byte, 3)); err == nil {
		t.Error("short result accepted")
	}
}

func TestHelloValidation(t *testing.T) {
	if _, err := DecodeHello(nil); err == nil {
		t.Error("empty hello accepted")
	}
	if _, err := DecodeHello(make([]byte, 300)); err == nil {
		t.Error("oversized hello accepted")
	}
}

// newServer assembles a CA on the real CPU backend with a low-noise PUF.
func newServer(t *testing.T) (*Server, *core.Client, *core.RA) {
	t.Helper()
	store, err := core.NewImageStore([32]byte{5})
	if err != nil {
		t.Fatal(err)
	}
	ra := core.NewRA()
	backend := &cpu.Backend{Alg: core.SHA3, Workers: 2}
	ca, err := core.NewCA(store, backend, &aeskg.Generator{}, ra, core.CAConfig{
		Alg:         core.SHA3,
		MaxDistance: 2,
	})
	if err != nil {
		t.Fatal(err)
	}
	dev, err := puf.NewDevice(101, 1024, puf.Profile{BaseError: 0.5 / 256.0})
	if err != nil {
		t.Fatal(err)
	}
	im, err := puf.Enroll(dev, 31)
	if err != nil {
		t.Fatal(err)
	}
	if err := ca.Enroll("alice", im); err != nil {
		t.Fatal(err)
	}
	return &Server{CA: ca}, &core.Client{ID: "alice", Device: dev}, ra
}

func TestEndToEndOverTCP(t *testing.T) {
	server, client, ra := newServer(t)
	ln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	go server.Serve(ln)
	defer server.Close()

	conn, err := net.Dial("tcp", ln.Addr().String())
	if err != nil {
		t.Fatal(err)
	}
	defer conn.Close()

	res, err := Authenticate(conn, client, Latency{})
	if err != nil {
		t.Fatal(err)
	}
	if !res.Authenticated {
		t.Fatalf("authentication failed: %+v", res)
	}
	if len(res.PublicKey) == 0 {
		t.Error("no public key returned")
	}
	raKey, ok := ra.PublicKey("alice")
	if !ok || !bytes.Equal(raKey, res.PublicKey) {
		t.Error("RA key does not match wire key")
	}
}

func TestUnknownClientRejected(t *testing.T) {
	server, client, _ := newServer(t)
	ln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	go server.Serve(ln)
	defer server.Close()

	conn, err := net.Dial("tcp", ln.Addr().String())
	if err != nil {
		t.Fatal(err)
	}
	defer conn.Close()
	ghost := &core.Client{ID: "ghost", Device: client.Device}
	if _, err := Authenticate(conn, ghost, Latency{}); err == nil ||
		!strings.Contains(err.Error(), "not enrolled") {
		t.Errorf("expected enrollment error, got %v", err)
	}
}

func TestGarbageConnection(t *testing.T) {
	server, _, _ := newServer(t)
	ln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	go server.Serve(ln)
	defer server.Close()

	conn, err := net.Dial("tcp", ln.Addr().String())
	if err != nil {
		t.Fatal(err)
	}
	defer conn.Close()
	// Send a digest before a hello.
	WriteFrame(conn, MsgDigest, EncodeDigest(DigestMsg{Nonce: 1, Digest: make([]byte, 32)}))
	msgType, payload, err := ReadFrame(conn)
	if err != nil || msgType != MsgError {
		t.Errorf("expected error frame, got type %d (%v)", msgType, err)
	}
	if len(payload) == 0 {
		t.Error("empty error message")
	}
}

func TestPaperLatencyConstant(t *testing.T) {
	if got := PaperLatency.CommSeconds(); got != 0.9 {
		t.Errorf("paper latency = %.3fs, want 0.90s", got)
	}
}

func TestLatencyInjection(t *testing.T) {
	server, client, _ := newServer(t)
	ln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	go server.Serve(ln)
	defer server.Close()

	conn, err := net.Dial("tcp", ln.Addr().String())
	if err != nil {
		t.Fatal(err)
	}
	defer conn.Close()
	lat := Latency{PUFRead: 50 * time.Millisecond, RTT: 20 * time.Millisecond}
	start := time.Now()
	res, err := Authenticate(conn, client, lat)
	if err != nil || !res.Authenticated {
		t.Fatalf("auth failed: %v", err)
	}
	if elapsed := time.Since(start); elapsed < 60*time.Millisecond {
		t.Errorf("latency injection missing: %v", elapsed)
	}
}
