package netproto

import (
	"bytes"
	"context"
	"errors"
	"fmt"
	"net"
	"strings"
	"testing"
	"time"

	"rbcsalted/internal/core"
	"rbcsalted/internal/cpu"
	"rbcsalted/internal/cryptoalg/aeskg"
	"rbcsalted/internal/puf"
	"rbcsalted/internal/sched"
)

func TestFrameRoundTrip(t *testing.T) {
	var buf bytes.Buffer
	payload := []byte("hello world")
	if err := WriteFrame(&buf, MsgHello, payload); err != nil {
		t.Fatal(err)
	}
	msgType, got, err := ReadFrame(&buf)
	if err != nil || msgType != MsgHello || !bytes.Equal(got, payload) {
		t.Fatalf("round trip failed: %v %d %q", err, msgType, got)
	}
}

func TestFrameLimits(t *testing.T) {
	var buf bytes.Buffer
	if err := WriteFrame(&buf, MsgHello, make([]byte, maxFrame)); err == nil {
		t.Error("oversized frame accepted")
	}
	// Corrupt length header.
	bad := bytes.NewReader([]byte{0xFF, 0xFF, 0xFF, 0xFF, 1})
	if _, _, err := ReadFrame(bad); err == nil {
		t.Error("oversized incoming frame accepted")
	}
	zero := bytes.NewReader([]byte{0, 0, 0, 0})
	if _, _, err := ReadFrame(zero); err == nil {
		t.Error("zero-length frame accepted")
	}
	// Truncated payload.
	trunc := bytes.NewReader([]byte{0, 0, 0, 5, 1, 2})
	if _, _, err := ReadFrame(trunc); err == nil {
		t.Error("truncated frame accepted")
	}
}

func TestChallengeCodec(t *testing.T) {
	addr := make([]int, 256)
	for i := range addr {
		addr[i] = i * 3
	}
	enc, err := EncodeChallenge(Challenge{Nonce: 42, Alg: 1, AddressMap: addr})
	if err != nil {
		t.Fatal(err)
	}
	dec, err := DecodeChallenge(enc)
	if err != nil || dec.Nonce != 42 || dec.Alg != 1 {
		t.Fatalf("decode failed: %+v, %v", dec, err)
	}
	for i := range addr {
		if dec.AddressMap[i] != addr[i] {
			t.Fatalf("address %d corrupted", i)
		}
	}
	if _, err := EncodeChallenge(Challenge{AddressMap: make([]int, 10)}); err == nil {
		t.Error("short address map accepted")
	}
	addr[0] = 1 << 20
	if _, err := EncodeChallenge(Challenge{AddressMap: addr}); err == nil {
		t.Error("oversized cell index accepted")
	}
	if _, err := DecodeChallenge(make([]byte, 5)); err == nil {
		t.Error("short challenge accepted")
	}
}

func TestDigestAndResultCodecs(t *testing.T) {
	d := DigestMsg{Nonce: 7, Digest: bytes.Repeat([]byte{0xAB}, 32)}
	got, err := DecodeDigest(EncodeDigest(d))
	if err != nil || got.Nonce != 7 || !bytes.Equal(got.Digest, d.Digest) {
		t.Fatalf("digest codec: %+v %v", got, err)
	}
	if _, err := DecodeDigest(make([]byte, 10)); err == nil {
		t.Error("short digest accepted")
	}

	r := Result{Authenticated: true, TimedOut: false, SearchSeconds: 1.25, PublicKey: []byte{1, 2, 3}}
	rd, err := DecodeResult(EncodeResult(r))
	if err != nil || !rd.Authenticated || rd.TimedOut || rd.SearchSeconds != 1.25 ||
		!bytes.Equal(rd.PublicKey, r.PublicKey) {
		t.Fatalf("result codec: %+v %v", rd, err)
	}
	if _, err := DecodeResult(make([]byte, 3)); err == nil {
		t.Error("short result accepted")
	}
}

func TestHelloValidation(t *testing.T) {
	if _, err := DecodeHello(nil); err == nil {
		t.Error("empty hello accepted")
	}
	if _, err := DecodeHello(make([]byte, 300)); err == nil {
		t.Error("oversized hello accepted")
	}
}

// newServer assembles a CA on the real CPU backend with a low-noise PUF.
func newServer(t *testing.T) (*Server, *core.Client, *core.RA) {
	t.Helper()
	store, err := core.NewImageStore([32]byte{5})
	if err != nil {
		t.Fatal(err)
	}
	ra := core.NewRA()
	backend := &cpu.Backend{Alg: core.SHA3, Workers: 2}
	ca, err := core.NewCA(store, backend, &aeskg.Generator{}, ra, core.CAConfig{
		Alg:         core.SHA3,
		MaxDistance: 2,
	})
	if err != nil {
		t.Fatal(err)
	}
	dev, err := puf.NewDevice(101, 1024, puf.Profile{BaseError: 0.5 / 256.0})
	if err != nil {
		t.Fatal(err)
	}
	im, err := puf.Enroll(dev, 31)
	if err != nil {
		t.Fatal(err)
	}
	if err := ca.Enroll("alice", im); err != nil {
		t.Fatal(err)
	}
	return &Server{CA: ca}, &core.Client{ID: "alice", Device: dev}, ra
}

func TestEndToEndOverTCP(t *testing.T) {
	server, client, ra := newServer(t)
	ln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	go server.Serve(ln)
	defer server.Close()

	conn, err := net.Dial("tcp", ln.Addr().String())
	if err != nil {
		t.Fatal(err)
	}
	defer conn.Close()

	res, err := Authenticate(conn, client, Latency{})
	if err != nil {
		t.Fatal(err)
	}
	if !res.Authenticated {
		t.Fatalf("authentication failed: %+v", res)
	}
	if len(res.PublicKey) == 0 {
		t.Error("no public key returned")
	}
	raKey, ok := ra.PublicKey("alice")
	if !ok || !bytes.Equal(raKey, res.PublicKey) {
		t.Error("RA key does not match wire key")
	}
}

func TestUnknownClientRejected(t *testing.T) {
	server, client, _ := newServer(t)
	ln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	go server.Serve(ln)
	defer server.Close()

	conn, err := net.Dial("tcp", ln.Addr().String())
	if err != nil {
		t.Fatal(err)
	}
	defer conn.Close()
	ghost := &core.Client{ID: "ghost", Device: client.Device}
	if _, err := Authenticate(conn, ghost, Latency{}); err == nil ||
		!strings.Contains(err.Error(), "not enrolled") {
		t.Errorf("expected enrollment error, got %v", err)
	}
}

func TestGarbageConnection(t *testing.T) {
	server, _, _ := newServer(t)
	ln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	go server.Serve(ln)
	defer server.Close()

	conn, err := net.Dial("tcp", ln.Addr().String())
	if err != nil {
		t.Fatal(err)
	}
	defer conn.Close()
	// Send a digest before a hello.
	WriteFrame(conn, MsgDigest, EncodeDigest(DigestMsg{Nonce: 1, Digest: make([]byte, 32)}))
	msgType, payload, err := ReadFrame(conn)
	if err != nil || msgType != MsgError {
		t.Errorf("expected error frame, got type %d (%v)", msgType, err)
	}
	if len(payload) == 0 {
		t.Error("empty error message")
	}
}

// TestStatusMapping pins the sentinel-error to wire-status translation,
// including errors wrapped deeper in the chain.
func TestStatusMapping(t *testing.T) {
	cases := []struct {
		err  error
		want Status
	}{
		{core.ErrUnknownClient, StatusUnknownClient},
		{fmt.Errorf("core: handshake: client %q not enrolled: %w", "x", core.ErrUnknownClient), StatusUnknownClient},
		{core.ErrNoSession, StatusNoSession},
		{fmt.Errorf("%w for %q", core.ErrNoSession, "x"), StatusNoSession},
		{core.ErrAlgMismatch, StatusAlgMismatch},
		{sched.ErrOverloaded, StatusOverloaded},
		{context.Canceled, StatusCancelled},
		{context.DeadlineExceeded, StatusCancelled},
		{errors.New("disk on fire"), StatusInternal},
	}
	for _, tc := range cases {
		if got := statusFor(tc.err); got != tc.want {
			t.Errorf("statusFor(%v) = %v, want %v", tc.err, got, tc.want)
		}
	}
}

func TestErrorCodecRoundTrip(t *testing.T) {
	for _, s := range []Status{StatusInternal, StatusOverloaded, StatusCancelled} {
		status, msg := DecodeError(EncodeError(s, "why"))
		if status != s || msg != "why" {
			t.Errorf("round trip of %v: got (%v, %q)", s, status, msg)
		}
	}
	if status, msg := DecodeError(nil); status != StatusInternal || msg == "" {
		t.Errorf("empty payload: got (%v, %q)", status, msg)
	}
}

// TestServerErrorCarriesWireStatus runs a failing authentication over
// real TCP and checks the client receives a typed *ServerError with the
// right status, not just an opaque string.
func TestServerErrorCarriesWireStatus(t *testing.T) {
	server, client, _ := newServer(t)
	ln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	go server.Serve(ln)
	defer server.Close()

	conn, err := net.Dial("tcp", ln.Addr().String())
	if err != nil {
		t.Fatal(err)
	}
	defer conn.Close()
	ghost := &core.Client{ID: "ghost", Device: client.Device}
	_, err = Authenticate(conn, ghost, Latency{})
	var se *ServerError
	if !errors.As(err, &se) {
		t.Fatalf("expected *ServerError, got %T: %v", err, err)
	}
	if se.Status != StatusUnknownClient {
		t.Errorf("Status = %v, want %v", se.Status, StatusUnknownClient)
	}
}

// TestServerReportsOverloaded puts a zero-capacity scheduler behind the
// CA and expects the wire to carry StatusOverloaded once the pool is
// saturated.
func TestServerReportsOverloaded(t *testing.T) {
	store, err := core.NewImageStore([32]byte{9})
	if err != nil {
		t.Fatal(err)
	}
	// A scheduler whose single worker is wedged by a backend that blocks
	// until its context is cancelled: every queued slot fills and the
	// next search is shed.
	release := make(chan struct{})
	wedge := blockedBackend{release: release}
	pool := sched.New(wedge, sched.Config{Workers: 1, QueueDepth: 1})
	defer close(release)
	defer pool.Close()
	ca, err := core.NewCA(store, pool, &aeskg.Generator{}, core.NewRA(), core.CAConfig{
		Alg:         core.SHA3,
		MaxDistance: 2,
		// The inline fast path would authenticate this low-noise device
		// at d <= 1 without touching the wedged scheduler; the test is
		// about the scheduler's overload signal reaching the wire.
		InlineDepth: core.InlineDisabled,
	})
	if err != nil {
		t.Fatal(err)
	}
	dev, err := puf.NewDevice(300, 1024, puf.Profile{BaseError: 0.5 / 256.0})
	if err != nil {
		t.Fatal(err)
	}
	im, err := puf.Enroll(dev, 31)
	if err != nil {
		t.Fatal(err)
	}
	if err := ca.Enroll("alice", im); err != nil {
		t.Fatal(err)
	}
	server := &Server{CA: ca}
	ln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	go server.Serve(ln)
	defer server.Close()

	// Saturate: worker + queue slot.
	ctx, cancel := context.WithCancel(context.Background())
	defer cancel()
	for i := 0; i < 2; i++ {
		go pool.Search(ctx, core.Task{})
	}
	deadline := time.Now().Add(5 * time.Second)
	for pool.Stats().Queued < 1 {
		if time.Now().After(deadline) {
			t.Fatal("scheduler never saturated")
		}
		time.Sleep(time.Millisecond)
	}

	conn, err := net.Dial("tcp", ln.Addr().String())
	if err != nil {
		t.Fatal(err)
	}
	defer conn.Close()
	client := &core.Client{ID: "alice", Device: dev}
	_, err = Authenticate(conn, client, Latency{})
	var se *ServerError
	if !errors.As(err, &se) {
		t.Fatalf("expected *ServerError, got %T: %v", err, err)
	}
	if se.Status != StatusOverloaded {
		t.Errorf("Status = %v, want %v", se.Status, StatusOverloaded)
	}
}

// TestClientDisconnectCancelsSearch: a client that vanishes mid-search
// must not keep burning the backend — the server's connection watchdog
// cancels the per-connection context, which propagates into Search.
func TestClientDisconnectCancelsSearch(t *testing.T) {
	store, err := core.NewImageStore([32]byte{11})
	if err != nil {
		t.Fatal(err)
	}
	entered := make(chan struct{}, 1)
	cancelled := make(chan struct{}, 1)
	bk := watchedBackend{entered: entered, cancelled: cancelled}
	ca, err := core.NewCA(store, bk, &aeskg.Generator{}, core.NewRA(), core.CAConfig{
		Alg:         core.SHA3,
		MaxDistance: 2,
		// Disable the inline fast path: the disconnect watchdog is only
		// observable while the search is parked inside the backend.
		InlineDepth: core.InlineDisabled,
	})
	if err != nil {
		t.Fatal(err)
	}
	dev, err := puf.NewDevice(400, 1024, puf.Profile{BaseError: 0.5 / 256.0})
	if err != nil {
		t.Fatal(err)
	}
	im, err := puf.Enroll(dev, 31)
	if err != nil {
		t.Fatal(err)
	}
	if err := ca.Enroll("alice", im); err != nil {
		t.Fatal(err)
	}
	server := &Server{CA: ca}
	ln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	go server.Serve(ln)
	defer server.Close()

	conn, err := net.Dial("tcp", ln.Addr().String())
	if err != nil {
		t.Fatal(err)
	}
	// Run the protocol up to the digest, by hand.
	if err := WriteFrame(conn, MsgHello, EncodeHello(Hello{ClientID: "alice"})); err != nil {
		t.Fatal(err)
	}
	msgType, payload, err := ReadFrame(conn)
	if err != nil || msgType != MsgChallenge {
		t.Fatalf("expected challenge, got type %d (%v)", msgType, err)
	}
	wire, err := DecodeChallenge(payload)
	if err != nil {
		t.Fatal(err)
	}
	if err := WriteFrame(conn, MsgDigest, EncodeDigest(DigestMsg{
		Nonce:  wire.Nonce,
		Digest: make([]byte, 32),
	})); err != nil {
		t.Fatal(err)
	}
	select {
	case <-entered:
	case <-time.After(5 * time.Second):
		t.Fatal("search never started")
	}
	// The client walks away mid-search.
	conn.Close()
	select {
	case <-cancelled:
	case <-time.After(5 * time.Second):
		t.Fatal("search not cancelled after client disconnect")
	}
}

// watchedBackend reports when a search starts and when its context
// fires.
type watchedBackend struct{ entered, cancelled chan struct{} }

func (b watchedBackend) Name() string { return "watched" }

func (b watchedBackend) Search(ctx context.Context, task core.Task) (core.Result, error) {
	b.entered <- struct{}{}
	<-ctx.Done()
	b.cancelled <- struct{}{}
	return core.Result{}, ctx.Err()
}

// blockedBackend parks every search until release closes or ctx fires.
type blockedBackend struct{ release chan struct{} }

func (b blockedBackend) Name() string { return "blocked" }

func (b blockedBackend) Search(ctx context.Context, task core.Task) (core.Result, error) {
	select {
	case <-b.release:
		return core.Result{}, nil
	case <-ctx.Done():
		return core.Result{}, ctx.Err()
	}
}

func TestPaperLatencyConstant(t *testing.T) {
	if got := PaperLatency.CommSeconds(); got != 0.9 {
		t.Errorf("paper latency = %.3fs, want 0.90s", got)
	}
}

func TestLatencyInjection(t *testing.T) {
	server, client, _ := newServer(t)
	ln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	go server.Serve(ln)
	defer server.Close()

	conn, err := net.Dial("tcp", ln.Addr().String())
	if err != nil {
		t.Fatal(err)
	}
	defer conn.Close()
	lat := Latency{PUFRead: 50 * time.Millisecond, RTT: 20 * time.Millisecond}
	start := time.Now()
	res, err := Authenticate(conn, client, lat)
	if err != nil || !res.Authenticated {
		t.Fatalf("auth failed: %v", err)
	}
	if elapsed := time.Since(start); elapsed < 60*time.Millisecond {
		t.Errorf("latency injection missing: %v", elapsed)
	}
}
