package netproto

import (
	"bytes"
	"testing"
	"time"

	"rbcsalted/internal/core"
)

// FuzzReadFrame feeds arbitrary bytes to the frame reader: it must reject
// or parse, never panic, and any parsed frame must re-encode losslessly.
func FuzzReadFrame(f *testing.F) {
	var good bytes.Buffer
	WriteFrame(&good, MsgHello, []byte("alice"))
	f.Add(good.Bytes())
	f.Add([]byte{0, 0, 0, 0})
	f.Add([]byte{0xFF, 0xFF, 0xFF, 0xFF, 1, 2, 3})
	f.Add([]byte{})
	f.Fuzz(func(t *testing.T, data []byte) {
		msgType, payload, err := ReadFrame(bytes.NewReader(data))
		if err != nil {
			return
		}
		var out bytes.Buffer
		if err := WriteFrame(&out, msgType, payload); err != nil {
			t.Fatalf("parsed frame failed to re-encode: %v", err)
		}
		msgType2, payload2, err := ReadFrame(&out)
		if err != nil || msgType2 != msgType || !bytes.Equal(payload2, payload) {
			t.Fatal("re-encoded frame does not round trip")
		}
	})
}

// FuzzDecodeChallenge must never panic on hostile payloads.
func FuzzDecodeChallenge(f *testing.F) {
	addr := make([]int, 256)
	for i := range addr {
		addr[i] = i
	}
	good, _ := EncodeChallenge(Challenge{Nonce: 1, Alg: 1, AddressMap: addr})
	f.Add(good)
	f.Add([]byte{1, 2, 3})
	f.Fuzz(func(t *testing.T, data []byte) {
		ch, err := DecodeChallenge(data)
		if err != nil {
			return
		}
		re, err := EncodeChallenge(ch)
		if err != nil || !bytes.Equal(re, data) {
			t.Fatal("challenge does not round trip")
		}
	})
}

// FuzzDecodeError: any payload decodes to some status + message, and
// encoding that pair back always yields a frame WriteFrame accepts —
// the status byte can never be lost to an oversized message.
func FuzzDecodeError(f *testing.F) {
	f.Add(EncodeError(StatusOverloaded, "queue full"))
	f.Add([]byte{})
	f.Add([]byte{byte(StatusCancelled)})
	f.Add(bytes.Repeat([]byte{0xFF}, maxFrame))
	f.Fuzz(func(t *testing.T, data []byte) {
		status, msg := DecodeError(data)
		re := EncodeError(status, msg)
		var buf bytes.Buffer
		if err := WriteFrame(&buf, MsgError, re); err != nil {
			t.Fatalf("re-encoded error frame rejected by WriteFrame: %v", err)
		}
		status2, msg2 := DecodeError(re)
		if status2 != status {
			t.Fatalf("status does not round trip: %v != %v", status2, status)
		}
		if len(msg) <= MaxErrorMsg && msg2 != msg {
			t.Fatal("in-budget message does not round trip")
		}
	})
}

// FuzzDecodeResult and digest decoding must be total functions.
func FuzzDecodeResult(f *testing.F) {
	f.Add(EncodeResult(Result{Authenticated: true, SearchSeconds: 1.5, PublicKey: []byte{1}}))
	f.Add([]byte{})
	// v3 hello seeds: a well-formed extended hello, a truncated header,
	// and a bare marker — DecodeHello must reject or parse, never panic.
	f.Add(EncodeHello(Hello{ClientID: "alice", Class: core.ClassBackground,
		Deadline: time.Unix(0, 1754550000123456789)}))
	f.Add([]byte{helloV3Marker, helloV3Version, 1, 0, 0})
	f.Add([]byte{helloV3Marker})
	f.Fuzz(func(t *testing.T, data []byte) {
		if r, err := DecodeResult(data); err == nil {
			_ = EncodeResult(r)
		}
		if d, err := DecodeDigest(data); err == nil {
			_ = EncodeDigest(d)
		}
		if h, err := DecodeHello(data); err == nil {
			_ = EncodeHello(h)
		}
	})
}
