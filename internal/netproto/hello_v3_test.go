package netproto

import (
	"bytes"
	"errors"
	"net"
	"testing"
	"time"

	"rbcsalted/internal/core"
	"rbcsalted/internal/cpu"
	"rbcsalted/internal/cryptoalg/aeskg"
	"rbcsalted/internal/puf"
	"rbcsalted/internal/sched"
)

// TestHelloV3RoundTrip covers the extended hello layout: class and
// deadline survive an encode/decode cycle, and the default-QoS hello
// stays byte-compatible with v2.
func TestHelloV3RoundTrip(t *testing.T) {
	deadline := time.Unix(0, 1754550000123456789)
	cases := []struct {
		name   string
		in     Hello
		wantV2 bool
	}{
		{"default-qos-is-v2", Hello{ClientID: "alice"}, true},
		{"class-only", Hello{ClientID: "alice", Class: core.ClassBatch}, false},
		{"deadline-only", Hello{ClientID: "alice", Deadline: deadline}, false},
		{"class-and-deadline", Hello{ClientID: "bob", Class: core.ClassBackground, Deadline: deadline}, false},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			enc := EncodeHello(tc.in)
			if tc.wantV2 {
				if !bytes.Equal(enc, []byte(tc.in.ClientID)) {
					t.Fatalf("default-QoS hello = %x, want raw v2 id (old-server compatibility)", enc)
				}
			} else if enc[0] != helloV3Marker || enc[1] != helloV3Version {
				t.Fatalf("extended hello missing v3 header: %x", enc)
			}
			got, err := DecodeHello(enc)
			if err != nil {
				t.Fatal(err)
			}
			if got.ClientID != tc.in.ClientID || got.Class != tc.in.Class {
				t.Fatalf("round trip = %+v, want %+v", got, tc.in)
			}
			if !got.Deadline.Equal(tc.in.Deadline) {
				t.Fatalf("deadline round trip = %v, want %v", got.Deadline, tc.in.Deadline)
			}
		})
	}
}

// TestHelloV3Rejections: malformed v3 payloads are refused, never
// misparsed as v2 ids.
func TestHelloV3Rejections(t *testing.T) {
	good := EncodeHello(Hello{ClientID: "alice", Class: core.ClassBatch})
	cases := []struct {
		name string
		p    []byte
	}{
		{"truncated-header", good[:5]},
		{"unknown-version", append([]byte{helloV3Marker, 99}, good[2:]...)},
		{"invalid-class", func() []byte {
			p := append([]byte(nil), good...)
			p[2] = 200
			return p
		}()},
		{"empty-id", good[:helloV3Header]},
		{"oversized-id", append(append([]byte(nil), good...), bytes.Repeat([]byte{'x'}, 256)...)},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			if h, err := DecodeHello(tc.p); err == nil {
				t.Fatalf("accepted as %+v", h)
			}
		})
	}
}

// TestStatusDeadlineInfeasibleMapping: the scheduler's admission error
// reaches the wire as its own status, distinct from overload.
func TestStatusDeadlineInfeasibleMapping(t *testing.T) {
	if got := statusFor(sched.ErrDeadlineInfeasible); got != StatusDeadlineInfeasible {
		t.Errorf("statusFor(ErrDeadlineInfeasible) = %v, want StatusDeadlineInfeasible", got)
	}
	if got := statusFor(sched.ErrOverloaded); got != StatusOverloaded {
		t.Errorf("statusFor(ErrOverloaded) = %v, want StatusOverloaded", got)
	}
	if StatusDeadlineInfeasible.String() != "deadline-infeasible" {
		t.Errorf("StatusDeadlineInfeasible.String() = %q", StatusDeadlineInfeasible.String())
	}
}

// TestAuthenticateWithClassAndDeadline runs a full client/server
// session with v3 hello fields set: the session must succeed and the
// server must see the class and deadline on the CA request (observed
// through the backend task).
func TestAuthenticateWithClassAndDeadline(t *testing.T) {
	srv, client, _ := newServer(t)
	ln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	go srv.Serve(ln)
	defer srv.Close()

	conn, err := net.Dial("tcp", ln.Addr().String())
	if err != nil {
		t.Fatal(err)
	}
	defer conn.Close()

	res, err := AuthenticateWithOptions(conn, client, AuthOptions{
		Class:    core.ClassBatch,
		Deadline: time.Now().Add(30 * time.Second),
	})
	if err != nil {
		t.Fatal(err)
	}
	if !res.Authenticated {
		t.Fatal("not authenticated with v3 hello")
	}
}

// TestDeadlineInfeasibleOverTheWire: a deadline that is already past
// when the hello arrives is refused with StatusDeadlineInfeasible, not
// StatusOverloaded.
func TestDeadlineInfeasibleOverTheWire(t *testing.T) {
	store, err := core.NewImageStore([32]byte{5})
	if err != nil {
		t.Fatal(err)
	}
	pool := sched.New(&cpu.Backend{Alg: core.SHA3, Workers: 2},
		sched.Config{Workers: 1, QueueDepth: 1})
	defer pool.Close()
	ca, err := core.NewCA(store, pool, &aeskg.Generator{}, core.NewRA(), core.CAConfig{
		Alg:         core.SHA3,
		MaxDistance: 2,
		// Every search must reach the scheduler's admission control —
		// the inline fast path would serve this quiet device at d <= 1
		// without ever seeing the infeasible deadline.
		InlineDepth: core.InlineDisabled,
	})
	if err != nil {
		t.Fatal(err)
	}
	dev, err := puf.NewDevice(101, 1024, puf.Profile{BaseError: 0.5 / 256.0})
	if err != nil {
		t.Fatal(err)
	}
	im, err := puf.Enroll(dev, 31)
	if err != nil {
		t.Fatal(err)
	}
	if err := ca.Enroll("alice", im); err != nil {
		t.Fatal(err)
	}
	srv := &Server{CA: ca}
	client := &core.Client{ID: "alice", Device: dev}

	ln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	go srv.Serve(ln)
	defer srv.Close()

	conn, err := net.Dial("tcp", ln.Addr().String())
	if err != nil {
		t.Fatal(err)
	}
	defer conn.Close()

	_, err = AuthenticateWithOptions(conn, client, AuthOptions{
		Deadline: time.Now().Add(-time.Second),
	})
	var se *ServerError
	if !errors.As(err, &se) || se.Status != StatusDeadlineInfeasible {
		t.Fatalf("expected StatusDeadlineInfeasible, got %v", err)
	}
}
