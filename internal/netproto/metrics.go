package netproto

import (
	"rbcsalted/internal/obs"
)

// Metrics aggregates the server's per-connection and per-status
// counters. Construct with NewMetrics and attach to Server.Metrics; a
// nil *Metrics (the default) disables collection — every recording
// method is nil-receiver safe, so the handler code carries no checks.
type Metrics struct {
	// Accepted counts connections the listener accepted; Active is the
	// number currently open.
	Accepted *obs.Counter
	Active   *obs.Gauge
	// AuthOK / AuthDenied count MsgResult frames sent, split by verdict
	// (a denied result is a completed search that did not authenticate,
	// e.g. exhausted ball or modelled timeout).
	AuthOK     *obs.Counter
	AuthDenied *obs.Counter
	// Errors counts MsgError frames sent, by wire status.
	Errors [StatusCancelled + 1]*obs.Counter
	// ErrorsOther counts error frames with a status outside the known
	// range (future codes).
	ErrorsOther *obs.Counter
}

// NewMetrics registers the server's counters in reg under "netproto.*"
// and returns the bundle. Registration is get-or-create, so multiple
// servers sharing one registry share counters.
func NewMetrics(reg *obs.Registry) *Metrics {
	m := &Metrics{
		Accepted:    reg.Counter("netproto.conns_accepted"),
		Active:      reg.Gauge("netproto.conns_active"),
		AuthOK:      reg.Counter("netproto.auth_ok"),
		AuthDenied:  reg.Counter("netproto.auth_denied"),
		ErrorsOther: reg.Counter("netproto.errors.other"),
	}
	for st := range m.Errors {
		m.Errors[st] = reg.Counter("netproto.errors." + Status(st).String())
	}
	return m
}

func (m *Metrics) connOpened() {
	if m == nil {
		return
	}
	m.Accepted.Inc()
	m.Active.Inc()
}

func (m *Metrics) connClosed() {
	if m == nil {
		return
	}
	m.Active.Dec()
}

func (m *Metrics) errorSent(s Status) {
	if m == nil {
		return
	}
	if int(s) < len(m.Errors) {
		m.Errors[s].Inc()
		return
	}
	m.ErrorsOther.Inc()
}

func (m *Metrics) resultSent(authenticated bool) {
	if m == nil {
		return
	}
	if authenticated {
		m.AuthOK.Inc()
	} else {
		m.AuthDenied.Inc()
	}
}
