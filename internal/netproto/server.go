package netproto

import (
	"context"
	"errors"
	"fmt"
	"net"
	"sync"
	"time"

	"rbcsalted/internal/core"
	"rbcsalted/internal/sched"
)

// Latency injects the paper's modelled communication costs: the PUF USB
// read on the client and the WAN round-trip. Zero values mean measure the
// real transport only.
type Latency struct {
	PUFRead time.Duration
	RTT     time.Duration
}

// PaperLatency reproduces the 0.90 s communication constant of Table 5:
// the protocol makes three traversals (hello/challenge, digest, result)
// plus the client's USB PUF read.
var PaperLatency = Latency{PUFRead: 300 * time.Millisecond, RTT: 400 * time.Millisecond}

// CommSeconds returns the end-to-end communication time the latency model
// adds to one authentication (1.5 RTT spread over the three messages plus
// the PUF read).
func (l Latency) CommSeconds() float64 {
	return (l.PUFRead + l.RTT + l.RTT/2).Seconds()
}

// Server serves the RBC-SALTED protocol for one certificate authority.
//
// Each connection gets its own context, cancelled when the session ends,
// and the server threads it into CA.Authenticate — so a backend search
// (or a scheduler queue slot) is released as soon as its session is torn
// down. Protocol failures carry a wire Status (see statusFor) instead of
// opaque strings.
// Router decides which node serves a client. A sharded deployment
// plugs one into Server (internal/replica provides it); nil means this
// node serves everyone.
type Router interface {
	// Route returns the address of the node owning clientID and whether
	// that node is this server. epoch is the ring epoch the client
	// presented in its hello (0 = not ring-aware). A non-local route
	// makes the server refuse the handshake with StatusWrongShard,
	// carrying addr for the client to redial.
	Route(clientID string, epoch uint64) (addr string, local bool)
}

type Server struct {
	CA *core.CA
	// Router, when set, is consulted before every handshake; clients
	// whose shard lives elsewhere are redirected with StatusWrongShard
	// instead of served. Nil serves every client (single-node mode).
	Router Router
	// IdleTimeout bounds each read; zero means 30 s.
	IdleTimeout time.Duration
	// BaseContext, when set, parents every per-connection context;
	// cancelling it aborts all in-flight searches. Nil means Background.
	BaseContext context.Context
	// Metrics, when set, collects per-connection and per-status counters
	// (see NewMetrics). Nil disables collection.
	Metrics *Metrics

	mu sync.Mutex
	ln net.Listener
}

// Serve accepts connections until the listener closes.
func (s *Server) Serve(ln net.Listener) error {
	s.mu.Lock()
	s.ln = ln
	s.mu.Unlock()
	for {
		conn, err := ln.Accept()
		if err != nil {
			if errors.Is(err, net.ErrClosed) {
				return nil
			}
			return err
		}
		go s.handle(conn)
	}
}

// Close stops the listener.
func (s *Server) Close() error {
	s.mu.Lock()
	defer s.mu.Unlock()
	if s.ln != nil {
		return s.ln.Close()
	}
	return nil
}

func (s *Server) idle() time.Duration {
	if s.IdleTimeout > 0 {
		return s.IdleTimeout
	}
	return 30 * time.Second
}

// statusFor maps the sentinel errors of core and sched to wire status
// codes; anything unrecognised is StatusInternal.
func statusFor(err error) Status {
	switch {
	case errors.Is(err, core.ErrUnknownClient):
		return StatusUnknownClient
	case errors.Is(err, core.ErrNoSession):
		return StatusNoSession
	case errors.Is(err, core.ErrAlgMismatch):
		return StatusAlgMismatch
	case errors.Is(err, sched.ErrOverloaded):
		return StatusOverloaded
	case errors.Is(err, sched.ErrDeadlineInfeasible):
		return StatusDeadlineInfeasible
	case errors.Is(err, context.Canceled), errors.Is(err, context.DeadlineExceeded):
		return StatusCancelled
	default:
		return StatusInternal
	}
}

// handle runs one authentication session over the connection.
func (s *Server) handle(conn net.Conn) {
	s.Metrics.connOpened()
	defer s.Metrics.connClosed()
	defer conn.Close()
	base := s.BaseContext
	if base == nil {
		base = context.Background()
	}
	ctx, cancel := context.WithCancel(base)
	defer cancel()

	fail := func(status Status, msg string) {
		s.Metrics.errorSent(status)
		_ = WriteFrame(conn, MsgError, EncodeError(status, msg))
	}
	failErr := func(err error) {
		fail(statusFor(err), err.Error())
	}

	conn.SetDeadline(time.Now().Add(s.idle()))
	msgType, payload, err := ReadFrame(conn)
	if err != nil || msgType != MsgHello {
		fail(StatusBadRequest, "expected hello")
		return
	}
	hello, err := DecodeHello(payload)
	if err != nil {
		fail(StatusBadRequest, err.Error())
		return
	}
	if s.Router != nil {
		if addr, local := s.Router.Route(hello.ClientID, hello.RingEpoch); !local {
			// The redirect happens before any session state exists, so
			// the client can simply redial the owner.
			fail(StatusWrongShard, addr)
			return
		}
	}

	ch, err := s.CA.BeginHandshake(core.ClientID(hello.ClientID))
	if err != nil {
		failErr(err)
		return
	}
	encoded, err := EncodeChallenge(Challenge{
		Nonce:      ch.Nonce,
		Alg:        byte(ch.Alg),
		AddressMap: ch.AddressMap,
	})
	if err != nil {
		failErr(err)
		return
	}
	if err := WriteFrame(conn, MsgChallenge, encoded); err != nil {
		return
	}

	conn.SetDeadline(time.Now().Add(s.idle()))
	msgType, payload, err = ReadFrame(conn)
	if err != nil || msgType != MsgDigest {
		fail(StatusBadRequest, "expected digest")
		return
	}
	dm, err := DecodeDigest(payload)
	if err != nil {
		fail(StatusBadRequest, err.Error())
		return
	}
	digest, err := core.DigestFromBytes(ch.Alg, dm.Digest)
	if err != nil {
		fail(StatusBadRequest, err.Error())
		return
	}

	// The client sends nothing between the digest and the result, so a
	// read completing here — EOF, reset, or protocol-violating bytes —
	// means the session is gone: cancel the search and release the
	// worker slot instead of finishing work nobody will read.
	conn.SetReadDeadline(time.Time{})
	go func() {
		var one [1]byte
		conn.Read(one[:])
		cancel()
	}()

	auth, err := s.CA.Authenticate(ctx, core.AuthRequest{
		Client:   core.ClientID(hello.ClientID),
		Nonce:    dm.Nonce,
		M1:       digest,
		Class:    hello.Class,
		Deadline: hello.Deadline,
	})
	if err != nil {
		failErr(err)
		return
	}
	s.Metrics.resultSent(auth.Authenticated)
	conn.SetDeadline(time.Now().Add(s.idle()))
	_ = WriteFrame(conn, MsgResult, EncodeResult(Result{
		Authenticated: auth.Authenticated,
		TimedOut:      auth.TimedOut,
		SearchSeconds: auth.Search.DeviceSeconds,
		PublicKey:     auth.PublicKey,
	}))
}

// AuthOptions carries the client-side knobs of one authentication.
type AuthOptions struct {
	// Latency injects modelled communication costs (see Latency).
	Latency Latency
	// Class is the request's QoS class, sent in the hello. The zero
	// value (interactive) together with a zero Deadline keeps the hello
	// on the v2 wire layout, compatible with old servers.
	Class core.QoSClass
	// Deadline is the absolute deadline sent in the hello; zero means
	// none. A server that cannot meet it refuses the request with
	// StatusDeadlineInfeasible instead of searching.
	Deadline time.Time
	// RingEpoch is the topology epoch stamped into the hello (v4) by a
	// ring-routed Client; zero keeps the older wire layouts.
	RingEpoch uint64
}

// Authenticate runs the full client side of the protocol over conn:
// hello, challenge, PUF read, digest, result. Server-reported failures
// are returned as *ServerError carrying the wire Status.
//
// Deprecated: use Client, which owns dialing, shard routing, redirects
// and retry. This single-connection form neither routes nor retries —
// a StatusWrongShard refusal surfaces as a plain error.
func Authenticate(conn net.Conn, client *core.Client, lat Latency) (Result, error) {
	return AuthenticateWithOptions(conn, client, AuthOptions{Latency: lat})
}

// AuthenticateWithOptions is Authenticate with per-request QoS class and
// deadline carried in the hello.
//
// Deprecated: use Client (see Authenticate). Client.Authenticate
// funnels through this, so it remains the single wire-level
// implementation.
func AuthenticateWithOptions(conn net.Conn, client *core.Client, opts AuthOptions) (Result, error) {
	lat := opts.Latency
	hello := Hello{ClientID: string(client.ID), Class: opts.Class, Deadline: opts.Deadline, RingEpoch: opts.RingEpoch}
	if err := WriteFrame(conn, MsgHello, EncodeHello(hello)); err != nil {
		return Result{}, fmt.Errorf("netproto: hello: %w", err)
	}
	msgType, payload, err := ReadFrame(conn)
	if err != nil {
		return Result{}, fmt.Errorf("netproto: challenge: %w", err)
	}
	if msgType == MsgError {
		status, msg := DecodeError(payload)
		return Result{}, &ServerError{Status: status, Msg: msg}
	}
	if msgType != MsgChallenge {
		return Result{}, fmt.Errorf("netproto: unexpected message type %d", msgType)
	}
	wire, err := DecodeChallenge(payload)
	if err != nil {
		return Result{}, err
	}
	ch := core.Challenge{
		Nonce:      wire.Nonce,
		AddressMap: wire.AddressMap,
		Alg:        core.HashAlg(wire.Alg),
	}

	// The PUF read happens here on real hardware; the latency model
	// charges it explicitly.
	if lat.PUFRead > 0 {
		time.Sleep(lat.PUFRead)
	}
	m1, err := client.Respond(ch)
	if err != nil {
		return Result{}, err
	}
	if err := WriteFrame(conn, MsgDigest, EncodeDigest(DigestMsg{
		Nonce:  ch.Nonce,
		Digest: m1.Bytes(),
	})); err != nil {
		return Result{}, fmt.Errorf("netproto: digest: %w", err)
	}

	msgType, payload, err = ReadFrame(conn)
	if err != nil {
		return Result{}, fmt.Errorf("netproto: result: %w", err)
	}
	if msgType == MsgError {
		status, msg := DecodeError(payload)
		return Result{}, &ServerError{Status: status, Msg: msg}
	}
	if msgType != MsgResult {
		return Result{}, fmt.Errorf("netproto: unexpected message type %d", msgType)
	}
	if lat.RTT > 0 {
		time.Sleep(lat.RTT / 2)
	}
	return DecodeResult(payload)
}
