// Package netproto carries the RBC-SALTED protocol (Figure 1) over TCP:
// a length-prefixed binary framing for the handshake, challenge, digest
// and result messages, plus a server wrapping a certificate authority and
// a client wrapping a PUF device.
//
// The paper's end-to-end numbers separate a measured 0.90 s communication
// constant (PUF USB read + WAN round trips) from search time; the Latency
// type injects that constant for end-to-end experiments, while loopback
// use measures real transport cost.
package netproto

import (
	"encoding/binary"
	"errors"
	"fmt"
	"io"
	"math"
	"time"

	"rbcsalted/internal/core"
)

// Message types.
const (
	MsgHello byte = iota + 1
	MsgChallenge
	MsgDigest
	MsgResult
	MsgError
)

// Status classifies a server-reported failure so clients can react
// without parsing message strings: an overloaded server invites retry
// with backoff, an unknown client does not. Wire format: the first byte
// of a MsgError payload.
type Status byte

// Wire status codes, mapped from the core and sched sentinel errors.
const (
	// StatusInternal is an unclassified server-side failure.
	StatusInternal Status = iota
	// StatusBadRequest reports a malformed or out-of-order message.
	StatusBadRequest
	// StatusUnknownClient maps core.ErrUnknownClient.
	StatusUnknownClient
	// StatusNoSession maps core.ErrNoSession (including replayed
	// challenges — they are single-use).
	StatusNoSession
	// StatusAlgMismatch maps core.ErrAlgMismatch.
	StatusAlgMismatch
	// StatusOverloaded maps sched.ErrOverloaded: admission control shed
	// the search. Retry with backoff.
	StatusOverloaded
	// StatusCancelled reports a search stopped by context cancellation
	// or deadline expiry on the server.
	StatusCancelled
	// StatusDeadlineInfeasible maps sched.ErrDeadlineInfeasible: the
	// hello's absolute deadline could not be met, so the search was
	// refused without being run. Retrying with the same deadline is
	// pointless; relax it or drop it.
	StatusDeadlineInfeasible
	// StatusWrongShard reports that the client's shard is served by
	// another node; the error message is that node's address. Clients
	// (the Client type does this automatically) redial there — the
	// request was refused before any session state was created, so the
	// retry is always safe.
	StatusWrongShard
)

// String names the status for logs and error text.
func (s Status) String() string {
	switch s {
	case StatusInternal:
		return "internal"
	case StatusBadRequest:
		return "bad-request"
	case StatusUnknownClient:
		return "unknown-client"
	case StatusNoSession:
		return "no-session"
	case StatusAlgMismatch:
		return "alg-mismatch"
	case StatusOverloaded:
		return "overloaded"
	case StatusCancelled:
		return "cancelled"
	case StatusDeadlineInfeasible:
		return "deadline-infeasible"
	case StatusWrongShard:
		return "wrong-shard"
	default:
		return fmt.Sprintf("status-%d", byte(s))
	}
}

// MaxErrorMsg is the longest error message an error frame can carry:
// the frame budget (maxFrame) minus the type and status bytes.
const MaxErrorMsg = maxFrame - 2

// EncodeError serializes a MsgError payload: status byte + message.
// Messages longer than MaxErrorMsg are truncated so the frame always
// fits WriteFrame's limit — an oversized message must never stop the
// status byte from reaching the client (previously such a frame failed
// to send and the client hung until EOF).
func EncodeError(s Status, msg string) []byte {
	if len(msg) > MaxErrorMsg {
		msg = msg[:MaxErrorMsg]
	}
	return append([]byte{byte(s)}, msg...)
}

// DecodeError parses a MsgError payload.
func DecodeError(p []byte) (Status, string) {
	if len(p) == 0 {
		return StatusInternal, "unspecified server error"
	}
	return Status(p[0]), string(p[1:])
}

// ServerError is the client-side view of a server-reported failure.
type ServerError struct {
	Status Status
	Msg    string
}

// Error implements error.
func (e *ServerError) Error() string {
	return fmt.Sprintf("netproto: server [%s]: %s", e.Status, e.Msg)
}

// Frame limits: the largest legitimate message is a challenge
// (256 x 2-byte cell addresses + header); anything bigger is an attack or
// corruption.
const maxFrame = 1 << 16

// WriteFrame sends one framed message: u32 length, u8 type, payload.
func WriteFrame(w io.Writer, msgType byte, payload []byte) error {
	if len(payload)+1 > maxFrame {
		return fmt.Errorf("netproto: frame too large (%d bytes)", len(payload))
	}
	var hdr [5]byte
	binary.BigEndian.PutUint32(hdr[:4], uint32(len(payload)+1))
	hdr[4] = msgType
	if _, err := w.Write(hdr[:]); err != nil {
		return err
	}
	_, err := w.Write(payload)
	return err
}

// ReadFrame receives one framed message.
func ReadFrame(r io.Reader) (msgType byte, payload []byte, err error) {
	var hdr [4]byte
	if _, err := io.ReadFull(r, hdr[:]); err != nil {
		return 0, nil, err
	}
	n := binary.BigEndian.Uint32(hdr[:])
	if n == 0 || n > maxFrame {
		return 0, nil, fmt.Errorf("netproto: invalid frame length %d", n)
	}
	buf := make([]byte, n)
	if _, err := io.ReadFull(r, buf); err != nil {
		return 0, nil, err
	}
	return buf[0], buf[1:], nil
}

// Hello is the client's opening message. Since protocol v3 it may carry
// the request's QoS class and absolute deadline, which the server threads
// into the scheduler's admission control.
type Hello struct {
	ClientID string
	// Class is the request's QoS class; the zero value (interactive) is
	// also what a v2 hello decodes to.
	Class core.QoSClass
	// Deadline is the client's absolute deadline for the whole
	// authentication; zero means none. Encoded as Unix nanoseconds, so
	// both ends must have loosely synchronized clocks (same assumption
	// the session TTL already makes).
	Deadline time.Time
	// RingEpoch is the topology epoch of the ring the client routed
	// with (protocol v4); zero means the client is not ring-aware. A
	// sharded server uses it to tell a stale router from a fresh one
	// when deciding how to phrase a redirect.
	RingEpoch uint64
}

// helloV3Version tags the extended hello layout. A v3 payload is
//
//	0x00 | version | class | deadline (8 bytes, big-endian Unix nanos,
//	0 = none) | client id (1-255 bytes)
//
// The 0x00 marker cannot begin a v2 hello sent by any released client
// (IDs are human-assigned names), so old and new payloads are
// distinguishable from the first byte and a v2-only server rejects a v3
// hello cleanly at its id-length check rather than misreading it.
// A v4 payload extends v3 with the client's ring epoch:
//
//	0x00 | 4 | class | deadline (8 bytes) | ring epoch (8 bytes,
//	big-endian, 0 = not ring-aware) | client id (1-255 bytes)
const (
	helloV3Marker  = 0x00
	helloV3Version = 3
	helloV3Header  = 11 // marker + version + class + 8-byte deadline
	helloV4Version = 4
	helloV4Header  = helloV3Header + 8 // + 8-byte ring epoch
)

// EncodeHello serializes a Hello at the oldest wire version that can
// carry it: a hello with default QoS and no ring epoch encodes as the
// v2 raw client id, QoS alone selects v3, and a ring epoch selects v4 —
// so upgraded clients keep working against older servers until they
// actually use the new fields.
func EncodeHello(h Hello) []byte {
	if h.Class == core.ClassInteractive && h.Deadline.IsZero() && h.RingEpoch == 0 {
		return []byte(h.ClientID)
	}
	header := helloV3Header
	version := byte(helloV3Version)
	if h.RingEpoch != 0 {
		header = helloV4Header
		version = helloV4Version
	}
	out := make([]byte, header+len(h.ClientID))
	out[0] = helloV3Marker
	out[1] = version
	out[2] = byte(h.Class)
	if !h.Deadline.IsZero() {
		binary.BigEndian.PutUint64(out[3:11], uint64(h.Deadline.UnixNano()))
	}
	if version == helloV4Version {
		binary.BigEndian.PutUint64(out[11:19], h.RingEpoch)
	}
	copy(out[header:], h.ClientID)
	return out
}

// DecodeHello parses a Hello, accepting the v2 raw-id payload and the
// v3/v4 extended layouts.
func DecodeHello(p []byte) (Hello, error) {
	if len(p) > 0 && p[0] == helloV3Marker {
		if len(p) < 2 {
			return Hello{}, errors.New("netproto: truncated extended hello")
		}
		header := helloV3Header
		switch p[1] {
		case helloV3Version:
		case helloV4Version:
			header = helloV4Header
		default:
			return Hello{}, fmt.Errorf("netproto: unsupported hello version %d", p[1])
		}
		if len(p) < header {
			return Hello{}, fmt.Errorf("netproto: truncated v%d hello", p[1])
		}
		h := Hello{Class: core.QoSClass(p[2])}
		if !h.Class.Valid() {
			return Hello{}, fmt.Errorf("netproto: invalid QoS class %d", p[2])
		}
		if nanos := binary.BigEndian.Uint64(p[3:11]); nanos != 0 {
			h.Deadline = time.Unix(0, int64(nanos))
		}
		if p[1] == helloV4Version {
			h.RingEpoch = binary.BigEndian.Uint64(p[11:19])
		}
		id := p[header:]
		if len(id) == 0 || len(id) > 255 {
			return Hello{}, errors.New("netproto: invalid client id length")
		}
		h.ClientID = string(id)
		return h, nil
	}
	if len(p) == 0 || len(p) > 255 {
		return Hello{}, errors.New("netproto: invalid client id length")
	}
	return Hello{ClientID: string(p)}, nil
}

// Challenge mirrors core.Challenge on the wire.
type Challenge struct {
	Nonce      uint64
	Alg        byte
	AddressMap []int
}

// EncodeChallenge serializes a Challenge.
func EncodeChallenge(c Challenge) ([]byte, error) {
	if len(c.AddressMap) != 256 {
		return nil, fmt.Errorf("netproto: address map has %d cells, want 256", len(c.AddressMap))
	}
	out := make([]byte, 9+2*len(c.AddressMap))
	binary.BigEndian.PutUint64(out[:8], c.Nonce)
	out[8] = c.Alg
	for i, cell := range c.AddressMap {
		if cell < 0 || cell > 0xFFFF {
			return nil, fmt.Errorf("netproto: cell index %d out of range", cell)
		}
		binary.BigEndian.PutUint16(out[9+2*i:], uint16(cell))
	}
	return out, nil
}

// DecodeChallenge parses a Challenge.
func DecodeChallenge(p []byte) (Challenge, error) {
	if len(p) != 9+2*256 {
		return Challenge{}, fmt.Errorf("netproto: challenge payload %d bytes", len(p))
	}
	c := Challenge{
		Nonce:      binary.BigEndian.Uint64(p[:8]),
		Alg:        p[8],
		AddressMap: make([]int, 256),
	}
	for i := range c.AddressMap {
		c.AddressMap[i] = int(binary.BigEndian.Uint16(p[9+2*i:]))
	}
	return c, nil
}

// DigestMsg is the client's response digest M_1.
type DigestMsg struct {
	Nonce  uint64
	Digest []byte
}

// EncodeDigest serializes a DigestMsg.
func EncodeDigest(d DigestMsg) []byte {
	out := make([]byte, 8+len(d.Digest))
	binary.BigEndian.PutUint64(out[:8], d.Nonce)
	copy(out[8:], d.Digest)
	return out
}

// DecodeDigest parses a DigestMsg.
func DecodeDigest(p []byte) (DigestMsg, error) {
	if len(p) < 8+20 || len(p) > 8+64 {
		return DigestMsg{}, fmt.Errorf("netproto: digest payload %d bytes", len(p))
	}
	return DigestMsg{
		Nonce:  binary.BigEndian.Uint64(p[:8]),
		Digest: append([]byte(nil), p[8:]...),
	}, nil
}

// Result is the server's verdict.
type Result struct {
	Authenticated bool
	TimedOut      bool
	SearchSeconds float64
	PublicKey     []byte
}

// EncodeResult serializes a Result.
func EncodeResult(r Result) []byte {
	out := make([]byte, 10+len(r.PublicKey))
	if r.Authenticated {
		out[0] = 1
	}
	if r.TimedOut {
		out[1] = 1
	}
	binary.BigEndian.PutUint64(out[2:10], math.Float64bits(r.SearchSeconds))
	copy(out[10:], r.PublicKey)
	return out
}

// DecodeResult parses a Result.
func DecodeResult(p []byte) (Result, error) {
	if len(p) < 10 {
		return Result{}, fmt.Errorf("netproto: result payload %d bytes", len(p))
	}
	r := Result{
		Authenticated: p[0] == 1,
		TimedOut:      p[1] == 1,
		SearchSeconds: math.Float64frombits(binary.BigEndian.Uint64(p[2:10])),
	}
	if len(p) > 10 {
		r.PublicKey = append([]byte(nil), p[10:]...)
	}
	return r, nil
}
