package core

// HealthReporter is optionally implemented by backends whose capacity
// can degrade at runtime (e.g. a cluster coordinator that lost its
// fleet). Wrappers like the scheduler surface it in their stats so
// operators see degraded mode without reaching into the backend.
type HealthReporter interface {
	// Degraded reports that the backend is serving in a reduced-capacity
	// mode (or failing) and needs operator attention.
	Degraded() bool
}
