package core

import (
	"time"

	"rbcsalted/internal/obs"
)

// Canonical trace-event constructors: every backend emits the same event
// shapes, so one consumer (the debug listener's /trace, a test, a log
// forwarder) reads all four engines identically. All helpers are no-ops
// when the task carries no sink.

// TraceSearchStart reports that backend began executing the task.
// Depth carries the search bound (MaxDistance).
func TraceSearchStart(t Task, backend string) {
	obs.Emit(t.Trace, obs.TraceEvent{
		Kind:    obs.KindSearchStart,
		Search:  t.TraceID,
		Backend: backend,
		Depth:   t.MaxDistance,
	})
}

// TraceShell reports one finished Hamming shell: the distance, the seeds
// the shell accounted for, and its modelled (or measured) device time.
func TraceShell(t Task, backend string, st ShellStat) {
	obs.Emit(t.Trace, obs.TraceEvent{
		Kind:    obs.KindShell,
		Search:  t.TraceID,
		Backend: backend,
		Depth:   st.Distance,
		N:       st.SeedsCovered,
		Dur:     time.Duration(st.DeviceSeconds * float64(time.Second)),
	})
}

// TraceSearchEnd reports the search outcome: Detail is one of "found",
// "not-found" or "timed-out"; Depth is the early-exit distance when
// found; N counts the digests actually computed on the host; Dur is the
// host wall time; Err carries the error (cancellation included).
func TraceSearchEnd(t Task, backend string, res Result, err error) {
	ev := obs.TraceEvent{
		Kind:    obs.KindSearchEnd,
		Search:  t.TraceID,
		Backend: backend,
		N:       res.HashesExecuted,
		Dur:     time.Duration(res.WallSeconds * float64(time.Second)),
	}
	switch {
	case res.Found:
		ev.Detail = "found"
		ev.Depth = res.Distance
	case res.TimedOut:
		ev.Detail = "timed-out"
	default:
		ev.Detail = "not-found"
	}
	if err != nil {
		ev.Err = err.Error()
	}
	obs.Emit(t.Trace, ev)
}
