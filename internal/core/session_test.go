package core

import (
	"errors"
	"testing"
	"time"

	"rbcsalted/internal/puf"
)

// testCAPair builds a CA (echo backend, d<=2) with one enrolled
// low-noise client.
func testCAPair(t *testing.T) (*CA, *Client) {
	t.Helper()
	ca, _, _ := newTestCA(t, SHA3)
	client := enrollTestClient(t, ca, "alice", 77, puf.Profile{BaseError: 0.5 / 256.0})
	return ca, client
}

func TestSessionTableOpenTake(t *testing.T) {
	tab := NewSessionTable()
	n := tab.NextNonce()
	if err := tab.Open("alice", Challenge{Nonce: n, AddressMap: []int{1}}); err != nil {
		t.Fatal(err)
	}
	if _, ok := tab.Take("alice", n+1); ok {
		t.Fatal("wrong nonce consumed the session")
	}
	// The wrong-nonce probe must not void the real session.
	ch, ok := tab.Take("alice", n)
	if !ok || ch.Nonce != n {
		t.Fatalf("Take = %+v, %v", ch, ok)
	}
	if _, ok := tab.Take("alice", n); ok {
		t.Fatal("session replayed")
	}
}

func TestSessionTableTTLExpiry(t *testing.T) {
	tab := NewSessionTable()
	tab.SetTTL(30 * time.Second)
	now := time.Unix(1000, 0)
	tab.SetClock(func() time.Time { return now })

	n := tab.NextNonce()
	if err := tab.Open("alice", Challenge{Nonce: n, AddressMap: []int{1}}); err != nil {
		t.Fatal(err)
	}
	// Inside the TTL the session is live.
	now = now.Add(29 * time.Second)
	if ch, ok := tab.Take("alice", n); !ok || ch.Nonce != n {
		t.Fatalf("fresh session rejected: %+v %v", ch, ok)
	}

	n2 := tab.NextNonce()
	if err := tab.Open("alice", Challenge{Nonce: n2, AddressMap: []int{1}}); err != nil {
		t.Fatal(err)
	}
	now = now.Add(31 * time.Second)
	if _, ok := tab.Take("alice", n2); ok {
		t.Fatal("expired session consumed")
	}
	// Expiry evicted the entry entirely.
	if tab.Len() != 0 {
		t.Fatalf("Len = %d after expiry", tab.Len())
	}
}

func TestSessionTableSweepEvictsAbandoned(t *testing.T) {
	tab := NewSessionTableShards(1) // one shard so every id shares a sweep
	tab.SetTTL(10 * time.Second)
	now := time.Unix(0, 0)
	tab.SetClock(func() time.Time { return now })

	for _, id := range []ClientID{"a", "b", "c"} {
		if err := tab.Open(id, Challenge{Nonce: tab.NextNonce(), AddressMap: []int{1}}); err != nil {
			t.Fatal(err)
		}
	}
	if tab.Len() != 3 {
		t.Fatalf("Len = %d", tab.Len())
	}
	// Long after the TTL, the next Open sweeps the abandoned handshakes.
	now = now.Add(time.Minute)
	if err := tab.Open("d", Challenge{Nonce: tab.NextNonce(), AddressMap: []int{1}}); err != nil {
		t.Fatal(err)
	}
	if tab.Len() != 1 {
		t.Fatalf("Len = %d after sweep, want 1 (just %q)", tab.Len(), "d")
	}
}

func TestCASessionTTLRejectsStaleNonce(t *testing.T) {
	ca, client := testCAPair(t)
	now := time.Unix(5000, 0)
	ca.Sessions().SetClock(func() time.Time { return now })
	ca.Sessions().SetTTL(30 * time.Second)

	ch, err := ca.BeginHandshake(client.ID)
	if err != nil {
		t.Fatal(err)
	}
	m1, err := client.Respond(ch)
	if err != nil {
		t.Fatal(err)
	}
	now = now.Add(time.Minute)
	_, err = ca.Authenticate(t.Context(), AuthRequest{Client: client.ID, Nonce: ch.Nonce, M1: m1})
	if !errors.Is(err, ErrNoSession) {
		t.Fatalf("stale handshake error = %v, want ErrNoSession", err)
	}
}

func TestCAConfigSessionTTLDefaultAndValidation(t *testing.T) {
	cfg := CAConfig{}
	cfg = cfg.withDefaults()
	if cfg.SessionTTL != DefaultSessionTTL {
		t.Errorf("default SessionTTL = %v", cfg.SessionTTL)
	}
	bad := CAConfig{SessionTTL: -time.Second}
	if err := bad.Validate(); err == nil {
		t.Error("negative SessionTTL accepted")
	}
}

func TestRADelete(t *testing.T) {
	ra := NewRA()
	if err := ra.Delete("ghost"); err != nil {
		t.Fatalf("deleting an absent client: %v", err)
	}
	if err := ra.Update("alice", []byte("pk")); err != nil {
		t.Fatal(err)
	}
	if err := ra.UpdateCertificate("alice", &Certificate{ClientID: "alice"}); err != nil {
		t.Fatal(err)
	}
	if err := ra.Delete("alice"); err != nil {
		t.Fatal(err)
	}
	if _, ok := ra.PublicKey("alice"); ok {
		t.Error("key survived Delete")
	}
	if _, ok := ra.Certificate("alice"); ok {
		t.Error("certificate survived Delete")
	}
	if ra.Len() != 0 {
		t.Errorf("Len = %d", ra.Len())
	}
}

func TestCADeprovision(t *testing.T) {
	ca, client := testCAPair(t)
	// Establish state in all three stores: image (enrolled by
	// testCAPair), RA entry and an open session.
	ch, err := ca.BeginHandshake(client.ID)
	if err != nil {
		t.Fatal(err)
	}
	m1, err := client.Respond(ch)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := ca.Authenticate(t.Context(), AuthRequest{Client: client.ID, Nonce: ch.Nonce, M1: m1}); err != nil {
		t.Fatal(err)
	}
	if _, err := ca.BeginHandshake(client.ID); err != nil {
		t.Fatal(err)
	}

	if err := ca.Deprovision(client.ID); err != nil {
		t.Fatal(err)
	}
	if _, err := ca.BeginHandshake(client.ID); !errors.Is(err, ErrUnknownClient) {
		t.Fatalf("deprovisioned client still enrolls handshakes: %v", err)
	}
	if ca.Sessions().Len() != 0 {
		t.Error("session survived Deprovision")
	}
}

// journalRecorder counts Journal callbacks and can refuse them.
type journalRecorder struct {
	fail  bool
	opens int
	close int
}

func (j *journalRecorder) ImagePut(ClientID, []byte) error           { return j.err() }
func (j *journalRecorder) ImageDelete(ClientID) error                { return j.err() }
func (j *journalRecorder) RAKeyUpdate(ClientID, []byte) error        { return j.err() }
func (j *journalRecorder) RACertUpdate(ClientID, *Certificate) error { return j.err() }
func (j *journalRecorder) RADelete(ClientID) error                   { return j.err() }
func (j *journalRecorder) SessionOpen(ClientID, Challenge) error {
	if j.fail {
		return errors.New("journal down")
	}
	j.opens++
	return nil
}
func (j *journalRecorder) SessionClose(ClientID) error {
	if j.fail {
		return errors.New("journal down")
	}
	j.close++
	return nil
}
func (j *journalRecorder) err() error {
	if j.fail {
		return errors.New("journal down")
	}
	return nil
}

// TestJournalVeto: a failing journal must keep memory behind the log —
// the mutation is refused, not applied.
func TestJournalVeto(t *testing.T) {
	j := &journalRecorder{fail: true}

	ra := NewRA()
	ra.SetJournal(j)
	if err := ra.Update("alice", []byte("pk")); err == nil {
		t.Fatal("RA.Update applied despite journal failure")
	}
	if _, ok := ra.PublicKey("alice"); ok {
		t.Fatal("vetoed key visible in memory")
	}

	tab := NewSessionTable()
	tab.SetJournal(j)
	if err := tab.Open("alice", Challenge{Nonce: 1, AddressMap: []int{1}}); err == nil {
		t.Fatal("session opened despite journal failure")
	}
	if tab.Len() != 0 {
		t.Fatal("vetoed session visible in memory")
	}

	j.fail = false
	if err := tab.Open("alice", Challenge{Nonce: 1, AddressMap: []int{1}}); err != nil {
		t.Fatal(err)
	}
	key := [32]byte{1}
	store, _ := NewImageStore(key)
	store.SetJournal(j)
	j.fail = true
	if err := store.Put("alice", testImage(t)); err == nil {
		t.Fatal("image stored despite journal failure")
	}
	if store.Has("alice") {
		t.Fatal("vetoed image visible in memory")
	}

	// Take with a failing close journal reports no session (memory never
	// ahead of the log) and keeps the session for after the journal heals.
	if _, ok := tab.Take("alice", 1); ok {
		t.Fatal("session consumed despite close-journal failure")
	}
	j.fail = false
	if _, ok := tab.Take("alice", 1); !ok {
		t.Fatal("session lost after journal recovered")
	}
	if j.opens != 1 || j.close != 1 {
		t.Fatalf("journal saw %d opens / %d closes", j.opens, j.close)
	}
}
