package core

import (
	"encoding/binary"

	"rbcsalted/internal/bitslice"
	"rbcsalted/internal/keccak"
	"rbcsalted/internal/sha1"
	"rbcsalted/internal/u256"
)

// MatchWidth is the number of candidate seeds a BatchMatcher evaluates
// per call: one bit-sliced hash compression covers exactly this many
// lanes.
const MatchWidth = bitslice.Width

// Matcher decides whether candidate seeds match the search target. A
// Matcher instance is owned by a single worker goroutine, so
// implementations need not be safe for concurrent use; shared state
// behind a Matcher (a key generator, a counter) must synchronize itself.
type Matcher interface {
	// Match reports whether one candidate matches.
	Match(candidate u256.Uint256) bool
}

// BatchMatcher is a Matcher that can evaluate up to MatchWidth
// candidates in one call. The host search accumulates candidates into a
// MatchWidth-slot buffer and matches them in one shot; implementations
// that hash can amortize the per-seed fixed costs across the batch.
type BatchMatcher interface {
	Matcher
	// MatchBatch evaluates cands[:n] and returns a bitmask with bit i
	// set iff cands[i] matches. n is at most MatchWidth.
	MatchBatch(cands *[MatchWidth]u256.Uint256, n int) uint64
}

// MatchFunc adapts a plain predicate to Matcher (scalar-only).
type MatchFunc func(u256.Uint256) bool

// Match implements Matcher.
func (f MatchFunc) Match(candidate u256.Uint256) bool { return f(candidate) }

// MatcherFactory builds one Matcher per search worker. Factories are
// called once per worker goroutine, from that goroutine.
type MatcherFactory func() Matcher

// MatchFuncFactory wraps a concurrency-safe predicate as a
// MatcherFactory; every worker shares the same function.
func MatchFuncFactory(f func(u256.Uint256) bool) MatcherFactory {
	return func() Matcher { return MatchFunc(f) }
}

// scalarOnly hides a Matcher's batch capability, forcing the host
// search's one-seed-at-a-time path.
type scalarOnly struct{ m Matcher }

func (s scalarOnly) Match(candidate u256.Uint256) bool { return s.m.Match(candidate) }

// ScalarMatcher strips the BatchMatcher capability from factory's
// matchers, forcing the scalar path. It is the correctness oracle for
// the batched engine and the baseline of the throughput benchmarks.
func ScalarMatcher(factory MatcherFactory) MatcherFactory {
	return func() Matcher { return scalarOnly{factory()} }
}

// HashMatcher matches candidates whose fixed-padding digest equals a
// target digest - the RBC-SALTED search predicate. It implements both
// match paths:
//
//   - Match hashes one seed with the scalar fast path (sha1.SumSeed /
//     keccak.Sum256Seed, no Digest boxing) and quick-rejects on the first
//     64 digest bits before comparing the rest - one uint64 compare
//     decides all but a ~2^-64 fraction of candidates.
//   - MatchBatch packs MatchWidth seeds via the bit-sliced engine, runs
//     one gate-level compression for all lanes, and AND-reduces the
//     digest bit columns against the target into a 64-bit match mask -
//     the software transpose of the APU's associative compare (§3.3).
//     Partial batches fall back to the scalar path.
//
// A HashMatcher is single-worker state; build one per goroutine via
// HashMatcherFactory.
type HashMatcher struct {
	alg   HashAlg
	quick uint64    // first 64 digest bits, big-endian
	sha1T [5]uint32 // SHA-1 target digest words (big-endian)
	sha3T [4]uint64 // SHA-3 target digest lanes (little-endian)
	raw   [32]byte  // full target digest bytes
	eng   bitslice.Engine

	// UseSliced selects the bit-sliced compression for full batches.
	// NewHashMatcher sets the measured-faster default per algorithm:
	// true for SHA-3, whose boolean Keccak rounds bit-slice several
	// times faster than 64 scalar permutations, and false for SHA-1,
	// whose modular adds decompose into ripple-carry gate chains that
	// run slower in software than the hardware adder the scalar path
	// uses (the APU only wins them back with massive hardware
	// parallelism). The equivalence tests flip it to cross-validate
	// both paths.
	UseSliced bool
}

// NewHashMatcher builds a HashMatcher for one (algorithm, target) pair.
func NewHashMatcher(alg HashAlg, target Digest) *HashMatcher {
	m := &HashMatcher{alg: alg, raw: target.b, UseSliced: alg == SHA3}
	m.quick = binary.BigEndian.Uint64(target.b[:8])
	for w := range m.sha1T {
		m.sha1T[w] = binary.BigEndian.Uint32(target.b[w*4:])
	}
	for l := range m.sha3T {
		m.sha3T[l] = binary.LittleEndian.Uint64(target.b[l*8:])
	}
	return m
}

// HashMatcherFactory returns a MatcherFactory producing one HashMatcher
// per worker. This is the default matcher of every hashing backend.
//
// For algorithms where the batch compression measures no faster than
// the scalar fast path (SHA-1; see HashMatcher.UseSliced), the matcher
// is returned without its BatchMatcher capability so the search engine
// skips batch accumulation entirely instead of buffering candidates
// just to hash them one at a time.
func HashMatcherFactory(alg HashAlg, target Digest) MatcherFactory {
	return func() Matcher {
		m := NewHashMatcher(alg, target)
		if !m.UseSliced {
			return scalarOnly{m}
		}
		return m
	}
}

// Match implements Matcher with the scalar quick-reject path.
func (m *HashMatcher) Match(candidate u256.Uint256) bool {
	raw := candidate.Bytes()
	switch m.alg {
	case SHA1:
		sum := sha1.SumSeed(&raw)
		if binary.BigEndian.Uint64(sum[:8]) != m.quick {
			return false
		}
		return [20]byte(m.raw[:20]) == sum
	case SHA3:
		sum := keccak.Sum256Seed(&raw)
		if binary.BigEndian.Uint64(sum[:8]) != m.quick {
			return false
		}
		return m.raw == sum
	default:
		panic("core: HashMatcher with unknown algorithm")
	}
}

// MatchBatch implements BatchMatcher with one bit-sliced compression for
// a full batch; short batches use the scalar path (the final partial
// batch of a worker's range, and ranges smaller than MatchWidth), as do
// algorithms whose scalar path measures faster (see UseSliced).
func (m *HashMatcher) MatchBatch(cands *[MatchWidth]u256.Uint256, n int) uint64 {
	if n < MatchWidth || !m.UseSliced {
		var mask uint64
		for i := 0; i < n; i++ {
			if m.Match(cands[i]) {
				mask |= 1 << uint(i)
			}
		}
		return mask
	}
	var seeds [MatchWidth][32]byte
	for i := range cands {
		seeds[i] = cands[i].Bytes()
	}
	switch m.alg {
	case SHA1:
		words := m.eng.SHA1SeedsSliced(&seeds)
		return bitslice.MatchSliced32(words[:], m.sha1T[:])
	case SHA3:
		lanes := m.eng.SHA3Seeds256Sliced(&seeds)
		return bitslice.MatchSliced64(lanes[:], m.sha3T[:])
	default:
		panic("core: HashMatcher with unknown algorithm")
	}
}
