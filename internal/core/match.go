package core

import (
	"encoding/binary"
	"math/bits"
	"time"

	"rbcsalted/internal/bitslice"
	"rbcsalted/internal/keccak"
	"rbcsalted/internal/sha1"
	"rbcsalted/internal/u256"
)

// MatchWidth is the capacity of a BatchMatcher call: the largest number
// of candidate seeds any batch engine evaluates at once (the 256-lane
// wide bit-sliced compression). Engines with a smaller natural stride
// advertise it via BatchWidth.
const MatchWidth = bitslice.Width256

// MatchMask is a per-lane match bitmask for up to MatchWidth candidates:
// bit i%64 of word i/64 reports candidate i.
type MatchMask [4]uint64

// Any reports whether any lane matched.
func (m MatchMask) Any() bool { return m[0]|m[1]|m[2]|m[3] != 0 }

// Bit reports whether candidate i matched.
func (m MatchMask) Bit(i int) bool { return m[i>>6]>>(uint(i)&63)&1 == 1 }

// SetBit marks candidate i as matched.
func (m *MatchMask) SetBit(i int) { m[i>>6] |= 1 << (uint(i) & 63) }

// ClearBit unmarks candidate i.
func (m *MatchMask) ClearBit(i int) { m[i>>6] &^= 1 << (uint(i) & 63) }

// FirstLane returns the lowest matched candidate index, or -1 if none.
// Combined with ClearBit it iterates matches in candidate order.
func (m MatchMask) FirstLane() int {
	for w, v := range m {
		if v != 0 {
			return w<<6 | bits.TrailingZeros64(v)
		}
	}
	return -1
}

// Trim clears all lanes at index n and above - the pad-lane mask of a
// partial batch.
func (m *MatchMask) Trim(n int) {
	if n >= MatchWidth {
		return
	}
	if n < 0 {
		n = 0
	}
	w := n >> 6
	m[w] &= 1<<(uint(n)&63) - 1
	for w++; w < 4; w++ {
		m[w] = 0
	}
}

// Count returns the number of matched lanes.
func (m MatchMask) Count() int {
	return bits.OnesCount64(m[0]) + bits.OnesCount64(m[1]) +
		bits.OnesCount64(m[2]) + bits.OnesCount64(m[3])
}

// Matcher decides whether candidate seeds match the search target. A
// Matcher instance is owned by a single worker goroutine, so
// implementations need not be safe for concurrent use; shared state
// behind a Matcher (a key generator, a counter) must synchronize itself.
type Matcher interface {
	// Match reports whether one candidate matches.
	Match(candidate u256.Uint256) bool
}

// BatchMatcher is a Matcher that can evaluate up to MatchWidth
// candidates in one call. The host search accumulates candidates into a
// MatchWidth-slot buffer and matches them BatchWidth at a time;
// implementations that hash can amortize the per-seed fixed costs across
// the batch.
type BatchMatcher interface {
	Matcher
	// BatchWidth returns the engine's preferred candidates-per-call
	// stride, in (0, MatchWidth]. The host search fills batches to this
	// width; shorter final batches are still evaluated in one call.
	BatchWidth() int
	// MatchBatch evaluates cands[:n] and returns the per-lane match
	// mask. n is at most MatchWidth; lanes n and above of the result are
	// always clear. Implementations must evaluate partial batches with
	// the same engine as full ones (padding internally as needed), so a
	// candidate's verdict never depends on its batch's fill level.
	MatchBatch(cands *[MatchWidth]u256.Uint256, n int) MatchMask
}

// DeltaBatchMatcher is a BatchMatcher that can hold the candidate batch
// resident in its internal bit-sliced layout across calls and advance it
// by sparse XOR deltas of the candidates' flip masks, instead of
// re-marshalling (transpose included) every batch. The host search
// feeds it raw iterator masks (iterseq.FillMasks) rather than
// materialized seeds; candidates are only reconstructed for recorded
// hits. See DESIGN.md §16.
type DeltaBatchMatcher interface {
	BatchMatcher
	// DeltaCapable reports whether the currently selected kernel wants
	// the mask-form fill path. The host search checks it per worker and
	// falls back to the materialized-candidate loop when false.
	DeltaCapable() bool
	// MatchDeltaBatch evaluates the candidates base^masks[i] for i < n
	// and returns the per-lane match mask, with the same padding and
	// trimming contract as MatchBatch. Consecutive calls must follow one
	// iterator's mask sequence; the pad region masks[n:] may be
	// overwritten. Callers must hold DeltaCapable() true.
	MatchDeltaBatch(base u256.Uint256, masks *[MatchWidth]u256.Uint256, n int) MatchMask
	// InvalidateDelta breaks the resident delta chain: the next
	// MatchDeltaBatch packs from scratch. Required on iterator restarts
	// and task switches, where a lane's previous mask no longer precedes
	// its next one in any single iterator sequence.
	InvalidateDelta()
}

// MatchFunc adapts a plain predicate to Matcher (scalar-only).
type MatchFunc func(u256.Uint256) bool

// Match implements Matcher.
func (f MatchFunc) Match(candidate u256.Uint256) bool { return f(candidate) }

// MatcherFactory builds one Matcher per search worker. Factories are
// called once per worker goroutine, from that goroutine.
type MatcherFactory func() Matcher

// MatchFuncFactory wraps a concurrency-safe predicate as a
// MatcherFactory; every worker shares the same function.
func MatchFuncFactory(f func(u256.Uint256) bool) MatcherFactory {
	return func() Matcher { return MatchFunc(f) }
}

// scalarOnly hides a Matcher's batch capability, forcing the host
// search's one-seed-at-a-time path.
type scalarOnly struct{ m Matcher }

func (s scalarOnly) Match(candidate u256.Uint256) bool { return s.m.Match(candidate) }

// ScalarMatcher strips the BatchMatcher capability from factory's
// matchers, forcing the scalar path. It is the correctness oracle for
// the batched engine and the baseline of the throughput benchmarks.
func ScalarMatcher(factory MatcherFactory) MatcherFactory {
	return func() Matcher { return scalarOnly{factory()} }
}

// HashMatcher matches candidates whose fixed-padding digest equals a
// target digest - the RBC-SALTED search predicate. It implements both
// match paths:
//
//   - Match hashes one seed with the scalar fast path (sha1.SumSeed /
//     keccak.Sum256Seed, no Digest boxing) and quick-rejects on the first
//     64 digest bits before comparing the rest - one uint64 compare
//     decides all but a ~2^-64 fraction of candidates.
//   - MatchBatch evaluates up to MatchWidth candidates with the batch
//     kernel the calibration table selected for the algorithm (see
//     BatchKernel): a bit-sliced compression whose digest bit columns
//     are AND-reduced against the target into the match mask - the
//     software transpose of the APU's associative compare (§3.3) - or
//     the multi-buffer interleaved scalar compression for SHA-1.
//     Partial batches are padded with the last candidate and the pad
//     lanes masked out, so every candidate sees the same engine.
//
// A HashMatcher is single-worker state; build one per goroutine via
// HashMatcherFactory.
type HashMatcher struct {
	alg   HashAlg
	quick uint64    // first 64 digest bits, big-endian
	sha1T [5]uint32 // SHA-1 target digest words (big-endian)
	sha3T [4]uint64 // SHA-3 target digest lanes (little-endian)
	raw   [32]byte  // full target digest bytes
	eng   bitslice.Engine

	// Kernel selects the batch engine. NewHashMatcher sets the
	// calibration table's measured-fastest kernel for the algorithm
	// (DefaultKernel); the equivalence tests force specific kernels to
	// cross-validate every path. A kernel the algorithm has no
	// implementation for falls back per batch group: KernelSliced256
	// degrades to KernelSliced64, anything else to the scalar loop.
	Kernel BatchKernel

	// seeds and vals are batch staging buffers, kept on the matcher so
	// the hot loop never allocates. vals holds the four message lanes of
	// each candidate for the wide path, extracted straight from the
	// Uint256 limbs (no byte serialization round trip).
	seeds [MatchWidth][32]byte
	vals  [4][MatchWidth]uint64

	// Sliced-domain delta state (KernelSliced256Delta, DESIGN.md §16).
	// deltaMsg holds the batch's four message lanes resident in flat
	// sliced layout; deltaPrev remembers each lane's last flip mask so the
	// next batch can advance it by the sparse XOR difference. deltaLive
	// marks the chain coherent: it drops on Reset, InvalidateDelta and any
	// repack MatchBatch (which reuses deltaMsg as scratch), forcing the
	// next MatchDeltaBatch to pack from scratch.
	deltaMsg  [4]bitslice.Slice256
	deltaPrev [MatchWidth]u256.Uint256
	deltaLive bool
}

// NewHashMatcher builds a HashMatcher for one (algorithm, target) pair.
func NewHashMatcher(alg HashAlg, target Digest) *HashMatcher {
	m := &HashMatcher{}
	m.Reset(alg, target)
	return m
}

// Reset reconfigures the matcher for a new (algorithm, target) pair,
// re-reads the calibration table and invalidates any resident sliced
// candidate state. A delta chain is only meaningful within one search's
// iterator sequence, so a matcher drawn from a reuse pool must never
// carry it across a task switch; everything else on the matcher is
// derived from (alg, target) or overwritten before use.
func (m *HashMatcher) Reset(alg HashAlg, target Digest) {
	m.alg = alg
	m.raw = target.b
	m.Kernel = DefaultKernel(alg)
	m.quick = binary.BigEndian.Uint64(target.b[:8])
	for w := range m.sha1T {
		m.sha1T[w] = binary.BigEndian.Uint32(target.b[w*4:])
	}
	for l := range m.sha3T {
		m.sha3T[l] = binary.LittleEndian.Uint64(target.b[l*8:])
	}
	m.deltaLive = false
}

// HashMatcherFactory returns a MatcherFactory producing one HashMatcher
// per worker. This is the default matcher of every hashing backend.
//
// When the calibration table holds no batch kernel measured faster than
// the scalar fast path for the algorithm, the matcher is returned
// without its BatchMatcher capability, so the search engine skips batch
// accumulation entirely instead of buffering candidates just to hash
// them one at a time.
func HashMatcherFactory(alg HashAlg, target Digest) MatcherFactory {
	return func() Matcher {
		m := NewHashMatcher(alg, target)
		if m.Kernel == KernelScalar {
			return scalarOnly{m}
		}
		return m
	}
}

// Match implements Matcher with the scalar quick-reject path.
func (m *HashMatcher) Match(candidate u256.Uint256) bool {
	raw := candidate.Bytes()
	switch m.alg {
	case SHA1:
		sum := sha1.SumSeed(&raw)
		if binary.BigEndian.Uint64(sum[:8]) != m.quick {
			return false
		}
		return [20]byte(m.raw[:20]) == sum
	case SHA3:
		sum := keccak.Sum256Seed(&raw)
		if binary.BigEndian.Uint64(sum[:8]) != m.quick {
			return false
		}
		return m.raw == sum
	default:
		panic("core: HashMatcher with unknown algorithm")
	}
}

// BatchWidth implements BatchMatcher: the selected kernel's natural
// stride. The 256-lane wide compression wants full 256-candidate
// batches; the 64-wide sliced and the 4-way multi-buffer kernels run in
// 64-candidate strides (the multi-buffer kernel consumes them in
// interleave groups internally), which keeps early-exit polling and
// covered accounting finer-grained at no amortization cost.
func (m *HashMatcher) BatchWidth() int {
	if (m.Kernel == KernelSliced256 || m.Kernel == KernelSliced256Delta) &&
		m.alg == SHA3 {
		return bitslice.Width256
	}
	return bitslice.Width
}

// MatchBatch implements BatchMatcher. Full 256-candidate batches take
// one wide compression when KernelSliced256 is selected; everything
// else - including the padded tail groups of partial batches - runs in
// 64-candidate groups so a short batch never pays for a full wide
// compression.
func (m *HashMatcher) MatchBatch(cands *[MatchWidth]u256.Uint256, n int) MatchMask {
	var mask MatchMask
	if n <= 0 {
		return mask
	}
	if n > MatchWidth {
		n = MatchWidth
	}
	kernel := m.Kernel
	if kernel == KernelScalar {
		for i := 0; i < n; i++ {
			if m.Match(cands[i]) {
				mask.SetBit(i)
			}
		}
		return mask
	}
	if kernel == KernelSliced256Delta {
		// The delta kernel's plain-candidate entry is the repack path:
		// without the mask form there is no delta to apply, so the batch
		// is evaluated exactly like KernelSliced256 — and any resident
		// delta chain is invalidated, because the repack below reuses
		// deltaMsg as its pack buffer.
		kernel = KernelSliced256
		m.deltaLive = false
	}
	hbm := loadHostBatchMetrics()

	if kernel == KernelSliced256 && m.alg == SHA3 && n == MatchWidth {
		// Wide path: feed the message lanes straight from the Uint256
		// limbs. A seed's big-endian byte stream hashes as little-endian
		// 64-bit lanes, so lane l of candidate i is limb 3-l byte-swapped.
		var t0 time.Time
		if hbm != nil {
			t0 = time.Now()
		}
		for i := 0; i < MatchWidth; i++ {
			m.vals[0][i] = bits.ReverseBytes64(cands[i].Limb(3))
			m.vals[1][i] = bits.ReverseBytes64(cands[i].Limb(2))
			m.vals[2][i] = bits.ReverseBytes64(cands[i].Limb(1))
			m.vals[3][i] = bits.ReverseBytes64(cands[i].Limb(0))
		}
		bitslice.PackSeedVals256(&m.deltaMsg, &m.vals)
		if hbm != nil {
			hbm.Pack.Observe(float64(time.Since(t0).Nanoseconds()))
		}
		lanes := m.eng.SHA3Msg256WideSliced(&m.deltaMsg)
		mask = MatchMask(bitslice.MatchSliced256(lanes[:], m.sha3T[:]))
		return mask
	}

	var t0 time.Time
	if hbm != nil {
		t0 = time.Now()
	}
	for i := 0; i < n; i++ {
		m.seeds[i] = cands[i].Bytes()
	}
	if hbm != nil {
		hbm.Pack.Observe(float64(time.Since(t0).Nanoseconds()))
	}

	// 64-candidate groups; the last group is padded with the final
	// candidate and its pad lanes trimmed from the combined mask.
	for g := 0; g*bitslice.Width < n; g++ {
		lo := g * bitslice.Width
		hi := lo + bitslice.Width
		if hi > n {
			for i := n; i < hi; i++ {
				m.seeds[i] = m.seeds[n-1]
			}
		}
		grp := (*[bitslice.Width][32]byte)(m.seeds[lo:hi])
		var gm uint64
		switch {
		case m.alg == SHA1 && kernel == KernelMulti4:
			gm = m.matchMulti4(grp)
		case m.alg == SHA1:
			words := m.eng.SHA1SeedsSliced(grp)
			gm = bitslice.MatchSliced32(words[:], m.sha1T[:])
		default:
			lanes := m.eng.SHA3Seeds256Sliced(grp)
			gm = bitslice.MatchSliced64(lanes[:], m.sha3T[:])
		}
		mask[g] = gm
	}
	mask.Trim(n)
	return mask
}

// DeltaCapable implements DeltaBatchMatcher: the mask-form fill path is
// wanted exactly when the sliced-domain delta kernel is selected (and
// implemented, i.e. SHA-3).
func (m *HashMatcher) DeltaCapable() bool {
	return m.Kernel == KernelSliced256Delta && m.alg == SHA3
}

// InvalidateDelta implements DeltaBatchMatcher.
func (m *HashMatcher) InvalidateDelta() { m.deltaLive = false }

// MatchDeltaBatch implements DeltaBatchMatcher: evaluate the candidates
// base^masks[i] for i < n with the batch resident in sliced layout. The
// first call of a chain packs the message lanes from scratch (limb
// extraction plus four 64x64 bit transposes — the price KernelSliced256
// pays every batch); each later call advances lane i by the XOR of its
// consecutive masks, which for Hamming-distance-k masks is at most 2k
// single-word XORs (bitslice.DeltaFill). Partial batches are padded in
// place with masks[n-1] — the pad region of masks is overwritten — kept
// in the chain like any other lane, and trimmed from the result, so
// mid-batch winners and covered accounting agree lane-exactly with every
// other engine.
func (m *HashMatcher) MatchDeltaBatch(base u256.Uint256, masks *[MatchWidth]u256.Uint256, n int) MatchMask {
	var mask MatchMask
	if n <= 0 {
		return mask
	}
	if n > MatchWidth {
		n = MatchWidth
	}
	if !m.DeltaCapable() {
		panic("core: MatchDeltaBatch on a non-delta kernel (check DeltaCapable)")
	}
	hbm := loadHostBatchMetrics()
	var t0 time.Time
	if hbm != nil {
		t0 = time.Now()
	}
	for i := n; i < MatchWidth; i++ {
		masks[i] = masks[n-1]
	}
	if !m.deltaLive {
		// Prime the chain: materialize base^mask per lane and pack once.
		for i := 0; i < MatchWidth; i++ {
			cand := base.Xor(masks[i])
			m.vals[0][i] = bits.ReverseBytes64(cand.Limb(3))
			m.vals[1][i] = bits.ReverseBytes64(cand.Limb(2))
			m.vals[2][i] = bits.ReverseBytes64(cand.Limb(1))
			m.vals[3][i] = bits.ReverseBytes64(cand.Limb(0))
		}
		bitslice.PackSeedVals256(&m.deltaMsg, &m.vals)
		m.deltaLive = true
	} else {
		// Advance: lane i moved from deltaPrev[i] to masks[i]; base
		// cancels out of the XOR, so the seed-domain delta is just the
		// mask difference.
		for i := 0; i < MatchWidth; i++ {
			prev := &m.deltaPrev[i]
			d0 := masks[i].Limb(0) ^ prev.Limb(0)
			d1 := masks[i].Limb(1) ^ prev.Limb(1)
			d2 := masks[i].Limb(2) ^ prev.Limb(2)
			d3 := masks[i].Limb(3) ^ prev.Limb(3)
			if d0|d1|d2|d3 != 0 {
				bitslice.DeltaFill(&m.deltaMsg, i, d0, d1, d2, d3)
			}
		}
	}
	copy(m.deltaPrev[:], masks[:])
	if hbm != nil {
		hbm.Pack.Observe(float64(time.Since(t0).Nanoseconds()))
	}
	lanes := m.eng.SHA3Msg256WideSliced(&m.deltaMsg)
	mask = MatchMask(bitslice.MatchSliced256(lanes[:], m.sha3T[:]))
	mask.Trim(n)
	return mask
}

// matchMulti4 evaluates one 64-candidate group with the interleaved
// multi-buffer SHA-1 kernel: sixteen 4-lane compressions, each lane's
// digest words compared against the target (first-word compare rejects
// all but a ~2^-32 fraction).
func (m *HashMatcher) matchMulti4(grp *[bitslice.Width][32]byte) uint64 {
	var words [sha1.MultiWidth][5]uint32
	var gm uint64
	for q := 0; q < bitslice.Width; q += sha1.MultiWidth {
		quad := (*[sha1.MultiWidth][32]byte)(grp[q : q+sha1.MultiWidth])
		sha1.SeedWords4(quad, &words)
		for l := 0; l < sha1.MultiWidth; l++ {
			h := &words[l]
			if h[0] == m.sha1T[0] && h[1] == m.sha1T[1] && h[2] == m.sha1T[2] &&
				h[3] == m.sha1T[3] && h[4] == m.sha1T[4] {
				gm |= 1 << uint(q+l)
			}
		}
	}
	return gm
}
