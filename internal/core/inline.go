package core

import (
	"context"
	"fmt"
	"time"

	"rbcsalted/internal/u256"
)

// The distance-progressive fast path: a healthy PUF authenticates at
// small Hamming distance almost always, and shells d <= 1 are a few
// hundred candidates — microseconds on the host BatchMatcher. Running
// them inline on the caller's goroutine means the common case never
// takes a queue slot, never waits behind a d=5 straggler, and never
// pays a dispatch round-trip; only the rare large-distance tail
// escalates to the configured backend (with Task.MinDistance set so the
// inline shells are not re-covered).

// Inline-depth policy values for CAConfig.InlineDepth.
const (
	// DefaultInlineDepth covers shells d <= 1 inline: 257 candidates,
	// one full 256-wide bit-sliced batch plus a one-candidate tail.
	DefaultInlineDepth = 1
	// MaxInlineDepth bounds the inline budget: C(256,2) = 32640
	// candidates is already ~1 ms of caller-goroutine work; anything
	// larger belongs on a backend.
	MaxInlineDepth = 2
	// InlineDisabled turns the inline fast path off entirely; every
	// authentication goes to the backend (the pre-progressive behaviour).
	InlineDisabled = -1
)

// InlineName is the backend name stamped on trace events emitted by the
// inline fast path.
const InlineName = "inline-host"

// SearchInline covers shells 0..depth of task synchronously on the
// calling goroutine with the host BatchMatcher. It is the first stage
// of the distance-progressive serving path: the caller escalates to a
// real backend with task.MinDistance = depth+1 only when SearchInline
// neither finds the seed nor exhausts the ball.
//
// depth is clamped to task.MaxDistance. Cancellation is polled every
// CheckInterval seeds, like any backend; the partial Result is returned
// with ctx.Err().
func SearchInline(ctx context.Context, task Task, depth int) (Result, error) {
	if ctx == nil {
		ctx = context.Background()
	}
	if depth > task.MaxDistance {
		depth = task.MaxDistance
	}
	if depth > MaxInlineDepth {
		return Result{}, fmt.Errorf("core: inline depth %d exceeds maximum %d", depth, MaxInlineDepth)
	}
	alg := task.Target.Alg
	start := time.Now()
	var res Result

	TraceSearchStart(task, InlineName)

	// Distance 0: the base probe.
	res.HashesExecuted++
	res.SeedsCovered++
	if HashSeed(alg, task.Base).Equal(task.Target) {
		res.Found = true
		res.Seed = task.Base
		res.Distance = 0
	}

	deadline := time.Time{}
	if task.TimeLimit > 0 {
		deadline = start.Add(task.TimeLimit)
	}
	factory := HashMatcherFactory(alg, task.Target)
	var err error
	for d := 1; d <= depth && !(res.Found && !task.Exhaustive); d++ {
		shellStart := time.Now()
		var (
			found    bool
			seed     u256.Uint256
			covered  uint64
			timedOut bool
		)
		found, seed, covered, timedOut, err = SearchShellHost(
			ctx, task.Base, d, task.Method, 1, task.EffectiveCheckInterval(),
			task.Exhaustive, deadline, factory)
		st := ShellStat{
			Distance:      d,
			SeedsCovered:  covered,
			DeviceSeconds: time.Since(shellStart).Seconds(),
		}
		res.Shells = append(res.Shells, st)
		TraceShell(task, InlineName, st)
		res.SeedsCovered += covered
		res.HashesExecuted += covered
		if found && !res.Found {
			res.Found = true
			res.Seed = seed
			res.Distance = d
		}
		if err != nil {
			break
		}
		if timedOut {
			res.TimedOut = true
			break
		}
	}
	res.WallSeconds = time.Since(start).Seconds()
	res.DeviceSeconds = res.WallSeconds
	TraceSearchEnd(task, InlineName, res, err)
	return res, err
}
