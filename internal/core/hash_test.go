package core

import (
	stdsha1 "crypto/sha1"
	"crypto/sha3"
	"testing"
	"testing/quick"

	"rbcsalted/internal/u256"
)

func TestHashSeedMatchesReference(t *testing.T) {
	f := func(a, b, c, d uint64) bool {
		seed := u256.New(a, b, c, d)
		raw := seed.Bytes()
		got1 := HashSeed(SHA1, seed)
		want1 := stdsha1.Sum(raw[:])
		if string(got1.Bytes()) != string(want1[:]) {
			return false
		}
		got3 := HashSeed(SHA3, seed)
		want3 := sha3.Sum256(raw[:])
		return string(got3.Bytes()) == string(want3[:])
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

func TestDigestSizes(t *testing.T) {
	if SHA1.DigestSize() != 20 || SHA3.DigestSize() != 32 {
		t.Error("digest sizes wrong")
	}
	if SHA1.String() != "SHA-1" || SHA3.String() != "SHA-3" {
		t.Error("names wrong")
	}
	if HashAlg(9).String() == "" {
		t.Error("unknown alg must still format")
	}
	defer func() {
		if recover() == nil {
			t.Error("expected panic for unknown alg DigestSize")
		}
	}()
	HashAlg(9).DigestSize()
}

func TestDigestEqual(t *testing.T) {
	s := u256.FromUint64(7)
	a := HashSeed(SHA3, s)
	b := HashSeed(SHA3, s)
	c := HashSeed(SHA3, u256.FromUint64(8))
	d1 := HashSeed(SHA1, s)
	if !a.Equal(b) {
		t.Error("equal digests not Equal")
	}
	if a.Equal(c) {
		t.Error("different seeds Equal")
	}
	if a.Equal(d1) {
		t.Error("different algorithms Equal")
	}
	if a.String() == "" || len(a.String()) != 64 {
		t.Errorf("SHA3 digest hex = %q", a.String())
	}
	if len(d1.String()) != 40 {
		t.Errorf("SHA1 digest hex = %q", d1.String())
	}
}

func TestDigestFromBytesRoundTrip(t *testing.T) {
	orig := HashSeed(SHA1, u256.FromUint64(99))
	got, err := DigestFromBytes(SHA1, orig.Bytes())
	if err != nil || !got.Equal(orig) {
		t.Errorf("round trip failed: %v", err)
	}
	if _, err := DigestFromBytes(SHA1, make([]byte, 32)); err == nil {
		t.Error("expected size error for 32-byte SHA-1 digest")
	}
	if _, err := DigestFromBytes(SHA3, make([]byte, 20)); err == nil {
		t.Error("expected size error for 20-byte SHA-3 digest")
	}
}

func TestSaltSeedBreaksDigestCorrespondence(t *testing.T) {
	seed := u256.FromUint64(0xABCDEF)
	salted := SaltSeed(seed, DefaultSaltRotation)
	if salted.Equal(seed) {
		t.Error("salt is a no-op")
	}
	if HashSeed(SHA3, salted).Equal(HashSeed(SHA3, seed)) {
		t.Error("salted seed hashes identically")
	}
	// Salting must be deterministic and shared: same rotation, same result.
	if !SaltSeed(seed, DefaultSaltRotation).Equal(salted) {
		t.Error("salt not deterministic")
	}
}
