package core

import (
	"math/rand/v2"
	"testing"

	"rbcsalted/internal/combin"
	"rbcsalted/internal/iterseq"
	"rbcsalted/internal/u256"
)

func TestPlanShellsLocatesMatch(t *testing.T) {
	r := rand.New(rand.NewPCG(1, 1))
	for _, method := range iterseq.Methods() {
		base := u256.New(r.Uint64(), r.Uint64(), r.Uint64(), r.Uint64())
		oracle := base.FlipBit(3).FlipBit(77).FlipBit(200)
		task := Task{Base: base, MaxDistance: 5, Method: method, Oracle: &oracle}
		plans, err := PlanShells(task, 8)
		if err != nil {
			t.Fatalf("%v: %v", method, err)
		}
		if len(plans) != 5 {
			t.Fatalf("%v: %d plans", method, len(plans))
		}
		for _, p := range plans {
			if p.Distance == 3 {
				if !p.HasMatch {
					t.Fatalf("%v: match not planned in shell 3", method)
				}
				if p.MatchLocal == 0 || p.MatchLocal > p.PerWorkerMax {
					t.Errorf("%v: MatchLocal %d outside (0, %d]", method, p.MatchLocal, p.PerWorkerMax)
				}
			} else if p.HasMatch {
				t.Errorf("%v: spurious match in shell %d", method, p.Distance)
			}
		}
	}
}

// TestPlanMatchesRealIteration cross-validates the analytic match rank
// against actually walking the iterator: the worker and local offset the
// plan predicts must be exactly where the matching combination appears.
func TestPlanMatchesRealIteration(t *testing.T) {
	r := rand.New(rand.NewPCG(2, 2))
	base := u256.New(r.Uint64(), r.Uint64(), r.Uint64(), r.Uint64())
	oracle := base.FlipBit(9).FlipBit(41)
	const workers = 5
	for _, method := range iterseq.Methods() {
		task := Task{Base: base, MaxDistance: 2, Method: method, Oracle: &oracle}
		plans, err := PlanShells(task, workers)
		if err != nil {
			t.Fatal(err)
		}
		p := plans[1] // shell d=2
		if !p.HasMatch {
			t.Fatalf("%v: no match planned", method)
		}
		// Walk the full order and find the true global rank.
		it, err := iterseq.New(method, 256, 2, 0, -1)
		if err != nil {
			t.Fatal(err)
		}
		c := make([]int, 2)
		rank := uint64(0)
		found := false
		for it.Next(c) {
			if iterseq.ApplySeed(base, c).Equal(oracle) {
				found = true
				break
			}
			rank++
		}
		if !found {
			t.Fatalf("%v: oracle not reachable", method)
		}
		if rank != p.MatchRank {
			t.Errorf("%v: true rank %d, planned %d", method, rank, p.MatchRank)
		}
	}
}

func TestCoveredAtExit(t *testing.T) {
	p := ShellPlan{Distance: 2, Size: 1000, PerWorkerMax: 100, HasMatch: true, MatchLocal: 10}
	// 10 workers in lockstep: finder covers 10, others cover ~10 each.
	got := p.CoveredAtExit(10, 1)
	if got != 10+9*10 {
		t.Errorf("CoveredAtExit = %d, want 100", got)
	}
	// Large check interval adds lag, capped by per-worker share.
	got = p.CoveredAtExit(10, 1000)
	if got != 10+9*100 {
		t.Errorf("CoveredAtExit with lag = %d, want 910", got)
	}
	// No match: full shell.
	p.HasMatch = false
	if p.CoveredAtExit(10, 1) != 1000 {
		t.Error("no-match shell must cover everything")
	}
	// Coverage can never exceed the shell.
	p.HasMatch = true
	p.MatchLocal = 100
	if p.CoveredAtExit(100, 64) > 1000 {
		t.Error("coverage exceeded shell size")
	}
}

func TestPlanShellsNoOracle(t *testing.T) {
	task := Task{Base: u256.FromUint64(1), MaxDistance: 3, Method: iterseq.GrayCode}
	plans, err := PlanShells(task, 4)
	if err != nil {
		t.Fatal(err)
	}
	total := uint64(0)
	for _, p := range plans {
		if p.HasMatch {
			t.Error("match without oracle")
		}
		total += p.Size
	}
	want := combin.ExhaustiveSeeds(256, 3).Uint64() - 1 // shells exclude d=0
	if total != want {
		t.Errorf("plans cover %d seeds, want %d", total, want)
	}
}

func TestPlanShellsOracleBeyondRadius(t *testing.T) {
	base := u256.FromUint64(0)
	oracle := base.FlipBit(1).FlipBit(2).FlipBit(3).FlipBit(4)
	task := Task{Base: base, MaxDistance: 3, Method: iterseq.GrayCode, Oracle: &oracle}
	plans, err := PlanShells(task, 4)
	if err != nil {
		t.Fatal(err)
	}
	for _, p := range plans {
		if p.HasMatch {
			t.Error("oracle beyond radius must not plan a match")
		}
	}
}

func TestPlanShellsErrors(t *testing.T) {
	if _, err := PlanShells(Task{MaxDistance: 3}, 0); err == nil {
		t.Error("expected workers error")
	}
	if _, err := PlanShells(Task{MaxDistance: 11}, 4); err == nil {
		t.Error("expected distance error")
	}
}

func TestMatchShell(t *testing.T) {
	base := u256.FromUint64(0)
	if MatchShell(base, base) != 0 {
		t.Error("distance to self != 0")
	}
	if MatchShell(base, base.FlipBit(5).FlipBit(100)) != 2 {
		t.Error("distance wrong")
	}
}
