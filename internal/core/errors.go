package core

import "errors"

// Sentinel errors for protocol-level failures. They are wrapped with %w
// by the functions that raise them, so callers classify outcomes with
// errors.Is instead of matching message strings, and netproto maps them
// to distinct wire status codes.
var (
	// ErrUnknownClient reports an operation against a client ID with no
	// enrolled PUF image.
	ErrUnknownClient = errors.New("core: unknown client")
	// ErrNoSession reports an Authenticate call with no open handshake
	// session for the (client, nonce) pair — including a replayed nonce,
	// since challenges are strictly single-use.
	ErrNoSession = errors.New("core: no open session")
	// ErrAlgMismatch reports a client digest whose hash algorithm does
	// not match the CA's policy.
	ErrAlgMismatch = errors.New("core: digest algorithm mismatch")
	// ErrBadConfig reports an invalid CAConfig at construction.
	ErrBadConfig = errors.New("core: invalid CA config")
)
