package core

import (
	"context"
	"fmt"
	"sync"
	"testing"

	"rbcsalted/internal/cryptoalg/aeskg"
	"rbcsalted/internal/puf"
)

// TestConcurrentAuthentications drives many clients through the CA at
// once: the per-session state (challenges, store, RA) must be safe under
// concurrency and every genuine client must authenticate. Run with
// -race in CI.
func TestConcurrentAuthentications(t *testing.T) {
	store, err := NewImageStore([32]byte{7})
	if err != nil {
		t.Fatal(err)
	}
	ra := NewRA()
	ca, err := NewCA(store, &echoBackend{alg: SHA3}, &aeskg.Generator{}, ra, CAConfig{
		Alg:         SHA3,
		MaxDistance: 2,
	})
	if err != nil {
		t.Fatal(err)
	}

	const clients = 16
	devices := make([]*puf.Device, clients)
	profile := puf.Profile{BaseError: 0.5 / 256.0}
	for i := range devices {
		dev, err := puf.NewDevice(uint64(500+i), 1024, profile)
		if err != nil {
			t.Fatal(err)
		}
		im, err := puf.Enroll(dev, 31)
		if err != nil {
			t.Fatal(err)
		}
		if err := ca.Enroll(ClientID(fmt.Sprintf("client-%d", i)), im); err != nil {
			t.Fatal(err)
		}
		devices[i] = dev
	}

	var wg sync.WaitGroup
	errs := make(chan error, clients)
	for i := 0; i < clients; i++ {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			id := ClientID(fmt.Sprintf("client-%d", i))
			client := &Client{ID: id, Device: devices[i]}
			ch, err := ca.BeginHandshake(id)
			if err != nil {
				errs <- fmt.Errorf("%s handshake: %w", id, err)
				return
			}
			m1, err := client.Respond(ch)
			if err != nil {
				errs <- fmt.Errorf("%s respond: %w", id, err)
				return
			}
			res, err := ca.Authenticate(context.Background(), AuthRequest{Client: id, Nonce: ch.Nonce, M1: m1})
			if err != nil {
				errs <- fmt.Errorf("%s authenticate: %w", id, err)
				return
			}
			if !res.Authenticated {
				errs <- fmt.Errorf("%s not authenticated", id)
				return
			}
			if _, ok := ra.PublicKey(id); !ok {
				errs <- fmt.Errorf("%s missing from RA", id)
			}
		}(i)
	}
	wg.Wait()
	close(errs)
	for err := range errs {
		t.Error(err)
	}
	if store.Len() != clients {
		t.Errorf("store has %d clients, want %d", store.Len(), clients)
	}
}

// TestInterleavedSessionsSameClient verifies that a new handshake
// supersedes the previous session for the same client.
func TestInterleavedSessionsSameClient(t *testing.T) {
	store, _ := NewImageStore([32]byte{8})
	ca, err := NewCA(store, &echoBackend{alg: SHA3}, &aeskg.Generator{}, NewRA(), CAConfig{
		Alg: SHA3, MaxDistance: 2,
	})
	if err != nil {
		t.Fatal(err)
	}
	dev, _ := puf.NewDevice(900, 1024, puf.Profile{BaseError: 0.5 / 256.0})
	im, _ := puf.Enroll(dev, 31)
	ca.Enroll("alice", im)
	client := &Client{ID: "alice", Device: dev}

	ch1, err := ca.BeginHandshake("alice")
	if err != nil {
		t.Fatal(err)
	}
	ch2, err := ca.BeginHandshake("alice")
	if err != nil {
		t.Fatal(err)
	}
	// The stale challenge must be rejected; the fresh one must work.
	m1, _ := client.Respond(ch1)
	if _, err := ca.Authenticate(context.Background(), AuthRequest{Client: "alice", Nonce: ch1.Nonce, M1: m1}); err == nil {
		t.Error("stale challenge accepted")
	}
	m2, _ := client.Respond(ch2)
	res, err := ca.Authenticate(context.Background(), AuthRequest{Client: "alice", Nonce: ch2.Nonce, M1: m2})
	if err != nil || !res.Authenticated {
		t.Errorf("fresh challenge failed: %v", err)
	}
}
