package core

import (
	"context"
	"time"
)

// Cost is a backend's predicted price for one search: modelled device
// time and the energy drawn over it. Predictions use the expected
// (average-case, Equation 3) coverage — full shells below MaxDistance
// plus half the final shell for an early-exit search, every shell in
// full for an exhaustive one — so two backends' predictions for the
// same task are directly comparable.
type Cost struct {
	// Seconds is the predicted device-seconds of search.
	Seconds float64
	// Joules is the predicted energy over those seconds under the
	// backend's power model.
	Joules float64
}

// CostModel is implemented by backends that can price a search before
// running it. The planner (internal/plan) consumes these predictions as
// its static per-backend throughput/energy curves; each simulator
// derives them from the same calibrated model that prices its searches,
// and the real host engine derives them from the measured host cost
// table, so prediction and execution cannot drift apart structurally.
type CostModel interface {
	// PredictCost prices the task without running it. Implementations
	// must not consult the task's Oracle: the prediction is what a
	// dispatcher knows before the answer exists.
	PredictCost(task Task) (Cost, error)
}

// ETAEstimator is implemented by backends (notably the planner) whose
// service-time estimate depends on the task itself, not just on the
// history of past searches. The scheduler's deadline admission consults
// it when present: an estimate specific to the task's shell sizes and
// chosen engine refuses infeasible deadlines the global EWMA would
// wrongly admit, and admits small searches the EWMA would wrongly
// refuse.
type ETAEstimator interface {
	// EstimateETA returns the expected service time for the task on the
	// engine that would serve it, and whether an estimate is available.
	EstimateETA(task Task) (time.Duration, bool)
}

// AlternateSearcher is implemented by multiplexing backends that can
// run a search on a different engine than their first choice. The
// scheduler's hedged dispatch uses it: when a primary flight straggles,
// re-issuing the search on the *second-best* engine attacks the case
// where the primary engine itself (not transient load) is the problem,
// which a duplicate flight on the same engine cannot.
type AlternateSearcher interface {
	// SearchAlternate runs the task on the backend's second choice of
	// engine, falling back to the primary when only one engine exists.
	SearchAlternate(ctx context.Context, task Task) (Result, error)
}

// ExpectedShellCoverage returns the expected number of seeds a backend
// covers in the shell at distance d (of size seeds) for the task: the
// whole shell when the search is exhaustive or the shell is not the
// last, half the shell — the uniform-match expectation — when an
// early-exit search ends there.
func ExpectedShellCoverage(task Task, d int, seeds uint64) uint64 {
	if task.Exhaustive || d < task.MaxDistance {
		return seeds
	}
	half := seeds / 2
	if half == 0 {
		half = 1
	}
	return half
}
