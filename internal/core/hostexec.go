package core

import (
	"context"
	"sync"
	"sync/atomic"
	"time"

	"rbcsalted/internal/combin"
	"rbcsalted/internal/iterseq"
	"rbcsalted/internal/u256"
)

// SearchShellHost covers one Hamming-distance shell on the host with real
// execution: `workers` goroutines over disjoint subranges of the shell.
// It is the execution engine behind the real CPU backend, the cluster
// workers, and the validation paths of the device simulators.
//
// Each worker builds its own Matcher from newMatcher. When the matcher
// implements BatchMatcher (the HashMatcherFactory default), candidates
// are accumulated BatchWidth at a time - generated incrementally in mask
// form by the iterator's MaskIter fast path - and matched one batch per
// call: one wide bit-sliced compression per 256 SHA-3 seeds, or one run
// of interleaved multi-buffer compressions per 64 SHA-1 seeds. Partial
// tail batches go through the same engine (padded internally).
// Scalar-only matchers follow the classic one-seed loop.
//
// The early-exit flag, ctx and the deadline are polled every checkEvery
// candidates, rounded up to whole batches on the batched path; a
// checkEvery below 1 means DefaultCheckInterval. On cancellation the
// shell stops within one interval per worker and the partial covered
// count is returned alongside ctx.Err().
func SearchShellHost(ctx context.Context, base u256.Uint256, d int, method iterseq.Method, workers, checkEvery int, exhaustive bool, deadline time.Time, newMatcher MatcherFactory) (found bool, seed u256.Uint256, covered uint64, timedOut bool, err error) {
	total, ok := combin.Binomial64(256, d)
	if !ok {
		// Partition reports the precise error for the callers' benefit.
		_, err := iterseq.Partition(256, d, max(workers, 1))
		return false, u256.Zero, 0, false, err
	}
	return SearchRangeHost(ctx, base, d, method, 0, total, workers, checkEvery, exhaustive, deadline, newMatcher)
}

// SearchRangeHost covers ranks [startRank, startRank+count) of one shell
// (in the method's own order) with the same engine as SearchShellHost,
// splitting the range evenly over min(workers, count) goroutines. It is
// the building block the cluster worker uses to serve dispatched shard
// ranges.
func SearchRangeHost(ctx context.Context, base u256.Uint256, d int, method iterseq.Method, startRank, count uint64, workers, checkEvery int, exhaustive bool, deadline time.Time, newMatcher MatcherFactory) (found bool, seed u256.Uint256, covered uint64, timedOut bool, err error) {
	if count == 0 {
		return false, u256.Zero, 0, false, nil
	}
	parts := workers
	if parts < 1 {
		parts = 1
	}
	if uint64(parts) > count {
		parts = int(count)
	}
	if checkEvery < 1 {
		checkEvery = DefaultCheckInterval
	}

	var (
		stop       atomic.Bool
		timeout    atomic.Bool
		cancelled  atomic.Bool
		totalSeeds atomic.Uint64
		mu         sync.Mutex
		wg         sync.WaitGroup
		firstErr   error
	)
	foundSeeds := make([]u256.Uint256, 0, 1)
	var done <-chan struct{}
	if ctx != nil {
		done = ctx.Done()
	}

	share := count / uint64(parts)
	extra := count % uint64(parts)
	offset := startRank
	for p := 0; p < parts; p++ {
		length := share
		if uint64(p) < extra {
			length++
		}
		start := offset
		offset += length
		if length == 0 {
			continue
		}
		wg.Add(1)
		go func(start, length uint64) {
			defer wg.Done()
			it, iterErr := iterseq.New(method, 256, d, start, int64(length))
			if iterErr != nil {
				// Fail the whole shell cleanly instead of panicking the
				// process: record the first error and stop the peers.
				mu.Lock()
				if firstErr == nil {
					firstErr = iterErr
				}
				mu.Unlock()
				stop.Store(true)
				return
			}
			m := newMatcher()
			if r, ok := m.(MatcherReleaser); ok {
				// Pooled matchers go back to their pool when the worker
				// is done with them.
				defer r.ReleaseMatcher()
			}

			// poll checks the stop flag, ctx and deadline; it reports
			// whether the worker should bail out.
			poll := func() bool {
				if !exhaustive && stop.Load() {
					return true
				}
				if done != nil {
					select {
					case <-done:
						cancelled.Store(true)
						stop.Store(true)
					default:
					}
				}
				if !deadline.IsZero() && time.Now().After(deadline) {
					timeout.Store(true)
					stop.Store(true)
				}
				return timeout.Load() || cancelled.Load()
			}
			record := func(cand u256.Uint256) {
				mu.Lock()
				foundSeeds = append(foundSeeds, cand)
				mu.Unlock()
			}

			local := uint64(0)
			bm, batched := m.(BatchMatcher)
			mi, masked := it.(iterseq.MaskIter)
			switch {
			case batched && masked:
				// Batched hot loop: fill the engine's preferred stride of
				// candidates from the iterator's incremental mask form,
				// match them in one call, and poll per batch rather than
				// per seed. Partial batches (the range tail) go through
				// the same MatchBatch - the engine pads internally - so
				// no candidate ever drops to the scalar path.
				width := bm.BatchWidth()
				if width < 1 || width > MatchWidth {
					width = MatchWidth
				}
				pollEvery := (checkEvery + width - 1) / width
				hbm := loadHostBatchMetrics()
				if dm, ok := bm.(DeltaBatchMatcher); ok && dm.DeltaCapable() {
					// Sliced-domain delta hot loop (DESIGN.md §16): the
					// batch stays resident in the matcher's wide bit-sliced
					// layout across batches; the iterator hands over raw
					// flip masks and each lane advances by its sparse mask
					// delta. Candidates are only materialized (one 256-bit
					// XOR) for recorded hits.
					var masks [MatchWidth]u256.Uint256
					sinceCheck := 0
					for {
						var t0 time.Time
						if hbm != nil {
							t0 = time.Now()
						}
						n := iterseq.FillMasks(mi, masks[:width])
						if hbm != nil {
							hbm.Fill.Observe(float64(time.Since(t0).Nanoseconds()))
						}
						if n == 0 {
							break
						}
						if hits := dm.MatchDeltaBatch(base, &masks, n); hits.Any() {
							if !exhaustive {
								win := hits.FirstLane()
								record(iterseq.ApplyMask(base, masks[win]))
								local += uint64(win) + 1
								stop.Store(true)
								break
							}
							local += uint64(n)
							for lane := hits.FirstLane(); lane >= 0; lane = hits.FirstLane() {
								record(iterseq.ApplyMask(base, masks[lane]))
								hits.ClearBit(lane)
							}
						} else {
							local += uint64(n)
						}
						if n < width {
							break // iterator exhausted mid-batch
						}
						sinceCheck++
						if sinceCheck >= pollEvery {
							sinceCheck = 0
							if poll() {
								break
							}
						}
					}
					break
				}
				var cands [MatchWidth]u256.Uint256
				var scratch u256.Uint256
				sinceCheck := 0
				for {
					var t0 time.Time
					if hbm != nil {
						t0 = time.Now()
					}
					n := iterseq.FillSeeds(mi, base, &scratch, cands[:width])
					if hbm != nil {
						hbm.Fill.Observe(float64(time.Since(t0).Nanoseconds()))
					}
					if n == 0 {
						break
					}
					if hits := bm.MatchBatch(&cands, n); hits.Any() {
						if !exhaustive {
							// Early exit: only candidates at or before the
							// winning lane count as covered, so the batched
							// engine's accounting is lane-exact and agrees
							// with the scalar oracle and the modelled
							// backends (covered = rank + 1).
							win := hits.FirstLane()
							record(cands[win])
							local += uint64(win) + 1
							stop.Store(true)
							break
						}
						local += uint64(n)
						for lane := hits.FirstLane(); lane >= 0; lane = hits.FirstLane() {
							record(cands[lane])
							hits.ClearBit(lane)
						}
					} else {
						local += uint64(n)
					}
					if n < width {
						break // iterator exhausted mid-batch
					}
					sinceCheck++
					if sinceCheck >= pollEvery {
						sinceCheck = 0
						if poll() {
							break
						}
					}
				}
			case masked:
				// Scalar loop over the mask fast path: candidates come
				// from a single 256-bit XOR per seed.
				var mask u256.Uint256
				sinceCheck := 0
				for mi.NextMask(&mask) {
					candidate := iterseq.ApplyMask(base, mask)
					local++
					if m.Match(candidate) {
						record(candidate)
						if !exhaustive {
							stop.Store(true)
							break
						}
					}
					sinceCheck++
					if sinceCheck >= checkEvery {
						sinceCheck = 0
						if poll() {
							break
						}
					}
				}
			default:
				// Position-list fallback for iterators without a mask
				// form.
				c := make([]int, d)
				sinceCheck := 0
				for it.Next(c) {
					candidate := iterseq.ApplySeed(base, c)
					local++
					if m.Match(candidate) {
						record(candidate)
						if !exhaustive {
							stop.Store(true)
							break
						}
					}
					sinceCheck++
					if sinceCheck >= checkEvery {
						sinceCheck = 0
						if poll() {
							break
						}
					}
				}
			}
			totalSeeds.Add(local)
		}(start, length)
	}
	wg.Wait()

	covered = totalSeeds.Load()
	if firstErr != nil {
		return false, u256.Zero, covered, false, firstErr
	}
	if len(foundSeeds) > 0 {
		found = true
		seed = foundSeeds[0]
	}
	if cancelled.Load() && !found {
		return false, u256.Zero, covered, timeout.Load(), ctx.Err()
	}
	return found, seed, covered, timeout.Load(), nil
}
