package core

import (
	"context"
	"sync"
	"sync/atomic"
	"time"

	"rbcsalted/internal/iterseq"
	"rbcsalted/internal/u256"
)

// SearchShellHost covers one Hamming-distance shell on the host with real
// execution: `workers` goroutines over disjoint subranges, each evaluating
// the match predicate and polling a shared early-exit flag every
// checkEvery candidates. It is the execution engine behind the real CPU
// backend and the validation paths of the device simulators.
//
// ctx is polled at the same checkEvery granularity as the early-exit
// flag; on cancellation the shell stops within one interval per worker
// and the partial covered count is returned alongside ctx.Err().
func SearchShellHost(ctx context.Context, base u256.Uint256, d int, method iterseq.Method, workers, checkEvery int, exhaustive bool, deadline time.Time, match func(u256.Uint256) bool) (found bool, seed u256.Uint256, covered uint64, timedOut bool, err error) {
	ranges, err := iterseq.Partition(256, d, workers)
	if err != nil {
		return false, u256.Zero, 0, false, err
	}
	if checkEvery < 1 {
		checkEvery = 1
	}

	var (
		stop       atomic.Bool
		timeout    atomic.Bool
		cancelled  atomic.Bool
		totalSeeds atomic.Uint64
		mu         sync.Mutex
		wg         sync.WaitGroup
	)
	foundSeeds := make([]u256.Uint256, 0, 1)
	var done <-chan struct{}
	if ctx != nil {
		done = ctx.Done()
	}

	for _, r := range ranges {
		if r.Count == 0 {
			continue
		}
		wg.Add(1)
		go func(r iterseq.Range) {
			defer wg.Done()
			it, iterErr := iterseq.New(method, 256, d, r.Start, int64(r.Count))
			if iterErr != nil {
				// Construction is validated by Partition; treat as a bug.
				panic(iterErr)
			}
			c := make([]int, d)
			local := uint64(0)
			sinceCheck := 0
			for it.Next(c) {
				candidate := iterseq.ApplySeed(base, c)
				local++
				if match(candidate) {
					mu.Lock()
					foundSeeds = append(foundSeeds, candidate)
					mu.Unlock()
					if !exhaustive {
						stop.Store(true)
						break
					}
				}
				sinceCheck++
				if sinceCheck >= checkEvery {
					sinceCheck = 0
					if !exhaustive && stop.Load() {
						break
					}
					if done != nil {
						select {
						case <-done:
							cancelled.Store(true)
							stop.Store(true)
						default:
						}
					}
					if !deadline.IsZero() && time.Now().After(deadline) {
						timeout.Store(true)
						stop.Store(true)
					}
					if timeout.Load() || cancelled.Load() {
						break
					}
				}
			}
			totalSeeds.Add(local)
		}(r)
	}
	wg.Wait()

	covered = totalSeeds.Load()
	if len(foundSeeds) > 0 {
		found = true
		seed = foundSeeds[0]
	}
	if cancelled.Load() && !found {
		return false, u256.Zero, covered, timeout.Load(), ctx.Err()
	}
	return found, seed, covered, timeout.Load(), nil
}
