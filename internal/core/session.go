package core

import (
	"fmt"
	"sync"
	"sync/atomic"
	"time"
)

// SessionTable holds the CA's open handshake sessions: for each client,
// the challenge it must answer next. The table is striped across lock
// shards like ImageStore and RA, issues the monotonically increasing
// challenge nonces, enforces the session TTL, and journals opens and
// closes so sessions (and the nonce high-water mark) survive a restart.
type SessionTable struct {
	journal Journal
	nonce   atomic.Uint64
	// ttl bounds a session's life from IssuedAt; see SetTTL.
	ttl atomic.Int64
	// now is injectable for TTL tests.
	now    func() time.Time
	shards []sessionShard
}

type sessionShard struct {
	mu   sync.Mutex
	open map[ClientID]Challenge
	// lastSweep amortizes expiry eviction: each shard is swept at most
	// once per TTL, on the open path.
	lastSweep time.Time
}

// NewSessionTable returns an empty table with the default shard count
// and no TTL (the CA sets one from its config).
func NewSessionTable() *SessionTable {
	return NewSessionTableShards(DefaultShards)
}

// NewSessionTableShards returns an empty table with an explicit
// lock-stripe count.
func NewSessionTableShards(shards int) *SessionTable {
	if shards < 1 {
		shards = 1
	}
	t := &SessionTable{
		now:    time.Now,
		shards: make([]sessionShard, shards),
	}
	for i := range t.shards {
		t.shards[i].open = make(map[ClientID]Challenge)
	}
	return t
}

// SetJournal attaches a mutation journal (nil detaches). Attach during
// assembly, before the table is shared.
func (t *SessionTable) SetJournal(j Journal) { t.journal = j }

// SetTTL sets the session lifetime. Zero or negative disables expiry.
func (t *SessionTable) SetTTL(d time.Duration) { t.ttl.Store(int64(d)) }

// TTL returns the current session lifetime.
func (t *SessionTable) TTL() time.Duration { return time.Duration(t.ttl.Load()) }

// SetClock injects a time source for tests.
func (t *SessionTable) SetClock(now func() time.Time) { t.now = now }

func (t *SessionTable) shard(id ClientID) *sessionShard {
	return &t.shards[shardIndex(id, len(t.shards))]
}

// NextNonce issues a fresh challenge nonce.
func (t *SessionTable) NextNonce() uint64 { return t.nonce.Add(1) }

// Nonce returns the nonce high-water mark.
func (t *SessionTable) Nonce() uint64 { return t.nonce.Load() }

// BumpNonce raises the nonce high-water mark to at least n (the
// restore path: replayed SessionOpen records and snapshots carry the
// nonces they were issued with).
func (t *SessionTable) BumpNonce(n uint64) {
	for {
		cur := t.nonce.Load()
		if cur >= n || t.nonce.CompareAndSwap(cur, n) {
			return
		}
	}
}

func (t *SessionTable) expired(ch Challenge, at time.Time) bool {
	ttl := t.TTL()
	return ttl > 0 && !ch.IssuedAt.IsZero() && at.Sub(ch.IssuedAt) > ttl
}

// Open records a new session for id, superseding any previous one. The
// challenge's IssuedAt is stamped here if unset. As a side effect the
// shard is swept for expired sessions at most once per TTL, bounding the
// table's footprint under abandoned handshakes.
func (t *SessionTable) Open(id ClientID, ch Challenge) error {
	now := t.now()
	if ch.IssuedAt.IsZero() {
		ch.IssuedAt = now
	}
	sh := t.shard(id)
	sh.mu.Lock()
	defer sh.mu.Unlock()
	ttl := t.TTL()
	if ttl > 0 && now.Sub(sh.lastSweep) > ttl {
		sh.lastSweep = now
		for sid, sch := range sh.open {
			if sid != id && t.expired(sch, now) {
				if err := t.closeLocked(sh, sid); err != nil {
					return err
				}
			}
		}
	}
	if t.journal != nil {
		if err := t.journal.SessionOpen(id, ch); err != nil {
			return fmt.Errorf("core: journal session open for %q: %w", id, err)
		}
	}
	sh.open[id] = ch
	return nil
}

// Take consumes the open session for (id, nonce). It returns ok=false
// when there is no session, the nonce does not match, or the session has
// expired; an expired session is evicted (and its close journaled) but a
// wrong-nonce probe leaves the stored session untouched, so third
// parties cannot void sessions they do not own.
func (t *SessionTable) Take(id ClientID, nonce uint64) (Challenge, bool) {
	sh := t.shard(id)
	sh.mu.Lock()
	defer sh.mu.Unlock()
	ch, ok := sh.open[id]
	if !ok {
		return Challenge{}, false
	}
	if t.expired(ch, t.now()) {
		_ = t.closeLocked(sh, id)
		return Challenge{}, false
	}
	if ch.Nonce != nonce {
		return Challenge{}, false
	}
	if err := t.closeLocked(sh, id); err != nil {
		// The journal refused the close. Failing the Take (so the caller
		// sees no session) keeps memory behind the log rather than ahead
		// of it: the worst case is a still-open session that a restart
		// also considers open.
		return Challenge{}, false
	}
	return ch, true
}

// Drop closes any open session for id (deprovisioning, or an expired
// sweep). Dropping an absent session is a no-op.
func (t *SessionTable) Drop(id ClientID) error {
	sh := t.shard(id)
	sh.mu.Lock()
	defer sh.mu.Unlock()
	if _, ok := sh.open[id]; !ok {
		return nil
	}
	return t.closeLocked(sh, id)
}

// closeLocked journals and applies a session close; the shard lock must
// be held.
func (t *SessionTable) closeLocked(sh *sessionShard, id ClientID) error {
	if t.journal != nil {
		if err := t.journal.SessionClose(id); err != nil {
			return fmt.Errorf("core: journal session close for %q: %w", id, err)
		}
	}
	delete(sh.open, id)
	return nil
}

// Restore applies a session without journaling (the replay path). The
// recorded IssuedAt is preserved, so sessions that expired across the
// restart stay expired.
func (t *SessionTable) Restore(id ClientID, ch Challenge) {
	sh := t.shard(id)
	sh.mu.Lock()
	sh.open[id] = ch
	sh.mu.Unlock()
	t.BumpNonce(ch.Nonce)
}

// Forget removes a session without journaling (the replay path of a
// SessionClose record).
func (t *SessionTable) Forget(id ClientID) {
	sh := t.shard(id)
	sh.mu.Lock()
	delete(sh.open, id)
	sh.mu.Unlock()
}

// Snapshot copies every open session.
func (t *SessionTable) Snapshot() map[ClientID]Challenge {
	out := make(map[ClientID]Challenge)
	for i := range t.shards {
		sh := &t.shards[i]
		sh.mu.Lock()
		for id, ch := range sh.open {
			out[id] = ch
		}
		sh.mu.Unlock()
	}
	return out
}

// Len returns the number of open sessions (including not-yet-swept
// expired ones).
func (t *SessionTable) Len() int {
	n := 0
	for i := range t.shards {
		sh := &t.shards[i]
		sh.mu.Lock()
		n += len(sh.open)
		sh.mu.Unlock()
	}
	return n
}
