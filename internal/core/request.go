package core

import (
	"fmt"
	"time"
)

// QoSClass is a request's quality-of-service class. It orders the
// scheduler's admission queues: interactive requests are served first,
// background requests are served last (subject to priority aging, which
// promotes long-waiting work one level per aging step so nothing
// starves), and under overload the scheduler sheds from the lowest
// class first.
//
// The zero value is ClassInteractive, so callers that never think about
// QoS get the strictest service — the safe default for the paper's
// human-facing authentication workload.
type QoSClass uint8

// QoS classes, strictest first. The numeric order IS the priority
// lattice: lower values are served first.
const (
	// ClassInteractive is a human waiting on the result: served first,
	// shed last. The default.
	ClassInteractive QoSClass = iota
	// ClassBatch is programmatic but latency-sensitive work (fleet
	// re-attestation sweeps, CI).
	ClassBatch
	// ClassBackground is best-effort work (audits, warm-up probes):
	// served when nothing better waits, shed first under overload.
	ClassBackground

	// NumClasses is the number of QoS classes (for per-class arrays).
	NumClasses = 3
)

// Valid reports whether c names a defined class.
func (c QoSClass) Valid() bool { return c < NumClasses }

// String names the class for flags, logs and metric names.
func (c QoSClass) String() string {
	switch c {
	case ClassInteractive:
		return "interactive"
	case ClassBatch:
		return "batch"
	case ClassBackground:
		return "background"
	default:
		return fmt.Sprintf("class-%d", uint8(c))
	}
}

// ParseClass parses a class name as printed by String. It is the
// inverse used by the CLI -class flags and config files.
func ParseClass(s string) (QoSClass, error) {
	switch s {
	case "interactive", "":
		return ClassInteractive, nil
	case "batch":
		return ClassBatch, nil
	case "background":
		return ClassBackground, nil
	}
	return 0, fmt.Errorf("core: unknown QoS class %q (want interactive, batch or background)", s)
}

// AuthRequest is one authentication attempt, the argument of
// CA.Authenticate. It replaces the old positional
// (id, nonce, m1) surface so QoS intent travels with the request:
// adding a field here does not break every call site the way adding a
// parameter did.
type AuthRequest struct {
	// Client is the enrolled device being authenticated.
	Client ClientID
	// Nonce identifies the challenge session this digest answers.
	Nonce uint64
	// M1 is the digest the client sent.
	M1 Digest
	// Class is the request's QoS class; the zero value is
	// ClassInteractive.
	Class QoSClass
	// Deadline, when non-zero, is the absolute wall-clock time by which
	// the caller needs the verdict. The scheduler refuses requests it
	// cannot finish in time with ErrDeadlineInfeasible, and the derived
	// search deadline is capped at it (never extended past it).
	Deadline time.Time
}
