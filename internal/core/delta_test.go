package core

import (
	"context"
	"math/bits"
	"sync"
	"testing"
	"time"

	"rbcsalted/internal/bitslice"
	"rbcsalted/internal/combin"
	"rbcsalted/internal/iterseq"
	"rbcsalted/internal/u256"
)

// packedFromMasks builds the reference resident state for base^masks:
// what a from-scratch pack of the whole batch produces. The delta engine
// must hold exactly this after any number of chained advances.
func packedFromMasks(base u256.Uint256, masks *[MatchWidth]u256.Uint256) [4]bitslice.Slice256 {
	var vals [4][MatchWidth]uint64
	for i := 0; i < MatchWidth; i++ {
		cand := base.Xor(masks[i])
		vals[0][i] = bits.ReverseBytes64(cand.Limb(3))
		vals[1][i] = bits.ReverseBytes64(cand.Limb(2))
		vals[2][i] = bits.ReverseBytes64(cand.Limb(1))
		vals[3][i] = bits.ReverseBytes64(cand.Limb(0))
	}
	var want [4]bitslice.Slice256
	bitslice.PackSeedVals256(&want, &vals)
	return want
}

// FuzzDeltaFill differentially fuzzes the sliced-domain delta engine:
// after every chained MatchDeltaBatch the resident message lanes must be
// bit-identical to a fresh pack of the same candidates, and the match
// verdict must equal the repack kernel's on materialized seeds — across
// all four iterators, iterator restarts (chain breaks), partial final
// batches and a task-switch Reset.
func FuzzDeltaFill(f *testing.F) {
	f.Add(uint64(1), uint8(2), uint16(100), uint8(3), uint8(0))
	f.Add(uint64(0xfeedbeef), uint8(1), uint16(200), uint8(2), uint8(1))
	f.Add(uint64(0), uint8(2), uint16(32500), uint8(2), uint8(2)) // near shell end: partial batch
	f.Add(uint64(42), uint8(3), uint16(9999), uint8(4), uint8(3))
	f.Fuzz(func(t *testing.T, baseWord uint64, dRaw uint8, startRaw uint16, batchesRaw, methodRaw uint8) {
		method := iterseq.Methods()[int(methodRaw)%len(iterseq.Methods())]
		d := 1 + int(dRaw)%3
		base := u256.FromUint64(baseWord)
		total, _ := combin.Binomial64(256, d)
		start := uint64(startRaw) % total
		batches := 1 + int(batchesRaw)%4

		// Plant the target on a real candidate so hit lanes (and their
		// trimming on partial batches) are exercised, not just misses.
		plantRank := start + uint64(batchesRaw)*97
		if plantRank >= total {
			plantRank = total - 1
		}
		pit, err := iterseq.New(method, 256, d, plantRank, 1)
		if err != nil {
			t.Fatal(err)
		}
		c := make([]int, d)
		if !pit.Next(c) {
			t.Fatal("plant iterator empty")
		}
		target := HashSeed(SHA3, iterseq.ApplySeed(base, c))

		m := NewHashMatcher(SHA3, target)
		m.Kernel = KernelSliced256Delta
		ref := NewHashMatcher(SHA3, target)
		ref.Kernel = KernelSliced256

		it, err := iterseq.New(method, 256, d, start, -1)
		if err != nil {
			t.Fatal(err)
		}
		mi := it.(iterseq.MaskIter)
		var masks, cands [MatchWidth]u256.Uint256
		step := func(b int) {
			n := iterseq.FillMasks(mi, masks[:])
			if n == 0 {
				// Sequence exhausted: restart at rank 0. A fresh iterator
				// breaks the delta chain and must be announced.
				it2, err := iterseq.New(method, 256, d, 0, -1)
				if err != nil {
					t.Fatal(err)
				}
				mi = it2.(iterseq.MaskIter)
				m.InvalidateDelta()
				n = iterseq.FillMasks(mi, masks[:])
			}
			got := m.MatchDeltaBatch(base, &masks, n)
			// MatchDeltaBatch wrote the pad region of masks, so the full
			// array is exactly what must be resident.
			if m.deltaMsg != packedFromMasks(base, &masks) {
				t.Fatalf("batch %d (%v d=%d start=%d n=%d): resident state diverged from fresh pack",
					b, method, d, start, n)
			}
			for i := 0; i < MatchWidth; i++ {
				cands[i] = iterseq.ApplyMask(base, masks[i])
			}
			if want := ref.MatchBatch(&cands, n); got != want {
				t.Fatalf("batch %d (%v d=%d start=%d n=%d): delta mask %v, repack mask %v",
					b, method, d, start, n, got, want)
			}
		}
		for b := 0; b < batches; b++ {
			step(b)
		}

		// Task switch: Reset to a new target must break the chain and
		// re-derive target state; the next batch primes from scratch.
		m.Reset(SHA3, HashSeed(SHA3, base))
		if m.deltaLive {
			t.Fatal("Reset left the delta chain live")
		}
		m.Kernel = KernelSliced256Delta
		ref.Reset(SHA3, HashSeed(SHA3, base))
		ref.Kernel = KernelSliced256
		step(batches)
	})
}

// TestDeltaKernelPartial63 pins the delta kernel's covered/winner
// accounting against the scalar oracle on a range ending in a 63-of-256
// partial batch: early-exit hits inside the partial batch, mid-batch in
// a full batch, at the very last rank, and the no-match exhaustive case.
func TestDeltaKernelPartial63(t *testing.T) {
	base := u256.FromUint64(0x77)
	const d = 2
	count := uint64(2*MatchWidth + 63)
	ctx := context.Background()
	for _, method := range iterseq.Methods() {
		for _, rank := range []uint64{300, 2*MatchWidth + 30, count - 1} {
			want := seedAtRank(t, base, d, method, rank)
			target := HashSeed(SHA3, want)
			scalar := ScalarMatcher(HashMatcherFactory(SHA3, target))
			delta := forcedKernelFactory(SHA3, target, KernelSliced256Delta)
			sf, ss, sc, _, err := SearchRangeHost(ctx, base, d, method, 0, count, 1, 0, false, time.Time{}, scalar)
			if err != nil || !sf {
				t.Fatalf("%v rank=%d: scalar oracle found=%v err=%v", method, rank, sf, err)
			}
			df, ds, dc, _, err := SearchRangeHost(ctx, base, d, method, 0, count, 1, 0, false, time.Time{}, delta)
			if err != nil || !df {
				t.Fatalf("%v rank=%d: delta kernel found=%v err=%v", method, rank, df, err)
			}
			if !ds.Equal(ss) || !ds.Equal(want) {
				t.Errorf("%v rank=%d: delta winner differs from scalar oracle", method, rank)
			}
			if dc != sc || dc != rank+1 {
				t.Errorf("%v rank=%d: delta covered %d, scalar %d, want %d", method, rank, dc, sc, rank+1)
			}
		}
		// No match in range: both engines must cover exactly count seeds.
		target := HashSeed(SHA3, base)
		delta := forcedKernelFactory(SHA3, target, KernelSliced256Delta)
		df, _, dc, _, err := SearchRangeHost(ctx, base, d, method, 0, count, 1, 0, true, time.Time{}, delta)
		if err != nil || df {
			t.Fatalf("%v no-match: found=%v err=%v", method, df, err)
		}
		if dc != count {
			t.Errorf("%v no-match: delta covered %d, want %d", method, dc, count)
		}
	}
}

// TestCalibrationDeltaDegrades proves the degradation path: the delta
// kernel is only ever selected where it measured strictly fastest, and a
// regressing measurement falls back to the next-best kernel (or scalar)
// rather than shipping.
func TestCalibrationDeltaDegrades(t *testing.T) {
	target := HashSeed(SHA3, u256.FromUint64(5))

	prev := SetCalibration(NewCalibration(
		CalibrationPoint{Alg: SHA3, Kernel: KernelSliced256, Speedup: 6.0},
		CalibrationPoint{Alg: SHA3, Kernel: KernelSliced256Delta, Speedup: 5.0},
	))
	defer SetCalibration(prev)
	if k := DefaultKernel(SHA3); k != KernelSliced256 {
		t.Errorf("delta slower than sliced256: DefaultKernel = %v, want sliced256", k)
	}

	SetCalibration(NewCalibration(
		CalibrationPoint{Alg: SHA3, Kernel: KernelSliced256Delta, Speedup: 0.9},
	))
	if k := DefaultKernel(SHA3); k != KernelScalar {
		t.Errorf("delta below 1.0 and alone: DefaultKernel = %v, want scalar", k)
	}
	if _, ok := HashMatcherFactory(SHA3, target)().(BatchMatcher); ok {
		t.Error("degraded-to-scalar matcher still advertises batch capability")
	}

	SetCalibration(NewCalibration(
		CalibrationPoint{Alg: SHA3, Kernel: KernelSliced256Delta, Speedup: 7.5},
	))
	if k := DefaultKernel(SHA3); k != KernelSliced256Delta {
		t.Errorf("delta measured fastest: DefaultKernel = %v, want sliced256delta", k)
	}
	m := HashMatcherFactory(SHA3, target)()
	dm, ok := m.(DeltaBatchMatcher)
	if !ok || !dm.DeltaCapable() {
		t.Error("selected delta kernel does not expose the delta fill path")
	}
}

// TestPooledMatcherResetOnReuse checks the matcher pool's task-switch
// hygiene: a matcher drawn for a new task after running a delta chain
// for the previous one comes out Reset — the chain invalidated and all
// target state re-derived. The pool's New hands out one specific
// matcher so the draw is deterministic: sync.Pool drops Puts at random
// under the race detector, so reuse identity cannot be asserted through
// an actual Put/Get round-trip.
func TestPooledMatcherResetOnReuse(t *testing.T) {
	base := u256.FromUint64(0xc0ffee)
	targetA := HashSeed(SHA3, base.FlipBit(3).FlipBit(9))

	hm := NewHashMatcher(SHA3, targetA)
	hm.Kernel = KernelSliced256Delta

	// Run a two-batch delta chain so resident state is live on release.
	it, err := iterseq.New(iterseq.GrayCode, 256, 2, 0, -1)
	if err != nil {
		t.Fatal(err)
	}
	mi := it.(iterseq.MaskIter)
	var masks [MatchWidth]u256.Uint256
	for b := 0; b < 2; b++ {
		n := iterseq.FillMasks(mi, masks[:])
		hm.MatchDeltaBatch(base, &masks, n)
	}
	if !hm.deltaLive {
		t.Fatal("delta chain not live after chained batches")
	}

	pool := &sync.Pool{New: func() any { return hm }}
	seedB := base.FlipBit(100)
	targetB := HashSeed(SHA1, seedB)
	mB := PooledHashMatcherFactory(pool, SHA1, targetB)()
	pmB, ok := mB.(*pooledHashMatcher)
	if !ok {
		t.Fatalf("pooled factory returned %T, want *pooledHashMatcher", mB)
	}
	if pmB.HashMatcher != hm {
		t.Fatal("factory did not draw the pooled matcher")
	}
	if pmB.HashMatcher.deltaLive {
		t.Error("reused matcher still carries the previous task's delta chain")
	}
	if !pmB.Match(seedB) || pmB.Match(base) {
		t.Error("reused matcher target state not re-derived for the new task")
	}
	// Release must route back through the wrapper without blowing up;
	// whether the pool retains the object is sync.Pool's business.
	pmB.ReleaseMatcher()
}

// TestDeltaHotLoopAllocs asserts the delta hot path allocates nothing in
// steady state: FillMasks and chained MatchDeltaBatch (full and partial
// batches).
func TestDeltaHotLoopAllocs(t *testing.T) {
	base := u256.FromUint64(99)
	target := HashSeed(SHA3, base)
	m := NewHashMatcher(SHA3, target)
	m.Kernel = KernelSliced256Delta

	it, err := iterseq.New(iterseq.GrayCode, 256, 3, 0, -1)
	if err != nil {
		t.Fatal(err)
	}
	mi := it.(iterseq.MaskIter)
	var masks [MatchWidth]u256.Uint256
	if n := testing.AllocsPerRun(20, func() {
		iterseq.FillMasks(mi, masks[:])
	}); n != 0 {
		t.Errorf("FillMasks allocates %.1f/op", n)
	}
	for _, n := range []int{MatchWidth, MatchWidth - 3} {
		if a := testing.AllocsPerRun(10, func() {
			m.MatchDeltaBatch(base, &masks, n)
		}); a != 0 {
			t.Errorf("MatchDeltaBatch(n=%d) allocates %.1f/op", n, a)
		}
	}
}
