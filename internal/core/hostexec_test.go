package core

import (
	"context"
	"testing"

	"rbcsalted/internal/combin"
	"rbcsalted/internal/iterseq"
	"rbcsalted/internal/u256"
	"time"
)

// seedAtRank returns the candidate at the given rank of shell d in the
// method's own order, built independently of the engine under test.
func seedAtRank(t *testing.T, base u256.Uint256, d int, method iterseq.Method, rank uint64) u256.Uint256 {
	t.Helper()
	it, err := iterseq.New(method, 256, d, rank, 1)
	if err != nil {
		t.Fatalf("iterseq.New(%v, d=%d, rank=%d): %v", method, d, rank, err)
	}
	c := make([]int, d)
	if !it.Next(c) {
		t.Fatalf("iterator empty at rank %d", rank)
	}
	return iterseq.ApplySeed(base, c)
}

// TestBatchedMatchesScalarExhaustive is the cross-engine equivalence
// property: for every iteration method and both hash algorithms, the
// batched bit-sliced engine and the scalar oracle must agree on the
// found seed, and in exhaustive mode must both cover exactly C(256, d)
// seeds.
func TestBatchedMatchesScalarExhaustive(t *testing.T) {
	base := u256.FromUint64(0xfeed_beef_cafe_f00d)
	const d = 2
	total, _ := combin.Binomial64(256, d)

	// Plant targets at ranks chosen to exercise slot 0, a mid-batch
	// slot, a final-partial-batch slot, and the no-match case.
	ranks := []uint64{0, 37, total - 5}
	for _, alg := range []HashAlg{SHA1, SHA3} {
		for _, method := range iterseq.Methods() {
			for _, rank := range ranks {
				want := seedAtRank(t, base, d, method, rank)
				target := HashSeed(alg, want)
				runBoth(t, base, d, method, alg, target, true, func(tag string, found bool, seed u256.Uint256, covered uint64) {
					if !found {
						t.Errorf("%s %v %v rank=%d: match not found", tag, alg, method, rank)
						return
					}
					if !seed.Equal(want) {
						t.Errorf("%s %v %v rank=%d: wrong seed", tag, alg, method, rank)
					}
					if covered != total {
						t.Errorf("%s %v %v rank=%d: covered %d, want %d", tag, alg, method, rank, covered, total)
					}
				})
			}
			// No match in the shell: the base's own digest is at
			// distance 0, outside shell d.
			target := HashSeed(alg, base)
			runBoth(t, base, d, method, alg, target, true, func(tag string, found bool, _ u256.Uint256, covered uint64) {
				if found {
					t.Errorf("%s %v %v: spurious match", tag, alg, method)
				}
				if covered != total {
					t.Errorf("%s %v %v: covered %d, want %d", tag, alg, method, covered, total)
				}
			})
		}
	}
}

// TestBatchedMatchesScalarEarlyExit checks the early-exit path: both
// engines must locate the same seed. Coverage may differ (the batched
// engine accounts whole batches), so only the found seed is compared.
func TestBatchedMatchesScalarEarlyExit(t *testing.T) {
	base := u256.FromUint64(7)
	const d = 3
	for _, alg := range []HashAlg{SHA1, SHA3} {
		for _, method := range iterseq.Methods() {
			want := seedAtRank(t, base, d, method, 4321)
			target := HashSeed(alg, want)
			runBoth(t, base, d, method, alg, target, false, func(tag string, found bool, seed u256.Uint256, covered uint64) {
				if !found {
					t.Errorf("%s %v %v: match not found", tag, alg, method)
					return
				}
				if !seed.Equal(want) {
					t.Errorf("%s %v %v: wrong seed", tag, alg, method)
				}
				if covered == 0 {
					t.Errorf("%s %v %v: zero coverage", tag, alg, method)
				}
			})
		}
	}
}

// runBoth runs one shell search through the batched engine and the
// scalar oracle and hands each outcome to check.
func runBoth(t *testing.T, base u256.Uint256, d int, method iterseq.Method, alg HashAlg, target Digest, exhaustive bool, check func(tag string, found bool, seed u256.Uint256, covered uint64)) {
	t.Helper()
	batched := HashMatcherFactory(alg, target)
	// "sliced" forces the bit-sliced compression even where the default
	// picks the scalar path (SHA-1), so both batch engines stay
	// cross-validated end to end.
	sliced := MatcherFactory(func() Matcher {
		m := NewHashMatcher(alg, target)
		m.UseSliced = true
		return m
	})
	engines := map[string]MatcherFactory{
		"batched": batched,
		"sliced":  sliced,
		"scalar":  ScalarMatcher(batched),
	}
	for tag, f := range engines {
		found, seed, covered, _, err := SearchShellHost(
			context.Background(), base, d, method, 4, 0, exhaustive, time.Time{}, f)
		if err != nil {
			t.Fatalf("%s: SearchShellHost: %v", tag, err)
		}
		check(tag, found, seed, covered)
	}
}

// TestSearchRangeHostIterErrorPropagates covers the satellite fix: a
// worker whose iterator construction fails must surface the error from
// SearchRangeHost instead of panicking the process.
func TestSearchRangeHostIterErrorPropagates(t *testing.T) {
	base := u256.FromUint64(1)
	target := HashSeed(SHA1, base)
	// startRank beyond the shell size makes iterseq.New fail in-worker.
	total, _ := combin.Binomial64(256, 2)
	_, _, _, _, err := SearchRangeHost(
		context.Background(), base, 2, iterseq.Alg515, total+10, 5, 2, 0,
		false, time.Time{}, HashMatcherFactory(SHA1, target))
	if err == nil {
		t.Fatalf("SearchRangeHost with out-of-range startRank: want error, got nil")
	}
}

// TestSearchShellHostDefaultsCheckInterval: a zero or negative
// checkEvery must behave like DefaultCheckInterval, not hang or panic.
func TestSearchShellHostDefaultsCheckInterval(t *testing.T) {
	base := u256.FromUint64(3)
	want := seedAtRank(t, base, 2, iterseq.GrayCode, 100)
	target := HashSeed(SHA3, want)
	for _, ce := range []int{0, -7} {
		found, seed, _, _, err := SearchShellHost(
			context.Background(), base, 2, iterseq.GrayCode, 2, ce, false,
			time.Time{}, HashMatcherFactory(SHA3, target))
		if err != nil || !found || !seed.Equal(want) {
			t.Fatalf("checkEvery=%d: found=%v err=%v", ce, found, err)
		}
	}
}

// TestHashMatcherScalarAgreesWithHashSeed pins the quick-reject scalar
// path to the reference digest comparison.
func TestHashMatcherScalarAgreesWithHashSeed(t *testing.T) {
	base := u256.FromUint64(0xabcdef)
	for _, alg := range []HashAlg{SHA1, SHA3} {
		target := HashSeed(alg, base)
		m := NewHashMatcher(alg, target)
		if !m.Match(base) {
			t.Errorf("%v: self-match failed", alg)
		}
		if m.Match(base.FlipBit(17)) {
			t.Errorf("%v: matched a non-target seed", alg)
		}
	}
}

// TestHotLoopAllocs asserts the steady-state hot loops allocate
// nothing per seed: the scalar match, the batched match, and the
// incremental mask iteration.
func TestHotLoopAllocs(t *testing.T) {
	base := u256.FromUint64(99)
	for _, alg := range []HashAlg{SHA1, SHA3} {
		target := HashSeed(alg, base)
		m := NewHashMatcher(alg, target)

		cand := base.FlipBit(3).FlipBit(200)
		if n := testing.AllocsPerRun(100, func() {
			m.Match(cand)
		}); n != 0 {
			t.Errorf("%v scalar Match allocates %.1f/op", alg, n)
		}

		var cands [MatchWidth]u256.Uint256
		for i := range cands {
			cands[i] = base.FlipBit(i).FlipBit(i + 64)
		}
		if n := testing.AllocsPerRun(20, func() {
			m.MatchBatch(&cands, MatchWidth)
		}); n != 0 {
			t.Errorf("%v MatchBatch allocates %.1f/op", alg, n)
		}
	}

	for _, method := range iterseq.Methods() {
		it, err := iterseq.New(method, 256, 3, 0, -1)
		if err != nil {
			t.Fatal(err)
		}
		mi, ok := it.(iterseq.MaskIter)
		if !ok {
			t.Fatalf("%v: no MaskIter fast path", method)
		}
		var mask u256.Uint256
		if n := testing.AllocsPerRun(100, func() {
			mi.NextMask(&mask)
			_ = iterseq.ApplyMask(base, mask)
		}); n != 0 {
			t.Errorf("%v NextMask allocates %.1f/op", method, n)
		}
	}
}
