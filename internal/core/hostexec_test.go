package core

import (
	"context"
	"testing"

	"rbcsalted/internal/combin"
	"rbcsalted/internal/iterseq"
	"rbcsalted/internal/u256"
	"time"
)

// seedAtRank returns the candidate at the given rank of shell d in the
// method's own order, built independently of the engine under test.
func seedAtRank(t *testing.T, base u256.Uint256, d int, method iterseq.Method, rank uint64) u256.Uint256 {
	t.Helper()
	it, err := iterseq.New(method, 256, d, rank, 1)
	if err != nil {
		t.Fatalf("iterseq.New(%v, d=%d, rank=%d): %v", method, d, rank, err)
	}
	c := make([]int, d)
	if !it.Next(c) {
		t.Fatalf("iterator empty at rank %d", rank)
	}
	return iterseq.ApplySeed(base, c)
}

// TestBatchedMatchesScalarExhaustive is the cross-engine equivalence
// property: for every iteration method and both hash algorithms, the
// batched bit-sliced engine and the scalar oracle must agree on the
// found seed, and in exhaustive mode must both cover exactly C(256, d)
// seeds.
func TestBatchedMatchesScalarExhaustive(t *testing.T) {
	base := u256.FromUint64(0xfeed_beef_cafe_f00d)
	const d = 2
	total, _ := combin.Binomial64(256, d)

	// Plant targets at ranks chosen to exercise slot 0, a mid-batch
	// slot, a final-partial-batch slot, and the no-match case.
	ranks := []uint64{0, 37, total - 5}
	for _, alg := range []HashAlg{SHA1, SHA3} {
		for _, method := range iterseq.Methods() {
			for _, rank := range ranks {
				want := seedAtRank(t, base, d, method, rank)
				target := HashSeed(alg, want)
				runEngines(t, base, d, method, alg, target, true, 4, func(tag string, found bool, seed u256.Uint256, covered uint64) {
					if !found {
						t.Errorf("%s %v %v rank=%d: match not found", tag, alg, method, rank)
						return
					}
					if !seed.Equal(want) {
						t.Errorf("%s %v %v rank=%d: wrong seed", tag, alg, method, rank)
					}
					if covered != total {
						t.Errorf("%s %v %v rank=%d: covered %d, want %d", tag, alg, method, rank, covered, total)
					}
				})
			}
			// No match in the shell: the base's own digest is at
			// distance 0, outside shell d.
			target := HashSeed(alg, base)
			runEngines(t, base, d, method, alg, target, true, 4, func(tag string, found bool, _ u256.Uint256, covered uint64) {
				if found {
					t.Errorf("%s %v %v: spurious match", tag, alg, method)
				}
				if covered != total {
					t.Errorf("%s %v %v: covered %d, want %d", tag, alg, method, covered, total)
				}
			})
		}
	}
}

// TestBatchedMatchesScalarEarlyExit checks the early-exit path with a
// single worker: every batch engine must locate the same seed as the
// scalar oracle AND report the same covered count - the lane-exact
// accounting fix. Ranks are chosen to land mid-batch (4321 = 16*256+225)
// and inside the final partial batch of a d=2 shell (C(256,2) % 256 =
// 128 pad lanes), so both the winning-lane truncation and the padded
// tail are exercised.
func TestBatchedMatchesScalarEarlyExit(t *testing.T) {
	base := u256.FromUint64(7)
	d2total, _ := combin.Binomial64(256, 2)
	cases := []struct {
		d    int
		rank uint64
	}{
		{3, 4321},        // mid-batch lane of a full batch
		{2, d2total - 5}, // inside the padded final partial batch
	}
	for _, tc := range cases {
		for _, alg := range []HashAlg{SHA1, SHA3} {
			for _, method := range iterseq.Methods() {
				want := seedAtRank(t, base, tc.d, method, tc.rank)
				target := HashSeed(alg, want)
				var scalarCovered uint64
				runEngines(t, base, tc.d, method, alg, target, false, 1, func(tag string, found bool, seed u256.Uint256, covered uint64) {
					if !found {
						t.Errorf("%s %v %v d=%d: match not found", tag, alg, method, tc.d)
						return
					}
					if !seed.Equal(want) {
						t.Errorf("%s %v %v d=%d: wrong seed", tag, alg, method, tc.d)
					}
					// runEngines visits "scalar" first; every batch
					// engine must agree with it exactly.
					if tag == "scalar" {
						scalarCovered = covered
						if covered != tc.rank+1 {
							t.Errorf("scalar %v %v d=%d: covered %d, want rank+1 = %d",
								alg, method, tc.d, covered, tc.rank+1)
						}
					} else if covered != scalarCovered {
						t.Errorf("%s %v %v d=%d: covered %d, scalar oracle covered %d",
							tag, alg, method, tc.d, covered, scalarCovered)
					}
				})
			}
		}
	}
}

// forcedKernelFactory builds matchers pinned to one batch kernel,
// bypassing the calibration default, so every kernel is cross-validated
// even when it would not be selected in production.
func forcedKernelFactory(alg HashAlg, target Digest, kernel BatchKernel) MatcherFactory {
	return func() Matcher {
		m := NewHashMatcher(alg, target)
		m.Kernel = kernel
		return m
	}
}

// runEngines runs one shell search through the scalar oracle (always
// first), the calibration-default batched engine, and every implemented
// batch kernel forced on, handing each outcome to check.
func runEngines(t *testing.T, base u256.Uint256, d int, method iterseq.Method, alg HashAlg, target Digest, exhaustive bool, workers int, check func(tag string, found bool, seed u256.Uint256, covered uint64)) {
	t.Helper()
	batched := HashMatcherFactory(alg, target)
	type engine struct {
		tag string
		f   MatcherFactory
	}
	engines := []engine{
		{"scalar", ScalarMatcher(batched)},
		{"batched", batched},
	}
	for _, k := range BatchKernels(alg) {
		engines = append(engines, engine{k.String(), forcedKernelFactory(alg, target, k)})
	}
	for _, eng := range engines {
		found, seed, covered, _, err := SearchShellHost(
			context.Background(), base, d, method, workers, 0, exhaustive, time.Time{}, eng.f)
		if err != nil {
			t.Fatalf("%s: SearchShellHost: %v", eng.tag, err)
		}
		check(eng.tag, found, seed, covered)
	}
}

// TestMatchBatchPartialEqualsFull is the padded-tail regression test: a
// batch of n-1 candidates and a batch of n candidates must report
// identical verdicts for the shared lanes, for every batch kernel, with
// matches planted at the last kept lane (adjacent to the pad) and
// mid-batch. Before the fix, partial batches silently dropped to the
// scalar path and the sliced kernels never saw shell tails.
func TestMatchBatchPartialEqualsFull(t *testing.T) {
	base := u256.FromUint64(0x5eed)
	for _, alg := range []HashAlg{SHA1, SHA3} {
		kernels := append([]BatchKernel{KernelScalar}, BatchKernels(alg)...)
		for _, kernel := range kernels {
			for _, n := range []int{1, 5, 63, 64, 65, 255, 256} {
				var cands [MatchWidth]u256.Uint256
				for i := 0; i < n; i++ {
					cands[i] = base.FlipBit(i % 256).FlipBit((i*7 + 31) % 256)
				}
				// Plant the target at the last kept lane: a pad lane
				// replicates it, and must not be reported.
				target := HashSeed(alg, cands[n-1])
				m := NewHashMatcher(alg, target)
				m.Kernel = kernel
				full := m.MatchBatch(&cands, n)
				if !full.Bit(n - 1) {
					t.Errorf("%v/%v n=%d: planted match at lane %d not reported", alg, kernel, n, n-1)
				}
				if got := full.Count(); got != 1 {
					t.Errorf("%v/%v n=%d: %d lanes matched, want 1 (pad lanes must be trimmed)", alg, kernel, n, got)
				}
				// Dropping the last candidate must not change any other
				// lane's verdict.
				part := m.MatchBatch(&cands, n-1)
				if part.Any() {
					t.Errorf("%v/%v n=%d: truncated batch reports matches %v", alg, kernel, n, part)
				}
				// And a mid-batch plant survives truncation unchanged.
				if n >= 2 {
					mid := HashSeed(alg, cands[n/2])
					mm := NewHashMatcher(alg, mid)
					mm.Kernel = kernel
					a, b := mm.MatchBatch(&cands, n), mm.MatchBatch(&cands, n-1)
					if n/2 < n-1 && (a != b || !a.Bit(n/2)) {
						t.Errorf("%v/%v n=%d: mid-batch lane %d differs between n and n-1 (%v vs %v)",
							alg, kernel, n, n/2, a, b)
					}
				}
			}
		}
	}
}

// TestSearchRangeHostIterErrorPropagates covers the satellite fix: a
// worker whose iterator construction fails must surface the error from
// SearchRangeHost instead of panicking the process.
func TestSearchRangeHostIterErrorPropagates(t *testing.T) {
	base := u256.FromUint64(1)
	target := HashSeed(SHA1, base)
	// startRank beyond the shell size makes iterseq.New fail in-worker.
	total, _ := combin.Binomial64(256, 2)
	_, _, _, _, err := SearchRangeHost(
		context.Background(), base, 2, iterseq.Alg515, total+10, 5, 2, 0,
		false, time.Time{}, HashMatcherFactory(SHA1, target))
	if err == nil {
		t.Fatalf("SearchRangeHost with out-of-range startRank: want error, got nil")
	}
}

// TestSearchShellHostDefaultsCheckInterval: a zero or negative
// checkEvery must behave like DefaultCheckInterval, not hang or panic.
func TestSearchShellHostDefaultsCheckInterval(t *testing.T) {
	base := u256.FromUint64(3)
	want := seedAtRank(t, base, 2, iterseq.GrayCode, 100)
	target := HashSeed(SHA3, want)
	for _, ce := range []int{0, -7} {
		found, seed, _, _, err := SearchShellHost(
			context.Background(), base, 2, iterseq.GrayCode, 2, ce, false,
			time.Time{}, HashMatcherFactory(SHA3, target))
		if err != nil || !found || !seed.Equal(want) {
			t.Fatalf("checkEvery=%d: found=%v err=%v", ce, found, err)
		}
	}
}

// TestHashMatcherScalarAgreesWithHashSeed pins the quick-reject scalar
// path to the reference digest comparison.
func TestHashMatcherScalarAgreesWithHashSeed(t *testing.T) {
	base := u256.FromUint64(0xabcdef)
	for _, alg := range []HashAlg{SHA1, SHA3} {
		target := HashSeed(alg, base)
		m := NewHashMatcher(alg, target)
		if !m.Match(base) {
			t.Errorf("%v: self-match failed", alg)
		}
		if m.Match(base.FlipBit(17)) {
			t.Errorf("%v: matched a non-target seed", alg)
		}
	}
}

// TestHotLoopAllocs asserts the steady-state hot loops allocate
// nothing per seed: the scalar match, the 256-wide batched match on
// every kernel (full and padded-partial batches), the incremental mask
// iteration, and the batched fill loop.
func TestHotLoopAllocs(t *testing.T) {
	base := u256.FromUint64(99)
	for _, alg := range []HashAlg{SHA1, SHA3} {
		target := HashSeed(alg, base)
		m := NewHashMatcher(alg, target)

		cand := base.FlipBit(3).FlipBit(200)
		if n := testing.AllocsPerRun(100, func() {
			m.Match(cand)
		}); n != 0 {
			t.Errorf("%v scalar Match allocates %.1f/op", alg, n)
		}

		var cands [MatchWidth]u256.Uint256
		for i := range cands {
			cands[i] = base.FlipBit(i % 256).FlipBit((i + 64) % 256)
		}
		for _, kernel := range BatchKernels(alg) {
			m.Kernel = kernel
			for _, n := range []int{MatchWidth, MatchWidth - 3} {
				if a := testing.AllocsPerRun(10, func() {
					m.MatchBatch(&cands, n)
				}); a != 0 {
					t.Errorf("%v/%v MatchBatch(n=%d) allocates %.1f/op", alg, kernel, n, a)
				}
			}
		}
	}

	for _, method := range iterseq.Methods() {
		it, err := iterseq.New(method, 256, 3, 0, -1)
		if err != nil {
			t.Fatal(err)
		}
		mi, ok := it.(iterseq.MaskIter)
		if !ok {
			t.Fatalf("%v: no MaskIter fast path", method)
		}
		var mask u256.Uint256
		if n := testing.AllocsPerRun(100, func() {
			mi.NextMask(&mask)
			_ = iterseq.ApplyMask(base, mask)
		}); n != 0 {
			t.Errorf("%v NextMask allocates %.1f/op", method, n)
		}

		// The 256-wide fill loop: one NextMask + one 256-bit XOR per
		// candidate, zero allocations per batch.
		var cands [MatchWidth]u256.Uint256
		var scratch u256.Uint256
		if n := testing.AllocsPerRun(20, func() {
			iterseq.FillSeeds(mi, base, &scratch, cands[:])
		}); n != 0 {
			t.Errorf("%v FillSeeds allocates %.1f/op", method, n)
		}
	}
}
