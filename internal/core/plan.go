package core

import (
	"fmt"

	"rbcsalted/internal/combin"
	"rbcsalted/internal/iterseq"
	"rbcsalted/internal/u256"
)

// The event model: a data-parallel RBC search over p lockstep workers is
// fully determined by where the matching combination falls in the chosen
// iteration order. Backends that model hardware (A100, Gemini, 64-core
// EPYC) use PlanShells to locate that event analytically from the task's
// oracle, then price the covered seeds with their own per-seed cost
// models. The match itself is always re-verified by hashing.

// ShellPlan describes one Hamming-distance shell of a planned search.
type ShellPlan struct {
	// Distance is the shell's Hamming distance (>= 1; distance 0 is the
	// single base seed, handled separately).
	Distance int
	// Size is C(256, Distance), the number of seeds in the shell.
	Size uint64
	// PerWorkerMax is the largest per-worker share when the shell is
	// split over the planned worker count (ceiling division).
	PerWorkerMax uint64
	// HasMatch reports whether the oracle seed lies in this shell.
	HasMatch bool
	// MatchRank is the global rank of the matching combination in the
	// task's iteration order (valid when HasMatch).
	MatchRank uint64
	// MatchLocal is the number of seeds the finding worker hashes up to
	// and including the match (valid when HasMatch).
	MatchLocal uint64
}

// MatchShell returns the Hamming distance between base and the oracle
// seed.
func MatchShell(base, oracle u256.Uint256) int {
	return base.HammingDistance(oracle)
}

// MatchRank returns the rank, in the given method's order, of the
// combination of bit positions where base and oracle differ. It is the
// event-model primitive that lets simulators place the match without
// enumerating the shell.
func MatchRank(method iterseq.Method, base, oracle u256.Uint256) (uint64, error) {
	diff := base.Xor(oracle)
	k := diff.OnesCount()
	c := make([]int, 0, k)
	for i := 0; i < 256; i++ {
		if diff.Bit(i) == 1 {
			c = append(c, i)
		}
	}
	switch method {
	case iterseq.GrayCode:
		return iterseq.GrayRank(256, c)
	case iterseq.Alg515, iterseq.Mifsud154:
		return combin.RankLex(256, c)
	case iterseq.Gosper:
		return combin.RankColex(256, c)
	default:
		return 0, fmt.Errorf("core: no ranking for method %v", method)
	}
}

// PlanShells computes the event plan for a task split over the given
// worker count, covering shells task.StartShell()..task.MaxDistance (the
// progressive serving path consumes a plan's tail: shells below
// MinDistance were already covered inline and are not re-planned). It
// requires task.Oracle when a match exists beyond what hashing alone
// could locate; a nil oracle produces a plan with no match events (the
// caller is then modelling a search that never finds a seed).
func PlanShells(task Task, workers int) ([]ShellPlan, error) {
	if workers <= 0 {
		return nil, fmt.Errorf("core: workers must be positive, got %d", workers)
	}
	if task.MaxDistance < 0 || task.MaxDistance > 10 {
		return nil, fmt.Errorf("core: MaxDistance %d outside supported range [0,10]", task.MaxDistance)
	}
	startShell := task.StartShell()
	matchShell := -1
	var matchRankGlobal uint64
	if task.Oracle != nil {
		d := MatchShell(task.Base, *task.Oracle)
		if d <= task.MaxDistance {
			matchShell = d
			if d > 0 {
				r, err := MatchRank(task.Method, task.Base, *task.Oracle)
				if err != nil {
					return nil, err
				}
				matchRankGlobal = r
			}
		}
	}
	plans := make([]ShellPlan, 0, task.MaxDistance-startShell+1)
	for d := startShell; d <= task.MaxDistance; d++ {
		size, ok := combin.Binomial64(256, d)
		if !ok {
			return nil, fmt.Errorf("core: C(256,%d) overflows uint64", d)
		}
		p := ShellPlan{
			Distance:     d,
			Size:         size,
			PerWorkerMax: (size + uint64(workers) - 1) / uint64(workers),
		}
		if d == matchShell {
			p.HasMatch = true
			p.MatchRank = matchRankGlobal
			ranges, err := iterseq.Partition(256, d, workers)
			if err != nil {
				return nil, err
			}
			for _, r := range ranges {
				if matchRankGlobal >= r.Start && matchRankGlobal < r.Start+r.Count {
					p.MatchLocal = matchRankGlobal - r.Start + 1
					break
				}
			}
		}
		plans = append(plans, p)
	}
	return plans, nil
}

// CoveredAtExit returns the number of seeds covered across all workers
// when the finding worker signals after its local seed number matchLocal,
// with workers polling the exit flag every checkInterval seeds. Workers
// are modelled in lockstep; each covers at most its own share.
func (p ShellPlan) CoveredAtExit(workers, checkInterval int) uint64 {
	if !p.HasMatch {
		return p.Size
	}
	if checkInterval < 1 {
		checkInterval = 1
	}
	// Non-finding workers continue until their next flag poll.
	lag := p.MatchLocal + uint64(checkInterval) - 1
	perWorker := min64(lag, p.PerWorkerMax)
	covered := p.MatchLocal + uint64(workers-1)*perWorker
	if covered > p.Size {
		covered = p.Size
	}
	return covered
}

func min64(a, b uint64) uint64 {
	if a < b {
		return a
	}
	return b
}
