// Package core implements RBC-SALTED, the paper's contribution: a
// response-based-cryptography protocol whose server-side search brute
// forces the Hamming ball around an enrolled PUF image by *hashing*
// candidate seeds, making the search agnostic to the public-key algorithm
// that is applied - once, after salting - to the recovered seed.
//
// The package defines the protocol roles (client, certificate authority,
// registration authority), the search task/result types, and the Backend
// interface that the CPU, GPU-simulator and APU-simulator engines
// implement.
package core

import (
	"fmt"

	"rbcsalted/internal/keccak"
	"rbcsalted/internal/sha1"
	"rbcsalted/internal/u256"
)

// HashAlg selects the hash used by the RBC-SALTED search.
type HashAlg int

const (
	// SHA3 is SHA3-256, the NIST-standardized choice and the zero-value
	// default.
	SHA3 HashAlg = iota
	// SHA1 is included for cross-platform performance comparison only;
	// it is cryptographically broken (paper §4.2).
	SHA1
)

// String returns the algorithm's display name.
func (a HashAlg) String() string {
	switch a {
	case SHA1:
		return "SHA-1"
	case SHA3:
		return "SHA-3"
	default:
		return fmt.Sprintf("HashAlg(%d)", int(a))
	}
}

// HashAlgs lists the supported algorithms in display order.
func HashAlgs() []HashAlg { return []HashAlg{SHA1, SHA3} }

// DigestSize returns the digest length in bytes.
func (a HashAlg) DigestSize() int {
	switch a {
	case SHA1:
		return sha1.Size
	case SHA3:
		return 32
	}
	panic(fmt.Sprintf("core: unknown hash algorithm %d", int(a)))
}

// Digest is a message digest of up to 32 bytes, tagged with its algorithm.
type Digest struct {
	Alg HashAlg
	b   [32]byte
}

// Bytes returns the digest value.
func (d Digest) Bytes() []byte { return d.b[:d.Alg.DigestSize()] }

// Equal reports whether two digests share algorithm and value.
func (d Digest) Equal(other Digest) bool {
	return d.Alg == other.Alg && d.b == other.b
}

// String renders the digest as hex.
func (d Digest) String() string { return fmt.Sprintf("%x", d.Bytes()) }

// DigestFromBytes rebuilds a Digest from a wire-format value.
func DigestFromBytes(alg HashAlg, b []byte) (Digest, error) {
	if len(b) != alg.DigestSize() {
		return Digest{}, fmt.Errorf("core: %s digest must be %d bytes, got %d",
			alg, alg.DigestSize(), len(b))
	}
	d := Digest{Alg: alg}
	copy(d.b[:], b)
	return d, nil
}

// HashSeed hashes a 256-bit seed with the fixed-padding fast path
// (paper §3.2.2). This is the operation the search performs billions of
// times.
func HashSeed(alg HashAlg, seed u256.Uint256) Digest {
	raw := seed.Bytes()
	d := Digest{Alg: alg}
	switch alg {
	case SHA1:
		sum := sha1.SumSeed(&raw)
		copy(d.b[:], sum[:])
	case SHA3:
		d.b = keccak.Sum256Seed(&raw)
	default:
		panic(fmt.Sprintf("core: unknown hash algorithm %d", int(alg)))
	}
	return d
}
