package core

import "hash/fnv"

// Journal receives every durable mutation of the CA's state — image puts
// and deletes, RA key/certificate updates and deletions, and session
// opens and closes — before the mutation is applied to the in-memory
// maps. A journal that returns an error vetoes the mutation: the store
// leaves its map untouched and propagates the error, so memory never
// gets ahead of the log.
//
// The canonical implementation is internal/durable.State, which appends
// a record to a write-ahead log. Image blobs reach the journal already
// sealed under the store's AES-256-GCM master key, so a journal (and
// therefore the WAL and every snapshot) never sees a plaintext PUF
// image.
//
// All methods must be safe for concurrent use; they are invoked while
// the owning shard's lock is held, which serializes journal entries for
// the same client but not across clients.
type Journal interface {
	// ImagePut records an enrollment (or re-enrollment): the sealed blob
	// stored for id.
	ImagePut(id ClientID, sealed []byte) error
	// ImageDelete records an image removal (device revocation).
	ImageDelete(id ClientID) error
	// RAKeyUpdate records the client's new public key after a successful
	// authentication (RBC-SALTED re-keys on every authentication).
	RAKeyUpdate(id ClientID, publicKey []byte) error
	// RACertUpdate records the client's new CA certificate.
	RACertUpdate(id ClientID, cert *Certificate) error
	// RADelete records removal of a client from the registry.
	RADelete(id ClientID) error
	// SessionOpen records an issued handshake challenge.
	SessionOpen(id ClientID, ch Challenge) error
	// SessionClose records consumption (or expiry) of a session.
	SessionClose(id ClientID) error
}

// DefaultShards is the stripe count of the sharded stores (ImageStore,
// RA, SessionTable). 16 stripes keep lock contention negligible at the
// serving concurrency the scheduler admits while costing ~1 KiB of
// mutexes per store.
const DefaultShards = 16

// shardIndex maps a client ID onto one of n stripes with FNV-1a. The
// same function is used by every sharded store, so a client's image,
// keys and session always hash consistently.
func shardIndex(id ClientID, n int) int {
	h := fnv.New32a()
	h.Write([]byte(id))
	return int(h.Sum32() % uint32(n))
}
