package core

import (
	"context"
	"fmt"
	"testing"
	"time"

	"rbcsalted/internal/combin"
	"rbcsalted/internal/iterseq"
	"rbcsalted/internal/u256"
)

// BenchmarkShellHost measures the host search engine's throughput over
// one exhaustive d=2 shell (C(256,2) = 32640 seeds) on a single worker,
// for every algorithm x iteration method, on both the batched
// bit-sliced path and the scalar oracle. The custom seeds/sec metric is
// what the hostthroughput experiment tabulates.
func BenchmarkShellHost(b *testing.B) {
	base := u256.FromUint64(0xbadc0ffee)
	const d = 2
	total, _ := combin.Binomial64(256, d)

	for _, alg := range []HashAlg{SHA1, SHA3} {
		// A target outside the shell keeps the search exhaustive-shaped
		// even with early exit enabled: every seed is hashed.
		target := HashSeed(alg, base)
		batched := HashMatcherFactory(alg, target)
		for _, method := range iterseq.Methods() {
			for _, eng := range []struct {
				name    string
				factory MatcherFactory
			}{
				{"batched", batched},
				{"scalar", ScalarMatcher(batched)},
			} {
				b.Run(fmt.Sprintf("%s/%s/%s", alg, method, eng.name), func(b *testing.B) {
					b.ReportAllocs()
					start := time.Now()
					for i := 0; i < b.N; i++ {
						_, _, covered, _, err := SearchShellHost(
							context.Background(), base, d, method, 1, 0,
							false, time.Time{}, eng.factory)
						if err != nil {
							b.Fatal(err)
						}
						if covered != total {
							b.Fatalf("covered %d, want %d", covered, total)
						}
					}
					secs := time.Since(start).Seconds()
					b.ReportMetric(float64(total)*float64(b.N)/secs, "seeds/sec")
				})
			}
		}
	}
}
