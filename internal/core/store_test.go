package core

import (
	"bytes"
	"testing"

	"rbcsalted/internal/puf"
)

func testImage(t *testing.T) *puf.Image {
	t.Helper()
	dev, err := puf.NewDevice(31, 512, puf.DefaultProfile)
	if err != nil {
		t.Fatal(err)
	}
	im, err := puf.Enroll(dev, 11)
	if err != nil {
		t.Fatal(err)
	}
	return im
}

func TestImageStoreRoundTrip(t *testing.T) {
	store, err := NewImageStore([32]byte{9, 9, 9})
	if err != nil {
		t.Fatal(err)
	}
	im := testImage(t)
	if err := store.Put("alice", im); err != nil {
		t.Fatal(err)
	}
	got, err := store.Get("alice")
	if err != nil {
		t.Fatal(err)
	}
	for i := range im.Values {
		if got.Values[i] != im.Values[i] || got.Instability[i] != im.Instability[i] {
			t.Fatalf("image corrupted at cell %d", i)
		}
	}
	if store.Len() != 1 {
		t.Errorf("Len = %d", store.Len())
	}
}

func TestImageStoreMissingAndDelete(t *testing.T) {
	store, _ := NewImageStore([32]byte{})
	if _, err := store.Get("nobody"); err == nil {
		t.Error("missing client returned an image")
	}
	if err := store.Put("x", nil); err == nil {
		t.Error("nil image accepted")
	}
	store.Put("x", testImage(t))
	store.Delete("x")
	if _, err := store.Get("x"); err == nil {
		t.Error("deleted client still readable")
	}
}

func TestImageStoreIsActuallyEncrypted(t *testing.T) {
	store, _ := NewImageStore([32]byte{1})
	im := testImage(t)
	store.Put("alice", im)
	// Reach into the sealed blob: it must not contain the plaintext
	// serialization prefix.
	blob := store.SealedSnapshot()["alice"]
	if len(blob) == 0 {
		t.Fatal("no blob stored")
	}
	// gob streams of puf.Image start with a type descriptor containing the
	// struct name; a sealed blob must not leak it.
	if containsSubslice(blob, []byte("Image")) || containsSubslice(blob, []byte("Instability")) {
		t.Error("stored blob leaks plaintext structure")
	}
}

func TestImageStoreBlobTamperDetected(t *testing.T) {
	store, _ := NewImageStore([32]byte{1})
	store.Put("alice", testImage(t))
	blob := store.SealedSnapshot()["alice"]
	blob[len(blob)-1] ^= 0xFF
	store.PutSealed("alice", blob)
	if _, err := store.Get("alice"); err == nil {
		t.Error("tampered blob accepted")
	}
	// Truncated blob shorter than a nonce.
	store.PutSealed("bob", []byte{1, 2})
	if _, err := store.Get("bob"); err == nil {
		t.Error("truncated blob accepted")
	}
}

func TestImageStoreKeyBinding(t *testing.T) {
	// A blob sealed for one client id must not open under another
	// (additional authenticated data binds identity).
	store, _ := NewImageStore([32]byte{1})
	store.Put("alice", testImage(t))
	store.PutSealed("eve", store.SealedSnapshot()["alice"])
	if _, err := store.Get("eve"); err == nil {
		t.Error("blob replayed under a different identity")
	}
}

func containsSubslice(haystack, needle []byte) bool {
	for i := 0; i+len(needle) <= len(haystack); i++ {
		if string(haystack[i:i+len(needle)]) == string(needle) {
			return true
		}
	}
	return false
}

func TestImageStoreSaveLoadRoundTrip(t *testing.T) {
	key := [32]byte{3, 1, 4}
	store, _ := NewImageStore(key)
	im := testImage(t)
	if err := store.Put("alice", im); err != nil {
		t.Fatal(err)
	}
	var buf bytes.Buffer
	if err := store.Save(&buf); err != nil {
		t.Fatal(err)
	}
	// The persisted form must not leak plaintext either.
	if containsSubslice(buf.Bytes(), []byte("Instability")) {
		t.Error("saved store leaks plaintext structure")
	}
	loaded, err := LoadImageStore(key, &buf)
	if err != nil {
		t.Fatal(err)
	}
	got, err := loaded.Get("alice")
	if err != nil {
		t.Fatal(err)
	}
	for i := range im.Values {
		if got.Values[i] != im.Values[i] {
			t.Fatalf("image corrupted at cell %d", i)
		}
	}
}

func TestImageStoreLoadWrongKey(t *testing.T) {
	store, _ := NewImageStore([32]byte{1})
	store.Put("alice", testImage(t))
	var buf bytes.Buffer
	if err := store.Save(&buf); err != nil {
		t.Fatal(err)
	}
	loaded, err := LoadImageStore([32]byte{2}, &buf)
	if err != nil {
		t.Fatal(err) // load succeeds; decryption must fail
	}
	if _, err := loaded.Get("alice"); err == nil {
		t.Error("wrong master key opened a sealed image")
	}
}

func TestImageStoreLoadGarbage(t *testing.T) {
	if _, err := LoadImageStore([32]byte{}, bytes.NewReader([]byte("not a store"))); err == nil {
		t.Error("garbage accepted as a store")
	}
}
