package core

import "sync"

// Matcher reuse. A HashMatcher carries ~180KB of kernel staging buffers
// plus the resident sliced candidate state of the delta kernel, and a
// serving CA builds one per worker per search — thousands per second at
// paper-scale load, each a fresh large allocation the GC then has to
// chase. PooledHashMatcherFactory recycles them through a sync.Pool;
// Reset on every draw re-derives all target state and invalidates the
// resident delta chain, so reuse never leaks candidate or target state
// across tasks.

// MatcherReleaser is an optional Matcher capability: the host search
// calls ReleaseMatcher once a worker goroutine is done with its matcher,
// giving pooled matchers their way back to the pool. A matcher must not
// be used after release.
type MatcherReleaser interface {
	ReleaseMatcher()
}

// ReleaseMatcher forwards the release hook through the batch-capability
// strip, so forcing the scalar path does not strand pooled matchers.
func (s scalarOnly) ReleaseMatcher() {
	if r, ok := s.m.(MatcherReleaser); ok {
		r.ReleaseMatcher()
	}
}

// pooledHashMatcher is a HashMatcher that returns itself to its pool on
// release. The wrapper (not the HashMatcher) carries the pool pointer so
// the pooled object stays a clean *HashMatcher.
type pooledHashMatcher struct {
	*HashMatcher
	pool *sync.Pool
}

func (p *pooledHashMatcher) ReleaseMatcher() { p.pool.Put(p.HashMatcher) }

// PooledHashMatcherFactory is HashMatcherFactory drawing matchers from
// pool instead of allocating one per worker. The pool is caller-owned
// (typically one per backend) and needs no New function; an empty pool
// allocates. Matchers come out Reset to (alg, target) and go back when
// the search worker releases them.
func PooledHashMatcherFactory(pool *sync.Pool, alg HashAlg, target Digest) MatcherFactory {
	return func() Matcher {
		m, ok := pool.Get().(*HashMatcher)
		if !ok {
			m = &HashMatcher{}
		}
		m.Reset(alg, target)
		pm := &pooledHashMatcher{HashMatcher: m, pool: pool}
		if m.Kernel == KernelScalar {
			return scalarOnly{pm}
		}
		return pm
	}
}
