package core

import (
	"context"
	"testing"
	"time"

	"rbcsalted/internal/cryptoalg/aeskg"
	"rbcsalted/internal/puf"
)

func testIssuer(validity time.Duration, now time.Time) *Issuer {
	iss := NewIssuer([32]byte{0xCA})
	if validity > 0 {
		iss.Validity = validity
	}
	if !now.IsZero() {
		iss.now = func() time.Time { return now }
	}
	return iss
}

func TestIssueAndVerify(t *testing.T) {
	iss := testIssuer(0, time.Time{})
	cert, err := iss.Issue("alice", "AES-128", []byte{1, 2, 3})
	if err != nil {
		t.Fatal(err)
	}
	if err := cert.Verify(iss.PublicKey(), time.Now()); err != nil {
		t.Errorf("fresh certificate invalid: %v", err)
	}
}

func TestIssueRejectsEmptyKey(t *testing.T) {
	iss := testIssuer(0, time.Time{})
	if _, err := iss.Issue("alice", "AES-128", nil); err == nil {
		t.Error("empty key certified")
	}
}

func TestVerifyDetectsTampering(t *testing.T) {
	iss := testIssuer(0, time.Time{})
	cert, _ := iss.Issue("alice", "AES-128", []byte{1, 2, 3})
	caKey := iss.PublicKey()

	tests := []func(c *Certificate){
		func(c *Certificate) { c.ClientID = "mallory" },
		func(c *Certificate) { c.KeyAlgorithm = "Dilithium3" },
		func(c *Certificate) { c.PublicKey = []byte{9, 9, 9} },
		func(c *Certificate) { c.ExpiresAt = c.ExpiresAt.Add(time.Hour) },
		func(c *Certificate) { c.Signature[0] ^= 1 },
		func(c *Certificate) { c.Signature = c.Signature[:10] },
	}
	for i, mutate := range tests {
		bad := *cert
		bad.PublicKey = append([]byte(nil), cert.PublicKey...)
		bad.Signature = append([]byte(nil), cert.Signature...)
		mutate(&bad)
		if err := bad.Verify(caKey, time.Now()); err == nil {
			t.Errorf("mutation %d accepted", i)
		}
	}
}

func TestVerifyRejectsWrongCA(t *testing.T) {
	iss := testIssuer(0, time.Time{})
	other := NewIssuer([32]byte{0xFE})
	cert, _ := iss.Issue("alice", "AES-128", []byte{1})
	if err := cert.Verify(other.PublicKey(), time.Now()); err == nil {
		t.Error("foreign CA key accepted")
	}
}

func TestCertificateLifetime(t *testing.T) {
	issued := time.Date(2026, 7, 4, 12, 0, 0, 0, time.UTC)
	iss := testIssuer(5*time.Minute, issued)
	cert, _ := iss.Issue("alice", "AES-128", []byte{1})
	caKey := iss.PublicKey()

	if err := cert.Verify(caKey, issued.Add(time.Minute)); err != nil {
		t.Errorf("valid window rejected: %v", err)
	}
	if err := cert.Verify(caKey, issued.Add(-time.Minute)); err == nil {
		t.Error("not-yet-valid certificate accepted")
	}
	if err := cert.Verify(caKey, issued.Add(6*time.Minute)); err == nil {
		t.Error("expired certificate accepted")
	}
}

func TestSigningBytesInjective(t *testing.T) {
	// The length-prefixed encoding must distinguish field boundaries:
	// ("ab", "c") vs ("a", "bc") must not collide.
	a := &Certificate{ClientID: "ab", KeyAlgorithm: "c", PublicKey: []byte{1}}
	b := &Certificate{ClientID: "a", KeyAlgorithm: "bc", PublicKey: []byte{1}}
	if string(a.signingBytes()) == string(b.signingBytes()) {
		t.Error("signing encoding is ambiguous")
	}
}

func TestCAIssuesCertificates(t *testing.T) {
	profile := puf.Profile{BaseError: 0.5 / 256.0}
	ca, ra, _ := newTestCA(t, SHA3)
	iss := NewIssuer([32]byte{0xCA, 0xFE})
	ca.UseIssuer(iss)
	client := enrollTestClient(t, ca, "alice", 311, profile)

	ch, err := ca.BeginHandshake("alice")
	if err != nil {
		t.Fatal(err)
	}
	m1, err := client.Respond(ch)
	if err != nil {
		t.Fatal(err)
	}
	res, err := ca.Authenticate(context.Background(), AuthRequest{Client: "alice", Nonce: ch.Nonce, M1: m1})
	if err != nil {
		t.Fatal(err)
	}
	if !res.Authenticated || res.Certificate == nil {
		t.Fatalf("no certificate issued: %+v", res)
	}
	if err := res.Certificate.Verify(iss.PublicKey(), time.Now()); err != nil {
		t.Errorf("issued certificate invalid: %v", err)
	}
	if res.Certificate.KeyAlgorithm != (&aeskg.Generator{}).Name() {
		t.Errorf("certificate names algorithm %q", res.Certificate.KeyAlgorithm)
	}
	// The RA must hold the same binding, and returned copies must be
	// independent.
	raCert, ok := ra.Certificate("alice")
	if !ok {
		t.Fatal("RA has no certificate")
	}
	if string(raCert.PublicKey) != string(res.PublicKey) {
		t.Error("RA certificate key mismatch")
	}
	raCert.ClientID = "mallory"
	again, _ := ra.Certificate("alice")
	if again.ClientID != "alice" {
		t.Error("RA exposes internal certificate storage")
	}
}

func TestRACertificateMissing(t *testing.T) {
	ra := NewRA()
	if _, ok := ra.Certificate("nobody"); ok {
		t.Error("empty RA returned a certificate")
	}
}
