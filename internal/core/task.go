package core

import (
	"context"
	"time"

	"rbcsalted/internal/iterseq"
	"rbcsalted/internal/obs"
	"rbcsalted/internal/u256"
)

// Task describes one RBC search: recover the seed whose digest matches the
// client's within a Hamming ball around the enrolled image.
type Task struct {
	// Base is S_init, derived from the server's PUF image.
	Base u256.Uint256
	// Target is M_1, the digest the client sent.
	Target Digest
	// MaxDistance is the largest Hamming distance searched (inclusive).
	// All shells MinDistance..MaxDistance are covered, in order.
	MaxDistance int
	// MinDistance is the smallest Hamming distance searched. Zero (the
	// default) starts with the distance-0 base probe; a positive value
	// skips the shells below it — the distance-progressive serving path
	// sets MinDistance after covering d <= CA InlineDepth inline on the
	// host, so the escalated backend search never re-covers them. See
	// StartShell.
	MinDistance int
	// Method selects the seed-iteration algorithm (paper §3.2.1).
	Method iterseq.Method
	// Exhaustive disables the early exit: every shell up to MaxDistance is
	// fully covered even after a match, giving the upper-bound timing of
	// Equation 1. The match is still reported.
	Exhaustive bool
	// CheckInterval is the number of seeds a worker hashes between polls
	// of the early-exit flag, the context, and the deadline (paper §4.4).
	// Zero means DefaultCheckInterval; see EffectiveCheckInterval. The
	// host engine rounds it up to whole MatchWidth batches.
	CheckInterval int
	// TimeLimit is the authentication threshold T. Zero means no limit.
	// Backends stop and report !Found when modelled time exceeds it.
	TimeLimit time.Duration
	// Class is the request's QoS class (see QoSClass); the scheduler
	// orders its admission queues by it. Zero is ClassInteractive.
	Class QoSClass
	// Deadline, when non-zero, is the absolute wall-clock time by which
	// the caller needs the result. The scheduler refuses tasks it cannot
	// finish in time (ErrDeadlineInfeasible) and caps the derived
	// TimeLimit+grace search deadline at it.
	Deadline time.Time
	// Oracle optionally carries the ground-truth client seed for
	// event-driven simulators: it lets a modelled device locate the match
	// analytically instead of hashing billions of candidates on the host.
	// Backends must verify (by hashing) any match the oracle suggests,
	// and must never report a match that hashing does not confirm.
	Oracle *u256.Uint256
	// Trace, when non-nil, receives this search's trace events: the
	// scheduler's queue transitions plus every backend's start/end and
	// per-shell progress (see the Trace* helpers). Nil disables tracing
	// at near-zero cost.
	Trace obs.TraceSink
	// TraceID correlates this search's trace events. The scheduler
	// stamps a unique ID onto tasks that arrive without one; direct
	// backend callers may set their own.
	TraceID uint64
}

// DefaultCheckInterval is the early-exit poll interval applied when a
// Task leaves CheckInterval at zero.
//
// The paper's §4.4 flag-interval sweep found intervals from 1 to 64
// seeds indistinguishable on the GPU (the flag stays cached), so the
// interval trades nothing below ~10^3: polling costs an atomic load, a
// channel select and a time.Now() call, which at interval 1 can rival
// the hash itself, while the only price of a longer interval is
// early-exit latency - a worker overshoots a peer's match by at most
// one interval (microseconds at host hash rates). 1024 keeps the poll
// overhead under 0.1% of hot-loop time and is a whole multiple of
// MatchWidth, so the batched engine polls every 4 wide batches exactly.
const DefaultCheckInterval = 1024

// EffectiveCheckInterval returns CheckInterval with the unset (zero or
// negative) value normalized to DefaultCheckInterval. Backends pass this
// - not the raw field - to the host execution engine, so the default is
// decided in exactly one place.
func (t Task) EffectiveCheckInterval() int {
	if t.CheckInterval < 1 {
		return DefaultCheckInterval
	}
	return t.CheckInterval
}

// StartShell returns the first Hamming shell (>= 1) a backend's shell
// loop must cover, normalizing a negative MinDistance to the default.
// The distance-0 base probe is separate: run it iff IncludeBase.
func (t Task) StartShell() int {
	if t.MinDistance < 1 {
		return 1
	}
	return t.MinDistance
}

// IncludeBase reports whether the search covers the distance-0 base
// probe (false when MinDistance skips past it).
func (t Task) IncludeBase() bool { return t.MinDistance <= 0 }

// Result reports the outcome and cost of one RBC search.
type Result struct {
	// Found reports whether a seed hashing to Target was located.
	Found bool
	// Seed is the recovered seed when Found.
	Seed u256.Uint256
	// Distance is the Hamming distance at which the seed was found.
	Distance int
	// SeedsCovered counts the candidate seeds the search accounts for.
	// For exhaustive searches this is u(MaxDistance); for early-exit
	// searches it is the number of seeds covered before termination.
	SeedsCovered uint64
	// HashesExecuted counts digests actually computed on the host. Real
	// backends hash everything they cover; modelled backends hash a
	// validation sample plus the verified match.
	HashesExecuted uint64
	// DeviceSeconds is the modelled search-only time on the backend's
	// device. For real backends it equals the measured wall time.
	DeviceSeconds float64
	// WallSeconds is host wall-clock time actually spent.
	WallSeconds float64
	// EnergyJoules and PeakWatts report the device power model's
	// accounting; zero when the backend has no power model.
	EnergyJoules float64
	PeakWatts    float64
	// TimedOut reports that the search stopped at TimeLimit.
	TimedOut bool
	// Shells breaks the search down per Hamming distance, in the order
	// the shells were processed (the distance-0 probe is not included).
	Shells []ShellStat
}

// ShellStat is one Hamming shell's contribution to a search.
type ShellStat struct {
	// Distance is the shell's Hamming distance.
	Distance int
	// SeedsCovered is the number of candidates accounted for in this
	// shell.
	SeedsCovered uint64
	// DeviceSeconds is the modelled (or, for real backends, measured)
	// time spent in this shell.
	DeviceSeconds float64
}

// Backend is a search engine bound to a hash algorithm and a hardware
// platform (real or modelled).
type Backend interface {
	// Name identifies the engine and platform for reports.
	Name() string
	// Search runs one RBC search to completion, timeout or cancellation.
	//
	// Cancellation contract: backends poll ctx cooperatively (at the same
	// granularity as the early-exit flag, i.e. every CheckInterval seeds
	// for real execution, between shells for modelled execution). When ctx
	// is cancelled or its deadline passes mid-search, Search stops
	// promptly and returns the partial Result accumulated so far together
	// with ctx.Err() — callers that care about partial telemetry (e.g.
	// the scheduler's accounting) may inspect the Result even when err is
	// context.Canceled or context.DeadlineExceeded.
	Search(ctx context.Context, task Task) (Result, error)
}
