package core

import (
	"context"
	"errors"
	"fmt"
	"sync"
	"time"

	"rbcsalted/internal/cryptoalg"
	"rbcsalted/internal/iterseq"
	"rbcsalted/internal/obs"
	"rbcsalted/internal/puf"
	"rbcsalted/internal/u256"
)

// ClientID identifies an enrolled client device.
type ClientID string

// DefaultSaltRotation is the shared salt applied to a recovered seed
// before key generation: a fixed bit rotation, so there is no computable
// correspondence between the hashed seed and the key-generation input
// (paper §3, step 7).
const DefaultSaltRotation = 113

// DefaultTimeLimit is the authentication threshold T = 20 s used
// throughout the paper.
const DefaultTimeLimit = 20 * time.Second

// DefaultSessionTTL is the default lifetime of an issued challenge:
// comfortably above the 20 s search threshold plus the paper's 0.90 s
// communication constant, but short enough that an abandoned handshake's
// nonce stops being answerable quickly.
const DefaultSessionTTL = 30 * time.Second

// SaltSeed applies the shared salt to a recovered seed.
func SaltSeed(seed u256.Uint256, rotation int) u256.Uint256 {
	return seed.RotateLeft(rotation)
}

// Challenge is the CA's half of the handshake: which PUF cells the client
// must read for this session, and how to digest them. IssuedAt bounds
// the session's life: past CAConfig.SessionTTL the nonce is no longer
// answerable (it would otherwise stay replayable indefinitely).
type Challenge struct {
	Nonce      uint64
	AddressMap []int
	Alg        HashAlg
	IssuedAt   time.Time
}

// RA is the registration authority: the registry of authenticated client
// public keys (and their CA certificates) that the CA updates after each
// successful RBC search and relying parties query. Entries are striped
// across lock shards, and every mutation runs through the attached
// Journal (if any) before it lands in the maps.
type RA struct {
	journal Journal
	shards  []raShard
}

type raShard struct {
	mu    sync.RWMutex
	keys  map[ClientID][]byte
	certs map[ClientID]*Certificate
}

// NewRA returns an empty registry with the default shard count.
func NewRA() *RA {
	return NewRAShards(DefaultShards)
}

// NewRAShards returns an empty registry with an explicit lock-stripe
// count (1 reproduces the single-mutex baseline).
func NewRAShards(shards int) *RA {
	if shards < 1 {
		shards = 1
	}
	ra := &RA{shards: make([]raShard, shards)}
	for i := range ra.shards {
		ra.shards[i].keys = make(map[ClientID][]byte)
		ra.shards[i].certs = make(map[ClientID]*Certificate)
	}
	return ra
}

// SetJournal attaches a mutation journal (nil detaches). Attach during
// assembly, before the registry is shared.
func (ra *RA) SetJournal(j Journal) { ra.journal = j }

func (ra *RA) shard(id ClientID) *raShard {
	return &ra.shards[shardIndex(id, len(ra.shards))]
}

// Update records the client's current public key.
func (ra *RA) Update(id ClientID, publicKey []byte) error {
	sh := ra.shard(id)
	sh.mu.Lock()
	defer sh.mu.Unlock()
	if ra.journal != nil {
		if err := ra.journal.RAKeyUpdate(id, publicKey); err != nil {
			return fmt.Errorf("core: journal RA key for %q: %w", id, err)
		}
	}
	sh.keys[id] = append([]byte(nil), publicKey...)
	return nil
}

// UpdateCertificate records the client's current certificate.
func (ra *RA) UpdateCertificate(id ClientID, cert *Certificate) error {
	sh := ra.shard(id)
	sh.mu.Lock()
	defer sh.mu.Unlock()
	if ra.journal != nil {
		if err := ra.journal.RACertUpdate(id, cert); err != nil {
			return fmt.Errorf("core: journal RA certificate for %q: %w", id, err)
		}
	}
	copied := *cert
	sh.certs[id] = &copied
	return nil
}

// Delete removes a client's key and certificate (deprovisioning).
// Deleting an unregistered client is a no-op and is not journaled.
func (ra *RA) Delete(id ClientID) error {
	sh := ra.shard(id)
	sh.mu.Lock()
	defer sh.mu.Unlock()
	_, hasKey := sh.keys[id]
	_, hasCert := sh.certs[id]
	if !hasKey && !hasCert {
		return nil
	}
	if ra.journal != nil {
		if err := ra.journal.RADelete(id); err != nil {
			return fmt.Errorf("core: journal RA delete for %q: %w", id, err)
		}
	}
	delete(sh.keys, id)
	delete(sh.certs, id)
	return nil
}

// SetKey applies a public key without journaling (the replay path).
func (ra *RA) SetKey(id ClientID, publicKey []byte) {
	sh := ra.shard(id)
	sh.mu.Lock()
	sh.keys[id] = append([]byte(nil), publicKey...)
	sh.mu.Unlock()
}

// SetCertificate applies a certificate without journaling (the replay
// path).
func (ra *RA) SetCertificate(id ClientID, cert *Certificate) {
	sh := ra.shard(id)
	sh.mu.Lock()
	copied := *cert
	sh.certs[id] = &copied
	sh.mu.Unlock()
}

// Forget removes a client without journaling (the replay path of an
// RADelete record).
func (ra *RA) Forget(id ClientID) {
	sh := ra.shard(id)
	sh.mu.Lock()
	delete(sh.keys, id)
	delete(sh.certs, id)
	sh.mu.Unlock()
}

// Certificate returns the registered certificate for a client, if any.
func (ra *RA) Certificate(id ClientID) (*Certificate, bool) {
	sh := ra.shard(id)
	sh.mu.RLock()
	defer sh.mu.RUnlock()
	c, ok := sh.certs[id]
	if !ok {
		return nil, false
	}
	copied := *c
	return &copied, true
}

// PublicKey returns the registered key for a client, if any.
func (ra *RA) PublicKey(id ClientID) ([]byte, bool) {
	sh := ra.shard(id)
	sh.mu.RLock()
	defer sh.mu.RUnlock()
	k, ok := sh.keys[id]
	if !ok {
		return nil, false
	}
	return append([]byte(nil), k...), true
}

// SnapshotKeys copies every registered public key.
func (ra *RA) SnapshotKeys() map[ClientID][]byte {
	out := make(map[ClientID][]byte)
	for i := range ra.shards {
		sh := &ra.shards[i]
		sh.mu.RLock()
		for id, k := range sh.keys {
			out[id] = append([]byte(nil), k...)
		}
		sh.mu.RUnlock()
	}
	return out
}

// SnapshotCertificates copies every registered certificate.
func (ra *RA) SnapshotCertificates() map[ClientID]*Certificate {
	out := make(map[ClientID]*Certificate)
	for i := range ra.shards {
		sh := &ra.shards[i]
		sh.mu.RLock()
		for id, c := range sh.certs {
			copied := *c
			out[id] = &copied
		}
		sh.mu.RUnlock()
	}
	return out
}

// Len returns the number of clients with a registered key or
// certificate.
func (ra *RA) Len() int {
	n := 0
	for i := range ra.shards {
		sh := &ra.shards[i]
		sh.mu.RLock()
		n += len(sh.keys)
		for id := range sh.certs {
			if _, ok := sh.keys[id]; !ok {
				n++
			}
		}
		sh.mu.RUnlock()
	}
	return n
}

// CAConfig collects the CA's tunable policy.
type CAConfig struct {
	// Alg is the search hash (default SHA3).
	Alg HashAlg
	// MaxDistance bounds the search (default 5, the paper's nominal PUF
	// error budget).
	MaxDistance int
	// Method is the seed iterator (default GrayCode, the fastest).
	Method iterseq.Method
	// TimeLimit is the authentication threshold T (default 20 s).
	TimeLimit time.Duration
	// TAPKIThreshold masks enrollment cells whose observed instability is
	// at or above this value (default 0.2).
	TAPKIThreshold float64
	// SaltRotation is the shared salt (default DefaultSaltRotation).
	SaltRotation int
	// SessionTTL bounds the life of an issued challenge (default
	// DefaultSessionTTL). Past it the nonce is rejected with
	// ErrNoSession and the session evicted, so an abandoned handshake
	// does not leave a replayable nonce behind.
	SessionTTL time.Duration
	// InlineDepth is the distance-progressive fast path's budget: shells
	// d <= InlineDepth run inline on the caller's goroutine with the host
	// BatchMatcher, bypassing the backend (and any scheduler queue in
	// front of it) entirely; only deeper searches escalate, with
	// Task.MinDistance set past the covered shells. Zero selects
	// DefaultInlineDepth (1); InlineDisabled (-1) sends every search to
	// the backend; at most MaxInlineDepth.
	InlineDepth int
	// Sessions, when non-nil, is the session table the CA uses instead
	// of creating its own — the injection point for a durable table
	// (internal/durable) whose opens and closes are journaled.
	Sessions *SessionTable
	// Trace, when non-nil, is attached to every search Task the CA
	// submits, so the scheduler and backend emit per-search trace events
	// for served authentications (see internal/obs). Nil disables
	// tracing.
	Trace obs.TraceSink
}

// Validate reports configuration errors that would otherwise only
// surface mid-search: a negative search bound, an unknown seed iterator,
// or a negative time limit. Zero values are valid — they select the
// documented defaults. NewCA calls Validate, so misconfiguration fails
// at construction.
func (c CAConfig) Validate() error {
	if c.MaxDistance < 0 {
		return fmt.Errorf("%w: negative MaxDistance %d", ErrBadConfig, c.MaxDistance)
	}
	if c.MaxDistance > 10 {
		return fmt.Errorf("%w: MaxDistance %d outside supported range [0,10]", ErrBadConfig, c.MaxDistance)
	}
	if !c.Method.Valid() {
		return fmt.Errorf("%w: unknown iteration method %d", ErrBadConfig, int(c.Method))
	}
	if c.TimeLimit < 0 {
		return fmt.Errorf("%w: negative TimeLimit %s (use zero for the default threshold)", ErrBadConfig, c.TimeLimit)
	}
	if c.TAPKIThreshold < 0 || c.TAPKIThreshold > 1 {
		return fmt.Errorf("%w: TAPKIThreshold %v outside [0,1]", ErrBadConfig, c.TAPKIThreshold)
	}
	if c.SaltRotation < 0 || c.SaltRotation > 255 {
		return fmt.Errorf("%w: SaltRotation %d outside [0,255]", ErrBadConfig, c.SaltRotation)
	}
	if c.SessionTTL < 0 {
		return fmt.Errorf("%w: negative SessionTTL %s (use zero for the default)", ErrBadConfig, c.SessionTTL)
	}
	if c.InlineDepth > MaxInlineDepth {
		return fmt.Errorf("%w: InlineDepth %d exceeds maximum %d", ErrBadConfig, c.InlineDepth, MaxInlineDepth)
	}
	return nil
}

func (c CAConfig) withDefaults() CAConfig {
	if c.MaxDistance == 0 {
		c.MaxDistance = 5
	}
	if c.TimeLimit == 0 {
		c.TimeLimit = DefaultTimeLimit
	}
	if c.TAPKIThreshold == 0 {
		c.TAPKIThreshold = 0.2
	}
	if c.SaltRotation == 0 {
		c.SaltRotation = DefaultSaltRotation
	}
	if c.SessionTTL == 0 {
		c.SessionTTL = DefaultSessionTTL
	}
	if c.InlineDepth == 0 {
		c.InlineDepth = DefaultInlineDepth
	} else if c.InlineDepth < 0 {
		c.InlineDepth = InlineDisabled
	}
	return c
}

// CA is the certificate authority: it holds the encrypted PUF-image
// database, runs the RBC-SALTED search on its backend, and updates the RA
// with the public key generated from the recovered, salted seed.
type CA struct {
	cfg      CAConfig
	store    *ImageStore
	backend  Backend
	keygen   cryptoalg.KeyGenerator
	ra       *RA
	sessions *SessionTable

	mu     sync.Mutex
	issuer *Issuer
}

// NewCA assembles a certificate authority.
func NewCA(store *ImageStore, backend Backend, keygen cryptoalg.KeyGenerator, ra *RA, cfg CAConfig) (*CA, error) {
	if store == nil || backend == nil || keygen == nil || ra == nil {
		return nil, errors.New("core: CA requires store, backend, keygen and RA")
	}
	if err := cfg.Validate(); err != nil {
		return nil, err
	}
	cfg = cfg.withDefaults()
	sessions := cfg.Sessions
	if sessions == nil {
		sessions = NewSessionTable()
	}
	sessions.SetTTL(cfg.SessionTTL)
	return &CA{
		cfg:      cfg,
		store:    store,
		backend:  backend,
		keygen:   keygen,
		ra:       ra,
		sessions: sessions,
	}, nil
}

// UseIssuer makes the CA issue signed certificates for authenticated
// clients (see Certificate). Without an issuer, the CA still registers
// raw public keys with the RA.
func (ca *CA) UseIssuer(issuer *Issuer) {
	ca.mu.Lock()
	ca.issuer = issuer
	ca.mu.Unlock()
}

// Enroll stores a client's PUF image, captured in the secure enrollment
// facility.
func (ca *CA) Enroll(id ClientID, im *puf.Image) error {
	return ca.store.Put(id, im)
}

// BeginHandshake opens an authentication session: the CA picks a fresh
// PUF address map from the client's TAPKI-stable cells and sends it as the
// challenge (Figure 1, "handshake"). The session expires after the
// configured SessionTTL.
func (ca *CA) BeginHandshake(id ClientID) (Challenge, error) {
	im, err := ca.store.Get(id)
	if err != nil {
		return Challenge{}, fmt.Errorf("core: handshake: %w", err)
	}
	nonce := ca.sessions.NextNonce()

	addr, err := im.SelectAddressMap(ca.cfg.TAPKIThreshold, nonce)
	if err != nil {
		return Challenge{}, fmt.Errorf("core: handshake: %w", err)
	}
	ch := Challenge{Nonce: nonce, AddressMap: addr, Alg: ca.cfg.Alg}
	if err := ca.sessions.Open(id, ch); err != nil {
		return Challenge{}, fmt.Errorf("core: handshake: %w", err)
	}
	return ch, nil
}

// Sessions exposes the CA's session table (for snapshotting and
// inspection).
func (ca *CA) Sessions() *SessionTable { return ca.sessions }

// Deprovision removes a client entirely: its open session, its RA key
// and certificate, and its enrolled PUF image. With a durable journal
// attached, all three removals are journaled, so a deprovisioned client
// stays deprovisioned across restarts.
func (ca *CA) Deprovision(id ClientID) error {
	if err := ca.sessions.Drop(id); err != nil {
		return fmt.Errorf("core: deprovision %q: %w", id, err)
	}
	if err := ca.ra.Delete(id); err != nil {
		return fmt.Errorf("core: deprovision %q: %w", id, err)
	}
	if err := ca.store.Delete(id); err != nil {
		return fmt.Errorf("core: deprovision %q: %w", id, err)
	}
	return nil
}

// AuthResult is the outcome of an authentication attempt.
type AuthResult struct {
	// Authenticated reports whether the RBC search recovered the client's
	// seed within the time threshold.
	Authenticated bool
	// TimedOut reports that the search hit the threshold T; per the
	// protocol the CA would issue a new challenge and retry.
	TimedOut bool
	// PublicKey is the client's fresh public key, generated from the
	// salted seed, when authenticated.
	PublicKey []byte
	// Certificate is the CA-signed binding of ClientID to PublicKey,
	// present when the CA has an issuer configured.
	Certificate *Certificate
	// Search carries the full search telemetry.
	Search Result
}

// Authenticate runs the RBC-SALTED search for the digest the client sent
// (Figure 1 steps 1-9). On success the recovered seed is salted, the
// public key generated, and the RA updated.
//
// Serving is distance-progressive: shells d <= InlineDepth run inline on
// the calling goroutine with the host BatchMatcher (microseconds — a
// healthy PUF authenticates here almost always), and only a search that
// must go deeper escalates to the configured backend with
// Task.MinDistance set past the covered shells. The request's QoS class
// and deadline ride on the escalated Task, so a scheduler backend can
// order and shed by them.
//
// ctx bounds the search: cancellation or deadline expiry propagates into
// the backend's shell loops and surfaces as ctx.Err(). The challenge is
// strictly single-use: once the (Client, Nonce) pair has been presented,
// the session is consumed on every path — success, failure, policy error
// or cancellation — so a failed attempt can never be replayed. A session
// older than the configured SessionTTL is treated as absent.
func (ca *CA) Authenticate(ctx context.Context, req AuthRequest) (AuthResult, error) {
	// The challenge is consumed here: any outcome below — including the
	// early error returns — has already burnt it.
	ch, ok := ca.sessions.Take(req.Client, req.Nonce)
	if !ok {
		return AuthResult{}, fmt.Errorf("%w for %q with nonce %d", ErrNoSession, req.Client, req.Nonce)
	}
	if !req.Class.Valid() {
		return AuthResult{}, fmt.Errorf("%w: unknown QoS class %d", ErrBadConfig, uint8(req.Class))
	}
	if req.M1.Alg != ca.cfg.Alg {
		return AuthResult{}, fmt.Errorf("%w: digest %v, CA policy %v", ErrAlgMismatch, req.M1.Alg, ca.cfg.Alg)
	}
	im, err := ca.store.Get(req.Client)
	if err != nil {
		return AuthResult{}, err
	}
	base, err := im.Seed(ch.AddressMap)
	if err != nil {
		return AuthResult{}, err
	}

	task := Task{
		Base:        base,
		Target:      req.M1,
		MaxDistance: ca.cfg.MaxDistance,
		Method:      ca.cfg.Method,
		TimeLimit:   ca.cfg.TimeLimit,
		Class:       req.Class,
		Deadline:    req.Deadline,
		Trace:       ca.cfg.Trace,
	}
	res, err := ca.search(ctx, task)
	if err != nil {
		return AuthResult{Search: res}, err
	}

	out := AuthResult{Search: res, TimedOut: res.TimedOut}
	if res.Found && !res.TimedOut {
		salted := SaltSeed(res.Seed, ca.cfg.SaltRotation).Bytes()
		out.PublicKey = ca.keygen.PublicKey(salted)
		out.Authenticated = true
		if err := ca.ra.Update(req.Client, out.PublicKey); err != nil {
			return AuthResult{}, err
		}
		ca.mu.Lock()
		issuer := ca.issuer
		ca.mu.Unlock()
		if issuer != nil {
			cert, certErr := issuer.Issue(req.Client, ca.keygen.Name(), out.PublicKey)
			if certErr != nil {
				return AuthResult{}, certErr
			}
			out.Certificate = cert
			if err := ca.ra.UpdateCertificate(req.Client, cert); err != nil {
				return AuthResult{}, err
			}
		}
	}
	return out, nil
}

// AuthenticateLegacy is the positional pre-AuthRequest surface, kept for
// one release of compatibility.
//
// Deprecated: use Authenticate with an AuthRequest, which also carries
// the request's QoS class and deadline.
func (ca *CA) AuthenticateLegacy(ctx context.Context, id ClientID, nonce uint64, m1 Digest) (AuthResult, error) {
	return ca.Authenticate(ctx, AuthRequest{Client: id, Nonce: nonce, M1: m1})
}

// search runs the distance-progressive pipeline for one task: the inline
// host shells first, then — only if needed — the backend for the rest of
// the ball, with the inline telemetry folded into the returned Result.
func (ca *CA) search(ctx context.Context, task Task) (Result, error) {
	depth := ca.cfg.InlineDepth
	if depth < 0 {
		return ca.backend.Search(ctx, task)
	}
	if depth > task.MaxDistance {
		depth = task.MaxDistance
	}
	inline, err := SearchInline(ctx, task, depth)
	if err != nil {
		return inline, err
	}
	if inline.Found || inline.TimedOut || depth >= task.MaxDistance {
		// Resolved without ever touching the backend or its queue.
		obs.Emit(task.Trace, obs.TraceEvent{
			Kind:    obs.KindInline,
			Search:  task.TraceID,
			Backend: InlineName,
			Depth:   depth,
			N:       inline.SeedsCovered,
			Dur:     time.Duration(inline.WallSeconds * float64(time.Second)),
		})
		return inline, nil
	}

	task.MinDistance = depth + 1
	res, err := ca.backend.Search(ctx, task)
	// Fold the inline shells into the escalated result so AuthResult
	// telemetry covers the whole ball exactly once.
	res.SeedsCovered += inline.SeedsCovered
	res.HashesExecuted += inline.HashesExecuted
	res.WallSeconds += inline.WallSeconds
	res.DeviceSeconds += inline.DeviceSeconds
	res.Shells = append(inline.Shells, res.Shells...)
	return res, err
}

// Client is the device-side participant: it reads its PUF at the
// challenged address and responds with the digest M_1.
type Client struct {
	ID     ClientID
	Device *puf.Device
	// NoiseBits deliberately flips this many additional seed bits before
	// hashing (paper §4.1 noise injection; §5 suggests it as a security
	// knob). Zero means respond with the raw PUF read.
	NoiseBits int
	// noiseRng drives deliberate noise injection; lazily seeded from the
	// challenge nonce for reproducibility.
	noiseSeed uint64
}

// Respond reads the PUF at the challenged addresses and returns the
// digest of the (optionally noise-injected) seed.
func (c *Client) Respond(ch Challenge) (Digest, error) {
	seed, err := c.ReadSeed(ch)
	if err != nil {
		return Digest{}, err
	}
	return HashSeed(ch.Alg, seed), nil
}

// ReadSeed returns the raw (noise-injected) seed the client would hash.
// It is exposed so simulations can use it as a search oracle.
func (c *Client) ReadSeed(ch Challenge) (u256.Uint256, error) {
	if c.Device == nil {
		return u256.Zero, errors.New("core: client has no PUF device")
	}
	seed, err := c.Device.ReadSeed(ch.AddressMap)
	if err != nil {
		return u256.Zero, err
	}
	if c.NoiseBits > 0 {
		state := ch.Nonce ^ c.noiseSeed ^ 0x6A09E667F3BCC908
		used := make(map[int]bool, c.NoiseBits)
		for len(used) < c.NoiseBits {
			state = splitmix64(state)
			bit := int(state % 256)
			if used[bit] {
				continue
			}
			used[bit] = true
			seed = seed.FlipBit(bit)
		}
	}
	return seed, nil
}

// splitmix64 is the standard 64-bit mixing step, used for cheap
// deterministic noise placement.
func splitmix64(x uint64) uint64 {
	x += 0x9E3779B97F4A7C15
	z := x
	z = (z ^ (z >> 30)) * 0xBF58476D1CE4E5B9
	z = (z ^ (z >> 27)) * 0x94D049BB133111EB
	return z ^ (z >> 31)
}
