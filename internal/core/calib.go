package core

import (
	"fmt"
	"sync/atomic"
)

// Batch-kernel calibration. PR 5 hard-coded the engine choice as
// "bit-slice iff SHA-3", which baked a measurement into a type switch -
// and the measurement said the SHA-1 sliced path was *losing* to scalar
// on one iterator (BENCH_host.json, mifsud154 at 0.98x) while the code
// kept no record of it. The calibration table makes the selection
// data-driven: every kernel carries its measured speedup over the scalar
// quick-reject path, Best picks the argmax, and a kernel whose measured
// speedup is not strictly above 1 can never be selected - a regressing
// combination degrades to scalar instead of shipping.
//
// The seed values are the measured ratios from the committed
// BENCH_host.json (geometric mean across the four iteration methods);
// `make bench` re-measures and the bench-smoke CI gate fails when a
// fresh measurement disagrees with the committed baseline by more than
// the tolerance, so the table cannot silently rot.

// BatchKernel identifies a batch-match engine implementation.
type BatchKernel int

const (
	// KernelScalar is the one-seed-at-a-time quick-reject loop - the
	// baseline every other kernel is measured against, and the fallback
	// when nothing measures faster.
	KernelScalar BatchKernel = iota
	// KernelSliced64 is the 64-wide bit-sliced compression (PR 5).
	KernelSliced64
	// KernelSliced256 is the 256-lane wide bit-sliced compression
	// (SHA-3 only: Keccak is pure boolean gates).
	KernelSliced256
	// KernelMulti4 is the 4-way interleaved multi-buffer scalar
	// compression (SHA-1 only: keeps the hardware adder, hides the
	// round-chain latency).
	KernelMulti4
	// KernelSliced256Delta is the 256-lane wide compression with
	// sliced-domain delta iteration (SHA-3 only): the candidate batch
	// stays resident in flat Slice256 layout across batches and is
	// advanced by sparse XOR deltas of the iterator's flip masks, so the
	// per-batch transpose and seed materialization of KernelSliced256 are
	// paid once per search instead of once per batch (DESIGN.md §16).
	KernelSliced256Delta
)

var kernelNames = map[BatchKernel]string{
	KernelScalar:         "scalar",
	KernelSliced64:       "sliced64",
	KernelSliced256:      "sliced256",
	KernelMulti4:         "multibuf4",
	KernelSliced256Delta: "sliced256delta",
}

// String returns the kernel's short name (the calibration and bench
// artifact key).
func (k BatchKernel) String() string {
	if s, ok := kernelNames[k]; ok {
		return s
	}
	return fmt.Sprintf("BatchKernel(%d)", int(k))
}

// BatchKernels lists the batch kernels implemented for alg, in display
// order (the scalar baseline is implicit and not listed).
func BatchKernels(alg HashAlg) []BatchKernel {
	switch alg {
	case SHA1:
		return []BatchKernel{KernelSliced64, KernelMulti4}
	case SHA3:
		return []BatchKernel{KernelSliced64, KernelSliced256, KernelSliced256Delta}
	default:
		return nil
	}
}

// CalibrationPoint records one measured kernel ratio: batched seeds/sec
// over scalar seeds/sec for the algorithm, on representative search
// load. Ratios - not absolute throughputs - are stored because they
// transfer across hosts.
type CalibrationPoint struct {
	Alg     HashAlg
	Kernel  BatchKernel
	Speedup float64
}

// Calibration is an immutable kernel-selection table. Build one with
// NewCalibration and install it with SetCalibration; readers go through
// DefaultKernel.
type Calibration struct {
	speedups map[HashAlg]map[BatchKernel]float64
}

// NewCalibration builds a table from measured points. Points for
// KernelScalar are ignored (scalar is the implicit 1.0 baseline).
func NewCalibration(points ...CalibrationPoint) *Calibration {
	c := &Calibration{speedups: make(map[HashAlg]map[BatchKernel]float64)}
	for _, p := range points {
		if p.Kernel == KernelScalar {
			continue
		}
		m := c.speedups[p.Alg]
		if m == nil {
			m = make(map[BatchKernel]float64)
			c.speedups[p.Alg] = m
		}
		m[p.Kernel] = p.Speedup
	}
	return c
}

// Speedup returns the recorded ratio for (alg, kernel), or 0 when the
// combination was never measured (and is therefore ineligible).
func (c *Calibration) Speedup(alg HashAlg, kernel BatchKernel) float64 {
	if kernel == KernelScalar {
		return 1.0
	}
	return c.speedups[alg][kernel]
}

// Best returns the kernel with the highest measured speedup for alg.
// Only kernels measured strictly faster than scalar qualify; with no
// qualifying measurement the scalar baseline wins. An unmeasured
// combination can never be selected.
func (c *Calibration) Best(alg HashAlg) BatchKernel {
	best, bestRatio := KernelScalar, 1.0
	for kernel, ratio := range c.speedups[alg] {
		if ratio > bestRatio {
			best, bestRatio = kernel, ratio
		}
	}
	return best
}

// defaultCalibration is the installed table; swapped atomically so every
// worker-goroutine HashMatcherFactory call reads it without locking.
var defaultCalibration atomic.Pointer[Calibration]

func init() {
	// Seeded from the committed BENCH_host.json (v3 schema: geomean of
	// each kernel's per-iterator speedups, 1-worker exhaustive d=2
	// shells).
	defaultCalibration.Store(NewCalibration(
		CalibrationPoint{Alg: SHA3, Kernel: KernelSliced64, Speedup: 3.9},
		CalibrationPoint{Alg: SHA3, Kernel: KernelSliced256, Speedup: 6.4},
		CalibrationPoint{Alg: SHA3, Kernel: KernelSliced256Delta, Speedup: 6.6},
		// The 64-wide sliced SHA-1 measured losing to scalar on every
		// iterator (0.75-0.87x): recorded below 1 so it is never
		// selected. The 4-way multi-buffer interleave is the kernel that
		// finally beats the SHA-1 scalar path.
		CalibrationPoint{Alg: SHA1, Kernel: KernelSliced64, Speedup: 0.78},
		CalibrationPoint{Alg: SHA1, Kernel: KernelMulti4, Speedup: 1.22},
	))
}

// DefaultKernel returns the calibrated batch kernel for alg -
// KernelScalar when no batch kernel measures faster. NewHashMatcher
// consults it; tests and benchmarks override per matcher via
// HashMatcher.Kernel.
func DefaultKernel(alg HashAlg) BatchKernel {
	return defaultCalibration.Load().Best(alg)
}

// DefaultKernelSpeedup returns the measured speedup (>= 1) of the
// installed default kernel for alg over the scalar baseline. Cost
// predictions divide the scalar per-seed host cost by it, so a search
// is priced at the throughput of the kernel that will actually run.
func DefaultKernelSpeedup(alg HashAlg) float64 {
	c := defaultCalibration.Load()
	s := c.Speedup(alg, c.Best(alg))
	if s < 1 {
		return 1
	}
	return s
}

// SetCalibration installs a new kernel-selection table (for feeding
// fresh bench measurements, or pinning kernels in tests) and returns the
// previous one so callers can restore it.
func SetCalibration(c *Calibration) *Calibration {
	if c == nil {
		panic("core: SetCalibration(nil)")
	}
	return defaultCalibration.Swap(c)
}
