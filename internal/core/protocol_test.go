package core

import (
	"context"
	"errors"
	"strings"
	"testing"
	"time"

	"rbcsalted/internal/cryptoalg/aeskg"
	"rbcsalted/internal/iterseq"
	"rbcsalted/internal/puf"
	"rbcsalted/internal/u256"
)

// echoBackend is a trivial in-process search engine for protocol tests:
// it searches d <= 2 for real by brute force over single and double flips.
type echoBackend struct{ alg HashAlg }

func (e *echoBackend) Name() string { return "echo" }

func (e *echoBackend) Search(ctx context.Context, task Task) (Result, error) {
	var res Result
	try := func(s u256.Uint256, d int) bool {
		res.HashesExecuted++
		res.SeedsCovered++
		if HashSeed(e.alg, s).Equal(task.Target) {
			res.Found = true
			res.Seed = s
			res.Distance = d
			return true
		}
		return false
	}
	if try(task.Base, 0) {
		return res, nil
	}
	for d := 1; d <= task.MaxDistance && d <= 2; d++ {
		switch d {
		case 1:
			for i := 0; i < 256; i++ {
				if try(task.Base.FlipBit(i), 1) {
					return res, nil
				}
			}
		case 2:
			for i := 0; i < 256; i++ {
				for j := i + 1; j < 256; j++ {
					if try(task.Base.FlipBit(i).FlipBit(j), 2) {
						return res, nil
					}
				}
			}
		}
	}
	return res, nil
}

func newTestCA(t *testing.T, alg HashAlg) (*CA, *RA, *ImageStore) {
	t.Helper()
	store, err := NewImageStore([32]byte{1, 2, 3})
	if err != nil {
		t.Fatal(err)
	}
	ra := NewRA()
	ca, err := NewCA(store, &echoBackend{alg: alg}, &aeskg.Generator{}, ra, CAConfig{
		Alg:         alg,
		MaxDistance: 2,
	})
	if err != nil {
		t.Fatal(err)
	}
	return ca, ra, store
}

func enrollTestClient(t *testing.T, ca *CA, id ClientID, seed uint64, profile puf.Profile) *Client {
	t.Helper()
	dev, err := puf.NewDevice(seed, 1024, profile)
	if err != nil {
		t.Fatal(err)
	}
	im, err := puf.Enroll(dev, 31)
	if err != nil {
		t.Fatal(err)
	}
	if err := ca.Enroll(id, im); err != nil {
		t.Fatal(err)
	}
	return &Client{ID: id, Device: dev}
}

func TestFullProtocolAuthenticates(t *testing.T) {
	// Low-noise PUF so the true distance stays within the test backend's
	// d <= 2 reach.
	profile := puf.Profile{BaseError: 0.5 / 256.0}
	ca, ra, _ := newTestCA(t, SHA3)
	client := enrollTestClient(t, ca, "alice", 77, profile)

	ch, err := ca.BeginHandshake("alice")
	if err != nil {
		t.Fatal(err)
	}
	m1, err := client.Respond(ch)
	if err != nil {
		t.Fatal(err)
	}
	// The deprecated positional wrapper must stay equivalent to
	// Authenticate with a bare AuthRequest; the happy path pins it.
	res, err := ca.AuthenticateLegacy(context.Background(), "alice", ch.Nonce, m1)
	if err != nil {
		t.Fatal(err)
	}
	if !res.Authenticated {
		t.Fatalf("authentication failed: %+v", res.Search)
	}
	if len(res.PublicKey) == 0 {
		t.Fatal("no public key generated")
	}
	// The RA must have been updated with exactly this key.
	raKey, ok := ra.PublicKey("alice")
	if !ok || string(raKey) != string(res.PublicKey) {
		t.Error("RA not updated with the session key")
	}
	// The public key must come from the SALTED seed, not the raw seed.
	rawKey := (&aeskg.Generator{}).PublicKey(res.Search.Seed.Bytes())
	if string(rawKey) == string(res.PublicKey) {
		t.Error("public key generated from unsalted seed")
	}
}

func TestAuthenticateRejectsImpostor(t *testing.T) {
	profile := puf.Profile{BaseError: 0.5 / 256.0}
	ca, _, _ := newTestCA(t, SHA3)
	enrollTestClient(t, ca, "alice", 77, profile)
	impostor := enrollTestClient(t, ca, "mallory", 78, profile)

	ch, err := ca.BeginHandshake("alice")
	if err != nil {
		t.Fatal(err)
	}
	// Mallory answers Alice's challenge with her own PUF.
	m1, err := impostor.Respond(ch)
	if err != nil {
		t.Fatal(err)
	}
	res, err := ca.Authenticate(context.Background(), AuthRequest{Client: "alice", Nonce: ch.Nonce, M1: m1})
	if err != nil {
		t.Fatal(err)
	}
	if res.Authenticated {
		t.Error("impostor authenticated")
	}
}

func TestChallengeIsSingleUse(t *testing.T) {
	profile := puf.Profile{BaseError: 0.5 / 256.0}
	ca, _, _ := newTestCA(t, SHA3)
	client := enrollTestClient(t, ca, "alice", 79, profile)
	ch, _ := ca.BeginHandshake("alice")
	m1, _ := client.Respond(ch)
	if _, err := ca.Authenticate(context.Background(), AuthRequest{Client: "alice", Nonce: ch.Nonce, M1: m1}); err != nil {
		t.Fatal(err)
	}
	if _, err := ca.Authenticate(context.Background(), AuthRequest{Client: "alice", Nonce: ch.Nonce, M1: m1}); err == nil {
		t.Error("challenge replay accepted")
	}
}

func TestAuthenticateErrors(t *testing.T) {
	ca, _, _ := newTestCA(t, SHA3)
	if _, err := ca.BeginHandshake("ghost"); err == nil {
		t.Error("handshake for unknown client succeeded")
	}
	profile := puf.Profile{BaseError: 0.5 / 256.0}
	client := enrollTestClient(t, ca, "alice", 80, profile)
	ch, _ := ca.BeginHandshake("alice")
	if _, err := ca.Authenticate(context.Background(), AuthRequest{Client: "alice", Nonce: ch.Nonce + 1, M1: Digest{}}); err == nil {
		t.Error("wrong nonce accepted")
	}
	// Wrong digest algorithm.
	seed, _ := client.ReadSeed(ch)
	wrongAlg := HashSeed(SHA1, seed)
	if _, err := ca.Authenticate(context.Background(), AuthRequest{Client: "alice", Nonce: ch.Nonce, M1: wrongAlg}); err == nil {
		t.Error("wrong digest algorithm accepted")
	}
}

// TestChallengeConsumedOnErrorPaths is the regression test for the
// challenge leak: an Authenticate attempt that fails AFTER the session
// lookup (here: digest algorithm mismatch) must still burn the
// challenge, so the same nonce cannot be replayed with a corrected
// digest.
func TestChallengeConsumedOnErrorPaths(t *testing.T) {
	profile := puf.Profile{BaseError: 0.5 / 256.0}
	ca, _, _ := newTestCA(t, SHA3)
	client := enrollTestClient(t, ca, "alice", 81, profile)

	ch, err := ca.BeginHandshake("alice")
	if err != nil {
		t.Fatal(err)
	}
	seed, err := client.ReadSeed(ch)
	if err != nil {
		t.Fatal(err)
	}
	// First attempt fails policy: wrong digest algorithm.
	if _, err := ca.Authenticate(context.Background(), AuthRequest{Client: "alice", Nonce: ch.Nonce, M1: HashSeed(SHA1, seed)}); !errors.Is(err, ErrAlgMismatch) {
		t.Fatalf("expected ErrAlgMismatch, got %v", err)
	}
	// Second attempt fixes the digest — but the challenge must be gone.
	if _, err := ca.Authenticate(context.Background(), AuthRequest{Client: "alice", Nonce: ch.Nonce, M1: HashSeed(SHA3, seed)}); !errors.Is(err, ErrNoSession) {
		t.Fatalf("expected ErrNoSession after failed attempt, got %v", err)
	}
}

// TestWrongNonceKeepsSession: a probe with the wrong nonce never
// matches the open session, so it must NOT consume it — otherwise any
// party that can reach the CA could void sessions it does not own.
func TestWrongNonceKeepsSession(t *testing.T) {
	profile := puf.Profile{BaseError: 0.5 / 256.0}
	ca, _, _ := newTestCA(t, SHA3)
	client := enrollTestClient(t, ca, "alice", 82, profile)

	ch, err := ca.BeginHandshake("alice")
	if err != nil {
		t.Fatal(err)
	}
	m1, err := client.Respond(ch)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := ca.Authenticate(context.Background(), AuthRequest{Client: "alice", Nonce: ch.Nonce + 1, M1: m1}); !errors.Is(err, ErrNoSession) {
		t.Fatalf("expected ErrNoSession for wrong nonce, got %v", err)
	}
	res, err := ca.Authenticate(context.Background(), AuthRequest{Client: "alice", Nonce: ch.Nonce, M1: m1})
	if err != nil {
		t.Fatalf("session consumed by wrong-nonce probe: %v", err)
	}
	if !res.Authenticated {
		t.Error("genuine attempt after wrong-nonce probe failed")
	}
}

func TestBeginHandshakeUnknownClient(t *testing.T) {
	ca, _, _ := newTestCA(t, SHA3)
	if _, err := ca.BeginHandshake("ghost"); !errors.Is(err, ErrUnknownClient) {
		t.Errorf("expected ErrUnknownClient, got %v", err)
	}
}

func TestCAConfigValidate(t *testing.T) {
	cases := []struct {
		name string
		cfg  CAConfig
		ok   bool
	}{
		{"zero is valid", CAConfig{}, true},
		{"paper nominal", CAConfig{Alg: SHA3, MaxDistance: 5, TimeLimit: 20 * time.Second}, true},
		{"negative MaxDistance", CAConfig{MaxDistance: -1}, false},
		{"MaxDistance too large", CAConfig{MaxDistance: 11}, false},
		{"unknown method", CAConfig{Method: iterseq.Method(99)}, false},
		{"negative TimeLimit", CAConfig{TimeLimit: -time.Second}, false},
		{"zero TimeLimit is default", CAConfig{TimeLimit: 0}, true},
		{"TAPKI threshold above 1", CAConfig{TAPKIThreshold: 1.5}, false},
		{"negative TAPKI threshold", CAConfig{TAPKIThreshold: -0.1}, false},
		{"salt rotation out of range", CAConfig{SaltRotation: 256}, false},
	}
	for _, tc := range cases {
		err := tc.cfg.Validate()
		if tc.ok && err != nil {
			t.Errorf("%s: unexpected error %v", tc.name, err)
		}
		if !tc.ok {
			if err == nil {
				t.Errorf("%s: invalid config accepted", tc.name)
			} else if !errors.Is(err, ErrBadConfig) {
				t.Errorf("%s: error %v does not wrap ErrBadConfig", tc.name, err)
			}
		}
	}
	// NewCA runs Validate, so misconfiguration fails at construction.
	store, _ := NewImageStore([32]byte{})
	if _, err := NewCA(store, &echoBackend{}, &aeskg.Generator{}, NewRA(), CAConfig{MaxDistance: -3}); !errors.Is(err, ErrBadConfig) {
		t.Errorf("NewCA accepted invalid config (err=%v)", err)
	}
}

func TestNewCAValidation(t *testing.T) {
	store, _ := NewImageStore([32]byte{})
	if _, err := NewCA(nil, &echoBackend{}, &aeskg.Generator{}, NewRA(), CAConfig{}); err == nil {
		t.Error("nil store accepted")
	}
	if _, err := NewCA(store, nil, &aeskg.Generator{}, NewRA(), CAConfig{}); err == nil {
		t.Error("nil backend accepted")
	}
}

func TestCAConfigDefaults(t *testing.T) {
	cfg := CAConfig{}.withDefaults()
	if cfg.MaxDistance != 5 || cfg.TimeLimit != 20*time.Second ||
		cfg.TAPKIThreshold != 0.2 || cfg.SaltRotation != DefaultSaltRotation {
		t.Errorf("defaults wrong: %+v", cfg)
	}
}

func TestClientNoiseInjection(t *testing.T) {
	profile := puf.Profile{} // noiseless device isolates deliberate noise
	dev, err := puf.NewDevice(5, 512, profile)
	if err != nil {
		t.Fatal(err)
	}
	im, _ := puf.Enroll(dev, 5)
	addr, _ := im.SelectAddressMap(0.5, 1)
	ch := Challenge{Nonce: 9, AddressMap: addr, Alg: SHA3}

	clean := &Client{ID: "c", Device: dev}
	noisy := &Client{ID: "c", Device: dev, NoiseBits: 5}
	cleanSeed, err := clean.ReadSeed(ch)
	if err != nil {
		t.Fatal(err)
	}
	noisySeed, err := noisy.ReadSeed(ch)
	if err != nil {
		t.Fatal(err)
	}
	if d := cleanSeed.HammingDistance(noisySeed); d != 5 {
		t.Errorf("noise injection produced distance %d, want 5", d)
	}
	// Determinism: same nonce, same noise placement.
	again, _ := noisy.ReadSeed(ch)
	if !again.Equal(noisySeed) {
		t.Error("noise injection not deterministic per nonce")
	}
}

func TestClientWithoutDevice(t *testing.T) {
	c := &Client{ID: "x"}
	if _, err := c.Respond(Challenge{}); err == nil ||
		!strings.Contains(err.Error(), "no PUF device") {
		t.Errorf("expected device error, got %v", err)
	}
}

func TestRA(t *testing.T) {
	ra := NewRA()
	if _, ok := ra.PublicKey("a"); ok {
		t.Error("empty RA returned a key")
	}
	ra.Update("a", []byte{1, 2})
	k, ok := ra.PublicKey("a")
	if !ok || len(k) != 2 {
		t.Error("RA lost the key")
	}
	// Returned slice must be a copy.
	k[0] = 99
	k2, _ := ra.PublicKey("a")
	if k2[0] == 99 {
		t.Error("RA exposes internal storage")
	}
}
