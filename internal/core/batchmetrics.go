package core

import (
	"sync/atomic"

	"rbcsalted/internal/obs"
)

// Per-batch phase observability of the batched host hot path. The
// 256-wide kernel is L2-bandwidth-bound and the remaining headroom is
// marshalling and iterator fill, not compression (DESIGN.md §13/§16) —
// so the fill-vs-pack split must be visible live, in /metrics, not only
// in bench runs. The hooks are process-global (the hot loops have no
// registry plumbing, by design: a search runs identically with or
// without a server around it) and cost one pointer load and branch per
// *batch* when disabled.

// HostBatchMetrics carries the per-batch phase histograms of the batched
// host path. Fill is the time one batch spends draining the iterator
// (FillSeeds/FillMasks: successor steps plus mask XORs); Pack is the
// time MatchBatch spends marshalling candidates into the kernel's layout
// before any compression runs (limb extraction + bit transposes on the
// repack path, sparse delta application on the sliced-domain delta
// path). Both are observed in nanoseconds per batch.
type HostBatchMetrics struct {
	Fill *obs.Histogram // host_batch_fill_ns
	Pack *obs.Histogram // host_batch_pack_ns
}

// Register builds the canonical histograms on reg and returns them as a
// HostBatchMetrics ready for SetHostBatchMetrics.
func RegisterHostBatchMetrics(reg *obs.Registry) *HostBatchMetrics {
	return &HostBatchMetrics{
		Fill: reg.Histogram("host_batch_fill_ns", obs.DefBatchNsBuckets),
		Pack: reg.Histogram("host_batch_pack_ns", obs.DefBatchNsBuckets),
	}
}

var hostBatchMetrics atomic.Pointer[HostBatchMetrics]

// SetHostBatchMetrics installs the process-wide batch-phase histograms
// (nil disables observation) and returns the previous value so callers
// can restore it. Installing is last-writer-wins: embedding several
// server nodes in one process points the hooks at the most recent
// node's registry, which is the one a debug listener is serving.
func SetHostBatchMetrics(m *HostBatchMetrics) *HostBatchMetrics {
	return hostBatchMetrics.Swap(m)
}

// loadHostBatchMetrics returns the installed hooks, nil when disabled.
// Hot loops load once per worker: installation happens at server (or
// bench capture) setup, before searches run.
func loadHostBatchMetrics() *HostBatchMetrics {
	return hostBatchMetrics.Load()
}
