package core

import (
	"bytes"
	"crypto/aes"
	"crypto/cipher"
	"crypto/rand"
	"encoding/gob"
	"fmt"
	"io"
	"sync"

	"rbcsalted/internal/puf"
)

// ImageStore is the CA's PUF-image database. Images are the protocol's
// crown jewels - whoever holds them can impersonate clients - so the
// paper keeps them "stored in an encrypted database": each image is
// serialized and sealed with AES-256-GCM under the store's master key
// before it touches the in-memory map.
type ImageStore struct {
	aead cipher.AEAD

	mu    sync.RWMutex
	blobs map[ClientID][]byte
}

// NewImageStore opens a store sealed under the 32-byte master key.
func NewImageStore(masterKey [32]byte) (*ImageStore, error) {
	block, err := aes.NewCipher(masterKey[:])
	if err != nil {
		return nil, fmt.Errorf("core: image store: %w", err)
	}
	aead, err := cipher.NewGCM(block)
	if err != nil {
		return nil, fmt.Errorf("core: image store: %w", err)
	}
	return &ImageStore{aead: aead, blobs: make(map[ClientID][]byte)}, nil
}

// Put seals and stores a client's enrollment image, replacing any
// previous image.
func (s *ImageStore) Put(id ClientID, im *puf.Image) error {
	if im == nil {
		return fmt.Errorf("core: nil image for %q", id)
	}
	var plain bytes.Buffer
	if err := gob.NewEncoder(&plain).Encode(im); err != nil {
		return fmt.Errorf("core: encode image: %w", err)
	}
	nonce := make([]byte, s.aead.NonceSize())
	if _, err := rand.Read(nonce); err != nil {
		return fmt.Errorf("core: nonce: %w", err)
	}
	sealed := s.aead.Seal(nonce, nonce, plain.Bytes(), []byte(id))
	s.mu.Lock()
	s.blobs[id] = sealed
	s.mu.Unlock()
	return nil
}

// Get opens and decodes a client's enrollment image.
func (s *ImageStore) Get(id ClientID) (*puf.Image, error) {
	s.mu.RLock()
	sealed, ok := s.blobs[id]
	s.mu.RUnlock()
	if !ok {
		return nil, fmt.Errorf("client %q not enrolled: %w", id, ErrUnknownClient)
	}
	ns := s.aead.NonceSize()
	if len(sealed) < ns {
		return nil, fmt.Errorf("core: corrupt image blob for %q", id)
	}
	plain, err := s.aead.Open(nil, sealed[:ns], sealed[ns:], []byte(id))
	if err != nil {
		return nil, fmt.Errorf("core: unseal image for %q: %w", id, err)
	}
	var im puf.Image
	if err := gob.NewDecoder(bytes.NewReader(plain)).Decode(&im); err != nil {
		return nil, fmt.Errorf("core: decode image: %w", err)
	}
	return &im, nil
}

// Delete removes a client's image (device revocation).
func (s *ImageStore) Delete(id ClientID) {
	s.mu.Lock()
	delete(s.blobs, id)
	s.mu.Unlock()
}

// Save writes the store to w. Blobs are persisted exactly as sealed in
// memory, so the file never contains plaintext PUF images and can only be
// opened again with the same master key.
func (s *ImageStore) Save(w io.Writer) error {
	s.mu.RLock()
	snapshot := make(map[ClientID][]byte, len(s.blobs))
	for id, blob := range s.blobs {
		snapshot[id] = append([]byte(nil), blob...)
	}
	s.mu.RUnlock()
	if err := gob.NewEncoder(w).Encode(snapshot); err != nil {
		return fmt.Errorf("core: save image store: %w", err)
	}
	return nil
}

// LoadImageStore reads a store saved by Save. The master key must match
// the one the store was sealed under; a wrong key surfaces on the first
// Get.
func LoadImageStore(masterKey [32]byte, r io.Reader) (*ImageStore, error) {
	s, err := NewImageStore(masterKey)
	if err != nil {
		return nil, err
	}
	var snapshot map[ClientID][]byte
	if err := gob.NewDecoder(r).Decode(&snapshot); err != nil {
		return nil, fmt.Errorf("core: load image store: %w", err)
	}
	s.mu.Lock()
	s.blobs = snapshot
	s.mu.Unlock()
	return s, nil
}

// Len returns the number of enrolled clients.
func (s *ImageStore) Len() int {
	s.mu.RLock()
	defer s.mu.RUnlock()
	return len(s.blobs)
}
