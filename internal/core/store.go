package core

import (
	"bytes"
	"crypto/aes"
	"crypto/cipher"
	"crypto/rand"
	"encoding/gob"
	"fmt"
	"io"
	"sync"

	"rbcsalted/internal/puf"
)

// ImageStore is the CA's PUF-image database. Images are the protocol's
// crown jewels - whoever holds them can impersonate clients - so the
// paper keeps them "stored in an encrypted database": each image is
// serialized and sealed with AES-256-GCM under the store's master key
// before it touches the in-memory map.
//
// The map is striped across DefaultShards lock shards so the serving
// path (one Get per handshake, one Get per authentication) does not
// funnel through a single RWMutex. An optional Journal receives every
// mutation before it is applied, already sealed.
type ImageStore struct {
	aead    cipher.AEAD
	journal Journal
	shards  []storeShard
}

type storeShard struct {
	mu    sync.RWMutex
	blobs map[ClientID][]byte
}

// NewImageStore opens a store sealed under the 32-byte master key, with
// the default shard count.
func NewImageStore(masterKey [32]byte) (*ImageStore, error) {
	return NewImageStoreShards(masterKey, DefaultShards)
}

// NewImageStoreShards opens a store with an explicit lock-stripe count.
// shards = 1 reproduces the single-mutex layout (useful as a contention
// baseline); serving deployments should keep the default.
func NewImageStoreShards(masterKey [32]byte, shards int) (*ImageStore, error) {
	if shards < 1 {
		return nil, fmt.Errorf("core: image store needs at least 1 shard, got %d", shards)
	}
	block, err := aes.NewCipher(masterKey[:])
	if err != nil {
		return nil, fmt.Errorf("core: image store: %w", err)
	}
	aead, err := cipher.NewGCM(block)
	if err != nil {
		return nil, fmt.Errorf("core: image store: %w", err)
	}
	s := &ImageStore{aead: aead, shards: make([]storeShard, shards)}
	for i := range s.shards {
		s.shards[i].blobs = make(map[ClientID][]byte)
	}
	return s, nil
}

// SetJournal attaches a mutation journal. Pass nil to detach. Not safe
// to race with mutations; attach during assembly (internal/durable does
// this after replay, before the store is shared).
func (s *ImageStore) SetJournal(j Journal) { s.journal = j }

func (s *ImageStore) shard(id ClientID) *storeShard {
	return &s.shards[shardIndex(id, len(s.shards))]
}

// Put seals and stores a client's enrollment image, replacing any
// previous image. The sealed blob is journaled before the map is
// updated; a journal failure leaves the store unchanged.
func (s *ImageStore) Put(id ClientID, im *puf.Image) error {
	if im == nil {
		return fmt.Errorf("core: nil image for %q", id)
	}
	var plain bytes.Buffer
	if err := gob.NewEncoder(&plain).Encode(im); err != nil {
		return fmt.Errorf("core: encode image: %w", err)
	}
	nonce := make([]byte, s.aead.NonceSize())
	if _, err := rand.Read(nonce); err != nil {
		return fmt.Errorf("core: nonce: %w", err)
	}
	sealed := s.aead.Seal(nonce, nonce, plain.Bytes(), []byte(id))
	sh := s.shard(id)
	sh.mu.Lock()
	defer sh.mu.Unlock()
	if s.journal != nil {
		if err := s.journal.ImagePut(id, sealed); err != nil {
			return fmt.Errorf("core: journal image put for %q: %w", id, err)
		}
	}
	sh.blobs[id] = sealed
	return nil
}

// PutSealed stores an already-sealed blob without journaling. It is the
// replay/restore path: internal/durable uses it to apply WAL records and
// snapshots, and Load uses it to fill a fresh store.
func (s *ImageStore) PutSealed(id ClientID, sealed []byte) {
	sh := s.shard(id)
	sh.mu.Lock()
	sh.blobs[id] = append([]byte(nil), sealed...)
	sh.mu.Unlock()
}

// Get opens and decodes a client's enrollment image.
func (s *ImageStore) Get(id ClientID) (*puf.Image, error) {
	sh := s.shard(id)
	sh.mu.RLock()
	sealed, ok := sh.blobs[id]
	sh.mu.RUnlock()
	if !ok {
		return nil, fmt.Errorf("client %q not enrolled: %w", id, ErrUnknownClient)
	}
	ns := s.aead.NonceSize()
	if len(sealed) < ns {
		return nil, fmt.Errorf("core: corrupt image blob for %q", id)
	}
	plain, err := s.aead.Open(nil, sealed[:ns], sealed[ns:], []byte(id))
	if err != nil {
		return nil, fmt.Errorf("core: unseal image for %q: %w", id, err)
	}
	var im puf.Image
	if err := gob.NewDecoder(bytes.NewReader(plain)).Decode(&im); err != nil {
		return nil, fmt.Errorf("core: decode image: %w", err)
	}
	return &im, nil
}

// Has reports whether an image is stored for id.
func (s *ImageStore) Has(id ClientID) bool {
	sh := s.shard(id)
	sh.mu.RLock()
	_, ok := sh.blobs[id]
	sh.mu.RUnlock()
	return ok
}

// Delete removes a client's image (device revocation). Deleting an
// absent client is a no-op and is not journaled.
func (s *ImageStore) Delete(id ClientID) error {
	sh := s.shard(id)
	sh.mu.Lock()
	defer sh.mu.Unlock()
	if _, ok := sh.blobs[id]; !ok {
		return nil
	}
	if s.journal != nil {
		if err := s.journal.ImageDelete(id); err != nil {
			return fmt.Errorf("core: journal image delete for %q: %w", id, err)
		}
	}
	delete(sh.blobs, id)
	return nil
}

// Drop removes a client's image without journaling (the replay path of
// an ImageDelete record).
func (s *ImageStore) Drop(id ClientID) {
	sh := s.shard(id)
	sh.mu.Lock()
	delete(sh.blobs, id)
	sh.mu.Unlock()
}

// SealedSnapshot copies every sealed blob. Blobs stay sealed, so the
// snapshot (like Save) never contains plaintext PUF images.
func (s *ImageStore) SealedSnapshot() map[ClientID][]byte {
	out := make(map[ClientID][]byte, s.Len())
	for i := range s.shards {
		sh := &s.shards[i]
		sh.mu.RLock()
		for id, blob := range sh.blobs {
			out[id] = append([]byte(nil), blob...)
		}
		sh.mu.RUnlock()
	}
	return out
}

// Save writes the store to w. Blobs are persisted exactly as sealed in
// memory, so the file never contains plaintext PUF images and can only be
// opened again with the same master key.
func (s *ImageStore) Save(w io.Writer) error {
	if err := gob.NewEncoder(w).Encode(s.SealedSnapshot()); err != nil {
		return fmt.Errorf("core: save image store: %w", err)
	}
	return nil
}

// LoadImageStore reads a store saved by Save. The master key must match
// the one the store was sealed under; a wrong key surfaces on the first
// Get.
func LoadImageStore(masterKey [32]byte, r io.Reader) (*ImageStore, error) {
	s, err := NewImageStore(masterKey)
	if err != nil {
		return nil, err
	}
	var snapshot map[ClientID][]byte
	if err := gob.NewDecoder(r).Decode(&snapshot); err != nil {
		return nil, fmt.Errorf("core: load image store: %w", err)
	}
	for id, blob := range snapshot {
		s.PutSealed(id, blob)
	}
	return s, nil
}

// Len returns the number of enrolled clients.
func (s *ImageStore) Len() int {
	n := 0
	for i := range s.shards {
		sh := &s.shards[i]
		sh.mu.RLock()
		n += len(sh.blobs)
		sh.mu.RUnlock()
	}
	return n
}
