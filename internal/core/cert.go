package core

import (
	"bytes"
	"crypto/ed25519"
	"encoding/binary"
	"errors"
	"fmt"
	"time"
)

// The paper's PKI frame (§2.1): the CA authenticates clients and
// *validates* their public keys, which the registration authority then
// disseminates. A validation without an unforgeable statement is not
// worth disseminating, so the CA issues a signed certificate binding the
// client identity to the session public key generated from the recovered,
// salted seed. Certificates are short-lived by construction - RBC keys
// are one-time session keys.

// Certificate binds a client identity to a session public key, signed by
// the CA.
type Certificate struct {
	// ClientID is the authenticated client.
	ClientID ClientID
	// KeyAlgorithm names the key-generation algorithm (e.g. "AES-128",
	// "Dilithium3").
	KeyAlgorithm string
	// PublicKey is the session public key from the salted seed.
	PublicKey []byte
	// IssuedAt and ExpiresAt bound the session validity window.
	IssuedAt  time.Time
	ExpiresAt time.Time
	// Signature is the CA's Ed25519 signature over the canonical encoding
	// of the fields above.
	Signature []byte
}

// signingBytes returns the canonical byte string the CA signs: every
// variable-length field is length-prefixed so no two distinct
// certificates share an encoding.
func (c *Certificate) signingBytes() []byte {
	var buf bytes.Buffer
	writeField := func(b []byte) {
		var n [4]byte
		binary.BigEndian.PutUint32(n[:], uint32(len(b)))
		buf.Write(n[:])
		buf.Write(b)
	}
	writeField([]byte(c.ClientID))
	writeField([]byte(c.KeyAlgorithm))
	writeField(c.PublicKey)
	var ts [16]byte
	binary.BigEndian.PutUint64(ts[:8], uint64(c.IssuedAt.Unix()))
	binary.BigEndian.PutUint64(ts[8:], uint64(c.ExpiresAt.Unix()))
	buf.Write(ts[:])
	return buf.Bytes()
}

// Issuer signs certificates on behalf of the CA.
type Issuer struct {
	priv ed25519.PrivateKey
	pub  ed25519.PublicKey
	// Validity is the lifetime of issued certificates (default 10
	// minutes - RBC session keys are one-time keys).
	Validity time.Duration
	// now is injectable for tests.
	now func() time.Time
}

// NewIssuer creates an issuer from a 32-byte deterministic seed (in a
// deployment this is the CA's HSM-held key).
func NewIssuer(seed [32]byte) *Issuer {
	priv := ed25519.NewKeyFromSeed(seed[:])
	return &Issuer{
		priv:     priv,
		pub:      priv.Public().(ed25519.PublicKey),
		Validity: 10 * time.Minute,
		now:      time.Now,
	}
}

// PublicKey returns the CA's certificate-verification key, distributed
// out of band to relying parties.
func (i *Issuer) PublicKey() ed25519.PublicKey {
	return append(ed25519.PublicKey(nil), i.pub...)
}

// Issue signs a certificate for an authenticated client.
func (i *Issuer) Issue(id ClientID, keyAlgorithm string, publicKey []byte) (*Certificate, error) {
	if len(publicKey) == 0 {
		return nil, errors.New("core: cannot certify an empty public key")
	}
	now := i.now().Truncate(time.Second)
	cert := &Certificate{
		ClientID:     id,
		KeyAlgorithm: keyAlgorithm,
		PublicKey:    append([]byte(nil), publicKey...),
		IssuedAt:     now,
		ExpiresAt:    now.Add(i.Validity),
	}
	cert.Signature = ed25519.Sign(i.priv, cert.signingBytes())
	return cert, nil
}

// Verify checks a certificate against the CA's verification key at the
// given time.
func (c *Certificate) Verify(caKey ed25519.PublicKey, at time.Time) error {
	if len(c.Signature) != ed25519.SignatureSize {
		return fmt.Errorf("core: certificate signature is %d bytes", len(c.Signature))
	}
	if !ed25519.Verify(caKey, c.signingBytes(), c.Signature) {
		return errors.New("core: certificate signature invalid")
	}
	if at.Before(c.IssuedAt) {
		return errors.New("core: certificate not yet valid")
	}
	if at.After(c.ExpiresAt) {
		return errors.New("core: certificate expired")
	}
	return nil
}
