package combin

import (
	"math/rand"
	"testing"
)

func TestColexRoundTripExhaustive(t *testing.T) {
	n, k := 9, 4
	total, _ := Binomial64(n, k)
	for r := uint64(0); r < total; r++ {
		c := make([]int, k)
		if err := UnrankColex(n, r, c); err != nil {
			t.Fatal(err)
		}
		got, err := RankColex(n, c)
		if err != nil || got != r {
			t.Fatalf("RankColex(UnrankColex(%d)) = %d, %v", r, got, err)
		}
	}
}

// TestColexMatchesNumericOrder verifies the defining property: colex order
// of combinations equals numeric order of their bit masks, i.e. the order
// Gosper's hack produces.
func TestColexMatchesNumericOrder(t *testing.T) {
	n, k := 10, 3
	total, _ := Binomial64(n, k)
	prevMask := uint64(0)
	c := make([]int, k)
	for r := uint64(0); r < total; r++ {
		if err := UnrankColex(n, r, c); err != nil {
			t.Fatal(err)
		}
		mask := uint64(0)
		for _, p := range c {
			mask |= 1 << uint(p)
		}
		if r > 0 && mask <= prevMask {
			t.Fatalf("rank %d: mask %#x not greater than previous %#x", r, mask, prevMask)
		}
		prevMask = mask
	}
	// First combination must be the numerically smallest mask (low k bits).
	if err := UnrankColex(n, 0, c); err != nil {
		t.Fatal(err)
	}
	for i, v := range c {
		if v != i {
			t.Fatalf("rank 0 = %v", c)
		}
	}
}

func TestColexRandom256(t *testing.T) {
	r := rand.New(rand.NewSource(17))
	for k := 1; k <= 8; k++ {
		total, _ := Binomial64(256, k)
		for trial := 0; trial < 100; trial++ {
			rank := r.Uint64() % total
			c := make([]int, k)
			if err := UnrankColex(256, rank, c); err != nil {
				t.Fatal(err)
			}
			got, err := RankColex(256, c)
			if err != nil || got != rank {
				t.Fatalf("k=%d rank %d -> %v -> %d (%v)", k, rank, c, got, err)
			}
		}
	}
}

func TestColexErrors(t *testing.T) {
	if err := UnrankColex(8, 56, make([]int, 3)); err == nil {
		t.Error("expected out-of-range error")
	}
	if _, err := RankColex(8, []int{2, 2}); err == nil {
		t.Error("expected error for invalid combination")
	}
}
