// Package combin provides the combinatorics underlying the RBC search:
// exact binomial coefficients, the search-complexity equations from the
// paper (Equations 1-3), and lexicographic ranking/unranking of
// combinations, which is the mathematical core of Algorithm 515
// (Buckles-Lybanon) seed iteration.
package combin

import (
	"fmt"
	"math/big"
	"sync"
)

// SeedBits is the PUF response width assumed throughout the paper.
const SeedBits = 256

// binomial coefficients are memoized: the search engines ask for the same
// C(256, d) values on every authentication.
var (
	binomMu    sync.Mutex
	binomCache = map[[2]int]*big.Int{}
)

// Binomial returns C(n, k) exactly. It returns 0 for k < 0 or k > n.
// The returned value must not be modified by the caller.
func Binomial(n, k int) *big.Int {
	if k < 0 || k > n || n < 0 {
		return big.NewInt(0)
	}
	if k > n-k {
		k = n - k
	}
	key := [2]int{n, k}
	binomMu.Lock()
	defer binomMu.Unlock()
	if v, ok := binomCache[key]; ok {
		return v
	}
	v := new(big.Int).Binomial(int64(n), int64(k))
	binomCache[key] = v
	return v
}

// Binomial64 returns C(n, k) as a uint64 and reports whether it fits.
// For n = 256 this holds for all k <= 10, which covers every Hamming
// distance the protocol searches in practice.
func Binomial64(n, k int) (uint64, bool) {
	v := Binomial(n, k)
	if !v.IsUint64() {
		return 0, false
	}
	return v.Uint64(), true
}

// ExhaustiveSeeds returns u(d) from Equation 1: the total number of seeds
// the server searches in the worst case when scanning all Hamming
// distances 0..d around the enrolled image, for n-bit seeds.
func ExhaustiveSeeds(n, d int) *big.Int {
	total := new(big.Int)
	for i := 0; i <= d; i++ {
		total.Add(total, Binomial(n, i))
	}
	return total
}

// AverageSeeds returns a(d) from Equation 3: the expected number of seeds
// searched when the client's seed lies at Hamming distance exactly d, so
// that on average the match is found halfway through the distance-d shell.
func AverageSeeds(n, d int) *big.Int {
	if d <= 0 {
		return big.NewInt(1)
	}
	total := ExhaustiveSeeds(n, d-1)
	half := new(big.Int).Rsh(Binomial(n, d), 1)
	return total.Add(total, half)
}

// OpponentSeeds returns p from Equation 2: the size of the space an
// opponent without the PUF image must search, 2^n.
func OpponentSeeds(n int) *big.Int {
	return new(big.Int).Lsh(big.NewInt(1), uint(n))
}

// RankLex returns the 0-based lexicographic rank of the combination c,
// which must hold strictly increasing positions in [0, n). Combinations
// are ordered lexicographically as ascending tuples, the order produced
// by Algorithm 515.
func RankLex(n int, c []int) (uint64, error) {
	k := len(c)
	if err := validate(n, c); err != nil {
		return 0, err
	}
	rank := uint64(0)
	prev := -1
	for i, ci := range c {
		for j := prev + 1; j < ci; j++ {
			v, ok := Binomial64(n-1-j, k-1-i)
			if !ok {
				return 0, fmt.Errorf("combin: rank overflows uint64 for n=%d k=%d", n, k)
			}
			rank += v
		}
		prev = ci
	}
	return rank, nil
}

// UnrankLex writes into c the combination with the given 0-based
// lexicographic rank among all k-subsets of [0, n), where k = len(c).
// It is the inverse of RankLex and the random-access primitive that makes
// Algorithm 515 embarrassingly parallel: any thread can jump directly to
// its share of the combination sequence.
func UnrankLex(n int, rank uint64, c []int) error {
	k := len(c)
	if k < 0 || k > n {
		return fmt.Errorf("combin: invalid k=%d for n=%d", k, n)
	}
	total, ok := Binomial64(n, k)
	if !ok {
		return fmt.Errorf("combin: C(%d,%d) overflows uint64", n, k)
	}
	if rank >= total {
		return fmt.Errorf("combin: rank %d out of range [0,%d)", rank, total)
	}
	pos := 0
	for i := 0; i < k; i++ {
		for {
			v, _ := Binomial64(n-1-pos, k-1-i)
			if rank < v {
				break
			}
			rank -= v
			pos++
		}
		c[i] = pos
		pos++
	}
	return nil
}

func validate(n int, c []int) error {
	prev := -1
	for _, ci := range c {
		if ci <= prev || ci >= n {
			return fmt.Errorf("combin: combination %v not strictly increasing in [0,%d)", c, n)
		}
		prev = ci
	}
	return nil
}
