package combin

import "fmt"

// Colexicographic order sorts combinations by the numeric value of their
// bit masks, which is exactly the order Gosper's hack enumerates. Ranking
// in colex order therefore lets a parallel search partition Gosper's
// sequence without enumerating it.

// RankColex returns the 0-based colexicographic rank of the combination c
// (strictly increasing positions in [0, n)): rank = sum C(c_i, i+1).
func RankColex(n int, c []int) (uint64, error) {
	if err := validate(n, c); err != nil {
		return 0, err
	}
	rank := uint64(0)
	for i, ci := range c {
		v, ok := Binomial64(ci, i+1)
		if !ok {
			return 0, fmt.Errorf("combin: colex rank overflows uint64 at C(%d,%d)", ci, i+1)
		}
		rank += v
	}
	return rank, nil
}

// UnrankColex writes into c the combination with the given 0-based
// colexicographic rank among k-subsets of [0, n), where k = len(c).
func UnrankColex(n int, rank uint64, c []int) error {
	k := len(c)
	if k < 0 || k > n {
		return fmt.Errorf("combin: invalid k=%d for n=%d", k, n)
	}
	total, ok := Binomial64(n, k)
	if !ok {
		return fmt.Errorf("combin: C(%d,%d) overflows uint64", n, k)
	}
	if rank >= total {
		return fmt.Errorf("combin: rank %d out of range [0,%d)", rank, total)
	}
	// Choose positions from the top: the largest position p is the
	// greatest value with C(p, k) <= rank remaining.
	for i := k; i >= 1; i-- {
		p := i - 1 // smallest legal position for element i
		for {
			v, _ := Binomial64(p+1, i)
			if v > rank {
				break
			}
			p++
		}
		v, _ := Binomial64(p, i)
		rank -= v
		c[i-1] = p
	}
	return nil
}
