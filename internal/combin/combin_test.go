package combin

import (
	"math/big"
	"math/rand"
	"testing"
)

func TestBinomialSmall(t *testing.T) {
	cases := []struct {
		n, k int
		want int64
	}{
		{0, 0, 1}, {1, 0, 1}, {1, 1, 1}, {5, 2, 10}, {10, 3, 120},
		{256, 0, 1}, {256, 1, 256}, {256, 2, 32640},
		{5, 6, 0}, {5, -1, 0}, {-1, 0, 0},
	}
	for _, c := range cases {
		if got := Binomial(c.n, c.k); got.Cmp(big.NewInt(c.want)) != 0 {
			t.Errorf("Binomial(%d,%d) = %v, want %d", c.n, c.k, got, c.want)
		}
	}
}

func TestBinomialSymmetryAndPascal(t *testing.T) {
	for n := 1; n <= 64; n++ {
		for k := 0; k <= n; k++ {
			if Binomial(n, k).Cmp(Binomial(n, n-k)) != 0 {
				t.Fatalf("symmetry fails at C(%d,%d)", n, k)
			}
			sum := new(big.Int).Add(Binomial(n-1, k-1), Binomial(n-1, k))
			if Binomial(n, k).Cmp(sum) != 0 {
				t.Fatalf("Pascal fails at C(%d,%d)", n, k)
			}
		}
	}
}

func TestBinomial64(t *testing.T) {
	v, ok := Binomial64(256, 5)
	if !ok || v != 8809549056 {
		t.Errorf("Binomial64(256,5) = %d, %v", v, ok)
	}
	// C(256,128) is astronomically larger than 2^64.
	if _, ok := Binomial64(256, 128); ok {
		t.Error("Binomial64(256,128) should overflow")
	}
}

// TestTable1 reproduces Table 1 of the paper: seeds searched for the
// exhaustive (Equation 1) and average (Equation 3) cases at d = 1..5.
func TestTable1(t *testing.T) {
	// Paper values are given to 2 significant figures.
	exhaustive := []float64{256, 3.3e4, 2.8e6, 1.8e8, 9.0e9}
	average := []float64{129, 1.7e4, 1.4e6, 9.0e7, 4.6e9}
	for d := 1; d <= 5; d++ {
		gotE, _ := new(big.Float).SetInt(ExhaustiveSeeds(SeedBits, d)).Float64()
		gotA, _ := new(big.Float).SetInt(AverageSeeds(SeedBits, d)).Float64()
		// d=1 exhaustive includes the d=0 seed: 257 ~ paper's 256.
		if rel(gotE, exhaustive[d-1]) > 0.05 {
			t.Errorf("d=%d exhaustive = %.3g, paper %.3g", d, gotE, exhaustive[d-1])
		}
		if rel(gotA, average[d-1]) > 0.05 {
			t.Errorf("d=%d average = %.3g, paper %.3g", d, gotA, average[d-1])
		}
	}
}

func rel(got, want float64) float64 {
	d := got - want
	if d < 0 {
		d = -d
	}
	return d / want
}

func TestExhaustiveSeedsExact(t *testing.T) {
	// u(2) = 1 + 256 + 32640 = 32897.
	if got := ExhaustiveSeeds(256, 2); got.Cmp(big.NewInt(32897)) != 0 {
		t.Errorf("u(2) = %v", got)
	}
	// a(2) = 1 + 256 + 32640/2 = 16577.
	if got := AverageSeeds(256, 2); got.Cmp(big.NewInt(16577)) != 0 {
		t.Errorf("a(2) = %v", got)
	}
	if got := AverageSeeds(256, 0); got.Cmp(big.NewInt(1)) != 0 {
		t.Errorf("a(0) = %v", got)
	}
}

func TestOpponentSeeds(t *testing.T) {
	want := new(big.Int).Lsh(big.NewInt(1), 256)
	if got := OpponentSeeds(256); got.Cmp(want) != 0 {
		t.Errorf("OpponentSeeds(256) = %v", got)
	}
}

func TestRankUnrankRoundTripExhaustive(t *testing.T) {
	// Exhaustively verify over a small space: all 3-subsets of [0,8).
	n, k := 8, 3
	total, _ := Binomial64(n, k)
	prev := make([]int, k)
	for r := uint64(0); r < total; r++ {
		c := make([]int, k)
		if err := UnrankLex(n, r, c); err != nil {
			t.Fatal(err)
		}
		got, err := RankLex(n, c)
		if err != nil || got != r {
			t.Fatalf("RankLex(UnrankLex(%d)) = %d, %v", r, got, err)
		}
		if r > 0 && !lexLess(prev, c) {
			t.Fatalf("not lexicographic: %v then %v", prev, c)
		}
		copy(prev, c)
	}
}

func lexLess(a, b []int) bool {
	for i := range a {
		if a[i] != b[i] {
			return a[i] < b[i]
		}
	}
	return false
}

func TestRankUnrankRandom256(t *testing.T) {
	r := rand.New(rand.NewSource(7))
	for k := 1; k <= 8; k++ {
		total, ok := Binomial64(256, k)
		if !ok {
			t.Fatalf("C(256,%d) overflow", k)
		}
		for trial := 0; trial < 200; trial++ {
			rank := r.Uint64() % total
			c := make([]int, k)
			if err := UnrankLex(256, rank, c); err != nil {
				t.Fatal(err)
			}
			got, err := RankLex(256, c)
			if err != nil || got != rank {
				t.Fatalf("k=%d rank %d -> %v -> %d (%v)", k, rank, c, got, err)
			}
		}
	}
}

func TestUnrankErrors(t *testing.T) {
	if err := UnrankLex(8, 56, make([]int, 3)); err == nil {
		t.Error("expected out-of-range error for rank = C(8,3)")
	}
	if err := UnrankLex(4, 0, make([]int, 5)); err == nil {
		t.Error("expected error for k > n")
	}
	if err := UnrankLex(256, 0, make([]int, 128)); err == nil {
		t.Error("expected overflow error for C(256,128)")
	}
}

func TestRankErrors(t *testing.T) {
	if _, err := RankLex(8, []int{3, 3}); err == nil {
		t.Error("expected error for repeated positions")
	}
	if _, err := RankLex(8, []int{5, 8}); err == nil {
		t.Error("expected error for out-of-range position")
	}
	if _, err := RankLex(8, []int{5, 2}); err == nil {
		t.Error("expected error for decreasing positions")
	}
}

func TestUnrankFirstAndLast(t *testing.T) {
	c := make([]int, 5)
	if err := UnrankLex(256, 0, c); err != nil {
		t.Fatal(err)
	}
	for i, v := range c {
		if v != i {
			t.Fatalf("rank 0 = %v, want identity prefix", c)
		}
	}
	total, _ := Binomial64(256, 5)
	if err := UnrankLex(256, total-1, c); err != nil {
		t.Fatal(err)
	}
	for i, v := range c {
		if v != 256-5+i {
			t.Fatalf("last rank = %v, want top positions", c)
		}
	}
}

func BenchmarkUnrankLex256of5(b *testing.B) {
	total, _ := Binomial64(256, 5)
	c := make([]int, 5)
	for i := 0; i < b.N; i++ {
		_ = UnrankLex(256, uint64(i)%total, c)
	}
}
