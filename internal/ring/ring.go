// Package ring partitions the CA's client population across serving
// nodes with a consistent-hash ring of virtual nodes.
//
// Two hash levels keep the two concerns separate:
//
//   - ClientID → shard is a plain FNV-1a hash modulo a fixed shard
//     count. The shard of a client never changes, so per-shard WAL
//     streams (internal/replica) can follow a shard wherever it lives.
//   - Shard → node is the consistent-hash ring: every node projects
//     VirtualNodes points onto the 64-bit hash circle and a shard is
//     owned by the first point clockwise of its own hash. Adding or
//     removing one node therefore moves only the shards whose owning
//     point belonged to that node — on average shards/nodes of them —
//     while every other shard stays put, which is the property that
//     makes shard movement incremental instead of a full rehash.
//
// A Map is immutable; Add and Remove derive a new Map with the epoch
// advanced by one. The epoch totally orders topologies, so a node (or a
// routing client) holding an older Map can detect it is stale, and the
// replication layer uses the same epoch sequence for primary fencing.
package ring

import (
	"fmt"
	"sort"
)

// DefaultNumShards is the default shard count. It bounds the
// granularity of rebalancing: a cluster can usefully grow to about this
// many nodes before shards get lumpy.
const DefaultNumShards = 16

// DefaultVirtualNodes is the default number of ring points per node.
// 64 points keep the shard assignment within a few percent of even for
// small fleets without making ring construction noticeable.
const DefaultVirtualNodes = 64

// Node is one CA serving node: a stable identity plus the address
// clients authenticate against (and are redirected to).
type Node struct {
	ID   string
	Addr string
}

// Hash is the ring's key hash: 64-bit FNV-1a finished with a
// splitmix64 mix. The finalizer matters: raw FNV of short keys that
// differ only in a trailing digit ("shard/3" vs "shard/4") differs only
// in its low bits, which collapses the ring's point spread. Exported so
// every party — servers, the routing client, the replication filter —
// agrees on the placement of a key without sharing code beyond this
// package.
func Hash(key string) uint64 {
	const (
		offset64 = 14695981039346656037
		prime64  = 1099511628211
	)
	h := uint64(offset64)
	for i := 0; i < len(key); i++ {
		h ^= uint64(key[i])
		h *= prime64
	}
	h = (h ^ (h >> 30)) * 0xBF58476D1CE4E5B9
	h = (h ^ (h >> 27)) * 0x94D049BB133111EB
	return h ^ (h >> 31)
}

// ShardOfKey maps a client ID onto a shard index in [0, numShards).
func ShardOfKey(key string, numShards int) int {
	if numShards <= 0 {
		numShards = DefaultNumShards
	}
	return int(Hash(key) % uint64(numShards))
}

// point is one virtual node on the hash circle.
type point struct {
	hash uint64
	node int // index into nodes
}

// Map is an immutable cluster topology: the node set, the ring built
// from it, and the shard→node assignment derived from the ring.
type Map struct {
	epoch     uint64
	numShards int
	vnodes    int
	nodes     []Node
	owners    []int // shard → index into nodes
}

// NewMap builds the topology for a node set. numShards and vnodes of 0
// select the defaults. The node list must be non-empty with unique IDs;
// order does not matter (the assignment depends only on the set).
func NewMap(numShards, vnodes int, nodes ...Node) (*Map, error) {
	if numShards <= 0 {
		numShards = DefaultNumShards
	}
	if vnodes <= 0 {
		vnodes = DefaultVirtualNodes
	}
	if len(nodes) == 0 {
		return nil, fmt.Errorf("ring: a topology needs at least one node")
	}
	seen := make(map[string]bool, len(nodes))
	sorted := append([]Node(nil), nodes...)
	sort.Slice(sorted, func(i, j int) bool { return sorted[i].ID < sorted[j].ID })
	for _, n := range sorted {
		if n.ID == "" {
			return nil, fmt.Errorf("ring: node with empty ID")
		}
		if seen[n.ID] {
			return nil, fmt.Errorf("ring: duplicate node ID %q", n.ID)
		}
		seen[n.ID] = true
	}
	m := &Map{numShards: numShards, vnodes: vnodes, nodes: sorted}
	m.assign()
	return m, nil
}

// assign builds the vnode ring and derives the shard owners.
func (m *Map) assign() {
	points := make([]point, 0, len(m.nodes)*m.vnodes)
	for ni, n := range m.nodes {
		for v := 0; v < m.vnodes; v++ {
			points = append(points, point{
				hash: Hash(fmt.Sprintf("%s#%d", n.ID, v)),
				node: ni,
			})
		}
	}
	sort.Slice(points, func(i, j int) bool {
		if points[i].hash != points[j].hash {
			return points[i].hash < points[j].hash
		}
		// Ties broken by node index so the assignment is deterministic
		// regardless of input order (nodes are sorted by ID).
		return points[i].node < points[j].node
	})
	m.owners = make([]int, m.numShards)
	for s := range m.owners {
		h := Hash(fmt.Sprintf("shard/%d", s))
		// First point clockwise of h, wrapping at the top of the circle.
		i := sort.Search(len(points), func(i int) bool { return points[i].hash >= h })
		if i == len(points) {
			i = 0
		}
		m.owners[s] = points[i].node
	}
}

// Epoch totally orders topologies derived from one another: every Add,
// Remove or WithEpoch advances it.
func (m *Map) Epoch() uint64 { return m.epoch }

// NumShards returns the fixed shard count.
func (m *Map) NumShards() int { return m.numShards }

// Nodes returns the member nodes, sorted by ID.
func (m *Map) Nodes() []Node { return append([]Node(nil), m.nodes...) }

// ShardOf maps a client ID onto its shard.
func (m *Map) ShardOf(key string) int { return ShardOfKey(key, m.numShards) }

// Owner returns the node owning a shard.
func (m *Map) Owner(shard int) Node {
	return m.nodes[m.owners[((shard%m.numShards)+m.numShards)%m.numShards]]
}

// OwnerOf returns the node owning a client ID.
func (m *Map) OwnerOf(key string) Node { return m.Owner(m.ShardOf(key)) }

// ShardsOwnedBy lists the shards a node owns (empty for a non-member).
func (m *Map) ShardsOwnedBy(id string) []int {
	var out []int
	for s := range m.owners {
		if m.nodes[m.owners[s]].ID == id {
			out = append(out, s)
		}
	}
	return out
}

// Has reports whether a node is a member.
func (m *Map) Has(id string) bool {
	for _, n := range m.nodes {
		if n.ID == id {
			return true
		}
	}
	return false
}

// Add derives a topology with one more node and the epoch advanced.
// Adding an existing ID replaces its address.
func (m *Map) Add(n Node) (*Map, error) {
	nodes := make([]Node, 0, len(m.nodes)+1)
	for _, have := range m.nodes {
		if have.ID != n.ID {
			nodes = append(nodes, have)
		}
	}
	nodes = append(nodes, n)
	next, err := NewMap(m.numShards, m.vnodes, nodes...)
	if err != nil {
		return nil, err
	}
	next.epoch = m.epoch + 1
	return next, nil
}

// Remove derives a topology without the named node and the epoch
// advanced. Removing the last node or a non-member is an error.
func (m *Map) Remove(id string) (*Map, error) {
	if !m.Has(id) {
		return nil, fmt.Errorf("ring: node %q is not a member", id)
	}
	nodes := make([]Node, 0, len(m.nodes)-1)
	for _, have := range m.nodes {
		if have.ID != id {
			nodes = append(nodes, have)
		}
	}
	next, err := NewMap(m.numShards, m.vnodes, nodes...)
	if err != nil {
		return nil, fmt.Errorf("ring: removing %q: %w", id, err)
	}
	next.epoch = m.epoch + 1
	return next, nil
}

// WithEpoch returns a copy pinned at an explicit epoch — the promotion
// path, where the new topology must carry the fencing epoch the
// replication layer agreed on rather than a relative bump.
func (m *Map) WithEpoch(epoch uint64) *Map {
	cp := *m
	cp.epoch = epoch
	return &cp
}
