package ring

import (
	"fmt"
	"testing"
)

func nodes(n int) []Node {
	out := make([]Node, n)
	for i := range out {
		out[i] = Node{ID: fmt.Sprintf("node%d", i), Addr: fmt.Sprintf("127.0.0.1:%d", 7000+i)}
	}
	return out
}

// TestDeterministicAssignment: the same node set yields the same
// assignment regardless of input order — both ends of a peer flag must
// compute identical routing without talking to each other.
func TestDeterministicAssignment(t *testing.T) {
	ns := nodes(3)
	a, err := NewMap(0, 0, ns[0], ns[1], ns[2])
	if err != nil {
		t.Fatal(err)
	}
	b, err := NewMap(0, 0, ns[2], ns[0], ns[1])
	if err != nil {
		t.Fatal(err)
	}
	for s := 0; s < a.NumShards(); s++ {
		if a.Owner(s).ID != b.Owner(s).ID {
			t.Fatalf("shard %d owner differs by input order: %q vs %q", s, a.Owner(s).ID, b.Owner(s).ID)
		}
	}
}

// TestEveryNodeOwnsShards: with the default 64 vnodes, a small fleet
// splits the default 16 shards without starving any member.
func TestEveryNodeOwnsShards(t *testing.T) {
	m, err := NewMap(0, 0, nodes(3)...)
	if err != nil {
		t.Fatal(err)
	}
	total := 0
	for _, n := range m.Nodes() {
		owned := m.ShardsOwnedBy(n.ID)
		if len(owned) == 0 {
			t.Errorf("node %s owns no shards", n.ID)
		}
		total += len(owned)
	}
	if total != m.NumShards() {
		t.Fatalf("shards over-assigned: %d owned, %d exist", total, m.NumShards())
	}
}

// TestMinimalMovementOnRemove is the consistent-hashing contract: when a
// node leaves, only the shards it owned change hands.
func TestMinimalMovementOnRemove(t *testing.T) {
	m, err := NewMap(64, 0, nodes(4)...)
	if err != nil {
		t.Fatal(err)
	}
	removed := "node2"
	next, err := m.Remove(removed)
	if err != nil {
		t.Fatal(err)
	}
	if next.Epoch() != m.Epoch()+1 {
		t.Fatalf("epoch %d after remove, want %d", next.Epoch(), m.Epoch()+1)
	}
	for s := 0; s < m.NumShards(); s++ {
		before, after := m.Owner(s), next.Owner(s)
		if before.ID == removed {
			if after.ID == removed {
				t.Fatalf("shard %d still owned by removed node", s)
			}
			continue
		}
		if before.ID != after.ID {
			t.Errorf("shard %d moved %q -> %q although its owner survived", s, before.ID, after.ID)
		}
	}
}

// TestMinimalMovementOnAdd: adding a node only steals shards, never
// shuffles them between surviving owners.
func TestMinimalMovementOnAdd(t *testing.T) {
	m, err := NewMap(64, 0, nodes(3)...)
	if err != nil {
		t.Fatal(err)
	}
	next, err := m.Add(Node{ID: "node9", Addr: "127.0.0.1:7999"})
	if err != nil {
		t.Fatal(err)
	}
	moved := 0
	for s := 0; s < m.NumShards(); s++ {
		if next.Owner(s).ID == m.Owner(s).ID {
			continue
		}
		if next.Owner(s).ID != "node9" {
			t.Errorf("shard %d moved %q -> %q, not to the new node", s, m.Owner(s).ID, next.Owner(s).ID)
		}
		moved++
	}
	if moved == 0 {
		t.Error("new node stole no shards")
	}
}

// TestShardOfStability pins the client→shard mapping: it must never
// depend on the topology, or a shard could not move between nodes
// without re-keying clients.
func TestShardOfStability(t *testing.T) {
	a, _ := NewMap(0, 0, nodes(2)...)
	b, _ := NewMap(0, 0, nodes(5)...)
	for _, id := range []string{"alice", "bob", "carol", "x", ""} {
		if a.ShardOf(id) != b.ShardOf(id) {
			t.Fatalf("shard of %q depends on topology", id)
		}
		if a.ShardOf(id) != ShardOfKey(id, DefaultNumShards) {
			t.Fatalf("Map.ShardOf(%q) disagrees with ShardOfKey", id)
		}
	}
}

// TestErrors pins the constructor and membership error paths.
func TestErrors(t *testing.T) {
	if _, err := NewMap(0, 0); err == nil {
		t.Error("empty node set accepted")
	}
	if _, err := NewMap(0, 0, Node{ID: "a"}, Node{ID: "a"}); err == nil {
		t.Error("duplicate ID accepted")
	}
	if _, err := NewMap(0, 0, Node{}); err == nil {
		t.Error("empty ID accepted")
	}
	m, _ := NewMap(0, 0, Node{ID: "a"})
	if _, err := m.Remove("ghost"); err == nil {
		t.Error("removing non-member accepted")
	}
	if _, err := m.Remove("a"); err == nil {
		t.Error("removing the last node accepted")
	}
}

// TestAddReplacesAddr: re-adding a member updates its address (a node
// coming back on a new port) without disturbing unrelated shards.
func TestAddReplacesAddr(t *testing.T) {
	m, _ := NewMap(0, 0, nodes(3)...)
	next, err := m.Add(Node{ID: "node1", Addr: "10.0.0.1:9"})
	if err != nil {
		t.Fatal(err)
	}
	if len(next.Nodes()) != 3 {
		t.Fatalf("re-adding a member changed the node count to %d", len(next.Nodes()))
	}
	for s := 0; s < m.NumShards(); s++ {
		if m.Owner(s).ID != next.Owner(s).ID {
			t.Errorf("shard %d moved on an address-only update", s)
		}
	}
	for _, n := range next.Nodes() {
		if n.ID == "node1" && n.Addr != "10.0.0.1:9" {
			t.Errorf("node1 addr not updated: %q", n.Addr)
		}
	}
}
