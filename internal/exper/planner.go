package exper

import (
	"context"
	"encoding/json"
	"fmt"
	"runtime"
	"sort"
	"strings"
	"time"

	"rbcsalted/internal/core"
	"rbcsalted/internal/plan"
)

// PlannerBenchSchema identifies the BENCH_planner.json format. Bump on
// any field change so trajectory tooling can tell points apart.
const PlannerBenchSchema = "rbc-salted/planner-bench/v1"

// plannerSLOSeconds is the authentication threshold T: a search that
// takes longer has failed regardless of whether it found the seed.
const plannerSLOSeconds = 20.0

// PlannerBenchPoint is one (alg, d, dispatcher) cell of the planner
// ablation: the latency, energy and SLO outcome of serving `Trials`
// early-exit searches at exact Hamming distance D through the named
// dispatcher (the planner, or one fixed backend).
type PlannerBenchPoint struct {
	Alg        string `json:"alg"`
	D          int    `json:"d"`
	Dispatcher string `json:"dispatcher"`
	Trials     int    `json:"trials"`
	// P50s/P99s are modelled device-time percentiles across the trials.
	P50s float64 `json:"p50_s"`
	P99s float64 `json:"p99_s"`
	// Joules is the total energy across the trials; JoulesPerAuth is
	// Joules over the successful authentications (0 when none succeed).
	Joules        float64 `json:"joules"`
	JoulesPerAuth float64 `json:"joules_per_auth"`
	// SLOAttained is the fraction of trials that found the seed within
	// the T=20s threshold.
	SLOAttained float64 `json:"slo_attained"`
	// Chosen is the planner's per-engine dispatch histogram for the
	// cell; empty for fixed dispatchers.
	Chosen map[string]int `json:"chosen,omitempty"`
}

// PlannerCrossover records a Hamming distance where the planner's
// majority engine choice flipped — the live-dispatch version of reading
// the Table 5/6 column crossings.
type PlannerCrossover struct {
	Alg  string `json:"alg"`
	D    int    `json:"d"`
	From string `json:"from"`
	To   string `json:"to"`
}

// PlannerBench is the full planner-vs-fixed-backends measurement — the
// energy/latency trajectory point emitted as BENCH_planner.json.
type PlannerBench struct {
	Schema      string              `json:"schema"`
	GeneratedAt string              `json:"generated_at"`
	GoVersion   string              `json:"go_version"`
	NumCPU      int                 `json:"num_cpu"`
	Policy      string              `json:"policy"`
	SLOSeconds  float64             `json:"slo_seconds"`
	Points      []PlannerBenchPoint `json:"points"`
	Crossovers  []PlannerCrossover  `json:"crossovers"`
}

// plannerLabel shortens an engine Name() to its platform label.
func plannerLabel(name string) string {
	for _, l := range []string{"SALTED-GPU", "SALTED-APU", "SALTED-CPU"} {
		if len(name) >= len(l) && name[:len(l)] == l {
			return l
		}
	}
	return name
}

// MeasurePlanner serves the standard (alg x d=1..5) grid of early-exit
// authentications through the planner and through each fixed backend —
// the same trio Table 5 and Table 6 evaluate — and reports latency
// percentiles, total joules, SLO attainment and joules-per-successful-
// auth per cell, plus the d-crossover points where the planner's chosen
// engine flips. Every dispatcher serves the identical scenario set, so
// the comparison is paired.
func MeasurePlanner(trials int, policy plan.Policy) (PlannerBench, error) {
	if trials <= 0 {
		trials = 32
	} else if trials < 8 {
		trials = 8
	} else if trials > 200 {
		trials = 200
	}
	pb := PlannerBench{
		Schema:      PlannerBenchSchema,
		GeneratedAt: time.Now().UTC().Format(time.RFC3339),
		GoVersion:   runtime.Version(),
		NumCPU:      runtime.NumCPU(),
		Policy:      policy.String(),
		SLOSeconds:  plannerSLOSeconds,
	}

	for algIdx, alg := range core.HashAlgs() {
		fixed := table5Backends(alg)
		planner, err := plan.New(plan.Config{
			Engines: table5Backends(alg), // the planner's own instances
			Policy:  policy,
		})
		if err != nil {
			return pb, err
		}

		prevMajority := ""
		for d := 1; d <= 5; d++ {
			dispatchers := make([]core.Backend, 0, len(fixed)+1)
			labels := make([]string, 0, len(fixed)+1)
			dispatchers = append(dispatchers, planner)
			labels = append(labels, "planner")
			for i, b := range fixed {
				dispatchers = append(dispatchers, b)
				labels = append(labels, platformLabel(i))
			}

			before := planner.Stats()
			cells := make([]PlannerBenchPoint, len(dispatchers))
			times := make([][]float64, len(dispatchers))
			success := make([]int, len(dispatchers))
			for trial := 0; trial < trials; trial++ {
				sc := NewScenario(uint64(7000+1000*algIdx+10*d)+uint64(trial), d)
				for i, b := range dispatchers {
					task := sc.Task(alg, d, false)
					task.TimeLimit = time.Duration(plannerSLOSeconds * float64(time.Second))
					res, err := b.Search(context.Background(), task)
					if err != nil {
						return pb, fmt.Errorf("planner ablation %s d=%d %s: %w", alg, d, labels[i], err)
					}
					times[i] = append(times[i], res.DeviceSeconds)
					cells[i].Joules += res.EnergyJoules
					if res.Found && !res.TimedOut && res.DeviceSeconds <= plannerSLOSeconds {
						success[i]++
					}
				}
			}

			after := planner.Stats()
			chosen := map[string]int{}
			majority, majorityN := "", uint64(0)
			for i, es := range after.Engines {
				delta := es.Dispatches - before.Engines[i].Dispatches
				if delta > 0 {
					chosen[plannerLabel(es.Name)] += int(delta)
				}
				if delta > majorityN {
					majority, majorityN = plannerLabel(es.Name), delta
				}
			}
			if prevMajority != "" && majority != prevMajority {
				pb.Crossovers = append(pb.Crossovers, PlannerCrossover{
					Alg: alg.String(), D: d, From: prevMajority, To: majority,
				})
			}
			prevMajority = majority

			for i := range dispatchers {
				sort.Float64s(times[i])
				p := cells[i]
				p.Alg = alg.String()
				p.D = d
				p.Dispatcher = labels[i]
				p.Trials = trials
				p.P50s = quantile(times[i], 0.5)
				p.P99s = quantile(times[i], 0.99)
				p.SLOAttained = float64(success[i]) / float64(trials)
				if success[i] > 0 {
					p.JoulesPerAuth = p.Joules / float64(success[i])
				}
				if labels[i] == "planner" {
					p.Chosen = chosen
				}
				pb.Points = append(pb.Points, p)
			}
		}
	}
	return pb, nil
}

// quantile reads the q-quantile from an ascending-sorted sample.
func quantile(sorted []float64, q float64) float64 {
	if len(sorted) == 0 {
		return 0
	}
	i := int(q * float64(len(sorted)-1))
	return sorted[i]
}

// PlannerBenchTolerance is the allowed fractional J/auth excess before
// a cell counts as a violation: 15%, matching the host-throughput
// baseline gate. Early-exit cost is dominated by where the target seed
// lands in an engine's enumeration order, so two engines' realized
// J/auth means carry ~5-7% sampling noise each at the 32-trial CI
// scale even when their expected costs are equal.
const PlannerBenchTolerance = 0.15

// PlannerBenchViolations returns one message per grid cell where the
// planner failed the acceptance bar: strictly worse joules-per-
// successful-auth (beyond tolerance) than some fixed backend that
// attained at least the planner's SLO fraction, or a lower SLO
// attainment than the best fixed backend. Empty means the planner
// matched or beat every fixed single backend everywhere.
func PlannerBenchViolations(pb PlannerBench, tolerance float64) []string {
	type key struct {
		alg string
		d   int
	}
	planner := map[key]PlannerBenchPoint{}
	fixed := map[key][]PlannerBenchPoint{}
	for _, p := range pb.Points {
		k := key{p.Alg, p.D}
		if p.Dispatcher == "planner" {
			planner[k] = p
		} else {
			fixed[k] = append(fixed[k], p)
		}
	}
	var out []string
	for k, pl := range planner {
		bestSLO := 0.0
		for _, f := range fixed[k] {
			if f.SLOAttained > bestSLO {
				bestSLO = f.SLOAttained
			}
		}
		if pl.SLOAttained < bestSLO {
			out = append(out, fmt.Sprintf("%s d=%d: planner SLO %.2f below best fixed %.2f",
				k.alg, k.d, pl.SLOAttained, bestSLO))
			continue
		}
		for _, f := range fixed[k] {
			if f.SLOAttained < pl.SLOAttained || f.JoulesPerAuth == 0 {
				continue // planner already strictly better on SLO
			}
			if pl.JoulesPerAuth > f.JoulesPerAuth*(1+tolerance) {
				out = append(out, fmt.Sprintf("%s d=%d: planner %.3f J/auth vs %s %.3f J/auth",
					k.alg, k.d, pl.JoulesPerAuth, f.Dispatcher, f.JoulesPerAuth))
			}
		}
	}
	sort.Strings(out)
	return out
}

// Table renders the measurement in the experiment-table format.
func (pb PlannerBench) Table() *Table {
	t := &Table{
		ID: "planner",
		Title: fmt.Sprintf("Cost-based planner vs fixed backends, early-exit d=1..5, T=%.0fs (policy %s)",
			pb.SLOSeconds, pb.Policy),
		Headers: []string{"Hash", "d", "Dispatcher", "p50 (s)", "p99 (s)",
			"Joules", "J/auth", "SLO", "Chosen"},
	}
	for _, p := range pb.Points {
		chosen := ""
		if len(p.Chosen) > 0 {
			keys := make([]string, 0, len(p.Chosen))
			for k := range p.Chosen {
				keys = append(keys, k)
			}
			sort.Slice(keys, func(i, j int) bool { return p.Chosen[keys[i]] > p.Chosen[keys[j]] })
			for i, k := range keys {
				if i > 0 {
					chosen += " "
				}
				chosen += fmt.Sprintf("%s:%d", strings.TrimPrefix(k, "SALTED-"), p.Chosen[k])
			}
		}
		t.Rows = append(t.Rows, []string{
			p.Alg, fmt.Sprint(p.D), p.Dispatcher,
			fmt.Sprintf("%.4f", p.P50s), fmt.Sprintf("%.4f", p.P99s),
			fmt.Sprintf("%.2f", p.Joules), fmt.Sprintf("%.3f", p.JoulesPerAuth),
			fmt.Sprintf("%.0f%%", 100*p.SLOAttained), chosen,
		})
	}
	for _, c := range pb.Crossovers {
		t.Notes = append(t.Notes, fmt.Sprintf("crossover: %s engine flips %s -> %s at d=%d",
			c.Alg, c.From, c.To, c.D))
	}
	if len(pb.Crossovers) == 0 {
		t.Notes = append(t.Notes, "no d-crossover: one engine dominated every shell depth")
	}
	if v := PlannerBenchViolations(pb, PlannerBenchTolerance); len(v) > 0 {
		for _, msg := range v {
			t.Notes = append(t.Notes, "VIOLATION: "+msg)
		}
	} else {
		t.Notes = append(t.Notes,
			"planner matches or beats every fixed backend on J/auth at equal-or-better SLO attainment in every cell")
	}
	t.Notes = append(t.Notes,
		"CPU joules use the documented device.PowerCPUEst estimate (Table 6 reports no CPU rows)")
	return t
}

// JSON renders the measurement as the BENCH_planner.json document.
func (pb PlannerBench) JSON() ([]byte, error) {
	out, err := json.MarshalIndent(pb, "", "  ")
	if err != nil {
		return nil, err
	}
	return append(out, '\n'), nil
}

// PlannerAblation runs the planner experiment for the standard table
// pipeline (rbc-bench, EXPERIMENTS.md). trials scales the scenarios per
// (alg, d) cell.
func PlannerAblation(trials int) *Table {
	pb, err := MeasurePlanner(trials, plan.PolicyBalanced)
	if err != nil {
		panic(err)
	}
	return pb.Table()
}
