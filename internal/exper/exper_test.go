package exper

import (
	"bytes"
	"strconv"
	"strings"
	"testing"

	"rbcsalted/internal/device"
)

func renderOK(t *testing.T, tbl *Table) string {
	t.Helper()
	var buf bytes.Buffer
	if err := tbl.Render(&buf); err != nil {
		t.Fatal(err)
	}
	if buf.Len() == 0 {
		t.Fatalf("%s: empty rendering", tbl.ID)
	}
	var csv bytes.Buffer
	if err := tbl.RenderCSV(&csv); err != nil {
		t.Fatal(err)
	}
	return buf.String()
}

func cell(t *testing.T, tbl *Table, row, col int) string {
	t.Helper()
	if row >= len(tbl.Rows) || col >= len(tbl.Rows[row]) {
		t.Fatalf("%s: no cell (%d,%d)", tbl.ID, row, col)
	}
	return tbl.Rows[row][col]
}

func parseSecs(t *testing.T, s string) float64 {
	t.Helper()
	v, err := strconv.ParseFloat(strings.TrimSuffix(s, "x"), 64)
	if err != nil {
		t.Fatalf("cannot parse %q: %v", s, err)
	}
	return v
}

func TestTable1(t *testing.T) {
	tbl := Table1()
	renderOK(t, tbl)
	if len(tbl.Rows) != 5 {
		t.Fatalf("%d rows", len(tbl.Rows))
	}
	// d=5 exhaustive must be ~9.0e9.
	if got := cell(t, tbl, 4, 1); got != "8.99e+09" {
		t.Errorf("u(5) cell = %q", got)
	}
}

func TestTable4Ordering(t *testing.T) {
	tbl := Table4()
	renderOK(t, tbl)
	gray := parseSecs(t, cell(t, tbl, 0, 1))
	alg515 := parseSecs(t, cell(t, tbl, 1, 1))
	gosper := parseSecs(t, cell(t, tbl, 2, 1))
	// Gosper's position is a prediction from host-measured iterator costs;
	// allow 10% measurement headroom above Algorithm 515 on loaded hosts.
	// Race builds degrade gray < gosper to <=: the detector's
	// instrumentation can invert the measured host gap between the two
	// iterators, and the model clamps a negative gap to zero (equal
	// rows) — see device.RaceEnabled.
	if !(gray <= gosper && gosper < alg515*1.10) {
		t.Errorf("ordering broken: gray=%.2f gosper=%.2f alg515=%.2f", gray, gosper, alg515)
	}
	if !device.RaceEnabled && !(gray < gosper) {
		t.Errorf("gray (%.2f) not strictly faster than gosper (%.2f)", gray, gosper)
	}
	// Anchored rows must match the paper closely.
	if gray < 4.4 || gray > 4.95 {
		t.Errorf("gray = %.2f, want ~4.67", gray)
	}
	if alg515 < 7.1 || alg515 > 7.95 {
		t.Errorf("alg515 = %.2f, want ~7.53", alg515)
	}
}

func TestTable5Shape(t *testing.T) {
	tbl := Table5(20)
	renderOK(t, tbl)
	if len(tbl.Rows) != 12 {
		t.Fatalf("%d rows, want 12", len(tbl.Rows))
	}
	get := func(platform, hash, search string) float64 {
		for _, row := range tbl.Rows {
			if row[0] == platform && row[1] == hash && row[2] == search {
				return parseSecs(t, row[5])
			}
		}
		t.Fatalf("row %s/%s/%s missing", platform, hash, search)
		return 0
	}
	// Headline claims: GPU ~ APU on SHA-1; GPU beats APU and CPU on SHA-3;
	// everyone beats CPU; average < exhaustive.
	gpuSHA1 := get("SALTED-GPU", "SHA-1", "Exhaustive")
	apuSHA1 := get("SALTED-APU", "SHA-1", "Exhaustive")
	if gpuSHA1/apuSHA1 > 1.15 || apuSHA1/gpuSHA1 > 1.15 {
		t.Errorf("SHA-1 GPU (%0.2f) and APU (%0.2f) should be near-equal", gpuSHA1, apuSHA1)
	}
	gpuSHA3 := get("SALTED-GPU", "SHA-3", "Exhaustive")
	apuSHA3 := get("SALTED-APU", "SHA-3", "Exhaustive")
	cpuSHA3 := get("SALTED-CPU", "SHA-3", "Exhaustive")
	if !(gpuSHA3 < apuSHA3 && apuSHA3 < cpuSHA3) {
		t.Errorf("SHA-3 ordering broken: gpu=%.2f apu=%.2f cpu=%.2f", gpuSHA3, apuSHA3, cpuSHA3)
	}
	for _, platform := range []string{"SALTED-GPU", "SALTED-APU", "SALTED-CPU"} {
		for _, hash := range []string{"SHA-1", "SHA-3"} {
			if avg, exh := get(platform, hash, "Average"), get(platform, hash, "Exhaustive"); avg >= exh {
				t.Errorf("%s/%s: average %.2f not below exhaustive %.2f", platform, hash, avg, exh)
			}
		}
	}
	// T=20s verdicts: only SALTED-CPU with SHA-3 exceeds the threshold
	// (search-only).
	if cpuSHA3-0.90 < 20 {
		t.Error("CPU SHA-3 should exceed T=20s")
	}
	if gpuSHA3-0.90 > 20 || apuSHA3-0.90 > 20 {
		t.Error("GPU/APU SHA-3 should authenticate within T=20s")
	}
}

func TestTable6Energy(t *testing.T) {
	tbl := Table6()
	renderOK(t, tbl)
	gpu1 := parseSecs(t, cell(t, tbl, 0, 2))
	apu1 := parseSecs(t, cell(t, tbl, 1, 2))
	gpu3 := parseSecs(t, cell(t, tbl, 2, 2))
	apu3 := parseSecs(t, cell(t, tbl, 3, 2))
	// SHA-1: APU needs ~39% of GPU joules. SHA-3: roughly equivalent.
	if r := apu1 / gpu1; r < 0.3 || r > 0.5 {
		t.Errorf("SHA-1 APU/GPU energy ratio %.2f", r)
	}
	if r := apu3 / gpu3; r < 0.85 || r > 1.25 {
		t.Errorf("SHA-3 APU/GPU energy ratio %.2f", r)
	}
}

func TestTable7(t *testing.T) {
	tbl := Table7()
	renderOK(t, tbl)
	if len(tbl.Rows) != 4 {
		t.Fatalf("%d rows", len(tbl.Rows))
	}
	// Per-candidate Go-measured costs: hashing must be far cheaper than
	// PQC keygen.
	hash := parseSecs(t, cell(t, tbl, 3, 5))
	saberOp := parseSecs(t, cell(t, tbl, 1, 5))
	dilithiumOp := parseSecs(t, cell(t, tbl, 2, 5))
	if !(hash < saberOp && saberOp < dilithiumOp) {
		t.Errorf("per-op ordering broken: hash=%.1f saber=%.1f dilithium=%.1f",
			hash, saberOp, dilithiumOp)
	}
	// This-work GPU time must beat both PQC baselines' paper GPU times
	// despite searching a larger radius.
	gpuThis := parseSecs(t, cell(t, tbl, 3, 4))
	if gpuThis >= 14.03 {
		t.Errorf("SALTED-GPU %.2f not faster than SABER-GPU 14.03", gpuThis)
	}
}

func TestFigure3(t *testing.T) {
	tbl := Figure3()
	out := renderOK(t, tbl)
	if !strings.Contains(out, "n=100, b=128") {
		t.Errorf("optimum note missing: %s", tbl.Notes)
	}
}

func TestFigure4(t *testing.T) {
	tbl := Figure4(8)
	renderOK(t, tbl)
	// Find SHA-3 exhaustive speedup at 3 GPUs.
	var sp float64
	for _, row := range tbl.Rows {
		if row[0] == "SHA-3" && row[1] == "Exhaustive" && row[2] == "3" {
			sp = parseSecs(t, row[4])
		}
	}
	if sp < 2.7 || sp > 3.0 {
		t.Errorf("SHA-3 exhaustive 3-GPU speedup %.2f", sp)
	}
}

func TestCPUScalingAndFlagInterval(t *testing.T) {
	renderOK(t, CPUScaling())
	tbl := FlagInterval()
	renderOK(t, tbl)
	for _, row := range tbl.Rows {
		delta := strings.TrimSuffix(strings.TrimPrefix(row[2], "+"), "%")
		v, err := strconv.ParseFloat(delta, 64)
		if err != nil {
			t.Fatal(err)
		}
		if v > 0.01 || v < -1.0 {
			t.Errorf("interval %s changed time by %s", row[0], row[2])
		}
	}
}

func TestSharedMemTable(t *testing.T) {
	tbl := SharedMem()
	renderOK(t, tbl)
	sha1Speedup := parseSecs(t, cell(t, tbl, 0, 3))
	if sha1Speedup < 1.15 || sha1Speedup > 1.25 {
		t.Errorf("SHA-1 shared-memory speedup %.2f, want ~1.20", sha1Speedup)
	}
}

func TestAwareVsSaltedExecutes(t *testing.T) {
	if testing.Short() {
		t.Skip("runs real PQC keygen searches")
	}
	tbl := AwareVsSalted(1)
	renderOK(t, tbl)
	if len(tbl.Rows) != 4 {
		t.Fatalf("%d rows", len(tbl.Rows))
	}
	for _, row := range tbl.Rows {
		if row[4] != "true" {
			t.Errorf("engine %s did not find the seed", row[0])
		}
	}
	// Hash-based search must be cheaper than the PQC aware engines.
	salted := parseSecs(t, cell(t, tbl, 0, 2))
	dil := parseSecs(t, cell(t, tbl, 3, 2))
	if salted >= dil {
		t.Errorf("SALTED (%.3fs) not faster than aware Dilithium3 (%.3fs)", salted, dil)
	}
}

func TestMultiAPU(t *testing.T) {
	tbl := MultiAPU()
	renderOK(t, tbl)
	// Last APU row is 8 devices; its speedup must beat the 3-GPU row's.
	var gpu3, apu8 float64
	for _, row := range tbl.Rows {
		if row[0] == "A100 GPUs" && row[1] == "3" {
			gpu3 = parseSecs(t, row[3])
		}
		if row[0] == "Gemini APUs" && row[1] == "8" {
			apu8 = parseSecs(t, row[3])
		}
	}
	if apu8 <= gpu3 {
		t.Errorf("8-APU speedup %.2f not above 3-GPU %.2f", apu8, gpu3)
	}
}

func TestNoiseSecurity(t *testing.T) {
	tbl := NoiseSecurity()
	renderOK(t, tbl)
	// Times must grow with d, and the GPU must still be within T at d=5.
	var prev float64
	for i, row := range tbl.Rows {
		gpu := parseSecs(t, row[2])
		if i > 0 && gpu <= prev {
			t.Errorf("GPU time not increasing at d=%s", row[0])
		}
		prev = gpu
		if row[0] == "5" && gpu > 20 {
			t.Errorf("GPU exceeded T at d=5: %.2fs", gpu)
		}
	}
}

func TestByID(t *testing.T) {
	if _, err := ByID("nope", 10); err == nil {
		t.Error("unknown id accepted")
	}
	tbl, err := ByID("table1", 10)
	if err != nil || tbl.ID != "table1" {
		t.Errorf("ByID failed: %v", err)
	}
}

func TestCSVEscaping(t *testing.T) {
	tbl := &Table{
		ID:      "x",
		Headers: []string{"a", "b"},
		Rows:    [][]string{{"with,comma", "with\"quote"}},
	}
	var buf bytes.Buffer
	if err := tbl.RenderCSV(&buf); err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(buf.String(), "\"with,comma\"") ||
		!strings.Contains(buf.String(), "\"with\"\"quote\"") {
		t.Errorf("CSV escaping wrong: %s", buf.String())
	}
}
