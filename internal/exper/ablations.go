package exper

import (
	"context"
	"fmt"
	"runtime"
	"strings"

	"rbcsalted/internal/core"
	"rbcsalted/internal/cpu"
	"rbcsalted/internal/cryptoalg"
	"rbcsalted/internal/cryptoalg/aeskg"
	"rbcsalted/internal/cryptoalg/dilithium"
	"rbcsalted/internal/cryptoalg/saber"
	"rbcsalted/internal/device"
)

// hostCosts memoizes the calibration measurements for report tables.
func hostCosts() device.HostCosts { return device.MeasureHostCosts() }

// CPUScaling reproduces §4.3: SALTED-CPU strong scaling on the 64-core
// EPYC model (59x for SHA-1, 63x for SHA-3 at p=64), alongside a real
// measured point on this host.
func CPUScaling() *Table {
	t := &Table{
		ID:      "cpuscaling",
		Title:   "SALTED-CPU strong scaling (PlatformA model)",
		Headers: []string{"Hash", "p", "Modelled speedup", "Paper @64"},
	}
	for _, alg := range core.HashAlgs() {
		paper := map[core.HashAlg]string{core.SHA1: "59x", core.SHA3: "63x"}[alg]
		for _, p := range []int{1, 2, 4, 8, 16, 32, 64} {
			note := ""
			if p == 64 {
				note = paper
			}
			t.Rows = append(t.Rows, []string{
				alg.String(), fmt.Sprint(p),
				fmt.Sprintf("%.1fx", cpu.Speedup(alg, p)), note,
			})
		}
	}
	t.Notes = append(t.Notes,
		fmt.Sprintf("this host has %d core(s); the model extrapolates the paper's near-perfect efficiency curve", runtime.NumCPU()))
	return t
}

// AwareVsSalted is the directly executed evidence for the paper's central
// optimization: the original, algorithm-aware RBC search generates a
// public key per candidate seed, RBC-SALTED hashes instead. Both engines
// really run here, at a host-feasible radius.
func AwareVsSalted(maxD int) *Table {
	if maxD <= 0 || maxD > 2 {
		maxD = 2
	}
	t := &Table{
		ID:      "awarevssalted",
		Title:   fmt.Sprintf("Executed on this host: algorithm-aware RBC vs RBC-SALTED, d=%d", maxD),
		Headers: []string{"Engine", "Per-candidate op", "Search time (s)", "Candidates", "Found"},
	}
	sc := NewScenario(91, maxD)

	// RBC-SALTED with SHA-3.
	salted := &cpu.Backend{Alg: core.SHA3}
	task := sc.Task(core.SHA3, maxD, false)
	task.Oracle = nil
	res, err := salted.Search(context.Background(), task)
	if err != nil {
		panic(err)
	}
	t.Rows = append(t.Rows, []string{"RBC-SALTED", "SHA-3 hash", fmt.Sprintf("%.3f", res.DeviceSeconds),
		fmt.Sprint(res.SeedsCovered), fmt.Sprint(res.Found)})

	// Original algorithm-aware engines.
	for _, kg := range []cryptoalg.KeyGenerator{&aeskg.Generator{}, saber.Generator{}, dilithium.Generator{}} {
		target := kg.PublicKey(sc.Client.Bytes())
		aware := &cpu.AwareBackend{Keygen: kg}
		ares, err := aware.Search(context.Background(), cpu.AwareTask{
			Base:        sc.Base,
			TargetKey:   target,
			MaxDistance: maxD,
			Method:      defaultMethod,
		})
		if err != nil {
			panic(err)
		}
		t.Rows = append(t.Rows, []string{
			"RBC-" + kg.Name(), kg.Name() + " keygen",
			fmt.Sprintf("%.3f", ares.DeviceSeconds),
			fmt.Sprint(ares.SeedsCovered), fmt.Sprint(ares.Found),
		})
	}
	t.Notes = append(t.Notes,
		"every row is genuinely executed end to end on this machine (no modelling)",
		"the PQC engines' per-candidate cost is why prior work could only reach d=4 within T=20s")
	return t
}

// registry lists every experiment in paper order. All, ByID and the
// unknown-experiment error are all generated from it, so adding an
// experiment here is the single registration step.
var registry = []struct {
	id string
	fn func(trials int) *Table
}{
	{"table1", func(int) *Table { return Table1() }},
	{"itermicro", func(int) *Table { return IteratorMicro() }},
	{"figure3", func(int) *Table { return Figure3() }},
	{"flaginterval", func(int) *Table { return FlagInterval() }},
	{"table4", func(int) *Table { return Table4() }},
	{"table5", Table5},
	{"table6", func(int) *Table { return Table6() }},
	{"figure4", func(trials int) *Table { return Figure4(trials / 4) }},
	{"table7", func(int) *Table { return Table7() }},
	{"cpuscaling", func(int) *Table { return CPUScaling() }},
	{"sharedmem", func(int) *Table { return SharedMem() }},
	{"awarevssalted", func(int) *Table { return AwareVsSalted(2) }},
	{"multiapu", func(int) *Table { return MultiAPU() }},
	{"noisesecurity", func(int) *Table { return NoiseSecurity() }},
	{"hostthroughput", func(int) *Table { return HostThroughput() }},
	{"servelatency", ServeLatency},
	{"planner", PlannerAblation},
}

// All returns every experiment in paper order. trials scales the
// stochastic average-case sample counts.
func All(trials int) []*Table {
	out := make([]*Table, 0, len(registry))
	for _, e := range registry {
		out = append(out, e.fn(trials))
	}
	return out
}

// ExperimentIDs returns every registered experiment id, in run order.
func ExperimentIDs() []string {
	ids := make([]string, len(registry))
	for i, e := range registry {
		ids[i] = e.id
	}
	return ids
}

// ByID returns the experiment with the given id, scaling stochastic
// sampling by trials.
func ByID(id string, trials int) (*Table, error) {
	for _, e := range registry {
		if e.id == id {
			return e.fn(trials), nil
		}
	}
	return nil, fmt.Errorf("exper: unknown experiment %q (try: %s)",
		id, strings.Join(ExperimentIDs(), ", "))
}
