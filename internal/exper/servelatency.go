package exper

import (
	"context"
	"encoding/json"
	"fmt"
	"runtime"
	"sync"
	"time"

	"rbcsalted/internal/core"
	"rbcsalted/internal/cpu"
	"rbcsalted/internal/cryptoalg/aeskg"
	"rbcsalted/internal/obs"
	"rbcsalted/internal/puf"
	"rbcsalted/internal/sched"
)

// ServeBenchSchema identifies the BENCH_serve.json format. Bump on any
// field change so trajectory tooling can tell points apart.
const ServeBenchSchema = "rbc-salted/serve-bench/v1"

// ServeBenchPoint is one QoS class's slice of the serving-latency
// measurement: end-to-end authentication latency percentiles plus the
// scheduler-side queue-wait percentiles for the requests of that class
// that escalated past the inline window.
type ServeBenchPoint struct {
	Class     string  `json:"class"`
	Requests  int     `json:"requests"`
	NoiseBits int     `json:"noise_bits"`
	P50Ms     float64 `json:"p50_ms"`
	P99Ms     float64 `json:"p99_ms"`
	QueueP50s float64 `json:"queue_p50_s"`
	QueueP99s float64 `json:"queue_p99_s"`
}

// ServeBench is the full mixed-class serving measurement — the latency
// trajectory point emitted as BENCH_serve.json.
type ServeBench struct {
	Schema       string            `json:"schema"`
	GeneratedAt  string            `json:"generated_at"`
	GoVersion    string            `json:"go_version"`
	NumCPU       int               `json:"num_cpu"`
	SchedWorkers int               `json:"sched_workers"`
	QueueDepth   int               `json:"queue_depth"`
	InlineServed uint64            `json:"inline_served"`
	Escalated    uint64            `json:"escalated"`
	Shed         uint64            `json:"shed"`
	Hedged       uint64            `json:"hedged"`
	PerClass     []ServeBenchPoint `json:"per_class"`
}

// serve-bench pool geometry: small enough that the mixed burst really
// queues, so class priority is visible in the percentiles.
const (
	serveWorkers = 2
	serveQueue   = 64
	serveLanes   = 4 // concurrent request lanes per class
)

// serveNoise maps each QoS class to the deliberate noise its requests
// inject: interactive requests stay inside the inline window (d <= 1),
// batch and background requests force escalation to the scheduler.
var serveNoise = [core.NumClasses]int{
	core.ClassInteractive: 0,
	core.ClassBatch:       2,
	core.ClassBackground:  2,
}

// MeasureServeLatency drives a mixed-class authentication burst through
// one CA whose backend is a class-aware scheduler over the real CPU
// engine, and reports per-class end-to-end latency percentiles. The
// interactive lane's requests resolve inline on the host; batch and
// background lanes escalate and compete for the scheduler's workers, so
// the spread between the classes' percentiles is the experiment.
func MeasureServeLatency(perClass int) (ServeBench, error) {
	if perClass <= 0 {
		perClass = 8
	}
	sb := ServeBench{
		Schema:       ServeBenchSchema,
		GeneratedAt:  time.Now().UTC().Format(time.RFC3339),
		GoVersion:    runtime.Version(),
		NumCPU:       runtime.NumCPU(),
		SchedWorkers: serveWorkers,
		QueueDepth:   serveQueue,
	}

	reg := obs.NewRegistry()
	pool := sched.New(&cpu.Backend{Alg: core.SHA3, Workers: 1}, sched.Config{
		Workers:    serveWorkers,
		QueueDepth: serveQueue,
		Metrics:    reg,
	})
	defer pool.Close()
	store, err := core.NewImageStore([32]byte{0xA7})
	if err != nil {
		return sb, err
	}
	ca, err := core.NewCA(store, pool, &aeskg.Generator{}, core.NewRA(), core.CAConfig{
		Alg:         core.SHA3,
		MaxDistance: 3,
	})
	if err != nil {
		return sb, err
	}

	// One enrolled client per (class, lane): lanes issue their requests
	// sequentially on their own noiseless device, so the injected noise
	// alone decides each request's search distance.
	type lane struct {
		client *core.Client
		class  core.QoSClass
	}
	var lanes []lane
	for c := 0; c < core.NumClasses; c++ {
		for l := 0; l < serveLanes; l++ {
			id := core.ClientID(fmt.Sprintf("serve-%s-%d", core.QoSClass(c), l))
			dev, err := puf.NewDevice(uint64(4300+c*serveLanes+l), 1024, puf.Profile{BaseError: 0})
			if err != nil {
				return sb, err
			}
			im, err := puf.Enroll(dev, 31)
			if err != nil {
				return sb, err
			}
			if err := ca.Enroll(id, im); err != nil {
				return sb, err
			}
			lanes = append(lanes, lane{
				client: &core.Client{ID: id, Device: dev, NoiseBits: serveNoise[c]},
				class:  core.QoSClass(c),
			})
		}
	}

	// End-to-end latency histograms, one per class, quantiled the same
	// way a /metrics consumer would.
	var e2e [core.NumClasses]*obs.Histogram
	for c := 0; c < core.NumClasses; c++ {
		e2e[c] = reg.Histogram("serve.e2e_seconds."+core.QoSClass(c).String(), obs.DefLatencyBuckets)
	}

	perLane := (perClass + serveLanes - 1) / serveLanes
	var wg sync.WaitGroup
	errCh := make(chan error, len(lanes))
	for _, ln := range lanes {
		wg.Add(1)
		go func(ln lane) {
			defer wg.Done()
			for i := 0; i < perLane; i++ {
				ch, err := ca.BeginHandshake(ln.client.ID)
				if err != nil {
					errCh <- err
					return
				}
				m1, err := ln.client.Respond(ch)
				if err != nil {
					errCh <- err
					return
				}
				start := time.Now()
				res, err := ca.Authenticate(context.Background(), core.AuthRequest{
					Client: ln.client.ID, Nonce: ch.Nonce, M1: m1, Class: ln.class,
				})
				if err != nil {
					errCh <- fmt.Errorf("%s: %w", ln.client.ID, err)
					return
				}
				if !res.Authenticated {
					errCh <- fmt.Errorf("%s: not authenticated", ln.client.ID)
					return
				}
				e2e[ln.class].Observe(time.Since(start).Seconds())
			}
		}(ln)
	}
	wg.Wait()
	close(errCh)
	for err := range errCh {
		return sb, err
	}

	st := pool.Stats()
	total := uint64(core.NumClasses * serveLanes * perLane)
	sb.Escalated = st.Submitted
	sb.InlineServed = total - st.Submitted
	sb.Shed = st.Shed
	sb.Hedged = st.Hedged
	snap := reg.Snapshot()
	for c := 0; c < core.NumClasses; c++ {
		name := core.QoSClass(c).String()
		p := ServeBenchPoint{
			Class:     name,
			Requests:  serveLanes * perLane,
			NoiseBits: serveNoise[c],
		}
		if h, ok := snap["serve.e2e_seconds."+name].(obs.HistogramSnapshot); ok {
			p.P50Ms = h.Quantile(0.5) * 1e3
			p.P99Ms = h.Quantile(0.99) * 1e3
		}
		if h, ok := snap["sched.queue_wait_seconds."+name].(obs.HistogramSnapshot); ok {
			p.QueueP50s = h.Quantile(0.5)
			p.QueueP99s = h.Quantile(0.99)
		}
		sb.PerClass = append(sb.PerClass, p)
	}
	return sb, nil
}

// Table renders the measurement in the experiment-table format.
func (sb ServeBench) Table() *Table {
	t := &Table{
		ID: "servelatency",
		Title: fmt.Sprintf("Mixed-class serving latency, %d sched workers, queue depth %d",
			sb.SchedWorkers, sb.QueueDepth),
		Headers: []string{"Class", "Requests", "Noise bits", "p50 (ms)", "p99 (ms)", "queue p50 (s)", "queue p99 (s)"},
	}
	for _, p := range sb.PerClass {
		t.Rows = append(t.Rows, []string{
			p.Class, fmt.Sprint(p.Requests), fmt.Sprint(p.NoiseBits),
			fmt.Sprintf("%.3f", p.P50Ms), fmt.Sprintf("%.3f", p.P99Ms),
			fmt.Sprintf("%.4f", p.QueueP50s), fmt.Sprintf("%.4f", p.QueueP99s),
		})
	}
	t.Notes = append(t.Notes,
		fmt.Sprintf("%d of %d requests served inline on the host (d <= 1 fast path); %d escalated to the scheduler; %d shed; %d hedged",
			sb.InlineServed, sb.InlineServed+sb.Escalated, sb.Escalated, sb.Shed, sb.Hedged),
		"interactive requests ride the inline fast path; batch/background inject noise past it and queue",
		fmt.Sprintf("%s, %d cores", sb.GoVersion, sb.NumCPU),
	)
	return t
}

// JSON renders the measurement as the BENCH_serve.json document.
func (sb ServeBench) JSON() ([]byte, error) {
	out, err := json.MarshalIndent(sb, "", "  ")
	if err != nil {
		return nil, err
	}
	return append(out, '\n'), nil
}

// ServeLatency runs the serving-latency experiment for the standard
// table pipeline (rbc-bench, EXPERIMENTS.md). trials scales the number
// of requests per class.
func ServeLatency(trials int) *Table {
	perClass := trials / 4
	if perClass < 8 {
		perClass = 8
	} else if perClass > 400 {
		perClass = 400
	}
	sb, err := MeasureServeLatency(perClass)
	if err != nil {
		panic(err)
	}
	return sb.Table()
}
