// Package exper regenerates every table and figure of the paper's
// evaluation (§4): each experiment returns a Table holding our measured or
// modelled values side by side with the paper's published numbers, so the
// reproduction quality is visible row by row. cmd/rbc-bench is the CLI
// front end, and EXPERIMENTS.md is generated from these tables.
package exper

import (
	"fmt"
	"io"
	"math/rand/v2"
	"strings"
	"time"

	"rbcsalted/internal/core"
	"rbcsalted/internal/puf"
	"rbcsalted/internal/u256"
)

// Table is one experiment's output.
type Table struct {
	ID      string // e.g. "table5", "figure4"
	Title   string
	Headers []string
	Rows    [][]string
	Notes   []string
}

// Render writes an aligned text rendering.
func (t *Table) Render(w io.Writer) error {
	widths := make([]int, len(t.Headers))
	for i, h := range t.Headers {
		widths[i] = len(h)
	}
	for _, row := range t.Rows {
		for i, cell := range row {
			if i < len(widths) && len(cell) > widths[i] {
				widths[i] = len(cell)
			}
		}
	}
	line := func(cells []string) string {
		parts := make([]string, len(cells))
		for i, c := range cells {
			parts[i] = pad(c, widths[i])
		}
		return strings.TrimRight(strings.Join(parts, "  "), " ")
	}
	if _, err := fmt.Fprintf(w, "== %s: %s ==\n", t.ID, t.Title); err != nil {
		return err
	}
	fmt.Fprintln(w, line(t.Headers))
	total := 0
	for _, wd := range widths {
		total += wd + 2
	}
	fmt.Fprintln(w, strings.Repeat("-", total-2))
	for _, row := range t.Rows {
		fmt.Fprintln(w, line(row))
	}
	for _, n := range t.Notes {
		fmt.Fprintf(w, "note: %s\n", n)
	}
	_, err := fmt.Fprintln(w)
	return err
}

// RenderCSV writes the table as CSV (headers + rows).
func (t *Table) RenderCSV(w io.Writer) error {
	write := func(cells []string) error {
		quoted := make([]string, len(cells))
		for i, c := range cells {
			if strings.ContainsAny(c, ",\"\n") {
				c = "\"" + strings.ReplaceAll(c, "\"", "\"\"") + "\""
			}
			quoted[i] = c
		}
		_, err := fmt.Fprintln(w, strings.Join(quoted, ","))
		return err
	}
	if err := write(t.Headers); err != nil {
		return err
	}
	for _, row := range t.Rows {
		if err := write(row); err != nil {
			return err
		}
	}
	return nil
}

func pad(s string, w int) string {
	if len(s) >= w {
		return s
	}
	return s + strings.Repeat(" ", w-len(s))
}

// secs formats seconds to two decimals.
func secs(v float64) string { return fmt.Sprintf("%.2f", v) }

// Scenario is a reproducible authentication instance: the server's
// enrolled seed and the client's noisy read at an exact Hamming distance.
type Scenario struct {
	Base   u256.Uint256
	Client u256.Uint256
}

// NewScenario builds a deterministic scenario at the given distance.
func NewScenario(rngSeed uint64, distance int) Scenario {
	r := rand.New(rand.NewPCG(rngSeed, 0xC0FFEE))
	base := u256.New(r.Uint64(), r.Uint64(), r.Uint64(), r.Uint64())
	client := puf.InjectNoise(base, base, distance, r)
	return Scenario{Base: base, Client: client}
}

// Task builds the core.Task for a scenario.
func (s Scenario) Task(alg core.HashAlg, maxD int, exhaustive bool) core.Task {
	oracle := s.Client
	return core.Task{
		Base:        s.Base,
		Target:      core.HashSeed(alg, s.Client),
		MaxDistance: maxD,
		Method:      defaultMethod,
		Exhaustive:  exhaustive,
		Oracle:      &oracle,
	}
}

// timeOp measures nanoseconds per op for the Table 7 key-generation cost
// comparison, taking the minimum over several windows so transient host
// load cannot contaminate the measurement.
func timeOp(op func()) float64 {
	n := 1
	for {
		start := time.Now()
		for i := 0; i < n; i++ {
			op()
		}
		if time.Since(start) >= 5*time.Millisecond {
			break
		}
		n *= 4
	}
	best := float64(1<<63 - 1)
	for rep := 0; rep < 3; rep++ {
		start := time.Now()
		for i := 0; i < n; i++ {
			op()
		}
		if v := float64(time.Since(start).Nanoseconds()) / float64(n); v < best {
			best = v
		}
	}
	return best
}
