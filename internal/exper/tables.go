package exper

import (
	"context"
	"fmt"
	"math/big"

	"rbcsalted/internal/apusim"
	"rbcsalted/internal/combin"
	"rbcsalted/internal/core"
	"rbcsalted/internal/cpu"
	"rbcsalted/internal/cryptoalg"
	"rbcsalted/internal/cryptoalg/aeskg"
	"rbcsalted/internal/cryptoalg/dilithium"
	"rbcsalted/internal/cryptoalg/saber"
	"rbcsalted/internal/device"
	"rbcsalted/internal/gpusim"
	"rbcsalted/internal/iterseq"
)

// defaultMethod is the paper's best seed iterator (the Chase-class
// minimal-change sequence).
const defaultMethod = iterseq.GrayCode

// commSeconds is the paper's measured end-to-end communication constant.
const commSeconds = 0.90

// Table1 reproduces Table 1: seeds searched for exhaustive (Equation 1)
// and average-case (Equation 3) searches, d = 1..5.
func Table1() *Table {
	t := &Table{
		ID:      "table1",
		Title:   "Seeds searched per Hamming distance (exact; paper reports 2 s.f.)",
		Headers: []string{"d", "Exhaustive u(d)", "Average a(d)", "Paper u(d)", "Paper a(d)"},
	}
	paperU := []string{"256", "3.3e4", "2.8e6", "1.8e8", "9.0e9"}
	paperA := []string{"129", "1.7e4", "1.4e6", "9.0e7", "4.6e9"}
	for d := 1; d <= 5; d++ {
		u := combin.ExhaustiveSeeds(combin.SeedBits, d)
		a := combin.AverageSeeds(combin.SeedBits, d)
		t.Rows = append(t.Rows, []string{
			fmt.Sprint(d), sci(u), sci(a), paperU[d-1], paperA[d-1],
		})
	}
	t.Notes = append(t.Notes,
		"u(d) includes the distance-0 seed; the paper rounds to the shell size at low d")
	return t
}

func sci(v *big.Int) string {
	f, _ := new(big.Float).SetInt(v).Float64()
	if f < 1e5 {
		return fmt.Sprintf("%.0f", f)
	}
	return fmt.Sprintf("%.3g", f)
}

// Table4 reproduces Table 4: total exhaustive search-only time for the
// three seed iterators (GPU, SHA-3, d=5). The minimal-change and
// Algorithm 515 rows are calibration anchors; Gosper is a model
// prediction.
func Table4() *Table {
	t := &Table{
		ID:      "table4",
		Title:   "Seed-iterator search-only time, SHA-3 exhaustive d=5, 1xA100 (s)",
		Headers: []string{"Iterator", "Model (s)", "Paper (s)", "Role"},
	}
	rows := []struct {
		method iterseq.Method
		label  string
		paper  string
		role   string
	}{
		{iterseq.GrayCode, "Minimal-change (Chase-class, Alg. 382 slot)", "4.67", "anchor"},
		{iterseq.Alg515, "Algorithm 515 (Buckles-Lybanon)", "7.53", "anchor"},
		{iterseq.Gosper, "Gosper's hack @256 bit (prior work)", "6.04", "prediction"},
		{iterseq.Mifsud154, "Lexicographic successor (Alg. 154)", "-", "extension"},
	}
	for _, r := range rows {
		sc := NewScenario(41, 5)
		b := gpusim.NewBackend(gpusim.Config{Alg: core.SHA3, SharedMemoryState: true})
		task := sc.Task(core.SHA3, 5, true)
		task.Method = r.method
		res, err := b.Search(context.Background(), task)
		if err != nil {
			panic(err)
		}
		t.Rows = append(t.Rows, []string{r.label, secs(res.DeviceSeconds), r.paper, r.role})
	}
	t.Notes = append(t.Notes,
		"per-seed iterator costs measured from the real Go implementations, translated to A100 cycles via the Alg. 515 anchor")
	return t
}

// table5Backends builds the three platforms for one hash algorithm.
func table5Backends(alg core.HashAlg) []core.Backend {
	return []core.Backend{
		gpusim.NewBackend(gpusim.Config{Alg: alg, SharedMemoryState: true}),
		apusim.NewBackend(apusim.Config{Alg: alg}),
		&cpu.ModelBackend{Alg: alg},
	}
}

func platformLabel(i int) string {
	return [...]string{"SALTED-GPU", "SALTED-APU", "SALTED-CPU"}[i]
}

// Table5 reproduces Table 5: end-to-end response time for the three
// platforms x {SHA-1, SHA-3} x {exhaustive, average}, d=5, with the
// paper's 0.90 s communication constant. Average-case rows are the mean
// of `trials` stochastic scenarios (the paper used 1,200).
func Table5(trials int) *Table {
	if trials <= 0 {
		trials = 200
	}
	t := &Table{
		ID:    "table5",
		Title: fmt.Sprintf("End-to-end response time (s), d=5 (avg over %d trials)", trials),
		Headers: []string{"Algorithm", "Hash", "Search type", "Comm (s)", "Search (s)",
			"Total (s)", "Paper total (s)"},
	}
	paper := map[string]string{
		"SALTED-GPU/SHA-1/Exhaustive": "2.46", "SALTED-APU/SHA-1/Exhaustive": "2.52",
		"SALTED-CPU/SHA-1/Exhaustive": "12.99", "SALTED-GPU/SHA-1/Average": "1.75",
		"SALTED-APU/SHA-1/Average": "1.73", "SALTED-CPU/SHA-1/Average": "6.94",
		"SALTED-GPU/SHA-3/Exhaustive": "5.57", "SALTED-APU/SHA-3/Exhaustive": "14.85",
		"SALTED-CPU/SHA-3/Exhaustive": "61.58", "SALTED-GPU/SHA-3/Average": "3.32",
		"SALTED-APU/SHA-3/Average": "7.95", "SALTED-CPU/SHA-3/Average": "31.42",
	}
	for _, alg := range core.HashAlgs() {
		backends := table5Backends(alg)
		for i, b := range backends {
			// Exhaustive: one deterministic scenario, full coverage.
			res, err := b.Search(context.Background(), NewScenario(51, 5).Task(alg, 5, true))
			if err != nil {
				panic(err)
			}
			key := fmt.Sprintf("%s/%s/Exhaustive", platformLabel(i), alg)
			t.Rows = append(t.Rows, []string{
				platformLabel(i), alg.String(), "Exhaustive", secs(commSeconds),
				secs(res.DeviceSeconds), secs(commSeconds + res.DeviceSeconds), paper[key],
			})
		}
		for i, b := range backends {
			// Average case: stochastic seeds at exactly d=5, early exit.
			sum := 0.0
			for trial := 0; trial < trials; trial++ {
				sc := NewScenario(uint64(1000+trial), 5)
				res, err := b.Search(context.Background(), sc.Task(alg, 5, false))
				if err != nil {
					panic(err)
				}
				sum += res.DeviceSeconds
			}
			mean := sum / float64(trials)
			key := fmt.Sprintf("%s/%s/Average", platformLabel(i), alg)
			t.Rows = append(t.Rows, []string{
				platformLabel(i), alg.String(), "Average", secs(commSeconds),
				secs(mean), secs(commSeconds + mean), paper[key],
			})
		}
	}
	t.Notes = append(t.Notes,
		"comm time is the paper's measured 0.90 s constant (netproto.PaperLatency)",
		"exhaustive GPU/APU/CPU SHA-level times are calibration anchors; average-case values are model outputs")
	return t
}

// Table6 reproduces Table 6: search-only energy of the exhaustive d=5
// search on GPU and APU.
func Table6() *Table {
	t := &Table{
		ID:      "table6",
		Title:   "Search-only energy, exhaustive d=5",
		Headers: []string{"Algorithm", "SHA", "Joules", "Max W", "Idle W", "Paper J", "Paper max W"},
	}
	rows := []struct {
		backend core.Backend
		name    string
		alg     core.HashAlg
		idle    float64
		paperJ  string
		paperW  string
	}{
		{gpusim.NewBackend(gpusim.Config{Alg: core.SHA1, SharedMemoryState: true}), "SALTED-GPU", core.SHA1, 31.53, "317.20", "253.43"},
		{apusim.NewBackend(apusim.Config{Alg: core.SHA1}), "SALTED-APU", core.SHA1, 22.10, "124.43", "83.81"},
		{gpusim.NewBackend(gpusim.Config{Alg: core.SHA3, SharedMemoryState: true}), "SALTED-GPU", core.SHA3, 31.53, "946.55", "258.29"},
		{apusim.NewBackend(apusim.Config{Alg: core.SHA3}), "SALTED-APU", core.SHA3, 22.10, "974.06", "83.63"},
	}
	for _, r := range rows {
		res, err := r.backend.Search(context.Background(), NewScenario(61, 5).Task(r.alg, 5, true))
		if err != nil {
			panic(err)
		}
		t.Rows = append(t.Rows, []string{
			r.name, map[core.HashAlg]string{core.SHA1: "1", core.SHA3: "3"}[r.alg],
			fmt.Sprintf("%.2f", res.EnergyJoules), fmt.Sprintf("%.2f", res.PeakWatts),
			fmt.Sprintf("%.2f", r.idle), r.paperJ, r.paperW,
		})
	}
	t.Notes = append(t.Notes,
		"energy = calibrated average active draw x modelled search time; idle draw included, as in the paper")
	return t
}

// Table7 reproduces Table 7: execution time of prior RBC engines vs this
// work. Prior-work GPU/CPU times are the paper's published measurements;
// the "Go-measured" column prices each engine's per-candidate operation
// as actually measured from this repository's from-scratch AES / SABER /
// Dilithium implementations, scaled to the 64-core PlatformA model.
func Table7() *Table {
	t := &Table{
		ID:    "table7",
		Title: "Comparison with prior RBC engines (d as in the paper)",
		Headers: []string{"Ref", "Engine", "d", "Paper CPU (s)", "Paper GPU (s)",
			"Go-measured op (us)", "Modelled 64-core CPU (s)", "This-work APU (s)"},
	}
	type baseline struct {
		ref    string
		engine string
		keygen cryptoalg.KeyGenerator
		d      int
		cpu    string
		gpu    string
	}
	baselines := []baseline{
		{"[39]", "AES-128", &aeskg.Generator{}, 5, "44.7", "2.56"},
		{"[29]", "LightSaber", saber.Generator{}, 4, "44.58", "14.03"},
		{"[40]", "Dilithium3", dilithium.Generator{}, 4, "204.92", "27.91"},
	}
	for _, b := range baselines {
		opNs := timeOp(func() {
			var seed [32]byte
			seed[0] = 1
			b.keygen.PublicKey(seed)
		})
		seeds, _ := new(big.Float).SetInt(combin.ExhaustiveSeeds(256, b.d)).Float64()
		modelled := seeds * opNs * 1e-9 / cpu.Speedup(core.SHA3, 64)
		t.Rows = append(t.Rows, []string{
			b.ref, b.engine, fmt.Sprint(b.d), b.cpu, b.gpu,
			fmt.Sprintf("%.1f", opNs/1000), secs(modelled), "-",
		})
	}
	// This work: SHA-3 SALTED at d=5 on all three platforms.
	sc := NewScenario(71, 5)
	cpuRes, err := (&cpu.ModelBackend{Alg: core.SHA3}).Search(context.Background(), sc.Task(core.SHA3, 5, true))
	if err != nil {
		panic(err)
	}
	gpuRes, err := gpusim.NewBackend(gpusim.Config{Alg: core.SHA3, SharedMemoryState: true}).
		Search(context.Background(), sc.Task(core.SHA3, 5, true))
	if err != nil {
		panic(err)
	}
	apuRes, err := apusim.NewBackend(apusim.Config{Alg: core.SHA3}).
		Search(context.Background(), sc.Task(core.SHA3, 5, true))
	if err != nil {
		panic(err)
	}
	hashNs := device.MeasureHostCosts().SHA3Ns
	t.Rows = append(t.Rows, []string{
		"here", "RBC-SALTED SHA-3", "5",
		secs(cpuRes.DeviceSeconds), secs(gpuRes.DeviceSeconds),
		fmt.Sprintf("%.1f", hashNs/1000), secs(cpuRes.DeviceSeconds),
		secs(apuRes.DeviceSeconds),
	})
	t.Notes = append(t.Notes,
		"paper CPU/GPU columns are the published prior-work measurements (their optimized C/CUDA)",
		"Go-measured column: per-candidate cost of this repo's from-scratch implementations; the PQC engines cost 1-2 orders of magnitude more per seed than hashing, which is the paper's core claim",
	)
	return t
}
