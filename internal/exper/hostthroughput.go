package exper

import (
	"context"
	"encoding/json"
	"fmt"
	"runtime"
	"time"

	"rbcsalted/internal/combin"
	"rbcsalted/internal/core"
	"rbcsalted/internal/iterseq"
	"rbcsalted/internal/obs"
	"rbcsalted/internal/u256"
)

// HostBenchSchema identifies the BENCH_host.json format. Bump on any
// field change so trajectory tooling can tell points apart.
//
// v2: one point per (algorithm, iteration method, batch kernel) instead
// of a single anonymous "batched" engine per cell, so the 64-wide and
// 256-wide bit-sliced paths (and the multi-buffer SHA-1 path) each leave
// their own trajectory and the bench-smoke gate can catch one of them
// regressing behind another.
//
// v3: each kernel point additionally records the measured fill and pack
// phase cost (ns/seed, from a dedicated instrumented pass) separately
// from compression, so the marshalling overhead the sliced-domain delta
// kernel eliminates is a tracked number rather than an inference from
// end-to-end throughput.
const HostBenchSchema = "rbc-salted/host-bench/v3"

// HostBenchPoint is one (algorithm, iteration method, kernel) cell of
// the host throughput measurement: the scalar one-seed-at-a-time engine
// against that batch kernel, in seeds per second. Speedup - the ratio -
// is the number that transfers across machines and the one the baseline
// gate compares; the absolute throughputs are context.
type HostBenchPoint struct {
	Alg                string  `json:"alg"`
	Method             string  `json:"method"`
	Kernel             string  `json:"kernel"`
	Width              int     `json:"width"`
	ScalarSeedsPerSec  float64 `json:"scalar_seeds_per_sec"`
	BatchedSeedsPerSec float64 `json:"batched_seeds_per_sec"`
	Speedup            float64 `json:"speedup"`
	// FillNsPerSeed and PackNsPerSeed split out the batched path's
	// non-compression phases, measured in a separate instrumented pass
	// (capturePhases): fill is the iterator drain (successor steps, and
	// base XORs on the materializing path), pack is candidate
	// marshalling into the kernel's layout (limb extraction and bit
	// transposes on the repack kernels, sparse delta application on the
	// sliced-domain delta kernel).
	FillNsPerSeed float64 `json:"fill_ns_per_seed"`
	PackNsPerSeed float64 `json:"pack_ns_per_seed"`
}

// HostBench is the full host-throughput measurement - the perf
// trajectory point emitted as BENCH_host.json by `make bench`.
type HostBench struct {
	Schema        string           `json:"schema"`
	GeneratedAt   string           `json:"generated_at"`
	GoVersion     string           `json:"go_version"`
	GoOS          string           `json:"goos"`
	GoArch        string           `json:"goarch"`
	NumCPU        int              `json:"num_cpu"`
	Workers       int              `json:"workers"`
	Distance      int              `json:"distance"`
	SeedsPerShell uint64           `json:"seeds_per_shell"`
	Points        []HostBenchPoint `json:"points"`
}

// hostBenchDistance is the shell the measurement covers exhaustively:
// d=2 is C(256,2) = 32640 seeds, small enough to repeat until the
// timing windows stabilize and large enough to amortize setup.
const hostBenchDistance = 2

// MeasureHostThroughput measures the real host search engine - the
// scalar quick-reject loop against every implemented batch kernel -
// over one exhaustive d=2 shell for every algorithm and iteration
// method. A single worker is used so the numbers track the hot loop
// itself rather than the host's core count; Workers records it, NumCPU
// records the machine.
func MeasureHostThroughput() HostBench {
	hb := HostBench{
		Schema:      HostBenchSchema,
		GeneratedAt: time.Now().UTC().Format(time.RFC3339),
		GoVersion:   runtime.Version(),
		GoOS:        runtime.GOOS,
		GoArch:      runtime.GOARCH,
		NumCPU:      runtime.NumCPU(),
		Workers:     1,
		Distance:    hostBenchDistance,
	}
	hb.SeedsPerShell, _ = combin.Binomial64(256, hostBenchDistance)

	base := u256.New(0xfeedbeef, 0x12345678, 0x9abcdef0, 0x0f1e2d3c)
	for _, alg := range core.HashAlgs() {
		// The target is the base's own digest: at distance 0 it is
		// outside the measured shell, so every candidate is hashed and
		// rejected - the worst-case (and steady-state) search load.
		target := core.HashSeed(alg, base)
		scalar := core.ScalarMatcher(core.HashMatcherFactory(alg, target))
		kernels := core.BatchKernels(alg)
		factories := make([]core.MatcherFactory, len(kernels))
		for i, k := range kernels {
			factories[i] = pinnedKernelFactory(alg, target, k)
		}
		for _, method := range iterseq.Methods() {
			sc, bt := measureRow(base, method, scalar, factories, hb.SeedsPerShell)
			for i, k := range kernels {
				w := bitsliceWidth
				if k == core.KernelSliced256 || k == core.KernelSliced256Delta {
					w = bitsliceWidth256
				}
				fill, pack := capturePhases(base, method, factories[i], hb.SeedsPerShell)
				hb.Points = append(hb.Points, HostBenchPoint{
					Alg:                alg.String(),
					Method:             method.String(),
					Kernel:             k.String(),
					Width:              w,
					ScalarSeedsPerSec:  sc,
					BatchedSeedsPerSec: bt[i],
					Speedup:            bt[i] / sc,
					FillNsPerSeed:      fill,
					PackNsPerSeed:      pack,
				})
			}
		}
	}
	return hb
}

// The batch strides the kernels run at; mirrored here rather than
// imported so the exper package stays decoupled from bitslice.
const (
	bitsliceWidth    = 64
	bitsliceWidth256 = 256
)

// capturePhases runs one exhaustive shell with the host batch-phase
// histograms installed and returns the mean fill and pack cost in
// nanoseconds per seed. It is a dedicated untimed pass, separate from
// the timed windows: the windows interleave engines, so one shared
// process-global histogram would mix their observations, and the
// timestamp reads would perturb the throughput numbers they exist to
// explain. The previously installed hooks are restored on return.
func capturePhases(base u256.Uint256, method iterseq.Method, factory core.MatcherFactory, shellSeeds uint64) (fillNs, packNs float64) {
	hbm := core.RegisterHostBatchMetrics(obs.NewRegistry())
	prev := core.SetHostBatchMetrics(hbm)
	defer core.SetHostBatchMetrics(prev)
	_, _, covered, _, err := core.SearchShellHost(
		context.Background(), base, hostBenchDistance, method, 1, 0,
		true, time.Time{}, factory)
	if err != nil {
		panic(err)
	}
	if covered != shellSeeds {
		panic(fmt.Sprintf("exper: phase capture covered %d of %d seeds", covered, shellSeeds))
	}
	s := float64(shellSeeds)
	return hbm.Fill.Snapshot().Sum / s, hbm.Pack.Snapshot().Sum / s
}

// pinnedKernelFactory builds matchers locked to one batch kernel,
// bypassing the calibration table: the bench must measure every kernel,
// including ones calibration would never select.
func pinnedKernelFactory(alg core.HashAlg, target core.Digest, kernel core.BatchKernel) core.MatcherFactory {
	return func() core.Matcher {
		m := core.NewHashMatcher(alg, target)
		m.Kernel = kernel
		return m
	}
}

// measureRow returns exhaustive-search throughput in seeds/sec for the
// scalar engine and each batch kernel over the d=2 shell. All engines'
// timing windows are interleaved - scalar, kernel A, kernel B, scalar,
// ... - so transient host load drifts into every measurement rather
// than skewing the ratios, and each engine keeps its best of six
// windows of at least 80ms (maximum-over-windows rejects transient
// load, the same policy as timeOp).
func measureRow(base u256.Uint256, method iterseq.Method, scalar core.MatcherFactory, kernels []core.MatcherFactory, shellSeeds uint64) (sc float64, bt []float64) {
	shell := func(factory core.MatcherFactory) func() {
		return func() {
			_, _, covered, _, err := core.SearchShellHost(
				context.Background(), base, hostBenchDistance, method, 1, 0,
				true, time.Time{}, factory)
			if err != nil {
				panic(err)
			}
			if covered != shellSeeds {
				panic(fmt.Sprintf("exper: host bench covered %d of %d seeds", covered, shellSeeds))
			}
		}
	}
	calibrate := func(run func()) int {
		reps := 1
		for {
			start := time.Now()
			for i := 0; i < reps; i++ {
				run()
			}
			if time.Since(start) >= 80*time.Millisecond {
				return reps
			}
			reps *= 2
		}
	}
	window := func(run func(), reps int) float64 {
		start := time.Now()
		for i := 0; i < reps; i++ {
			run()
		}
		return float64(shellSeeds) * float64(reps) / time.Since(start).Seconds()
	}

	runs := []func(){shell(scalar)}
	for _, f := range kernels {
		runs = append(runs, shell(f))
	}
	reps := make([]int, len(runs))
	for i, r := range runs {
		reps[i] = calibrate(r)
	}
	best := make([]float64, len(runs))
	for w := 0; w < 6; w++ {
		// Rotate which engine leads each round so none systematically
		// inherits another's warm caches (or pays for a scheduler
		// preemption) more often.
		for off := 0; off < len(runs); off++ {
			i := (off + w) % len(runs)
			if v := window(runs[i], reps[i]); v > best[i] {
				best[i] = v
			}
		}
	}
	return best[0], best[1:]
}

// HostBenchViolations compares a fresh measurement against a committed
// baseline and returns one message per regression. The comparison is on
// speedup ratios, not absolute seeds/sec - ratios are what transfer
// across machines, so the gate works on any host that can run the
// bench. A point regresses when its ratio falls more than tol (e.g.
// 0.15 for 15%) below the baseline's, and independently whenever a
// kernel that beat scalar in the baseline drops to or below scalar
// parity. A nil return means the measurement holds the baseline.
func HostBenchViolations(fresh, baseline HostBench, tol float64) []string {
	var v []string
	if fresh.Schema != baseline.Schema {
		v = append(v, fmt.Sprintf("schema mismatch: fresh %q vs baseline %q (regenerate the baseline)", fresh.Schema, baseline.Schema))
		return v
	}
	type key struct{ alg, method, kernel string }
	got := make(map[key]HostBenchPoint, len(fresh.Points))
	for _, p := range fresh.Points {
		got[key{p.Alg, p.Method, p.Kernel}] = p
	}
	for _, b := range baseline.Points {
		k := key{b.Alg, b.Method, b.Kernel}
		f, ok := got[k]
		if !ok {
			v = append(v, fmt.Sprintf("%s/%s/%s: missing from fresh measurement", b.Alg, b.Method, b.Kernel))
			continue
		}
		if f.Speedup < b.Speedup*(1-tol) {
			v = append(v, fmt.Sprintf("%s/%s/%s: speedup %.2fx fell below baseline %.2fx by more than %.0f%%",
				b.Alg, b.Method, b.Kernel, f.Speedup, b.Speedup, tol*100))
		}
		if b.Speedup > 1.0 && f.Speedup <= 1.0 {
			v = append(v, fmt.Sprintf("%s/%s/%s: speedup %.2fx dropped to or below scalar parity (baseline %.2fx)",
				b.Alg, b.Method, b.Kernel, f.Speedup, b.Speedup))
		}
	}
	return v
}

// Table renders the measurement in the experiment-table format.
func (hb HostBench) Table() *Table {
	t := &Table{
		ID:    "hostthroughput",
		Title: fmt.Sprintf("Host search throughput, exhaustive d=%d shell (%d seeds), 1 worker", hb.Distance, hb.SeedsPerShell),
		Headers: []string{
			"Hash", "Iterator", "Kernel", "Width", "Scalar seeds/s", "Batched seeds/s", "Speedup", "Fill ns/seed", "Pack ns/seed",
		},
	}
	for _, p := range hb.Points {
		t.Rows = append(t.Rows, []string{
			p.Alg, p.Method, p.Kernel,
			fmt.Sprintf("%d", p.Width),
			fmt.Sprintf("%.0f", p.ScalarSeedsPerSec),
			fmt.Sprintf("%.0f", p.BatchedSeedsPerSec),
			fmt.Sprintf("%.2fx", p.Speedup),
			fmt.Sprintf("%.1f", p.FillNsPerSeed),
			fmt.Sprintf("%.1f", p.PackNsPerSeed),
		})
	}
	t.Notes = append(t.Notes,
		"each batch kernel is pinned and measured against the scalar quick-reject loop; the calibration table selects from these ratios at run time",
		"fill/pack ns/seed are from a separate instrumented pass: fill = iterator drain, pack = marshalling into the kernel layout (delta application on the sliced-domain delta kernel)",
		fmt.Sprintf("%s %s/%s, %d cores", hb.GoVersion, hb.GoOS, hb.GoArch, hb.NumCPU),
	)
	return t
}

// JSON renders the measurement as the BENCH_host.json document.
func (hb HostBench) JSON() ([]byte, error) {
	out, err := json.MarshalIndent(hb, "", "  ")
	if err != nil {
		return nil, err
	}
	return append(out, '\n'), nil
}

// ParseHostBench decodes a BENCH_host.json document (strictly: unknown
// fields are schema drift, not noise).
func ParseHostBench(data []byte) (HostBench, error) {
	var hb HostBench
	if err := json.Unmarshal(data, &hb); err != nil {
		return HostBench{}, fmt.Errorf("exper: parsing host bench: %w", err)
	}
	return hb, nil
}

// HostThroughput runs the host throughput experiment for the standard
// table pipeline (rbc-bench, EXPERIMENTS.md).
func HostThroughput() *Table {
	return MeasureHostThroughput().Table()
}
