package exper

import (
	"context"
	"encoding/json"
	"fmt"
	"runtime"
	"time"

	"rbcsalted/internal/combin"
	"rbcsalted/internal/core"
	"rbcsalted/internal/iterseq"
	"rbcsalted/internal/u256"
)

// HostBenchSchema identifies the BENCH_host.json format. Bump on any
// field change so trajectory tooling can tell points apart.
const HostBenchSchema = "rbc-salted/host-bench/v1"

// HostBenchPoint is one (algorithm, iteration method) cell of the host
// throughput measurement: the scalar one-seed-at-a-time engine against
// the 64-wide batched engine, in seeds per second.
type HostBenchPoint struct {
	Alg                string  `json:"alg"`
	Method             string  `json:"method"`
	ScalarSeedsPerSec  float64 `json:"scalar_seeds_per_sec"`
	BatchedSeedsPerSec float64 `json:"batched_seeds_per_sec"`
	Speedup            float64 `json:"speedup"`
}

// HostBench is the full host-throughput measurement - the perf
// trajectory point emitted as BENCH_host.json by `make bench`.
type HostBench struct {
	Schema        string           `json:"schema"`
	GeneratedAt   string           `json:"generated_at"`
	GoVersion     string           `json:"go_version"`
	GoOS          string           `json:"goos"`
	GoArch        string           `json:"goarch"`
	NumCPU        int              `json:"num_cpu"`
	Workers       int              `json:"workers"`
	Distance      int              `json:"distance"`
	SeedsPerShell uint64           `json:"seeds_per_shell"`
	Points        []HostBenchPoint `json:"points"`
}

// hostBenchDistance is the shell the measurement covers exhaustively:
// d=2 is C(256,2) = 32640 seeds, small enough to repeat until the
// timing windows stabilize and large enough to amortize setup.
const hostBenchDistance = 2

// MeasureHostThroughput measures the real host search engine - scalar
// vs batched - over one exhaustive d=2 shell for every algorithm and
// iteration method. A single worker is used so the numbers track the
// hot loop itself rather than the host's core count; Workers records
// it, NumCPU records the machine.
func MeasureHostThroughput() HostBench {
	hb := HostBench{
		Schema:      HostBenchSchema,
		GeneratedAt: time.Now().UTC().Format(time.RFC3339),
		GoVersion:   runtime.Version(),
		GoOS:        runtime.GOOS,
		GoArch:      runtime.GOARCH,
		NumCPU:      runtime.NumCPU(),
		Workers:     1,
		Distance:    hostBenchDistance,
	}
	hb.SeedsPerShell, _ = combin.Binomial64(256, hostBenchDistance)

	base := u256.New(0xfeedbeef, 0x12345678, 0x9abcdef0, 0x0f1e2d3c)
	for _, alg := range core.HashAlgs() {
		// The target is the base's own digest: at distance 0 it is
		// outside the measured shell, so every candidate is hashed and
		// rejected - the worst-case (and steady-state) search load.
		target := core.HashSeed(alg, base)
		batched := core.HashMatcherFactory(alg, target)
		scalar := core.ScalarMatcher(batched)
		for _, method := range iterseq.Methods() {
			p := HostBenchPoint{Alg: alg.String(), Method: method.String()}
			p.ScalarSeedsPerSec, p.BatchedSeedsPerSec =
				measurePair(base, method, scalar, batched, hb.SeedsPerShell)
			p.Speedup = p.BatchedSeedsPerSec / p.ScalarSeedsPerSec
			hb.Points = append(hb.Points, p)
		}
	}
	return hb
}

// measurePair returns exhaustive-search throughput in seeds/sec for
// the scalar and batched engines over the d=2 shell. The two engines'
// timing windows are interleaved - scalar, batched, scalar, batched -
// so transient host load drifts into both measurements rather than
// skewing the ratio, and each engine keeps its best of five windows
// of at least 80ms (maximum-over-windows rejects transient load, the
// same policy as timeOp).
func measurePair(base u256.Uint256, method iterseq.Method, scalar, batched core.MatcherFactory, shellSeeds uint64) (sc, bt float64) {
	shell := func(factory core.MatcherFactory) func() {
		return func() {
			_, _, covered, _, err := core.SearchShellHost(
				context.Background(), base, hostBenchDistance, method, 1, 0,
				true, time.Time{}, factory)
			if err != nil {
				panic(err)
			}
			if covered != shellSeeds {
				panic(fmt.Sprintf("exper: host bench covered %d of %d seeds", covered, shellSeeds))
			}
		}
	}
	calibrate := func(run func()) int {
		reps := 1
		for {
			start := time.Now()
			for i := 0; i < reps; i++ {
				run()
			}
			if time.Since(start) >= 80*time.Millisecond {
				return reps
			}
			reps *= 2
		}
	}
	window := func(run func(), reps int) float64 {
		start := time.Now()
		for i := 0; i < reps; i++ {
			run()
		}
		return float64(shellSeeds) * float64(reps) / time.Since(start).Seconds()
	}
	runScalar, runBatched := shell(scalar), shell(batched)
	repsScalar, repsBatched := calibrate(runScalar), calibrate(runBatched)
	for w := 0; w < 6; w++ {
		// Alternate which engine leads each round so neither
		// systematically inherits the other's warm caches (or pays for
		// a scheduler preemption) more often.
		if w%2 == 0 {
			if v := window(runScalar, repsScalar); v > sc {
				sc = v
			}
			if v := window(runBatched, repsBatched); v > bt {
				bt = v
			}
		} else {
			if v := window(runBatched, repsBatched); v > bt {
				bt = v
			}
			if v := window(runScalar, repsScalar); v > sc {
				sc = v
			}
		}
	}
	return sc, bt
}

// Table renders the measurement in the experiment-table format.
func (hb HostBench) Table() *Table {
	t := &Table{
		ID:    "hostthroughput",
		Title: fmt.Sprintf("Host search throughput, exhaustive d=%d shell (%d seeds), 1 worker", hb.Distance, hb.SeedsPerShell),
		Headers: []string{
			"Hash", "Iterator", "Scalar seeds/s", "Batched seeds/s", "Speedup",
		},
	}
	for _, p := range hb.Points {
		t.Rows = append(t.Rows, []string{
			p.Alg, p.Method,
			fmt.Sprintf("%.0f", p.ScalarSeedsPerSec),
			fmt.Sprintf("%.0f", p.BatchedSeedsPerSec),
			fmt.Sprintf("%.2fx", p.Speedup),
		})
	}
	t.Notes = append(t.Notes,
		"batched = 64-wide bit-sliced compression where it measures faster (SHA-3); SHA-1 keeps the scalar quick-reject path, so its ratio is ~1",
		fmt.Sprintf("%s %s/%s, %d cores", hb.GoVersion, hb.GoOS, hb.GoArch, hb.NumCPU),
	)
	return t
}

// JSON renders the measurement as the BENCH_host.json document.
func (hb HostBench) JSON() ([]byte, error) {
	out, err := json.MarshalIndent(hb, "", "  ")
	if err != nil {
		return nil, err
	}
	return append(out, '\n'), nil
}

// HostThroughput runs the host throughput experiment for the standard
// table pipeline (rbc-bench, EXPERIMENTS.md).
func HostThroughput() *Table {
	return MeasureHostThroughput().Table()
}
