package exper

import (
	"context"
	"fmt"

	"rbcsalted/internal/apusim"
	"rbcsalted/internal/combin"
	"rbcsalted/internal/core"
	"rbcsalted/internal/gpusim"
)

// MultiAPU explores the paper's §5 future work: multi-APU scalability
// within a single node (8 APUs fit the 2U form factor of one A100 node),
// compared against the measured multi-GPU curve.
func MultiAPU() *Table {
	t := &Table{
		ID:      "multiapu",
		Title:   "Future work (§5): multi-APU vs multi-GPU scaling, SHA-3 exhaustive d=5",
		Headers: []string{"Node", "Devices", "Time (s)", "Speedup", "Energy (J)"},
	}
	sc := NewScenario(111, 5)

	var gpuBase float64
	for g := 1; g <= 3; g++ {
		b := gpusim.NewBackend(gpusim.Config{Alg: core.SHA3, Devices: g, SharedMemoryState: true})
		res, err := b.Search(context.Background(), sc.Task(core.SHA3, 5, true))
		if err != nil {
			panic(err)
		}
		if g == 1 {
			gpuBase = res.DeviceSeconds
		}
		t.Rows = append(t.Rows, []string{
			"A100 GPUs", fmt.Sprint(g), secs(res.DeviceSeconds),
			fmt.Sprintf("%.2fx", gpuBase/res.DeviceSeconds),
			fmt.Sprintf("%.0f", res.EnergyJoules),
		})
	}
	var apuBase float64
	for _, g := range []int{1, 2, 4, 8} {
		b := apusim.NewBackend(apusim.Config{Alg: core.SHA3, Devices: g})
		res, err := b.Search(context.Background(), sc.Task(core.SHA3, 5, true))
		if err != nil {
			panic(err)
		}
		if g == 1 {
			apuBase = res.DeviceSeconds
		}
		t.Rows = append(t.Rows, []string{
			"Gemini APUs", fmt.Sprint(g), secs(res.DeviceSeconds),
			fmt.Sprintf("%.2fx", apuBase/res.DeviceSeconds),
			fmt.Sprintf("%.0f", res.EnergyJoules),
		})
	}
	t.Notes = append(t.Notes,
		"the APU's batch-boundary flag checks need no unified-memory traffic, so per-device sync is lighter than the GPU's - the basis of the paper's better-single-node-scaling conjecture")
	return t
}

// NoiseSecurity explores the paper's §5 security knob: deliberately
// injecting noise into the client's PUF output to deepen the search the
// server must do, raising the effective security margin while staying
// under T = 20 s on the accelerators.
func NoiseSecurity() *Table {
	t := &Table{
		ID:    "noisesecurity",
		Title: "Future work (§5): deliberate noise injection vs search time (SHA-3, exhaustive)",
		Headers: []string{"Total flipped bits d", "Seeds u(d)", "GPU (s)", "APU (s)",
			"64-core CPU (s)", "Within T=20s"},
	}
	for d := 3; d <= 6; d++ {
		sc := NewScenario(uint64(120+d), d)
		times := make([]float64, 3)
		backends := table5Backends(core.SHA3)
		for i, b := range backends {
			res, err := b.Search(context.Background(), sc.Task(core.SHA3, d, true))
			if err != nil {
				panic(err)
			}
			times[i] = res.DeviceSeconds
		}
		within := "GPU+APU"
		switch {
		case times[0] > 20 && times[1] > 20:
			within = "none"
		case times[1] > 20:
			within = "GPU only"
		}
		t.Rows = append(t.Rows, []string{
			fmt.Sprint(d), sci(combin.ExhaustiveSeeds(256, d)),
			secs(times[0]), secs(times[1]), secs(times[2]), within,
		})
	}
	t.Notes = append(t.Notes,
		"the GPU's 4.3x headroom under T=20s at d=5 is the noise-injection budget: a client whose natural error is below 5 bits can inject up to the d=5 envelope at no protocol cost",
		"u(6) is ~42x u(5), out of reach for every platform - the same wall that makes the opponent's 2^256 search hopeless")
	return t
}
