package exper

import (
	"context"
	"fmt"

	"rbcsalted/internal/core"
	"rbcsalted/internal/gpusim"
	"rbcsalted/internal/iterseq"
)

// Figure3 reproduces the Figure 3 heatmap: exhaustive d=5 SHA-3
// search-only time as a function of seeds per thread (n) and threads per
// block (b). Each cell also implies the total thread count, as in the
// paper's annotation.
func Figure3() *Table {
	ns := []int{1, 10, 100, 1000, 10000, 100000}
	bs := []int{32, 64, 128, 256, 512, 1024}
	t := &Table{
		ID:      "figure3",
		Title:   "Search-only time (s) heatmap: seeds/thread (rows) x threads/block (cols), SHA-3 exhaustive d=5",
		Headers: append([]string{"n \\ b"}, intsToStrings(bs)...),
	}
	m := gpusim.NewModel()
	bestN, bestB, best := 0, 0, 1e18
	for _, n := range ns {
		row := []string{fmt.Sprint(n)}
		for _, b := range bs {
			v := m.ExhaustiveD5SecondsAt(core.SHA3, defaultMethod,
				gpusim.KernelParams{SeedsPerThread: n, ThreadsPerBlock: b}, true, 1)
			row = append(row, secs(v))
			if v < best {
				best, bestN, bestB = v, n, b
			}
		}
		t.Rows = append(t.Rows, row)
	}
	t.Notes = append(t.Notes,
		fmt.Sprintf("model minimum %.2f s at n=%d, b=%d (paper: minimum at n=100, b=128)", best, bestN, bestB),
		"paper: several configurations achieve similarly good performance - the flat basin around the optimum reproduces that")
	return t
}

func intsToStrings(vs []int) []string {
	out := make([]string, len(vs))
	for i, v := range vs {
		out[i] = fmt.Sprint(v)
	}
	return out
}

// Figure4 reproduces Figure 4: multi-GPU speedup of the search-only time
// on 1-3 A100s for SHA-1/SHA-3 x exhaustive/early-exit.
func Figure4(trials int) *Table {
	if trials <= 0 {
		trials = 50
	}
	t := &Table{
		ID:      "figure4",
		Title:   fmt.Sprintf("Multi-GPU speedup (early-exit averaged over %d trials)", trials),
		Headers: []string{"Hash", "Search type", "GPUs", "Time (s)", "Speedup", "Paper speedup @3"},
	}
	paperAt3 := map[string]string{
		"SHA-1/Exhaustive": "~2.7", "SHA-1/Early exit": "<2.66",
		"SHA-3/Exhaustive": "2.87", "SHA-3/Early exit": "2.66",
	}
	for _, alg := range core.HashAlgs() {
		for _, exhaustive := range []bool{true, false} {
			label := "Early exit"
			if exhaustive {
				label = "Exhaustive"
			}
			var base float64
			for g := 1; g <= 3; g++ {
				mean := meanSearchSeconds(alg, g, exhaustive, trials)
				if g == 1 {
					base = mean
				}
				paper := ""
				if g == 3 {
					paper = paperAt3[fmt.Sprintf("%s/%s", alg, label)]
				}
				t.Rows = append(t.Rows, []string{
					alg.String(), label, fmt.Sprint(g), secs(mean),
					fmt.Sprintf("%.2f", base/mean), paper,
				})
			}
		}
	}
	t.Notes = append(t.Notes,
		"the exhaustive SHA-3 point calibrates the per-device sync cost; all other curves are model outputs",
		"best (p, n, b) per GPU count, as in the paper")
	return t
}

func meanSearchSeconds(alg core.HashAlg, devices int, exhaustive bool, trials int) float64 {
	b := gpusim.NewBackend(gpusim.Config{Alg: alg, Devices: devices, SharedMemoryState: true})
	if exhaustive {
		res, err := b.Search(context.Background(), NewScenario(81, 5).Task(alg, 5, true))
		if err != nil {
			panic(err)
		}
		return res.DeviceSeconds
	}
	sum := 0.0
	for trial := 0; trial < trials; trial++ {
		sc := NewScenario(uint64(9000+trial), 5)
		res, err := b.Search(context.Background(), sc.Task(alg, 5, false))
		if err != nil {
			panic(err)
		}
		sum += res.DeviceSeconds
	}
	return sum / float64(trials)
}

// SharedMem reproduces the §3.2.3 ablation: the speedup from keeping the
// sequential iterator's per-thread state in shared memory.
func SharedMem() *Table {
	t := &Table{
		ID:      "sharedmem",
		Title:   "Shared-memory iterator state ablation (exhaustive d=5 shell)",
		Headers: []string{"Hash", "Global state (s)", "Shared state (s)", "Speedup", "Paper"},
	}
	m := gpusim.NewModel()
	const shell = uint64(8809549056)
	paper := map[core.HashAlg]string{core.SHA1: "1.20x", core.SHA3: "1.01x"}
	for _, alg := range core.HashAlgs() {
		with := m.ShellSeconds(shell, alg, defaultMethod, gpusim.DefaultParams, true, 1)
		without := m.ShellSeconds(shell, alg, defaultMethod, gpusim.DefaultParams, false, 1)
		t.Rows = append(t.Rows, []string{
			alg.String(), secs(without), secs(with),
			fmt.Sprintf("%.2fx", without/with), paper[alg],
		})
	}
	return t
}

// FlagInterval reproduces the §4.4 sweep: seeds iterated between
// early-exit flag checks have no performance impact.
func FlagInterval() *Table {
	t := &Table{
		ID:      "flaginterval",
		Title:   "Early-exit flag polling interval sweep (SHA-3 exhaustive d=5 shell)",
		Headers: []string{"Check every N seeds", "Model time (s)", "Delta vs N=1"},
	}
	m := gpusim.NewModel()
	const shell = uint64(8809549056)
	base := m.ShellSeconds(shell, core.SHA3, defaultMethod, gpusim.DefaultParams, true, 1)
	for _, interval := range []int{1, 2, 4, 8, 16, 32, 64} {
		v := m.ShellSeconds(shell, core.SHA3, defaultMethod, gpusim.DefaultParams, true, interval)
		t.Rows = append(t.Rows, []string{
			fmt.Sprint(interval), fmt.Sprintf("%.4f", v),
			fmt.Sprintf("%+.2f%%", 100*(v-base)/base),
		})
	}
	t.Notes = append(t.Notes, "paper §4.4: increasing the interval from 1 to 64 had no performance impact; the flag stays cached")
	return t
}

// IteratorMicro reports the host-measured per-seed iterator costs that
// drive the Table 4 translation - the directly executed evidence behind
// the GPU model.
func IteratorMicro() *Table {
	t := &Table{
		ID:      "itermicro",
		Title:   "Host-measured per-seed costs (real Go implementations, d=5)",
		Headers: []string{"Operation", "ns/seed"},
	}
	costs := hostCosts()
	t.Rows = append(t.Rows, []string{"SHA-1 fixed-pad hash", fmt.Sprintf("%.1f", costs.SHA1Ns)})
	t.Rows = append(t.Rows, []string{"SHA-3 fixed-pad hash", fmt.Sprintf("%.1f", costs.SHA3Ns)})
	for _, m := range iterseq.Methods() {
		t.Rows = append(t.Rows, []string{"iterate: " + m.String(), fmt.Sprintf("%.1f", costs.IterNs[m])})
	}
	return t
}
