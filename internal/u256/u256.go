// Package u256 implements 256-bit unsigned integer arithmetic.
//
// RBC seeds are 256-bit bit streams, and the seed-iteration algorithms
// (notably Gosper's hack, as used in prior RBC work) require full-width
// integer arithmetic: two's-complement negation, addition with carry
// propagation, shifts, and bit scans. GPUs and CPUs have no native 256-bit
// type, which is precisely the performance problem the paper identifies
// with Gosper's hack at this width; this package is the faithful software
// equivalent.
//
// A Uint256 is represented as four 64-bit limbs in little-endian limb
// order: limb 0 holds bits 0..63, limb 3 holds bits 192..255. The zero
// value is the number 0 and is ready to use. All methods treat the receiver
// and operands as immutable values; arithmetic returns new values, which
// the compiler keeps in registers for the sizes involved here.
package u256

import (
	"encoding/binary"
	"errors"
	"fmt"
	"math/big"
	"math/bits"
)

// Uint256 is an unsigned 256-bit integer, stored as little-endian limbs.
type Uint256 struct {
	limbs [4]uint64
}

// Zero is the number 0.
var Zero = Uint256{}

// One is the number 1.
var One = Uint256{limbs: [4]uint64{1, 0, 0, 0}}

// Max is 2^256 - 1.
var Max = Uint256{limbs: [4]uint64{^uint64(0), ^uint64(0), ^uint64(0), ^uint64(0)}}

// New returns a Uint256 holding the four little-endian limbs.
func New(l0, l1, l2, l3 uint64) Uint256 {
	return Uint256{limbs: [4]uint64{l0, l1, l2, l3}}
}

// FromUint64 returns a Uint256 holding v.
func FromUint64(v uint64) Uint256 {
	return Uint256{limbs: [4]uint64{v, 0, 0, 0}}
}

// Limb returns limb i (0 = least significant). It panics if i is out of range.
func (x Uint256) Limb(i int) uint64 { return x.limbs[i] }

// Uint64 returns the low 64 bits of x.
func (x Uint256) Uint64() uint64 { return x.limbs[0] }

// IsUint64 reports whether x fits in a uint64.
func (x Uint256) IsUint64() bool {
	return x.limbs[1]|x.limbs[2]|x.limbs[3] == 0
}

// IsZero reports whether x == 0.
func (x Uint256) IsZero() bool {
	return x.limbs[0]|x.limbs[1]|x.limbs[2]|x.limbs[3] == 0
}

// Cmp returns -1, 0 or +1 depending on whether x < y, x == y, or x > y.
func (x Uint256) Cmp(y Uint256) int {
	for i := 3; i >= 0; i-- {
		switch {
		case x.limbs[i] < y.limbs[i]:
			return -1
		case x.limbs[i] > y.limbs[i]:
			return 1
		}
	}
	return 0
}

// Equal reports whether x == y.
func (x Uint256) Equal(y Uint256) bool {
	return x.limbs == y.limbs
}

// Add returns x + y mod 2^256.
func (x Uint256) Add(y Uint256) Uint256 {
	var z Uint256
	var c uint64
	z.limbs[0], c = bits.Add64(x.limbs[0], y.limbs[0], 0)
	z.limbs[1], c = bits.Add64(x.limbs[1], y.limbs[1], c)
	z.limbs[2], c = bits.Add64(x.limbs[2], y.limbs[2], c)
	z.limbs[3], _ = bits.Add64(x.limbs[3], y.limbs[3], c)
	return z
}

// AddUint64 returns x + v mod 2^256.
func (x Uint256) AddUint64(v uint64) Uint256 {
	return x.Add(FromUint64(v))
}

// Sub returns x - y mod 2^256.
func (x Uint256) Sub(y Uint256) Uint256 {
	var z Uint256
	var b uint64
	z.limbs[0], b = bits.Sub64(x.limbs[0], y.limbs[0], 0)
	z.limbs[1], b = bits.Sub64(x.limbs[1], y.limbs[1], b)
	z.limbs[2], b = bits.Sub64(x.limbs[2], y.limbs[2], b)
	z.limbs[3], _ = bits.Sub64(x.limbs[3], y.limbs[3], b)
	return z
}

// Neg returns -x mod 2^256 (two's complement).
func (x Uint256) Neg() Uint256 {
	return Zero.Sub(x)
}

// And returns x & y.
func (x Uint256) And(y Uint256) Uint256 {
	return Uint256{limbs: [4]uint64{
		x.limbs[0] & y.limbs[0],
		x.limbs[1] & y.limbs[1],
		x.limbs[2] & y.limbs[2],
		x.limbs[3] & y.limbs[3],
	}}
}

// Or returns x | y.
func (x Uint256) Or(y Uint256) Uint256 {
	return Uint256{limbs: [4]uint64{
		x.limbs[0] | y.limbs[0],
		x.limbs[1] | y.limbs[1],
		x.limbs[2] | y.limbs[2],
		x.limbs[3] | y.limbs[3],
	}}
}

// Xor returns x ^ y.
func (x Uint256) Xor(y Uint256) Uint256 {
	return Uint256{limbs: [4]uint64{
		x.limbs[0] ^ y.limbs[0],
		x.limbs[1] ^ y.limbs[1],
		x.limbs[2] ^ y.limbs[2],
		x.limbs[3] ^ y.limbs[3],
	}}
}

// Not returns ^x.
func (x Uint256) Not() Uint256 {
	return Uint256{limbs: [4]uint64{
		^x.limbs[0], ^x.limbs[1], ^x.limbs[2], ^x.limbs[3],
	}}
}

// Shl returns x << n mod 2^256. Shifts of 256 or more return zero.
func (x Uint256) Shl(n uint) Uint256 {
	if n >= 256 {
		return Zero
	}
	limbShift := int(n / 64)
	bitShift := n % 64
	var z Uint256
	for i := 3; i >= limbShift; i-- {
		z.limbs[i] = x.limbs[i-limbShift] << bitShift
		if bitShift > 0 && i-limbShift-1 >= 0 {
			z.limbs[i] |= x.limbs[i-limbShift-1] >> (64 - bitShift)
		}
	}
	return z
}

// Shr returns x >> n. Shifts of 256 or more return zero.
func (x Uint256) Shr(n uint) Uint256 {
	if n >= 256 {
		return Zero
	}
	limbShift := int(n / 64)
	bitShift := n % 64
	var z Uint256
	for i := 0; i+limbShift <= 3; i++ {
		z.limbs[i] = x.limbs[i+limbShift] >> bitShift
		if bitShift > 0 && i+limbShift+1 <= 3 {
			z.limbs[i] |= x.limbs[i+limbShift+1] << (64 - bitShift)
		}
	}
	return z
}

// RotateLeft returns x rotated left by n bits (mod 256). Negative n rotates
// right. Rotation is the salting primitive used by the RBC-SALTED protocol.
func (x Uint256) RotateLeft(n int) Uint256 {
	n %= 256
	if n < 0 {
		n += 256
	}
	if n == 0 {
		return x
	}
	return x.Shl(uint(n)).Or(x.Shr(uint(256 - n)))
}

// Bit returns bit i of x (0 or 1). It panics if i is outside [0, 255].
func (x Uint256) Bit(i int) uint {
	if i < 0 || i > 255 {
		panic(fmt.Sprintf("u256: bit index %d out of range", i))
	}
	return uint(x.limbs[i/64]>>(i%64)) & 1
}

// SetBit returns x with bit i set to b (0 or 1). It panics if i is outside
// [0, 255] or b is not 0 or 1.
func (x Uint256) SetBit(i int, b uint) Uint256 {
	if i < 0 || i > 255 {
		panic(fmt.Sprintf("u256: bit index %d out of range", i))
	}
	switch b {
	case 0:
		x.limbs[i/64] &^= 1 << (i % 64)
	case 1:
		x.limbs[i/64] |= 1 << (i % 64)
	default:
		panic(fmt.Sprintf("u256: invalid bit value %d", b))
	}
	return x
}

// FlipBit returns x with bit i inverted. It panics if i is outside [0, 255].
func (x Uint256) FlipBit(i int) Uint256 {
	if i < 0 || i > 255 {
		panic(fmt.Sprintf("u256: bit index %d out of range", i))
	}
	x.limbs[i/64] ^= 1 << (i % 64)
	return x
}

// OnesCount returns the number of one bits (population count) in x.
func (x Uint256) OnesCount() int {
	return bits.OnesCount64(x.limbs[0]) +
		bits.OnesCount64(x.limbs[1]) +
		bits.OnesCount64(x.limbs[2]) +
		bits.OnesCount64(x.limbs[3])
}

// TrailingZeros returns the number of trailing zero bits in x; it returns
// 256 for x == 0.
func (x Uint256) TrailingZeros() int {
	for i := 0; i < 4; i++ {
		if x.limbs[i] != 0 {
			return i*64 + bits.TrailingZeros64(x.limbs[i])
		}
	}
	return 256
}

// LeadingZeros returns the number of leading zero bits in x; it returns 256
// for x == 0.
func (x Uint256) LeadingZeros() int {
	for i := 3; i >= 0; i-- {
		if x.limbs[i] != 0 {
			return (3-i)*64 + bits.LeadingZeros64(x.limbs[i])
		}
	}
	return 256
}

// BitLen returns the number of bits required to represent x; the bit length
// of 0 is 0.
func (x Uint256) BitLen() int {
	return 256 - x.LeadingZeros()
}

// HammingDistance returns the number of bit positions at which x and y differ.
func (x Uint256) HammingDistance(y Uint256) int {
	return x.Xor(y).OnesCount()
}

// Bytes returns x as a 32-byte big-endian array, matching the byte order in
// which a 256-bit PUF response is transmitted and hashed.
func (x Uint256) Bytes() [32]byte {
	var out [32]byte
	binary.BigEndian.PutUint64(out[0:8], x.limbs[3])
	binary.BigEndian.PutUint64(out[8:16], x.limbs[2])
	binary.BigEndian.PutUint64(out[16:24], x.limbs[1])
	binary.BigEndian.PutUint64(out[24:32], x.limbs[0])
	return out
}

// FromBytes builds a Uint256 from a 32-byte big-endian array.
func FromBytes(b [32]byte) Uint256 {
	return Uint256{limbs: [4]uint64{
		binary.BigEndian.Uint64(b[24:32]),
		binary.BigEndian.Uint64(b[16:24]),
		binary.BigEndian.Uint64(b[8:16]),
		binary.BigEndian.Uint64(b[0:8]),
	}}
}

// FromByteSlice builds a Uint256 from a big-endian byte slice of at most 32
// bytes. It returns an error if the slice is longer than 32 bytes.
func FromByteSlice(b []byte) (Uint256, error) {
	if len(b) > 32 {
		return Zero, errors.New("u256: byte slice longer than 32 bytes")
	}
	var buf [32]byte
	copy(buf[32-len(b):], b)
	return FromBytes(buf), nil
}

// ToBig returns x as a math/big integer.
func (x Uint256) ToBig() *big.Int {
	b := x.Bytes()
	return new(big.Int).SetBytes(b[:])
}

// FromBig converts a big integer to a Uint256. It returns an error if v is
// negative or does not fit in 256 bits.
func FromBig(v *big.Int) (Uint256, error) {
	if v.Sign() < 0 {
		return Zero, errors.New("u256: negative value")
	}
	if v.BitLen() > 256 {
		return Zero, errors.New("u256: value exceeds 256 bits")
	}
	var buf [32]byte
	v.FillBytes(buf[:])
	return FromBytes(buf), nil
}

// String returns x as a 0x-prefixed, zero-padded, 64-digit hex string.
func (x Uint256) String() string {
	return fmt.Sprintf("0x%016x%016x%016x%016x",
		x.limbs[3], x.limbs[2], x.limbs[1], x.limbs[0])
}

// FromHex parses a hex string (with or without 0x prefix) of at most 64
// digits into a Uint256.
func FromHex(s string) (Uint256, error) {
	if len(s) >= 2 && (s[:2] == "0x" || s[:2] == "0X") {
		s = s[2:]
	}
	if len(s) == 0 || len(s) > 64 {
		return Zero, fmt.Errorf("u256: invalid hex length %d", len(s))
	}
	var x Uint256
	for _, c := range []byte(s) {
		var nib uint64
		switch {
		case c >= '0' && c <= '9':
			nib = uint64(c - '0')
		case c >= 'a' && c <= 'f':
			nib = uint64(c-'a') + 10
		case c >= 'A' && c <= 'F':
			nib = uint64(c-'A') + 10
		default:
			return Zero, fmt.Errorf("u256: invalid hex digit %q", c)
		}
		x = x.Shl(4)
		x.limbs[0] |= nib
	}
	return x, nil
}
